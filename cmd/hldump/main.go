// Command hldump renders the HighLight paper's figures from a live
// demonstration file system:
//
//	-layout     LFS / HighLight on-media layout with segment states and
//	            log contents (Figures 1 and 3)
//	-addrmap    block address allocation across disks and tertiary
//	            volumes (Figure 4)
//	-hierarchy  storage hierarchy data flow: write, migrate, demand
//	            fetch (Figure 2)
//	-datapath   layered demand-fetch request flow (Figure 5)
//	-summary    the partial-segment summary block format (Table 1)
//	-faults     per-device injected-fault counters and recovery report
//	            (the demo instance runs its workload under a small
//	            seeded fault plan so the counters are non-zero)
//
// Without flags all sections are produced. The demo instance is one simulated
// RZ57 disk plus a small MO jukebox; -img DIR instead loads a file system
// image directory created by hlfs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/dump"
	"repro/internal/fault"
	"repro/internal/imagefs"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func main() {
	layout := flag.Bool("layout", false, "figures 1 & 3: on-media layout")
	addrmap := flag.Bool("addrmap", false, "figure 4: block address allocation")
	hierarchy := flag.Bool("hierarchy", false, "figure 2: storage hierarchy data flow")
	datapath := flag.Bool("datapath", false, "figure 5: layered demand-fetch path")
	summary := flag.Bool("summary", false, "table 1: partial-segment summary format")
	volumes := flag.Bool("volumes", false, "tertiary volume usage (tsegfile view)")
	faults := flag.Bool("faults", false, "fault injection & recovery report (per-device counters)")
	img := flag.String("img", "", "load a file system image directory (from hlfs) instead of the demo")
	maxSegs := flag.Int("maxsegs", 64, "cap per-segment detail in -layout (0 = all)")
	flag.Parse()

	all := !*layout && !*addrmap && !*hierarchy && !*datapath && !*summary && !*volumes && !*faults

	if *summary || all {
		fmt.Println(bench.Table1())
	}

	k := sim.NewKernel()
	var hl *core.HighLight
	var err error
	if *img != "" {
		var inst *imagefs.Instance
		inst, err = imagefs.Load(k, *img)
		if inst != nil {
			hl = inst.HL
		}
	} else {
		hl, err = demo(k, *faults || all)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hldump: %v\n", err)
		os.Exit(1)
	}
	if *addrmap || all {
		dump.AddrMap(os.Stdout, hl)
		fmt.Println()
	}
	k.RunProc(func(p *sim.Proc) {
		if (*hierarchy || all) && *img == "" {
			if err := dump.Hierarchy(p, os.Stdout, hl); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: hierarchy: %v\n", err)
			}
			fmt.Println()
		}
		if (*datapath || all) && *img == "" {
			if err := dump.DataPath(p, os.Stdout, hl); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: datapath: %v\n", err)
			}
			fmt.Println()
		}
		if *layout || all {
			if err := dump.Layout(p, os.Stdout, hl, *maxSegs); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: layout: %v\n", err)
			}
		}
		if *volumes || all {
			fmt.Println("\nTertiary volume usage:")
			for _, u := range hl.VolumeUsages() {
				fmt.Printf("  device %d volume %2d: %2d used segs, %8d live bytes, %2d no-store\n",
					u.Device, u.Volume, u.UsedSegs, u.LiveBytes, u.NoStoreSegs)
			}
		}
		if *faults || all {
			fmt.Println()
			dump.Faults(os.Stdout, hl)
		}
	})
	k.Stop()
}

// demo builds a small populated HighLight instance. With faults set, the
// demo workload runs under a seeded transient-fault plan so the recovery
// report has something to show.
func demo(k *sim.Kernel, faults bool) (*core.HighLight, error) {
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	juke := jukebox.New(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	if faults {
		plan := fault.NewPlan(fault.Config{Seed: 1, TransientReadRate: 0.5, TransientWriteRate: 0.5, MaxBurst: 2})
		plan.InstallJukebox("MO6300", juke)
	}
	var hl *core.HighLight
	var err error
	k.RunProc(func(p *sim.Proc) {
		hl, err = core.New(p, core.Config{
			SegBlocks: 64,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 24,
			MaxInodes: 256,
		}, true)
		if err != nil {
			return
		}
		// Populate: a couple of files, one migrated.
		for i, name := range []string{"/alpha", "/beta"} {
			f, e := hl.FS.Create(p, name)
			if e != nil {
				err = e
				return
			}
			data := make([]byte, (i+1)*40*lfs.BlockSize)
			for j := range data {
				data[j] = byte(j * (i + 1))
			}
			if _, e := f.WriteAt(p, data, 0); e != nil {
				err = e
				return
			}
		}
		if err = hl.FS.Sync(p); err != nil {
			return
		}
		f, _ := hl.FS.Open(p, "/beta")
		if _, err = hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			return
		}
		err = hl.CompleteMigration(p)
	})
	return hl, err
}
