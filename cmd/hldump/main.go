// Command hldump renders the HighLight paper's figures from a live
// demonstration file system:
//
//	-layout     LFS / HighLight on-media layout with segment states and
//	            log contents (Figures 1 and 3)
//	-addrmap    block address allocation across disks and tertiary
//	            volumes (Figure 4)
//	-hierarchy  storage hierarchy data flow: write, migrate, demand
//	            fetch (Figure 2)
//	-datapath   layered demand-fetch request flow (Figure 5)
//	-summary    the partial-segment summary block format (Table 1)
//	-faults     per-device injected-fault counters and recovery report
//	            (the demo instance runs its workload under a small
//	            seeded fault plan so the counters are non-zero)
//	-timeline   virtual-time event timeline and observability summary of
//	            the demo run: migration, staging, volume swaps, Footprint
//	            transfers, and demand fetches as traced spans, plus
//	            per-device utilization, counters, and latency histograms
//	            (-track and -cat narrow it to comma-separated track and
//	            category lists)
//	-requests   the HSM request ledger: stage/pin/unpin/evict requests
//	            with queue states and outcomes (the demo runs a small
//	            scripted HSM session so the ledger is non-empty)
//	-pins       active HSM pins and the segments they hold in the cache
//	-quotas     per-principal HSM quota standing (staged/pinned usage
//	            against soft and hard limits)
//	-request N  the traced waterfall and critical-path breakdown for
//	            request N: the demo submits two demand reads of the
//	            migrated /beta through the admission-controlled front
//	            end — request 1 with the loaded drive offline (a
//	            jukebox-swap fetch) and request 2 against the warm
//	            segment cache — and every stage's duration sums exactly
//	            to the request's end-to-end latency
//	-slowest K  the K slowest traced requests per class with their
//	            dominant critical-path stages
//	-why N      the policy story for tertiary segment N: its heat record
//	            and the audited decision chain (selected / skipped /
//	            staged / copied-out / cleaned) recorded by the migrator,
//	            the staging mechanism, and the tertiary cleaner; the demo
//	            adds a cleaner pass so both migrated and skipped segments
//	            carry verdicts
//
// Without flags all sections are produced. The demo instance is one simulated
// RZ57 disk plus a small MO jukebox; -img DIR instead loads a file system
// image directory created by hlfs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/dump"
	"repro/internal/fault"
	"repro/internal/hsm"
	"repro/internal/imagefs"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/svc"
)

// splitList turns a comma-separated flag value into its non-empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func main() {
	layout := flag.Bool("layout", false, "figures 1 & 3: on-media layout")
	addrmap := flag.Bool("addrmap", false, "figure 4: block address allocation")
	hierarchy := flag.Bool("hierarchy", false, "figure 2: storage hierarchy data flow")
	datapath := flag.Bool("datapath", false, "figure 5: layered demand-fetch path")
	summary := flag.Bool("summary", false, "table 1: partial-segment summary format")
	volumes := flag.Bool("volumes", false, "tertiary volume usage (tsegfile view)")
	faults := flag.Bool("faults", false, "fault injection & recovery report (per-device counters)")
	recovery := flag.Bool("recovery", false, "mount recovery report: checkpoint anchor, roll-forward extent, cache-directory rebuild (the demo power-cuts an instance mid-migration and remounts it)")
	timeline := flag.Bool("timeline", false, "virtual-time event timeline + observability summary of the demo run")
	track := flag.String("track", "", "comma-separated list of tracks to keep in -timeline (empty = all)")
	cat := flag.String("cat", "", "comma-separated list of categories to keep in -timeline (empty = the default pipeline set)")
	requests := flag.Bool("requests", false, "HSM request ledger (stage/pin/unpin queue states and outcomes)")
	pins := flag.Bool("pins", false, "active HSM pins and their pinned segments")
	quotas := flag.Bool("quotas", false, "per-principal HSM quota standing")
	why := flag.Int("why", -1, "print the heat record and audited decision chain for this tertiary segment")
	request := flag.Int("request", -1, "print the traced waterfall and critical-path breakdown for this request ID (the demo traces request 1, a jukebox-swap fetch, and request 2, a cache hit)")
	slowest := flag.Int("slowest", 0, "print the K slowest traced requests per class (0 = off; the full dump shows 5)")
	replicas := flag.Bool("replicas", false, "tertiary replication report: per-library health/capacity, per-segment replica map, under-replicated list (the demo fails a library mid-run and repairs it)")
	img := flag.String("img", "", "load a file system image directory (from hlfs) instead of the demo")
	maxSegs := flag.Int("maxsegs", 64, "cap per-segment detail in -layout (0 = all)")
	flag.Parse()

	all := !*layout && !*addrmap && !*hierarchy && !*datapath && !*summary && !*volumes && !*faults && !*recovery && !*timeline && !*replicas && !*requests && !*pins && !*quotas && *why < 0 && *request < 0 && *slowest == 0

	if *summary || all {
		fmt.Println(bench.Table1())
	}

	k := sim.NewKernel()
	var hl *core.HighLight
	var juke *jukebox.Jukebox
	var o *obs.Obs
	var err error
	if *img != "" {
		var inst *imagefs.Instance
		inst, err = imagefs.Load(k, *img)
		if inst != nil {
			hl = inst.HL
		}
	} else {
		o = obs.New(k)
		if *timeline || all {
			o.EnableTrace()
		}
		hl, juke, err = demo(k, *faults || all, o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hldump: %v\n", err)
		os.Exit(1)
	}
	if *addrmap || all {
		dump.AddrMap(os.Stdout, hl)
		fmt.Println()
	}
	var fe *svc.FrontEnd
	k.RunProc(func(p *sim.Proc) {
		if (*hierarchy || all) && *img == "" {
			if err := dump.Hierarchy(p, os.Stdout, hl); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: hierarchy: %v\n", err)
			}
			fmt.Println()
		}
		if (*datapath || all) && *img == "" {
			if err := dump.DataPath(p, os.Stdout, hl); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: datapath: %v\n", err)
			}
			fmt.Println()
		}
		if (*request >= 0 || *slowest > 0 || all) && *img == "" {
			// The two traced reads the -request and -slowest views render.
			// Runs after hierarchy/datapath (which replay the figure
			// workloads against the same seeded fault schedule regardless)
			// but before the HSM session pins /beta lines — pinned lines
			// can't be ejected for the cold traced read.
			var terr error
			if fe, terr = traceDemo(p, hl, juke); terr != nil {
				fmt.Fprintf(os.Stderr, "hldump: trace demo: %v\n", terr)
			}
		}
		if *layout || all {
			if err := dump.Layout(p, os.Stdout, hl, *maxSegs); err != nil {
				fmt.Fprintf(os.Stderr, "hldump: layout: %v\n", err)
			}
		}
		if *volumes || all {
			fmt.Println("\nTertiary volume usage:")
			for _, u := range hl.VolumeUsages() {
				fmt.Printf("  device %d volume %2d: %2d used segs, %8d live bytes, %2d no-store\n",
					u.Device, u.Volume, u.UsedSegs, u.LiveBytes, u.NoStoreSegs)
			}
		}
		if *faults || all {
			fmt.Println()
			dump.Faults(os.Stdout, hl)
		}
		if (*recovery || all) && *img != "" {
			// A loaded image went through a real mount: report it.
			fmt.Println()
			dump.Recovery(os.Stdout, hl.FS.Recovery(), hl.MountStats(), hl.RetiredSegments())
		}
		if (*replicas || all) && *img != "" {
			fmt.Println()
			dump.Replicas(os.Stdout, hl)
		}
		if *requests || *pins || *quotas || all {
			hs, err := attachHSM(p, hl, *img == "")
			if err != nil {
				fmt.Fprintf(os.Stderr, "hldump: hsm: %v\n", err)
			} else {
				if *requests || all {
					fmt.Println()
					dump.HSMRequests(os.Stdout, hs)
				}
				if *pins || all {
					fmt.Println()
					dump.HSMPins(os.Stdout, hs)
				}
				if *quotas || all {
					fmt.Println()
					dump.HSMQuotas(os.Stdout, hs)
				}
			}
		}
		if *why >= 0 {
			// A tertiary-cleaner pass on the demo instance gives the audit
			// skipped and cleaned verdicts alongside the migration's
			// staged/copied-out ones.
			if *img == "" {
				if u, ok := hl.SelectCleanableVolume(); ok {
					if _, err := hl.CleanVolume(p, u.Device, u.Volume); err != nil {
						fmt.Fprintf(os.Stderr, "hldump: -why cleaner pass: %v\n", err)
					}
				}
			}
			fmt.Println()
			dump.Why(os.Stdout, hl, *why)
		}
	})
	if (*request >= 0 || *slowest > 0) && *img != "" {
		fmt.Fprintln(os.Stderr, "hldump: -request/-slowest need the demo instance (loaded images carry no traces)")
	}
	if fe != nil {
		if *slowest > 0 || all {
			fmt.Println()
			n := *slowest
			if n == 0 {
				n = 5
			}
			dump.Slowest(os.Stdout, fe.Tracer, n)
		}
		ids := []int64{1, 2} // the swap read and the cache-hit read
		if *request >= 0 {
			ids = []int64{int64(*request)}
		}
		if *request >= 0 || all {
			for _, id := range ids {
				fmt.Println()
				if err := dump.Waterfall(os.Stdout, fe.Tracer, id); err != nil {
					fmt.Fprintf(os.Stderr, "hldump: -request: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if (*timeline || all) && *img == "" {
		// The pipeline-level story: mounts, migrations, staging, volume
		// swaps, Footprint transfers, and demand-fetch waits. (Per-block
		// disk spans stay in the Chrome trace; here they would drown the
		// narrative.)
		fmt.Println()
		cats := []string{
			"core.mount", "core.migrate", "core.ckpt", "core.clean",
			"stage.open", "stage.close", "jb.swap",
			"fp.write", "fp.read", "fetch.wait",
		}
		if *cat != "" {
			cats = splitList(*cat)
		}
		o.WriteTimelineFiltered(os.Stdout, splitList(*track), cats)
		fmt.Println()
		o.WriteSummary(os.Stdout)
	}
	k.Stop()
	if (*recovery || all) && *img == "" {
		fmt.Println()
		if err := recoveryDemo(); err != nil {
			fmt.Fprintf(os.Stderr, "hldump: recovery: %v\n", err)
			os.Exit(1)
		}
	}
	if (*replicas || all) && *img == "" {
		fmt.Println()
		if err := replicaDemo(); err != nil {
			fmt.Fprintf(os.Stderr, "hldump: replicas: %v\n", err)
			os.Exit(1)
		}
	}
}

// replicaDemo tells the -replicas story end to end: a two-library
// instance with replication factor 2 migrates a file (each segment's
// replica lands in the other library), permanently loses library 0,
// serves a read through the surviving replicas, and runs a repair pass
// that re-establishes full replication on the healthy library.
func replicaDemo() error {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	jb0 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	jb1 := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	var derr error
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks: 64,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{jb0, jb1},
			CacheSegs: 24,
			MaxInodes: 256,
			Replicas:  2,
			// Keep the buffer cache smaller than the file so the re-read
			// below actually exercises the tertiary fetch path.
			BufferBytes: 64 * lfs.BlockSize,
		}, true)
		if err != nil {
			derr = err
			return
		}
		f, err := hl.FS.Create(p, "/data")
		if err != nil {
			derr = err
			return
		}
		data := make([]byte, 120*lfs.BlockSize)
		for i := range data {
			data[i] = byte(i)
		}
		if _, err := f.WriteAt(p, data, 0); err != nil {
			derr = err
			return
		}
		if err := hl.FS.Sync(p); err != nil {
			derr = err
			return
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			derr = err
			return
		}
		if err := hl.CompleteMigration(p); err != nil {
			derr = err
			return
		}
		fmt.Println("Two libraries, replication factor 2, one migrated file:")
		dump.Replicas(os.Stdout, hl)

		// Drop the cache so the read below must go to tertiary media, then
		// lose library 0 for good.
		for _, l := range hl.Cache.Lines() {
			if !l.Staging && l.Pins == 0 {
				if err := hl.Svc.Eject(l.Tag); err != nil {
					derr = err
					return
				}
			}
		}
		hl.Libraries()[0].SetDown(true)
		fmt.Printf("\nlibrary 0 permanently failed at t=%.2fs; rereading /data through the survivors...\n", p.Now().Seconds())
		buf := make([]byte, len(data))
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			derr = fmt.Errorf("read after library loss: %w", err)
			return
		}
		for i := range buf {
			if buf[i] != data[i] {
				derr = fmt.Errorf("read after library loss: byte %d corrupt", i)
				return
			}
		}
		fmt.Printf("read OK (%d replica redirects); running a repair pass...\n\n", hl.Svc.Stats().ReplicaRedirects)
		if _, err := hl.RepairPass(p); err != nil {
			derr = err
			return
		}
		dump.Replicas(os.Stdout, hl)
	})
	k.Stop()
	return derr
}

// recoveryDemo tells the -recovery story end to end: populate an
// instance, checkpoint it, keep writing past the checkpoint with sync
// barriers, start a migration whose copy-outs are still pending, leave an
// unsynced tail in the volatile disk write cache — then "cut the power"
// (keep only the durable device images), remount on a fresh kernel, and
// report how the mount recovered.
func recoveryDemo() error {
	mk := func(k *sim.Kernel) (*dev.Disk, *jukebox.Jukebox) {
		disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
		disk.EnableWriteCache(16)
		juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
		return disk, juke
	}
	cfg := func(disk *dev.Disk, juke *jukebox.Jukebox) core.Config {
		return core.Config{
			SegBlocks: 64,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 24,
			MaxInodes: 256,
		}
	}
	k := sim.NewKernel()
	disk, juke := mk(k)
	var store map[int64][]byte
	var vols []jukebox.VolumeImage
	var cut sim.Time
	var wdirty int
	var derr error
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, cfg(disk, juke), true)
		if err != nil {
			derr = err
			return
		}
		write := func(name string, blocks int) {
			if derr != nil {
				return
			}
			f, e := hl.FS.Create(p, name)
			if e != nil {
				derr = e
				return
			}
			data := make([]byte, blocks*lfs.BlockSize)
			for i := range data {
				data[i] = byte(i + blocks)
			}
			if _, e := f.WriteAt(p, data, 0); e != nil {
				derr = e
			}
		}
		write("/base", 80)
		if derr == nil {
			derr = hl.Checkpoint(p)
		}
		// A migration whose copy-outs are still pending at the cut. (Its
		// staging setup takes the last checkpoint of this run.)
		if derr == nil {
			hl.DelayCopyouts = true
			f, e := hl.FS.Open(p, "/base")
			if e != nil {
				derr = e
			} else if _, e := hl.MigrateFiles(p, []uint32{f.Inum()}, false); e != nil {
				derr = e
			}
		}
		// Post-checkpoint synced writes: roll-forward material.
		for i := 0; i < 4 && derr == nil; i++ {
			write(fmt.Sprintf("/post%d", i), 20)
			if derr == nil {
				derr = hl.FS.Sync(p)
			}
		}
		if derr != nil {
			return
		}
		// Final sync, power-cut mid-flush: the snapshot is taken from a
		// media-write callback while the volatile write cache still holds
		// the tail of the log.
		nwrites := 0
		disk.OnMediaWrite = func(int64) {
			nwrites++
			if nwrites == 5 && store == nil {
				store = disk.SnapshotStore()
				vols = juke.SnapshotVolumes()
				cut = p.Now()
				wdirty = disk.WriteCacheDirty()
			}
		}
		write("/unsynced", 24)
		if derr == nil {
			derr = hl.FS.Sync(p)
		}
	})
	k.Stop()
	if derr != nil {
		return derr
	}
	if store == nil {
		return fmt.Errorf("demo never reached its cut point")
	}
	fmt.Printf("Power cut at t=%.2fs, mid-sync (%d dirty blocks dropped from the volatile write cache); remounting...\n",
		cut.Seconds(), wdirty)
	k2 := sim.NewKernel()
	k2.AdvanceTo(cut)
	disk2, juke2 := mk(k2)
	disk2.RestoreStore(store)
	juke2.RestoreVolumes(vols)
	k2.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, cfg(disk2, juke2), false)
		if err != nil {
			derr = err
			return
		}
		if err := hl.CompleteMigration(p); err != nil {
			derr = err
			return
		}
		dump.Recovery(os.Stdout, hl.FS.Recovery(), hl.MountStats(), hl.RetiredSegments())
	})
	k2.Stop()
	return derr
}

// attachHSM attaches the HSM service surface to the instance. In demo
// mode it first plays a small scripted session — set quotas, stage in the
// migrated /beta, pin it, provoke one quota shed and one failed request —
// so the ledger, pin set, and quota report all have something to show.
// For a loaded image it just attaches and reports the persisted state.
func attachHSM(p *sim.Proc, hl *core.HighLight, demo bool) (*hsm.Service, error) {
	s, err := hsm.Attach(p, hl, hsm.Config{})
	if err != nil {
		return nil, err
	}
	if !demo {
		return s, nil
	}
	if err := s.SetQuota(p, "analyst", hsm.Quota{
		StagedSoft: 64 * lfs.BlockSize,
		StagedHard: 256 * lfs.BlockSize,
		PinnedHard: 96 * lfs.BlockSize,
	}); err != nil {
		return nil, err
	}
	if err := s.SetQuota(p, "guest", hsm.Quota{StagedHard: 8 * lfs.BlockSize}); err != nil {
		return nil, err
	}
	if _, err := s.SubmitWait(p, hsm.OpStageIn, "/beta", "analyst"); err != nil {
		return nil, fmt.Errorf("stage-in /beta: %w", err)
	}
	if _, err := s.SubmitWait(p, hsm.OpPin, "/beta", "analyst"); err != nil {
		return nil, fmt.Errorf("pin /beta: %w", err)
	}
	// Two deliberate failures for the ledger and the audit trail: guest's
	// stage-in is shed at admission (over its hard staged quota, so it never
	// queues), and unpinning the never-pinned /alpha fails in execution.
	if _, err := s.Submit(p, hsm.OpStageIn, "/beta", "guest"); !errors.Is(err, hsm.ErrQuotaExceeded) {
		return nil, fmt.Errorf("guest stage-in: want quota shed, got %v", err)
	}
	if r, err := s.SubmitWait(p, hsm.OpUnpin, "/alpha", "analyst"); err == nil || r == nil || r.State != hsm.Failed {
		return nil, fmt.Errorf("unpin /alpha: want failed request, got %v", err)
	}
	return s, nil
}

// traceDemo runs two traced demand reads of the migrated /beta through
// the admission-controlled front end. Request 1 runs with drive 0
// offline, so the fetch must swap the cartridge into drive 1 — its
// waterfall shows queue-wait, cache-lookup miss, fetch-wait, drive-swap,
// media-transfer, and the staging stripe I/O. Request 2 re-reads the now
// segment-cached file: a pure cache-hit trace. Must run before the HSM
// section, which pins /beta lines (pinned lines can't be ejected for the
// cold read).
func traceDemo(p *sim.Proc, hl *core.HighLight, juke *jukebox.Jukebox) (*svc.FrontEnd, error) {
	fe := svc.New(hl, svc.Config{Workers: 2, ReservedInteractive: 1, InteractiveQueue: 4, BackgroundQueue: 4})
	f, err := hl.FS.Open(p, "/beta")
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8*lfs.BlockSize)
	read := func() error {
		return fe.Submit(p, svc.Interactive, p.Now()+sim.Time(60*time.Second), func(wp *sim.Proc) error {
			_, e := f.ReadAt(wp, buf, 0)
			return e
		})
	}
	// Cold read: drop buffers and eject the cached segments so the read
	// goes to tertiary, with the loaded drive offline to force a swap.
	hl.FS.DropFileBuffers(p, f.Inum())
	for _, l := range hl.Cache.Lines() {
		if !l.Staging && l.Pins == 0 {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				return nil, err
			}
		}
	}
	juke.SetDriveOffline(0, true)
	if err := read(); err != nil {
		return nil, fmt.Errorf("swap read: %w", err)
	}
	juke.SetDriveOffline(0, false)
	// Warm read: the segment now sits in the disk segment cache, so the
	// trace resolves at the cache lookup.
	hl.FS.DropFileBuffers(p, f.Inum())
	if err := read(); err != nil {
		return nil, fmt.Errorf("cache-hit read: %w", err)
	}
	return fe, nil
}

// demo builds a small populated HighLight instance on the given obs
// domain. With faults set, the demo workload runs under a seeded
// transient-fault plan so the recovery report has something to show.
// The jukebox is returned alongside so the trace demo can force a
// cartridge swap (nil for -img loads).
func demo(k *sim.Kernel, faults bool, o *obs.Obs) (*core.HighLight, *jukebox.Jukebox, error) {
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	disk.SetObs(o, "")
	juke.SetObs(o, "")
	if faults {
		plan := fault.NewPlan(fault.Config{Seed: 1, TransientReadRate: 0.5, TransientWriteRate: 0.5, MaxBurst: 2})
		plan.InstallJukebox("MO6300", juke)
	}
	var hl *core.HighLight
	var err error
	k.RunProc(func(p *sim.Proc) {
		hl, err = core.New(p, core.Config{
			SegBlocks: 64,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 24,
			MaxInodes: 256,
			Obs:       o,
		}, true)
		if err != nil {
			return
		}
		// Populate: a couple of files, one migrated.
		for i, name := range []string{"/alpha", "/beta"} {
			f, e := hl.FS.Create(p, name)
			if e != nil {
				err = e
				return
			}
			data := make([]byte, (i+1)*40*lfs.BlockSize)
			for j := range data {
				data[j] = byte(j * (i + 1))
			}
			if _, e := f.WriteAt(p, data, 0); e != nil {
				err = e
				return
			}
		}
		if err = hl.FS.Sync(p); err != nil {
			return
		}
		f, _ := hl.FS.Open(p, "/beta")
		if _, err = hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			return
		}
		err = hl.CompleteMigration(p)
	})
	return hl, juke, err
}
