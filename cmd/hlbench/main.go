// Command hlbench regenerates the evaluation tables of the HighLight paper
// (USENIX Winter 1993): the large-object benchmark (Table 2), file access
// delays (Table 3), the migration time breakdown (Table 4), raw device
// measurements (Table 5), and migrator throughput under disk-arm
// contention (Table 6).
//
// Usage:
//
//	hlbench [-table N] [-quick] [-disks N] [-stripe U] [-parity] [-streams K]
//	        [-trace FILE] [-json FILE] [-serve ADDR [-rounds N]]
//	        [-clients N [-arrival closed|poisson|bursty] [-deadline D]]
//	        [-profile] [-requests FILE]
//
// Without -table every table is produced. -quick runs a reduced-scale
// configuration (seconds instead of a minute); the default reproduces the
// paper's configuration: an 848 MB RZ57 partition, a 3.2 MB buffer cache,
// an HP 6300 MO jukebox constrained to 40 MB per platter, and a 51.2 MB
// large object.
//
// -disks splits the main disk's capacity over N spindles; -stripe U
// interleaves them with a stripe unit of U 4 KB blocks (0 concatenates)
// and -parity adds a rotating parity unit per stripe row. -streams K runs
// K concurrent tertiary I/O streams. The defaults keep the paper's
// single-spindle, single-stream configuration.
//
// -trace FILE additionally runs the migration + demand-fetch workload
// with full span retention and writes a Chrome trace-event JSON file
// (load it in chrome://tracing or Perfetto). The trace is keyed to the
// simulator's virtual clock, so repeated runs produce byte-identical
// files. -json FILE writes a machine-readable snapshot of every table's
// metrics plus the observability counters (see `make bench-json`).
//
// -clients N runs the closed-loop multi-client overload workload instead
// of the tables: N clients submit deadline-tagged reads through the
// admission-controlled front end (internal/svc), with the arrival process
// chosen by -arrival and the per-request virtual-time deadline by
// -deadline, and the run reports goodput, shed rate, and interactive
// latency quantiles.
//
// -profile measures the simulator itself on the wall clock: events
// dispatched per second, scheduler overhead per event, event-heap depth,
// and the most-dispatched processes over the migration workload. These
// are physical measurements (they vary by machine) and are never part of
// the deterministic benchmark snapshot.
//
// -requests FILE runs the traced overload cell and writes the /requests
// JSON document: per-request causal traces with critical-path breakdowns
// (queue-wait, cache-lookup, fetch-wait, stripe-io, drive-swap,
// media-transfer, retry-backoff) whose stage durations sum exactly to
// each request's end-to-end latency. Byte-reproducible across runs.
//
// -serve ADDR runs a multi-round migration + demand-fetch workload while
// serving live telemetry over HTTP: Prometheus-format /metrics (with the
// kernel self-profile appended), the per-segment heat map as /heatmap
// JSON, the migration decision audit as /decisions JSON, per-request
// traces as /requests JSON, and net/http/pprof under /debug/pprof/.
// Snapshots are
// published at deterministic virtual-time points, so the simulation runs
// the identical schedule whether or not anyone is scraping. After the
// workload the final snapshot stays up until interrupted. -rounds sets
// the number of workload rounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wl"
)

// writeTo creates path and streams fn into it.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	table := flag.Int("table", 0, "produce only this table (1-6); 0 = all")
	quick := flag.Bool("quick", false, "reduced-scale configuration for a fast run")
	ablations := flag.Bool("ablations", false, "also run the policy ablations (cache eviction, copy-out scheduling, STP exponents, migration granularity, media-fault rate, crash-recovery cost, replication, disk-farm scaling)")
	libraries := flag.Int("libraries", 1, "number of MO changers in the tertiary tier (replicated rigs)")
	replicas := flag.Int("replicas", 0, "tertiary copies per staged segment; <2 disables replication")
	disks := flag.Int("disks", 1, "spindles in the disk farm (capacity split evenly, private channels when >1)")
	stripeUnit := flag.Int("stripe", 0, "stripe unit in 4 KB blocks; 0 concatenates the farm")
	parity := flag.Bool("parity", false, "rotating parity unit per stripe row (needs -stripe and >=3 disks)")
	streams := flag.Int("streams", 1, "concurrent tertiary I/O streams; <2 keeps the single historical stream")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the migration workload to this file")
	jsonOut := flag.String("json", "", "write a machine-readable snapshot of all tables + obs counters to this file")
	serveAddr := flag.String("serve", "", "run the migration workload while serving live telemetry on this address (e.g. 127.0.0.1:8080)")
	rounds := flag.Int("rounds", 3, "workload rounds for -serve")
	clients := flag.Int("clients", 0, "run the closed-loop overload workload with this many clients through the admission-controlled front end (0 = off)")
	arrival := flag.String("arrival", "closed", "arrival process for -clients: closed|poisson|bursty")
	deadline := flag.Duration("deadline", 5*time.Second, "per-request virtual-time deadline for -clients")
	profile := flag.Bool("profile", false, "measure the sim kernel itself on the wall clock (events/sec, dispatch overhead, heap depth) over the migration workload")
	requestsOut := flag.String("requests", "", "write the traced overload run's /requests JSON (per-request critical-path breakdowns) to this file")
	flag.Parse()

	if err := cliutil.ValidateFarm(*disks, *stripeUnit, *parity); err != nil {
		fmt.Fprintf(os.Stderr, "hlbench: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.ValidateTertiary(*libraries, *replicas); err != nil {
		fmt.Fprintf(os.Stderr, "hlbench: %v\n", err)
		os.Exit(2)
	}

	scale := bench.FullScale()
	scaleName := "full"
	if *quick {
		scale = bench.QuickScale()
		scaleName = "quick"
	}
	scale.Libraries = *libraries
	scale.Replicas = *replicas
	scale.FarmDisks = *disks
	scale.StripeUnit = *stripeUnit
	scale.Parity = *parity
	scale.Streams = *streams

	if *profile {
		rep, err := bench.ProfileReport(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		return
	}

	if *requestsOut != "" {
		res, err := bench.RunOverload(bench.OverloadSpec{Arrival: wl.ArrivalPoisson, Load: 2})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -requests: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*requestsOut, res.RequestsJSON, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -requests: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d traced requests (%d stages) to %s\n",
			res.TracedRequests, res.StagesRecorded, *requestsOut)
		return
	}

	if *clients > 0 {
		arr, err := wl.ParseArrival(*arrival)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -arrival: %v\n", err)
			os.Exit(2)
		}
		rep, err := bench.OverloadReport(bench.OverloadSpec{
			Clients:  *clients,
			Arrival:  arr,
			Deadline: sim.Time(*deadline),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -clients: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		return
	}

	if *serveAddr != "" {
		srv := telemetry.NewServer()
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry on http://%s  (/metrics /heatmap /decisions /requests /debug/pprof/)\n", addr)
		if err := bench.ServeMigration(scale, srv, *rounds); err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -serve workload: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("workload complete; final snapshot still served (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
		return
	}

	if *traceOut != "" {
		if err := writeTo(*traceOut, func(f *os.File) error {
			return bench.TraceMigration(scale, f)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing)\n", *traceOut)
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(f *os.File) error {
			return bench.WriteSnapshot(f, scale, scaleName)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote benchmark snapshot to %s\n", *jsonOut)
	}
	if *traceOut != "" || *jsonOut != "" {
		if *table == 0 && !*ablations {
			return // exporters only; skip the table dump
		}
	}

	type entry struct {
		n   int
		run func() (*bench.Report, error)
	}
	entries := []entry{
		{1, func() (*bench.Report, error) { return bench.Table1(), nil }},
		{2, func() (*bench.Report, error) { return bench.Table2(scale) }},
		{3, func() (*bench.Report, error) { return bench.Table3(scale) }},
		{4, func() (*bench.Report, error) { return bench.Table4(scale) }},
		{5, func() (*bench.Report, error) { return bench.Table5(scale) }},
		{6, func() (*bench.Report, error) { return bench.Table6(scale) }},
	}
	ran := false
	for _, e := range entries {
		if *table != 0 && e.n != *table {
			continue
		}
		ran = true
		rep, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: table %d: %v\n", e.n, err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hlbench: no such table %d\n", *table)
		os.Exit(2)
	}
	if *ablations {
		for _, run := range []func() (*bench.Report, error){
			bench.AblationCachePolicy,
			bench.AblationCopyout,
			bench.AblationSTP,
			bench.AblationBlockRange,
			bench.AblationFaultRate,
			bench.AblationCrashRecovery,
			bench.AblationReplication,
			bench.AblationDiskScaling,
			bench.AblationOverload,
			bench.AblationPolicy,
			bench.AblationReqtrace,
		} {
			rep, err := run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "hlbench: ablation: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(rep)
		}
	}
}
