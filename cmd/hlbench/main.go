// Command hlbench regenerates the evaluation tables of the HighLight paper
// (USENIX Winter 1993): the large-object benchmark (Table 2), file access
// delays (Table 3), the migration time breakdown (Table 4), raw device
// measurements (Table 5), and migrator throughput under disk-arm
// contention (Table 6).
//
// Usage:
//
//	hlbench [-table N] [-quick]
//
// Without -table every table is produced. -quick runs a reduced-scale
// configuration (seconds instead of a minute); the default reproduces the
// paper's configuration: an 848 MB RZ57 partition, a 3.2 MB buffer cache,
// an HP 6300 MO jukebox constrained to 40 MB per platter, and a 51.2 MB
// large object.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "produce only this table (1-6); 0 = all")
	quick := flag.Bool("quick", false, "reduced-scale configuration for a fast run")
	ablations := flag.Bool("ablations", false, "also run the policy ablations (cache eviction, copy-out scheduling, STP exponents, migration granularity, media-fault rate, crash-recovery cost)")
	flag.Parse()

	scale := bench.FullScale()
	if *quick {
		scale = bench.QuickScale()
	}

	type entry struct {
		n   int
		run func() (*bench.Report, error)
	}
	entries := []entry{
		{1, func() (*bench.Report, error) { return bench.Table1(), nil }},
		{2, func() (*bench.Report, error) { return bench.Table2(scale) }},
		{3, func() (*bench.Report, error) { return bench.Table3(scale) }},
		{4, func() (*bench.Report, error) { return bench.Table4(scale) }},
		{5, func() (*bench.Report, error) { return bench.Table5(scale) }},
		{6, func() (*bench.Report, error) { return bench.Table6(scale) }},
	}
	ran := false
	for _, e := range entries {
		if *table != 0 && e.n != *table {
			continue
		}
		ran = true
		rep, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hlbench: table %d: %v\n", e.n, err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hlbench: no such table %d\n", *table)
		os.Exit(2)
	}
	if *ablations {
		for _, run := range []func() (*bench.Report, error){
			bench.AblationCachePolicy,
			bench.AblationCopyout,
			bench.AblationSTP,
			bench.AblationBlockRange,
			bench.AblationFaultRate,
			bench.AblationCrashRecovery,
		} {
			rep, err := run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "hlbench: ablation: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(rep)
		}
	}
}
