// Command hlfs creates and manipulates HighLight file system images: a
// simulated disk farm plus MO jukebox persisted as an image directory.
// Applications see "a normal filesystem, accessible through the usual
// operating system calls" (§4); hlfs plays the application.
//
// Usage:
//
//	hlfs -img DIR init [-disk-segs N] [-cache-segs N] [-vols N] [-segs-per-vol N] [-libraries N] [-replicas N]
//	                   [-spindles N [-stripe U [-parity]]] [-streams K]
//	hlfs -img DIR put LOCALFILE /path
//	hlfs -img DIR get /path LOCALFILE
//	hlfs -img DIR ls [/path]
//	hlfs -img DIR mkdir /path
//	hlfs -img DIR rm /path
//	hlfs -img DIR mv /old /new
//	hlfs -img DIR stat /path
//	hlfs -img DIR migrate [-policy stp|atime|namespace] [-min-age SECONDS] [-target-mb N] [-inodes]
//	hlfs -img DIR eject            (drop every clean cache line)
//	hlfs -img DIR volumes          (tertiary volume usage)
//	hlfs -img DIR cleanvolume [DEV VOL]   (tertiary media cleaner, §10)
//	hlfs -img DIR repair           (re-replicate under-replicated segments)
//	hlfs -img DIR replicas         (per-library health + replica map)
//	hlfs -img DIR stage [-user U] [-out] /path   (HSM stage-in, or stage-out with -out)
//	hlfs -img DIR pin [-user U] /path            (stage in and lock against eviction/cleaning/migration)
//	hlfs -img DIR unpin [-user U] /path
//	hlfs -img DIR quota [-staged-soft MB] [-staged-hard MB] [-pinned-hard MB] [USER]
//	                   (no USER: list every principal's standing; with USER and
//	                    limit flags: set that principal's limits, 0 clears one)
//	hlfs -img DIR info
//	hlfs -img DIR fsck
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/fsck"
	"repro/internal/hsm"
	"repro/internal/imagefs"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

func main() {
	img := flag.String("img", "", "image directory (required)")
	flag.Parse()
	args := flag.Args()
	if *img == "" || len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	k := sim.NewKernel()
	var inst *imagefs.Instance
	var err error
	if cmd == "init" {
		cfg := imagefs.DefaultConfig()
		fs := flag.NewFlagSet("init", flag.ExitOnError)
		fs.IntVar(&cfg.DiskSegs, "disk-segs", cfg.DiskSegs, "disk size in 1 MB segments")
		fs.IntVar(&cfg.CacheSegs, "cache-segs", cfg.CacheSegs, "tertiary cache limit in segments")
		fs.IntVar(&cfg.Vols, "vols", cfg.Vols, "jukebox volumes")
		fs.IntVar(&cfg.SegsPerVol, "segs-per-vol", cfg.SegsPerVol, "segments per volume")
		fs.IntVar(&cfg.Libraries, "libraries", cfg.Libraries, "number of identical MO changers (failure domains)")
		fs.IntVar(&cfg.Replicas, "replicas", cfg.Replicas, "tertiary copies per staged segment; <2 disables replication")
		fs.IntVar(&cfg.Spindles, "spindles", cfg.Spindles, "farm spindles the disk capacity is split over; <2 keeps one disk")
		fs.IntVar(&cfg.StripeUnit, "stripe", cfg.StripeUnit, "stripe unit in 4 KB blocks; 0 concatenates the farm")
		fs.BoolVar(&cfg.Parity, "parity", cfg.Parity, "rotating parity unit per stripe row (needs -stripe and >=3 spindles)")
		fs.IntVar(&cfg.Streams, "streams", cfg.Streams, "concurrent tertiary I/O streams; <2 keeps the single stream")
		must(fs.Parse(rest))
		if err := cliutil.ValidateFarm(cfg.Spindles, cfg.StripeUnit, cfg.Parity); err != nil {
			usageErr(err)
		}
		if err := cliutil.ValidateTertiary(cfg.Libraries, cfg.Replicas); err != nil {
			usageErr(err)
		}
		inst, err = imagefs.Init(k, *img, cfg)
		check(err)
		nlibs := cfg.Libraries
		if nlibs < 1 {
			nlibs = 1
		}
		fmt.Printf("initialized HighLight image in %s: %d MB disk, %d x %d-volume jukebox (%d MB each), cache %d MB\n",
			*img, cfg.DiskSegs*cfg.SegBlocks*lfs.BlockSize/(1<<20), nlibs, cfg.Vols,
			cfg.SegsPerVol*cfg.SegBlocks*lfs.BlockSize/(1<<20), cfg.CacheSegs*cfg.SegBlocks*lfs.BlockSize/(1<<20))
		k.Stop()
		return
	}

	inst, err = imagefs.Load(k, *img)
	check(err)
	hl := inst.HL
	dirty := true // most commands mutate; harmless to checkpoint+save anyway

	k.RunProc(func(p *sim.Proc) {
		t0 := p.Now()
		elapsed := func() float64 { return (p.Now() - t0).Seconds() }
		switch cmd {
		case "put":
			need(rest, 2)
			data, err := os.ReadFile(rest[0])
			check(err)
			f, err := hl.FS.Create(p, rest[1])
			check(err)
			_, err = f.WriteAt(p, data, 0)
			check(err)
			fmt.Printf("wrote %d bytes to %s (%.2f virtual seconds)\n", len(data), rest[1], elapsed())
		case "get":
			need(rest, 2)
			f, err := hl.FS.Open(p, rest[0])
			check(err)
			sz, err := f.Size(p)
			check(err)
			buf := make([]byte, sz)
			if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
				check(err)
			}
			check(os.WriteFile(rest[1], buf, 0o644))
			fmt.Printf("read %d bytes from %s (%.2f virtual seconds; tertiary fetches: %d)\n",
				sz, rest[0], elapsed(), hl.Svc.Stats().Fetches)
		case "ls":
			path := "/"
			if len(rest) > 0 {
				path = rest[0]
			}
			ents, err := hl.FS.ReadDir(p, path)
			check(err)
			for _, e := range ents {
				fi, err := hl.FS.Stat(p, path+"/"+e.Name)
				check(err)
				kind := "file"
				if e.Type == lfs.TypeDir {
					kind = "dir "
				}
				fmt.Printf("%s %10d  %s  %s\n", kind, fi.Size, residency(p, hl, e.Inum, e.Type), e.Name)
			}
			dirty = false
		case "mkdir":
			need(rest, 1)
			check(hl.FS.Mkdir(p, rest[0]))
		case "rm":
			need(rest, 1)
			check(hl.FS.Remove(p, rest[0]))
		case "mv":
			need(rest, 2)
			check(hl.FS.Rename(p, rest[0], rest[1]))
		case "stat":
			need(rest, 1)
			fi, err := hl.FS.Stat(p, rest[0])
			check(err)
			fmt.Printf("inum %d  type %v  size %d  mtime %.2fs  atime %.2fs  residency %s\n",
				fi.Inum, fi.Type, fi.Size, time.Duration(fi.Mtime).Seconds(), time.Duration(fi.Atime).Seconds(),
				residency(p, hl, fi.Inum, fi.Type))
			dirty = false
		case "migrate":
			fs := flag.NewFlagSet("migrate", flag.ExitOnError)
			policy := fs.String("policy", "stp", "stp | atime | namespace")
			minAge := fs.Int("min-age", 0, "exclude files accessed within SECONDS (virtual)")
			targetMB := fs.Int("target-mb", 0, "stop after staging this much (0 = everything eligible)")
			inodes := fs.Bool("inodes", false, "also migrate inodes")
			must(fs.Parse(rest))
			m := migrate.NewMigrator(hl)
			m.MigrateInodes = *inodes
			age := sim.Time(*minAge) * time.Second
			switch *policy {
			case "stp":
				m.Policy = &migrate.STP{TimeExp: 1, SizeExp: 1, MinAge: age}
			case "atime":
				m.Policy = &migrate.AccessTime{MinAge: age}
			case "namespace":
				ns := migrate.NewNamespace()
				ns.MinAge = age
				m.Policy = ns
			default:
				check(fmt.Errorf("unknown policy %q", *policy))
			}
			staged, err := m.RunOnce(p, int64(*targetMB)<<20)
			check(err)
			st := hl.Svc.Stats()
			fmt.Printf("migrated %.2f MB (%d tertiary copyouts, %.2f virtual seconds)\n",
				float64(staged)/(1<<20), st.Copyouts, elapsed())
		case "eject":
			n := 0
			for _, l := range hl.Cache.Lines() {
				if l.Staging || l.Pins > 0 {
					continue
				}
				check(hl.Svc.Eject(l.Tag))
				n++
			}
			fmt.Printf("ejected %d cache lines\n", n)
		case "volumes":
			for _, u := range hl.VolumeUsages() {
				fmt.Printf("device %d volume %2d: %2d used segs, %8d live bytes, %2d no-store\n",
					u.Device, u.Volume, u.UsedSegs, u.LiveBytes, u.NoStoreSegs)
			}
			dirty = false
		case "cleanvolume":
			var u core.VolumeUsage
			var ok bool
			if len(rest) >= 2 {
				fmt.Sscanf(rest[0]+" "+rest[1], "%d %d", &u.Device, &u.Volume)
				ok = true
			} else {
				u, ok = hl.SelectCleanableVolume()
			}
			if !ok {
				fmt.Println("no cleanable volume")
				dirty = false
				break
			}
			moved, err := hl.CleanVolume(p, u.Device, u.Volume)
			check(err)
			fmt.Printf("cleaned device %d volume %d: relocated %d blocks, medium erased and reusable\n",
				u.Device, u.Volume, moved)
		case "repair":
			repaired, err := hl.RepairPass(p)
			check(err)
			left := len(hl.ReplicationDeficits())
			fmt.Printf("repaired %d segment replicas; %d still under-replicated\n", repaired, left)
		case "replicas":
			dump.Replicas(os.Stdout, hl)
			dirty = false
		case "stage", "pin", "unpin":
			fs := flag.NewFlagSet(cmd, flag.ExitOnError)
			user := fs.String("user", "local", "principal the request is accounted to")
			var out *bool
			if cmd == "stage" {
				out = fs.Bool("out", false, "stage out to tertiary instead of in")
			}
			must(fs.Parse(rest))
			need(fs.Args(), 1)
			path := fs.Args()[0]
			s, err := hsm.Attach(p, hl, hsm.Config{})
			check(err)
			op := map[string]hsm.Op{"stage": hsm.OpStageIn, "pin": hsm.OpPin, "unpin": hsm.OpUnpin}[cmd]
			if out != nil && *out {
				op = hsm.OpStageOut
			}
			r, err := s.SubmitWait(p, op, path, *user)
			check(err)
			fmt.Printf("%s %s: %s, %d bytes (request %d for %s, %.2f virtual seconds)\n",
				op, path, r.State, r.Bytes, r.ID, *user, elapsed())
			dirty = false // the service checkpoints per drain
		case "quota":
			fs := flag.NewFlagSet("quota", flag.ExitOnError)
			ss := fs.Int("staged-soft", -1, "soft staged-bytes limit in MB (quota GC reclaims above it; 0 clears)")
			sh := fs.Int("staged-hard", -1, "hard staged-bytes limit in MB (admission sheds above it; 0 clears)")
			ph := fs.Int("pinned-hard", -1, "hard pinned-bytes limit in MB (0 clears)")
			must(fs.Parse(rest))
			s, err := hsm.Attach(p, hl, hsm.Config{})
			check(err)
			if fs.NArg() == 0 {
				if *ss >= 0 || *sh >= 0 || *ph >= 0 {
					usageErr(cliutil.Usagef("quota: limit flags need a USER to apply to"))
				}
				dump.HSMQuotas(os.Stdout, s)
				dirty = false
				break
			}
			user := fs.Arg(0)
			q := s.QuotaOf(user)
			if *ss >= 0 {
				q.StagedSoft = int64(*ss) << 20
			}
			if *sh >= 0 {
				q.StagedHard = int64(*sh) << 20
			}
			if *ph >= 0 {
				q.PinnedHard = int64(*ph) << 20
			}
			check(s.SetQuota(p, user, q))
			fmt.Printf("quota for %s: staged soft %s hard %s, pinned hard %s\n",
				user, mb(q.StagedSoft), mb(q.StagedHard), mb(q.PinnedHard))
			dirty = false // SetQuota persists the HSM state itself
		case "grow":
			segs := 64
			if len(rest) >= 1 {
				fmt.Sscanf(rest[0], "%d", &segs)
			}
			check(inst.AddDisk(p, segs))
			fmt.Printf("added a %d MB disk to the farm; %d clean segments now available\n",
				segs*hl.Amap.SegBlocks()*lfs.BlockSize/(1<<20), hl.FS.CleanSegs())
		case "df":
			u := hl.FS.Usage()
			segKB := hl.Amap.SegBlocks() * 4
			fmt.Printf("disk:     %4d segments (%d KB each): %d clean, %d log, %d cache, %d reserved, %d retired\n",
				u.DiskSegs, segKB, u.CleanSegs, u.DirtySegs, u.CacheSegs, u.ReservedSegs, u.NoStoreSegs)
			fmt.Printf("          %8.1f MB live in the log\n", float64(u.LiveBytes)/(1<<20))
			fmt.Printf("tertiary: %4d segments used, %8.1f MB live\n", u.TertSegsUsed, float64(u.TertLive)/(1<<20))
			fmt.Printf("inodes:   %d / %d\n", u.InodesUsed, u.InodesMax)
			dirty = false
		case "info":
			info(p, hl)
			dirty = false
		case "fsck":
			rep, err := fsck.Check(p, hl)
			check(err)
			rep.Write(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
			dirty = false
		default:
			usage()
		}
		if dirty {
			check(hl.FS.Checkpoint(p))
		}
	})
	check(inst.Save())
	k.Stop()
}

// residency summarizes where a file's blocks live.
func residency(p *sim.Proc, hl *core.HighLight, inum uint32, typ lfs.FileType) string {
	refs, err := hl.FS.FileBlockRefs(p, inum)
	if err != nil || len(refs) == 0 {
		return "empty   "
	}
	tert := 0
	for _, r := range refs {
		if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
			tert++
		}
	}
	switch {
	case tert == 0:
		return "disk    "
	case tert == len(refs):
		return "tertiary"
	default:
		return "mixed   "
	}
}

func info(p *sim.Proc, hl *core.HighLight) {
	sb := hl.FS.Superblock()
	fmt.Printf("segments: %d blocks (%d KB); disk %d segs (%d reserved); cache limit %d segs (%d in use)\n",
		sb.SegBlocks, sb.SegBlocks*4, sb.DiskSegs, sb.ReservedSegs, sb.CacheSegs, hl.FS.CacheSegsInUse())
	fmt.Printf("clean disk segments: %d\n", hl.FS.CleanSegs())
	st := hl.Svc.Stats()
	fmt.Printf("tertiary: %d segments, %d fetched, %d copied out; cache %d/%d lines\n",
		hl.FS.TsegCount(), st.Fetches, st.Copyouts, hl.Cache.Len(), hl.Cache.Capacity())
	fs := hl.FS.Stats()
	fmt.Printf("fs: %d partial segments written, %d checkpoints, %d segments cleaned\n",
		fs.PartialSegs, fs.Checkpoints, fs.SegsCleaned)
}

// mb renders a byte limit for the quota confirmation line.
func mb(v int64) string {
	if v <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d MB", v>>20)
}

func usageErr(err error) {
	fmt.Fprintf(os.Stderr, "hlfs: %v\n", err)
	os.Exit(2)
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func must(err error) {
	if err != nil {
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hlfs: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hlfs -img DIR COMMAND ...
commands: init, put, get, ls, mkdir, rm, mv, stat, migrate, eject, volumes, cleanvolume, repair, replicas, stage, pin, unpin, quota, grow, df, info, fsck
run "hlfs -img DIR init" first; see the command doc comment for flags`)
	os.Exit(2)
}
