// Command benchcheck guards the committed benchmark baseline: it builds
// a fresh `hlbench -json` snapshot in-process at quick scale and diffs
// it against the newest committed BENCH_*.json within per-metric
// tolerances. The simulator is deterministic, so genuine drift means a
// code change altered behavior — either a regression (fix it) or an
// intended change (regenerate the baseline with `make bench-json`).
//
// Tolerances are deliberately loose relative to the simulator's
// determinism: table metrics and counters may move 10%, span totals and
// latency quantiles 15%, before the check fails. A metric present in
// the baseline but missing from the fresh snapshot always fails.
//
// Usage:
//
//	benchcheck [-baseline FILE] [-v]
//
// Exits 0 when every metric is within tolerance, 1 on regression, 2 on
// usage/setup errors (no baseline, schema mismatch).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bench"
)

// tol is one comparison tolerance: a relative fraction plus an absolute
// floor (whichever allows more), so tiny baselines aren't held to
// sub-rounding precision.
type tol struct {
	rel, abs float64
}

var (
	tolTable    = tol{rel: 0.10, abs: 0.02}
	tolCounter  = tol{rel: 0.10, abs: 2}
	tolSpan     = tol{rel: 0.15, abs: 0.02}
	tolQuantile = tol{rel: 0.15, abs: 0.005}
)

func (t tol) within(base, fresh float64) bool {
	return math.Abs(fresh-base) <= math.Max(t.abs, t.rel*math.Abs(base))
}

// checker accumulates per-metric verdicts.
type checker struct {
	verbose  bool
	failures int
	checked  int
}

func (c *checker) compare(name string, t tol, base, fresh float64, freshHas bool) {
	c.checked++
	switch {
	case !freshHas:
		c.failures++
		fmt.Printf("FAIL %-46s baseline %.6g, missing from fresh snapshot\n", name, base)
	case !t.within(base, fresh):
		c.failures++
		fmt.Printf("FAIL %-46s baseline %.6g, fresh %.6g (|Δ| %.3g > tol max(%.3g, %.0f%%))\n",
			name, base, fresh, math.Abs(fresh-base), t.abs, t.rel*100)
	case c.verbose:
		fmt.Printf("ok   %-46s baseline %.6g, fresh %.6g\n", name, base, fresh)
	}
}

// newestBaseline picks the lexically last BENCH_*.json in dir — the
// naming convention keeps them ordered.
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline in %s (run `make bench-json`)", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	baseline := flag.String("baseline", "", "baseline snapshot file (default: newest BENCH_*.json in the working directory)")
	verbose := flag.Bool("v", false, "also print metrics that pass")
	flag.Parse()

	path := *baseline
	if path == "" {
		var err error
		path, err = newestBaseline(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	var base bench.BenchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: parsing %s: %v\n", path, err)
		os.Exit(2)
	}

	fresh, err := bench.BuildSnapshot(bench.QuickScale(), "quick")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: building fresh snapshot: %v\n", err)
		os.Exit(2)
	}
	if base.Schema != fresh.Schema {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline %s has schema %q, fresh snapshot %q — regenerate with `make bench-json`\n",
			path, base.Schema, fresh.Schema)
		os.Exit(2)
	}
	if base.Scale != fresh.Scale {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline %s is %q scale, fresh snapshot %q — regenerate with `make bench-json`\n",
			path, base.Scale, fresh.Scale)
		os.Exit(2)
	}

	c := &checker{verbose: *verbose}
	for _, tbl := range sortedKeys(base.Tables) {
		freshTbl := fresh.Tables[tbl]
		for _, name := range sortedKeys(base.Tables[tbl]) {
			fv, ok := freshTbl[name]
			c.compare(tbl+"."+name, tolTable, base.Tables[tbl][name], fv, ok)
		}
	}
	for _, name := range sortedKeys(base.Counters) {
		fv, ok := fresh.Counters[name]
		c.compare("counter."+name, tolCounter, float64(base.Counters[name]), float64(fv), ok)
	}
	for _, name := range sortedKeys(base.SpanSeconds) {
		fv, ok := fresh.SpanSeconds[name]
		c.compare("span_seconds."+name, tolSpan, base.SpanSeconds[name], fv, ok)
	}
	for _, hist := range sortedKeys(base.Quantiles) {
		freshQ := fresh.Quantiles[hist]
		for _, q := range sortedKeys(base.Quantiles[hist]) {
			fv, ok := freshQ[q]
			c.compare("quantile."+hist+"."+q, tolQuantile, base.Quantiles[hist][q], fv, ok)
		}
	}

	if c.failures > 0 {
		fmt.Printf("benchcheck: %d of %d metrics out of tolerance vs %s\n", c.failures, c.checked, path)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d metrics within tolerance of %s\n", c.checked, path)
}
