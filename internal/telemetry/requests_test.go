package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

func buildTracer() *reqtrace.Tracer {
	tc := reqtrace.New(4, 2)
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }
	for i := 1; i <= 3; i++ {
		tr := tc.Start(int64(i), "interactive", ms(10*i), ms(10*i+500))
		q := tr.StageStart(reqtrace.KindQueueWait, ms(10*i), "")
		tr.StageEnd(q, ms(10*i+2))
		f := tr.StageStart(reqtrace.KindFetchWait, ms(10*i+2), "seg 7")
		tr.StageEnd(f, ms(10*i+2+5*i))
		tc.Seal(tr, ms(10*i+2+5*i), nil)
	}
	return tc
}

func TestRenderRequestsShapeAndDeterminism(t *testing.T) {
	b1 := RenderRequests(buildTracer(), 2*second)
	b2 := RenderRequests(buildTracer(), 2*second)
	if string(b1) != string(b2) {
		t.Fatal("two identical tracers rendered different /requests documents")
	}
	var doc struct {
		Started int64 `json:"started"`
		Sealed  int64 `json:"sealed"`
		Classes []struct {
			Class   string `json:"class"`
			Slowest []struct {
				ID        int64              `json:"id"`
				Latency   float64            `json:"latency_seconds"`
				Breakdown map[string]float64 `json:"breakdown_seconds"`
			} `json:"slowest"`
		} `json:"classes"`
		Recent []struct {
			ID int64 `json:"id"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("/requests not JSON: %v", err)
	}
	if doc.Started != 3 || doc.Sealed != 3 || len(doc.Recent) != 3 {
		t.Fatalf("counts wrong: %+v", doc)
	}
	if len(doc.Classes) != 1 || doc.Classes[0].Class != "interactive" {
		t.Fatalf("classes wrong: %+v", doc.Classes)
	}
	slow := doc.Classes[0].Slowest
	if len(slow) != 2 || slow[0].ID != 3 {
		t.Fatalf("slowest wrong: %+v", slow)
	}
	// Breakdown covers the whole request: values sum to the latency.
	var sum float64
	for _, v := range slow[0].Breakdown {
		sum += v
	}
	if sum != slow[0].Latency {
		t.Fatalf("breakdown sum %g != latency %g", sum, slow[0].Latency)
	}
}

func TestRenderRequestsNilTracer(t *testing.T) {
	b := RenderRequests(nil, second)
	var doc requestsDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("nil-tracer document not JSON: %v", err)
	}
	if doc.Started != 0 || len(doc.Recent) != 0 {
		t.Fatalf("nil tracer rendered traces: %+v", doc)
	}
}

func TestRenderProfileAndMetricsConcat(t *testing.T) {
	k := sim.NewKernel()
	k.EnableProfile()
	k.RunProc(func(p *sim.Proc) { p.Sleep(second) })
	pb := RenderProfile(k.ProfileSnapshot())
	for _, want := range []string{"hl_sim_events_total", "hl_sim_events_per_sec", "hl_sim_heap_high_water"} {
		if !strings.Contains(string(pb), want) {
			t.Fatalf("profile missing %q:\n%s", want, pb)
		}
	}

	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Publish(&Snapshot{Metrics: []byte("hl_virtual_time_seconds 1\n"), Profile: pb})
	body := httpGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "hl_virtual_time_seconds 1") || !strings.Contains(body, "hl_sim_events_per_sec") {
		t.Fatalf("/metrics did not concatenate profile:\n%s", body)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			return b.String()
		}
	}
}

// TestServeOnCallerListener pins satellite behavior: the server can run
// on a listener the caller created, and Close releases the port so the
// next round can bind it again — no leak between benchmark rounds.
func TestServeOnCallerListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	addr, err := srv.Serve(ln)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ln.Addr().String() {
		t.Fatalf("Serve reported %q, listener is %q", addr, ln.Addr())
	}
	if _, err := srv.Serve(ln); err == nil {
		t.Fatal("second Serve on a live server did not fail")
	}
	srv.Publish(&Snapshot{Requests: []byte(`{"started":0}`)})
	if body := httpGet(t, "http://"+addr+"/requests"); !strings.Contains(body, `"started"`) {
		t.Fatalf("/requests body:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The port is free again: bind the exact same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln2.Close()
	// And a closed server can be reused with a fresh listener.
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
