package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

const second = sim.Time(time.Second)

// buildState assembles a small deterministic obs/heat/audit state.
func buildState(t *testing.T) (*obs.Obs, *attr.Table, *attr.Audit, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	o := obs.New(k)
	var now sim.Time
	k.RunProc(func(p *sim.Proc) {
		t0 := p.Now()
		p.Sleep(2 * second)
		o.Span("tertiary.io", "fp.read", "ReadSegment", t0)
		o.Counter("cache.hits").Add(7)
		o.Gauge("cache.lines").Set(3)
		h := o.Histogram("tertiary.fetch_wait", obs.LatencyBounds)
		h.Observe(5 * sim.Time(time.Millisecond))
		h.Observe(2 * second)
		now = p.Now()
	})
	k.Stop()
	heat := attr.NewTable(0)
	heat.Touch(4, attr.Fetch, second)
	heat.Touch(4, attr.Hit, 2*second)
	heat.Touch(9, attr.Stage, 2*second)
	audit := attr.NewAudit(0)
	audit.Record(attr.Decision{T: second, Actor: "migrator", Subject: "inode:5", Seg: 4,
		Verdict: attr.VerdictStaged, Inputs: []attr.Input{attr.In("bytes", 4096)}})
	audit.Record(attr.Decision{T: 2 * second, Actor: "tcleaner", Subject: "seg:9", Seg: 9,
		Verdict: attr.VerdictSkipped, Reason: "no live data"})
	return o, heat, audit, now
}

func TestCollectMetricsShape(t *testing.T) {
	o, heat, audit, now := buildState(t)
	sn := Collect(o, heat, audit, now)
	m := string(sn.Metrics)
	for _, want := range []string{
		"hl_virtual_time_seconds 2",
		"# TYPE hl_cache_hits_total counter",
		"hl_cache_hits_total 7",
		"# TYPE hl_cache_lines gauge",
		"hl_cache_lines 3",
		"hl_cache_lines_max 3",
		"# TYPE hl_tertiary_fetch_wait_seconds histogram",
		`hl_tertiary_fetch_wait_seconds_bucket{le="+Inf"} 2`,
		"hl_tertiary_fetch_wait_seconds_count 2",
		"hl_tertiary_fetch_wait_seconds_p50",
		"hl_tertiary_fetch_wait_seconds_p99",
		`hl_span_seconds_total{track="tertiary.io",cat="fp.read"} 2`,
		`hl_segment_heat{seg="4"}`,
		"hl_decisions_recorded_total 2",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
	// Heatmap and decisions are valid JSON with the expected entries.
	var hm attr.Snapshot
	if err := json.Unmarshal(sn.Heatmap, &hm); err != nil {
		t.Fatalf("heatmap not JSON: %v", err)
	}
	if len(hm.Segments) != 2 || hm.Segments[0].Tag != 4 {
		t.Fatalf("heatmap segments wrong: %+v", hm.Segments)
	}
	var dd struct {
		Total  int64           `json:"total"`
		Recent []attr.Decision `json:"recent"`
	}
	if err := json.Unmarshal(sn.Decisions, &dd); err != nil {
		t.Fatalf("decisions not JSON: %v", err)
	}
	if dd.Total != 2 || len(dd.Recent) != 2 || dd.Recent[1].Verdict != attr.VerdictSkipped {
		t.Fatalf("decisions wrong: %+v", dd)
	}
}

func TestCollectDeterministicBytes(t *testing.T) {
	o1, h1, a1, now1 := buildState(t)
	o2, h2, a2, now2 := buildState(t)
	s1, s2 := Collect(o1, h1, a1, now1), Collect(o2, h2, a2, now2)
	if string(s1.Metrics) != string(s2.Metrics) ||
		string(s1.Heatmap) != string(s2.Heatmap) ||
		string(s1.Decisions) != string(s2.Decisions) {
		t.Fatal("two identical states rendered different snapshots")
	}
}

func TestCollectNilSources(t *testing.T) {
	sn := Collect(nil, nil, nil, second)
	if !strings.Contains(string(sn.Metrics), "hl_virtual_time_seconds 1") {
		t.Fatalf("nil-source metrics missing clock:\n%s", sn.Metrics)
	}
	if !json.Valid(sn.Heatmap) || !json.Valid(sn.Decisions) {
		t.Fatal("nil-source exports not valid JSON")
	}
}

func TestServerEndpoints(t *testing.T) {
	o, heat, audit, now := buildState(t)
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	// Before the first publish every data endpoint is 503.
	for _, path := range []string{"/metrics", "/heatmap", "/decisions"} {
		if code, _ := get(path); code != 503 {
			t.Fatalf("GET %s before publish = %d, want 503", path, code)
		}
	}

	srv.Publish(Collect(o, heat, audit, now))
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hl_cache_hits_total 7") {
		t.Fatalf("GET /metrics = %d:\n%s", code, body)
	}
	if code, body := get("/heatmap"); code != 200 || !strings.Contains(body, `"tag": 4`) {
		t.Fatalf("GET /heatmap = %d:\n%s", code, body)
	}
	if code, body := get("/decisions"); code != 200 || !strings.Contains(body, attr.VerdictSkipped) {
		t.Fatalf("GET /decisions = %d:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("GET /debug/pprof/cmdline = %d", code)
	}
}

func TestServerStartAndClose(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("bound address %q", addr)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilServerIsInert(t *testing.T) {
	var s *Server
	s.Publish(&Snapshot{})
	if s.Current() != nil {
		t.Fatal("nil server has a snapshot")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("nil server started")
	}
}

func TestHottestSegments(t *testing.T) {
	hm := &attr.Snapshot{Segments: []attr.SegEntry{
		{Tag: 1, Heat: 2}, {Tag: 2, Heat: 9}, {Tag: 3, Heat: 2},
	}}
	top := HottestSegments(hm, 2)
	if len(top) != 2 || top[0].Tag != 2 || top[1].Tag != 1 {
		t.Fatalf("HottestSegments = %+v", top)
	}
	if HottestSegments(nil, 3) != nil {
		t.Fatal("nil snapshot produced segments")
	}
}
