package telemetry

import (
	"fmt"
	"strings"

	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// RequestsExported caps how many recent traces /requests serves (the
// per-class slowest exemplars are always included in full).
const RequestsExported = 64

// requestsDoc is the /requests JSON shape: tracer totals, the slowest
// exemplars per class with their critical-path breakdowns, and the tail
// of recently completed requests. Everything is derived from virtual
// time, so two identical runs render byte-identical documents.
type requestsDoc struct {
	VirtualTimeSeconds float64    `json:"virtual_time_seconds"`
	Started            int64      `json:"started"`
	Sealed             int64      `json:"sealed"`
	StagesRecorded     int64      `json:"stages_recorded"`
	Classes            []classDoc `json:"classes"`
	Recent             []traceDoc `json:"recent"`
}

type classDoc struct {
	Class   string     `json:"class"`
	Slowest []traceDoc `json:"slowest"`
}

type traceDoc struct {
	ID              int64              `json:"id"`
	Class           string             `json:"class"`
	SubmitSeconds   float64            `json:"submit_seconds"`
	LatencySeconds  float64            `json:"latency_seconds"`
	DeadlineSeconds float64            `json:"deadline_seconds,omitempty"`
	Error           string             `json:"error,omitempty"`
	Breakdown       map[string]float64 `json:"breakdown_seconds"`
	Stages          []stageDoc         `json:"stages"`
	DroppedStages   int                `json:"dropped_stages,omitempty"`
}

type stageDoc struct {
	Kind         string  `json:"kind"`
	Note         string  `json:"note,omitempty"`
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
}

func traceToDoc(tr *reqtrace.Trace) traceDoc {
	d := traceDoc{
		ID:              tr.ID,
		Class:           tr.Class,
		SubmitSeconds:   tr.Submit.Seconds(),
		LatencySeconds:  tr.Latency().Seconds(),
		DeadlineSeconds: tr.Deadline.Seconds(),
		Error:           tr.Err,
		Breakdown:       make(map[string]float64),
		Stages:          make([]stageDoc, 0, len(tr.Stages)),
		DroppedStages:   tr.Dropped,
	}
	for k, dur := range tr.Breakdown() {
		if dur > 0 {
			d.Breakdown[reqtrace.Kind(k).String()] = dur.Seconds()
		}
	}
	for _, s := range tr.Stages {
		d.Stages = append(d.Stages, stageDoc{
			Kind:         s.Kind.String(),
			Note:         s.Note,
			StartSeconds: s.Start.Seconds(),
			EndSeconds:   s.End.Seconds(),
		})
	}
	return d
}

// RenderRequests renders a tracer's retained traces into the /requests
// JSON document. Deterministic: classes sorted, exemplars slowest-first
// with ID tie-breaks, recent ring oldest-first, map keys sorted by the
// JSON encoder. A nil tracer renders the empty document.
func RenderRequests(t *reqtrace.Tracer, now sim.Time) []byte {
	doc := requestsDoc{
		VirtualTimeSeconds: now.Seconds(),
		Classes:            []classDoc{},
		Recent:             []traceDoc{},
	}
	doc.Started, doc.Sealed, doc.StagesRecorded = t.Counts()
	for _, c := range t.Classes() {
		cd := classDoc{Class: c, Slowest: []traceDoc{}}
		for _, tr := range t.Slowest(c, 0x7fffffff) {
			cd.Slowest = append(cd.Slowest, traceToDoc(tr))
		}
		doc.Classes = append(doc.Classes, cd)
	}
	recent := t.Recent()
	if len(recent) > RequestsExported {
		recent = recent[len(recent)-RequestsExported:]
	}
	for _, tr := range recent {
		doc.Recent = append(doc.Recent, traceToDoc(tr))
	}
	return marshal(doc)
}

// RenderProfile renders the sim kernel's self-profile as Prometheus
// text. The wall-clock figures (events/sec, dispatch ns) are physical
// measurements of the simulator process and differ run to run; they are
// kept in their own Snapshot field, never mixed into the deterministic
// Metrics payload the reproducibility tests byte-compare.
func RenderProfile(pr sim.Profile) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP hl_sim_events_total Events dispatched by the sim kernel.\n")
	fmt.Fprintf(&b, "# TYPE hl_sim_events_total counter\nhl_sim_events_total %d\n", pr.TotalEvents)
	fmt.Fprintf(&b, "# TYPE hl_sim_events_skipped_total counter\nhl_sim_events_skipped_total %d\n", pr.SkippedEvents)
	fmt.Fprintf(&b, "# TYPE hl_sim_heap_high_water gauge\nhl_sim_heap_high_water %d\n", pr.HeapHighWater)
	fmt.Fprintf(&b, "# TYPE hl_sim_procs gauge\nhl_sim_procs %d\n", pr.Procs)
	fmt.Fprintf(&b, "# TYPE hl_sim_proc_switches_total counter\nhl_sim_proc_switches_total %d\n", pr.TotalSwitches)
	if pr.Enabled {
		fmt.Fprintf(&b, "# HELP hl_sim_events_per_sec Wall-clock event dispatch rate since EnableProfile.\n")
		fmt.Fprintf(&b, "# TYPE hl_sim_events_per_sec gauge\nhl_sim_events_per_sec %s\n", fnum(pr.EventsPerSec))
		fmt.Fprintf(&b, "# TYPE hl_sim_dispatch_avg_ns gauge\nhl_sim_dispatch_avg_ns %s\n", fnum(pr.AvgDispatchNs))
		fmt.Fprintf(&b, "# TYPE hl_sim_wall_ns_total counter\nhl_sim_wall_ns_total %d\n", pr.WallNs)
	}
	return []byte(b.String())
}
