// Package telemetry exports a deterministic simulation's state to live
// HTTP consumers without perturbing it. The split is strict:
//
//   - Collect runs on the *simulation* side, at deterministic points of
//     the run (phase marks, workload steps). It reads the obs registry,
//     the heat-attribution table, and the decision audit, and renders
//     them into an immutable Snapshot (Prometheus text, heat-map JSON,
//     decision JSON). Collect only reads and allocates — it never
//     advances virtual time, takes locks the sim holds, or mutates an
//     instrument — so a run that collects is byte-identical to one that
//     does not (pinned by the bench and crash determinism tests).
//
//   - Server runs on the *wall-clock* side: an http.Server whose
//     handlers serve whichever Snapshot was last Published through an
//     atomic pointer. HTTP requests therefore never touch live sim
//     structures, and the sim never blocks on a slow scraper.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// DecisionsExported caps how many recent audit entries /decisions
// serves (the full ring stays queryable via hldump -why).
const DecisionsExported = 256

// Snapshot is one immutable, fully rendered export of the sim's state.
// Metrics, Heatmap, Decisions, and Requests are pure functions of the
// virtual-time run and byte-reproducible; Profile holds the wall-clock
// kernel self-profile and is the one section the determinism tests must
// never compare.
type Snapshot struct {
	Metrics   []byte // Prometheus text exposition format
	Heatmap   []byte // attr.Snapshot JSON
	Decisions []byte // recent audit entries, JSON
	Requests  []byte // per-request traces (RenderRequests JSON)
	Profile   []byte // sim kernel self-profile, Prometheus text (wall clock!)
}

// Collect renders the current state of an observability domain, a heat
// table, and a decision audit into a Snapshot as of virtual time now.
// Any of the sources may be nil; the corresponding sections are empty.
func Collect(o *obs.Obs, heat *attr.Table, audit *attr.Audit, now sim.Time) *Snapshot {
	hm := heat.Snapshot(now)
	return &Snapshot{
		Metrics:   renderMetrics(o, hm, audit, now),
		Heatmap:   marshal(hm),
		Decisions: marshal(decisionsDoc{Total: audit.Total(), Recent: audit.Recent(DecisionsExported)}),
	}
}

type decisionsDoc struct {
	Total  int64           `json:"total"`
	Recent []attr.Decision `json:"recent"`
}

func marshal(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Every exported type marshals; reaching this is a programming
		// error worth surfacing in the payload rather than panicking a
		// serving process.
		return []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	return append(b, '\n')
}

// renderMetrics emits the Prometheus text exposition format. Families
// appear in a fixed order (virtual time, counters, gauges, histograms,
// span aggregates, heat, audit) and instruments in first-appearance
// order, so two collections of identical state are byte-identical.
func renderMetrics(o *obs.Obs, hm *attr.Snapshot, audit *attr.Audit, now sim.Time) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP hl_virtual_time_seconds Simulation virtual clock.\n")
	fmt.Fprintf(&b, "# TYPE hl_virtual_time_seconds gauge\n")
	fmt.Fprintf(&b, "hl_virtual_time_seconds %s\n", fnum(now.Seconds()))

	for _, c := range o.Counters() {
		name := "hl_" + sanitize(c.Name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, c.Value())
	}
	for _, g := range o.Gauges() {
		name := "hl_" + sanitize(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, g.Value())
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %d\n", name, name, g.Max())
	}
	for _, h := range o.Histograms() {
		name := "hl_" + sanitize(h.Name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fnum(h.Bounds[i].Seconds())
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", name, fnum(h.Sum.Seconds()))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.N)
		fmt.Fprintf(&b, "# TYPE %s_p50 gauge\n%s_p50 %s\n", name, name, fnum(h.P50().Seconds()))
		fmt.Fprintf(&b, "# TYPE %s_p99 gauge\n%s_p99 %s\n", name, name, fnum(h.P99().Seconds()))
	}
	if aggs := o.Aggregates(); len(aggs) > 0 {
		fmt.Fprintf(&b, "# TYPE hl_span_seconds_total counter\n")
		for _, a := range aggs {
			fmt.Fprintf(&b, "hl_span_seconds_total{track=%q,cat=%q} %s\n", a.Track, a.Cat, fnum(a.Total.Seconds()))
		}
		fmt.Fprintf(&b, "# TYPE hl_span_count_total counter\n")
		for _, a := range aggs {
			fmt.Fprintf(&b, "hl_span_count_total{track=%q,cat=%q} %d\n", a.Track, a.Cat, a.Count)
		}
	}
	if hm != nil && len(hm.Segments) > 0 {
		fmt.Fprintf(&b, "# HELP hl_segment_heat Exponentially decayed per-segment heat.\n")
		fmt.Fprintf(&b, "# TYPE hl_segment_heat gauge\n")
		for _, s := range hm.Segments {
			fmt.Fprintf(&b, "hl_segment_heat{seg=\"%d\"} %s\n", s.Tag, fnum(s.Heat))
		}
	}
	fmt.Fprintf(&b, "# TYPE hl_decisions_recorded_total counter\n")
	fmt.Fprintf(&b, "hl_decisions_recorded_total %d\n", audit.Total())
	return []byte(b.String())
}

// fnum formats a float the same way everywhere: shortest representation
// that round-trips, fixed algorithm, no locale.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sanitize maps an instrument name ("cache.hits") onto the Prometheus
// metric-name alphabet ([a-zA-Z0-9_]).
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// HottestSegments returns the n highest-heat segments of a heat-map
// snapshot, hottest first (ties broken by tag). Exporters and dumps
// share this so "top segments" always means the same thing.
func HottestSegments(hm *attr.Snapshot, n int) []attr.SegEntry {
	if hm == nil {
		return nil
	}
	out := append([]attr.SegEntry(nil), hm.Segments...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Heat != out[b].Heat {
			return out[a].Heat > out[b].Heat
		}
		return out[a].Tag < out[b].Tag
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
