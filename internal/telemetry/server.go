package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server serves the most recently Published Snapshot over HTTP:
//
//	/metrics     Prometheus text exposition
//	/heatmap     per-segment/per-file heat attribution, JSON
//	/decisions   recent migration decision audit entries, JSON
//	/debug/pprof wall-clock profiling of the simulator process itself
//
// Handlers only ever Load the snapshot pointer, so they are safe
// against the simulation thread and cannot slow it down. A nil *Server
// is valid everywhere and inert, so the same workload code runs with
// telemetry on or off.
type Server struct {
	mux  *http.ServeMux
	cur  atomic.Pointer[Snapshot]
	http *http.Server
	ln   net.Listener
}

// NewServer builds a server with all routes registered (not yet
// listening; call Start, or mount Handler on a listener of your own).
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.serve(func(sn *Snapshot) ([]byte, string) {
		ctype := "text/plain; version=0.0.4; charset=utf-8"
		if len(sn.Profile) == 0 {
			return sn.Metrics, ctype
		}
		// Append the wall-clock kernel profile without mutating the
		// immutable snapshot the sim side owns.
		out := make([]byte, 0, len(sn.Metrics)+len(sn.Profile))
		out = append(append(out, sn.Metrics...), sn.Profile...)
		return out, ctype
	}))
	s.mux.HandleFunc("/requests", s.serve(func(sn *Snapshot) ([]byte, string) {
		return sn.Requests, "application/json"
	}))
	s.mux.HandleFunc("/heatmap", s.serve(func(sn *Snapshot) ([]byte, string) {
		return sn.Heatmap, "application/json"
	}))
	s.mux.HandleFunc("/decisions", s.serve(func(sn *Snapshot) ([]byte, string) {
		return sn.Decisions, "application/json"
	}))
	// net/http/pprof registers on DefaultServeMux at import; route the
	// explicit handlers instead so this mux stays self-contained.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

func (s *Server) serve(pick func(*Snapshot) ([]byte, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sn := s.cur.Load()
		if sn == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		body, ctype := pick(sn)
		w.Header().Set("Content-Type", ctype)
		w.Write(body)
	}
}

// Publish swaps in a new snapshot for subsequent requests. Nil-safe,
// so workloads can publish unconditionally.
func (s *Server) Publish(sn *Snapshot) {
	if s == nil || sn == nil {
		return
	}
	s.cur.Store(sn)
}

// Current returns the last published snapshot (nil if none, or on a
// nil server). Tests use it to assert on exports without HTTP.
func (s *Server) Current() *Snapshot {
	if s == nil {
		return nil
	}
	return s.cur.Load()
}

// Handler exposes the route mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", fmt.Errorf("telemetry: Start on nil server")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln)
}

// Serve serves on a caller-provided listener in a background goroutine,
// returning the bound address. The caller keeps ownership of listener
// creation (a test can bind "127.0.0.1:0" itself and know the port
// before the server ever sees it); Close still tears the listener down.
func (s *Server) Serve(ln net.Listener) (string, error) {
	if s == nil {
		return "", fmt.Errorf("telemetry: Serve on nil server")
	}
	if s.http != nil {
		return "", fmt.Errorf("telemetry: server already serving on %s", s.ln.Addr())
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the server down and releases its port: a graceful drain
// of in-flight requests first, then a hard close if any linger. Safe on
// a nil or never-started server, and idempotent, so benchmark rounds
// that start one server per round never leak listeners between rounds.
func (s *Server) Close() error {
	if s == nil || s.http == nil {
		return nil
	}
	srv := s.http
	s.http = nil
	s.ln = nil
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}
