package wl

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/ffs"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func smallSpec() LargeObjectSpec {
	return LargeObjectSpec{Path: "/obj", Frames: 64, SeqFrames: 32, SmallFrames: 16, Seed: 7}
}

func TestLargeObjectOnLFS(t *testing.T) {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 64*64, nil)
	amap := addr.New(64, 64)
	k.RunProc(func(p *sim.Proc) {
		fs, err := lfs.Format(p, lfs.DiskDevice{BD: disk}, amap, lfs.Options{MaxInodes: 64})
		if err != nil {
			t.Fatal(err)
		}
		target := LFSTarget{Label: "lfs", FS: fs}
		f, err := CreateLargeObject(p, target, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunLargeObject(p, target, f, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 6 {
			t.Fatalf("got %d phases, want 6", len(results))
		}
		for _, r := range results {
			if r.Elapsed <= 0 || r.Bytes <= 0 {
				t.Fatalf("phase %s has empty measurement: %+v", r.Name, r)
			}
			if r.ThroughputKBs() <= 0 {
				t.Fatalf("phase %s throughput zero", r.Name)
			}
		}
		if results[0].Name != "sequential read" || results[5].Name != "write 80/20" {
			t.Fatalf("phase order wrong: %v", results)
		}
	})
}

func TestLargeObjectOnFFS(t *testing.T) {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 8192, nil)
	k.RunProc(func(p *sim.Proc) {
		fs, err := ffs.Format(p, disk, ffs.Options{MaxInodes: 64})
		if err != nil {
			t.Fatal(err)
		}
		target := FFSTarget{Label: "ffs", FS: fs}
		f, err := CreateLargeObject(p, target, smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunLargeObject(p, target, f, smallSpec()); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBuildTreeAndScan(t *testing.T) {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 128*16, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 2, 16, 16*lfs.BlockSize, nil)
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks: 16,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 8,
			MaxInodes: 256,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := BuildTree(p, hl, TreeSpec{Dirs: 3, FilesPerDir: 4, FileBlocks: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 12 {
			t.Fatalf("built %d files, want 12", len(paths))
		}
		fi, err := hl.FS.Stat(p, paths[0])
		if err != nil || fi.Size == 0 {
			t.Fatalf("stat %s: %+v %v", paths[0], fi, err)
		}
		if err := hl.FS.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		f, err := hl.FS.Open(p, paths[0])
		if err != nil {
			t.Fatal(err)
		}
		fb, tot, err := SequentialScan(p, f, int64(fi.Size))
		if err != nil {
			t.Fatal(err)
		}
		if fb <= 0 || tot < fb {
			t.Fatalf("scan times wrong: first=%v total=%v", fb, tot)
		}
	})
	k.Stop()
}

func TestSequentialScanFirstByteBeforeTotal(t *testing.T) {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 4096, nil)
	k.RunProc(func(p *sim.Proc) {
		fs, err := ffs.Format(p, disk, ffs.Options{MaxInodes: 64})
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 100*1024)
		if _, err := f.WriteAt(p, data, 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		fb, tot, err := SequentialScan(p, f, int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if fb <= 0 || tot <= fb {
			t.Fatalf("first byte %v should precede total %v", fb, tot)
		}
	})
}
