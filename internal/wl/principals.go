package wl

import (
	"errors"
	"fmt"

	"repro/internal/hsm"
	"repro/internal/sim"
)

// Per-principal HSM client generator: each principal is one closed-loop
// client submitting explicit stage-in / pin requests for its own working
// set through the HSM service surface, so quota enforcement and the
// quota-GC daemon see realistic multi-tenant pressure.

// PrincipalSpec describes one principal's request stream.
type PrincipalSpec struct {
	// Name is the accounting principal (e.g. "alice" or "astro:sim").
	Name string
	// Requests is how many HSM requests the principal issues.
	Requests int
	// MeanGap is the think time between requests.
	MeanGap sim.Time
	// Paths is the principal's working set; each request targets a
	// seeded-random member.
	Paths []string
	// PinEvery, when positive, turns every PinEvery-th request into a
	// Pin instead of a StageIn. The principal keeps at most MaxPins live
	// pins, unpinning the oldest first.
	PinEvery int
	// MaxPins bounds the principal's live pins (default 2).
	MaxPins int
	Seed    uint64
}

// PrincipalStats aggregates one principal's outcomes.
type PrincipalStats struct {
	Principal   string
	Submitted   int64
	Done        int64
	Failed      int64
	QuotaShed   int64 // admission sheds with hsm.ErrQuotaExceeded
	BytesStaged int64 // bytes moved by the principal's completed requests
}

// RunPrincipals runs one closed-loop client per spec against the HSM
// service and blocks until all finish. Client procs spawn in spec order
// and all randomness is seeded, so runs are deterministic.
func RunPrincipals(p *sim.Proc, hs *hsm.Service, specs []PrincipalSpec) ([]PrincipalStats, error) {
	for i, spec := range specs {
		if spec.Name == "" || spec.Requests <= 0 || len(spec.Paths) == 0 {
			return nil, fmt.Errorf("wl: principal spec %d needs a name, requests, and paths", i)
		}
	}
	stats := make([]PrincipalStats, len(specs))
	k := p.Kernel()
	doneCount := 0
	allDone := k.NewCond("wl.principals")
	for si := range specs {
		spec := specs[si]
		st := &stats[si]
		st.Principal = spec.Name
		maxPins := spec.MaxPins
		if maxPins <= 0 {
			maxPins = 2
		}
		rng := sim.NewRNG(spec.Seed + uint64(si)*0x9e3779b97f4a7c15 + 1)
		k.Go(fmt.Sprintf("wl-principal-%s", spec.Name), func(cp *sim.Proc) {
			defer func() {
				doneCount++
				allDone.Broadcast()
			}()
			var pinned []string
			for i := 0; i < spec.Requests; i++ {
				if spec.MeanGap > 0 {
					cp.Sleep(spec.MeanGap)
				}
				path := spec.Paths[rng.Intn(len(spec.Paths))]
				op := hsm.OpStageIn
				if spec.PinEvery > 0 && (i+1)%spec.PinEvery == 0 && !contains(pinned, path) {
					op = hsm.OpPin
				}
				st.Submitted++
				r, err := hs.SubmitWait(cp, op, path, spec.Name)
				switch {
				case err == nil:
					st.Done++
					st.BytesStaged += r.Bytes
					if op == hsm.OpPin {
						pinned = append(pinned, path)
					}
				case errors.Is(err, hsm.ErrQuotaExceeded):
					st.QuotaShed++
				default:
					st.Failed++
				}
				// Keep the live pin set bounded: release the oldest.
				for len(pinned) > maxPins {
					st.Submitted++
					if _, err := hs.SubmitWait(cp, hsm.OpUnpin, pinned[0], spec.Name); err == nil {
						st.Done++
					} else {
						st.Failed++
					}
					pinned = pinned[1:]
				}
			}
		})
	}
	for doneCount < len(specs) {
		allDone.Wait(p)
	}
	return stats, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
