package wl

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/svc"
)

// Multi-client request generator for the overload experiments: N closed-
// loop clients submit reads through the admission-controlled front end,
// with configurable arrival processes (think-time, Poisson, bursty),
// per-request deadlines, and budgeted retries after sheds.

// Arrival selects the inter-request gap process of one client.
type Arrival int

const (
	// ArrivalClosed sleeps a fixed think time (MeanGap) between requests.
	ArrivalClosed Arrival = iota
	// ArrivalPoisson draws exponential gaps with mean MeanGap.
	ArrivalPoisson
	// ArrivalBursty issues BurstLen requests back to back, then sleeps
	// MeanGap×BurstLen — same average rate as ArrivalClosed, far worse
	// instantaneous load.
	ArrivalBursty
)

// ParseArrival maps CLI spellings to Arrival values.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "", "closed":
		return ArrivalClosed, nil
	case "poisson":
		return ArrivalPoisson, nil
	case "bursty":
		return ArrivalBursty, nil
	}
	return 0, fmt.Errorf("wl: unknown arrival process %q (closed|poisson|bursty)", s)
}

func (a Arrival) String() string {
	switch a {
	case ArrivalClosed:
		return "closed"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	}
	return "unknown"
}

// ClientSpec parameterizes the generator.
type ClientSpec struct {
	Clients           int
	RequestsPerClient int
	Arrival           Arrival
	// MeanGap is the think time (closed), mean inter-arrival (Poisson),
	// or per-request budget of the burst duty cycle (bursty).
	MeanGap sim.Time
	// BurstLen is the burst length for ArrivalBursty (default 8).
	BurstLen int
	// Deadline, when positive, is the relative virtual-time deadline
	// attached to every request.
	Deadline sim.Time
	// ReadBlocks is how many 4 KB blocks each request reads (default 1).
	ReadBlocks int
	// Class is the admission class requests are submitted under
	// (default Interactive).
	Class svc.Class
	// RetryBackoff is the sleep before a budgeted retry of a shed
	// request (default MeanGap/2, floor 1 ms).
	RetryBackoff sim.Time
	Seed         uint64
}

// ClientStats aggregates what happened across all clients.
type ClientStats struct {
	Submitted int64 // submissions, including retries
	Completed int64 // requests that finished successfully
	Shed      int64 // ErrOverload rejections (pre-queue)
	Expired   int64 // deadline/cancel failures (queued or running)
	Failed    int64 // other errors
	Retries   int64 // budgeted resubmissions after a shed
}

// Goodput is the fraction of distinct requests that completed.
func (s ClientStats) Goodput() float64 {
	distinct := s.Submitted - s.Retries
	if distinct == 0 {
		return 0
	}
	return float64(s.Completed) / float64(distinct)
}

// RunClients runs spec.Clients concurrent closed-loop clients against the
// front end, each issuing reads of random files from paths, and blocks
// until every client finishes. Client procs are spawned in a fixed order
// and all randomness is seeded, so runs are deterministic.
func RunClients(p *sim.Proc, fe *svc.FrontEnd, hl *core.HighLight, paths []string, spec ClientSpec) (ClientStats, error) {
	if spec.Clients <= 0 || spec.RequestsPerClient <= 0 {
		return ClientStats{}, fmt.Errorf("wl: need at least one client and one request")
	}
	if len(paths) == 0 {
		return ClientStats{}, fmt.Errorf("wl: no paths to read")
	}
	if spec.BurstLen <= 0 {
		spec.BurstLen = 8
	}
	if spec.ReadBlocks <= 0 {
		spec.ReadBlocks = 1
	}
	if spec.RetryBackoff <= 0 {
		spec.RetryBackoff = spec.MeanGap / 2
		if spec.RetryBackoff < sim.Time(1e6) {
			spec.RetryBackoff = sim.Time(1e6)
		}
	}

	var stats ClientStats
	k := p.Kernel()
	doneCount := 0
	allDone := k.NewCond("wl.clients")
	for ci := 0; ci < spec.Clients; ci++ {
		rng := sim.NewRNG(spec.Seed + uint64(ci)*0x9e3779b97f4a7c15 + 1)
		k.Go(fmt.Sprintf("wl-client-%d", ci), func(cp *sim.Proc) {
			defer func() {
				doneCount++
				allDone.Broadcast()
			}()
			for i := 0; i < spec.RequestsPerClient; i++ {
				if gap := spec.gap(rng, i); gap > 0 {
					cp.Sleep(gap)
				}
				path := paths[rng.Intn(len(paths))]
				err := submitRead(cp, fe, hl, path, spec)
				if errors.Is(err, svc.ErrOverload) && fe.AllowRetry() {
					stats.Submitted++
					stats.Retries++
					cp.Sleep(spec.RetryBackoff)
					err = submitRead(cp, fe, hl, path, spec)
				}
				stats.Submitted++
				switch {
				case err == nil:
					stats.Completed++
				case errors.Is(err, svc.ErrOverload):
					stats.Shed++
				case errors.Is(err, sim.ErrDeadlineExceeded) || errors.Is(err, sim.ErrCanceled):
					stats.Expired++
				default:
					stats.Failed++
				}
			}
		})
	}
	for doneCount < spec.Clients {
		allDone.Wait(p)
	}
	return stats, nil
}

// gap returns the virtual-time pause before a client's i-th request.
func (spec *ClientSpec) gap(rng *sim.RNG, i int) sim.Time {
	switch spec.Arrival {
	case ArrivalPoisson:
		// Exponential inter-arrival: −mean·ln(U), U ∈ (0,1].
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		return sim.Time(-float64(spec.MeanGap) * math.Log(u))
	case ArrivalBursty:
		if i%spec.BurstLen == 0 && i > 0 {
			return spec.MeanGap * sim.Time(spec.BurstLen)
		}
		return 0
	default:
		return spec.MeanGap
	}
}

// submitRead issues one admission-controlled read of path.
func submitRead(cp *sim.Proc, fe *svc.FrontEnd, hl *core.HighLight, path string, spec ClientSpec) error {
	var deadline sim.Time
	if spec.Deadline > 0 {
		deadline = cp.Now() + spec.Deadline
	}
	return fe.Submit(cp, spec.Class, deadline, func(wp *sim.Proc) error {
		f, err := hl.FS.Open(wp, path)
		if err != nil {
			return err
		}
		buf := make([]byte, spec.ReadBlocks*lfs.BlockSize)
		if _, err := f.ReadAt(wp, buf, 0); err != nil && err != io.EOF {
			return err
		}
		return nil
	})
}
