// Package wl provides the paper's workloads: the Stonebraker/Olson large
// object benchmark (§7.1), file-set generators for the migration policy
// experiments, and access-pattern generators (sequential, random, 80/20).
package wl

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ffs"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// FrameSize is the large-object frame size: 4096 bytes.
const FrameSize = 4096

// Handle is an open file on any of the benchmarked file systems.
type Handle interface {
	ReadAt(p *sim.Proc, b []byte, off int64) (int, error)
	WriteAt(p *sim.Proc, b []byte, off int64) (int, error)
}

// Target abstracts the three file systems under test (FFS, base LFS,
// HighLight) for the benchmark harness.
type Target interface {
	Name() string
	Create(p *sim.Proc, path string) (Handle, error)
	Open(p *sim.Proc, path string) (Handle, error)
	Sync(p *sim.Proc) error
	FlushCaches(p *sim.Proc) error
}

// LFSTarget adapts a base LFS (or the HighLight FS, which embeds one).
type LFSTarget struct {
	Label string
	FS    *lfs.FS
}

// Name implements Target.
func (t LFSTarget) Name() string { return t.Label }

// Create implements Target.
func (t LFSTarget) Create(p *sim.Proc, path string) (Handle, error) { return t.FS.Create(p, path) }

// Open implements Target.
func (t LFSTarget) Open(p *sim.Proc, path string) (Handle, error) { return t.FS.Open(p, path) }

// Sync implements Target.
func (t LFSTarget) Sync(p *sim.Proc) error { return t.FS.Sync(p) }

// FlushCaches implements Target.
func (t LFSTarget) FlushCaches(p *sim.Proc) error { return t.FS.FlushCaches(p) }

// FFSTarget adapts the FFS baseline.
type FFSTarget struct {
	Label string
	FS    *ffs.FS
}

// Name implements Target.
func (t FFSTarget) Name() string { return t.Label }

// Create implements Target.
func (t FFSTarget) Create(p *sim.Proc, path string) (Handle, error) { return t.FS.Create(p, path) }

// Open implements Target.
func (t FFSTarget) Open(p *sim.Proc, path string) (Handle, error) { return t.FS.Open(p, path) }

// Sync implements Target.
func (t FFSTarget) Sync(p *sim.Proc) error { return t.FS.Sync(p) }

// FlushCaches implements Target.
func (t FFSTarget) FlushCaches(p *sim.Proc) error { return t.FS.FlushCaches(p) }

// HLTarget adapts a HighLight instance.
func HLTarget(label string, hl *core.HighLight) Target {
	return LFSTarget{Label: label, FS: hl.FS}
}

// LargeObjectSpec parameterizes the §7.1 benchmark.
type LargeObjectSpec struct {
	Path        string
	Frames      int // 12500 in the paper (51.2 MB)
	SeqFrames   int // 2500 (10 MB)
	SmallFrames int // 250 (1 MB)
	Seed        uint64
}

// DefaultLargeObject is the paper's configuration.
func DefaultLargeObject(path string) LargeObjectSpec {
	return LargeObjectSpec{Path: path, Frames: 12500, SeqFrames: 2500, SmallFrames: 250, Seed: 42}
}

// PhaseResult is one benchmark phase measurement.
type PhaseResult struct {
	Name    string
	Bytes   int64
	Elapsed sim.Time
}

// ThroughputKBs reports the phase throughput in KB/s.
func (r PhaseResult) ThroughputKBs() float64 {
	s := r.Elapsed.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / s
}

func (r PhaseResult) String() string {
	return fmt.Sprintf("%-28s %8.2f s %9.0f KB/s", r.Name, r.Elapsed.Seconds(), r.ThroughputKBs())
}

// CreateLargeObject writes the initial object and syncs it.
func CreateLargeObject(p *sim.Proc, t Target, spec LargeObjectSpec) (Handle, error) {
	f, err := t.Create(p, spec.Path)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, FrameSize)
	for i := 0; i < spec.Frames; i++ {
		for j := range frame {
			frame[j] = byte(i + j)
		}
		if _, err := f.WriteAt(p, frame, int64(i)*FrameSize); err != nil {
			return nil, err
		}
	}
	if err := t.Sync(p); err != nil {
		return nil, err
	}
	return f, nil
}

// RunLargeObject runs the six phases of §7.1 against an existing object:
// sequential read and replace (SeqFrames frames), random read and replace,
// and 80/20-locality read and replace (SmallFrames frames each). The
// buffer cache is flushed before each operation, as in the paper.
func RunLargeObject(p *sim.Proc, t Target, f Handle, spec LargeObjectSpec) ([]PhaseResult, error) {
	rng := sim.NewRNG(spec.Seed)
	frame := make([]byte, FrameSize)
	var results []PhaseResult

	// "The buffer cache is flushed before each operation in the
	// benchmark": each of the six phases starts cold. Within the random
	// phases data reuse is negligible anyway (the object dwarfs the
	// 3.2 MB buffer cache); file metadata (inode, indirect blocks) stays
	// warm within a phase, matching the paper's one-disk-op-per-frame
	// random-read cost.
	phase := func(name string, frames int, next func(i int) int64, write bool) error {
		if err := t.FlushCaches(p); err != nil {
			return err
		}
		start := p.Now()
		for i := 0; i < frames; i++ {
			off := next(i) * FrameSize
			var err error
			if write {
				for j := range frame {
					frame[j] = byte(i * j)
				}
				_, err = f.WriteAt(p, frame, off)
			} else {
				_, err = f.ReadAt(p, frame, off)
				if err == io.EOF {
					err = nil
				}
			}
			if err != nil {
				return fmt.Errorf("%s frame %d: %w", name, i, err)
			}
		}
		if write {
			// Buffered writes count only once they are on disk.
			if err := t.Sync(p); err != nil {
				return err
			}
		}
		results = append(results, PhaseResult{
			Name:    name,
			Bytes:   int64(frames) * FrameSize,
			Elapsed: p.Now() - start,
		})
		return nil
	}

	seq := func(i int) int64 { return int64(i) }
	random := func(i int) int64 { return rng.Int63n(int64(spec.Frames)) }
	last := int64(0)
	eightyTwenty := func(i int) int64 {
		if rng.Intn(100) < 80 {
			last = (last + 1) % int64(spec.Frames)
		} else {
			last = rng.Int63n(int64(spec.Frames))
		}
		return last
	}

	if err := phase("sequential read", spec.SeqFrames, seq, false); err != nil {
		return results, err
	}
	if err := phase("sequential write", spec.SeqFrames, seq, true); err != nil {
		return results, err
	}
	if err := phase("random read", spec.SmallFrames, random, false); err != nil {
		return results, err
	}
	if err := phase("random write", spec.SmallFrames, random, true); err != nil {
		return results, err
	}
	last = 0
	if err := phase("read 80/20", spec.SmallFrames, eightyTwenty, false); err != nil {
		return results, err
	}
	last = 0
	if err := phase("write 80/20", spec.SmallFrames, eightyTwenty, true); err != nil {
		return results, err
	}
	return results, nil
}

// TreeSpec describes a generated file tree for policy experiments.
type TreeSpec struct {
	Dirs          int
	FilesPerDir   int
	FileBlocks    int // blocks per file
	Seed          uint64
	PathPrefix    string
	SizeJitterPct int
}

// BuildTree populates a HighLight FS with a directory tree and returns the
// created paths.
func BuildTree(p *sim.Proc, hl *core.HighLight, spec TreeSpec) ([]string, error) {
	rng := sim.NewRNG(spec.Seed)
	var paths []string
	for d := 0; d < spec.Dirs; d++ {
		dir := fmt.Sprintf("%s/unit%03d", spec.PathPrefix, d)
		if err := hl.FS.Mkdir(p, dir); err != nil {
			return nil, err
		}
		for fi := 0; fi < spec.FilesPerDir; fi++ {
			path := fmt.Sprintf("%s/file%03d", dir, fi)
			f, err := hl.FS.Create(p, path)
			if err != nil {
				return nil, err
			}
			blocks := spec.FileBlocks
			if spec.SizeJitterPct > 0 {
				blocks += rng.Intn(spec.FileBlocks*spec.SizeJitterPct/100 + 1)
			}
			data := make([]byte, blocks*lfs.BlockSize)
			for i := range data {
				data[i] = byte(d*31 + fi*7 + i)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				return nil, err
			}
			paths = append(paths, path)
		}
	}
	return paths, hl.FS.Sync(p)
}

// SequentialScan reads a whole file with an 8 KB buffer (the stdio pattern
// of §7.2) and returns time-to-first-byte and total elapsed time.
func SequentialScan(p *sim.Proc, f Handle, size int64) (firstByte, total sim.Time, err error) {
	buf := make([]byte, 8192)
	start := p.Now()
	var got int64
	for got < size {
		want := int64(len(buf))
		if size-got < want {
			want = size - got
		}
		n, rerr := f.ReadAt(p, buf[:want], got)
		if got == 0 && n > 0 {
			firstByte = p.Now() - start
		}
		got += int64(n)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return firstByte, p.Now() - start, rerr
		}
	}
	return firstByte, p.Now() - start, nil
}
