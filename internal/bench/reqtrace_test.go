package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/wl"
)

// TestReqtraceAblationFree is the standing proof that tracing costs the
// simulation nothing: every pre-existing overload metric is identical
// with the tracer on and off, and no retained trace violates the
// stage-sum-equals-latency invariant.
func TestReqtraceAblationFree(t *testing.T) {
	rep, err := AblationReqtrace()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["metrics_identical"] != 1 {
		t.Fatalf("tracing perturbed the run:\n%s", strings.Join(rep.Lines, "\n"))
	}
	if rep.Metrics["trace_sum_mismatches"] != 0 {
		t.Fatalf("trace invariant violated:\n%s", strings.Join(rep.Lines, "\n"))
	}
	if rep.Metrics["traced_requests"] <= 0 || rep.Metrics["stages_recorded"] <= 0 {
		t.Fatalf("traced arm recorded nothing: %+v", rep.Metrics)
	}
}

// TestRequestsJSONBitReproducible runs the traced overload cell twice
// and requires byte-identical /requests documents — the double-run
// digest check the soak job re-runs under -race.
func TestRequestsJSONBitReproducible(t *testing.T) {
	run := func() OverloadResult {
		res, err := RunOverload(OverloadSpec{Arrival: wl.ArrivalPoisson, Load: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.RequestsJSON) == 0 {
		t.Fatal("traced run produced no /requests document")
	}
	if !bytes.Equal(a.RequestsJSON, b.RequestsJSON) {
		t.Fatal("two identical runs produced different /requests documents")
	}
	var doc struct {
		Sealed int64 `json:"sealed"`
		Recent []struct {
			Latency   float64            `json:"latency_seconds"`
			Breakdown map[string]float64 `json:"breakdown_seconds"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(a.RequestsJSON, &doc); err != nil {
		t.Fatalf("/requests not JSON: %v", err)
	}
	if doc.Sealed != a.TracedRequests || len(doc.Recent) == 0 {
		t.Fatalf("document counts wrong: sealed %d, traced %d, recent %d",
			doc.Sealed, a.TracedRequests, len(doc.Recent))
	}
	// Under real overload the fetch-bound rig must show fetch waits
	// somewhere in the retained traces.
	if !strings.Contains(string(a.RequestsJSON), `"fetch-wait"`) {
		t.Fatal("no fetch-wait stage in any retained trace")
	}
}

// TestProfileReportNonzero pins `hlbench -profile`: the measured
// workload dispatches events at a nonzero wall-clock rate.
func TestProfileReportNonzero(t *testing.T) {
	rep, err := ProfileReport(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(rep.Lines, "\n")
	if !strings.Contains(out, "events/sec") {
		t.Fatalf("profile report missing rate:\n%s", out)
	}
	if rep.Metrics["events_per_sec"] <= 0 || rep.Metrics["events"] <= 0 {
		t.Fatalf("profiler measured nothing: %+v\n%s", rep.Metrics, out)
	}
}
