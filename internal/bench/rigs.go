package bench

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/ffs"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wl"
)

// Scale parameterizes the rigs. Full reproduces the paper's configuration
// (§7): an 848 MB RZ57 partition, a 3.2 MB buffer cache, an HP 6300 MO
// changer with two drives and 32 cartridges constrained to 40 MB each, and
// a 51.2 MB large object. Quick shrinks everything for unit tests.
type Scale struct {
	SegBlocks   int
	DiskSegs    int // 1 MB segments on the main disk
	CacheSegs   int
	BufferBytes int
	Vols        int
	SegsPerVol  int
	Frames      int
	SeqFrames   int
	SmallFrames int
	FileSizes   []int64 // Table 3 file sizes
	StageSegs   int     // staging-spindle size for Table 6 variants

	// Libraries and Replicas parameterize the replicated tertiary tier.
	// Zero values (the default, and what every committed baseline uses)
	// mean one changer and no replication — bit-identical to the
	// pre-replication rig.
	Libraries int // extra identical MO changers beyond the first
	Replicas  int // tertiary copies per staged segment; <2 disables

	// Farm parameters: FarmDisks > 1 splits the main disk's capacity over
	// that many RZ57 spindles on private channels (so scaling is not
	// capped by the shared SCSI bus), striped with StripeUnit blocks
	// (0 = concatenated) and optional rotating Parity. Streams > 1 adds
	// concurrent tertiary I/O streams. All zero values keep the committed
	// single-spindle baselines bit-identical.
	FarmDisks  int
	StripeUnit int
	Parity     bool
	Streams    int
}

// HP9000/370 CPU model: the paper's test machine copies data slowly enough
// to matter. AssemblyCopyRate is solved so base LFS's sequential write
// lands at Table 2's 639 KB/s (the "extra buffer copies performed inside
// the LFS code"); UserCopyRate so FFS's sequential read lands near
// 1002 KB/s (raw 1417 KB/s minus the copy to user space).
const (
	hp370AssemblyCopyRate = 1880 * 1024
	hp370UserCopyRate     = 3150 * 1024
)

// FullScale is the paper's configuration.
func FullScale() Scale {
	return Scale{
		SegBlocks:   256,
		DiskSegs:    848,
		CacheSegs:   96,
		BufferBytes: 3200 * 1024,
		Vols:        32,
		SegsPerVol:  40,
		Frames:      12500,
		SeqFrames:   2500,
		SmallFrames: 250,
		FileSizes:   []int64{10 * 1024, 100 * 1024, 1024 * 1024, 10 * 1024 * 1024},
		StageSegs:   112,
	}
}

// QuickScale is a reduced configuration for fast test runs.
func QuickScale() Scale {
	return Scale{
		SegBlocks:   64,
		DiskSegs:    256,
		CacheSegs:   48,
		BufferBytes: 1024 * 1024,
		Vols:        4,
		SegsPerVol:  64,
		Frames:      2048,
		SeqFrames:   512,
		SmallFrames: 64,
		FileSizes:   []int64{10 * 1024, 100 * 1024, 1024 * 1024},
		StageSegs:   56,
	}
}

func (s Scale) spec(path string) wl.LargeObjectSpec {
	return wl.LargeObjectSpec{
		Path:        path,
		Frames:      s.Frames,
		SeqFrames:   s.SeqFrames,
		SmallFrames: s.SmallFrames,
		Seed:        42,
	}
}

func (s Scale) objectMB() float64 {
	return float64(s.Frames) * wl.FrameSize / (1024 * 1024)
}

// ffsRig builds the baseline FFS on an RZ57 behind a SCSI bus.
type ffsRig struct {
	k    *sim.Kernel
	disk *dev.Disk
	fs   *ffs.FS
}

func newFFSRig(s Scale) *ffsRig {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(s.DiskSegs*s.SegBlocks), bus)
	r := &ffsRig{k: k, disk: disk}
	k.RunProc(func(p *sim.Proc) {
		fs, err := ffs.Format(p, disk, ffs.Options{BufferBytes: s.BufferBytes, UserCopyRate: hp370UserCopyRate})
		if err != nil {
			panic(err)
		}
		r.fs = fs
	})
	return r
}

// lfsRig builds a base 4.4BSD LFS (no tertiary level).
type lfsRig struct {
	k    *sim.Kernel
	disk *dev.Disk
	fs   *lfs.FS
}

func newLFSRig(s Scale) *lfsRig {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(s.DiskSegs*s.SegBlocks), bus)
	r := &lfsRig{k: k, disk: disk}
	amap := addr.New(s.SegBlocks, s.DiskSegs)
	k.RunProc(func(p *sim.Proc) {
		fs, err := lfs.Format(p, lfs.DiskDevice{BD: disk}, amap, lfs.Options{
			BufferBytes:      s.BufferBytes,
			AssemblyCopyRate: hp370AssemblyCopyRate,
			UserCopyRate:     hp370UserCopyRate,
		})
		if err != nil {
			panic(err)
		}
		r.fs = fs
	})
	return r
}

// hlRig builds HighLight: RZ57 (plus an optional staging spindle) and the
// MO jukebox, all on one SCSI bus — except an HP-IB staging disk, which
// gets its own channel, as in the paper's HP7958A test.
type hlRig struct {
	k       *sim.Kernel
	bus     *dev.Bus
	main    *dev.Disk
	staging *dev.Disk // nil when staging shares the main spindle
	juke    *jukebox.Jukebox
	hl      *core.HighLight
	obs     *obs.Obs
}

// stagingKind selects the Table 6 configuration.
type stagingKind int

const (
	stageOnMain stagingKind = iota // RZ57 only
	stageOnRZ58
	stageOnHP7958A
)

func newHLRig(s Scale, kind stagingKind) *hlRig {
	k := sim.NewKernel()
	o := obs.New(k)
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	var farm []dev.BlockDev
	var main *dev.Disk
	if s.FarmDisks > 1 {
		// Multi-spindle farm: capacity split evenly, each spindle on its
		// own channel (the shared 3.9 MB/s SCSI bus would cap the farm at
		// about two disks' bandwidth).
		per := int64(s.DiskSegs * s.SegBlocks / s.FarmDisks)
		for i := 0; i < s.FarmDisks; i++ {
			d := dev.NewDisk(k, dev.RZ57, per, nil)
			d.SetObs(o, fmt.Sprintf("RZ57-farm%d", i))
			farm = append(farm, d)
		}
		main = farm[0].(*dev.Disk)
	} else {
		main = dev.NewDisk(k, dev.RZ57, int64(s.DiskSegs*s.SegBlocks), bus)
		main.SetObs(o, "RZ57-main")
		farm = []dev.BlockDev{main}
	}
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, s.Vols, s.SegsPerVol, s.SegBlocks*lfs.BlockSize, bus)
	juke.SetObs(o, "")
	jukes := []jukebox.Footprint{juke}
	for i := 1; i < s.Libraries; i++ {
		extra := jukebox.MustNew(k, jukebox.MO6300, 2, s.Vols, s.SegsPerVol, s.SegBlocks*lfs.BlockSize, bus)
		extra.SetObs(o, fmt.Sprintf("%s-lib%d", extra.Profile().Name, i))
		jukes = append(jukes, extra)
	}
	r := &hlRig{k: k, bus: bus, main: main, juke: juke, obs: o}
	cfg := core.Config{
		SegBlocks:         s.SegBlocks,
		Disks:             farm,
		StripeUnit:        s.StripeUnit,
		Parity:            s.Parity,
		Streams:           s.Streams,
		Jukeboxes:         jukes,
		Replicas:          s.Replicas,
		CacheSegs:         s.CacheSegs,
		MaxInodes:         4096,
		BufferBytes:       s.BufferBytes,
		AssemblyCopyRate:  hp370AssemblyCopyRate,
		UserCopyRate:      hp370UserCopyRate,
		GatherChunkBlocks: 1, // lfs_bmapv + block-at-a-time raw reads (§6.7)
		Obs:               o,
	}
	switch kind {
	case stageOnRZ58:
		r.staging = dev.NewDisk(k, dev.RZ58, int64(s.StageSegs*s.SegBlocks), bus)
	case stageOnHP7958A:
		// HP-IB connected: a private channel, not the shared SCSI bus.
		r.staging = dev.NewDisk(k, dev.HP7958A, int64(s.StageSegs*s.SegBlocks), nil)
	}
	if r.staging != nil {
		if s.StripeUnit > 0 && s.FarmDisks > 1 {
			// A dedicated staging spindle relies on the concatenated
			// farm's contiguous per-component segment ranges.
			panic("bench: staging spindle configs require a concatenated farm (StripeUnit 0)")
		}
		r.staging.SetObs(o, r.staging.Profile().Name+"-staging")
		cfg.Disks = append(cfg.Disks, r.staging)
		cfg.CacheSegs = s.StageSegs
		cfg.CacheSegLo = s.DiskSegs
		cfg.CacheSegHi = s.DiskSegs + s.StageSegs
	}
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, cfg, true)
		if err != nil {
			panic(fmt.Sprintf("bench: building HighLight rig: %v", err))
		}
		r.hl = hl
	})
	return r
}

// stop tears the rig's daemons down.
func (r *hlRig) stop() { r.k.Stop() }
