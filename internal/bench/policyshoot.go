package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/hsm"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
	"repro/internal/svc"
)

// The policy shootout: the paper's STP ranker against the pure-LRU and
// heat-weighted-cost competitors from internal/hsm, each driving the same
// migrator over the same seeded workloads. The quality question is the one
// §5.1 poses for migration policy: does the policy move dormant data (cheap
// to have moved) or data the interactive future comes back for (stalls)?
//
// Each cell runs three phases on a fresh rig: a seeded access phase that
// differentiates file ages and heat, one migration round under the policy
// (fixed byte target), and a seeded "future" phase replaying the same access
// distribution through the admission front end. Reported per cell:
//
//	hit_rate    fraction of future reads served without a demand fetch
//	p99_ms      future interactive p99 latency (the stall metric)
//	bytes_moved bytes the policy staged out
const (
	shootFiles = 20
	shootSeed  = 20260808
)

// shootBlocks is file i's size in blocks: sizes cycle 8..56 so the
// space-time product actually diverges from pure recency ordering (equal
// sizes would collapse STP onto LRU).
func shootBlocks(i int) int { return 8 + (i%4)*16 }

// shootPolicies returns the contenders, fresh per cell (policies are
// stateless but cheap to rebuild, and fresh values keep cells independent).
func shootPolicies() []struct {
	name string
	pol  hsm.Policy
} {
	return []struct {
		name string
		pol  hsm.Policy
	}{
		{"stp", hsm.Ranker{P: migrate.NewSTP()}},
		{"lru", &hsm.LRU{}},
		{"heatcost", &hsm.HeatCost{}},
	}
}

// shootWorkloads are the access distributions: skewed concentrates 80% of
// reads on a 4-file hot set (the policy can win by leaving those on disk);
// uniform spreads reads evenly (no policy can look much better than
// another — a sanity row).
var shootWorkloads = []string{"skewed", "uniform"}

// shootPick draws one file index from the named distribution.
func shootPick(rng *sim.RNG, workload string) int {
	if workload == "skewed" && rng.Intn(100) < 80 {
		return rng.Intn(4)
	}
	return rng.Intn(shootFiles)
}

// shootRig is a small single-library instance with a scarce cache.
func shootRig() (*sim.Kernel, *core.HighLight, error) {
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 32, 64*lfs.BlockSize, nil)
	var hl *core.HighLight
	var err error
	k.RunProc(func(p *sim.Proc) {
		hl, err = core.New(p, core.Config{
			SegBlocks:   64,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   4,
			MaxInodes:   256,
			BufferBytes: 32 * lfs.BlockSize,
		}, true)
	})
	return k, hl, err
}

// shootCell runs one policy × workload cell.
func shootCell(pol hsm.Policy, workload string) (hitRate, p99ms, bytesMoved float64, err error) {
	k, hl, err := shootRig()
	if err != nil {
		return 0, 0, 0, err
	}
	defer k.Stop()
	k.RunProc(func(p *sim.Proc) {
		var inums []uint32
		for i := 0; i < shootFiles; i++ {
			f, e := hl.FS.Create(p, fmt.Sprintf("/f%02d", i))
			if e != nil {
				err = e
				return
			}
			if _, e := f.WriteAt(p, make([]byte, shootBlocks(i)*lfs.BlockSize), 0); e != nil {
				err = e
				return
			}
			inums = append(inums, f.Inum())
			p.Sleep(sim.Time(2 * time.Second))
		}
		if e := hl.FS.Sync(p); e != nil {
			err = e
			return
		}

		// Access phase: differentiate atimes and heat under the workload's
		// distribution.
		rng := sim.NewRNG(shootSeed)
		buf := make([]byte, lfs.BlockSize)
		for q := 0; q < 150; q++ {
			i := shootPick(rng, workload)
			f, e := hl.FS.OpenInum(p, inums[i])
			if e != nil {
				err = e
				return
			}
			if _, e := f.ReadAt(p, buf, int64(rng.Intn(shootBlocks(i)))*lfs.BlockSize); e != nil && e != io.EOF {
				err = e
				return
			}
			p.Sleep(sim.Time(500 * time.Millisecond))
		}
		p.Sleep(sim.Time(30 * time.Second))

		// Migration round: the policy picks, the same migrator moves. The
		// byte target (60% of the data set) forces real choices.
		m := migrate.NewMigrator(hl)
		m.Policy = hsm.AsMigratePolicy(pol, nil)
		var totalBlocks int
		for i := 0; i < shootFiles; i++ {
			totalBlocks += shootBlocks(i)
		}
		target := int64(totalBlocks) * lfs.BlockSize * 6 / 10
		staged, e := m.RunOnce(p, target)
		if e != nil {
			err = e
			return
		}
		bytesMoved = float64(staged)
		for _, l := range hl.Cache.Lines() {
			if !l.Staging && l.Pins == 0 {
				if e := hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
		}

		// Future phase: the same distribution replays through the front
		// end; demand fetches and interactive latency are the price of the
		// policy's choices.
		fe := svc.New(hl, svc.Config{})
		fetches0 := hl.Svc.Stats().Fetches
		const futureReads = 150
		frng := sim.NewRNG(shootSeed + 1)
		for q := 0; q < futureReads; q++ {
			i := shootPick(frng, workload)
			e := fe.Submit(p, svc.Interactive, 0, func(wp *sim.Proc) error {
				f, e := hl.FS.OpenInum(wp, inums[i])
				if e != nil {
					return e
				}
				hl.FS.DropFileBuffers(wp, inums[i])
				if _, e := f.ReadAt(wp, buf, int64(frng.Intn(shootBlocks(i)))*lfs.BlockSize); e != nil && e != io.EOF {
					return e
				}
				return nil
			})
			if e != nil {
				err = e
				return
			}
			p.Sleep(sim.Time(200 * time.Millisecond))
		}
		fetched := hl.Svc.Stats().Fetches - fetches0
		hitRate = 1 - float64(fetched)/float64(futureReads)
		if hitRate < 0 {
			hitRate = 0
		}
		p99ms = fe.Stats().P99Interactive.Seconds() * 1000
	})
	return hitRate, p99ms, bytesMoved, err
}

// AblationPolicy is the migration-policy shootout table: every contender
// policy against every workload at a fixed geometry (the table rigs' scale
// knob does not apply; one entry covers both scales).
func AblationPolicy() (*Report, error) {
	rep := newReport("Ablation: migration policy shootout (STP vs LRU vs heat-weighted cost, 60% byte target)")
	rep.addf("%-10s %-9s %10s %10s %12s", "policy", "workload", "hit rate", "p99 ms", "moved MB")
	for _, c := range shootPolicies() {
		for _, workload := range shootWorkloads {
			hitRate, p99ms, moved, err := shootCell(c.pol, workload)
			if err != nil {
				return rep, fmt.Errorf("policy shootout %s/%s: %w", c.name, workload, err)
			}
			rep.addf("%-10s %-9s %10.3f %10.1f %12.2f",
				c.name, workload, hitRate, p99ms, moved/(1<<20))
			key := c.name + "/" + workload
			rep.metric(key+"/hit_rate", hitRate)
			rep.metric(key+"/p99_ms", p99ms)
			rep.metric(key+"/bytes_moved", moved)
		}
	}
	return rep, nil
}
