package bench

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/wl"
)

// TraceMigration runs the paper's migration workload (write a large
// object, migrate it, demand-fetch part of it back) with full span
// retention and writes the Chrome trace-event JSON to w. The run is
// pure virtual time, so the bytes written are identical on every
// invocation — diff two traces and any change is a behavior change.
func TraceMigration(s Scale, w io.Writer) error {
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	r.obs.EnableTrace()
	if err := migrationFetchWorkload(r, s); err != nil {
		return err
	}
	return r.obs.WriteChromeTrace(w)
}

// migrationFetchWorkload drives the paper's end-to-end story on an open
// rig: large-object write, migration, cache eviction, demand fetch.
// Shared by TraceMigration and the -json snapshot so both exercise
// every counter (fetches and cache misses included).
func migrationFetchWorkload(r *hlRig, s Scale) error {
	var err error
	r.k.RunProc(func(p *sim.Proc) {
		t := wl.HLTarget("hl", r.hl)
		if _, e := wl.CreateLargeObject(p, t, s.spec("/obj")); e != nil {
			err = e
			return
		}
		f, e := r.hl.FS.Open(p, "/obj")
		if e != nil {
			err = e
			return
		}
		if _, e := r.hl.MigrateFiles(p, []uint32{f.Inum()}, false); e != nil {
			err = e
			return
		}
		if e := r.hl.CompleteMigration(p); e != nil {
			err = e
			return
		}
		// Demand-fetch path: drop the buffers and evict the cached lines,
		// then read the head of the object back through the block map.
		r.hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range r.hl.Cache.Lines() {
			if l.Staging || l.Pins > 0 {
				continue
			}
			if e := r.hl.Svc.Eject(l.Tag); e != nil {
				err = e
				return
			}
		}
		buf := make([]byte, 64*1024)
		if _, e := f.ReadAt(p, buf, 0); e != nil {
			err = e
			return
		}
	})
	if err != nil {
		return fmt.Errorf("bench: trace workload: %w", err)
	}
	return nil
}
