// Package bench regenerates every table and figure of the paper's
// evaluation (§7): the large-object benchmark (Table 2), access delays
// (Table 3), the migration time breakdown (Table 4), raw device rates
// (Table 5), and migrator throughput under disk-arm contention (Table 6).
// The same harness backs cmd/hlbench and the repository's testing.B
// benchmarks; EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table: formatted lines plus named metrics for
// programmatic checks (tests assert the paper's qualitative shape on
// these).
type Report struct {
	Title   string
	Lines   []string
	Metrics map[string]float64
}

func newReport(title string) *Report {
	return &Report{Title: title, Metrics: make(map[string]float64)}
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) metric(name string, v float64) {
	r.Metrics[name] = v
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", len(r.Title)))
	b.WriteString("\n")
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// WriteTo writes the rendered report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, r.String())
	return int64(n), err
}
