package bench

import "testing"

func TestAblationCachePolicy(t *testing.T) {
	rep, err := AblationCachePolicy()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// LRU must exploit the 80/20 reuse at least as well as Random.
	if m["LRU/fetches"] > m["Random/fetches"]*1.15 {
		t.Errorf("LRU fetches (%.0f) should not exceed Random (%.0f)",
			m["LRU/fetches"], m["Random/fetches"])
	}
	for _, k := range []string{"LRU", "FIFO", "Random", "LRU+bypass(§10)"} {
		if m[k+"/fetches"] == 0 {
			t.Errorf("%s recorded no fetches", k)
		}
	}
}

func TestAblationCopyout(t *testing.T) {
	rep, err := AblationCopyout()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Delayed copy-outs finish staging sooner (no I/O-server contention
	// during assembly) but take longer to be fully durable.
	if m["delayed/staging-s"] >= m["immediate/staging-s"] {
		t.Errorf("delayed staging (%.1fs) should beat immediate (%.1fs)",
			m["delayed/staging-s"], m["immediate/staging-s"])
	}
	if m["delayed/total-s"] < m["delayed/staging-s"] {
		t.Error("total durable time cannot precede staging completion")
	}
}

func TestAblationSTP(t *testing.T) {
	rep, err := AblationSTP()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// STP must not re-fetch more than the size-only policy, which
	// migrates big recent files and pays for it on the reread.
	if m["STP (t^1 * s^1)/fetches"] > m["size only (s^1)/fetches"] {
		t.Errorf("STP fetches (%.0f) should not exceed size-only (%.0f)",
			m["STP (t^1 * s^1)/fetches"], m["size only (s^1)/fetches"])
	}
}

func TestAblationFaultRate(t *testing.T) {
	rep, err := AblationFaultRate()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m["0%/retries"] != 0 {
		t.Errorf("baseline run recorded %.0f retries with no fault plan", m["0%/retries"])
	}
	if m["1%/retries"] == 0 {
		t.Error("1%% fault plan injected no transient faults")
	}
	if m["5%/retries"] < m["1%/retries"] {
		t.Errorf("5%% rate should retry at least as often as 1%% (%.0f < %.0f)",
			m["5%/retries"], m["1%/retries"])
	}
	// Recovery must absorb every injected fault: the workload degrades in
	// throughput but never fails.
	for _, k := range []string{"1%", "5%"} {
		if m[k+"/exhausted"] != 0 {
			t.Errorf("%s: %.0f retry budgets exhausted; recovery failed", k, m[k+"/exhausted"])
		}
	}
	if m["5%/MBps"] > m["0%/MBps"] {
		t.Errorf("throughput should not improve under faults (5%%: %.2f > 0%%: %.2f)",
			m["5%/MBps"], m["0%/MBps"])
	}
	if m["0%/MBps"] == 0 {
		t.Error("baseline throughput is zero")
	}
}

func TestAblationCrashRecovery(t *testing.T) {
	rep, err := AblationCrashRecovery()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Recovery work scales with the log written since the checkpoint: no
	// replay at zero, monotonically more psegs as the log grows.
	if m["0/psegs"] != 0 {
		t.Errorf("zero-length log replayed %.0f psegs", m["0/psegs"])
	}
	last := -1.0
	for _, k := range []string{"0", "4", "16", "64"} {
		if m[k+"/psegs"] < last {
			t.Errorf("psegs replayed not monotone at %s segments (%.0f < %.0f)", k, m[k+"/psegs"], last)
		}
		last = m[k+"/psegs"]
	}
	if m["64/psegs"] == 0 {
		t.Error("64-segment log replayed nothing")
	}
	// And the virtual-time recovery cost grows with it.
	if m["64/recovery-s"] <= m["0/recovery-s"] {
		t.Errorf("long-log recovery (%.2fs) should cost more than checkpoint-only (%.2fs)",
			m["64/recovery-s"], m["0/recovery-s"])
	}
}

func TestAblationReplication(t *testing.T) {
	rep, err := AblationReplication()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	for _, k := range []string{"1x1", "2x2", "3x2"} {
		if m[k+"/fetch-ms"] <= 0 {
			t.Errorf("%s: no healthy fetch latency recorded", k)
		}
	}
	// The unreplicated baseline has nothing to redirect to or repair.
	if m["1x1/repaired-bytes"] != 0 || m["1x1/redirects"] != 0 {
		t.Errorf("1x1 recorded repair traffic (%.0f bytes, %.0f redirects)",
			m["1x1/repaired-bytes"], m["1x1/redirects"])
	}
	// Replicated configs must survive losing library 0: reads redirect to
	// surviving copies and a repair pass re-replicates real bytes.
	for _, k := range []string{"2x2", "3x2"} {
		if m[k+"/redirects"] == 0 {
			t.Errorf("%s: library failure caused no replica redirects", k)
		}
		if m[k+"/repaired-bytes"] == 0 {
			t.Errorf("%s: repair pass copied nothing", k)
		}
		if m[k+"/degraded-ms"] <= 0 {
			t.Errorf("%s: no degraded fetch latency recorded", k)
		}
	}
}

func TestAblationBlockRange(t *testing.T) {
	rep, err := AblationBlockRange()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Block-range migration keeps hot queries fast; whole-file migration
	// sends the hot pages to tape too.
	if m["block-range/hotquery-ms"] >= m["whole-file/hotquery-ms"] {
		t.Errorf("block-range hot queries (%.1fms) should beat whole-file (%.1fms)",
			m["block-range/hotquery-ms"], m["whole-file/hotquery-ms"])
	}
}

func TestAblationOverload(t *testing.T) {
	rep, err := AblationOverload()
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Below capacity nothing is shed; at 4x the queue must overflow and
	// goodput must degrade by shedding, not by stalling.
	if m["x0.5/shed_rate"] != 0 {
		t.Errorf("x0.5 shed %.3f of requests below capacity", m["x0.5/shed_rate"])
	}
	if m["x4/shed_rate"] == 0 {
		t.Error("x4 offered load never shed: the queue bound is not binding")
	}
	for _, prev := range []struct{ lo, hi string }{
		{"x0.5", "x1"}, {"x1", "x2"}, {"x2", "x4"},
	} {
		if m[prev.hi+"/shed_rate"] < m[prev.lo+"/shed_rate"] {
			t.Errorf("shed rate not monotone: %s %.3f > %s %.3f",
				prev.lo, m[prev.lo+"/shed_rate"], prev.hi, m[prev.hi+"/shed_rate"])
		}
		if m[prev.hi+"/goodput"] > m[prev.lo+"/goodput"] {
			t.Errorf("goodput rose with load: %s %.3f < %s %.3f",
				prev.lo, m[prev.lo+"/goodput"], prev.hi, m[prev.hi+"/goodput"])
		}
	}
	// Bounded interactive p99 under 4x load: the deadline (5 s) caps how
	// long any admitted request can linger, so p99 stays within the
	// histogram bucket holding the deadline instead of growing without
	// bound as queues deepen.
	if cap := 10000.0; m["x4/p99_ms"] > cap {
		t.Errorf("x4 interactive p99 %.0f ms not bounded by the deadline bucket (%.0f ms)",
			m["x4/p99_ms"], cap)
	}
	// Determinism: the table bench-check gates on must reproduce exactly.
	rep2, err := AblationOverload()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range m {
		if rep2.Metrics[k] != v {
			t.Errorf("metric %s not deterministic: %v vs %v", k, v, rep2.Metrics[k])
		}
	}
}
