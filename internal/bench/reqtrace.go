package bench

import (
	"fmt"

	"repro/internal/wl"
)

// Per-request tracing costs nothing that the simulation can see: it
// consumes no virtual time and draws no randomness, so a traced run and
// an untraced run of the same workload produce identical metrics. The
// ablation below is the standing proof — it executes the overload cell
// both ways and reports whether every measured quantity matched, plus
// the trace-invariant check (per-stage critical-path durations summing
// exactly to each request's end-to-end latency) over every retained
// trace.

// reqtraceLoad is the offered-load multiple the ablation runs at: 2x
// pushes the admission queue deep enough that traces contain queue-wait,
// fetch-wait, drive-swap, and media-transfer stages, and some requests
// shed or expire — the interesting cases for the invariant.
const reqtraceLoad = 2

// AblationReqtrace runs the overload cell traced and untraced and
// compares every pre-existing metric.
func AblationReqtrace() (*Report, error) {
	spec := OverloadSpec{Arrival: wl.ArrivalPoisson, Load: reqtraceLoad}
	traced, err := RunOverload(spec)
	if err != nil {
		return nil, fmt.Errorf("reqtrace ablation (traced): %w", err)
	}
	spec.DisableTracing = true
	bare, err := RunOverload(spec)
	if err != nil {
		return nil, fmt.Errorf("reqtrace ablation (untraced): %w", err)
	}
	identical := traced.Stats == bare.Stats && traced.Svc == bare.Svc &&
		traced.ShedRate == bare.ShedRate && traced.P99ms == bare.P99ms

	rep := newReport(fmt.Sprintf("Ablation: request tracing on vs off (overload cell at x%d load)", reqtraceLoad))
	rep.addf("%-10s %10s %10s %10s %10s", "arm", "goodput", "p99 ms", "traced", "stages")
	rep.addf("%-10s %10.3f %10.0f %10d %10d", "traced",
		traced.Stats.Goodput(), traced.P99ms, traced.TracedRequests, traced.StagesRecorded)
	rep.addf("%-10s %10.3f %10.0f %10d %10d", "untraced",
		bare.Stats.Goodput(), bare.P99ms, bare.TracedRequests, bare.StagesRecorded)
	if identical {
		rep.addf("all pre-existing metrics identical: tracing is free at the simulation level")
	} else {
		rep.addf("METRIC DIVERGENCE: tracing perturbed the run")
	}
	rep.metric("metrics_identical", b2f(identical))
	rep.metric("traced_requests", float64(traced.TracedRequests))
	rep.metric("stages_recorded", float64(traced.StagesRecorded))
	rep.metric("trace_sum_mismatches", float64(traced.TraceErrs))
	if !identical {
		return rep, fmt.Errorf("reqtrace ablation: tracing changed the measured metrics")
	}
	if traced.TraceErrs > 0 {
		return rep, fmt.Errorf("reqtrace ablation: %d traces violate the sum invariant", traced.TraceErrs)
	}
	return rep, nil
}

func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// ProfileReport measures the sim kernel itself on the wall clock: the
// instrumented migration + demand-fetch workload runs with the kernel
// profiler enabled, and the report shows events/sec, dispatch overhead,
// heap depth, and the most-dispatched procs. These numbers are physical
// (they vary machine to machine and run to run) and are deliberately
// excluded from the deterministic metric set.
func ProfileReport(s Scale) (*Report, error) {
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	r.k.EnableProfile()
	if err := migrationFetchWorkload(r, s); err != nil {
		return nil, fmt.Errorf("bench: profile workload: %w", err)
	}
	pr := r.k.ProfileSnapshot()
	rep := newReport("Sim kernel self-profile (wall clock; varies by machine — not a tracked metric)")
	rep.addf("events dispatched   %12d   (%d skipped, %d total since boot)",
		pr.Events, pr.SkippedEvents, pr.TotalEvents)
	rep.addf("events/sec          %12.0f", pr.EventsPerSec)
	rep.addf("dispatch overhead   %12.0f ns/event avg (%d ns total)", pr.AvgDispatchNs, pr.DispatchNs)
	rep.addf("proc time           %12d ns   wall %d ns", pr.ProcNs, pr.WallNs)
	rep.addf("event-heap depth    %12d high water", pr.HeapHighWater)
	rep.addf("procs               %12d spawned, %d switches", pr.Procs, pr.TotalSwitches)
	for _, tp := range pr.TopProcs {
		rep.addf("  %-24s %10d switches", tp.Name, tp.Switches)
	}
	// Not a tracked snapshot metric (wall clock); kept on the report so
	// tests can assert the profiler measured something.
	rep.metric("events_per_sec", pr.EventsPerSec)
	rep.metric("events", float64(pr.Events))
	return rep, nil
}
