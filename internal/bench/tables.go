package bench

import (
	"fmt"

	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/wl"
)

// Table2 runs the large-object benchmark (§7.1) on the four
// configurations of the paper: FFS with clustering, base 4.4BSD LFS,
// HighLight with non-migrated files (on-disk), and HighLight with migrated
// files resident in the segment cache (in-cache).
func Table2(s Scale) (*Report, error) {
	rep := newReport(fmt.Sprintf("Table 2: large-object performance (%.1f MB object)", s.objectMB()))
	rep.addf("%-28s %10s %12s", "phase / configuration", "elapsed", "throughput")

	type cfg struct {
		name string
		run  func() ([]wl.PhaseResult, error)
	}
	configs := []cfg{
		{"FFS", func() ([]wl.PhaseResult, error) {
			r := newFFSRig(s)
			var out []wl.PhaseResult
			var err error
			r.k.RunProc(func(p *sim.Proc) {
				t := wl.FFSTarget{Label: "ffs", FS: r.fs}
				f, e := wl.CreateLargeObject(p, t, s.spec("/obj"))
				if e != nil {
					err = e
					return
				}
				out, err = wl.RunLargeObject(p, t, f, s.spec("/obj"))
			})
			return out, err
		}},
		{"Base LFS", func() ([]wl.PhaseResult, error) {
			r := newLFSRig(s)
			var out []wl.PhaseResult
			var err error
			r.k.RunProc(func(p *sim.Proc) {
				t := wl.LFSTarget{Label: "lfs", FS: r.fs}
				f, e := wl.CreateLargeObject(p, t, s.spec("/obj"))
				if e != nil {
					err = e
					return
				}
				out, err = wl.RunLargeObject(p, t, f, s.spec("/obj"))
			})
			return out, err
		}},
		{"HighLight on-disk", func() ([]wl.PhaseResult, error) {
			r := newHLRig(s, stageOnMain)
			defer r.stop()
			var out []wl.PhaseResult
			var err error
			r.k.RunProc(func(p *sim.Proc) {
				t := wl.HLTarget("hl", r.hl)
				f, e := wl.CreateLargeObject(p, t, s.spec("/obj"))
				if e != nil {
					err = e
					return
				}
				out, err = wl.RunLargeObject(p, t, f, s.spec("/obj"))
			})
			return out, err
		}},
		{"HighLight in-cache", func() ([]wl.PhaseResult, error) {
			r := newHLRig(s, stageOnMain)
			defer r.stop()
			var out []wl.PhaseResult
			var err error
			r.k.RunProc(func(p *sim.Proc) {
				t := wl.HLTarget("hl", r.hl)
				f, e := wl.CreateLargeObject(p, t, s.spec("/obj"))
				if e != nil {
					err = e
					return
				}
				fh, e := r.hl.FS.Open(p, "/obj")
				if e != nil {
					err = e
					return
				}
				if _, e := r.hl.MigrateFiles(p, []uint32{fh.Inum()}, false); e != nil {
					err = e
					return
				}
				if e := r.hl.CompleteMigration(p); e != nil {
					err = e
					return
				}
				out, err = wl.RunLargeObject(p, t, f, s.spec("/obj"))
			})
			return out, err
		}},
	}
	for _, c := range configs {
		results, err := c.run()
		if err != nil {
			return rep, fmt.Errorf("table 2 %s: %w", c.name, err)
		}
		rep.addf("%s:", c.name)
		for _, ph := range results {
			rep.addf("  %s", ph)
			rep.metric(c.name+"/"+ph.Name+"/KBs", ph.ThroughputKBs())
		}
	}
	return rep, nil
}

// Table3 measures access delays (§7.2): time to first byte and total
// elapsed time for whole-file reads on FFS, HighLight with the file in the
// segment cache, and HighLight with the file uncached (demand fetch from
// the MO jukebox, volume already in a drive).
func Table3(s Scale) (*Report, error) {
	rep := newReport("Table 3: access delays for files")
	rep.addf("%-8s %-22s %12s %12s", "size", "configuration", "first byte", "total")

	record := func(cfgName string, size int64, fb, tot sim.Time) {
		rep.addf("%-8s %-22s %10.2f s %10.2f s", sizeName(size), cfgName, fb.Seconds(), tot.Seconds())
		rep.metric(fmt.Sprintf("%s/%s/first", cfgName, sizeName(size)), fb.Seconds())
		rep.metric(fmt.Sprintf("%s/%s/total", cfgName, sizeName(size)), tot.Seconds())
	}

	// FFS.
	{
		r := newFFSRig(s)
		var err error
		r.k.RunProc(func(p *sim.Proc) {
			t := wl.FFSTarget{Label: "ffs", FS: r.fs}
			for _, size := range s.FileSizes {
				path := "/" + sizeName(size)
				if e := writeSized(p, t, path, size); e != nil {
					err = e
					return
				}
			}
			for _, size := range s.FileSizes {
				if e := t.FlushCaches(p); e != nil {
					err = e
					return
				}
				f, e := t.Open(p, "/"+sizeName(size))
				if e != nil {
					err = e
					return
				}
				fb, tot, e := wl.SequentialScan(p, f, size)
				if e != nil {
					err = e
					return
				}
				record("FFS", size, fb, tot)
			}
		})
		if err != nil {
			return rep, fmt.Errorf("table 3 ffs: %w", err)
		}
	}

	// HighLight in-cache, then uncached.
	{
		r := newHLRig(s, stageOnMain)
		defer r.stop()
		var err error
		r.k.RunProc(func(p *sim.Proc) {
			t := wl.HLTarget("hl", r.hl)
			var inums []uint32
			for _, size := range s.FileSizes {
				path := "/" + sizeName(size)
				if e := writeSized(p, t, path, size); e != nil {
					err = e
					return
				}
				f, e := r.hl.FS.Open(p, path)
				if e != nil {
					err = e
					return
				}
				inums = append(inums, f.Inum())
			}
			if _, e := r.hl.MigrateFiles(p, inums, false); e != nil {
				err = e
				return
			}
			if e := r.hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			// In-cache: migrated but still cached on disk.
			for _, size := range s.FileSizes {
				if e := t.FlushCaches(p); e != nil {
					err = e
					return
				}
				f, _ := t.Open(p, "/"+sizeName(size))
				fb, tot, e := wl.SequentialScan(p, f, size)
				if e != nil {
					err = e
					return
				}
				record("HighLight in-cache", size, fb, tot)
			}
			// Uncached: eject the cache and demand-fetch from the MO
			// jukebox ("the tertiary volume was in the drive when the
			// tests began" — the write drive still holds it).
			for _, size := range s.FileSizes {
				if e := t.FlushCaches(p); e != nil {
					err = e
					return
				}
				for _, l := range r.hl.Cache.Lines() {
					if e := r.hl.Svc.Eject(l.Tag); e != nil {
						err = e
						return
					}
				}
				f, _ := t.Open(p, "/"+sizeName(size))
				fb, tot, e := wl.SequentialScan(p, f, size)
				if e != nil {
					err = e
					return
				}
				record("HighLight uncached", size, fb, tot)
			}
		})
		if err != nil {
			return rep, fmt.Errorf("table 3 highlight: %w", err)
		}
	}
	return rep, nil
}

func sizeName(n int64) string {
	switch {
	case n >= 1024*1024:
		return fmt.Sprintf("%dMB", n/(1024*1024))
	default:
		return fmt.Sprintf("%dKB", n/1024)
	}
}

func writeSized(p *sim.Proc, t wl.Target, path string, size int64) error {
	f, err := t.Create(p, path)
	if err != nil {
		return err
	}
	chunk := make([]byte, 64*1024)
	for off := int64(0); off < size; off += int64(len(chunk)) {
		n := int64(len(chunk))
		if size-off < n {
			n = size - off
		}
		for i := range chunk[:n] {
			chunk[i] = byte(off + int64(i))
		}
		if _, err := f.WriteAt(p, chunk[:n], off); err != nil {
			return err
		}
	}
	return t.Sync(p)
}

// migrationRun migrates a freshly written large object and reports the
// phase timings and service statistics (shared by Tables 4 and 6).
type migrationRun struct {
	stageDone    sim.Time // migrator finished assembling (T1)
	drainDone    sim.Time // all copyouts on tertiary media (T2)
	bytesAtStage int64
	bytesTotal   int64
	statsAtEnd   interface{ String() string }
	rig          *hlRig
}

func runMigration(s Scale, kind stagingKind) (*hlRig, sim.Time, sim.Time, int64, int64, error) {
	r := newHLRig(s, kind)
	var t1, t2 sim.Time
	var b1, b2 int64
	var err error
	r.k.RunProc(func(p *sim.Proc) {
		t := wl.HLTarget("hl", r.hl)
		if _, e := wl.CreateLargeObject(p, t, s.spec("/obj")); e != nil {
			err = e
			return
		}
		f, e := r.hl.FS.Open(p, "/obj")
		if e != nil {
			err = e
			return
		}
		start := p.Now()
		if _, e := r.hl.MigrateFiles(p, []uint32{f.Inum()}, false); e != nil {
			err = e
			return
		}
		t1 = p.Now() - start
		b1 = r.hl.Obs.Counter("tertiary.bytes_out").Value()
		if e := r.hl.CompleteMigration(p); e != nil {
			err = e
			return
		}
		t2 = p.Now() - start
		b2 = r.hl.Obs.Counter("tertiary.bytes_out").Value()
	})
	return r, t1, t2, b1, b2, err
}

// Table4 breaks down where migration time goes: inside the Footprint
// library (media change, seek, tertiary transfer), in the I/O server
// reading staged segments off disk, and queuing. The phase times are
// summed from the tertiary service's obs spans ("fp.write", "io.read",
// "svc.queue") — the same instrumentation the Chrome trace export shows.
func Table4(s Scale) (*Report, error) {
	rep := newReport("Table 4: migration time breakdown (magnetic to MO disk)")
	r, _, _, _, _, err := runMigration(s, stageOnMain)
	if err != nil {
		return rep, err
	}
	defer r.stop()
	o := r.hl.Obs
	fpWrite := o.CatTotal("fp.write")
	ioRead := o.CatTotal("io.read")
	queue := o.CatTotal("svc.queue")
	total := fpWrite + ioRead + queue
	if total == 0 {
		return rep, fmt.Errorf("table 4: no migration activity recorded")
	}
	pct := func(t sim.Time) float64 { return 100 * float64(t) / float64(total) }
	rep.addf("%-24s %8s", "phase", "percent")
	rep.addf("%-24s %7.1f%%", "Footprint write", pct(fpWrite))
	rep.addf("%-24s %7.1f%%", "I/O server read", pct(ioRead))
	rep.addf("%-24s %7.1f%%", "Migrator queuing", pct(queue))
	rep.metric("footprint%", pct(fpWrite))
	rep.metric("ioread%", pct(ioRead))
	rep.metric("queue%", pct(queue))
	return rep, nil
}

// Table5 measures raw device bandwidth with whole-segment sequential
// transfers, and the volume-change latency.
func Table5(s Scale) (*Report, error) {
	rep := newReport("Table 5: raw device measurements")
	rep.addf("%-22s %12s", "I/O type", "performance")

	segBytes := 1024 * 1024
	diskRate := func(prof dev.DiskProfile, write bool) float64 {
		k := sim.NewKernel()
		bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
		d := dev.NewDisk(k, prof, int64(64*256), bus)
		var elapsed sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, segBytes)
			start := p.Now()
			for i := int64(0); i < 16; i++ {
				var err error
				if write {
					err = d.WriteBlocks(p, i*256, buf)
				} else {
					err = d.ReadBlocks(p, i*256, buf)
				}
				if err != nil {
					panic(err)
				}
			}
			elapsed = p.Now() - start
		})
		return 16 * 1024 / elapsed.Seconds()
	}
	moRate := func(write bool) float64 {
		k := sim.NewKernel()
		bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
		j := jukebox.MustNew(k, jukebox.MO6300, 2, 2, 64, segBytes, bus)
		var elapsed sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, segBytes)
			// Prime the drive so the swap is excluded.
			if err := j.WriteSegment(p, 0, 0, buf); err != nil {
				panic(err)
			}
			start := p.Now()
			for i := 1; i <= 16; i++ {
				var err error
				if write {
					err = j.WriteSegment(p, 0, i, buf)
				} else {
					err = j.ReadSegment(p, 0, i, buf)
				}
				if err != nil {
					panic(err)
				}
			}
			elapsed = p.Now() - start
		})
		return 16 * 1024 / elapsed.Seconds()
	}
	volumeChange := func() float64 {
		// Table 5 definition: from an eject command to a completed read
		// of ONE SECTOR on the MO platter — so the probe jukebox uses a
		// single-block transfer unit.
		k := sim.NewKernel()
		j := jukebox.MustNew(k, jukebox.MO6300, 1, 2, 4, lfs.BlockSize, nil)
		var swap sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, lfs.BlockSize)
			if err := j.ReadSegment(p, 0, 0, buf); err != nil {
				panic(err)
			}
			t0 := p.Now()
			if err := j.ReadSegment(p, 1, 0, buf); err != nil {
				panic(err)
			}
			swap = p.Now() - t0
		})
		return swap.Seconds()
	}

	rows := []struct {
		name string
		v    float64
		unit string
	}{
		{"Raw MO read", moRate(false), "KB/s"},
		{"Raw MO write", moRate(true), "KB/s"},
		{"Raw RZ57 read", diskRate(dev.RZ57, false), "KB/s"},
		{"Raw RZ57 write", diskRate(dev.RZ57, true), "KB/s"},
		{"Raw RZ58 read", diskRate(dev.RZ58, false), "KB/s"},
		{"Raw RZ58 write", diskRate(dev.RZ58, true), "KB/s"},
		{"Volume change", volumeChange(), "s"},
	}
	for _, row := range rows {
		rep.addf("%-22s %9.1f %s", row.name, row.v, row.unit)
		rep.metric(row.name, row.v)
	}
	return rep, nil
}

// Table6 measures migrator throughput while the migrator contends for the
// disk arm (staging and copy-out simultaneously) and after it finishes
// (copy-out only), for the three staging configurations of the paper.
func Table6(s Scale) (*Report, error) {
	rep := newReport(fmt.Sprintf("Table 6: migrator throughput (%.1f MB migrated)", s.objectMB()))
	rep.addf("%-24s %14s %14s %14s", "phase", "RZ57", "RZ57+RZ58", "RZ57+HP7958A")

	type res struct{ contention, noContention, overall float64 }
	var results []res
	for _, kind := range []stagingKind{stageOnMain, stageOnRZ58, stageOnHP7958A} {
		r, t1, t2, b1, b2, err := runMigration(s, kind)
		if err != nil {
			return rep, fmt.Errorf("table 6 config %d: %w", kind, err)
		}
		var rr res
		if t1 > 0 {
			rr.contention = float64(b1) / 1024 / t1.Seconds()
		}
		if t2 > t1 {
			rr.noContention = float64(b2-b1) / 1024 / (t2 - t1).Seconds()
		}
		if t2 > 0 {
			rr.overall = float64(b2) / 1024 / t2.Seconds()
		}
		results = append(results, rr)
		r.stop()
	}
	rep.addf("%-24s %9.1f KB/s %9.1f KB/s %9.1f KB/s", "arm contention",
		results[0].contention, results[1].contention, results[2].contention)
	rep.addf("%-24s %9.1f KB/s %9.1f KB/s %9.1f KB/s", "no arm contention",
		results[0].noContention, results[1].noContention, results[2].noContention)
	rep.addf("%-24s %9.1f KB/s %9.1f KB/s %9.1f KB/s", "overall",
		results[0].overall, results[1].overall, results[2].overall)
	names := []string{"RZ57", "RZ57+RZ58", "RZ57+HP7958A"}
	for i, n := range names {
		rep.metric(n+"/contention", results[i].contention)
		rep.metric(n+"/nocontention", results[i].noContention)
		rep.metric(n+"/overall", results[i].overall)
	}
	return rep, nil
}

// Table1 renders the partial-segment summary block format (Table 1) from
// the implementation's own encoder, verifying the documented sizes.
func Table1() *Report {
	rep := newReport("Table 1: partial segment summary block")
	rep.addf("%-12s %6s  %s", "field", "bytes", "description")
	rep.addf("%-12s %6d  %s", "ss_sumsum", 4, "check sum of summary block")
	rep.addf("%-12s %6d  %s", "ss_datasum", 4, "check sum of data")
	rep.addf("%-12s %6d  %s", "ss_next", 4, "segment number of next segment in log")
	rep.addf("%-12s %6d  %s", "ss_create", 8, "creation time stamp (virtual ns)")
	rep.addf("%-12s %6d  %s", "ss_nfinfo", 2, "number of file info structures")
	rep.addf("%-12s %6d  %s", "ss_ninos", 2, "number of inode blocks in summary")
	rep.addf("%-12s %6d  %s", "ss_flags", 2, "flags (checkpoint / staging)")
	rep.addf("%-12s %6d  %s", "ss_nblocks", 2, "blocks in this partial segment")
	rep.addf("%-12s %6d  %s", "ss_serial", 8, "checkpoint epoch")
	rep.addf("%-12s %6s  %s", "...", "12+4n", "per distinct file: file block descriptions")
	rep.addf("%-12s %6s  %s", "...", "4", "per inode block: disk address")
	rep.addf("(HighLight uses a %d-byte summary block: block pointers address 4 KB units)", lfs.BlockSize)
	return rep
}
