package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// BenchSnapshot is the machine-readable benchmark record emitted by
// `hlbench -json` (and `make bench-json`) into BENCH_*.json files, so
// the table metrics and key observability counters can be tracked
// across commits. Encoding uses encoding/json maps, whose keys marshal
// sorted — the output is deterministic for a deterministic run.
type BenchSnapshot struct {
	Schema string `json:"schema"`
	Scale  string `json:"scale"`
	// Tables maps "table2".."table6" to that table's named metrics.
	Tables map[string]map[string]float64 `json:"tables"`
	// Counters are obs counters from one instrumented migration +
	// demand-fetch run (bytes moved, fetches, copyouts, cache hits).
	Counters map[string]int64 `json:"counters"`
	// SpanSeconds are per-category obs span totals, in seconds, from
	// the same run — the trace-derived time breakdown.
	SpanSeconds map[string]float64 `json:"span_seconds"`
	// Quantiles maps each obs histogram with observations to its
	// {"p50_s","p99_s","mean_s"} summary, in seconds.
	Quantiles map[string]map[string]float64 `json:"quantiles"`
}

// BuildSnapshot runs every table plus one instrumented migration and
// collects the results.
func BuildSnapshot(s Scale, scaleName string) (*BenchSnapshot, error) {
	return BuildSnapshotWith(s, scaleName, nil)
}

// BuildSnapshotWith is BuildSnapshot with a telemetry server attached:
// after each table and workload step a fresh snapshot of the
// instrumented migration rig is published. srv may be nil (no
// publishing); the returned snapshot is byte-identical either way —
// publication only reads — which TestSnapshotUnchangedByTelemetry pins.
func BuildSnapshotWith(s Scale, scaleName string, srv *telemetry.Server) (*BenchSnapshot, error) {
	snap := &BenchSnapshot{
		Schema:      "hlbench/2",
		Scale:       scaleName,
		Tables:      map[string]map[string]float64{},
		Counters:    map[string]int64{},
		SpanSeconds: map[string]float64{},
		Quantiles:   map[string]map[string]float64{},
	}
	tables := []struct {
		name string
		run  func(Scale) (*Report, error)
	}{
		{"table2", Table2}, {"table3", Table3}, {"table4", Table4},
		{"table5", Table5}, {"table6", Table6},
	}
	for _, t := range tables {
		rep, err := t.run(s)
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot %s: %w", t.name, err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables[t.name] = m
	}
	// The disk-farm scaling curves run at their own fixed geometry (the
	// striped farm, not the table rig), so one entry covers both scales.
	{
		rep, err := AblationDiskScaling()
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot disk scaling: %w", err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables["ablation_disk_scaling"] = m
	}
	// The overload study runs at its own fixed geometry too: the front-end
	// admission rig, not the table rig, so one entry covers both scales.
	{
		rep, err := AblationOverload()
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot overload: %w", err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables["ablation_overload"] = m
	}
	// The migration-policy shootout also runs at its own fixed geometry:
	// one entry covers both scales.
	{
		rep, err := AblationPolicy()
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot policy shootout: %w", err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables["ablation_policy"] = m
	}
	// The tracing ablation proves the per-request tracer is free: its own
	// fixed geometry, one entry for both scales.
	{
		rep, err := AblationReqtrace()
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot reqtrace ablation: %w", err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables["ablation_reqtrace"] = m
	}
	// One instrumented migration + demand-fetch run for the obs counters
	// and span totals.
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	if err := migrationFetchWorkload(r, s); err != nil {
		return nil, fmt.Errorf("bench: snapshot migration: %w", err)
	}
	publish(r, srv)
	for _, name := range []string{
		"tertiary.fetches", "tertiary.copyouts",
		"tertiary.bytes_in", "tertiary.bytes_out",
		"cache.hits", "cache.misses",
	} {
		snap.Counters[name] = r.obs.Counter(name).Value()
	}
	for _, a := range r.obs.Aggregates() {
		snap.SpanSeconds[a.Cat] += a.Total.Seconds()
	}
	for _, h := range r.obs.Histograms() {
		if h.N == 0 {
			continue
		}
		snap.Quantiles[h.Name] = map[string]float64{
			"p50_s":  h.P50().Seconds(),
			"p99_s":  h.P99().Seconds(),
			"mean_s": h.Mean().Seconds(),
		}
	}
	return snap, nil
}

// WriteSnapshot builds the snapshot and writes it as indented JSON.
func WriteSnapshot(w io.Writer, s Scale, scaleName string) error {
	snap, err := BuildSnapshot(s, scaleName)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
