package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchSnapshot is the machine-readable benchmark record emitted by
// `hlbench -json` (and `make bench-json`) into BENCH_*.json files, so
// the table metrics and key observability counters can be tracked
// across commits. Encoding uses encoding/json maps, whose keys marshal
// sorted — the output is deterministic for a deterministic run.
type BenchSnapshot struct {
	Schema string `json:"schema"`
	Scale  string `json:"scale"`
	// Tables maps "table2".."table6" to that table's named metrics.
	Tables map[string]map[string]float64 `json:"tables"`
	// Counters are obs counters from one instrumented migration +
	// demand-fetch run (bytes moved, fetches, copyouts, cache hits).
	Counters map[string]int64 `json:"counters"`
	// SpanSeconds are per-category obs span totals, in seconds, from
	// the same run — the trace-derived time breakdown.
	SpanSeconds map[string]float64 `json:"span_seconds"`
}

// BuildSnapshot runs every table plus one instrumented migration and
// collects the results.
func BuildSnapshot(s Scale, scaleName string) (*BenchSnapshot, error) {
	snap := &BenchSnapshot{
		Schema:      "hlbench/1",
		Scale:       scaleName,
		Tables:      map[string]map[string]float64{},
		Counters:    map[string]int64{},
		SpanSeconds: map[string]float64{},
	}
	tables := []struct {
		name string
		run  func(Scale) (*Report, error)
	}{
		{"table2", Table2}, {"table3", Table3}, {"table4", Table4},
		{"table5", Table5}, {"table6", Table6},
	}
	for _, t := range tables {
		rep, err := t.run(s)
		if err != nil {
			return nil, fmt.Errorf("bench: snapshot %s: %w", t.name, err)
		}
		m := map[string]float64{}
		for k, v := range rep.Metrics {
			m[k] = v
		}
		snap.Tables[t.name] = m
	}
	// One instrumented migration + demand-fetch run for the obs counters
	// and span totals.
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	if err := migrationFetchWorkload(r, s); err != nil {
		return nil, fmt.Errorf("bench: snapshot migration: %w", err)
	}
	for _, name := range []string{
		"tertiary.fetches", "tertiary.copyouts",
		"tertiary.bytes_in", "tertiary.bytes_out",
		"cache.hits", "cache.misses",
	} {
		snap.Counters[name] = r.obs.Counter(name).Value()
	}
	for _, a := range r.obs.Aggregates() {
		snap.SpanSeconds[a.Cat] += a.Total.Seconds()
	}
	return snap, nil
}

// WriteSnapshot builds the snapshot and writes it as indented JSON.
func WriteSnapshot(w io.Writer, s Scale, scaleName string) error {
	snap, err := BuildSnapshot(s, scaleName)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
