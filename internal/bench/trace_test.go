package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceMigrationDeterministic runs the traced migration workload
// twice and requires byte-identical Chrome trace output: the trace is
// keyed entirely to virtual time, so any difference is nondeterminism
// in the simulation itself.
func TestTraceMigrationDeterministic(t *testing.T) {
	var outs [2]bytes.Buffer
	for i := range outs {
		if err := TraceMigration(QuickScale(), &outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Fatal("two identical runs produced different trace bytes")
	}
	out := outs[0].String()
	// Valid JSON with the traceEvents wrapper (what chrome://tracing loads).
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(outs[0].Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	// The workload must have exercised the whole stack: migration,
	// Footprint transfers, disk I/O, cache activity, and a demand fetch.
	for _, cat := range []string{
		"core.migrate", "fp.write", "fp.read", "disk.read", "disk.write",
		"svc.queue", "cache.evict", "fetch.wait", "jb.write",
	} {
		if !strings.Contains(out, `"cat":"`+cat+`"`) {
			t.Fatalf("trace has no %s spans", cat)
		}
	}
}

// TestSnapshotShape checks the -json snapshot carries every table plus
// the obs counters, with the migration actually moving bytes.
func TestSnapshotShape(t *testing.T) {
	snap, err := BuildSnapshot(QuickScale(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"table2", "table3", "table4", "table5", "table6"} {
		if len(snap.Tables[tbl]) == 0 {
			t.Fatalf("snapshot missing %s metrics", tbl)
		}
	}
	if snap.Counters["tertiary.bytes_out"] <= 0 {
		t.Fatal("snapshot migration moved no bytes")
	}
	if snap.SpanSeconds["fp.write"] <= 0 {
		t.Fatal("snapshot has no Footprint write time")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema":"hlbench/2"`) {
		t.Fatal("snapshot JSON missing schema tag")
	}
}
