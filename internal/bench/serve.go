package bench

import (
	"fmt"
	"time"

	"repro/internal/migrate"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/telemetry"
	"repro/internal/wl"
)

// publish renders the rig's current obs/heat/audit state and hands it
// to the telemetry server. srv may be nil. Publishing only *reads* the
// sim state at a point the sim side chose, so runs with and without a
// server execute the same virtual-time schedule — the determinism pins
// in snapshot_test.go and the crash package hold the line.
func publish(r *hlRig, srv *telemetry.Server) {
	publishFull(r, srv, nil)
}

// publishFull additionally renders the front end's per-request traces
// (/requests) and the kernel self-profile (appended to /metrics). The
// profile is the one wall-clock section; everything else stays a pure
// function of virtual time.
func publishFull(r *hlRig, srv *telemetry.Server, fe *svc.FrontEnd) {
	if srv == nil {
		return
	}
	sn := telemetry.Collect(r.obs, r.hl.Heat, r.hl.Audit, r.k.Now())
	if fe != nil && fe.Tracer != nil {
		sn.Requests = telemetry.RenderRequests(fe.Tracer, r.k.Now())
	}
	sn.Profile = telemetry.RenderProfile(r.k.ProfileSnapshot())
	srv.Publish(sn)
}

// ServeMigration drives a multi-round create → age → migrate → eject →
// demand-fetch workload (with a final whole-volume clean), publishing a
// telemetry snapshot after every step. This is the workload behind
// `hlbench -serve`: long enough to watch, and exercising every decision
// actor (policy ranking, staging, copy-out, cleaning) so /heatmap and
// /decisions have real content. It is deterministic in virtual time
// whether or not srv is attached.
func ServeMigration(s Scale, srv *telemetry.Server, rounds int) error {
	if rounds <= 0 {
		rounds = 3
	}
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	r.k.EnableProfile()
	framesPer := s.Frames / (2 * rounds)
	if framesPer < 64 {
		framesPer = 64
	}
	var err error
	var fe *svc.FrontEnd
	r.k.RunProc(func(p *sim.Proc) {
		t := wl.HLTarget("hl", r.hl)
		m := migrate.NewMigrator(r.hl)
		fe = svc.New(r.hl, svc.Config{
			Workers: 2, ReservedInteractive: 1,
			InteractiveQueue: 8, BackgroundQueue: 8,
		})
		for round := 0; round < rounds; round++ {
			path := fmt.Sprintf("/obj%d", round)
			spec := wl.LargeObjectSpec{
				Path:        path,
				Frames:      framesPer,
				SeqFrames:   framesPer / 4,
				SmallFrames: framesPer / 16,
				Seed:        uint64(42 + round),
			}
			if _, e := wl.CreateLargeObject(p, t, spec); e != nil {
				err = e
				return
			}
			publish(r, srv)
			// Age the round's files so the policy sees an access-time
			// spread between rounds.
			p.Sleep(10 * sim.Time(time.Second))
			if _, e := m.RunOnce(p, int64(framesPer)*wl.FrameSize); e != nil {
				err = e
				return
			}
			publish(r, srv)
			// Turn the next reads into demand fetches: drop buffered
			// blocks and eject every clean cache line.
			f, e := r.hl.FS.Open(p, path)
			if e != nil {
				err = e
				return
			}
			r.hl.FS.DropFileBuffers(p, f.Inum())
			for _, l := range r.hl.Cache.Lines() {
				if l.Staging || l.Pins > 0 {
					continue
				}
				if e := r.hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
			// The demand-fetch read goes through the front end so it is
			// admission-controlled and traced end to end: the /requests
			// endpoint shows its queue-wait, cache misses, fetch-wait, and
			// the jukebox work underneath.
			deadline := p.Now() + 120*sim.Time(time.Second)
			if e := fe.Submit(p, svc.Interactive, deadline, func(wp *sim.Proc) error {
				buf := make([]byte, 64*1024)
				_, re := f.ReadAt(wp, buf, 0)
				return re
			}); e != nil {
				err = e
				return
			}
			publishFull(r, srv, fe)
		}
		// Reclaim the cheapest used volume so the cleaner's decisions
		// (selected, cleaned, skipped segments) show up in the audit.
		if u, ok := r.hl.SelectCleanableVolume(); ok {
			if _, e := r.hl.CleanVolume(p, u.Device, u.Volume); e != nil {
				err = e
				return
			}
		}
		publishFull(r, srv, fe)
	})
	if err != nil {
		return fmt.Errorf("bench: serve workload: %w", err)
	}
	return nil
}
