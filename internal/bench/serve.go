package bench

import (
	"fmt"
	"time"

	"repro/internal/migrate"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wl"
)

// publish renders the rig's current obs/heat/audit state and hands it
// to the telemetry server. srv may be nil. Publishing only *reads* the
// sim state at a point the sim side chose, so runs with and without a
// server execute the same virtual-time schedule — the determinism pins
// in snapshot_test.go and the crash package hold the line.
func publish(r *hlRig, srv *telemetry.Server) {
	if srv == nil {
		return
	}
	srv.Publish(telemetry.Collect(r.obs, r.hl.Heat, r.hl.Audit, r.k.Now()))
}

// ServeMigration drives a multi-round create → age → migrate → eject →
// demand-fetch workload (with a final whole-volume clean), publishing a
// telemetry snapshot after every step. This is the workload behind
// `hlbench -serve`: long enough to watch, and exercising every decision
// actor (policy ranking, staging, copy-out, cleaning) so /heatmap and
// /decisions have real content. It is deterministic in virtual time
// whether or not srv is attached.
func ServeMigration(s Scale, srv *telemetry.Server, rounds int) error {
	if rounds <= 0 {
		rounds = 3
	}
	r := newHLRig(s, stageOnMain)
	defer r.stop()
	framesPer := s.Frames / (2 * rounds)
	if framesPer < 64 {
		framesPer = 64
	}
	var err error
	r.k.RunProc(func(p *sim.Proc) {
		t := wl.HLTarget("hl", r.hl)
		m := migrate.NewMigrator(r.hl)
		for round := 0; round < rounds; round++ {
			path := fmt.Sprintf("/obj%d", round)
			spec := wl.LargeObjectSpec{
				Path:        path,
				Frames:      framesPer,
				SeqFrames:   framesPer / 4,
				SmallFrames: framesPer / 16,
				Seed:        uint64(42 + round),
			}
			if _, e := wl.CreateLargeObject(p, t, spec); e != nil {
				err = e
				return
			}
			publish(r, srv)
			// Age the round's files so the policy sees an access-time
			// spread between rounds.
			p.Sleep(10 * sim.Time(time.Second))
			if _, e := m.RunOnce(p, int64(framesPer)*wl.FrameSize); e != nil {
				err = e
				return
			}
			publish(r, srv)
			// Turn the next reads into demand fetches: drop buffered
			// blocks and eject every clean cache line.
			f, e := r.hl.FS.Open(p, path)
			if e != nil {
				err = e
				return
			}
			r.hl.FS.DropFileBuffers(p, f.Inum())
			for _, l := range r.hl.Cache.Lines() {
				if l.Staging || l.Pins > 0 {
					continue
				}
				if e := r.hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
			buf := make([]byte, 64*1024)
			if _, e := f.ReadAt(p, buf, 0); e != nil {
				err = e
				return
			}
			publish(r, srv)
		}
		// Reclaim the cheapest used volume so the cleaner's decisions
		// (selected, cleaned, skipped segments) show up in the audit.
		if u, ok := r.hl.SelectCleanableVolume(); ok {
			if _, e := r.hl.CleanVolume(p, u.Device, u.Volume); e != nil {
				err = e
				return
			}
		}
		publish(r, srv)
	})
	if err != nil {
		return fmt.Errorf("bench: serve workload: %w", err)
	}
	return nil
}
