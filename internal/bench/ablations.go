package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

// Ablations for the policy knobs the paper leaves open (§5): cache
// eviction policy, copy-out scheduling, STP ranking exponents, and
// whole-file versus block-range migration. Each returns a Report with the
// measured trade-off.

// ablationRig is a mid-size HighLight instance for policy studies.
func ablationRig(policy cache.Policy, bypass bool) (*sim.Kernel, *core.HighLight) {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, 192*256, bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 40, 256*lfs.BlockSize, bus)
	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks:   256,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   8, // deliberately scarce: eviction policy matters
			MaxInodes:   1024,
			BufferBytes: 1 << 20,
			CachePolicy: policy,
		}, true)
		if err != nil {
			panic(err)
		}
		hl.Cache.BypassFirstRef = bypass
	})
	return k, hl
}

// AblationCachePolicy compares segment-cache eviction policies (§5.4:
// "cache flushing could be handled by any of the standard policies") on a
// workload with reuse locality: 24 migrated files, accessed with an 80/20
// split between a hot subset and the long tail.
func AblationCachePolicy() (*Report, error) {
	rep := newReport("Ablation: segment cache eviction policy (8-line cache, 80/20 reuse)")
	rep.addf("%-18s %10s %12s %12s", "policy", "fetches", "cache hits", "elapsed")
	type cfg struct {
		name   string
		policy cache.Policy
		bypass bool
	}
	for _, c := range []cfg{
		{"LRU", cache.LRU, false},
		{"FIFO", cache.FIFO, false},
		{"Random", cache.Random, false},
		{"LRU+bypass(§10)", cache.LRU, true},
	} {
		k, hl := ablationRig(c.policy, c.bypass)
		var fetches, hits int64
		var elapsed sim.Time
		var err error
		k.RunProc(func(p *sim.Proc) {
			const nfiles = 24
			var inums []uint32
			for i := 0; i < nfiles; i++ {
				f, e := hl.FS.Create(p, fmt.Sprintf("/f%02d", i))
				if e != nil {
					err = e
					return
				}
				if _, e := f.WriteAt(p, make([]byte, 255*lfs.BlockSize), 0); e != nil {
					err = e
					return
				}
				inums = append(inums, f.Inum())
			}
			if _, e := hl.MigrateFiles(p, inums, false); e != nil {
				err = e
				return
			}
			if e := hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			for _, l := range hl.Cache.Lines() {
				if e := hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
			// Access pattern: 80% to 4 hot files, 20% to the tail.
			rng := sim.NewRNG(11)
			buf := make([]byte, lfs.BlockSize)
			start := p.Now()
			for q := 0; q < 300; q++ {
				var i int
				if rng.Intn(100) < 80 {
					i = rng.Intn(4)
				} else {
					i = 4 + rng.Intn(nfiles-4)
				}
				f, e := hl.FS.OpenInum(p, inums[i])
				if e != nil {
					err = e
					return
				}
				hl.FS.DropFileBuffers(p, inums[i])
				if _, e := f.ReadAt(p, buf, int64(rng.Intn(255))*lfs.BlockSize); e != nil && e != io.EOF {
					err = e
					return
				}
			}
			elapsed = p.Now() - start
			fetches = hl.Svc.Stats().Fetches
			hits = hl.Cache.Stats().Hits
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		rep.addf("%-18s %10d %12d %10.1f s", c.name, fetches, hits, elapsed.Seconds())
		rep.metric(c.name+"/fetches", float64(fetches))
		rep.metric(c.name+"/elapsed", elapsed.Seconds())
	}
	return rep, nil
}

// AblationCopyout compares immediate versus delayed copy-out scheduling
// (§5.4 "writing fresh tertiary segments"): a migration runs while an
// interactive application keeps reading a disk-resident file; delayed
// copy-outs keep the disk arm free of I/O-server reads during staging at
// the cost of reserved disk space and a long drain afterwards.
func AblationCopyout() (*Report, error) {
	rep := newReport("Ablation: immediate vs delayed tertiary copy-outs (§5.4)")
	rep.addf("%-12s %16s %16s %14s", "schedule", "interactive avg", "staging done", "all durable")
	for _, delayed := range []bool{false, true} {
		k, hl := ablationRig(cache.LRU, false)
		hl.DelayCopyouts = delayed
		var avgRead, stagingDone, total float64
		var err error
		k.RunProc(func(p *sim.Proc) {
			hot, e := hl.FS.Create(p, "/interactive")
			if e != nil {
				err = e
				return
			}
			if _, e := hot.WriteAt(p, make([]byte, 1<<20), 0); e != nil {
				err = e
				return
			}
			bulk, e := hl.FS.Create(p, "/bulk")
			if e != nil {
				err = e
				return
			}
			if _, e := bulk.WriteAt(p, make([]byte, 6<<20), 0); e != nil {
				err = e
				return
			}
			if e := hl.FS.Sync(p); e != nil {
				err = e
				return
			}
			// Interactive reader in the background.
			var reads int
			var readTime sim.Time
			stop := false
			k.GoDaemon("reader", func(rp *sim.Proc) {
				buf := make([]byte, lfs.BlockSize)
				rng := sim.NewRNG(3)
				for !stop {
					rp.Sleep(200 * time.Millisecond)
					hl.FS.DropFileBuffers(rp, hot.Inum())
					t0 := rp.Now()
					if _, e := hot.ReadAt(rp, buf, int64(rng.Intn(256))*lfs.BlockSize); e != nil && e != io.EOF {
						return
					}
					readTime += rp.Now() - t0
					reads++
				}
			})
			start := p.Now()
			if _, e := hl.MigrateFiles(p, []uint32{bulk.Inum()}, false); e != nil {
				err = e
				return
			}
			stagingDone = (p.Now() - start).Seconds()
			stop = true
			if e := hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			total = (p.Now() - start).Seconds()
			if reads > 0 {
				avgRead = readTime.Seconds() / float64(reads) * 1000
			}
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		name := "immediate"
		if delayed {
			name = "delayed"
		}
		rep.addf("%-12s %13.1f ms %13.1f s %11.1f s", name, avgRead, stagingDone, total)
		rep.metric(name+"/interactive-ms", avgRead)
		rep.metric(name+"/staging-s", stagingDone)
		rep.metric(name+"/total-s", total)
	}
	return rep, nil
}

// AblationSTP compares space-time-product exponents (§5.1): pure
// access-time ranking (size exponent 0), pure size ranking (time exponent
// 0), and the recommended STP (both 1). Quality metric: demand fetches
// when "the future" re-reads the files that were accessed most recently —
// fewer fetches mean the policy migrated the right (dormant) data.
func AblationSTP() (*Report, error) {
	rep := newReport("Ablation: STP ranking exponents (§5.1)")
	rep.addf("%-22s %10s %14s", "policy", "fetches", "future reread")
	type cfg struct {
		name    string
		timeExp float64
		sizeExp float64
	}
	for _, c := range []cfg{
		{"atime only (t^1)", 1, 0},
		{"size only (s^1)", 0, 1},
		{"STP (t^1 * s^1)", 1, 1},
	} {
		k, hl := ablationRig(cache.LRU, false)
		var fetches int64
		var rereadS float64
		var err error
		k.RunProc(func(p *sim.Proc) {
			// File population: large dormant files, small dormant
			// files, and recently touched files of both sizes.
			mk := func(name string, blocks int) *lfs.File {
				f, e := hl.FS.Create(p, name)
				if e != nil {
					err = e
					return nil
				}
				if _, e := f.WriteAt(p, make([]byte, blocks*lfs.BlockSize), 0); e != nil {
					err = e
					return nil
				}
				return f
			}
			var recent []*lfs.File
			for i := 0; i < 4; i++ {
				mk(fmt.Sprintf("/dormant-big-%d", i), 400)
				mk(fmt.Sprintf("/dormant-small-%d", i), 16)
			}
			p.Sleep(24 * time.Hour)
			// Recent files are slightly larger, so a pure size ranking
			// prefers exactly the wrong candidates.
			for i := 0; i < 4; i++ {
				recent = append(recent, mk(fmt.Sprintf("/recent-big-%d", i), 550))
				recent = append(recent, mk(fmt.Sprintf("/recent-small-%d", i), 16))
			}
			if err != nil {
				return
			}
			buf := make([]byte, lfs.BlockSize)
			for _, f := range recent {
				if _, e := f.ReadAt(p, buf, 0); e != nil && e != io.EOF {
					err = e
					return
				}
			}
			m := migrate.NewMigrator(hl)
			m.Policy = &migrate.STP{TimeExp: c.timeExp, SizeExp: c.sizeExp}
			// Free half the data's worth of disk.
			if _, e := m.RunOnce(p, 7<<20); e != nil {
				err = e
				return
			}
			for _, l := range hl.Cache.Lines() {
				if e := hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
			// The future: recently-active files get read again.
			start := p.Now()
			for _, f := range recent {
				sz, _ := f.Size(p)
				for off := int64(0); off < int64(sz); off += lfs.BlockSize {
					if _, e := f.ReadAt(p, buf, off); e != nil && e != io.EOF {
						err = e
						return
					}
				}
			}
			rereadS = (p.Now() - start).Seconds()
			fetches = hl.Svc.Stats().Fetches
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		rep.addf("%-22s %10d %11.1f s", c.name, fetches, rereadS)
		rep.metric(c.name+"/fetches", float64(fetches))
		rep.metric(c.name+"/reread-s", rereadS)
	}
	return rep, nil
}

// AblationFaultRate measures end-to-end throughput under injected
// transient media errors on the jukebox. The same bulk workload —
// migrate a set of files to tertiary, eject the cache, and demand-fetch
// everything back — runs under seeded fault plans at 0%, 1% and 5%
// per-op transient error rates. Recovery (bounded retries with
// virtual-time backoff) must absorb every fault: throughput degrades
// smoothly with the error rate and no retry budget is ever exhausted.
func AblationFaultRate() (*Report, error) {
	rep := newReport("Ablation: throughput under transient media-error rate")
	rep.addf("%-8s %12s %10s %11s %12s", "rate", "throughput", "retries", "exhausted", "elapsed")
	for _, pct := range []float64{0, 1, 5} {
		// Small (32-block) segments so the workload issues enough tertiary
		// segment ops for a 1% per-op rate to be visible.
		k := sim.NewKernel()
		bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
		disk := dev.NewDisk(k, dev.RZ57, 384*32, bus)
		juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 60, 32*lfs.BlockSize, bus)
		if pct > 0 {
			plan := fault.NewPlan(fault.Config{
				Seed:               97,
				TransientReadRate:  pct / 100,
				TransientWriteRate: pct / 100,
				MaxBurst:           2,
			})
			plan.InstallJukebox(juke.Profile().Name, juke)
		}
		var moved int64
		var elapsed sim.Time
		var retries, exhausted int64
		var err error
		k.RunProc(func(p *sim.Proc) {
			hl, e := core.New(p, core.Config{
				SegBlocks:   32,
				Disks:       []dev.BlockDev{disk},
				Jukeboxes:   []jukebox.Footprint{juke},
				CacheSegs:   8,
				MaxInodes:   1024,
				BufferBytes: 1 << 20,
			}, true)
			if e != nil {
				err = e
				return
			}
			const nfiles = 12
			const fblocks = 127
			var inums []uint32
			start := p.Now()
			for i := 0; i < nfiles; i++ {
				f, e := hl.FS.Create(p, fmt.Sprintf("/bulk%02d", i))
				if e != nil {
					err = e
					return
				}
				if _, e := f.WriteAt(p, make([]byte, fblocks*lfs.BlockSize), 0); e != nil {
					err = e
					return
				}
				inums = append(inums, f.Inum())
			}
			staged, e := hl.MigrateFiles(p, inums, false)
			if e != nil {
				err = e
				return
			}
			if e := hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			moved += staged
			// Two eject + full-readback rounds: demand fetches under read
			// faults dominate the op count.
			buf := make([]byte, 32*lfs.BlockSize)
			for round := 0; round < 2; round++ {
				for _, l := range hl.Cache.Lines() {
					if e := hl.Svc.Eject(l.Tag); e != nil {
						err = e
						return
					}
				}
				for _, in := range inums {
					f, e := hl.FS.OpenInum(p, in)
					if e != nil {
						err = e
						return
					}
					hl.FS.DropFileBuffers(p, in)
					for off := int64(0); off < fblocks*lfs.BlockSize; off += int64(len(buf)) {
						n, e := f.ReadAt(p, buf, off)
						if e != nil && e != io.EOF {
							err = e
							return
						}
						moved += int64(n)
					}
				}
			}
			elapsed = p.Now() - start
			st := hl.Svc.Stats()
			retries = st.TransientRetries
			exhausted = st.RetriesExhausted
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		mbps := float64(moved) / (1 << 20) / elapsed.Seconds()
		name := fmt.Sprintf("%g%%", pct)
		rep.addf("%-8s %7.2f MB/s %10d %11d %10.1f s", name, mbps, retries, exhausted, elapsed.Seconds())
		rep.metric(name+"/MBps", mbps)
		rep.metric(name+"/retries", float64(retries))
		rep.metric(name+"/exhausted", float64(exhausted))
	}
	return rep, nil
}

// AblationCrashRecovery measures mount recovery time as a function of
// log length since the last checkpoint: after a checkpoint, N segments'
// worth of synced writes accumulate, the power is cut (durable device
// images only survive), and a fresh kernel remounts. Recovery cost should
// scale with the roll-forward extent, not with file system size — the
// checkpoint bounds the work (§3).
func AblationCrashRecovery() (*Report, error) {
	rep := newReport("Ablation: crash-recovery time vs log length since checkpoint")
	rep.addf("%-10s %10s %10s %10s %12s", "log segs", "psegs", "blocks", "inodes", "recovery")
	const segBlocks = 32
	const diskSegs = 384
	mk := func(k *sim.Kernel) (*dev.Disk, *jukebox.Jukebox) {
		bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
		disk := dev.NewDisk(k, dev.RZ57, diskSegs*segBlocks, bus)
		disk.EnableWriteCache(16)
		juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 16, segBlocks*lfs.BlockSize, bus)
		return disk, juke
	}
	ccfg := func(disk *dev.Disk, juke *jukebox.Jukebox) core.Config {
		return core.Config{
			SegBlocks:   segBlocks,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   8,
			MaxInodes:   1024,
			BufferBytes: 1 << 20,
		}
	}
	for _, segs := range []int{0, 4, 16, 64} {
		k := sim.NewKernel()
		disk, juke := mk(k)
		var store map[int64][]byte
		var vols []jukebox.VolumeImage
		var cut sim.Time
		var err error
		k.RunProc(func(p *sim.Proc) {
			hl, e := core.New(p, ccfg(disk, juke), true)
			if e != nil {
				err = e
				return
			}
			// The same base population everywhere: recovery time must not
			// depend on it.
			base, e := hl.FS.Create(p, "/base")
			if e != nil {
				err = e
				return
			}
			if _, e := base.WriteAt(p, make([]byte, 64*lfs.BlockSize), 0); e != nil {
				err = e
				return
			}
			if e := hl.Checkpoint(p); e != nil {
				err = e
				return
			}
			// Roughly one log segment of synced writes per round.
			for i := 0; i < segs; i++ {
				f, e := hl.FS.Create(p, fmt.Sprintf("/post%03d", i))
				if e != nil {
					err = e
					return
				}
				if _, e := f.WriteAt(p, make([]byte, (segBlocks-4)*lfs.BlockSize), 0); e != nil {
					err = e
					return
				}
				if e := hl.FS.Sync(p); e != nil {
					err = e
					return
				}
			}
			store = disk.SnapshotStore()
			vols = juke.SnapshotVolumes()
			cut = p.Now()
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		k2 := sim.NewKernel()
		k2.AdvanceTo(cut)
		disk2, juke2 := mk(k2)
		disk2.RestoreStore(store)
		juke2.RestoreVolumes(vols)
		var ri lfs.RecoveryInfo
		var elapsed sim.Time
		k2.RunProc(func(p *sim.Proc) {
			t0 := p.Now()
			hl, e := core.New(p, ccfg(disk2, juke2), false)
			if e != nil {
				err = e
				return
			}
			elapsed = p.Now() - t0
			ri = hl.FS.Recovery()
		})
		k2.Stop()
		if err != nil {
			return rep, err
		}
		name := fmt.Sprintf("%d", segs)
		rep.addf("%-10s %10d %10d %10d %9.2f s", name, ri.PsegsReplayed, ri.BlocksReplayed, ri.InodesRecovered, elapsed.Seconds())
		rep.metric(name+"/psegs", float64(ri.PsegsReplayed))
		rep.metric(name+"/recovery-s", elapsed.Seconds())
	}
	return rep, nil
}

// AblationReplication measures what the replicated tertiary tier costs
// and buys across libraries × replicas configurations (1×1 baseline,
// 2×2, 3×2): demand-fetch latency with every library healthy, fetch
// latency degraded onto surviving replicas after library 0 permanently
// fails, and the bytes a repair pass copies to restore the replication
// target on the remaining libraries.
func AblationReplication() (*Report, error) {
	rep := newReport("Ablation: replicated tertiary tier (libraries × replicas)")
	rep.addf("%-8s %13s %14s %12s %11s", "config", "fetch avg", "degraded avg", "repaired", "redirects")
	type cfg struct{ libs, replicas int }
	for _, c := range []cfg{{1, 1}, {2, 2}, {3, 2}} {
		const segBlocks = 32
		k := sim.NewKernel()
		bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
		disk := dev.NewDisk(k, dev.RZ57, 384*segBlocks, bus)
		jukes := make([]jukebox.Footprint, c.libs)
		for i := range jukes {
			jukes[i] = jukebox.MustNew(k, jukebox.MO6300, 2, 4, 40, segBlocks*lfs.BlockSize, bus)
		}
		var healthyMS, degradedMS float64
		var repairedBytes, redirects int64
		var err error
		k.RunProc(func(p *sim.Proc) {
			hl, e := core.New(p, core.Config{
				SegBlocks:   segBlocks,
				Disks:       []dev.BlockDev{disk},
				Jukeboxes:   jukes,
				CacheSegs:   8,
				MaxInodes:   1024,
				BufferBytes: 1 << 20,
				Replicas:    c.replicas,
			}, true)
			if e != nil {
				err = e
				return
			}
			const nfiles = 10
			const fblocks = 96
			var inums []uint32
			for i := 0; i < nfiles; i++ {
				f, e := hl.FS.Create(p, fmt.Sprintf("/rep%02d", i))
				if e != nil {
					err = e
					return
				}
				if _, e := f.WriteAt(p, make([]byte, fblocks*lfs.BlockSize), 0); e != nil {
					err = e
					return
				}
				inums = append(inums, f.Inum())
			}
			if _, e := hl.MigrateFiles(p, inums, false); e != nil {
				err = e
				return
			}
			if e := hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			// One full demand-fetch readback; returns ms per tertiary fetch.
			readAll := func() (float64, error) {
				for _, l := range hl.Cache.Lines() {
					if l.Staging || l.Pins > 0 {
						continue
					}
					if e := hl.Svc.Eject(l.Tag); e != nil {
						return 0, e
					}
				}
				f0 := hl.Svc.Stats().Fetches
				buf := make([]byte, segBlocks*lfs.BlockSize)
				start := p.Now()
				for _, in := range inums {
					f, e := hl.FS.OpenInum(p, in)
					if e != nil {
						return 0, e
					}
					hl.FS.DropFileBuffers(p, in)
					for off := int64(0); off < fblocks*lfs.BlockSize; off += int64(len(buf)) {
						if _, e := f.ReadAt(p, buf, off); e != nil && e != io.EOF {
							return 0, e
						}
					}
				}
				n := hl.Svc.Stats().Fetches - f0
				if n == 0 {
					return 0, nil
				}
				return (p.Now() - start).Seconds() * 1000 / float64(n), nil
			}
			if healthyMS, e = readAll(); e != nil {
				err = e
				return
			}
			if c.libs > 1 {
				hl.Libraries()[0].SetDown(true)
				if degradedMS, e = readAll(); e != nil {
					err = e
					return
				}
				if _, e := hl.RepairPass(p); e != nil {
					err = e
					return
				}
				repairedBytes = hl.Obs.Counter("repair.bytes_repaired").Value()
				redirects = hl.Svc.Stats().ReplicaRedirects
			}
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		name := fmt.Sprintf("%dx%d", c.libs, c.replicas)
		deg := "—"
		if c.libs > 1 {
			deg = fmt.Sprintf("%.1f ms", degradedMS)
		}
		rep.addf("%-8s %10.1f ms %14s %9.1f MB %11d", name, healthyMS, deg, float64(repairedBytes)/(1<<20), redirects)
		rep.metric(name+"/fetch-ms", healthyMS)
		rep.metric(name+"/degraded-ms", degradedMS)
		rep.metric(name+"/repaired-bytes", float64(repairedBytes))
		rep.metric(name+"/redirects", float64(redirects))
	}
	return rep, nil
}

// AblationBlockRange compares whole-file migration against block-range
// (sub-file) migration (§5.2) on the database workload: a large relation
// whose newest 10% stays hot. Quality metric: hot-query latency after
// migration.
func AblationBlockRange() (*Report, error) {
	rep := newReport("Ablation: whole-file vs block-range migration (§5.2)")
	rep.addf("%-14s %14s %12s %14s", "granularity", "hot query avg", "fetches", "bytes staged")
	for _, whole := range []bool{true, false} {
		k, hl := ablationRig(cache.LRU, false)
		var avgMS float64
		var fetches, staged int64
		var err error
		k.RunProc(func(p *sim.Proc) {
			tracker := migrate.NewRangeTracker(k)
			hl.FS.OnAccess = tracker.Hook
			rel, e := hl.FS.Create(p, "/relation")
			if e != nil {
				err = e
				return
			}
			const pages = 2048
			page := make([]byte, lfs.BlockSize)
			for i := 0; i < pages; i++ {
				if _, e := rel.WriteAt(p, page, int64(i)*lfs.BlockSize); e != nil {
					err = e
					return
				}
			}
			if e := hl.FS.Sync(p); e != nil {
				err = e
				return
			}
			p.Sleep(time.Hour)
			hot := pages * 9 / 10
			rng := sim.NewRNG(5)
			for q := 0; q < 300; q++ {
				pg := hot + rng.Intn(pages-hot)
				if _, e := rel.ReadAt(p, page, int64(pg)*lfs.BlockSize); e != nil && e != io.EOF {
					err = e
					return
				}
			}
			if whole {
				staged, e = hl.MigrateFiles(p, []uint32{rel.Inum()}, false)
			} else {
				br := &migrate.BlockRange{Tracker: tracker, MinAge: 30 * time.Minute}
				var cold []lfs.BlockRef
				cold, e = br.ColdRefs(p, hl, rel.Inum())
				if e == nil {
					staged, e = hl.MigrateRefs(p, cold)
				}
			}
			if e != nil {
				err = e
				return
			}
			if e := hl.CompleteMigration(p); e != nil {
				err = e
				return
			}
			if e := hl.FS.FlushCaches(p); e != nil {
				err = e
				return
			}
			for _, l := range hl.Cache.Lines() {
				if e := hl.Svc.Eject(l.Tag); e != nil {
					err = e
					return
				}
			}
			start := p.Now()
			const queries = 100
			for q := 0; q < queries; q++ {
				pg := hot + rng.Intn(pages-hot)
				if _, e := rel.ReadAt(p, page, int64(pg)*lfs.BlockSize); e != nil && e != io.EOF {
					err = e
					return
				}
			}
			avgMS = (p.Now() - start).Seconds() / queries * 1000
			fetches = hl.Svc.Stats().Fetches
		})
		k.Stop()
		if err != nil {
			return rep, err
		}
		name := "block-range"
		if whole {
			name = "whole-file"
		}
		rep.addf("%-14s %11.1f ms %12d %11.1f MB", name, avgMS, fetches, float64(staged)/(1<<20))
		rep.metric(name+"/hotquery-ms", avgMS)
		rep.metric(name+"/fetches", float64(fetches))
	}
	return rep, nil
}

// diskScalingResult is one cell of the AblationDiskScaling matrix.
type diskScalingResult struct {
	stageS   float64 // staging phase (disk-bound): gather + staging writes
	drainS   float64 // copy-out drain (jukebox-bound)
	stagedMB float64
}

// runDiskScaling migrates a fixed multi-file workload on an nd-spindle
// striped farm with the given number of tertiary I/O streams. Copy-outs
// are delayed so the two pipeline phases are separately timeable: the
// staging phase exercises the farm (chunked gather reads and staging
// writes stripe over all arms), the drain phase exercises the concurrent
// I/O streams against the two-drive jukebox.
func runDiskScaling(nd, streams int, parity bool) (diskScalingResult, error) {
	const (
		segBlocks  = 128           // 512 KB segments: region-switch seeks amortize
		perDisk    = 96            // segments per spindle
		nfiles     = 12            // 12 MB staged: the two initial media loads amortize
		fileBlocks = 2 * segBlocks // 1 MB per file
	)
	k := sim.NewKernel()
	var farm []dev.BlockDev
	for i := 0; i < nd; i++ {
		// Private channels: the shared SCSI bus would cap the farm at
		// about two spindles' worth of bandwidth.
		farm = append(farm, dev.NewDisk(k, dev.RZ57, int64(perDisk*segBlocks), nil))
	}
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 24, segBlocks*lfs.BlockSize, nil)
	// The paper's single-writer policy reserves drive 0 for the active
	// writing volume; a parallel drain needs every drive writable (each
	// keeps one volume of the allocation stripe loaded). Released in all
	// cells so stream count is the only variable.
	juke.WriteDrive = -1
	unit := 0
	if nd > 1 {
		unit = 8 // 32 KB stripe unit
	}
	var res diskScalingResult
	var err error
	k.RunProc(func(p *sim.Proc) {
		hl, e := core.New(p, core.Config{
			SegBlocks:  segBlocks,
			Disks:      farm,
			StripeUnit: unit,
			Parity:     parity,
			Streams:    streams,
			// Two-volume allocation stripe (every cell, so single-stream
			// baselines pay the same placement): consecutive staged
			// segments land on different cartridges and the changer's two
			// drives each keep one loaded — concurrent streams then write
			// both drives with no volume contention and no swaps.
			VolStripe:   2,
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   32,
			MaxInodes:   256,
			BufferBytes: 1 << 20,
			// Disk-bound on purpose: no CPU copy costs, and gather reads
			// chunked at a full segment so they stripe over every arm.
			GatherChunkBlocks: segBlocks,
		}, true)
		if e != nil {
			err = e
			return
		}
		var inums []uint32
		data := make([]byte, fileBlocks*lfs.BlockSize)
		for i := 0; i < nfiles; i++ {
			f, e := hl.FS.Create(p, fmt.Sprintf("/f%d", i))
			if e != nil {
				err = e
				return
			}
			if _, e := f.WriteAt(p, data, 0); e != nil {
				err = e
				return
			}
			inums = append(inums, f.Inum())
		}
		if e := hl.FS.Sync(p); e != nil {
			err = e
			return
		}
		hl.DelayCopyouts = true
		start := p.Now()
		staged, e := hl.MigrateFiles(p, inums, false)
		if e != nil {
			err = e
			return
		}
		tStage := p.Now()
		hl.FlushCopyouts(p)
		if e := hl.CompleteMigration(p); e != nil {
			err = e
			return
		}
		res = diskScalingResult{
			stageS:   (tStage - start).Seconds(),
			drainS:   (p.Now() - tStage).Seconds(),
			stagedMB: float64(staged) / (1 << 20),
		}
	})
	k.Stop()
	return res, err
}

// AblationDiskScaling produces the 1→8 spindle × 1→4 stream scaling
// curves (ROADMAP item 2): staging throughput against farm size, drain
// throughput against concurrent tertiary I/O streams, and the rotating-
// parity overhead. The shape to expect follows the Dagenais RAID model:
// near-linear staging gains while transfers dominate, flattening as
// per-arm chunks shrink toward the stripe unit; drain gains capped by the
// jukebox's two drives.
func AblationDiskScaling() (*Report, error) {
	rep := newReport("Ablation: disk-farm scaling (32 KB stripe unit, 12 MB migration)")
	rep.addf("%-16s %8s %10s %10s %10s", "config", "disks", "stage KB/s", "drain KB/s", "overall KB/s")
	type cell struct {
		name   string
		nd, st int
		parity bool
	}
	cells := []cell{
		{"d1_s1", 1, 1, false},
		{"d2_s1", 2, 1, false},
		{"d4_s1", 4, 1, false},
		{"d8_s1", 8, 1, false},
		{"d4_s2", 4, 2, false},
		{"d4_s4", 4, 4, false},
		{"d8_s2", 8, 2, false},
		{"d8_s4", 8, 4, false},
		{"d4_s2_parity", 4, 2, true},
		{"d8_s2_parity", 8, 2, true},
	}
	got := map[string]diskScalingResult{}
	for _, c := range cells {
		r, err := runDiskScaling(c.nd, c.st, c.parity)
		if err != nil {
			return rep, fmt.Errorf("disk scaling %s: %w", c.name, err)
		}
		got[c.name] = r
		kbs := func(mb, s float64) float64 {
			if s <= 0 {
				return 0
			}
			return mb * 1024 / s
		}
		stage := kbs(r.stagedMB, r.stageS)
		drain := kbs(r.stagedMB, r.drainS)
		overall := kbs(r.stagedMB, r.stageS+r.drainS)
		rep.addf("%-16s %8d %10.0f %10.0f %10.0f", c.name, c.nd, stage, drain, overall)
		rep.metric(c.name+"/stage_KBs", stage)
		rep.metric(c.name+"/drain_KBs", drain)
		rep.metric(c.name+"/overall_KBs", overall)
	}
	// Headline curve points, in the shape bench-check gates on.
	rep.metric("speedup_d4_vs_d1/stage", got["d1_s1"].stageS/got["d4_s1"].stageS)
	rep.metric("speedup_d8_vs_d1/stage", got["d1_s1"].stageS/got["d8_s1"].stageS)
	rep.metric("speedup_s2_vs_s1_d4/drain", got["d4_s1"].drainS/got["d4_s2"].drainS)
	rep.metric("parity_overhead_d4/stage_pct",
		100*(got["d4_s2_parity"].stageS-got["d4_s2"].stageS)/got["d4_s2"].stageS)
	rep.addf("")
	rep.addf("stage speedup: 4 disks %.2fx, 8 disks %.2fx over 1; drain speedup 2 streams %.2fx over 1 (4 disks); parity stage overhead %.0f%%",
		got["d1_s1"].stageS/got["d4_s1"].stageS,
		got["d1_s1"].stageS/got["d8_s1"].stageS,
		got["d4_s1"].drainS/got["d4_s2"].drainS,
		100*(got["d4_s2_parity"].stageS-got["d4_s2"].stageS)/got["d4_s2"].stageS)
	return rep, nil
}
