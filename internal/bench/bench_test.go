package bench

import (
	"strings"
	"testing"
)

// The quick-scale tests assert the paper's qualitative shape: who wins,
// and by roughly what factor. Absolute numbers are checked at full scale
// by the repository-level benchmarks and recorded in EXPERIMENTS.md.

func TestTable2QuickShape(t *testing.T) {
	rep, err := Table2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// LFS random writes beat FFS random writes (log vs in-place).
	if m["Base LFS/random write/KBs"] <= m["FFS/random write/KBs"] {
		t.Errorf("LFS random write (%.0f) should beat FFS (%.0f)",
			m["Base LFS/random write/KBs"], m["FFS/random write/KBs"])
	}
	// HighLight on-disk is within ~20%% of base LFS on sequential reads.
	lr, hr := m["Base LFS/sequential read/KBs"], m["HighLight on-disk/sequential read/KBs"]
	if hr < 0.8*lr {
		t.Errorf("HighLight on-disk sequential read %.0f too far below base LFS %.0f", hr, lr)
	}
	// In-cache is close to on-disk (cached tertiary segments are disk
	// resident).
	ic := m["HighLight in-cache/sequential read/KBs"]
	if ic < 0.7*hr {
		t.Errorf("in-cache sequential read %.0f too far below on-disk %.0f", ic, hr)
	}
	// Random reads are far slower than sequential reads everywhere.
	if m["FFS/random read/KBs"] >= m["FFS/sequential read/KBs"] {
		t.Error("FFS random read should be slower than sequential read")
	}
}

func TestTable3QuickShape(t *testing.T) {
	rep, err := Table3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Uncached first byte costs a tertiary fetch: much slower than
	// cached/FFS first byte.
	if m["HighLight uncached/10KB/first"] < 5*m["HighLight in-cache/10KB/first"] {
		t.Errorf("uncached first byte (%.2fs) should dwarf in-cache (%.2fs)",
			m["HighLight uncached/10KB/first"], m["HighLight in-cache/10KB/first"])
	}
	// FFS first byte is at least as fast as HighLight's (fewer metadata
	// fetches).
	if m["FFS/10KB/first"] > m["HighLight in-cache/10KB/first"]*1.6 {
		t.Errorf("FFS first byte (%.3fs) should not exceed HighLight in-cache (%.3fs) by much",
			m["FFS/10KB/first"], m["HighLight in-cache/10KB/first"])
	}
	// First-byte time is roughly size independent for uncached access.
	f10, f1m := m["HighLight uncached/10KB/first"], m["HighLight uncached/1MB/first"]
	if f1m > 3*f10 {
		t.Errorf("uncached first byte grows with size: %.2fs vs %.2fs", f10, f1m)
	}
}

func TestTable4QuickShape(t *testing.T) {
	rep, err := Table4(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Footprint write dominates; queuing is negligible (paper: 62/37/1).
	if m["footprint%"] <= m["ioread%"] {
		t.Errorf("footprint write %%%.1f should dominate I/O server read %%%.1f",
			m["footprint%"], m["ioread%"])
	}
	if m["queue%"] > 15 {
		t.Errorf("queuing %%%.1f should be small", m["queue%"])
	}
	total := m["footprint%"] + m["ioread%"] + m["queue%"]
	if total < 99.9 || total > 100.1 {
		t.Errorf("percentages sum to %.1f", total)
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	rep, err := Table5(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	within := func(name string, want, tolPct float64) {
		got := m[name]
		if got < want*(1-tolPct/100) || got > want*(1+tolPct/100) {
			t.Errorf("%s = %.1f, want %.1f +/- %.0f%%", name, got, want, tolPct)
		}
	}
	within("Raw MO read", 451, 5)
	within("Raw MO write", 204, 5)
	within("Raw RZ57 read", 1417, 4)
	within("Raw RZ57 write", 993, 4)
	within("Raw RZ58 read", 1491, 4)
	within("Raw RZ58 write", 1261, 4)
	within("Volume change", 13.5, 5)
}

func TestTable6QuickShape(t *testing.T) {
	rep, err := Table6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	// Contention phase is slower than the no-contention phase on the
	// single-spindle config (small tolerance: the quick scale has few
	// segments per phase).
	if m["RZ57/contention"] >= m["RZ57/nocontention"]*1.05 {
		t.Errorf("contention (%.0f) should be below no-contention (%.0f)",
			m["RZ57/contention"], m["RZ57/nocontention"])
	}
	// A second staging spindle improves (or at worst matches) the
	// contention phase — the paper measured ~15%% improvement.
	if m["RZ57+RZ58/contention"] < m["RZ57/contention"]*0.95 {
		t.Errorf("RZ58 staging (%.0f) should not be below single-spindle contention (%.0f)",
			m["RZ57+RZ58/contention"], m["RZ57/contention"])
	}
	// The slow HP-IB staging disk degrades throughput significantly.
	if m["RZ57+HP7958A/overall"] >= m["RZ57/overall"]*0.95 {
		t.Errorf("HP7958A staging (%.0f) should degrade overall throughput (vs %.0f)",
			m["RZ57+HP7958A/overall"], m["RZ57/overall"])
	}
}

func TestTable1Renders(t *testing.T) {
	rep := Table1()
	s := rep.String()
	for _, want := range []string{"ss_sumsum", "ss_next", "ss_nfinfo", "inode block"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}
