package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestSnapshotUnchangedByTelemetry pins the tentpole determinism
// guarantee for `hlbench -json`: the snapshot a run produces is
// byte-identical whether or not a telemetry server is attached and
// publishing — publication only reads.
func TestSnapshotUnchangedByTelemetry(t *testing.T) {
	encode := func(srv *telemetry.Server) []byte {
		snap, err := BuildSnapshotWith(QuickScale(), "quick", srv)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off := encode(nil)
	srv := telemetry.NewServer()
	on := encode(srv)
	if !bytes.Equal(off, on) {
		t.Fatal("snapshot bytes differ with telemetry on vs off")
	}
	// The attached run actually published a usable snapshot.
	sn := srv.Current()
	if sn == nil {
		t.Fatal("telemetry run never published")
	}
	if !strings.Contains(string(sn.Metrics), "hl_tertiary_fetches_total") {
		t.Fatalf("published metrics missing fetch counter:\n%s", sn.Metrics)
	}
}

// TestSnapshotHasQuantiles checks the hlbench/2 schema addition: the
// fetch-wait histogram's p50/p99/mean appear in the snapshot.
func TestSnapshotHasQuantiles(t *testing.T) {
	snap, err := BuildSnapshot(QuickScale(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != "hlbench/2" {
		t.Fatalf("schema = %q", snap.Schema)
	}
	q, ok := snap.Quantiles["tertiary.fetch_wait"]
	if !ok {
		t.Fatalf("no fetch-wait quantiles: %+v", snap.Quantiles)
	}
	for _, k := range []string{"p50_s", "p99_s", "mean_s"} {
		if q[k] <= 0 {
			t.Fatalf("quantile %s = %v, want > 0 (fetches waited)", k, q[k])
		}
	}
	if q["p50_s"] > q["p99_s"] {
		t.Fatalf("p50 %v > p99 %v", q["p50_s"], q["p99_s"])
	}
}

// TestServeMigrationPublishesAndIsDeterministic runs the -serve
// workload twice with a server attached: both runs publish, the final
// snapshots are byte-identical, and the exports carry heat-map and
// decision-audit content from every actor.
func TestServeMigrationPublishesAndIsDeterministic(t *testing.T) {
	run := func() *telemetry.Snapshot {
		srv := telemetry.NewServer()
		if err := ServeMigration(QuickScale(), srv, 2); err != nil {
			t.Fatal(err)
		}
		sn := srv.Current()
		if sn == nil {
			t.Fatal("serve workload never published")
		}
		return sn
	}
	a, b := run(), run()
	if !bytes.Equal(a.Metrics, b.Metrics) || !bytes.Equal(a.Heatmap, b.Heatmap) || !bytes.Equal(a.Decisions, b.Decisions) {
		t.Fatal("two serve runs published different snapshots")
	}
	// The /requests export is virtual-time-derived, so it is held to the
	// same bit-reproducibility bar. The kernel profile (a.Profile) is
	// wall-clock and deliberately NOT compared.
	if !bytes.Equal(a.Requests, b.Requests) {
		t.Fatal("two serve runs published different /requests documents")
	}
	r := string(a.Requests)
	for _, want := range []string{`"class": "interactive"`, `"kind": "queue-wait"`, `"breakdown_seconds"`} {
		if !strings.Contains(r, want) {
			t.Fatalf("served /requests missing %q:\n%s", want, r)
		}
	}
	if !strings.Contains(string(a.Profile), "hl_sim_events_per_sec") {
		t.Fatalf("served profile missing events/sec:\n%s", a.Profile)
	}
	m := string(a.Metrics)
	for _, want := range []string{"hl_segment_heat{seg=", "hl_tertiary_fetches_total", "hl_decisions_recorded_total"} {
		if !strings.Contains(m, want) {
			t.Fatalf("served metrics missing %q:\n%s", want, m)
		}
	}
	d := string(a.Decisions)
	for _, want := range []string{`"actor": "migrator"`, `"actor": "stage"`, `"actor": "tcleaner"`, `"verdict": "cleaned"`} {
		if !strings.Contains(d, want) {
			t.Fatalf("served decisions missing %q:\n%s", want, d)
		}
	}
	// The run with no server attached completes identically (error-free);
	// its virtual-time equivalence to the served run is covered by the
	// crash-digest pin in internal/crash.
	if err := ServeMigration(QuickScale(), nil, 2); err != nil {
		t.Fatal(err)
	}
}
