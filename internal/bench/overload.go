package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/telemetry"
	"repro/internal/wl"
)

// Overload study: offered load versus goodput through the admission-
// controlled front end. The rig is deliberately fetch-bound (a segment
// cache half the size of the migrated working set, a small file-system
// buffer) so request service time is dominated by tertiary demand
// fetches and the two workers saturate at a measurable capacity; load
// multiples are then applied by scaling the client population.

// OverloadSpec parameterizes one closed-loop overload run (the hlbench
// -clients/-arrival/-deadline entry point and the ablation cells).
// Clients defaults to overloadBaseClients x Load: in a closed-loop system
// offered load scales with concurrency, not think time — N clients can
// never have more than N requests outstanding, so doubling the arrival
// rate of a fixed population just makes them wait, while doubling the
// population actually doubles the pressure on the admission queue.
type OverloadSpec struct {
	Clients  int
	Requests int // per client
	Arrival  wl.Arrival
	Deadline sim.Time
	Load     float64 // offered-load multiple of the 1x base concurrency
	// DisableTracing turns the per-request tracer off — the control arm
	// of the ablation proving tracing never moves a metric.
	DisableTracing bool
}

// OverloadResult is one measured cell of the overload study.
type OverloadResult struct {
	Stats    wl.ClientStats
	Svc      svc.Stats
	ShedRate float64 // sheds / distinct requests
	P99ms    float64 // interactive admission-to-completion p99

	TracedRequests int64  // traces sealed (0 with tracing disabled)
	StagesRecorded int64  // stages across all sealed traces
	TraceErrs      int64  // retained traces violating the sum invariant
	RequestsJSON   []byte // telemetry.RenderRequests at end of run
}

// overloadBaseClients x overloadBaseGap set the 1x operating point: four
// clients with 1.2 s think time keep the two fetch-bound workers busy
// without queueing; each doubling of the population pushes the admission
// queue (capacity 4) deeper until it sheds.
const (
	overloadBaseClients = 4
	overloadBaseGap     = 1200 * sim.Time(1e6)
)

func (spec *OverloadSpec) fill() {
	if spec.Load <= 0 {
		spec.Load = 1
	}
	if spec.Clients <= 0 {
		spec.Clients = int(float64(overloadBaseClients)*spec.Load + 0.5)
		if spec.Clients < 1 {
			spec.Clients = 1
		}
	}
	if spec.Requests <= 0 {
		spec.Requests = 25
	}
	if spec.Deadline <= 0 {
		spec.Deadline = 5 * sim.Time(1e9)
	}
}

// RunOverload executes one overload cell on a fresh rig.
func RunOverload(spec OverloadSpec) (OverloadResult, error) {
	spec.fill()
	k := sim.NewKernel()
	var res OverloadResult
	var err error
	k.RunProc(func(p *sim.Proc) {
		res, err = runOverloadCell(p, k, spec)
	})
	k.Stop()
	return res, err
}

func runOverloadCell(p *sim.Proc, k *sim.Kernel, spec OverloadSpec) (OverloadResult, error) {
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 32, 64*lfs.BlockSize, nil)
	hl, err := core.New(p, core.Config{
		SegBlocks:   64,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   4, // half the migrated working set: reads stay fetch-bound
		MaxInodes:   256,
		BufferBytes: 32 * lfs.BlockSize,
	}, true)
	if err != nil {
		return OverloadResult{}, err
	}
	fe := svc.New(hl, svc.Config{
		Workers: 2, ReservedInteractive: 1,
		InteractiveQueue: 4, BackgroundQueue: 4,
		DisableTracing: spec.DisableTracing,
	})

	// Working set: 20 files across ~8 tertiary segments, fully migrated
	// and ejected so reads demand-fetch through the cache.
	var paths []string
	var inums []uint32
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/f%02d", i)
		f, e := hl.FS.Create(p, path)
		if e != nil {
			return OverloadResult{}, e
		}
		data := make([]byte, 24*lfs.BlockSize)
		for j := range data {
			data[j] = byte(i*31 + j)
		}
		if _, e := f.WriteAt(p, data, 0); e != nil {
			return OverloadResult{}, e
		}
		paths = append(paths, path)
		inums = append(inums, f.Inum())
	}
	if e := hl.FS.Sync(p); e != nil {
		return OverloadResult{}, e
	}
	if _, e := hl.MigrateFiles(p, inums, false); e != nil {
		return OverloadResult{}, e
	}
	if e := hl.CompleteMigration(p); e != nil {
		return OverloadResult{}, e
	}
	for _, l := range hl.Cache.Lines() {
		if !l.Staging && l.Pins == 0 {
			if e := hl.Svc.Eject(l.Tag); e != nil {
				return OverloadResult{}, e
			}
		}
	}

	cs, err := wl.RunClients(p, fe, hl, paths, wl.ClientSpec{
		Clients:           spec.Clients,
		RequestsPerClient: spec.Requests,
		Arrival:           spec.Arrival,
		MeanGap:           overloadBaseGap,
		Deadline:          spec.Deadline,
		ReadBlocks:        2,
		Seed:              20260808,
	})
	if err != nil {
		return OverloadResult{}, err
	}
	st := fe.Stats()
	distinct := cs.Submitted - cs.Retries
	res := OverloadResult{Stats: cs, Svc: st}
	if distinct > 0 {
		res.ShedRate = float64(cs.Shed) / float64(distinct)
	}
	res.P99ms = float64(st.P99Interactive.Milliseconds())
	if fe.Tracer != nil {
		_, res.TracedRequests, res.StagesRecorded = fe.Tracer.Counts()
		res.RequestsJSON = telemetry.RenderRequests(fe.Tracer, p.Now())
		// Property-check every retained trace: stages sealed, breakdown
		// summing exactly to the end-to-end latency.
		for _, tr := range fe.Tracer.Recent() {
			if tr.Validate() != nil {
				res.TraceErrs++
			}
		}
		for _, c := range fe.Tracer.Classes() {
			for _, tr := range fe.Tracer.Slowest(c, 1<<30) {
				if tr.Validate() != nil {
					res.TraceErrs++
				}
			}
		}
	}
	return res, nil
}

// AblationOverload sweeps offered load at 0.5x/1x/2x/4x the base rate and
// reports goodput, shed rate, and interactive p99 — the graceful-
// degradation curve: goodput holds near capacity while the excess is shed
// explicitly (ErrOverload) or expired at its deadline, and p99 stays
// bounded by the deadline instead of growing with the queue.
func AblationOverload() (*Report, error) {
	rep := newReport("Ablation: offered load vs goodput through the front end (closed-loop poisson clients, 5 s deadline)")
	rep.addf("%-6s %10s %10s %10s %10s %10s", "load", "goodput", "shed rate", "p99 ms", "completed", "shed")
	for _, load := range []float64{0.5, 1, 2, 4} {
		res, err := RunOverload(OverloadSpec{Arrival: wl.ArrivalPoisson, Load: load})
		if err != nil {
			return rep, fmt.Errorf("overload x%g: %w", load, err)
		}
		name := fmt.Sprintf("x%g", load)
		rep.addf("%-6s %10.3f %10.3f %10.0f %10d %10d",
			name, res.Stats.Goodput(), res.ShedRate, res.P99ms, res.Stats.Completed, res.Stats.Shed)
		rep.metric(name+"/goodput", res.Stats.Goodput())
		rep.metric(name+"/shed_rate", res.ShedRate)
		rep.metric(name+"/p99_ms", res.P99ms)
	}
	return rep, nil
}

// OverloadReport runs one cell with the given spec and formats it — the
// hlbench -clients/-arrival/-deadline entry point.
func OverloadReport(spec OverloadSpec) (*Report, error) {
	explicit := spec.Clients > 0
	spec.fill()
	res, err := RunOverload(spec)
	if err != nil {
		return nil, err
	}
	// The load multiple only means something when it derived the
	// population; an explicit -clients count speaks for itself.
	head := fmt.Sprintf("Overload run: %d %s clients, %s deadline",
		spec.Clients, spec.Arrival, spec.Deadline)
	if !explicit {
		head = fmt.Sprintf("Overload run: %d %s clients (x%g load), %s deadline",
			spec.Clients, spec.Arrival, spec.Load, spec.Deadline)
	}
	rep := newReport(head)
	rep.addf("submitted %d (retries %d)  completed %d  shed %d  expired %d  failed %d",
		res.Stats.Submitted, res.Stats.Retries, res.Stats.Completed,
		res.Stats.Shed, res.Stats.Expired, res.Stats.Failed)
	rep.addf("goodput %.3f  shed rate %.3f  interactive p50 %v p99 %v  deadline misses %d",
		res.Stats.Goodput(), res.ShedRate,
		res.Svc.P50Interactive, res.Svc.P99Interactive, res.Svc.DeadlineMisses)
	rep.metric("goodput", res.Stats.Goodput())
	rep.metric("shed_rate", res.ShedRate)
	rep.metric("p99_ms", res.P99ms)
	return rep, nil
}
