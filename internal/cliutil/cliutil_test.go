package cliutil

import (
	"errors"
	"testing"
)

func TestValidateFarm(t *testing.T) {
	cases := []struct {
		spindles, stripe int
		parity           bool
		ok               bool
	}{
		{1, 0, false, true},   // single disk
		{4, 16, false, true},  // striped farm
		{4, 0, false, true},   // concatenated farm
		{3, 16, true, true},   // minimal parity geometry
		{1, 16, false, false}, // striping one spindle
		{2, 16, true, false},  // parity needs 3 spindles
		{3, 0, true, false},   // parity needs a stripe
		{-1, 0, false, false},
		{2, -4, false, false},
	}
	for _, c := range cases {
		err := ValidateFarm(c.spindles, c.stripe, c.parity)
		if (err == nil) != c.ok {
			t.Errorf("ValidateFarm(%d, %d, %v) = %v, want ok=%v", c.spindles, c.stripe, c.parity, err, c.ok)
		}
		if err != nil {
			var ue *UsageError
			if !errors.As(err, &ue) {
				t.Errorf("ValidateFarm(%d, %d, %v): error not a *UsageError: %v", c.spindles, c.stripe, c.parity, err)
			}
		}
	}
}

func TestValidateTertiary(t *testing.T) {
	cases := []struct {
		libraries, replicas int
		ok                  bool
	}{
		{1, 0, true},
		{0, 1, true}, // zero means "one library", one copy
		{2, 2, true},
		{3, 2, true},
		{1, 2, false}, // more copies than libraries
		{2, 3, false},
		{-1, 0, false},
		{1, -1, false},
	}
	for _, c := range cases {
		err := ValidateTertiary(c.libraries, c.replicas)
		if (err == nil) != c.ok {
			t.Errorf("ValidateTertiary(%d, %d) = %v, want ok=%v", c.libraries, c.replicas, err, c.ok)
		}
	}
}
