// Package cliutil holds shared command-line helpers for the hl* tools:
// a typed usage error and up-front validation of flag combinations no
// rig can satisfy, so a bad invocation fails with one clear message
// instead of a mid-run panic or a silently degenerate configuration.
package cliutil

import "fmt"

// UsageError marks an invalid flag combination. CLIs print it and exit
// with the usage status (2) instead of treating it as a runtime failure.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a UsageError.
func Usagef(format string, args ...interface{}) *UsageError {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ValidateFarm checks the disk-farm flags: striping needs at least two
// spindles to interleave, and rotating parity needs a stripe geometry
// plus at least three spindles (two data + one parity per row).
func ValidateFarm(spindles, stripeUnit int, parity bool) error {
	if spindles < 0 {
		return Usagef("-spindles %d: must be >= 0", spindles)
	}
	if stripeUnit < 0 {
		return Usagef("-stripe %d: must be >= 0", stripeUnit)
	}
	if stripeUnit > 0 && spindles < 2 {
		return Usagef("-stripe %d needs at least 2 spindles (have %d)", stripeUnit, spindles)
	}
	if parity && stripeUnit <= 0 {
		return Usagef("-parity needs -stripe (a stripe geometry to rotate parity over)")
	}
	if parity && spindles < 3 {
		return Usagef("-parity needs at least 3 spindles (have %d): two data plus one parity per row", spindles)
	}
	return nil
}

// ValidateTertiary checks the replicated-tier flags: each staged
// segment's copies land in distinct libraries, so asking for more
// replicas than libraries cannot be satisfied.
func ValidateTertiary(libraries, replicas int) error {
	if libraries < 0 {
		return Usagef("-libraries %d: must be >= 0", libraries)
	}
	if replicas < 0 {
		return Usagef("-replicas %d: must be >= 0", replicas)
	}
	nlibs := libraries
	if nlibs < 1 {
		nlibs = 1
	}
	if replicas > nlibs {
		return Usagef("-replicas %d exceeds -libraries %d: each replica needs its own library", replicas, nlibs)
	}
	return nil
}
