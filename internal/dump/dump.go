// Package dump renders the paper's figures from a live HighLight instance:
// the LFS on-disk layout with segment states and log contents (Figures 1
// and 3), the block address allocation (Figure 4), the storage hierarchy
// data flow (Figure 2), and the layered demand-fetch path (Figure 5).
package dump

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// ejectAll evicts every cache line (Lines() is tag-ordered, so the
// free-list reuse order — visible in the dumps — is reproducible).
func ejectAll(hl *core.HighLight) error {
	for _, l := range hl.Cache.Lines() {
		if err := hl.Svc.Eject(l.Tag); err != nil {
			return err
		}
	}
	return nil
}

// segStateLetters renders a segment's state in the paper's key:
// d = dirty, c = clean, a = active, C = cached (Figure 3).
func segStateLetters(su lfs.Seguse) string {
	var s []string
	if su.Flags&lfs.SegDirty != 0 {
		s = append(s, "d")
	}
	if su.Flags&lfs.SegActive != 0 {
		s = append(s, "a")
	}
	if su.Flags&lfs.SegCached != 0 {
		s = append(s, "C")
	}
	if su.Flags&lfs.SegStaging != 0 {
		s = append(s, "S")
	}
	if su.Flags&lfs.SegNoStore != 0 {
		s = append(s, "-")
	}
	if len(s) == 0 {
		s = append(s, "c")
	}
	return strings.Join(s, ",")
}

// Layout prints the on-media data layout: per-segment states, live bytes,
// cache bindings, and (for dirty segments) the partial-segment log
// contents — the textual rendering of Figures 1 and 3. maxSegs bounds the
// per-segment detail (0 = all).
func Layout(p *sim.Proc, w io.Writer, hl *core.HighLight, maxSegs int) error {
	fs := hl.FS
	fmt.Fprintf(w, "LFS data layout (Figures 1 & 3)  [state key: c=clean d=dirty a=active C=cached S=staging]\n")
	fmt.Fprintf(w, "disk segments (%d total, %d reserved boot area, %d-block segments):\n",
		hl.Amap.DiskSegs(), fs.ReservedSegs(), hl.Amap.SegBlocks())
	shown := 0
	for s := 0; s < hl.Amap.DiskSegs(); s++ {
		su := fs.SegUsage(addr.SegNo(s))
		if su.Flags == 0 && su.LiveBytes == 0 {
			continue // clean and never used: skip for brevity
		}
		if maxSegs > 0 && shown >= maxSegs {
			fmt.Fprintf(w, "  ... (%d more segments)\n", hl.Amap.DiskSegs()-s)
			break
		}
		shown++
		tag := ""
		if su.Flags&lfs.SegCached != 0 {
			if su.CacheTag == lfs.NilCacheTag {
				tag = " cache-line: free"
			} else {
				tag = fmt.Sprintf(" cache-line for tertiary seg %d", su.CacheTag)
			}
		}
		fmt.Fprintf(w, "  seg %4d [%-3s] live %7d B%s\n", s, segStateLetters(su), su.LiveBytes, tag)
		if su.Flags&lfs.SegDirty != 0 && su.Flags&lfs.SegCached == 0 {
			sc, err := fs.ReadSegment(p, addr.SegNo(s))
			if err != nil {
				continue
			}
			for i, sum := range sc.Psegs {
				kind := "pseg"
				if sum.Flags&lfs.SumCheckpoint != 0 {
					kind = "pseg (checkpoint)"
				}
				fmt.Fprintf(w, "    %s @%d: %d blocks, next seg %d, %d files, %d inode blocks\n",
					kind, sc.Offsets[i], sum.NBlocks, sum.Next, len(sum.Finfos), len(sum.InoAddrs))
				for _, fi := range sum.Finfos {
					fmt.Fprintf(w, "      file inum %d v%d: lbns %s\n", fi.Inum, fi.Version, lbnList(fi.Lbns))
				}
			}
		}
	}
	// Tertiary side (Figure 3's lower half).
	fmt.Fprintf(w, "tertiary segments (tsegfile, %d entries):\n", fs.TsegCount())
	for idx := 0; idx < fs.TsegCount(); idx++ {
		su := fs.TsegUsage(idx)
		if su.Flags == 0 && su.LiveBytes == 0 {
			continue
		}
		seg := hl.Amap.SegForIndex(idx)
		d, v, vs, _ := hl.Amap.Loc(seg)
		cached := ""
		if l, ok := hl.Cache.Peek(idx); ok {
			cached = fmt.Sprintf("  [cached in disk seg %d]", l.DiskSeg)
		}
		fmt.Fprintf(w, "  tseg %4d (dev %d vol %d seg %d) [%-3s] live %7d B%s\n",
			idx, d, v, vs, segStateLetters(su), su.LiveBytes, cached)
	}
	return nil
}

func lbnList(lbns []int32) string {
	if len(lbns) == 0 {
		return "-"
	}
	// Compress runs: "0-14,-1".
	var parts []string
	start := lbns[0]
	prev := lbns[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, l := range lbns[1:] {
		if l == prev+1 {
			prev = l
			continue
		}
		flush()
		start, prev = l, l
	}
	flush()
	return strings.Join(parts, ",")
}

// AddrMap prints the block address allocation (Figure 4).
func AddrMap(w io.Writer, hl *core.HighLight) {
	fmt.Fprintln(w, "Block address allocation (Figure 4)")
	fmt.Fprint(w, hl.Amap.Describe())
}

// Hierarchy narrates the storage hierarchy data flow of Figure 2 by
// driving a file through it: initial write to the disk farm, automatic
// migration to the jukebox, ejection, and a demand fetch back into the
// cache.
func Hierarchy(p *sim.Proc, w io.Writer, hl *core.HighLight) error {
	fmt.Fprintln(w, "Storage hierarchy data flow (Figure 2)")
	report := func(stage string) {
		st := hl.Svc.Stats()
		fmt.Fprintf(w, "  [%s] t=%.2fs  cache lines=%d/%d  fetches=%d  copyouts=%d\n",
			stage, p.Now().Seconds(), hl.Cache.Len(), hl.Cache.Capacity(), st.Fetches, st.Copyouts)
	}
	f, err := hl.FS.Create(p, "/figure2-demo")
	if err != nil {
		return err
	}
	data := make([]byte, 6*hl.Amap.SegBlocks()*lfs.BlockSize/4)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		return err
	}
	if err := hl.FS.Sync(p); err != nil {
		return err
	}
	fmt.Fprintln(w, "  reads; initial writes  -> disk farm (log tail)")
	report("written to disk farm")
	if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
		return err
	}
	if err := hl.CompleteMigration(p); err != nil {
		return err
	}
	fmt.Fprintln(w, "  automigration          -> staging segments copied to tertiary jukebox")
	report("migrated to tertiary")
	hl.FS.DropFileBuffers(p, f.Inum())
	if err := ejectAll(hl); err != nil {
		return err
	}
	report("cache ejected")
	buf := make([]byte, 8192)
	if _, err := f.ReadAt(p, buf, 0); err != nil {
		return err
	}
	fmt.Fprintln(w, "  caching                <- demand fetch: containing segment cached on disk, read served")
	report("demand fetched")
	return nil
}

// Faults renders the fault-visibility report: per-device counters of
// injected (Fault-hook) errors and drive failovers, the recovery
// counters of the tertiary service, and the retired-segment tally.
func Faults(w io.Writer, hl *core.HighLight) {
	fmt.Fprintln(w, "Fault injection & recovery")
	devs := hl.Svc.DeviceFaults()
	if len(devs) == 0 {
		fmt.Fprintln(w, "  (no instrumented devices)")
	}
	for _, d := range devs {
		fmt.Fprintf(w, "  device %-12s injected: %d read / %d write / %d load faults   failovers: %d\n",
			d.Name, d.ReadFaults, d.WriteFaults, d.LoadFaults, d.Failovers)
	}
	st := hl.Svc.Stats()
	fmt.Fprintf(w, "  recovery: %d transient retries, %d budgets exhausted, %d replica redirects\n",
		st.TransientRetries, st.RetriesExhausted, st.ReplicaRedirects)
	fmt.Fprintf(w, "  failures past recovery: %d fetches, %d copyouts (EOM retries: %d)\n",
		st.FetchFaults, st.CopyoutFaults, st.EOMRetries)
	fmt.Fprintf(w, "  retired tertiary segments (bad media, contents restaged): %d\n",
		hl.RetiredSegments())
}

// Recovery renders how the last mount recovered: the checkpoint it
// anchored on, the roll-forward extent and why replay stopped, namespace
// repair, the cache-directory rebuild, and tertiary retirement. All
// fields are zero after a fresh format.
func Recovery(w io.Writer, ri lfs.RecoveryInfo, ms core.MountStats, retired int64) {
	fmt.Fprintln(w, "Mount recovery report")
	fmt.Fprintf(w, "  checkpoint:    serial %d (table region %d), taken t=%.2fs, log head seg %d off %d\n",
		ri.CheckpointSerial, ri.Region, sim.Time(ri.CheckpointTime).Seconds(), ri.CheckpointSeg, ri.CheckpointOff)
	fmt.Fprintf(w, "  roll-forward:  %d psegs / %d blocks replayed, %d inode-map entries advanced\n",
		ri.PsegsReplayed, ri.BlocksReplayed, ri.InodesRecovered)
	fmt.Fprintf(w, "                 replay stopped at seg %d off %d: %s\n", ri.StopSeg, ri.StopOff, ri.StopReason)
	fmt.Fprintf(w, "  namespace:     %d dangling directory entries dropped\n", ri.DanglingDropped)
	fmt.Fprintf(w, "  cache rebuild: %d lines rebound from the usage table, %d staging copy-outs rescheduled,\n",
		ms.LinesRebound, ms.StagingRescheduled)
	fmt.Fprintf(w, "                 %d torn staging lines dropped, %d pool segments self-healed\n",
		ms.TornLinesDropped, ms.PoolSelfHealed)
	fmt.Fprintf(w, "  tertiary:      %d segments retired to no-store (contents restaged)\n", retired)
}

// DataPath narrates a demand fetch through the layered architecture of
// Figure 5: file system -> block map driver -> segment cache -> tertiary
// driver -> service process -> I/O server -> Footprint -> device.
func DataPath(p *sim.Proc, w io.Writer, hl *core.HighLight) error {
	fmt.Fprintln(w, "Layered architecture: demand-fetch request flow (Figure 5)")
	f, err := hl.FS.Create(p, "/figure5-demo")
	if err != nil {
		return err
	}
	data := make([]byte, hl.Amap.SegBlocks()*lfs.BlockSize/2)
	if _, err := f.WriteAt(p, data, 0); err != nil {
		return err
	}
	if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
		return err
	}
	if err := hl.CompleteMigration(p); err != nil {
		return err
	}
	hl.FS.DropFileBuffers(p, f.Inum())
	if err := ejectAll(hl); err != nil {
		return err
	}
	refs, err := hl.FS.FileBlockRefs(p, f.Inum())
	if err != nil || len(refs) == 0 {
		return fmt.Errorf("dump: no refs for demo file: %v", err)
	}
	tseg := hl.Amap.SegOf(refs[0].Addr)
	tag, _ := hl.Amap.TertIndex(tseg)
	d, v, vs, _ := hl.Amap.Loc(tseg)
	o := hl.Obs
	fpBefore, ioBefore := o.CatTotal("fp.read"), o.CatTotal("io.write")
	t0 := p.Now()
	buf := make([]byte, lfs.BlockSize)
	if _, err := f.ReadAt(p, buf, 0); err != nil {
		return err
	}
	fpRead := o.CatTotal("fp.read") - fpBefore
	ioWrite := o.CatTotal("io.write") - ioBefore
	line, _ := hl.Cache.Peek(tag)
	steps := []string{
		fmt.Sprintf("application:   read() on /figure5-demo (block addr %d)", refs[0].Addr),
		"HighLight FS:  inode -> block pointer is a tertiary address",
		fmt.Sprintf("block map:     segment %d is tertiary (index %d); cache miss", tseg, tag),
		"tertiary drv:  queue demand fetch, wake service process, sleep",
		fmt.Sprintf("service proc:  select reusable disk segment %d as cache line", line.DiskSeg),
		fmt.Sprintf("I/O server:    Footprint.ReadSegment(dev %d, vol %d, seg %d)  [%.2fs in Footprint]",
			d, v, vs, fpRead.Seconds()),
		fmt.Sprintf("I/O server:    write segment image to raw disk            [%.2fs writing cache line]",
			ioWrite.Seconds()),
		"service proc:  register cache line, call kernel to restart the I/O",
		fmt.Sprintf("block map:     re-dispatch to cached copy; request completes in %.2fs total", (p.Now() - t0).Seconds()),
	}
	for _, s := range steps {
		fmt.Fprintf(w, "  %s\n", s)
	}
	return nil
}
