package dump

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func demoHL(t *testing.T) (*sim.Kernel, *core.HighLight) {
	t.Helper()
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 128*16, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 16, 16*lfs.BlockSize, nil)
	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks: 16,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 12,
			MaxInodes: 128,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	return k, hl
}

func TestLayoutRendersStatesAndContents(t *testing.T) {
	k, hl := demoHL(t)
	var out bytes.Buffer
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/file")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 20*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if err := Layout(p, &out, hl, 0); err != nil {
			t.Fatal(err)
		}
	})
	s := out.String()
	for _, want := range []string{"disk segments", "tertiary segments", "cache-line for tertiary seg", "pseg", "file inum"} {
		if !strings.Contains(s, want) {
			t.Errorf("layout missing %q:\n%s", want, s)
		}
	}
	k.Stop()
}

func TestAddrMapRender(t *testing.T) {
	k, hl := demoHL(t)
	var out bytes.Buffer
	AddrMap(&out, hl)
	if !strings.Contains(out.String(), "dead zone") {
		t.Fatalf("addrmap output missing dead zone:\n%s", out.String())
	}
	k.Stop()
}

func TestHierarchyNarration(t *testing.T) {
	k, hl := demoHL(t)
	var out bytes.Buffer
	k.RunProc(func(p *sim.Proc) {
		if err := Hierarchy(p, &out, hl); err != nil {
			t.Fatal(err)
		}
	})
	s := out.String()
	for _, want := range []string{"disk farm", "automigration", "demand fetch", "fetches=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("hierarchy narration missing %q:\n%s", want, s)
		}
	}
	k.Stop()
}

func TestDataPathNarration(t *testing.T) {
	k, hl := demoHL(t)
	var out bytes.Buffer
	k.RunProc(func(p *sim.Proc) {
		if err := DataPath(p, &out, hl); err != nil {
			t.Fatal(err)
		}
	})
	s := out.String()
	for _, want := range []string{"block map", "service proc", "Footprint.ReadSegment", "restart the I/O"} {
		if !strings.Contains(s, want) {
			t.Errorf("datapath narration missing %q:\n%s", want, s)
		}
	}
	k.Stop()
}
