package dump

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// waterfallWidth is the bar width of the -request waterfall.
const waterfallWidth = 48

// Waterfall renders one traced request: its stage intervals as a
// time-aligned waterfall over [submit, end], followed by the
// critical-path breakdown whose per-stage durations sum exactly to the
// end-to-end latency (the invariant the trace layer guarantees).
func Waterfall(w io.Writer, t *reqtrace.Tracer, id int64) error {
	tr := t.Request(id)
	if tr == nil {
		return fmt.Errorf("dump: no retained trace for request %d (aged out or never completed)", id)
	}
	lat := tr.Latency()
	fmt.Fprintf(w, "Request %d (%s): submitted t=%.3fs, latency %v", tr.ID, tr.Class, tr.Submit.Seconds(), lat)
	if tr.Deadline > 0 {
		state := "met"
		if tr.End > tr.Deadline {
			state = "MISSED"
		}
		fmt.Fprintf(w, ", deadline t=%.3fs %s", tr.Deadline.Seconds(), state)
	}
	if tr.Err != "" {
		fmt.Fprintf(w, ", error: %s", tr.Err)
	}
	fmt.Fprintln(w)

	span := tr.End - tr.Submit
	pos := func(ts sim.Time) int {
		if span <= 0 {
			return 0
		}
		p := int(int64(ts-tr.Submit) * waterfallWidth / int64(span))
		if p < 0 {
			p = 0
		}
		if p > waterfallWidth {
			p = waterfallWidth
		}
		return p
	}
	for _, s := range tr.Stages {
		a, b := pos(s.Start), pos(s.End)
		bar := strings.Repeat(" ", a) + "|"
		if b > a {
			bar = strings.Repeat(" ", a) + strings.Repeat("=", b-a)
		}
		label := s.Kind.String()
		if s.Note != "" {
			label += " (" + s.Note + ")"
		}
		fmt.Fprintf(w, "  %-*s  %-34s %12v\n", waterfallWidth, bar, label, s.End-s.Start)
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "  (%d further stages dropped at the per-request cap)\n", tr.Dropped)
	}

	fmt.Fprintf(w, "critical path:\n")
	var sum sim.Time
	for k, d := range tr.Breakdown() {
		if d <= 0 {
			continue
		}
		sum += d
		pct := 0.0
		if lat > 0 {
			pct = 100 * float64(d) / float64(lat)
		}
		fmt.Fprintf(w, "  %-16s %12v  %5.1f%%\n", reqtrace.Kind(k).String(), d, pct)
	}
	fmt.Fprintf(w, "  %-16s %12v  (equals end-to-end latency: %v)\n", "sum", sum, lat == sum)
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("dump: request %d: %w", id, err)
	}
	return nil
}

// Slowest renders the per-class slowest-request exemplars with their
// dominant critical-path stages.
func Slowest(w io.Writer, t *reqtrace.Tracer, k int) {
	if k <= 0 {
		k = 5
	}
	started, sealed, stages := t.Counts()
	fmt.Fprintf(w, "Slowest requests (%d traced, %d completed, %d stages recorded):\n", started, sealed, stages)
	classes := t.Classes()
	if len(classes) == 0 {
		fmt.Fprintf(w, "  (no completed traced requests)\n")
		return
	}
	for _, c := range classes {
		fmt.Fprintf(w, "  class %s:\n", c)
		for _, tr := range t.Slowest(c, k) {
			// The two largest critical-path contributors tell the story.
			type kv struct {
				kind reqtrace.Kind
				d    sim.Time
			}
			var top []kv
			for kind, d := range tr.Breakdown() {
				if d > 0 {
					top = append(top, kv{reqtrace.Kind(kind), d})
				}
			}
			for i := 0; i < len(top); i++ {
				for j := i + 1; j < len(top); j++ {
					if top[j].d > top[i].d || (top[j].d == top[i].d && top[j].kind < top[i].kind) {
						top[i], top[j] = top[j], top[i]
					}
				}
			}
			if len(top) > 2 {
				top = top[:2]
			}
			var parts []string
			for _, e := range top {
				parts = append(parts, fmt.Sprintf("%s %v", e.kind, e.d))
			}
			status := "ok"
			if tr.Err != "" {
				status = "error"
			} else if tr.Deadline > 0 && tr.End > tr.Deadline {
				status = "deadline-miss"
			}
			fmt.Fprintf(w, "    #%-4d latency %12v  %-13s %s\n", tr.ID, tr.Latency(), status, strings.Join(parts, ", "))
		}
	}
}
