package dump

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// sec converts whole seconds to virtual time for the hand-built traces.
func sec(s int) sim.Time { return sim.Time(s) * sim.Time(time.Second) }

// buildTracer assembles one sealed jukebox-swap-shaped trace (id 1) and
// one cache-hit-shaped trace (id 2).
func buildTracer(t *testing.T) *reqtrace.Tracer {
	t.Helper()
	tc := reqtrace.New(0, 0)

	tr := tc.Start(1, "interactive", sec(0), sec(60))
	tr.Mark(reqtrace.KindAdmission, sec(0), "admitted")
	tr.Mark(reqtrace.KindCacheLookup, sec(1), "miss")
	fw := tr.StageStart(reqtrace.KindFetchWait, sec(1), "seg 0")
	mt := tr.StageStart(reqtrace.KindMediaTransfer, sec(1), "read vol 0 seg 0")
	sw := tr.StageStart(reqtrace.KindDriveSwap, sec(1), "vol 0 drive 1")
	tr.StageEnd(sw, sec(9))
	tr.StageEnd(mt, sec(10))
	tr.StageEnd(fw, sec(10))
	io := tr.StageStart(reqtrace.KindStripeIO, sec(10), "read 12 blk")
	tr.StageEnd(io, sec(12))
	tc.Seal(tr, sec(12), nil)

	tr2 := tc.Start(2, "interactive", sec(20), sec(80))
	tr2.Mark(reqtrace.KindAdmission, sec(20), "admitted")
	tr2.Mark(reqtrace.KindCacheLookup, sec(20), "hit")
	io2 := tr2.StageStart(reqtrace.KindStripeIO, sec(20), "read 12 blk")
	tr2.StageEnd(io2, sec(21))
	tc.Seal(tr2, sec(21), nil)
	return tc
}

func TestWaterfallSumsToLatency(t *testing.T) {
	tc := buildTracer(t)
	var out bytes.Buffer
	if err := Waterfall(&out, tc, 1); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Request 1 (interactive)", "deadline", "met",
		"drive-swap (vol 0 drive 1)", "media-transfer", "fetch-wait",
		"critical path:",
		"(equals end-to-end latency: true)",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := Waterfall(&out, tc, 2); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "cache-lookup (hit)") ||
		!strings.Contains(s, "(equals end-to-end latency: true)") {
		t.Fatalf("cache-hit waterfall wrong:\n%s", s)
	}

	if err := Waterfall(&out, tc, 99); err == nil {
		t.Fatal("want error for unretained request id")
	}
}

func TestSlowestRanksExemplars(t *testing.T) {
	tc := buildTracer(t)
	var out bytes.Buffer
	Slowest(&out, tc, 5)
	s := out.String()
	if !strings.Contains(s, "class interactive:") {
		t.Fatalf("missing class header:\n%s", s)
	}
	// The 12 s swap read must rank above the 1 s cache hit.
	if i1, i2 := strings.Index(s, "#1"), strings.Index(s, "#2"); i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("ranking wrong (#1 at %d, #2 at %d):\n%s", i1, i2, s)
	}
	if !strings.Contains(s, "drive-swap") {
		t.Fatalf("dominant stage missing:\n%s", s)
	}
}
