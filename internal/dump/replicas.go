package dump

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/lfs"
)

// Replicas prints the durability picture of the tertiary tier: the
// per-library capacity/health summary, the per-segment replica map
// (primary location plus every replica's location and reachability), and
// the under-replicated segment list the repair daemon is working from.
func Replicas(w io.Writer, hl *core.HighLight) {
	rf := hl.Replicas
	if rf < 1 {
		rf = 1
	}
	fmt.Fprintf(w, "Tertiary replication at t=%.3fs (replication factor %d)\n",
		hl.K.Now().Seconds(), rf)

	fmt.Fprintf(w, "libraries:\n")
	for _, st := range hl.LibraryStatuses() {
		health := "up"
		if st.Down {
			health = "DOWN"
		}
		fmt.Fprintf(w, "  lib %d %-14s %-4s  segs: %d total, %d used, %d free, %d reserved\n",
			st.ID, st.Name, health, st.TotalSegs, st.UsedSegs, st.FreeSegs, st.NoStoreSegs)
	}

	catalog := hl.ReplicaCatalog()
	primaries := make([]int, 0, len(catalog))
	for p := range catalog {
		primaries = append(primaries, p)
	}
	sort.Ints(primaries)
	if len(primaries) == 0 {
		fmt.Fprintf(w, "replica map: empty (no replicated segments)\n")
	} else {
		fmt.Fprintf(w, "replica map (%d replicated segments):\n", len(primaries))
		for _, p := range primaries {
			fmt.Fprintf(w, "  tseg %4d %s", p, locString(hl, p))
			for _, r := range catalog[p] {
				fmt.Fprintf(w, "  -> %d %s", r, locString(hl, r))
			}
			fmt.Fprintln(w)
		}
	}

	defs := hl.ReplicationDeficits()
	if len(defs) == 0 {
		fmt.Fprintf(w, "under-replicated: none\n")
		return
	}
	fmt.Fprintf(w, "under-replicated (%d segments):\n", len(defs))
	for _, d := range defs {
		fmt.Fprintf(w, "  tseg %4d: %d of %d copies reachable, %d repair source(s)\n",
			d.Tag, d.Copies, d.Target, len(d.Sources))
	}
}

// locString renders a tertiary index as "(dev d vol v seg s, up|down)".
func locString(hl *core.HighLight, idx int) string {
	d, v, vs, ok := hl.Amap.Loc(hl.Amap.SegForIndex(idx))
	if !ok {
		return "(unmapped)"
	}
	health := "up"
	if hl.Libraries()[d].Down() {
		health = "down"
	}
	state := "reserved"
	if hl.FS.TsegUsage(idx).Flags&lfs.SegDirty != 0 {
		state = "written"
	}
	return fmt.Sprintf("(dev %d vol %d seg %d, %s, %s)", d, v, vs, health, state)
}
