package dump

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/obs/attr"
)

// Why prints the policy story for one tertiary segment: its heat record
// (access counts, last touch, decayed heat) and the audited decision
// chain — every time the migrator, the staging mechanism, or the
// tertiary cleaner selected, skipped, staged, copied out, cleaned,
// restaged, or retired it, with the policy inputs each verdict saw.
func Why(w io.Writer, hl *core.HighLight, tag int) {
	now := hl.K.Now()
	fmt.Fprintf(w, "Segment %d at t=%.3fs\n", tag, now.Seconds())

	if rec, ok := hl.Heat.Seg(tag); ok {
		fmt.Fprintf(w, "  heat %.4g (half-life %.0fs)  last touch %.3fs\n",
			hl.Heat.Heat(tag, now), hl.Heat.HalfLife.Seconds(), rec.LastTouch.Seconds())
		fmt.Fprintf(w, "  hits %d  misses %d  fetches %d  stages %d  copyouts %d  evicts %d  cleans %d\n",
			rec.Hits, rec.Misses, rec.Fetches, rec.Stages, rec.Copyouts, rec.Evicts, rec.Cleans)
	} else {
		fmt.Fprintf(w, "  no heat record (segment never touched the cache or tertiary pipeline)\n")
	}

	chain := hl.Audit.ForSegment(tag)
	if len(chain) == 0 {
		fmt.Fprintf(w, "  no audited decisions for segment %d\n", tag)
	} else {
		fmt.Fprintf(w, "  decision chain (%d of %d audited decisions):\n", len(chain), hl.Audit.Total())
		for _, d := range chain {
			fmt.Fprintf(w, "    %s\n", d)
		}
	}

	// Orient the reader: which segments do carry audited verdicts.
	byTag := map[int]map[string]bool{}
	var order []int
	for _, d := range hl.Audit.All() {
		if d.Seg < 0 {
			continue
		}
		if byTag[d.Seg] == nil {
			byTag[d.Seg] = map[string]bool{}
			order = append(order, d.Seg)
		}
		byTag[d.Seg][d.Verdict] = true
	}
	if len(order) > 0 {
		fmt.Fprintf(w, "  audited segments:")
		for _, t := range order {
			vs := byTag[t]
			var verdicts []string
			for _, v := range []string{
				attr.VerdictSelected, attr.VerdictSkipped, attr.VerdictStaged,
				attr.VerdictCopiedOut, attr.VerdictCleaned, attr.VerdictRestaged,
				attr.VerdictRetired, attr.VerdictPlaced, attr.VerdictRouted,
				attr.VerdictRepaired, attr.VerdictDeferred, attr.VerdictLost,
			} {
				if vs[v] {
					verdicts = append(verdicts, v)
				}
			}
			fmt.Fprintf(w, " %d(%s)", t, strings.Join(verdicts, ","))
		}
		fmt.Fprintln(w)
	}
}
