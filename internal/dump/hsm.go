package dump

import (
	"fmt"
	"io"

	"repro/internal/hsm"
)

// HSM service-surface reports for `hldump -requests/-pins/-quotas`: the
// request ledger, the active pin set, and per-principal quota standing.

// HSMRequests renders the request ledger, ID order.
func HSMRequests(w io.Writer, s *hsm.Service) {
	reqs := s.Requests()
	fmt.Fprintf(w, "HSM requests (%d total, %d queued):\n", len(reqs), s.QueueDepth())
	if len(reqs) == 0 {
		fmt.Fprintln(w, "  (none)")
		return
	}
	fmt.Fprintf(w, "  %4s %-10s %-18s %-10s %-7s %10s %10s  %s\n",
		"id", "op", "path", "principal", "state", "t_sub", "t_fin", "bytes/err")
	for _, r := range reqs {
		tail := fmt.Sprintf("%d", r.Bytes)
		if r.Err != "" {
			tail = r.Err
		}
		fin := "-"
		if r.State == hsm.Done || r.State == hsm.Failed {
			fin = fmt.Sprintf("%.2fs", r.Finished.Seconds())
		}
		fmt.Fprintf(w, "  %4d %-10s %-18s %-10s %-7s %9.2fs %10s  %s\n",
			r.ID, r.Op, r.Path, r.Principal, r.State, r.Submitted.Seconds(), fin, tail)
	}
}

// HSMPins renders the active pins, path order.
func HSMPins(w io.Writer, s *hsm.Service) {
	pins := s.Pins()
	fmt.Fprintf(w, "HSM pins (%d active):\n", len(pins))
	if len(pins) == 0 {
		fmt.Fprintln(w, "  (none)")
		return
	}
	fmt.Fprintf(w, "  %-18s %-10s %6s %10s %9s  %s\n", "path", "principal", "inum", "bytes", "pinned", "segments")
	for _, pin := range pins {
		fmt.Fprintf(w, "  %-18s %-10s %6d %10d %8.2fs  %v\n",
			pin.Path, pin.Principal, pin.Inum, pin.Bytes, pin.PinnedAt.Seconds(), pin.Segs)
	}
}

// HSMQuotas renders every principal's quota standing: usage against the
// soft/hard staged limits and the pinned-bytes limit.
func HSMQuotas(w io.Writer, s *hsm.Service) {
	principals := s.Principals()
	fmt.Fprintf(w, "HSM quotas (%d principals):\n", len(principals))
	if len(principals) == 0 {
		fmt.Fprintln(w, "  (none)")
		return
	}
	lim := func(v int64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s %10s  %s\n",
		"principal", "staged", "soft", "hard", "pinned", "pin-hard", "standing")
	for _, pr := range principals {
		q := s.QuotaOf(pr)
		staged, pinned := s.UsageOf(pr)
		standing := "ok"
		if q.StagedSoft > 0 && staged > q.StagedSoft {
			standing = "over soft limit (GC eligible)"
		}
		fmt.Fprintf(w, "  %-10s %10d %10s %10s %10d %10s  %s\n",
			pr, staged, lim(q.StagedSoft), lim(q.StagedHard), pinned, lim(q.PinnedHard), standing)
	}
}
