// Package imagefs persists a HighLight instance as an image directory so
// the command-line tools can operate on a file system across process runs:
// config.json (geometry), disk.img (the disk farm's sparse contents) and
// juke.img (the jukebox media).
package imagefs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// Config is the persisted geometry of an image.
type Config struct {
	SegBlocks  int `json:"seg_blocks"`
	DiskSegs   int `json:"disk_segs"`
	CacheSegs  int `json:"cache_segs"`
	MaxInodes  int `json:"max_inodes"`
	Vols       int `json:"vols"`
	SegsPerVol int `json:"segs_per_vol"`
	Drives     int `json:"drives"`
	// ExtraDiskSegs lists disks added on-line with "hlfs grow" (§6.4),
	// each in segments; they are re-attached in order at load time.
	ExtraDiskSegs []int `json:"extra_disk_segs,omitempty"`
	// Spindles splits the DiskSegs capacity over that many farm spindles
	// (spindle 0 persists as disk.img, the rest as farm1.img, ...).
	// StripeUnit interleaves them with that stripe unit in 4 KB blocks
	// (0 concatenates) and Parity adds a rotating parity unit per row.
	// Streams runs that many concurrent tertiary I/O streams at mount.
	// Zero values keep the historical single-spindle, single-stream image.
	Spindles   int  `json:"spindles,omitempty"`
	StripeUnit int  `json:"stripe_unit,omitempty"`
	Parity     bool `json:"parity,omitempty"`
	Streams    int  `json:"streams,omitempty"`
	// Libraries is the total number of identical MO changers; values
	// beyond 1 persist as juke1.img, juke2.img, ... Replicas is the
	// tertiary copy count per staged segment (<2 disables replication).
	Libraries int `json:"libraries,omitempty"`
	Replicas  int `json:"replicas,omitempty"`
	// ReplicaCatalog persists the in-memory replica map across mounts:
	// each entry is [primary, replica, replica...] tertiary indices,
	// sorted by primary.
	ReplicaCatalog [][]int `json:"replica_catalog,omitempty"`
	// EpochNs is the virtual time at the last save: resumed runs start
	// here so file ages keep advancing monotonically across invocations.
	EpochNs int64 `json:"epoch_ns"`
}

// DefaultConfig is a comfortable laptop-scale instance: a 256 MB disk and
// a 4x64 MB MO jukebox with 1 MB segments.
func DefaultConfig() Config {
	return Config{
		SegBlocks:  256,
		DiskSegs:   256,
		CacheSegs:  32,
		MaxInodes:  4096,
		Vols:       4,
		SegsPerVol: 64,
		Drives:     2,
	}
}

// Instance is a loaded image: the HighLight file system plus its devices.
type Instance struct {
	Cfg   Config
	HL    *core.HighLight
	Disk  *dev.Disk
	Farm  []*dev.Disk // farm spindles beyond the first, persisted as farm1.img, ...
	Extra []*dev.Disk // on-line additions, persisted as disk1.img, ...
	Juke  *jukebox.Jukebox
	// ExtraJukes holds libraries beyond the first, persisted as
	// juke1.img, juke2.img, ...
	ExtraJukes []*jukebox.Jukebox
	k          *sim.Kernel
	dir        string
}

func paths(dir string) (cfg, disk, juke string) {
	return filepath.Join(dir, "config.json"),
		filepath.Join(dir, "disk.img"),
		filepath.Join(dir, "juke.img")
}

func extraPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("disk%d.img", i+1))
}

func extraJukePath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("juke%d.img", i+1))
}

func farmPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("farm%d.img", i+1))
}

// AddDisk grows the instance by a fresh disk of segs segments (§6.4),
// recording it in the image configuration so reloads re-attach it.
func (inst *Instance) AddDisk(p *sim.Proc, segs int) error {
	d := dev.NewDisk(inst.k, dev.RZ58, int64(segs*inst.Cfg.SegBlocks), nil)
	if _, err := inst.HL.AddDisk(p, d); err != nil {
		return err
	}
	inst.Extra = append(inst.Extra, d)
	inst.Cfg.ExtraDiskSegs = append(inst.Cfg.ExtraDiskSegs, segs)
	return nil
}

// Init creates a fresh formatted image in dir (which must not already hold
// one).
func Init(k *sim.Kernel, dir string, cfg Config) (*Instance, error) {
	cfgPath, _, _ := paths(dir)
	if _, err := os.Stat(cfgPath); err == nil {
		return nil, fmt.Errorf("imagefs: %s already holds an image", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	inst, err := build(k, dir, cfg, true)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		return nil, err
	}
	return inst, inst.Save()
}

// Load mounts an existing image.
func Load(k *sim.Kernel, dir string) (*Instance, error) {
	cfgPath, diskPath, jukePath := paths(dir)
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("imagefs: %w (is %s an image directory?)", err, dir)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, err
	}
	k.AdvanceTo(sim.Time(cfg.EpochNs))
	inst, err := buildDevices(k, dir, cfg)
	if err != nil {
		return nil, err
	}
	df, err := os.Open(diskPath)
	if err != nil {
		return nil, err
	}
	defer df.Close()
	if err := inst.Disk.LoadStore(df); err != nil {
		return nil, err
	}
	for i, d := range inst.Farm {
		ff, err := os.Open(farmPath(dir, i))
		if err != nil {
			return nil, err
		}
		if err := d.LoadStore(ff); err != nil {
			ff.Close()
			return nil, err
		}
		ff.Close()
	}
	for i, d := range inst.Extra {
		ef, err := os.Open(extraPath(dir, i))
		if err != nil {
			return nil, err
		}
		if err := d.LoadStore(ef); err != nil {
			ef.Close()
			return nil, err
		}
		ef.Close()
	}
	jf, err := os.Open(jukePath)
	if err != nil {
		return nil, err
	}
	defer jf.Close()
	if err := inst.Juke.LoadStore(jf); err != nil {
		return nil, err
	}
	for i, j := range inst.ExtraJukes {
		ejf, err := os.Open(extraJukePath(dir, i))
		if err != nil {
			return nil, err
		}
		if err := j.LoadStore(ejf); err != nil {
			ejf.Close()
			return nil, err
		}
		ejf.Close()
	}
	return mount(k, inst, false)
}

func build(k *sim.Kernel, dir string, cfg Config, format bool) (*Instance, error) {
	inst, err := buildDevices(k, dir, cfg)
	if err != nil {
		return nil, err
	}
	return mount(k, inst, format)
}

func buildDevices(k *sim.Kernel, dir string, cfg Config) (*Instance, error) {
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	inst := &Instance{Cfg: cfg, k: k, dir: dir}
	if cfg.Spindles > 1 {
		// Farm spindles on private channels, capacity split evenly (the
		// shared SCSI bus would cap the farm at about two disks' worth).
		per := int64(cfg.DiskSegs * cfg.SegBlocks / cfg.Spindles)
		inst.Disk = dev.NewDisk(k, dev.RZ57, per, nil)
		for i := 1; i < cfg.Spindles; i++ {
			inst.Farm = append(inst.Farm, dev.NewDisk(k, dev.RZ57, per, nil))
		}
	} else {
		inst.Disk = dev.NewDisk(k, dev.RZ57, int64(cfg.DiskSegs*cfg.SegBlocks), bus)
	}
	for _, segs := range cfg.ExtraDiskSegs {
		inst.Extra = append(inst.Extra, dev.NewDisk(k, dev.RZ58, int64(segs*cfg.SegBlocks), bus))
	}
	juke, err := jukebox.New(k, jukebox.MO6300, cfg.Drives, cfg.Vols, cfg.SegsPerVol,
		cfg.SegBlocks*lfs.BlockSize, bus)
	if err != nil {
		return nil, fmt.Errorf("imagefs: %w", err)
	}
	inst.Juke = juke
	for i := 1; i < cfg.Libraries; i++ {
		extra, err := jukebox.New(k, jukebox.MO6300, cfg.Drives, cfg.Vols, cfg.SegsPerVol,
			cfg.SegBlocks*lfs.BlockSize, bus)
		if err != nil {
			return nil, fmt.Errorf("imagefs: library %d: %w", i, err)
		}
		inst.ExtraJukes = append(inst.ExtraJukes, extra)
	}
	return inst, nil
}

func mount(k *sim.Kernel, inst *Instance, format bool) (*Instance, error) {
	var err error
	disks := []dev.BlockDev{inst.Disk}
	for _, d := range inst.Farm {
		disks = append(disks, d)
	}
	for _, d := range inst.Extra {
		disks = append(disks, d)
	}
	jukes := []jukebox.Footprint{inst.Juke}
	for _, j := range inst.ExtraJukes {
		jukes = append(jukes, j)
	}
	k.RunProc(func(p *sim.Proc) {
		inst.HL, err = core.New(p, core.Config{
			SegBlocks:  inst.Cfg.SegBlocks,
			Disks:      disks,
			StripeUnit: inst.Cfg.StripeUnit,
			Parity:     inst.Cfg.Parity,
			Streams:    inst.Cfg.Streams,
			Jukeboxes:  jukes,
			CacheSegs:  inst.Cfg.CacheSegs,
			MaxInodes:  inst.Cfg.MaxInodes,
			Replicas:   inst.Cfg.Replicas,
		}, format)
	})
	if err != nil {
		return nil, err
	}
	if !format && len(inst.Cfg.ReplicaCatalog) > 0 {
		m := make(map[int][]int, len(inst.Cfg.ReplicaCatalog))
		for _, row := range inst.Cfg.ReplicaCatalog {
			if len(row) > 1 {
				m[row[0]] = row[1:]
			}
		}
		inst.HL.RestoreReplicaCatalog(m)
	}
	return inst, nil
}

// Save checkpoints nothing by itself — callers checkpoint through the FS —
// but persists the device contents and the virtual epoch back to the
// image files.
func (inst *Instance) Save() error {
	cfgPath, diskPath, jukePath := paths(inst.dir)
	inst.Cfg.EpochNs = int64(inst.k.Now())
	catalog := inst.HL.ReplicaCatalog()
	prims := make([]int, 0, len(catalog))
	for p := range catalog {
		prims = append(prims, p)
	}
	sort.Ints(prims)
	inst.Cfg.ReplicaCatalog = nil
	for _, p := range prims {
		inst.Cfg.ReplicaCatalog = append(inst.Cfg.ReplicaCatalog, append([]int{p}, catalog[p]...))
	}
	meta, err := json.MarshalIndent(inst.Cfg, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfgPath, meta, 0o644); err != nil {
		return err
	}
	df, err := os.Create(diskPath)
	if err != nil {
		return err
	}
	if err := inst.Disk.SaveStore(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	for i, d := range inst.Farm {
		ff, err := os.Create(farmPath(inst.dir, i))
		if err != nil {
			return err
		}
		if err := d.SaveStore(ff); err != nil {
			ff.Close()
			return err
		}
		if err := ff.Close(); err != nil {
			return err
		}
	}
	for i, d := range inst.Extra {
		ef, err := os.Create(extraPath(inst.dir, i))
		if err != nil {
			return err
		}
		if err := d.SaveStore(ef); err != nil {
			ef.Close()
			return err
		}
		if err := ef.Close(); err != nil {
			return err
		}
	}
	jf, err := os.Create(jukePath)
	if err != nil {
		return err
	}
	if err := inst.Juke.SaveStore(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	for i, j := range inst.ExtraJukes {
		ejf, err := os.Create(extraJukePath(inst.dir, i))
		if err != nil {
			return err
		}
		if err := j.SaveStore(ejf); err != nil {
			ejf.Close()
			return err
		}
		if err := ejf.Close(); err != nil {
			return err
		}
	}
	return nil
}
