package imagefs

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sim"
)

func smallCfg() Config {
	return Config{
		SegBlocks:  16,
		DiskSegs:   64,
		CacheSegs:  8,
		MaxInodes:  128,
		Vols:       2,
		SegsPerVol: 16,
		Drives:     2,
	}
}

func TestInitLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := make([]byte, 100000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	{
		k := sim.NewKernel()
		inst, err := Init(k, dir, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		k.RunProc(func(p *sim.Proc) {
			f, err := inst.HL.FS.Create(p, "/persist")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			if err := inst.HL.FS.Checkpoint(p); err != nil {
				t.Fatal(err)
			}
		})
		if err := inst.Save(); err != nil {
			t.Fatal(err)
		}
		k.Stop()
	}
	{
		k := sim.NewKernel()
		inst, err := Load(k, dir)
		if err != nil {
			t.Fatal(err)
		}
		if k.Now() == 0 {
			t.Fatal("epoch not restored")
		}
		k.RunProc(func(p *sim.Proc) {
			f, err := inst.HL.FS.Open(p, "/persist")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data lost across image save/load")
			}
		})
		k.Stop()
	}
}

func TestMigratedDataSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	data := make([]byte, 30*16*4096/2)
	for i := range data {
		data[i] = byte(i * 3)
	}
	{
		k := sim.NewKernel()
		inst, err := Init(k, dir, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		k.RunProc(func(p *sim.Proc) {
			f, err := inst.HL.FS.Create(p, "/arch")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := inst.HL.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
				t.Fatal(err)
			}
			if err := inst.HL.CompleteMigration(p); err != nil {
				t.Fatal(err)
			}
		})
		if err := inst.Save(); err != nil {
			t.Fatal(err)
		}
		k.Stop()
	}
	{
		k := sim.NewKernel()
		inst, err := Load(k, dir)
		if err != nil {
			t.Fatal(err)
		}
		k.RunProc(func(p *sim.Proc) {
			// Eject everything: the read must come from the jukebox image.
			for _, l := range inst.HL.Cache.Lines() {
				if err := inst.HL.Svc.Eject(l.Tag); err != nil {
					t.Fatal(err)
				}
			}
			f, err := inst.HL.FS.Open(p, "/arch")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("tertiary data lost across image save/load")
			}
			if inst.HL.Svc.Stats().Fetches == 0 {
				t.Fatal("read did not exercise the jukebox image")
			}
		})
		k.Stop()
	}
}

func TestInitRefusesExistingImage(t *testing.T) {
	dir := t.TempDir()
	k := sim.NewKernel()
	if _, err := Init(k, dir, smallCfg()); err != nil {
		t.Fatal(err)
	}
	k.Stop()
	k2 := sim.NewKernel()
	if _, err := Init(k2, dir, smallCfg()); err == nil {
		t.Fatal("double init accepted")
	}
	k2.Stop()
}

func TestAddDiskPersistsInImage(t *testing.T) {
	dir := t.TempDir()
	data := make([]byte, 200000)
	for i := range data {
		data[i] = byte(i * 11)
	}
	{
		k := sim.NewKernel()
		inst, err := Init(k, dir, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		k.RunProc(func(p *sim.Proc) {
			if err := inst.AddDisk(p, 32); err != nil {
				t.Fatal(err)
			}
			f, err := inst.HL.FS.Create(p, "/on-grown")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			if err := inst.HL.FS.Checkpoint(p); err != nil {
				t.Fatal(err)
			}
		})
		if err := inst.Save(); err != nil {
			t.Fatal(err)
		}
		k.Stop()
	}
	{
		k := sim.NewKernel()
		inst, err := Load(k, dir)
		if err != nil {
			t.Fatalf("reload grown image: %v", err)
		}
		if len(inst.Extra) != 1 {
			t.Fatalf("extra disks not re-attached: %d", len(inst.Extra))
		}
		if inst.HL.Amap.DiskSegs() != smallCfg().DiskSegs+32 {
			t.Fatalf("grown geometry lost: %d segments", inst.HL.Amap.DiskSegs())
		}
		k.RunProc(func(p *sim.Proc) {
			f, err := inst.HL.FS.Open(p, "/on-grown")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data on grown farm lost across image reload")
			}
		})
		k.Stop()
	}
}
