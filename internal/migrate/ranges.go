package migrate

import (
	"sort"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// Block-range tracking (§5.2): keeping information for each block on disk
// would be exorbitantly expensive, so the tracker keeps access *ranges*
// within each file, with the potential to resolve down to block
// granularity. Sequentially and completely accessed files stay at a single
// record; database-style files fragment into per-region records. A cap on
// records per file bounds the bookkeeping: when exceeded, the two ranges
// with the most similar access times merge (the dynamic-granularity
// tradeoff the paper describes).

// AccessRange is one tracked extent [Start, End) with its last access.
type AccessRange struct {
	Start, End int32
	Last       sim.Time
}

// RangeTracker accumulates per-file access ranges, fed from the file
// system's OnAccess hook.
type RangeTracker struct {
	k *sim.Kernel
	// MaxRecords caps records per file (default 16).
	MaxRecords int
	files      map[uint32][]AccessRange
}

// NewRangeTracker returns a tracker; wire Hook into lfs.FS.OnAccess.
func NewRangeTracker(k *sim.Kernel) *RangeTracker {
	return &RangeTracker{k: k, MaxRecords: 16, files: make(map[uint32][]AccessRange)}
}

// Hook is the lfs.FS.OnAccess adapter.
func (t *RangeTracker) Hook(inum uint32, start, end int32, write bool) {
	t.Record(inum, start, end, t.k.Now())
}

// Forget drops a file's records (after deletion or whole-file migration).
func (t *RangeTracker) Forget(inum uint32) { delete(t.files, inum) }

// Ranges returns a copy of a file's records, sorted by Start.
func (t *RangeTracker) Ranges(inum uint32) []AccessRange {
	rs := t.files[inum]
	out := make([]AccessRange, len(rs))
	copy(out, rs)
	return out
}

// Record notes an access of [start, end) at time now. Overlapping pieces
// of older ranges keep their own timestamps; the accessed extent gets now.
func (t *RangeTracker) Record(inum uint32, start, end int32, now sim.Time) {
	if end <= start {
		return
	}
	old := t.files[inum]
	var out []AccessRange
	for _, r := range old {
		if r.End <= start || r.Start >= end {
			out = append(out, r)
			continue
		}
		// Keep the non-overlapping flanks with their old timestamp.
		if r.Start < start {
			out = append(out, AccessRange{r.Start, start, r.Last})
		}
		if r.End > end {
			out = append(out, AccessRange{end, r.End, r.Last})
		}
	}
	out = append(out, AccessRange{start, end, now})
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	// Coalesce adjacent ranges with identical timestamps.
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if r.Start == last.End && r.Last == last.Last {
			last.End = r.End
		} else {
			merged = append(merged, r)
		}
	}
	// Enforce the record cap by merging the adjacent pair that loses the
	// least ranking information: timestamp difference weighted by the
	// spans involved. Span weighting matters — collapsing two tiny
	// fragments with hour-apart stamps costs almost nothing, while
	// absorbing a thousand-block dormant region into a hot neighbour
	// would mislabel all of it.
	max := t.MaxRecords
	if max < 1 {
		max = 1
	}
	for len(merged) > max {
		best := -1
		var bestCost float64
		for i := 0; i+1 < len(merged); i++ {
			d := merged[i+1].Last - merged[i].Last
			if d < 0 {
				d = -d
			}
			span := float64(merged[i].End-merged[i].Start) + float64(merged[i+1].End-merged[i+1].Start)
			cost := float64(d) * span
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		a, b := merged[best], merged[best+1]
		if b.Last > a.Last {
			a.Last = b.Last // merged record keeps the newer access
		}
		a.End = b.End // subsumes any gap between the records
		merged = append(merged[:best], append([]AccessRange{a}, merged[best+2:]...)...)
	}
	t.files[inum] = merged
}

// BlockRange is the block-based migration policy (§5.2): within each file
// it migrates only ranges older than MinAge, letting old, unreferenced
// data within a file migrate while active data in the same file remain on
// secondary storage (the database-file scenario).
type BlockRange struct {
	Tracker *RangeTracker
	MinAge  sim.Time
}

// Name implements Policy (for ranking; range selection is via ColdRefs).
func (b *BlockRange) Name() string { return "blockrange" }

// Select implements Policy: files are ranked by the STP score of their
// coldest range.
func (b *BlockRange) Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]Candidate, error) {
	stp := NewSTP()
	stp.MinAge = b.MinAge
	return stp.Select(p, hl, targetBytes)
}

// ColdRefs filters a file's block refs down to those in ranges last
// accessed at least MinAge ago. Blocks never recorded (e.g. written before
// tracking started) count as cold. Indirect blocks are included only when
// every tracked range is cold (they cover the whole file).
func (b *BlockRange) ColdRefs(p *sim.Proc, hl *core.HighLight, inum uint32) ([]lfs.BlockRef, error) {
	refs, err := hl.FS.FileBlockRefs(p, inum)
	if err != nil {
		return nil, err
	}
	now := p.Now()
	ranges := b.Tracker.Ranges(inum)
	hot := func(lbn int32) bool {
		for _, r := range ranges {
			if lbn >= r.Start && lbn < r.End {
				return now-r.Last < b.MinAge
			}
		}
		return false
	}
	anyHot := false
	for _, r := range ranges {
		if now-r.Last < b.MinAge {
			anyHot = true
			break
		}
	}
	var cold []lfs.BlockRef
	for _, r := range refs {
		if r.Lbn < 0 {
			if !anyHot {
				cold = append(cold, r)
			}
			continue
		}
		if !hot(r.Lbn) {
			cold = append(cold, r)
		}
	}
	return cold, nil
}
