package migrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// Rearranger implements the §5.4 rewrite-on-fetch policy: "A better
// approach might be to rewrite segments to tertiary storage as they are
// read into the cache. This is more likely to reflect true access
// locality." Demand-fetched segments queue up and are periodically
// re-staged onto the current migration volume in fetch order, so data
// that are accessed together end up clustered together — at the cost of
// extra tertiary consumption (the old copies die and await the volume
// cleaner), exactly the trade-off the paper describes.
type Rearranger struct {
	HL *core.HighLight

	// MinBatch defers rewriting until this many fetched segments have
	// accumulated, so a lone fetch does not trigger tertiary writes
	// that would interfere with demand-fetch read traffic (§5.4's
	// stated concern). Default 2.
	MinBatch int
	// Interval is the daemon poll period (default 30 virtual seconds).
	Interval sim.Time

	queue []int

	// Stats.
	Rewritten       int64 // segments re-staged
	BlocksClustered int64
}

// NewRearranger wires the rearranger into the service process's fetch
// notifications and returns it; run Daemon as a sim daemon to activate it.
func NewRearranger(hl *core.HighLight) *Rearranger {
	ra := &Rearranger{HL: hl, MinBatch: 2, Interval: 30 * time.Second}
	hl.Svc.OnFetched = func(tag int) {
		ra.queue = append(ra.queue, tag)
	}
	return ra
}

// Pending reports fetched segments awaiting rewrite.
func (ra *Rearranger) Pending() int { return len(ra.queue) }

// RunOnce rewrites the currently queued fetched segments (in fetch order)
// and completes the migration. It returns the number of segments
// rewritten.
func (ra *Rearranger) RunOnce(p *sim.Proc) (int, error) {
	if len(ra.queue) < ra.MinBatch {
		return 0, nil
	}
	batch := ra.queue
	ra.queue = nil
	done := 0
	for _, tag := range batch {
		// The segment may have been evicted, cleaned or already
		// rewritten since it was fetched; only dirty segments with
		// live data are worth moving.
		su := ra.HL.FS.TsegUsage(tag)
		if su.Flags&lfs.SegDirty == 0 || su.LiveBytes == 0 {
			continue
		}
		moved, err := ra.HL.RestageTertSegment(p, tag)
		if err != nil {
			return done, err
		}
		if moved > 0 {
			done++
			ra.Rewritten++
			ra.BlocksClustered += int64(moved)
		}
	}
	if done == 0 {
		return 0, nil
	}
	return done, ra.HL.CompleteMigration(p)
}

// Daemon runs the rearranger periodically.
func (ra *Rearranger) Daemon(p *sim.Proc) {
	interval := ra.Interval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	for {
		p.Sleep(interval)
		if _, err := ra.RunOnce(p); err != nil {
			continue // e.g. tertiary exhausted: stand down until cleaned
		}
	}
}
