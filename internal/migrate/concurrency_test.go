package migrate

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// runConcurrencySoak drives the parallel pipeline end to end: a 4-spindle
// striped farm with two tertiary I/O streams, the migrator daemon (two
// copy-out streams, per-segment reservation against the cleaner), the
// cleaner daemon, and demand-fetch readers, all concurrent in virtual
// time, under a transient fault plan on the jukebox. Every byte a reader
// sees must match the model (zero loss), and the run must be perfectly
// repeatable: the returned digest covers file contents, device and
// service counters, and the final virtual clock.
func runConcurrencySoak(t *testing.T) string {
	const segBlocks = 16
	const seed = 4242
	k := sim.NewKernel()
	var spindles []dev.BlockDev
	for i := 0; i < 4; i++ {
		spindles = append(spindles, dev.NewDisk(k, dev.RZ57, int64(40*segBlocks), nil))
	}
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 6, 24, segBlocks*lfs.BlockSize, nil)
	cfg := core.Config{
		SegBlocks:   segBlocks,
		Disks:       spindles,
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   20,
		MaxInodes:   512,
		BufferBytes: 1 << 20,
		StripeUnit:  8,
		Streams:     2,
	}

	// Transient faults only: every injected failure must be retried to
	// success, so no file may ever be lost.
	plan := fault.NewPlan(fault.Config{
		Seed:               seed,
		TransientReadRate:  0.03,
		TransientWriteRate: 0.03,
		MaxBurst:           2,
	})
	plan.InstallJukebox("mo", juke)
	plan.Start(k)

	model := map[string][]byte{}
	var names []string
	var digest string

	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		cleaner := hl.FS.AttachCleaner(8, 14)
		k.GoDaemon("cleaner", cleaner)

		m := NewMigrator(hl)
		m.Streams = 2
		m.MigrateInodes = true
		// Water marks above the clean-segment count keep the daemon
		// migrating on every poll — the soak wants continuous tertiary
		// traffic, not a realistic trigger.
		m.LowWaterSegs = 2 * hl.Amap.DiskSegs()
		m.HighWaterSegs = 2*hl.Amap.DiskSegs() + 2
		m.Interval = 2 * time.Second
		k.GoDaemon("migrator", m.Daemon)

		// Seed the namespace.
		rng := sim.NewRNG(seed)
		for i := 0; i < 18; i++ {
			name := fmt.Sprintf("/c%d", i)
			data := make([]byte, rng.Intn(12*lfs.BlockSize)+1)
			for j := range data {
				data[j] = byte(rng.Intn(256))
			}
			f, err := hl.FS.Create(p, name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			model[name] = data
			names = append(names, name)
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}

		// Concurrent load: a writer churning dirt (so the cleaner and
		// migrator have work) and two demand-fetch readers verifying
		// migrated files against the model while migration is in flight.
		writer := func(p *sim.Proc) {
			wrng := sim.NewRNG(seed + 1)
			for i := 0; i < 60; i++ {
				p.Sleep(time.Duration(wrng.Intn(700)) * time.Millisecond)
				name := names[wrng.Intn(len(names))]
				cur := model[name]
				off := wrng.Intn(len(cur))
				patch := make([]byte, wrng.Intn(2*lfs.BlockSize)+1)
				for j := range patch {
					patch[j] = byte(wrng.Intn(256))
				}
				f, err := hl.FS.Open(p, name)
				if err != nil {
					t.Errorf("writer open %s: %v", name, err)
					return
				}
				if _, err := f.WriteAt(p, patch, int64(off)); err != nil {
					t.Errorf("writer write %s: %v", name, err)
					return
				}
				if off+len(patch) > len(cur) {
					grown := make([]byte, off+len(patch))
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], patch)
				model[name] = cur
			}
		}
		reader := func(id int) func(p *sim.Proc) {
			return func(p *sim.Proc) {
				rrng := sim.NewRNG(seed + 10 + uint64(id))
				for i := 0; i < 40; i++ {
					p.Sleep(time.Duration(rrng.Intn(900)) * time.Millisecond)
					name := names[rrng.Intn(len(names))]
					f, err := hl.FS.Open(p, name)
					if err != nil {
						t.Errorf("reader %d open %s: %v", id, name, err)
						return
					}
					want := model[name]
					got := make([]byte, len(want))
					if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
						t.Errorf("reader %d read %s: %v", id, name, err)
						return
					}
					if !bytes.Equal(got, want) {
						t.Errorf("reader %d: %s diverged from model (data loss)", id, name)
						return
					}
				}
			}
		}
		done := k.NewCond("soak.done")
		running := 3
		spawn := func(name string, fn func(p *sim.Proc)) {
			k.Go(name, func(cp *sim.Proc) {
				fn(cp)
				running--
				done.Broadcast()
			})
		}
		spawn("writer", writer)
		spawn("reader-0", reader(0))
		spawn("reader-1", reader(1))
		for running > 0 {
			done.Wait(p)
		}

		// Quiesce: finish outstanding staging/copy-outs, then verify
		// every file one last time and fold everything observable into
		// the digest.
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				t.Fatalf("final open %s: %v", name, err)
			}
			want := model[name]
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatalf("final read %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("final verify: %s diverged from model (data loss)", name)
			}
		}

		ss := hl.Svc.Stats()
		if ss.RetriesExhausted != 0 {
			t.Fatalf("%d operations exhausted the retry budget; transient-only plan must always recover", ss.RetriesExhausted)
		}
		pc := plan.DeviceCounts("mo")
		if pc.Transient == 0 {
			t.Fatal("fault plan injected no transient faults; raise rates or change the seed")
		}

		h := sha256.New()
		for _, name := range names {
			fmt.Fprintf(h, "%s:%x\n", name, sha256.Sum256(model[name]))
		}
		fmt.Fprintf(h, "svc:%+v faults:%+v juke:%+v\n", ss, pc, juke.Stats())
		for i, d := range spindles {
			fmt.Fprintf(h, "disk%d:%+v\n", i, d.(*dev.Disk).Stats())
		}
		digest = fmt.Sprintf("%x t=%v retries=%d", h.Sum(nil), p.Now(), ss.TransientRetries)
	})
	k.Stop()
	return digest
}

// TestConcurrentPipelineSoak is the race-enabled concurrency soak of the
// parallel migration pipeline (run under -race by `make verify`): the
// migrator's copy-out streams, the cleaner, demand fetches, and striped
// parallel dispatch all interleave under injected transient faults with
// zero loss, and a double run produces the identical digest — the
// parallelism lives entirely in deterministic virtual time.
func TestConcurrentPipelineSoak(t *testing.T) {
	d1 := runConcurrencySoak(t)
	d2 := runConcurrencySoak(t)
	if d1 != d2 {
		t.Fatalf("double run diverged:\n  run 1: %s\n  run 2: %s", d1, d2)
	}
}
