// Package migrate implements HighLight's user-level migration policies
// (§5) and the migrator process (§6.7) that embodies them: it examines the
// collection of on-disk file blocks, decides which should move to tertiary
// storage, and drives the staging mechanism in internal/core.
package migrate

import (
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Candidate is one ranked migration unit: a file (or, for the namespace
// policy, a member of a directory unit) with its policy score.
type Candidate struct {
	Inum  uint32
	Path  string
	Size  uint64
	Atime int64
	Score float64
	Unit  string // namespace unit the file belongs to, if any
}

// Policy ranks migration candidates. Select returns candidates, best
// first, whose total size is at least targetBytes (or everything eligible
// if less is available).
type Policy interface {
	Name() string
	Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]Candidate, error)
}

// STP is the space-time product policy (§5.1): rank files by
// (time since last access)^TimeExp × size^SizeExp, as recommended by
// Lawrie et al. and Smith. The current migrator uses exponents of 1 for
// both (the paper's configuration).
type STP struct {
	TimeExp float64
	SizeExp float64
	// MinAge excludes recently active files entirely.
	MinAge sim.Time
}

// NewSTP returns the paper's configuration: both exponents 1.
func NewSTP() *STP { return &STP{TimeExp: 1, SizeExp: 1} }

// Name implements Policy.
func (s *STP) Name() string { return "stp" }

// Select implements Policy.
func (s *STP) Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]Candidate, error) {
	now := p.Now()
	var cands []Candidate
	err := hl.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		if fi.Type != lfs.TypeFile || fi.Size == 0 {
			return nil
		}
		if hl.InodePinned(fi.Inum) {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "policy:stp", Subject: "file:" + path,
				Seg: -1, Verdict: attr.VerdictPinGuard, Reason: "file is HSM-pinned",
				Inputs: []attr.Input{attr.In("size", float64(fi.Size))},
			})
			return nil
		}
		age := now - sim.Time(fi.Atime)
		if age < 0 {
			age = 0 // resumed image: access times may be "in the future"
		}
		if age < s.MinAge {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "policy:stp", Subject: "file:" + path,
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "younger than min age",
				Inputs: []attr.Input{
					attr.In("age_s", age.Seconds()),
					attr.In("min_age_s", s.MinAge.Seconds()),
					attr.In("size", float64(fi.Size)),
				},
			})
			return nil
		}
		cands = append(cands, Candidate{
			Inum:  fi.Inum,
			Path:  path,
			Size:  fi.Size,
			Atime: fi.Atime,
			Score: math.Pow(float64(age), s.TimeExp) * math.Pow(float64(fi.Size), s.SizeExp),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Inum < cands[b].Inum
	})
	taken := takeTarget(cands, targetBytes)
	auditRanking(hl, "policy:stp", now, cands, len(taken))
	return taken, nil
}

// auditRanking records one decision per ranked candidate: the first
// nTaken are selected, the rest were examined but fell past the byte
// target. Seg is -1 — policies rank files; the staging mechanism later
// attributes them to the tertiary segment they land in.
func auditRanking(hl *core.HighLight, actor string, now sim.Time, cands []Candidate, nTaken int) {
	for i, c := range cands {
		d := attr.Decision{
			T: now, Actor: actor, Subject: "file:" + c.Path,
			Seg: -1, Verdict: attr.VerdictSelected,
			Inputs: []attr.Input{
				attr.In("rank", float64(i)),
				attr.In("score", c.Score),
				attr.In("age_s", (now - sim.Time(c.Atime)).Seconds()),
				attr.In("size", float64(c.Size)),
			},
		}
		if i >= nTaken {
			d.Verdict = attr.VerdictSkipped
			d.Reason = "ranked past byte target"
		}
		hl.Audit.Record(d)
	}
}

// AccessTime ranks purely by time since last access (the policy the
// earlier studies found inferior to STP — kept as a comparison ablation).
type AccessTime struct {
	MinAge sim.Time
}

// Name implements Policy.
func (a *AccessTime) Name() string { return "atime" }

// Select implements Policy.
func (a *AccessTime) Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]Candidate, error) {
	stp := &STP{TimeExp: 1, SizeExp: 0, MinAge: a.MinAge}
	cands, err := stp.Select(p, hl, targetBytes)
	return cands, err
}

// Namespace is the namespace-locality policy (§5.3): directory subtrees
// are migration units scored by a "unitsize"-time product, where unitsize
// aggregates the component files and the age is taken from the most
// recently accessed file. Units migrate together, clustering related
// small files in the same tertiary segments.
type Namespace struct {
	TimeExp float64
	SizeExp float64
	MinAge  sim.Time
	// IgnoreHotStable applies the §5.3 secondary criterion: when the
	// most recently accessed file of a unit has not been modified for
	// StableAge, its access time is ignored, so units of mostly-dormant
	// files still migrate.
	IgnoreHotStable bool
	StableAge       sim.Time
}

// NewNamespace returns the default configuration (exponents 1).
func NewNamespace() *Namespace {
	return &Namespace{TimeExp: 1, SizeExp: 1, IgnoreHotStable: true, StableAge: 0}
}

// Name implements Policy.
func (n *Namespace) Name() string { return "namespace" }

type unit struct {
	dir   string
	files []Candidate
	size  uint64
	score float64
}

// Select implements Policy.
func (n *Namespace) Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]Candidate, error) {
	now := p.Now()
	units := map[string]*unit{}
	err := hl.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		if fi.Type != lfs.TypeFile || fi.Size == 0 {
			return nil
		}
		if hl.InodePinned(fi.Inum) {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "policy:namespace", Subject: "file:" + path,
				Seg: -1, Verdict: attr.VerdictPinGuard, Reason: "file is HSM-pinned",
				Inputs: []attr.Input{attr.In("size", float64(fi.Size))},
			})
			return nil
		}
		dir := parentDir(path)
		u, ok := units[dir]
		if !ok {
			u = &unit{dir: dir}
			units[dir] = u
		}
		u.files = append(u.files, Candidate{
			Inum: fi.Inum, Path: path, Size: fi.Size, Atime: fi.Atime, Unit: dir,
		})
		u.size += fi.Size
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ranked []*unit
	for _, u := range units {
		// Unit age: time since the most recent access among the files,
		// optionally ignoring the single hottest file when it is stable
		// (unchanged for StableAge).
		sort.Slice(u.files, func(a, b int) bool { return u.files[a].Atime > u.files[b].Atime })
		ages := u.files
		if n.IgnoreHotStable && len(ages) > 1 {
			hot := ages[0]
			if fiStable(p, hl, hot, now, n.StableAge) {
				ages = ages[1:]
			}
		}
		age := now - sim.Time(ages[0].Atime)
		if age < 0 {
			age = 0
		}
		if age < n.MinAge {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "policy:namespace", Subject: "unit:" + u.dir,
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "unit younger than min age",
				Inputs: []attr.Input{
					attr.In("age_s", age.Seconds()),
					attr.In("size", float64(u.size)),
					attr.In("files", float64(len(u.files))),
				},
			})
			continue
		}
		u.score = math.Pow(float64(age), n.TimeExp) * math.Pow(float64(u.size), n.SizeExp)
		ranked = append(ranked, u)
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].dir < ranked[b].dir
	})
	var out []Candidate
	var total int64
	done := false
	for _, u := range ranked {
		if done {
			hl.Audit.Record(attr.Decision{
				T: now, Actor: "policy:namespace", Subject: "unit:" + u.dir,
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "ranked past byte target",
				Inputs: []attr.Input{
					attr.In("score", u.score),
					attr.In("size", float64(u.size)),
				},
			})
			continue
		}
		// Keep unit members together: sort by path so namespace
		// neighbours land in the same staging segments.
		sort.Slice(u.files, func(a, b int) bool { return u.files[a].Path < u.files[b].Path })
		for _, f := range u.files {
			f.Score = u.score
			out = append(out, f)
		}
		hl.Audit.Record(attr.Decision{
			T: now, Actor: "policy:namespace", Subject: "unit:" + u.dir,
			Seg: -1, Verdict: attr.VerdictSelected,
			Inputs: []attr.Input{
				attr.In("score", u.score),
				attr.In("size", float64(u.size)),
				attr.In("files", float64(len(u.files))),
			},
		})
		total += int64(u.size)
		if targetBytes > 0 && total >= targetBytes {
			done = true
		}
	}
	return out, nil
}

func fiStable(p *sim.Proc, hl *core.HighLight, c Candidate, now, stableAge sim.Time) bool {
	fi, err := hl.FS.Stat(p, c.Path)
	if err != nil {
		return false
	}
	return now-sim.Time(fi.Mtime) >= stableAge
}

func parentDir(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// takeTarget keeps the best candidates until their sizes reach target.
func takeTarget(cands []Candidate, target int64) []Candidate {
	if target <= 0 {
		return cands
	}
	var total int64
	for i, c := range cands {
		total += int64(c.Size)
		if total >= target {
			return cands[:i+1]
		}
	}
	return cands
}
