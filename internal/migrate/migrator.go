package migrate

import (
	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
	"time"
)

// Migrator is the user-level migration process (§6.7): a second cleaner
// that runs continuously, monitoring storage needs and migrating file data
// as required — unlike the daily clean-up computation of Strange's model
// (§8.2).
type Migrator struct {
	HL     *core.HighLight
	Policy Policy

	// MigrateInodes also moves inodes to tertiary storage (§4); indirect
	// blocks always migrate with their data.
	MigrateInodes bool
	// LowWaterSegs triggers migration when clean+cleanable disk space
	// falls below it; migration then proceeds until HighWaterSegs worth
	// of disk bytes have been staged out.
	LowWaterSegs, HighWaterSegs int
	// Interval is the daemon poll period (default 5 virtual seconds).
	Interval sim.Time

	// Streams, above 1, runs the copy-out pipeline with that many
	// concurrent tertiary I/O streams (configure core.Config.Streams to
	// match) and migrates candidates file by file with a bounded
	// in-flight copy-out window, so staging fills overlap with drains
	// instead of strictly alternating.
	Streams int
	// MaxInFlight bounds outstanding copy-outs in the windowed path.
	// Zero derives 2×Streams; the window only applies when Streams > 1
	// or MaxInFlight is set explicitly.
	MaxInFlight int

	// Throttle, if set, is consulted by Daemon before each migration
	// round; a true return skips the round (graceful-degradation
	// "brownout": background migration yields to interactive traffic).
	Throttle func() bool

	// Stats.
	Runs        int64
	BytesStaged int64
}

// NewMigrator returns a migrator with the paper's default policy (STP with
// exponents of 1).
func NewMigrator(hl *core.HighLight) *Migrator {
	return &Migrator{
		HL:            hl,
		Policy:        NewSTP(),
		LowWaterSegs:  hl.Amap.DiskSegs() / 8,
		HighWaterSegs: hl.Amap.DiskSegs() / 4,
		Interval:      5 * time.Second,
	}
}

// RunOnce selects candidates for targetBytes and migrates them, completing
// all copyouts before returning.
func (m *Migrator) RunOnce(p *sim.Proc, targetBytes int64) (int64, error) {
	t0 := p.Now()
	cands, err := m.Policy.Select(p, m.HL, targetBytes)
	if err != nil {
		return 0, err
	}
	if len(cands) == 0 {
		return 0, nil
	}
	var staged int64
	defer func() {
		m.HL.Obs.Span("migrator", "migrate.run", "RunOnce", t0,
			obs.Arg{Key: "candidates", Val: int64(len(cands))}, obs.Arg{Key: "staged", Val: staged})
		// The run summary records the pressure inputs the policy acted
		// under: reclaimable disk space and cache headroom.
		m.HL.Audit.Record(attr.Decision{
			T: m.HL.K.Now(), Actor: "migrator", Subject: "run:" + m.Policy.Name(),
			Seg: -1, Verdict: attr.VerdictRun,
			Inputs: []attr.Input{
				attr.In("target_bytes", float64(targetBytes)),
				attr.In("candidates", float64(len(cands))),
				attr.In("staged_bytes", float64(staged)),
				attr.In("clean_segs", float64(m.HL.FS.CleanSegs())),
				attr.In("cache_free_lines", float64(m.HL.Cache.FreeLines())),
			},
		})
	}()
	if br, ok := m.Policy.(*BlockRange); ok {
		// Block-based migration: stage only the cold ranges.
		if err := m.HL.FS.Sync(p); err != nil {
			return 0, err
		}
		for _, c := range cands {
			refs, err := br.ColdRefs(p, m.HL, c.Inum)
			if err != nil {
				return staged, err
			}
			n, err := m.HL.MigrateRefs(p, refs)
			staged += n
			if err != nil {
				return staged, err
			}
		}
	} else if w := m.window(); w > 0 {
		// Pipelined migration: one candidate at a time so completed
		// staging segments start draining to tertiary while later
		// candidates are still being gathered, with outstanding
		// copy-outs capped at the window (the repair daemon's
		// bounded-concurrency shape). Each file's source segments are
		// reserved against the cleaner while its refs are in flight.
		if err := m.HL.FS.Sync(p); err != nil {
			return 0, err
		}
		for _, c := range cands {
			segs, err := m.sourceSegments(p, c.Inum)
			if err != nil {
				return staged, err
			}
			m.HL.FS.ReserveSegments(segs)
			n, err := m.HL.MigrateFiles(p, []uint32{c.Inum}, m.MigrateInodes)
			m.HL.FS.ReleaseSegments(segs)
			staged += n
			if err != nil {
				return staged, err
			}
			for m.HL.Svc.OutstandingCopyouts() >= w {
				m.HL.Svc.WaitCopyoutProgress(p)
			}
		}
	} else {
		inums := make([]uint32, len(cands))
		for i, c := range cands {
			inums[i] = c.Inum
		}
		staged, err = m.HL.MigrateFiles(p, inums, m.MigrateInodes)
		if err != nil {
			return staged, err
		}
	}
	if err := m.HL.CompleteMigration(p); err != nil {
		return staged, err
	}
	m.Runs++
	m.BytesStaged += staged
	return staged, nil
}

// window reports the copy-out window of the pipelined path, or 0 for the
// historical single-batch migration.
func (m *Migrator) window() int {
	if m.MaxInFlight > 0 {
		return m.MaxInFlight
	}
	if m.Streams > 1 {
		return 2 * m.Streams
	}
	return 0
}

// sourceSegments lists the distinct disk segments holding a file's blocks
// — the set to reserve against the cleaner while the file migrates.
func (m *Migrator) sourceSegments(p *sim.Proc, inum uint32) ([]addr.SegNo, error) {
	refs, err := m.HL.FS.FileBlockRefs(p, inum)
	if err != nil {
		return nil, err
	}
	seen := make(map[addr.SegNo]bool)
	var segs []addr.SegNo
	for _, r := range refs {
		s := m.HL.Amap.SegOf(r.Addr)
		if m.HL.Amap.IsDiskSeg(s) && !seen[s] {
			seen[s] = true
			segs = append(segs, s)
		}
	}
	return segs, nil
}

// Daemon runs the migrator as a background process: when the clean-segment
// pool drops below the low-water mark it migrates enough dormant data to
// bring reclaimable space back to the high-water mark (migrated blocks die
// on disk; the cleaner then reclaims their segments).
func (m *Migrator) Daemon(p *sim.Proc) {
	interval := m.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	segBytes := int64(m.HL.Amap.SegBlocks()) * lfs.BlockSize
	for {
		p.Sleep(interval)
		if m.Throttle != nil && m.Throttle() {
			continue // brownout: stand down until pressure clears
		}
		free := m.HL.FS.CleanSegs()
		if free >= m.LowWaterSegs {
			continue
		}
		target := int64(m.HighWaterSegs-free) * segBytes
		if _, err := m.RunOnce(p, target); err != nil {
			// Out of tertiary space or transient failure: stand down
			// until the next poll (the operator sees it via stats).
			continue
		}
	}
}
