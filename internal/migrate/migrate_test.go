package migrate

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

type env struct {
	k  *sim.Kernel
	hl *core.HighLight
}

func newEnv(t *testing.T) *env {
	t.Helper()
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(128*segBlocks), bus)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 32, segBlocks*lfs.BlockSize, bus)
	e := &env{k: k}
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, core.Config{
			SegBlocks:   segBlocks,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   16,
			MaxInodes:   512,
			BufferBytes: 1 << 20,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		e.hl = hl
	})
	return e
}

func (e *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e.k.RunProc(fn)
}

func mkFile(t *testing.T, p *sim.Proc, hl *core.HighLight, path string, blocks int, tag byte) *lfs.File {
	t.Helper()
	f, err := hl.FS.Create(p, path)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, blocks*lfs.BlockSize)
	for i := range data {
		data[i] = byte(int(tag)*13+i) ^ byte(i>>10)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSTPPrefersOldAndLarge(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		oldBig := mkFile(t, p, hl, "/old-big", 20, 1)
		oldSmall := mkFile(t, p, hl, "/old-small", 2, 2)
		p.Sleep(100 * time.Second)
		freshBig := mkFile(t, p, hl, "/fresh-big", 20, 3)
		// Touch the fresh file so its atime is now.
		buf := make([]byte, 10)
		if _, err := freshBig.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		cands, err := NewSTP().Select(p, hl, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 || cands[0].Inum != oldBig.Inum() {
			t.Fatalf("STP top candidate = %+v, want /old-big", cands[:1])
		}
		// With target big enough, old-small ranks above fresh-big.
		all, _ := NewSTP().Select(p, hl, 1<<40)
		pos := map[uint32]int{}
		for i, c := range all {
			pos[c.Inum] = i
		}
		if pos[oldSmall.Inum()] > pos[freshBig.Inum()] {
			t.Fatalf("old-small ranked below fresh-big: %v", all)
		}
	})
	e.k.Stop()
}

func TestSTPRespectsTarget(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			mkFile(t, p, e.hl, "/f"+string(rune('a'+i)), 4, byte(i))
		}
		p.Sleep(time.Second)
		cands, err := NewSTP().Select(p, e.hl, 2*4*lfs.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 2 {
			t.Fatalf("got %d candidates for a 2-file target, want 2", len(cands))
		}
	})
	e.k.Stop()
}

func TestMigratorEndToEnd(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		f := mkFile(t, p, hl, "/dormant", 30, 7)
		p.Sleep(time.Hour)
		hot := mkFile(t, p, hl, "/hot", 5, 8)
		buf := make([]byte, 10)
		if _, err := hot.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		m := NewMigrator(hl)
		m.Policy = &STP{TimeExp: 1, SizeExp: 1, MinAge: time.Minute}
		staged, err := m.RunOnce(p, 30*lfs.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if staged < 30*lfs.BlockSize {
			t.Fatalf("staged %d bytes, want at least the dormant file", staged)
		}
		// The dormant file is tertiary-resident; the hot one is not.
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs {
			if r.Lbn >= 0 && !hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
				t.Fatalf("dormant block %d not migrated", r.Lbn)
			}
		}
		refsHot, _ := hl.FS.FileBlockRefs(p, hot.Inum())
		for _, r := range refsHot {
			if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr)) {
				t.Fatal("hot file migrated despite MinAge")
			}
		}
		// Data intact through demand fetch.
		hl.FS.DropFileBuffers(p, f.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]byte, 30*lfs.BlockSize)
		for i := range want {
			want[i] = byte(7*13+i) ^ byte(i>>10)
		}
		got := make([]byte, len(want))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("dormant file corrupted by migration")
		}
	})
	e.k.Stop()
}

func TestNamespaceUnitsMigrateTogether(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		if err := hl.FS.Mkdir(p, "/proj"); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Mkdir(p, "/proj/alpha"); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Mkdir(p, "/proj/beta"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			mkFile(t, p, hl, "/proj/alpha/f"+string(rune('0'+i)), 3, byte(i))
		}
		p.Sleep(time.Hour)
		for i := 0; i < 4; i++ {
			mkFile(t, p, hl, "/proj/beta/g"+string(rune('0'+i)), 3, byte(10+i))
		}
		ns := NewNamespace()
		// Target one unit's worth: all four alpha files (older unit)
		// must be selected, and no beta file.
		cands, err := ns.Select(p, hl, 12*lfs.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 4 {
			t.Fatalf("got %d candidates, want the 4-file alpha unit: %v", len(cands), cands)
		}
		for _, c := range cands {
			if c.Unit != "/proj/alpha" {
				t.Fatalf("candidate %s from unit %s, want /proj/alpha", c.Path, c.Unit)
			}
		}
	})
	e.k.Stop()
}

func TestRangeTrackerMergesSequential(t *testing.T) {
	k := sim.NewKernel()
	tr := NewRangeTracker(k)
	// A sequential whole-file read arrives as consecutive chunks at the
	// same virtual time: one record results.
	tr.Record(1, 0, 4, 100)
	tr.Record(1, 4, 8, 100)
	tr.Record(1, 8, 12, 100)
	rs := tr.Ranges(1)
	if len(rs) != 1 || rs[0].Start != 0 || rs[0].End != 12 {
		t.Fatalf("sequential access fragmented: %v", rs)
	}
}

func TestRangeTrackerSplitsOnNewAccess(t *testing.T) {
	k := sim.NewKernel()
	tr := NewRangeTracker(k)
	tr.Record(1, 0, 10, 100)
	tr.Record(1, 4, 6, 200) // re-access the middle
	rs := tr.Ranges(1)
	if len(rs) != 3 {
		t.Fatalf("want 3 ranges after middle re-access, got %v", rs)
	}
	if rs[1].Last != 200 || rs[0].Last != 100 || rs[2].Last != 100 {
		t.Fatalf("timestamps wrong: %v", rs)
	}
}

func TestRangeTrackerCapsRecords(t *testing.T) {
	k := sim.NewKernel()
	tr := NewRangeTracker(k)
	tr.MaxRecords = 4
	for i := int32(0); i < 20; i++ {
		tr.Record(1, i*2, i*2+1, sim.Time(i))
	}
	rs := tr.Ranges(1)
	if len(rs) > 4 {
		t.Fatalf("cap not enforced: %d records", len(rs))
	}
	// Invariants: sorted and disjoint.
	for i := 1; i < len(rs); i++ {
		if rs[i].Start < rs[i-1].End {
			t.Fatalf("ranges overlap: %v", rs)
		}
	}
}

func TestBlockRangePolicyMigratesOnlyColdRanges(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		tr := NewRangeTracker(e.k)
		hl.FS.OnAccess = tr.Hook
		f := mkFile(t, p, hl, "/dbfile", 20, 5)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Hour)
		// Keep blocks 0..3 hot.
		buf := make([]byte, 4*lfs.BlockSize)
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		br := &BlockRange{Tracker: tr, MinAge: time.Minute}
		cold, err := br.ColdRefs(p, hl, f.Inum())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range cold {
			if r.Lbn >= 0 && r.Lbn < 4 {
				t.Fatalf("hot block %d selected as cold", r.Lbn)
			}
		}
		if _, err := hl.MigrateRefs(p, cold); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		for _, r := range refs {
			if r.Lbn < 0 {
				continue
			}
			tert := hl.Amap.IsTertiarySeg(hl.Amap.SegOf(r.Addr))
			if r.Lbn < 4 && tert {
				t.Fatalf("hot block %d migrated", r.Lbn)
			}
			if r.Lbn >= 4 && !tert {
				t.Fatalf("cold block %d not migrated", r.Lbn)
			}
		}
	})
	e.k.Stop()
}

func TestMigratorDaemonReactsToPressure(t *testing.T) {
	e := newEnv(t)
	m := NewMigrator(e.hl)
	m.Policy = &STP{TimeExp: 1, SizeExp: 1, MinAge: 10 * time.Second}
	m.LowWaterSegs = 1000 // aggressive: fire on every poll
	m.HighWaterSegs = 1001
	m.Interval = time.Second
	e.k.GoDaemon("migrator", m.Daemon)
	e.run(t, func(p *sim.Proc) {
		mkFile(t, p, e.hl, "/bulk", 40, 9)
		if err := e.hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(20 * time.Second)
		// Let the daemon observe aged files and run.
		p.Sleep(200 * time.Second)
	})
	if m.Runs == 0 || m.BytesStaged == 0 {
		t.Fatalf("daemon never migrated (runs=%d staged=%d)", m.Runs, m.BytesStaged)
	}
	e.k.Stop()
}

// TestRangeTrackerColdRegionSurvivesHotChurn regresses the cap-merge
// heuristic: hundreds of random accesses to a small hot tail must not
// absorb a large dormant region into a hot-stamped range (timestamp
// similarity alone would eventually merge the cold|hot boundary; the
// span-weighted cost keeps the dormant region intact).
func TestRangeTrackerColdRegionSurvivesHotChurn(t *testing.T) {
	k := sim.NewKernel()
	tr := NewRangeTracker(k)
	// Load era: pages 0..4096 written in chunks with slightly different
	// stamps.
	for i := int32(0); i < 4096; i += 64 {
		tr.Record(1, i, i+64, sim.Time(i)*time.Millisecond)
	}
	// An hour later, 400 random accesses within the newest 10%.
	rng := sim.NewRNG(7)
	base := sim.Time(time.Hour)
	for q := 0; q < 400; q++ {
		pg := int32(3686 + rng.Intn(410))
		tr.Record(1, pg, pg+1, base+sim.Time(q)*time.Millisecond)
	}
	coldBlocks := 0
	for _, r := range tr.Ranges(1) {
		if base-r.Last > sim.Time(30*time.Minute) {
			coldBlocks += int(r.End - r.Start)
		}
	}
	if coldBlocks < 3000 {
		t.Fatalf("only %d blocks still classified cold; dormant region poisoned by hot churn", coldBlocks)
	}
}

// TestRearrangerClustersCoAccessedSegments exercises the §5.4
// rewrite-on-fetch policy: two files migrated at different times land in
// scattered tertiary segments; after both are demand-fetched together and
// the rearranger runs, their blocks live in adjacent fresh segments and
// the old copies are dead.
func TestRearrangerClustersCoAccessedSegments(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		ra := NewRearranger(hl)
		fa := mkFile(t, p, hl, "/setA", 14, 1)
		fb := mkFile(t, p, hl, "/setB", 14, 2)
		// Migrate A, then unrelated padding, then B — so A and B end up
		// in non-adjacent tertiary segments.
		if _, err := hl.MigrateFiles(p, []uint32{fa.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		pad := mkFile(t, p, hl, "/pad", 30, 3)
		if _, err := hl.MigrateFiles(p, []uint32{pad.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{fb.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		segsOf := func(f *lfs.File) map[int]bool {
			out := map[int]bool{}
			refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
			for _, r := range refs {
				if idx, ok := hl.Amap.TertIndex(hl.Amap.SegOf(r.Addr)); ok {
					out[idx] = true
				}
			}
			return out
		}
		gap := func() (lo, hi int) {
			lo, hi = 1<<30, -1
			for idx := range segsOf(fa) {
				if idx < lo {
					lo = idx
				}
				if idx > hi {
					hi = idx
				}
			}
			for idx := range segsOf(fb) {
				if idx < lo {
					lo = idx
				}
				if idx > hi {
					hi = idx
				}
			}
			return lo, hi
		}
		lo0, hi0 := gap()
		if hi0-lo0 < 3 {
			t.Fatalf("setup failed: A and B already adjacent (%d..%d)", lo0, hi0)
		}
		// The analysis phase touches both sets: eject and demand-fetch.
		hl.FS.DropFileBuffers(p, fa.Inum())
		hl.FS.DropFileBuffers(p, fb.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, lfs.BlockSize)
		if _, err := fa.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if ra.Pending() < 2 {
			t.Fatalf("rearranger saw %d fetches, want >= 2", ra.Pending())
		}
		oldA, oldB := segsOf(fa), segsOf(fb)
		if n, err := ra.RunOnce(p); err != nil || n == 0 {
			t.Fatalf("rearranger ran %d segments, err %v", n, err)
		}
		lo1, hi1 := gap()
		if hi1-lo1 >= hi0-lo0 {
			t.Fatalf("rearrangement did not tighten clustering: span %d..%d -> %d..%d", lo0, hi0, lo1, hi1)
		}
		// Old copies are dead (only per-pseg summary-block residue may
		// remain; the whole-volume cleaner reclaims it).
		for idx := range oldA {
			if live := hl.FS.TsegUsage(idx).LiveBytes; live > 2*lfs.BlockSize {
				t.Fatalf("old segment %d of A still counted live (%d bytes)", idx, live)
			}
		}
		for idx := range oldB {
			if live := hl.FS.TsegUsage(idx).LiveBytes; live > 2*lfs.BlockSize {
				t.Fatalf("old segment %d of B still counted live (%d bytes)", idx, live)
			}
		}
		// Content intact through the rewrite.
		want := make([]byte, 14*lfs.BlockSize)
		for i := range want {
			want[i] = byte(1*13+i) ^ byte(i>>10)
		}
		got := make([]byte, len(want))
		if _, err := fa.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("setA corrupted by rearrangement")
		}
	})
	e.k.Stop()
}

// TestNamespaceHotStableCriterion exercises §5.3's secondary criterion:
// a unit of mostly-dormant files must still migrate when its single
// "hot" file is stable (recently read but long unmodified) — otherwise
// "the inactive files are polluting the active disk area".
func TestNamespaceHotStableCriterion(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		if err := hl.FS.Mkdir(p, "/unit"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			mkFile(t, p, hl, "/unit/dormant"+string(rune('0'+i)), 3, byte(i))
		}
		popular := mkFile(t, p, hl, "/unit/popular-image", 3, 9)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		// A day passes; the popular file keeps being READ (stable: never
		// modified) while everything else sleeps.
		p.Sleep(24 * time.Hour)
		buf := make([]byte, 10)
		if _, err := popular.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		// Without the secondary criterion the unit looks active.
		strict := NewNamespace()
		strict.IgnoreHotStable = false
		strict.MinAge = time.Hour
		cands, err := strict.Select(p, hl, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Unit == "/unit" {
				t.Fatalf("strict policy selected the hot unit: %+v", c)
			}
		}
		// With it, the stable popular file no longer pins the unit.
		lenient := NewNamespace()
		lenient.MinAge = time.Hour
		lenient.StableAge = time.Hour
		cands, err = lenient.Select(p, hl, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, c := range cands {
			if c.Unit == "/unit" {
				found++
			}
		}
		if found != 5 {
			t.Fatalf("hot-stable criterion selected %d of the unit's 5 files", found)
		}
	})
	e.k.Stop()
}
