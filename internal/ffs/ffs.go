// Package ffs implements the comparison baseline of §7: a Fast File
// System-style update-in-place file system with read and write clustering,
// "which coalesces adjacent block I/O operations for better performance".
//
// Layout: a superblock, a block-allocation bitmap, a fixed inode table,
// then data blocks. Each logical file block is assigned a disk location
// upon allocation and every subsequent operation is directed there (§3).
// The allocator prefers runs contiguous with the file's previous block so
// that sequential files can be read and written in 16-block (64 KB)
// clusters, mirroring the paper's FFS configuration ("maximum contiguous
// block count set to 16").
package ffs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dev"
	"repro/internal/sim"
)

// BlockSize is the file system block size (4096, as in §7.1).
const BlockSize = dev.BlockSize

// MaxContig is the clustering limit: 16 blocks = 64 KB transfers.
const MaxContig = 16

const (
	ndirect        = 12
	ptrsPerBlock   = BlockSize / 4
	inodeSize      = 128
	inodesPerBlock = BlockSize / inodeSize
	rootInum       = 1
	nilBlock       = ^uint32(0)
)

// Errors.
var (
	ErrNoSpace  = errors.New("ffs: no space")
	ErrNotFound = errors.New("ffs: no such file or directory")
	ErrExists   = errors.New("ffs: file exists")
	ErrNotDir   = errors.New("ffs: not a directory")
	ErrIsDir    = errors.New("ffs: is a directory")
	ErrNoInodes = errors.New("ffs: out of inodes")
)

// FileType distinguishes files and directories.
type FileType uint8

const (
	typeFree FileType = iota
	TypeFile
	TypeDir
)

type inode struct {
	inum   uint32
	typ    FileType
	size   uint64
	mtime  int64
	atime  int64
	direct [ndirect]uint32
	single uint32
	double uint32
}

// Options configures the file system.
type Options struct {
	MaxInodes   int // default 4096
	BufferBytes int // default 3.2 MB
	// UserCopyRate models the CPU cost (bytes/second) of copying read
	// data to user space. Zero disables it.
	UserCopyRate int64
}

// Stats counts device activity.
type Stats struct {
	DevReads, DevWrites     int64
	BytesRead, BytesWritten int64
	CacheHits, CacheMisses  int64
}

type bufKey struct {
	inum uint32
	lbn  int32
}

type buf struct {
	key        bufKey
	blk        uint32 // assigned disk block
	data       []byte
	dirty      bool
	prev, next *buf
}

// FS is a mounted FFS.
type FS struct {
	k    *sim.Kernel
	dev  dev.BlockDev
	opts Options
	lock *sim.Resource

	nblocks    int64
	bitmapBase uint32
	bitmapBlks uint32
	itabBase   uint32
	dataBase   uint32

	bitmap []uint64
	rotor  uint32
	nfree  int64

	inodes   map[uint32]*inode
	dirtyIno map[uint32]bool

	bufs             map[bufKey]*buf
	lastLbn          map[uint32]int32 // per-file last-read lbn (sequential detection)
	lruHead, lruTail *buf
	bufBytes         int

	stats Stats
}

// Format initializes an empty FFS on device and returns it mounted.
func Format(p *sim.Proc, device dev.BlockDev, opts Options) (*FS, error) {
	if opts.MaxInodes <= 0 {
		opts.MaxInodes = 4096
	}
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = 3200 * 1024
	}
	if min := 4 * MaxContig * BlockSize; opts.BufferBytes < min {
		opts.BufferBytes = min
	}
	fs := &FS{
		k:        p.Kernel(),
		dev:      device,
		opts:     opts,
		lock:     p.Kernel().NewResource("ffs.lock"),
		nblocks:  device.NumBlocks(),
		inodes:   make(map[uint32]*inode),
		dirtyIno: make(map[uint32]bool),
		bufs:     make(map[bufKey]*buf),
		lastLbn:  make(map[uint32]int32),
	}
	fs.bitmapBase = 1
	bits := uint32(fs.nblocks)
	fs.bitmapBlks = (bits + BlockSize*8 - 1) / (BlockSize * 8)
	fs.itabBase = fs.bitmapBase + fs.bitmapBlks
	itabBlks := uint32((opts.MaxInodes + inodesPerBlock - 1) / inodesPerBlock)
	fs.dataBase = fs.itabBase + itabBlks
	if int64(fs.dataBase) >= fs.nblocks {
		return nil, fmt.Errorf("ffs: device too small (%d blocks)", fs.nblocks)
	}
	fs.bitmap = make([]uint64, (fs.nblocks+63)/64)
	for b := uint32(0); b < fs.dataBase; b++ {
		fs.setUsed(b)
	}
	fs.nfree = fs.nblocks - int64(fs.dataBase)
	fs.rotor = fs.dataBase
	root := &inode{inum: rootInum, typ: TypeDir, mtime: fs.now(), single: nilBlock, double: nilBlock}
	for i := range root.direct {
		root.direct[i] = nilBlock
	}
	fs.inodes[rootInum] = root
	fs.dirtyIno[rootInum] = true
	if err := fs.Sync(p); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FS) now() int64 { return int64(fs.k.Now()) }

// Stats returns a snapshot of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// FreeBlocks reports unallocated data blocks.
func (fs *FS) FreeBlocks() int64 { return fs.nfree }

// --- allocation ---

func (fs *FS) used(b uint32) bool { return fs.bitmap[b/64]&(1<<(b%64)) != 0 }
func (fs *FS) setUsed(b uint32)   { fs.bitmap[b/64] |= 1 << (b % 64) }
func (fs *FS) setFree(b uint32)   { fs.bitmap[b/64] &^= 1 << (b % 64) }

// alloc finds a free block, preferring `hint` (contiguity with the file's
// previous block) and falling back to a rotor scan.
func (fs *FS) alloc(hint uint32) (uint32, error) {
	if fs.nfree == 0 {
		return 0, ErrNoSpace
	}
	if hint != nilBlock && int64(hint) < fs.nblocks && hint >= fs.dataBase && !fs.used(hint) {
		fs.setUsed(hint)
		fs.nfree--
		return hint, nil
	}
	n := uint32(fs.nblocks)
	for i := uint32(0); i < n; i++ {
		b := fs.rotor + i
		if b >= n {
			b = fs.dataBase + (b - n)
		}
		if b < fs.dataBase {
			continue
		}
		if !fs.used(b) {
			fs.setUsed(b)
			fs.nfree--
			fs.rotor = b + 1
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) free(b uint32) {
	if b == nilBlock || b < fs.dataBase {
		return
	}
	fs.setFree(b)
	fs.nfree++
}

// --- buffer cache ---

func (fs *FS) lruRemove(b *buf) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if fs.lruHead == b {
		fs.lruHead = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if fs.lruTail == b {
		fs.lruTail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (fs *FS) lruFront(b *buf) {
	if fs.lruHead == b {
		return
	}
	fs.lruRemove(b)
	b.next = fs.lruHead
	if fs.lruHead != nil {
		fs.lruHead.prev = b
	}
	fs.lruHead = b
	if fs.lruTail == nil {
		fs.lruTail = b
	}
}

func (fs *FS) evict(p *sim.Proc) error {
	for fs.bufBytes > fs.opts.BufferBytes {
		v := fs.lruTail
		for v != nil && v.dirty {
			v = v.prev
		}
		if v == nil {
			// Everything dirty: write back before evicting.
			if err := fs.flushLocked(p); err != nil {
				return err
			}
			continue
		}
		fs.dropBuf(v)
	}
	return nil
}

func (fs *FS) dropBuf(b *buf) {
	fs.lruRemove(b)
	delete(fs.bufs, b.key)
	fs.bufBytes -= BlockSize
}

func (fs *FS) insertBuf(key bufKey, blk uint32, data []byte, dirty bool) *buf {
	if old, ok := fs.bufs[key]; ok {
		fs.dropBuf(old)
	}
	b := &buf{key: key, blk: blk, data: data, dirty: dirty}
	fs.bufs[key] = b
	fs.bufBytes += BlockSize
	fs.lruFront(b)
	return b
}

// flushLocked writes back all dirty buffers, sorted by disk address and
// coalesced into up-to-MaxContig-block transfers (write clustering).
func (fs *FS) flushLocked(p *sim.Proc) error {
	var dirty []*buf
	for _, b := range fs.bufs {
		if b.dirty {
			dirty = append(dirty, b)
		}
	}
	sort.Slice(dirty, func(a, b int) bool { return dirty[a].blk < dirty[b].blk })
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && j-i < MaxContig && dirty[j].blk == dirty[j-1].blk+1 {
			j++
		}
		out := make([]byte, (j-i)*BlockSize)
		for k := i; k < j; k++ {
			copy(out[(k-i)*BlockSize:], dirty[k].data)
		}
		if err := fs.dev.WriteBlocks(p, int64(dirty[i].blk), out); err != nil {
			return err
		}
		fs.stats.DevWrites++
		fs.stats.BytesWritten += int64(len(out))
		for k := i; k < j; k++ {
			dirty[k].dirty = false
		}
		i = j
	}
	return fs.syncMeta(p)
}

// syncMeta writes dirty inodes and the whole bitmap (simplified: the
// bitmap region is small and written sequentially).
func (fs *FS) syncMeta(p *sim.Proc) error {
	if len(fs.dirtyIno) == 0 {
		return nil
	}
	// Group dirty inodes by inode-table block.
	byBlk := map[uint32][]uint32{}
	for inum := range fs.dirtyIno {
		byBlk[inum/inodesPerBlock] = append(byBlk[inum/inodesPerBlock], inum)
	}
	blk := make([]byte, BlockSize)
	for tb, inums := range byBlk {
		at := int64(fs.itabBase + tb)
		if err := fs.dev.ReadBlocks(p, at, blk); err != nil {
			return err
		}
		fs.stats.DevReads++
		for _, inum := range inums {
			ino := fs.inodes[inum]
			off := int(inum%inodesPerBlock) * inodeSize
			if ino == nil {
				for i := 0; i < inodeSize; i++ {
					blk[off+i] = 0
				}
				continue
			}
			encodeInode(ino, blk[off:])
		}
		if err := fs.dev.WriteBlocks(p, at, blk); err != nil {
			return err
		}
		fs.stats.DevWrites++
	}
	fs.dirtyIno = make(map[uint32]bool)
	// Bitmap writeback.
	bm := make([]byte, int(fs.bitmapBlks)*BlockSize)
	for i, w := range fs.bitmap {
		if (i+1)*8 <= len(bm) {
			binary.LittleEndian.PutUint64(bm[i*8:], w)
		}
	}
	if err := fs.dev.WriteBlocks(p, int64(fs.bitmapBase), bm); err != nil {
		return err
	}
	fs.stats.DevWrites++
	return nil
}

func encodeInode(ino *inode, b []byte) {
	binary.LittleEndian.PutUint32(b[0:], ino.inum)
	b[4] = byte(ino.typ)
	binary.LittleEndian.PutUint64(b[8:], ino.size)
	binary.LittleEndian.PutUint64(b[16:], uint64(ino.mtime))
	binary.LittleEndian.PutUint64(b[24:], uint64(ino.atime))
	off := 32
	for i := 0; i < ndirect; i++ {
		binary.LittleEndian.PutUint32(b[off:], ino.direct[i])
		off += 4
	}
	binary.LittleEndian.PutUint32(b[off:], ino.single)
	binary.LittleEndian.PutUint32(b[off+4:], ino.double)
}

func decodeInode(b []byte) *inode {
	ino := &inode{}
	ino.inum = binary.LittleEndian.Uint32(b[0:])
	ino.typ = FileType(b[4])
	ino.size = binary.LittleEndian.Uint64(b[8:])
	ino.mtime = int64(binary.LittleEndian.Uint64(b[16:]))
	ino.atime = int64(binary.LittleEndian.Uint64(b[24:]))
	off := 32
	for i := 0; i < ndirect; i++ {
		ino.direct[i] = binary.LittleEndian.Uint32(b[off:])
		off += 4
	}
	ino.single = binary.LittleEndian.Uint32(b[off:])
	ino.double = binary.LittleEndian.Uint32(b[off+4:])
	return ino
}

// iget loads an inode from the table.
func (fs *FS) iget(p *sim.Proc, inum uint32) (*inode, error) {
	if ino, ok := fs.inodes[inum]; ok {
		return ino, nil
	}
	if int(inum) >= fs.opts.MaxInodes {
		return nil, ErrNotFound
	}
	blk := make([]byte, BlockSize)
	if err := fs.dev.ReadBlocks(p, int64(fs.itabBase+inum/inodesPerBlock), blk); err != nil {
		return nil, err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += BlockSize
	ino := decodeInode(blk[int(inum%inodesPerBlock)*inodeSize:])
	if ino.inum != inum || ino.typ == typeFree {
		return nil, ErrNotFound
	}
	fs.inodes[inum] = ino
	return ino, nil
}

// iallocProbe allocates the first free inode at or after start. FFS
// instances live for one simulation session (no remount support — the
// paper's benchmarks never remount the baseline), so the in-memory table
// is authoritative.
func (fs *FS) iallocProbe(start uint32, typ FileType) (*inode, error) {
	for inum := start; int(inum) < fs.opts.MaxInodes; inum++ {
		if _, loaded := fs.inodes[inum]; loaded {
			continue
		}
		ino := &inode{inum: inum, typ: typ, mtime: fs.now(), atime: fs.now(), single: nilBlock, double: nilBlock}
		for i := range ino.direct {
			ino.direct[i] = nilBlock
		}
		fs.inodes[inum] = ino
		fs.dirtyIno[inum] = true
		return ino, nil
	}
	return nil, ErrNoInodes
}

// --- block mapping ---

// bmap resolves (and with allocate, assigns) the disk block of lbn. FFS
// assigns each logical block a location upon allocation (§3).
func (fs *FS) bmap(p *sim.Proc, ino *inode, lbn int32, allocate bool) (uint32, error) {
	hintFrom := func(prev uint32) uint32 {
		if prev == nilBlock {
			return nilBlock
		}
		return prev + 1
	}
	if lbn < ndirect {
		b := ino.direct[lbn]
		if b == nilBlock && allocate {
			hint := nilBlock
			if lbn > 0 {
				hint = hintFrom(ino.direct[lbn-1])
			}
			nb, err := fs.alloc(hint)
			if err != nil {
				return nilBlock, err
			}
			ino.direct[lbn] = nb
			fs.dirtyIno[ino.inum] = true
			return nb, nil
		}
		return b, nil
	}
	// Indirect chains: load (or allocate) the indirect block(s).
	l := int(lbn) - ndirect
	if l < ptrsPerBlock {
		ib, err := fs.metaBlock(p, ino, &ino.single, -1)
		if err != nil || ib == nil {
			if !allocate || err != nil {
				return nilBlock, err
			}
			nb, err := fs.alloc(nilBlock)
			if err != nil {
				return nilBlock, err
			}
			ino.single = nb
			fs.dirtyIno[ino.inum] = true
			ib = fs.insertBuf(bufKey{ino.inum, -1}, nb, make([]byte, BlockSize), true)
		}
		return fs.ptrAt(ib, l, allocate)
	}
	l -= ptrsPerBlock
	child := int32(l / ptrsPerBlock)
	root, err := fs.metaBlock(p, ino, &ino.double, -2)
	if err != nil {
		return nilBlock, err
	}
	if root == nil {
		if !allocate {
			return nilBlock, nil
		}
		nb, err := fs.alloc(nilBlock)
		if err != nil {
			return nilBlock, err
		}
		ino.double = nb
		fs.dirtyIno[ino.inum] = true
		root = fs.insertBuf(bufKey{ino.inum, -2}, nb, make([]byte, BlockSize), true)
	}
	childBlk := binary.LittleEndian.Uint32(root.data[child*4:])
	var cb *buf
	if childBlk == 0 || childBlk == nilBlock {
		if !allocate {
			return nilBlock, nil
		}
		nb, err := fs.alloc(nilBlock)
		if err != nil {
			return nilBlock, err
		}
		binary.LittleEndian.PutUint32(root.data[child*4:], nb)
		root.dirty = true
		cb = fs.insertBuf(bufKey{ino.inum, -3 - child}, nb, make([]byte, BlockSize), true)
	} else {
		cb, err = fs.metaBlockAt(p, ino, childBlk, -3-child)
		if err != nil {
			return nilBlock, err
		}
	}
	return fs.ptrAt(cb, l%ptrsPerBlock, allocate)
}

// ptrAt reads or allocates the pointer at slot of a meta buffer.
func (fs *FS) ptrAt(b *buf, slot int, allocate bool) (uint32, error) {
	v := binary.LittleEndian.Uint32(b.data[slot*4:])
	if v == 0 {
		v = nilBlock
	}
	if v == nilBlock && allocate {
		hint := nilBlock
		if slot > 0 {
			if prev := binary.LittleEndian.Uint32(b.data[(slot-1)*4:]); prev != 0 && prev != nilBlock {
				hint = prev + 1
			}
		}
		nb, err := fs.alloc(hint)
		if err != nil {
			return nilBlock, err
		}
		binary.LittleEndian.PutUint32(b.data[slot*4:], nb)
		b.dirty = true
		return nb, nil
	}
	return v, nil
}

func (fs *FS) metaBlock(p *sim.Proc, ino *inode, field *uint32, key int32) (*buf, error) {
	if b, ok := fs.bufs[bufKey{ino.inum, key}]; ok {
		fs.lruFront(b)
		return b, nil
	}
	if *field == nilBlock || *field == 0 {
		return nil, nil
	}
	return fs.metaBlockAt(p, ino, *field, key)
}

// bmapCached resolves a data block's disk address using only cached
// metadata; ok is false when an uncached indirect block would be needed.
func (fs *FS) bmapCached(ino *inode, lbn int32) (uint32, bool) {
	if lbn < ndirect {
		return ino.direct[lbn], true
	}
	l := int(lbn) - ndirect
	if l < ptrsPerBlock {
		b, ok := fs.bufs[bufKey{ino.inum, -1}]
		if !ok {
			return nilBlock, false
		}
		v := binary.LittleEndian.Uint32(b.data[l*4:])
		if v == 0 {
			v = nilBlock
		}
		return v, true
	}
	l -= ptrsPerBlock
	child := int32(l / ptrsPerBlock)
	cb, ok := fs.bufs[bufKey{ino.inum, -3 - child}]
	if !ok {
		return nilBlock, false
	}
	v := binary.LittleEndian.Uint32(cb.data[(l%ptrsPerBlock)*4:])
	if v == 0 {
		v = nilBlock
	}
	return v, true
}

func (fs *FS) metaBlockAt(p *sim.Proc, ino *inode, blk uint32, key int32) (*buf, error) {
	if b, ok := fs.bufs[bufKey{ino.inum, key}]; ok {
		fs.lruFront(b)
		return b, nil
	}
	data := make([]byte, BlockSize)
	if err := fs.dev.ReadBlocks(p, int64(blk), data); err != nil {
		return nil, err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += BlockSize
	return fs.insertBuf(bufKey{ino.inum, key}, blk, data, false), nil
}
