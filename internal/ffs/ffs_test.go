package ffs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/dev"
	"repro/internal/sim"
)

type env struct {
	k    *sim.Kernel
	disk *dev.Disk
	fs   *FS
}

func newEnv(t *testing.T, blocks int64) *env {
	t.Helper()
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, blocks, nil)
	e := &env{k: k, disk: disk}
	k.RunProc(func(p *sim.Proc) {
		fs, err := Format(p, disk, Options{MaxInodes: 256})
		if err != nil {
			t.Fatal(err)
		}
		e.fs = fs
	})
	return e
}

func (e *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e.k.RunProc(fn)
}

func pat(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(tag)*41+i) ^ byte(i>>7)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/a")
		if err != nil {
			t.Fatal(err)
		}
		data := pat(1, 10*BlockSize+100)
		if _, err := f.WriteAt(p, data, 0); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip failed")
		}
	})
}

func TestLargeFileIndirect(t *testing.T) {
	e := newEnv(t, 3000)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/big")
		if err != nil {
			t.Fatal(err)
		}
		data := pat(2, (ndirect+ptrsPerBlock+40)*BlockSize) // into double indirect
		if _, err := f.WriteAt(p, data, 0); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("indirect file corrupted")
		}
	})
}

func TestSequentialAllocationIsContiguous(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/seq")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, pat(3, 12*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		ino := e.fs.inodes[f.Inum()]
		for i := 1; i < 12; i++ {
			if ino.direct[i] != ino.direct[i-1]+1 {
				t.Fatalf("blocks %d,%d not contiguous: %d %d", i-1, i, ino.direct[i-1], ino.direct[i])
			}
		}
	})
}

func TestClusteredReadsFewerDeviceOps(t *testing.T) {
	e := newEnv(t, 8192)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/c")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, pat(4, 64*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		before := e.fs.Stats().DevReads
		buf := make([]byte, 64*BlockSize)
		if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		reads := e.fs.Stats().DevReads - before
		// 64 contiguous blocks with 16-block clustering: ~4-5 data reads
		// (plus metadata).
		if reads > 8 {
			t.Fatalf("sequential 64-block read used %d device reads; clustering broken", reads)
		}
	})
}

func TestOverwriteInPlace(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, pat(5, 8*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		before := e.fs.inodes[f.Inum()].direct[3]
		if _, err := f.WriteAt(p, pat(6, BlockSize), 3*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		after := e.fs.inodes[f.Inum()].direct[3]
		if before != after {
			t.Fatalf("FFS must overwrite in place: block moved %d -> %d", before, after)
		}
	})
}

func TestDirectoriesAndErrors(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create(p, "/d/x"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/d/x"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/d/y"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		if _, err := fs.Create(p, "/d/x"); !errors.Is(err, ErrExists) {
			t.Fatalf("want ErrExists, got %v", err)
		}
		if _, err := fs.Open(p, "/d"); !errors.Is(err, ErrIsDir) {
			t.Fatalf("want ErrIsDir, got %v", err)
		}
		fi, err := fs.Stat(p, "/d/x")
		if err != nil || fi.Type != TypeFile {
			t.Fatalf("stat: %+v %v", fi, err)
		}
	})
}

func TestRemoveFreesBlocks(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		free0 := fs.FreeBlocks()
		f, err := fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, pat(7, 20*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		if fs.FreeBlocks() >= free0 {
			t.Fatal("write did not consume blocks")
		}
		if err := fs.Remove(p, "/f"); err != nil {
			t.Fatal(err)
		}
		// Allow a couple of blocks of directory slack.
		if fs.FreeBlocks() < free0-2 {
			t.Fatalf("remove did not free blocks: %d -> %d", free0, fs.FreeBlocks())
		}
		if _, err := fs.Open(p, "/f"); !errors.Is(err, ErrNotFound) {
			t.Fatal("removed file still opens")
		}
	})
}

func TestNoSpace(t *testing.T) {
	e := newEnv(t, 256)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		var lastErr error
		for i := 0; i < 300 && lastErr == nil; i++ {
			_, lastErr = f.WriteAt(p, pat(byte(i), BlockSize), int64(i)*BlockSize)
		}
		if !errors.Is(lastErr, ErrNoSpace) {
			t.Fatalf("want ErrNoSpace, got %v", lastErr)
		}
	})
}

func TestSparseReadZeros(t *testing.T) {
	e := newEnv(t, 4096)
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/s")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, []byte{42}, 10*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, BlockSize)
		if _, err := f.ReadAt(p, buf, 2*BlockSize); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("hole not zero")
			}
		}
	})
}
