package ffs

import (
	"io"
	"strings"

	"repro/internal/sim"
)

// File is an open FFS file handle.
type File struct {
	fs   *FS
	inum uint32
}

// FileInfo describes a file.
type FileInfo struct {
	Inum  uint32
	Type  FileType
	Size  uint64
	Mtime int64
	Atime int64
}

// Inum reports the file's inode number.
func (f *File) Inum() uint32 { return f.inum }

// Size reports the file size.
func (f *File) Size(p *sim.Proc) (uint64, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	ino, err := f.fs.iget(p, f.inum)
	if err != nil {
		return 0, err
	}
	return ino.size, nil
}

// ReadAt reads with 64 KB read clustering.
func (f *File) ReadAt(p *sim.Proc, b []byte, off int64) (int, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	return f.fs.readAt(p, f.inum, b, off)
}

func (fs *FS) readAt(p *sim.Proc, inum uint32, b []byte, off int64) (int, error) {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return 0, err
	}
	if off < 0 || uint64(off) >= ino.size {
		return 0, io.EOF
	}
	n := len(b)
	eof := false
	if uint64(off)+uint64(n) > ino.size {
		n = int(ino.size - uint64(off))
		eof = true
	}
	ino.atime = fs.now()
	firstLbn := int32(off / BlockSize)
	reqEnd := int32((off+int64(n)-1)/BlockSize) + 1
	lastL, okLast := fs.lastLbn[inum]
	seq := firstLbn == 0 || (okLast && lastL == firstLbn-1)
	read := 0
	for read < n {
		lbn := int32((off + int64(read)) / BlockSize)
		blkOff := int((off + int64(read)) % BlockSize)
		want := BlockSize - blkOff
		if want > n-read {
			want = n - read
		}
		bf, ok := fs.bufs[bufKey{inum, lbn}]
		if ok {
			fs.lruFront(bf)
			fs.stats.CacheHits++
		} else {
			fs.stats.CacheMisses++
			if err := fs.fillCluster(p, ino, lbn, reqEnd, seq); err != nil {
				return read, err
			}
			bf = fs.bufs[bufKey{inum, lbn}]
		}
		copy(b[read:read+want], bf.data[blkOff:blkOff+want])
		read += want
	}
	fs.lastLbn[inum] = reqEnd - 1
	if fs.opts.UserCopyRate > 0 && read > 0 {
		p.Sleep(sim.Time(float64(read) / float64(fs.opts.UserCopyRate) * 1e9))
	}
	if eof {
		return read, io.EOF
	}
	return read, nil
}

// fillCluster reads lbn plus following blocks whose disk addresses are
// contiguous: the rest of the request, plus read-ahead to a full
// MaxContig cluster on sequentially accessed files. Extension consults
// only cached metadata.
func (fs *FS) fillCluster(p *sim.Proc, ino *inode, lbn, reqEnd int32, seq bool) error {
	start, err := fs.bmap(p, ino, lbn, false)
	if err != nil {
		return err
	}
	if start == nilBlock {
		fs.insertBuf(bufKey{ino.inum, lbn}, nilBlock, make([]byte, BlockSize), false)
		return nil
	}
	fileEnd := int32((ino.size + BlockSize - 1) / BlockSize)
	limit := reqEnd - lbn
	if seq && limit < MaxContig {
		limit = MaxContig
	}
	if limit > MaxContig {
		limit = MaxContig
	}
	if lbn+limit > fileEnd {
		limit = fileEnd - lbn
	}
	count := int32(1)
	for count < limit {
		if _, ok := fs.bufs[bufKey{ino.inum, lbn + count}]; ok {
			break
		}
		nb, ok := fs.bmapCached(ino, lbn+count)
		if !ok || nb != start+uint32(count) {
			break
		}
		count++
	}
	data := make([]byte, int(count)*BlockSize)
	if err := fs.dev.ReadBlocks(p, int64(start), data); err != nil {
		return err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += int64(len(data))
	for i := int32(0); i < count; i++ {
		blk := make([]byte, BlockSize)
		copy(blk, data[int(i)*BlockSize:])
		fs.insertBuf(bufKey{ino.inum, lbn + i}, start+uint32(i), blk, false)
	}
	return fs.evict(p)
}

// WriteAt writes in place: each block is directed to its assigned
// location; dirty data drains through the clustering write-back.
func (f *File) WriteAt(p *sim.Proc, b []byte, off int64) (int, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	return f.fs.writeAt(p, f.inum, b, off)
}

func (fs *FS) writeAt(p *sim.Proc, inum uint32, b []byte, off int64) (int, error) {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return 0, err
	}
	written := 0
	for written < len(b) {
		lbn := int32((off + int64(written)) / BlockSize)
		blkOff := int((off + int64(written)) % BlockSize)
		want := BlockSize - blkOff
		if want > len(b)-written {
			want = len(b) - written
		}
		blk, err := fs.bmap(p, ino, lbn, true)
		if err != nil {
			return written, err
		}
		bf, ok := fs.bufs[bufKey{inum, lbn}]
		if !ok {
			var data []byte
			if blkOff == 0 && want == BlockSize {
				data = make([]byte, BlockSize)
			} else if uint64(lbn)*BlockSize < ino.size {
				data = make([]byte, BlockSize)
				if err := fs.dev.ReadBlocks(p, int64(blk), data); err != nil {
					return written, err
				}
				fs.stats.DevReads++
				fs.stats.BytesRead += BlockSize
			} else {
				data = make([]byte, BlockSize)
			}
			bf = fs.insertBuf(bufKey{inum, lbn}, blk, data, false)
		}
		bf.blk = blk
		copy(bf.data[blkOff:blkOff+want], b[written:written+want])
		bf.dirty = true
		written += want
	}
	if uint64(off)+uint64(written) > ino.size {
		ino.size = uint64(off) + uint64(written)
	}
	ino.mtime = fs.now()
	fs.dirtyIno[inum] = true
	if err := fs.evict(p); err != nil {
		return written, err
	}
	return written, nil
}

// Sync writes back all dirty data and metadata.
func (fs *FS) Sync(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	return fs.flushLocked(p)
}

// FlushCaches writes back dirty state and drops the caches (cold-read
// benchmarks).
func (fs *FS) FlushCaches(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if err := fs.flushLocked(p); err != nil {
		return err
	}
	fs.bufs = make(map[bufKey]*buf)
	fs.lruHead, fs.lruTail = nil, nil
	fs.bufBytes = 0
	fs.inodes = make(map[uint32]*inode)
	fs.lastLbn = make(map[uint32]int32)
	return nil
}

// --- directories (same packed record format as the LFS implementation) ---

// Dirent is one directory entry.
type Dirent struct {
	Inum uint32
	Type FileType
	Name string
}

func (fs *FS) readDir(p *sim.Proc, ino *inode) ([]Dirent, error) {
	if ino.size == 0 {
		return nil, nil
	}
	data := make([]byte, ino.size)
	if _, err := fs.readAt(p, ino.inum, data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	var ents []Dirent
	for off := 0; off+6 <= len(data); {
		inum := uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
		if inum == 0 {
			break
		}
		typ := FileType(data[off+4])
		nl := int(data[off+5])
		ents = append(ents, Dirent{Inum: inum, Type: typ, Name: string(data[off+6 : off+6+nl])})
		off += 6 + nl
	}
	return ents, nil
}

func (fs *FS) writeDir(p *sim.Proc, ino *inode, ents []Dirent) error {
	var out []byte
	for _, e := range ents {
		hdr := []byte{byte(e.Inum), byte(e.Inum >> 8), byte(e.Inum >> 16), byte(e.Inum >> 24), byte(e.Type), byte(len(e.Name))}
		out = append(out, hdr...)
		out = append(out, e.Name...)
	}
	out = append(out, 0, 0, 0, 0, 0, 0)
	if _, err := fs.writeAt(p, ino.inum, out, 0); err != nil {
		return err
	}
	ino.size = uint64(len(out))
	fs.dirtyIno[ino.inum] = true
	return nil
}

func splitPath(path string) []string {
	var parts []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			parts = append(parts, c)
		}
	}
	return parts
}

func (fs *FS) resolve(p *sim.Proc, path string) (uint32, error) {
	cur := uint32(rootInum)
	for _, name := range splitPath(path) {
		ino, err := fs.iget(p, cur)
		if err != nil {
			return 0, err
		}
		if ino.typ != TypeDir {
			return 0, ErrNotDir
		}
		ents, err := fs.readDir(p, ino)
		if err != nil {
			return 0, err
		}
		found := false
		for _, e := range ents {
			if e.Name == name {
				cur = e.Inum
				found = true
				break
			}
		}
		if !found {
			return 0, ErrNotFound
		}
	}
	return cur, nil
}

func (fs *FS) resolveParent(p *sim.Proc, path string) (*inode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", ErrExists
	}
	dirInum := uint32(rootInum)
	if len(parts) > 1 {
		var err error
		dirInum, err = fs.resolve(p, strings.Join(parts[:len(parts)-1], "/"))
		if err != nil {
			return nil, "", err
		}
	}
	ino, err := fs.iget(p, dirInum)
	if err != nil {
		return nil, "", err
	}
	if ino.typ != TypeDir {
		return nil, "", ErrNotDir
	}
	return ino, parts[len(parts)-1], nil
}

// Create makes a new empty file.
func (fs *FS) Create(p *sim.Proc, path string) (*File, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParent(p, path)
	if err != nil {
		return nil, err
	}
	ents, err := fs.readDir(p, dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.Name == name {
			return nil, ErrExists
		}
	}
	ino, err := fs.iallocProbe(rootInum+1, TypeFile)
	if err != nil {
		return nil, err
	}
	ents = append(ents, Dirent{Inum: ino.inum, Type: TypeFile, Name: name})
	if err := fs.writeDir(p, dir, ents); err != nil {
		return nil, err
	}
	return &File{fs: fs, inum: ino.inum}, nil
}

// Open opens an existing file.
func (fs *FS) Open(p *sim.Proc, path string) (*File, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolve(p, path)
	if err != nil {
		return nil, err
	}
	ino, err := fs.iget(p, inum)
	if err != nil {
		return nil, err
	}
	if ino.typ == TypeDir {
		return nil, ErrIsDir
	}
	return &File{fs: fs, inum: inum}, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParent(p, path)
	if err != nil {
		return err
	}
	ents, err := fs.readDir(p, dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Name == name {
			return ErrExists
		}
	}
	ino, err := fs.iallocProbe(rootInum+1, TypeDir)
	if err != nil {
		return err
	}
	ents = append(ents, Dirent{Inum: ino.inum, Type: TypeDir, Name: name})
	return fs.writeDir(p, dir, ents)
}

// Remove deletes a file, freeing its blocks.
func (fs *FS) Remove(p *sim.Proc, path string) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParent(p, path)
	if err != nil {
		return err
	}
	ents, err := fs.readDir(p, dir)
	if err != nil {
		return err
	}
	var victim *Dirent
	out := ents[:0]
	for i := range ents {
		if ents[i].Name == name {
			victim = &ents[i]
		} else {
			out = append(out, ents[i])
		}
	}
	if victim == nil {
		return ErrNotFound
	}
	ino, err := fs.iget(p, victim.Inum)
	if err != nil {
		return err
	}
	// Free all blocks.
	nb := int32((ino.size + BlockSize - 1) / BlockSize)
	for lbn := int32(0); lbn < nb; lbn++ {
		b, err := fs.bmap(p, ino, lbn, false)
		if err == nil && b != nilBlock {
			fs.free(b)
		}
		if bf, ok := fs.bufs[bufKey{ino.inum, lbn}]; ok {
			bf.dirty = false
			fs.dropBuf(bf)
		}
	}
	if ino.single != nilBlock && ino.single != 0 {
		fs.free(ino.single)
	}
	if ino.double != nilBlock && ino.double != 0 {
		fs.free(ino.double)
		if root, ok := fs.bufs[bufKey{ino.inum, -2}]; ok {
			for i := 0; i < ptrsPerBlock; i++ {
				if v := uint32(root.data[i*4]) | uint32(root.data[i*4+1])<<8 | uint32(root.data[i*4+2])<<16 | uint32(root.data[i*4+3])<<24; v != 0 && v != nilBlock {
					fs.free(v)
				}
			}
		}
	}
	for k := int32(-3) - ptrsPerBlock; k <= -1; k++ {
		if bf, ok := fs.bufs[bufKey{ino.inum, k}]; ok {
			bf.dirty = false
			fs.dropBuf(bf)
		}
	}
	delete(fs.inodes, victim.Inum)
	fs.dirtyIno[victim.Inum] = true // zeroed on next sync
	if err := fs.writeDir(p, dir, out); err != nil {
		return err
	}
	return nil
}

// Stat describes the file at path.
func (fs *FS) Stat(p *sim.Proc, path string) (FileInfo, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolve(p, path)
	if err != nil {
		return FileInfo{}, err
	}
	ino, err := fs.iget(p, inum)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Inum: inum, Type: ino.typ, Size: ino.size, Mtime: ino.mtime, Atime: ino.atime}, nil
}
