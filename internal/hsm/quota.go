package hsm

import (
	"fmt"
	"sort"

	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Quota bounds one principal's use of the staged tier. Zero fields are
// unlimited. StagedSoft is the GC watermark: usage above it makes the
// principal's least-hot unpinned staged data eligible for reclaim.
// StagedHard and PinnedHard are admission limits: a StageIn or Pin
// projected past them is shed with ErrQuotaExceeded.
type Quota struct {
	StagedSoft int64
	StagedHard int64
	PinnedHard int64
}

// SetQuota installs (or, with a zero Quota, removes) the limits for one
// principal and persists the change.
func (s *Service) SetQuota(p *sim.Proc, principal string, q Quota) error {
	if q == (Quota{}) {
		delete(s.quotas, principal)
	} else {
		s.quotas[principal] = q
	}
	return s.save(p)
}

// QuotaOf reports the principal's limits (zero = unlimited).
func (s *Service) QuotaOf(principal string) Quota { return s.quotas[principal] }

// Principals lists every principal with a quota or any usage, sorted.
func (s *Service) Principals() []string {
	seen := make(map[string]bool)
	for pr := range s.quotas {
		seen[pr] = true
	}
	for _, pin := range s.pins {
		seen[pin.Principal] = true
	}
	for _, st := range s.staged {
		seen[st.Principal] = true
	}
	out := make([]string, 0, len(seen))
	for pr := range seen {
		out = append(out, pr)
	}
	sort.Strings(out)
	return out
}

// UsageOf reports the principal's current staged and pinned byte usage.
func (s *Service) UsageOf(principal string) (staged, pinned int64) {
	for _, st := range s.staged {
		if st.Principal == principal {
			staged += st.Bytes
		}
	}
	for _, pin := range s.pins {
		if pin.Principal == principal {
			pinned += pin.Bytes
		}
	}
	return staged, pinned
}

// RunQuotaGC reclaims staged data from principals over their soft limits:
// for each (in sorted order), the least-hot unpinned staged entries are
// ejected from the segment cache until the principal is back under the
// watermark. Pinned entries and busy lines are never touched. Returns the
// bytes reclaimed; every reclaim is audited.
func (s *Service) RunQuotaGC(p *sim.Proc) (int64, error) {
	var total int64
	now := p.Now()
	for _, principal := range s.Principals() {
		q := s.quotas[principal]
		if q.StagedSoft <= 0 {
			continue
		}
		staged, _ := s.UsageOf(principal)
		if staged <= q.StagedSoft {
			continue
		}
		// Collect the principal's unpinned staged entries, coldest first
		// (heat = hottest segment of the entry, decayed to now; ties
		// break on path so the order is deterministic).
		type cand struct {
			st   *Staged
			heat float64
		}
		var cands []cand
		for _, path := range sortedKeys(s.staged) {
			st := s.staged[path]
			if st.Principal != principal {
				continue
			}
			if _, pinned := s.pins[path]; pinned {
				continue
			}
			var h float64
			for _, seg := range st.Segs {
				if sh := s.HL.Heat.Heat(seg, now); sh > h {
					h = sh
				}
			}
			cands = append(cands, cand{st, h})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].heat != cands[b].heat {
				return cands[a].heat < cands[b].heat
			}
			return cands[a].st.Path < cands[b].st.Path
		})
		for _, c := range cands {
			if staged <= q.StagedSoft {
				break
			}
			var reclaimed int64
			for _, tag := range c.st.Segs {
				l, ok := s.HL.Cache.Peek(tag)
				if !ok {
					continue
				}
				if l.Staging || l.Pins > 0 || s.HL.SegmentPinned(tag) {
					continue
				}
				if err := s.HL.Svc.Eject(tag); err != nil {
					return total, fmt.Errorf("hsm: quota GC ejecting segment %d: %w", tag, err)
				}
				reclaimed += s.segBytes()
			}
			staged -= c.st.Bytes
			total += c.st.Bytes
			s.reclaimed.Add(c.st.Bytes)
			delete(s.staged, c.st.Path)
			s.HL.Audit.Record(attr.Decision{
				T: now, Actor: "hsm-gc", Subject: "principal:" + principal,
				Seg: -1, Verdict: attr.VerdictReclaimed, Reason: c.st.Path,
				Inputs: []attr.Input{
					attr.In("bytes", float64(c.st.Bytes)),
					attr.In("heat", c.heat),
					attr.In("over_by", float64(staged + c.st.Bytes - q.StagedSoft)),
					attr.In("ejected", float64(reclaimed)),
				},
			})
		}
	}
	if total > 0 {
		s.updateGauges()
		if err := s.save(p); err != nil {
			return total, err
		}
	}
	return total, nil
}

// StartGCDaemon starts the quota-GC daemon: a periodic virtual-time pass
// over every principal's soft limit.
func (s *Service) StartGCDaemon(every sim.Time) {
	s.HL.K.GoDaemon("hsm-gc", func(p *sim.Proc) {
		for {
			p.Sleep(every)
			if _, err := s.RunQuotaGC(p); err != nil {
				s.HL.Obs.Instant("hsm", "hsm.gc", "gc error")
			}
		}
	})
}
