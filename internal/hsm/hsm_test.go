package hsm_test

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/hsm"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/wl"
)

// rig builds a single-library HighLight instance with a small segment
// cache, so eviction pressure is easy to provoke in pin-guard tests.
func rig(t *testing.T, p *sim.Proc, k *sim.Kernel) (*core.HighLight, *dev.Disk, *jukebox.Jukebox) {
	t.Helper()
	hl, disk, jb, err := buildRig(p, k)
	if err != nil {
		t.Fatal(err)
	}
	return hl, disk, jb
}

func buildRig(p *sim.Proc, k *sim.Kernel) (*core.HighLight, *dev.Disk, *jukebox.Jukebox, error) {
	disk := dev.NewDisk(k, dev.RZ57, 256*64, nil)
	jb := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
	hl, err := core.New(p, core.Config{
		SegBlocks:   64,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{jb},
		CacheSegs:   8,
		MaxInodes:   256,
		BufferBytes: 64 * lfs.BlockSize,
	}, true)
	return hl, disk, jb, err
}

// migrateAndEject creates path with nblocks deterministic blocks, migrates
// it to tertiary, and drops every cache line so stage-ins must fetch.
func migrateAndEject(t *testing.T, p *sim.Proc, hl *core.HighLight, path string, nblocks int) []byte {
	t.Helper()
	data, err := makeTertiaryFile(p, hl, path, nblocks)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func makeTertiaryFile(p *sim.Proc, hl *core.HighLight, path string, nblocks int) ([]byte, error) {
	f, err := hl.FS.Create(p, path)
	if err != nil {
		return nil, err
	}
	data := make([]byte, nblocks*lfs.BlockSize)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		return nil, err
	}
	if err := hl.FS.Sync(p); err != nil {
		return nil, err
	}
	if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
		return nil, err
	}
	if err := hl.CompleteMigration(p); err != nil {
		return nil, err
	}
	return data, ejectEverything(hl)
}

func ejectEverything(hl *core.HighLight) error {
	for _, l := range hl.Cache.Lines() {
		if !l.Staging && l.Pins == 0 && !hl.SegmentPinned(l.Tag) {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				return err
			}
		}
	}
	return nil
}

func auditVerdicts(hl *core.HighLight) map[string]int {
	out := map[string]int{}
	for _, d := range hl.Audit.All() {
		out[d.Verdict]++
	}
	return out
}

func attach(t *testing.T, p *sim.Proc, hl *core.HighLight, cfg hsm.Config) *hsm.Service {
	t.Helper()
	s, err := hsm.Attach(p, hl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStageInPinUnpinLifecycle walks requests through the full service
// surface: stage-in caches and attributes the file's tertiary segments,
// pin makes them immovable (evict refused with the typed guard sentinel,
// stage-out refused), unpin releases them, and every transition is
// audited.
func TestStageInPinUnpinLifecycle(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		migrateAndEject(t, p, hl, "/a", 8)
		want := migrateAndEject(t, p, hl, "/b", 8)
		s := attach(t, p, hl, hsm.Config{})

		r, err := s.SubmitWait(p, hsm.OpStageIn, "/a", "alice")
		if err != nil {
			t.Fatalf("stage-in: %v", err)
		}
		if r.State != hsm.Done || r.Bytes != 8*lfs.BlockSize {
			t.Fatalf("stage-in request: state=%v bytes=%d", r.State, r.Bytes)
		}
		staged := s.StagedEntries()
		if len(staged) != 1 || staged[0].Path != "/a" || staged[0].Principal != "alice" {
			t.Fatalf("staged entries: %+v", staged)
		}
		for _, tag := range staged[0].Segs {
			if _, ok := hl.Cache.Peek(tag); !ok {
				t.Fatalf("staged segment %d not cached", tag)
			}
		}

		if _, err := s.SubmitWait(p, hsm.OpPin, "/b", "alice"); err != nil {
			t.Fatalf("pin: %v", err)
		}
		pins := s.Pins()
		if len(pins) != 1 || pins[0].Path != "/b" || len(pins[0].Segs) == 0 {
			t.Fatalf("pins: %+v", pins)
		}
		for _, tag := range pins[0].Segs {
			if !hl.SegmentPinned(tag) || !hl.FS.TsegPinned(tag) {
				t.Fatalf("segment %d not pinned end-to-end", tag)
			}
			if err := hl.Svc.Eject(tag); !errors.Is(err, cache.ErrEvictLocked) {
				t.Fatalf("eject of pinned segment %d: %v", tag, err)
			}
		}
		if !hl.InodePinned(pins[0].Inum) {
			t.Fatalf("inode %d not pinned", pins[0].Inum)
		}

		// Pinning twice and moving a pinned file are both refused.
		if r, _ := s.SubmitWait(p, hsm.OpPin, "/b", "alice"); r.State != hsm.Failed || !strings.Contains(r.Err, "already pinned") {
			t.Fatalf("double pin: %+v", r)
		}
		if r, _ := s.SubmitWait(p, hsm.OpStageOut, "/b", "alice"); r.State != hsm.Failed || !strings.Contains(r.Err, "pinned") {
			t.Fatalf("stage-out of pinned file: %+v", r)
		}
		if r, _ := s.SubmitWait(p, hsm.OpEvict, "/b", "alice"); r.State != hsm.Failed || !strings.Contains(r.Err, "pinned") {
			t.Fatalf("evict of pinned file: %+v", r)
		}

		// Unpin releases everything; the segments become evictable again.
		if _, err := s.SubmitWait(p, hsm.OpUnpin, "/b", "alice"); err != nil {
			t.Fatalf("unpin: %v", err)
		}
		if got := len(s.Pins()); got != 0 {
			t.Fatalf("pins after unpin: %d", got)
		}
		if got := hl.PinnedSegments(); len(got) != 0 {
			t.Fatalf("core pinned segments after unpin: %v", got)
		}
		if _, err := s.SubmitWait(p, hsm.OpEvict, "/b", "alice"); err != nil {
			t.Fatalf("evict after unpin: %v", err)
		}

		// Content still reads back (refetched on demand).
		f, err := hl.FS.Open(p, "/b")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(want))
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("content mismatch at %d", i)
			}
		}

		v := auditVerdicts(hl)
		for _, verdict := range []string{"queued", "done", "failed", "pinned", "unpinned"} {
			if v[verdict] == 0 {
				t.Fatalf("no %q audit verdicts: %v", verdict, v)
			}
		}
		reqs := s.Requests()
		for i, r := range reqs {
			if r.ID != int64(i+1) {
				t.Fatalf("request IDs not dense: %+v", reqs)
			}
		}
	})
}

// TestQuotaAdmissionShed checks the hard limits: a stage-in or pin whose
// projected usage crosses the principal's hard quota is shed at admission
// with the typed error, audited, and never enters the queue.
func TestQuotaAdmissionShed(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		migrateAndEject(t, p, hl, "/q1", 8)
		migrateAndEject(t, p, hl, "/q2", 8)
		s := attach(t, p, hl, hsm.Config{})

		if err := s.SetQuota(p, "alice", hsm.Quota{StagedHard: 10 * lfs.BlockSize}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitWait(p, hsm.OpStageIn, "/q1", "alice"); err != nil {
			t.Fatalf("first stage-in: %v", err)
		}
		r, err := s.SubmitWait(p, hsm.OpStageIn, "/q2", "alice")
		if !errors.Is(err, hsm.ErrQuotaExceeded) || r != nil {
			t.Fatalf("over-quota stage-in: r=%v err=%v", r, err)
		}
		if v := auditVerdicts(hl); v["quota-shed"] == 0 {
			t.Fatalf("no quota-shed audit verdict: %v", v)
		}

		// Quotas are per principal: bob is unlimited.
		if _, err := s.SubmitWait(p, hsm.OpStageIn, "/q2", "bob"); err != nil {
			t.Fatalf("bob stage-in: %v", err)
		}

		// Pinned-bytes hard limit sheds pins specifically.
		if err := s.SetQuota(p, "bob", hsm.Quota{PinnedHard: 4 * lfs.BlockSize}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitWait(p, hsm.OpPin, "/q2", "bob"); !errors.Is(err, hsm.ErrQuotaExceeded) {
			t.Fatalf("over-quota pin: %v", err)
		}

		st := s.StagedEntries()
		if len(st) != 2 {
			t.Fatalf("staged entries: %+v", st)
		}
		aliceStaged, _ := s.UsageOf("alice")
		if aliceStaged != 8*lfs.BlockSize {
			t.Fatalf("alice staged usage: %d", aliceStaged)
		}
	})
}

// TestQuotaGCReclaimsColdest checks the soft-limit GC: a principal over
// its watermark has its least-hot unpinned staged entries ejected (coldest
// first, audited), and pinned entries are never touched.
func TestQuotaGCReclaimsColdest(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		migrateAndEject(t, p, hl, "/cold", 8)
		migrateAndEject(t, p, hl, "/hot", 8)
		s := attach(t, p, hl, hsm.Config{})

		if _, err := s.SubmitWait(p, hsm.OpStageIn, "/cold", "alice"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitWait(p, hsm.OpStageIn, "/hot", "alice"); err != nil {
			t.Fatal(err)
		}
		// Heat up /hot's segments so the GC ordering has a clear winner.
		var hotSegs, coldSegs []int
		for _, st := range s.StagedEntries() {
			if st.Path == "/hot" {
				hotSegs = st.Segs
			} else {
				coldSegs = st.Segs
			}
		}
		for i := 0; i < 16; i++ {
			for _, tag := range hotSegs {
				hl.Heat.Touch(tag, 0, p.Now())
			}
		}

		if err := s.SetQuota(p, "alice", hsm.Quota{StagedSoft: 8 * lfs.BlockSize}); err != nil {
			t.Fatal(err)
		}
		reclaimed, err := s.RunQuotaGC(p)
		if err != nil {
			t.Fatal(err)
		}
		if reclaimed != 8*lfs.BlockSize {
			t.Fatalf("reclaimed %d bytes, want one 8-block file", reclaimed)
		}
		st := s.StagedEntries()
		if len(st) != 1 || st[0].Path != "/hot" {
			t.Fatalf("staged entries after GC: %+v", st)
		}
		for _, tag := range coldSegs {
			if _, ok := hl.Cache.Peek(tag); ok {
				t.Fatalf("cold segment %d still cached after GC", tag)
			}
		}
		if v := auditVerdicts(hl); v["reclaimed"] != 1 {
			t.Fatalf("reclaimed audit verdicts: %v", v)
		}

		// A pinned entry is over-quota but untouchable.
		if _, err := s.SubmitWait(p, hsm.OpPin, "/hot", "alice"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetQuota(p, "alice", hsm.Quota{StagedSoft: 1}); err != nil {
			t.Fatal(err)
		}
		reclaimed, err = s.RunQuotaGC(p)
		if err != nil {
			t.Fatal(err)
		}
		if reclaimed != 0 {
			t.Fatalf("GC reclaimed %d bytes from a pinned entry", reclaimed)
		}
		if len(s.StagedEntries()) != 1 {
			t.Fatalf("pinned staged entry dropped: %+v", s.StagedEntries())
		}
	})
}

// TestFrontEndStagingClass routes request execution through the admission
// front end and checks the work lands in the staging class accounting.
func TestFrontEndStagingClass(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		migrateAndEject(t, p, hl, "/fe", 8)
		fe := svc.New(hl, svc.Config{})
		s := attach(t, p, hl, hsm.Config{FrontEnd: fe})

		if _, err := s.SubmitWait(p, hsm.OpStageIn, "/fe", "alice"); err != nil {
			t.Fatal(err)
		}
		st := fe.Stats()
		if st.Admitted == 0 || st.Completed == 0 {
			t.Fatalf("front-end stats after staged request: %+v", st)
		}
		if st.P50Staging <= 0 {
			t.Fatalf("staging latency quantile not populated: %+v", st)
		}
	})
}

// TestRequestDaemonDrainsQueue checks the asynchronous path: Submit alone
// leaves requests queued; the processing daemon drains them in FIFO order.
func TestRequestDaemonDrainsQueue(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		migrateAndEject(t, p, hl, "/d1", 4)
		migrateAndEject(t, p, hl, "/d2", 4)
		s := attach(t, p, hl, hsm.Config{})

		if _, err := s.Submit(p, hsm.OpStageIn, "/d1", "alice"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(p, hsm.OpStageIn, "/d2", "bob"); err != nil {
			t.Fatal(err)
		}
		if s.QueueDepth() != 2 {
			t.Fatalf("queue depth: %d", s.QueueDepth())
		}
		s.StartDaemon(sim.Time(100 * time.Millisecond))
		p.Sleep(sim.Time(5 * time.Second))
		if s.QueueDepth() != 0 {
			t.Fatalf("daemon left %d requests queued", s.QueueDepth())
		}
		for _, r := range s.Requests() {
			if r.State != hsm.Done {
				t.Fatalf("request %d: %+v", r.ID, r)
			}
		}
	})
}

// scenario runs a fixed seeded multi-principal workload against a fresh
// rig and returns a digest of every externally observable artifact: the
// audit stream, the request ledger, pins, staged attributions, quota GC
// outcome, and final virtual time.
func scenario(seed uint64) (string, error) {
	k := sim.NewKernel()
	var digest string
	var fail error
	k.RunProc(func(p *sim.Proc) {
		hl, _, _, err := buildRig(p, k)
		if err != nil {
			fail = err
			return
		}
		paths := []string{"/w/a", "/w/b", "/w/c", "/w/d"}
		if err := hl.FS.Mkdir(p, "/w"); err != nil {
			fail = err
			return
		}
		for i, path := range paths {
			if _, err := makeTertiaryFile(p, hl, path, 4+2*i); err != nil {
				fail = err
				return
			}
		}
		fe := svc.New(hl, svc.Config{})
		s, err := hsm.Attach(p, hl, hsm.Config{FrontEnd: fe})
		if err != nil {
			fail = err
			return
		}
		if err := s.SetQuota(p, "alice", hsm.Quota{StagedSoft: 6 * lfs.BlockSize, StagedHard: 64 * lfs.BlockSize}); err != nil {
			fail = err
			return
		}
		if err := s.SetQuota(p, "bob", hsm.Quota{StagedSoft: 10 * lfs.BlockSize, PinnedHard: 32 * lfs.BlockSize}); err != nil {
			fail = err
			return
		}
		stats, err := wl.RunPrincipals(p, s, []wl.PrincipalSpec{
			{Name: "alice", Requests: 12, MeanGap: sim.Time(200 * time.Millisecond), Paths: paths, PinEvery: 3, Seed: seed},
			{Name: "bob", Requests: 12, MeanGap: sim.Time(300 * time.Millisecond), Paths: paths, PinEvery: 4, Seed: seed + 7},
		})
		if err != nil {
			fail = err
			return
		}
		reclaimed, err := s.RunQuotaGC(p)
		if err != nil {
			fail = err
			return
		}

		h := sha256.New()
		for _, d := range hl.Audit.All() {
			fmt.Fprintln(h, d.String())
		}
		for _, r := range s.Requests() {
			fmt.Fprintf(h, "req %d %s %s %s %s %d %d %d %d %q\n",
				r.ID, r.Op, r.Path, r.Principal, r.State,
				int64(r.Submitted), int64(r.Started), int64(r.Finished), r.Bytes, r.Err)
		}
		for _, pin := range s.Pins() {
			fmt.Fprintf(h, "pin %s %d %s %d %v %d\n", pin.Path, pin.Inum, pin.Principal, pin.Bytes, pin.Segs, int64(pin.PinnedAt))
		}
		for _, st := range s.StagedEntries() {
			fmt.Fprintf(h, "staged %s %s %d %v %d\n", st.Path, st.Principal, st.Bytes, st.Segs, int64(st.StagedAt))
		}
		for _, ps := range stats {
			fmt.Fprintf(h, "wl %+v\n", ps)
		}
		fmt.Fprintf(h, "reclaimed %d now %d audit %d\n", reclaimed, int64(p.Now()), hl.Audit.Total())
		digest = hex.EncodeToString(h.Sum(nil))
	})
	return digest, fail
}

// TestDoubleRunDeterminism runs the seeded multi-principal scenario twice
// on fresh kernels and requires byte-identical digests: the HSM queue,
// quota GC, and policy/audit verdicts must not depend on map order or
// wall-clock state.
func TestDoubleRunDeterminism(t *testing.T) {
	d1, err := scenario(20260808)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := scenario(20260808)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("seeded runs diverged:\n  %s\n  %s", d1, d2)
	}
	d3, err := scenario(99)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatalf("different seeds produced identical digests (digest not sensitive)")
	}
}
