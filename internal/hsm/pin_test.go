package hsm_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fsck"
	"repro/internal/hsm"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

// TestPinnedNeverMoves is the end-to-end pin-guard test: with a file
// pinned, the evictor, whole-volume cleaner, and migrator all run to
// exhaustion, and none of them touches the pinned data. The pinned
// segments stay cached, stay on their medium, and the content reads back
// intact afterwards.
func TestPinnedNeverMoves(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		want := migrateAndEject(t, p, hl, "/pinned", 16)
		churn := []string{}
		for i := 0; i < 10; i++ {
			path := "/churn" + string(rune('a'+i))
			migrateAndEject(t, p, hl, path, 8)
			churn = append(churn, path)
		}
		s := attach(t, p, hl, hsm.Config{})
		if _, err := s.SubmitWait(p, hsm.OpPin, "/pinned", "alice"); err != nil {
			t.Fatal(err)
		}
		pin := s.Pins()[0]
		if len(pin.Segs) == 0 {
			t.Fatal("pin recorded no segments")
		}

		// Evictor to exhaustion: stage ten other files through an 8-line
		// cache, three times over. Victim selection must route around the
		// pinned line every time.
		for round := 0; round < 3; round++ {
			for _, path := range churn {
				if _, err := s.SubmitWait(p, hsm.OpStageIn, path, "bob"); err != nil {
					t.Fatalf("churn stage-in %s: %v", path, err)
				}
			}
		}
		for _, tag := range pin.Segs {
			if _, ok := hl.Cache.Peek(tag); !ok {
				t.Fatalf("pinned segment %d evicted under cache pressure", tag)
			}
			if err := hl.Svc.Eject(tag); !errors.Is(err, cache.ErrEvictLocked) {
				t.Fatalf("direct eject of pinned segment %d: %v", tag, err)
			}
		}

		// Cleaner to exhaustion: the pinned volume is refused outright, and
		// volume selection never offers it.
		seg := hl.Amap.SegForIndex(pin.Segs[0])
		pdev, pvol, _, ok := hl.Amap.Loc(seg)
		if !ok {
			t.Fatalf("no location for pinned segment %d", pin.Segs[0])
		}
		if _, err := hl.CleanVolume(p, pdev, pvol); !errors.Is(err, core.ErrVolumePinned) {
			t.Fatalf("cleaning the pinned volume: %v", err)
		}
		for i := 0; i < 16; i++ {
			u, ok := hl.SelectCleanableVolume()
			if !ok {
				break
			}
			if u.Device == pdev && u.Volume == pvol {
				t.Fatalf("cleaner selected the pinned volume %d/%d", pdev, pvol)
			}
			if _, err := hl.CleanVolume(p, u.Device, u.Volume); err != nil {
				t.Fatalf("cleaning volume %d/%d: %v", u.Device, u.Volume, err)
			}
		}
		if v := auditVerdicts(hl); v["pin-guard"] == 0 {
			t.Fatalf("no pin-guard audit verdicts: %v", v)
		}

		// Migrator to exhaustion: a pinned disk-resident file stays on
		// disk while its unpinned twin migrates.
		writeDisk := func(path string) uint32 {
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 8*lfs.BlockSize)
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatal(err)
			}
			return f.Inum()
		}
		pinnedInum := writeDisk("/diskpinned")
		unpinnedInum := writeDisk("/diskplain")
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitWait(p, hsm.OpPin, "/diskpinned", "alice"); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Time(60 * time.Second)) // age past any policy min-age
		m := migrate.NewMigrator(hl)
		if _, err := m.RunOnce(p, 1<<40); err != nil {
			t.Fatal(err)
		}
		tertBlocks := func(inum uint32) int {
			refs, err := hl.FS.FileBlockRefs(p, inum)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for _, ref := range refs {
				if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(ref.Addr)) {
					n++
				}
			}
			return n
		}
		if n := tertBlocks(pinnedInum); n != 0 {
			t.Fatalf("migrator moved %d blocks of the pinned file", n)
		}
		if n := tertBlocks(unpinnedInum); n == 0 {
			t.Fatal("migrator skipped the unpinned control file")
		}

		// After all three subsystems ran dry, the pinned data is intact.
		for _, tag := range pin.Segs {
			if !hl.SegmentPinned(tag) || !hl.FS.TsegPinned(tag) {
				t.Fatalf("segment %d lost its pin", tag)
			}
		}
		f, err := hl.FS.Open(p, "/pinned")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(want))
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatal("pinned file content changed")
		}
		rep, err := fsck.Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("fsck after pin-guard exhaustion: %+v", rep.Problems)
		}
		wantPinned := 0
		for _, pn := range s.Pins() {
			wantPinned += len(pn.Segs)
		}
		if rep.TsegsPinned != wantPinned {
			t.Fatalf("fsck counted %d pinned tsegs, pins hold %d", rep.TsegsPinned, wantPinned)
		}
	})
}

// TestPinSurvivesPowerCut cuts power right after a pin completes (media
// snapshot at the cut instant, fresh kernel, remount with roll-forward)
// and checks the pin is still honored: the persisted tseg flag guards the
// segment before the HSM service reattaches, and Attach re-derives the
// full pin set from the recovered state file.
func TestPinSurvivesPowerCut(t *testing.T) {
	var (
		store    map[int64][]byte
		vols     []jukebox.VolumeImage
		cut      sim.Time
		pinSegs  []int
		wantData []byte
	)
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, disk, jb := rig(t, p, k)
		wantData = migrateAndEject(t, p, hl, "/keep", 8)
		migrateAndEject(t, p, hl, "/plain", 8)
		s := attach(t, p, hl, hsm.Config{})
		if err := s.SetQuota(p, "alice", hsm.Quota{StagedSoft: 4 * lfs.BlockSize}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitWait(p, hsm.OpPin, "/keep", "alice"); err != nil {
			t.Fatal(err)
		}
		pinSegs = s.Pins()[0].Segs
		// Process checkpointed the pin; dirty un-synced work after this
		// point is what the power cut destroys.
		f, err := hl.FS.Create(p, "/lost")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 2*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		store = disk.SnapshotStore()
		vols = jb.SnapshotVolumes()
		cut = p.Now()
	})

	k2 := sim.NewKernel()
	k2.AdvanceTo(cut)
	k2.RunProc(func(p *sim.Proc) {
		disk2 := dev.NewDisk(k2, dev.RZ57, 256*64, nil)
		disk2.RestoreStore(store)
		jb2 := jukebox.MustNew(k2, jukebox.MO6300, 2, 4, 32, 64*lfs.BlockSize, nil)
		jb2.RestoreVolumes(vols)
		hl, err := core.New(p, core.Config{
			SegBlocks:   64,
			Disks:       []dev.BlockDev{disk2},
			Jukeboxes:   []jukebox.Footprint{jb2},
			CacheSegs:   8,
			MaxInodes:   256,
			BufferBytes: 64 * lfs.BlockSize,
		}, false)
		if err != nil {
			t.Fatalf("remount after power cut: %v", err)
		}

		// Before the HSM service reattaches, the checkpointed tseg flag
		// alone keeps the guards active.
		for _, tag := range pinSegs {
			if !hl.FS.TsegPinned(tag) {
				t.Fatalf("tseg pin flag on %d lost across the power cut", tag)
			}
			if !hl.SegmentPinned(tag) {
				t.Fatalf("segment %d not guarded before HSM attach", tag)
			}
		}

		s := attach(t, p, hl, hsm.Config{})
		pins := s.Pins()
		if len(pins) != 1 || pins[0].Path != "/keep" || pins[0].Principal != "alice" {
			t.Fatalf("pins after recovery: %+v", pins)
		}
		if q := s.QuotaOf("alice"); q.StagedSoft != 4*lfs.BlockSize {
			t.Fatalf("quota after recovery: %+v", q)
		}
		if !hl.InodePinned(pins[0].Inum) {
			t.Fatal("inode pin not re-derived after recovery")
		}
		// The request ledger recovered too: every persisted request is in
		// a terminal state (the pin completed before the cut).
		for _, r := range s.Requests() {
			if r.State != hsm.Done && r.State != hsm.Failed {
				t.Fatalf("recovered request not terminal: %+v", r)
			}
		}

		// And the pinned file still reads back through a fresh cache.
		f, err := hl.FS.Open(p, "/keep")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(wantData))
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, wantData) {
			t.Fatal("pinned file content changed across the power cut")
		}
		if _, err := s.SubmitWait(p, hsm.OpUnpin, "/keep", "alice"); err != nil {
			t.Fatalf("unpin after recovery: %v", err)
		}
		if got := hl.PinnedSegments(); len(got) != 0 {
			t.Fatalf("pins remain after unpin: %v", got)
		}
	})
}
