package hsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/lfs"
	"repro/internal/sim"
)

// DefaultStatePath is where the service persists its state inside the
// HighLight file system. The file is ordinary file data, so it rides the
// log's durability path: synced on every save and recovered by the normal
// roll-forward after a crash.
const DefaultStatePath = "/.hsm/state"

// The persisted representation. Slices are sorted before encoding so two
// identical service states always serialize byte-identically (the
// double-run determinism contract covers this file too).
type stateFile struct {
	NextID   int64        `json:"next_id"`
	Requests []requestRec `json:"requests"`
	Pins     []pinRec     `json:"pins"`
	Staged   []stagedRec  `json:"staged"`
	Quotas   []quotaRec   `json:"quotas"`
}

type requestRec struct {
	ID        int64  `json:"id"`
	Op        int    `json:"op"`
	Path      string `json:"path"`
	Principal string `json:"principal"`
	State     int    `json:"state"`
	Submitted int64  `json:"submitted_ns"`
	Started   int64  `json:"started_ns"`
	Finished  int64  `json:"finished_ns"`
	Bytes     int64  `json:"bytes"`
	Err       string `json:"err,omitempty"`
}

type pinRec struct {
	Path      string `json:"path"`
	Inum      uint32 `json:"inum"`
	Principal string `json:"principal"`
	Bytes     int64  `json:"bytes"`
	Segs      []int  `json:"segs"`
	PinnedAt  int64  `json:"pinned_ns"`
}

type stagedRec struct {
	Path      string `json:"path"`
	Principal string `json:"principal"`
	Bytes     int64  `json:"bytes"`
	Segs      []int  `json:"segs"`
	StagedAt  int64  `json:"staged_ns"`
}

type quotaRec struct {
	Principal  string `json:"principal"`
	StagedSoft int64  `json:"staged_soft"`
	StagedHard int64  `json:"staged_hard"`
	PinnedHard int64  `json:"pinned_hard"`
}

// save serializes the service state into the state file and syncs it. An
// in-progress queue persists too: a crash between save and the next
// Process leaves the backlog intact for the remounted service.
func (s *Service) save(p *sim.Proc) error {
	st := stateFile{NextID: s.nextID}
	for _, r := range s.requests {
		st.Requests = append(st.Requests, requestRec{
			ID: r.ID, Op: int(r.Op), Path: r.Path, Principal: r.Principal,
			State:     int(r.State),
			Submitted: int64(r.Submitted), Started: int64(r.Started), Finished: int64(r.Finished),
			Bytes: r.Bytes, Err: r.Err,
		})
	}
	for _, path := range sortedKeys(s.pins) {
		pin := s.pins[path]
		st.Pins = append(st.Pins, pinRec{
			Path: pin.Path, Inum: pin.Inum, Principal: pin.Principal,
			Bytes: pin.Bytes, Segs: pin.Segs, PinnedAt: int64(pin.PinnedAt),
		})
	}
	for _, path := range sortedKeys(s.staged) {
		rec := s.staged[path]
		st.Staged = append(st.Staged, stagedRec{
			Path: rec.Path, Principal: rec.Principal,
			Bytes: rec.Bytes, Segs: rec.Segs, StagedAt: int64(rec.StagedAt),
		})
	}
	for _, pr := range sortedKeys(s.quotas) {
		q := s.quotas[pr]
		st.Quotas = append(st.Quotas, quotaRec{
			Principal: pr, StagedSoft: q.StagedSoft, StagedHard: q.StagedHard, PinnedHard: q.PinnedHard,
		})
	}
	data, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("hsm: encoding state: %w", err)
	}
	f, err := s.HL.FS.Open(p, s.statePath)
	if err != nil {
		if f, err = s.HL.FS.Create(p, s.statePath); err != nil {
			return fmt.Errorf("hsm: creating state file: %w", err)
		}
	}
	if err := f.Truncate(p, 0); err != nil {
		return err
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		return err
	}
	return s.HL.FS.Sync(p)
}

// load reads the state file (creating the /.hsm directory and an empty
// state on first attach) and rebuilds the in-memory maps.
func (s *Service) load(p *sim.Proc) error {
	f, err := s.HL.FS.Open(p, s.statePath)
	if err != nil {
		if !errors.Is(err, lfs.ErrNotFound) {
			return fmt.Errorf("hsm: opening state file: %w", err)
		}
		if derr := s.HL.FS.Mkdir(p, stateDir(s.statePath)); derr != nil && !errors.Is(derr, lfs.ErrExists) {
			return fmt.Errorf("hsm: creating state dir: %w", derr)
		}
		return s.save(p)
	}
	size, err := f.Size(p)
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(p, data, 0); err != nil {
		return err
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("hsm: decoding state file: %w", err)
	}
	s.nextID = st.NextID
	for _, rec := range st.Requests {
		r := &Request{
			ID: rec.ID, Op: Op(rec.Op), Path: rec.Path, Principal: rec.Principal,
			State:     State(rec.State),
			Submitted: sim.Time(rec.Submitted), Started: sim.Time(rec.Started), Finished: sim.Time(rec.Finished),
			Bytes: rec.Bytes, Err: rec.Err,
		}
		// A request caught mid-execution by a crash is re-queued: its
		// operations are idempotent (fetch, pin, eject), so re-running is
		// safe and simpler than guessing how far it got.
		if r.State == Active {
			r.State = Queued
		}
		s.requests = append(s.requests, r)
		if r.State == Queued {
			s.queue = append(s.queue, r)
		}
	}
	sort.Slice(s.queue, func(a, b int) bool { return s.queue[a].ID < s.queue[b].ID })
	for _, rec := range st.Pins {
		s.pins[rec.Path] = &Pin{
			Path: rec.Path, Inum: rec.Inum, Principal: rec.Principal,
			Bytes: rec.Bytes, Segs: rec.Segs, PinnedAt: sim.Time(rec.PinnedAt),
		}
	}
	for _, rec := range st.Staged {
		s.staged[rec.Path] = &Staged{
			Path: rec.Path, Principal: rec.Principal,
			Bytes: rec.Bytes, Segs: rec.Segs, StagedAt: sim.Time(rec.StagedAt),
		}
	}
	for _, rec := range st.Quotas {
		s.quotas[rec.Principal] = Quota{
			StagedSoft: rec.StagedSoft, StagedHard: rec.StagedHard, PinnedHard: rec.PinnedHard,
		}
	}
	return nil
}

// stateDir returns the parent directory of the state path.
func stateDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
