// Package hsm is the CASTOR-style hierarchical-storage-management service
// surface layered between the request front end (internal/svc) and the
// migrating file system (internal/core). Where the migrator decides *what*
// should move between disk and tertiary storage, hsm exposes the operable
// archive service above it: explicit StageIn/StageOut/Pin/Unpin/Evict
// requests flowing through a persistent virtual-time queue, file pinning
// honored end-to-end by the evictor/cleaner/migrator, per-principal
// accounting with quota enforcement and a quota-GC daemon, and a pluggable
// migration Policy with the existing STP/namespace rankers as one
// implementation among several.
//
// Every request transition (queued → active → done/failed), pin change,
// quota shed, and GC reclaim is recorded in the shared decision audit and
// exported through hsm.* instruments, so `hldump -requests/-pins/-quotas`
// and the telemetry endpoints see the whole service state.
package hsm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
	"repro/internal/svc"
)

// Op is one HSM request kind.
type Op int

const (
	// OpStageIn fetches a file's tertiary-resident segments into the
	// segment cache ahead of use.
	OpStageIn Op = iota
	// OpStageOut migrates a file's disk-resident blocks to tertiary
	// storage (an explicit archive request).
	OpStageOut
	// OpPin stages a file in and pins it: its segments are never evicted,
	// cleaned, or migrated until unpinned.
	OpPin
	// OpUnpin releases a pin.
	OpUnpin
	// OpEvict drops a file's cached tertiary segments from the cache.
	OpEvict
)

func (o Op) String() string {
	switch o {
	case OpStageIn:
		return "stage-in"
	case OpStageOut:
		return "stage-out"
	case OpPin:
		return "pin"
	case OpUnpin:
		return "unpin"
	case OpEvict:
		return "evict"
	}
	return "unknown"
}

// ParseOp maps a CLI verb to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "stage-in", "stagein", "stage":
		return OpStageIn, nil
	case "stage-out", "stageout", "archive":
		return OpStageOut, nil
	case "pin":
		return OpPin, nil
	case "unpin":
		return OpUnpin, nil
	case "evict":
		return OpEvict, nil
	}
	return 0, fmt.Errorf("hsm: unknown operation %q", s)
}

// State is a request's lifecycle state.
type State int

const (
	// Queued requests await a processing pass.
	Queued State = iota
	// Active requests are executing.
	Active
	// Done requests completed successfully.
	Done
	// Failed requests reached a terminal error.
	Failed
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Active:
		return "active"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Request is one HSM request moving through the queue.
type Request struct {
	ID        int64
	Op        Op
	Path      string
	Principal string
	State     State

	Submitted sim.Time
	Started   sim.Time
	Finished  sim.Time

	// Bytes is the data the operation moved (staged in, migrated out, or
	// evicted), filled when the request completes.
	Bytes int64
	// Err holds the terminal error text of a failed request.
	Err string
}

// ErrQuotaExceeded marks a request shed at admission because the principal
// would exceed a hard quota limit. Like svc.ErrOverload it is typed so
// clients distinguish "the service refused me by policy" from failures.
var ErrQuotaExceeded = errors.New("hsm: quota exceeded")

// ErrAlreadyPinned marks a Pin of a path that is already pinned.
var ErrAlreadyPinned = errors.New("hsm: already pinned")

// ErrNotPinned marks an Unpin of a path with no pin.
var ErrNotPinned = errors.New("hsm: not pinned")

// ErrPinned marks a StageOut or Evict refused because the file is pinned.
var ErrPinned = errors.New("hsm: file is pinned")

// Pin is one active pin: a file whose segments stay staged.
type Pin struct {
	Path      string
	Inum      uint32
	Principal string
	Bytes     int64
	Segs      []int // pinned tertiary segment indices, ascending
	PinnedAt  sim.Time
}

// Staged is one staged-data attribution: who asked for this path's
// tertiary data to be cached, and how much. Quota GC reclaims these.
type Staged struct {
	Path      string
	Principal string
	Bytes     int64
	Segs      []int
	StagedAt  sim.Time
}

// Config configures the service surface.
type Config struct {
	// FrontEnd, when set, routes request execution through the admission
	// front end under the svc.Staging class, so HSM work is scheduled
	// between interactive reads and background migration. Nil executes
	// requests directly in the processing proc.
	FrontEnd *svc.FrontEnd
	// StatePath is the in-FS path of the persisted service state
	// (default "/.hsm/state"). The file rides the normal log/roll-forward
	// durability path, so the queue, pins, and quotas survive a crash.
	StatePath string
	// GCEvery, when positive, starts the quota-GC daemon: a periodic
	// virtual-time pass reclaiming least-hot unpinned staged data from
	// principals over their soft limits. Zero leaves GC manual.
	GCEvery sim.Time
}

// Service is the HSM service surface over one HighLight instance. Create
// it with Attach; all methods must be called from procs of the instance's
// kernel.
type Service struct {
	HL *core.HighLight
	FE *svc.FrontEnd

	statePath string
	nextID    int64
	requests  []*Request // every request, ID order
	queue     []*Request // queued subset, FIFO
	doneC     *sim.Cond  // broadcast at every request completion
	pins      map[string]*Pin
	staged    map[string]*Staged
	quotas    map[string]Quota

	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	quotaShed *obs.Counter
	reclaimed *obs.Counter
	queuedG   *obs.Gauge
	pinsG     *obs.Gauge
	pinnedBG  *obs.Gauge
	stagedBG  *obs.Gauge
}

// Attach builds the service surface over hl, loading persisted state (the
// request backlog, pins, staged attributions, and quotas) from the state
// file if one exists and re-deriving the core pin registries from it. Any
// persisted pin flag not covered by the re-derived pin set (a crash between
// flag checkpoint and state write) is cleared as stale.
func Attach(p *sim.Proc, hl *core.HighLight, cfg Config) (*Service, error) {
	if cfg.StatePath == "" {
		cfg.StatePath = DefaultStatePath
	}
	s := &Service{
		HL:        hl,
		FE:        cfg.FrontEnd,
		statePath: cfg.StatePath,
		doneC:     hl.K.NewCond("hsm.done"),
		pins:      make(map[string]*Pin),
		staged:    make(map[string]*Staged),
		quotas:    make(map[string]Quota),
	}
	o := hl.Obs
	s.submitted = o.Counter("hsm.submitted")
	s.completed = o.Counter("hsm.completed")
	s.failed = o.Counter("hsm.failed")
	s.quotaShed = o.Counter("hsm.quota_shed")
	s.reclaimed = o.Counter("hsm.gc_reclaimed_bytes")
	s.queuedG = o.Gauge("hsm.queued")
	s.pinsG = o.Gauge("hsm.pins")
	s.pinnedBG = o.Gauge("hsm.pinned_bytes")
	s.stagedBG = o.Gauge("hsm.staged_bytes")

	if err := s.load(p); err != nil {
		return nil, err
	}
	// Re-derive the core pin registries from the persisted pin set, then
	// clear any stale persisted flags it does not cover.
	covered := make(map[int]bool)
	for _, path := range sortedKeys(s.pins) {
		pin := s.pins[path]
		hl.PinInode(pin.Inum)
		for _, seg := range pin.Segs {
			hl.PinSegment(seg)
			covered[seg] = true
		}
	}
	for idx := 0; idx < hl.FS.TsegCount(); idx++ {
		if hl.FS.TsegPinned(idx) && !covered[idx] {
			hl.UnpinSegment(idx)
		}
	}
	s.updateGauges()
	if cfg.GCEvery > 0 {
		s.StartGCDaemon(cfg.GCEvery)
	}
	return s, nil
}

// Submit admits one request into the queue. StageIn and Pin requests are
// checked against the principal's quota at admission: a projected overrun
// is shed immediately with ErrQuotaExceeded (audited), before any queue
// slot or data movement is spent on it.
func (s *Service) Submit(p *sim.Proc, op Op, path, principal string) (*Request, error) {
	now := p.Now()
	if op == OpStageIn || op == OpPin {
		if err := s.admitQuota(p, op, path, principal); err != nil {
			return nil, err
		}
	}
	s.nextID++
	r := &Request{
		ID: s.nextID, Op: op, Path: path, Principal: principal,
		State: Queued, Submitted: now,
	}
	s.requests = append(s.requests, r)
	s.queue = append(s.queue, r)
	s.submitted.Add(1)
	s.queuedG.Set(int64(len(s.queue)))
	s.HL.Audit.Record(attr.Decision{
		T: now, Actor: "hsm", Subject: fmt.Sprintf("hsmreq:%d", r.ID),
		Seg: -1, Verdict: attr.VerdictQueued, Reason: op.String() + " " + path,
		Inputs: []attr.Input{attr.In("op", float64(op)), attr.In("depth", float64(len(s.queue)))},
	})
	return r, nil
}

// admitQuota projects the principal's usage after the request and sheds it
// if a hard limit would be crossed. The projection uses the file's current
// size (the worst case: every byte tertiary-resident); actual accounting
// at execution time uses the bytes really moved.
func (s *Service) admitQuota(p *sim.Proc, op Op, path, principal string) error {
	q := s.quotas[principal]
	var est int64
	if fi, err := s.HL.FS.Stat(p, path); err == nil {
		est = int64(fi.Size)
	}
	staged, pinned := s.UsageOf(principal)
	now := p.Now()
	shed := func(kind string, used, limit int64) error {
		s.quotaShed.Add(1)
		s.HL.Audit.Record(attr.Decision{
			T: now, Actor: "hsm", Subject: "principal:" + principal,
			Seg: -1, Verdict: attr.VerdictQuotaShed, Reason: op.String() + " " + path + " over " + kind + " limit",
			Inputs: []attr.Input{
				attr.In("used", float64(used)),
				attr.In("request", float64(est)),
				attr.In("limit", float64(limit)),
			},
		})
		return fmt.Errorf("%w: %s of %q puts principal %s over %s limit (%d+%d > %d)",
			ErrQuotaExceeded, op, path, principal, kind, used, est, limit)
	}
	if q.StagedHard > 0 && staged+est > q.StagedHard {
		return shed("staged-bytes", staged, q.StagedHard)
	}
	if op == OpPin && q.PinnedHard > 0 && pinned+est > q.PinnedHard {
		return shed("pinned-bytes", pinned, q.PinnedHard)
	}
	return nil
}

// Process drains the queue: each queued request turns active, executes
// (through the front end's Staging class when one is attached), and lands
// in done or failed. State is persisted and the file system checkpointed
// once per drain, so completed pins are durable when Process returns.
func (s *Service) Process(p *sim.Proc) error {
	if len(s.queue) == 0 {
		return nil
	}
	for len(s.queue) > 0 {
		r := s.queue[0]
		s.queue = s.queue[1:]
		s.queuedG.Set(int64(len(s.queue)))
		r.State = Active
		r.Started = p.Now()
		var err error
		if s.FE != nil {
			err = s.FE.Submit(p, svc.Staging, 0, func(wp *sim.Proc) error {
				return s.execute(wp, r)
			})
		} else {
			err = s.execute(p, r)
		}
		r.Finished = p.Now()
		if err != nil {
			r.State = Failed
			r.Err = err.Error()
			s.failed.Add(1)
			s.HL.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "hsm", Subject: fmt.Sprintf("hsmreq:%d", r.ID),
				Seg: -1, Verdict: attr.VerdictFailed, Reason: err.Error(),
				Inputs: []attr.Input{attr.In("op", float64(r.Op))},
			})
		} else {
			r.State = Done
			s.completed.Add(1)
			s.HL.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "hsm", Subject: fmt.Sprintf("hsmreq:%d", r.ID),
				Seg: -1, Verdict: attr.VerdictDone, Reason: r.Op.String() + " " + r.Path,
				Inputs: []attr.Input{attr.In("op", float64(r.Op)), attr.In("bytes", float64(r.Bytes))},
			})
		}
		s.doneC.Broadcast()
	}
	s.updateGauges()
	if err := s.save(p); err != nil {
		return err
	}
	return s.HL.Checkpoint(p)
}

// SubmitWait submits one request, drives the queue until the request
// reaches a terminal state (another proc's drain may get there first), and
// returns its terminal error (nil when done). Admission sheds return the
// typed error directly. This is the synchronous path the CLIs and the
// per-principal workload generators use.
func (s *Service) SubmitWait(p *sim.Proc, op Op, path, principal string) (*Request, error) {
	r, err := s.Submit(p, op, path, principal)
	if err != nil {
		return nil, err
	}
	for r.State == Queued || r.State == Active {
		if len(s.queue) > 0 {
			if err := s.Process(p); err != nil {
				return r, err
			}
			continue
		}
		s.doneC.Wait(p)
	}
	if r.State == Failed {
		return r, errors.New(r.Err)
	}
	return r, nil
}

// StartDaemon starts the request-processing daemon: a periodic
// virtual-time pass draining the queue.
func (s *Service) StartDaemon(every sim.Time) {
	s.HL.K.GoDaemon("hsm-daemon", func(p *sim.Proc) {
		for {
			p.Sleep(every)
			if err := s.Process(p); err != nil {
				s.HL.Obs.Instant("hsm", "hsm.daemon", "process error",
					obs.Arg{Key: "queued", Val: int64(len(s.queue))})
			}
		}
	})
}

// execute runs one active request.
func (s *Service) execute(p *sim.Proc, r *Request) error {
	switch r.Op {
	case OpStageIn:
		return s.execStageIn(p, r)
	case OpStageOut:
		return s.execStageOut(p, r)
	case OpPin:
		return s.execPin(p, r)
	case OpUnpin:
		return s.execUnpin(p, r)
	case OpEvict:
		return s.execEvict(p, r)
	}
	return fmt.Errorf("hsm: request %d: unknown op %d", r.ID, int(r.Op))
}

// fileTertiary resolves path and returns its inode, the tertiary segments
// its blocks (and inode) currently occupy in ascending order, and the
// tertiary-resident byte count.
func (s *Service) fileTertiary(p *sim.Proc, path string) (uint32, []int, int64, error) {
	f, err := s.HL.FS.Open(p, path)
	if err != nil {
		return 0, nil, 0, err
	}
	inum := f.Inum()
	refs, err := s.HL.FS.FileBlockRefs(p, inum)
	if err != nil {
		return inum, nil, 0, err
	}
	segset := make(map[int]bool)
	var bytes int64
	for _, ref := range refs {
		seg := s.HL.Amap.SegOf(ref.Addr)
		if !s.HL.Amap.IsTertiarySeg(seg) {
			continue
		}
		if idx, ok := s.HL.Amap.TertIndex(seg); ok {
			segset[idx] = true
			bytes += lfs.BlockSize
		}
	}
	if ie := s.HL.FS.Imap(inum); s.HL.Amap.IsTertiarySeg(s.HL.Amap.SegOf(ie.Addr)) {
		if idx, ok := s.HL.Amap.TertIndex(s.HL.Amap.SegOf(ie.Addr)); ok {
			segset[idx] = true
		}
	}
	segs := make([]int, 0, len(segset))
	for idx := range segset {
		segs = append(segs, idx)
	}
	sort.Ints(segs)
	return inum, segs, bytes, nil
}

// stageSegments demand-fetches every listed tertiary segment not already
// cached.
func (s *Service) stageSegments(p *sim.Proc, segs []int) error {
	for _, tag := range segs {
		if _, ok := s.HL.Cache.Peek(tag); ok {
			continue
		}
		if _, err := s.HL.Svc.DemandFetch(p, tag); err != nil {
			return fmt.Errorf("hsm: staging segment %d: %w", tag, err)
		}
	}
	return nil
}

func (s *Service) execStageIn(p *sim.Proc, r *Request) error {
	_, segs, bytes, err := s.fileTertiary(p, r.Path)
	if err != nil {
		return err
	}
	if err := s.stageSegments(p, segs); err != nil {
		return err
	}
	r.Bytes = bytes
	if bytes > 0 {
		s.staged[r.Path] = &Staged{
			Path: r.Path, Principal: r.Principal, Bytes: bytes, Segs: segs, StagedAt: p.Now(),
		}
	}
	return nil
}

func (s *Service) execStageOut(p *sim.Proc, r *Request) error {
	f, err := s.HL.FS.Open(p, r.Path)
	if err != nil {
		return err
	}
	if s.HL.InodePinned(f.Inum()) {
		return fmt.Errorf("%w: %s (unpin before stage-out)", ErrPinned, r.Path)
	}
	bytes, err := s.HL.MigrateFiles(p, []uint32{f.Inum()}, false)
	if err != nil {
		return err
	}
	if err := s.HL.CompleteMigration(p); err != nil {
		return err
	}
	r.Bytes = bytes
	return nil
}

func (s *Service) execPin(p *sim.Proc, r *Request) error {
	if _, dup := s.pins[r.Path]; dup {
		return fmt.Errorf("%w: %s", ErrAlreadyPinned, r.Path)
	}
	inum, segs, bytes, err := s.fileTertiary(p, r.Path)
	if err != nil {
		return err
	}
	if err := s.stageSegments(p, segs); err != nil {
		return err
	}
	s.HL.PinInode(inum)
	for _, seg := range segs {
		s.HL.PinSegment(seg)
	}
	pin := &Pin{
		Path: r.Path, Inum: inum, Principal: r.Principal,
		Bytes: bytes, Segs: segs, PinnedAt: p.Now(),
	}
	s.pins[r.Path] = pin
	if bytes > 0 {
		s.staged[r.Path] = &Staged{
			Path: r.Path, Principal: r.Principal, Bytes: bytes, Segs: segs, StagedAt: p.Now(),
		}
	}
	r.Bytes = bytes
	seg := -1
	if len(segs) > 0 {
		seg = segs[0]
	}
	s.HL.Audit.Record(attr.Decision{
		T: p.Now(), Actor: "hsm", Subject: "pin:" + r.Path,
		Seg: seg, Verdict: attr.VerdictPinned, Reason: "principal " + r.Principal,
		Inputs: []attr.Input{attr.In("bytes", float64(bytes)), attr.In("segs", float64(len(segs)))},
	})
	return nil
}

func (s *Service) execUnpin(p *sim.Proc, r *Request) error {
	pin, ok := s.pins[r.Path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotPinned, r.Path)
	}
	s.HL.UnpinInode(pin.Inum)
	for _, seg := range pin.Segs {
		s.HL.UnpinSegment(seg)
	}
	delete(s.pins, r.Path)
	r.Bytes = pin.Bytes
	seg := -1
	if len(pin.Segs) > 0 {
		seg = pin.Segs[0]
	}
	s.HL.Audit.Record(attr.Decision{
		T: p.Now(), Actor: "hsm", Subject: "pin:" + r.Path,
		Seg: seg, Verdict: attr.VerdictUnpinned, Reason: "principal " + r.Principal,
		Inputs: []attr.Input{attr.In("bytes", float64(pin.Bytes))},
	})
	return nil
}

func (s *Service) execEvict(p *sim.Proc, r *Request) error {
	inum, segs, bytes, err := s.fileTertiary(p, r.Path)
	if err != nil {
		return err
	}
	if s.HL.InodePinned(inum) {
		return fmt.Errorf("%w: %s (unpin before evict)", ErrPinned, r.Path)
	}
	var evicted int64
	for _, tag := range segs {
		l, ok := s.HL.Cache.Peek(tag)
		if !ok {
			continue
		}
		if l.Staging || l.Pins > 0 || s.HL.SegmentPinned(tag) {
			continue // busy or pinned through another file: leave it
		}
		if err := s.HL.Svc.Eject(tag); err != nil {
			return err
		}
		evicted += int64(s.HL.Amap.SegBlocks()) * lfs.BlockSize
	}
	_ = bytes
	delete(s.staged, r.Path)
	r.Bytes = evicted
	return nil
}

// Requests returns copies of every request in ID order.
func (s *Service) Requests() []Request {
	out := make([]Request, 0, len(s.requests))
	for _, r := range s.requests {
		out = append(out, *r)
	}
	return out
}

// QueueDepth reports the number of queued requests.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Pins returns copies of the active pins in path order.
func (s *Service) Pins() []Pin {
	out := make([]Pin, 0, len(s.pins))
	for _, path := range sortedKeys(s.pins) {
		out = append(out, *s.pins[path])
	}
	return out
}

// StagedEntries returns copies of the staged attributions in path order.
func (s *Service) StagedEntries() []Staged {
	out := make([]Staged, 0, len(s.staged))
	for _, path := range sortedKeys(s.staged) {
		out = append(out, *s.staged[path])
	}
	return out
}

// updateGauges refreshes the pin/staged gauges from current state.
func (s *Service) updateGauges() {
	var pinnedB, stagedB int64
	for _, pin := range s.pins {
		pinnedB += pin.Bytes
	}
	for _, st := range s.staged {
		stagedB += st.Bytes
	}
	s.pinsG.Set(int64(len(s.pins)))
	s.pinnedBG.Set(pinnedB)
	s.stagedBG.Set(stagedB)
	s.queuedG.Set(int64(len(s.queue)))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// segBytes is the segment size in bytes (convenience for GC accounting).
func (s *Service) segBytes() int64 {
	return int64(s.HL.Amap.SegBlocks()) * lfs.BlockSize
}
