package hsm_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hsm"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/sim"
)

// TestRankerMatchesSTP checks the pass-through contract: the Ranker
// adapter over the paper's STP policy selects exactly what STP selects
// directly, so extracting the policy interface changes nothing for the
// default ranker.
func TestRankerMatchesSTP(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		for i, nblocks := range []int{4, 12, 8} {
			path := "/f" + string(rune('a'+i))
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, nblocks*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			p.Sleep(sim.Time(30 * time.Second))
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Time(60 * time.Second))

		direct, err := migrate.NewSTP().Select(p, hl, 10*lfs.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		viaRanker, err := hsm.Ranker{P: migrate.NewSTP()}.Rank(p, hsm.PolicyInputs{
			HL: hl, Heat: hl.Heat, Now: p.Now(), TargetBytes: 10 * lfs.BlockSize,
			Pinned: hl.InodePinned,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, viaRanker) {
			t.Fatalf("ranker diverged from direct STP:\n direct: %+v\n ranker: %+v", direct, viaRanker)
		}
	})
}

// TestLRUOrdersByAgeOnly checks the pure-LRU competitor: candidates rank
// strictly oldest-first regardless of size.
func TestLRUOrdersByAgeOnly(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		mk := func(path string, nblocks int) {
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, nblocks*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
		}
		mk("/old-small", 2)
		p.Sleep(sim.Time(100 * time.Second))
		mk("/young-big", 32)
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Time(10 * time.Second))

		lru := &hsm.LRU{}
		cands, err := lru.Rank(p, hsm.PolicyInputs{
			HL: hl, Heat: hl.Heat, Now: p.Now(), Pinned: hl.InodePinned,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 2 || cands[0].Path != "/old-small" || cands[1].Path != "/young-big" {
			t.Fatalf("LRU ranking: %+v", cands)
		}
	})
}

// TestHeatCostDemotesRecentFiles checks the heat-weighted-cost competitor
// against the pure space-time product: a big file touched moments ago has
// the larger raw space-time score, but the recency discount ranks the
// stone-cold small file first — exactly the behavior that avoids staging
// out files an interactive user is about to come back to.
func TestHeatCostDemotesRecentFiles(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		mk := func(path string, nblocks int) {
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, nblocks*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			if err := hl.FS.Sync(p); err != nil {
				t.Fatal(err)
			}
		}
		mk("/cold-small", 1) // age 120s, 1 block
		p.Sleep(sim.Time(117 * time.Second))
		mk("/warm-big", 64) // age 3s, 64 blocks
		p.Sleep(sim.Time(3 * time.Second))

		in := hsm.PolicyInputs{HL: hl, Heat: hl.Heat, Now: p.Now(), Pinned: hl.InodePinned}
		stp, err := (hsm.Ranker{P: migrate.NewSTP()}).Rank(p, in)
		if err != nil {
			t.Fatal(err)
		}
		if stp[0].Path != "/warm-big" {
			t.Fatalf("STP control ranking unexpected: %+v", stp)
		}
		hc, err := (&hsm.HeatCost{}).Rank(p, in)
		if err != nil {
			t.Fatal(err)
		}
		if len(hc) != 2 || hc[0].Path != "/cold-small" {
			t.Fatalf("heat-cost ranking: %+v", hc)
		}
	})
}

// TestPoliciesSkipPinned checks every competitor honors the pin guard.
func TestPoliciesSkipPinned(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		var inums []uint32
		for _, path := range []string{"/pa", "/pb"} {
			f, err := hl.FS.Create(p, path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, 4*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			inums = append(inums, f.Inum())
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Time(60 * time.Second))
		hl.PinInode(inums[0])

		in := hsm.PolicyInputs{HL: hl, Heat: hl.Heat, Now: p.Now(), Pinned: hl.InodePinned}
		for _, pol := range []hsm.Policy{
			hsm.Ranker{P: migrate.NewSTP()},
			&hsm.LRU{},
			&hsm.HeatCost{},
		} {
			cands, err := pol.Rank(p, in)
			if err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
			for _, c := range cands {
				if c.Inum == inums[0] {
					t.Fatalf("%s selected the pinned inode: %+v", pol.Name(), cands)
				}
			}
			if len(cands) == 0 || cands[0].Inum != inums[1] {
				t.Fatalf("%s missed the unpinned file: %+v", pol.Name(), cands)
			}
		}
	})
}

// TestAsMigratePolicyDrivesMigrator plugs a competitor into the existing
// Migrator and checks it actually moves what the policy ranked.
func TestAsMigratePolicyDrivesMigrator(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		hl, _, _ := rig(t, p, k)
		f, err := hl.FS.Create(p, "/mig")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 16*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(sim.Time(120 * time.Second))

		m := migrate.NewMigrator(hl)
		m.Policy = hsm.AsMigratePolicy(&hsm.LRU{}, nil)
		staged, err := m.RunOnce(p, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if staged == 0 {
			t.Fatal("LRU-driven migrator staged nothing")
		}
		refs, err := hl.FS.FileBlockRefs(p, f.Inum())
		if err != nil {
			t.Fatal(err)
		}
		tert := 0
		for _, ref := range refs {
			if hl.Amap.IsTertiarySeg(hl.Amap.SegOf(ref.Addr)) {
				tert++
			}
		}
		// 16 data blocks plus the file's indirect block.
		if tert < 16 {
			t.Fatalf("migrated only %d of 16 blocks under the LRU policy", tert)
		}
	})
}
