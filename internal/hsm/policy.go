package hsm

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/migrate"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// PolicyInputs is everything a migration policy may consult: the mounted
// instance (namespace, segment metadata), the heat-attribution table, the
// current virtual time, the byte target, and the HSM state hooks — which
// files are pinned, and how much quota pressure the staged tier is under.
type PolicyInputs struct {
	HL          *core.HighLight
	Heat        *attr.Table
	Now         sim.Time
	TargetBytes int64
	// Pinned reports whether an inode is HSM-pinned; pinned files are
	// never candidates. Never nil (filled by the adapter).
	Pinned func(inum uint32) bool
	// QuotaPressure is the fraction of quota-bearing principals over
	// their soft staged limit (0 with no quotas): policies may migrate
	// more aggressively when the staged tier is under pressure.
	QuotaPressure float64
}

// Policy ranks migration candidates from the inputs, best first, recording
// its verdicts (selected / skipped / pin-guard) in the instance's decision
// audit. Implementations must be deterministic: same inputs, same ranking,
// same audit records.
type Policy interface {
	Name() string
	Rank(p *sim.Proc, in PolicyInputs) ([]migrate.Candidate, error)
}

// Ranker adapts an existing migrate.Policy (the paper's STP and namespace
// rankers) to the hsm.Policy interface. It is a bit-identical pass-through:
// the wrapped policy runs exactly as it would under the migrator directly,
// and the pin guard is the one already inside the rankers.
type Ranker struct{ P migrate.Policy }

// Name implements Policy.
func (r Ranker) Name() string { return r.P.Name() }

// Rank implements Policy.
func (r Ranker) Rank(p *sim.Proc, in PolicyInputs) ([]migrate.Candidate, error) {
	return r.P.Select(p, in.HL, in.TargetBytes)
}

// LRU is the pure least-recently-used competitor: rank strictly by access
// age, oldest first, ignoring size. The classic archive policy the early
// migration studies (and §5.1) compare STP against — it moves the coldest
// files but wastes staging passes on small ones.
type LRU struct {
	// MinAge excludes recently active files entirely.
	MinAge sim.Time
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Rank implements Policy.
func (l *LRU) Rank(p *sim.Proc, in PolicyInputs) ([]migrate.Candidate, error) {
	cands, err := walkCandidates(p, in, "policy:lru", l.MinAge, func(age sim.Time, size uint64) float64 {
		return age.Seconds()
	})
	if err != nil {
		return nil, err
	}
	return rankAndTake(in, "policy:lru", cands)
}

// HeatCost is the heat-weighted-cost competitor: the space-time product
// discounted by the file's recent heat, so a large old file that is still
// being touched ranks below a slightly smaller stone-cold one. Score =
// age × size / (1 + HeatWeight × 2^(-age/halfLife)): for ages much larger
// than the half-life the discount vanishes and the ranking converges to
// STP; for recently touched files the denominator demotes them sharply —
// exactly the files whose eviction would cause interactive stalls.
type HeatCost struct {
	MinAge sim.Time
	// HeatWeight scales the recency discount (default 8 when zero).
	HeatWeight float64
}

// Name implements Policy.
func (h *HeatCost) Name() string { return "heatcost" }

// Rank implements Policy.
func (h *HeatCost) Rank(p *sim.Proc, in PolicyInputs) ([]migrate.Candidate, error) {
	w := h.HeatWeight
	if w == 0 {
		w = 8
	}
	half := attr.DefaultHalfLife.Seconds()
	if in.Heat != nil && in.Heat.HalfLife > 0 {
		half = in.Heat.HalfLife.Seconds()
	}
	cands, err := walkCandidates(p, in, "policy:heatcost", h.MinAge, func(age sim.Time, size uint64) float64 {
		hot := math.Exp2(-age.Seconds() / half)
		return age.Seconds() * float64(size) / (1 + w*hot)
	})
	if err != nil {
		return nil, err
	}
	return rankAndTake(in, "policy:heatcost", cands)
}

// walkCandidates walks the namespace collecting scoreable files, skipping
// pinned ones (audited) and those younger than minAge.
func walkCandidates(p *sim.Proc, in PolicyInputs, actor string, minAge sim.Time,
	score func(age sim.Time, size uint64) float64) ([]migrate.Candidate, error) {
	var cands []migrate.Candidate
	err := in.HL.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		if fi.Type != lfs.TypeFile || fi.Size == 0 {
			return nil
		}
		if in.Pinned(fi.Inum) {
			in.HL.Audit.Record(attr.Decision{
				T: in.Now, Actor: actor, Subject: "file:" + path,
				Seg: -1, Verdict: attr.VerdictPinGuard, Reason: "file is HSM-pinned",
				Inputs: []attr.Input{attr.In("size", float64(fi.Size))},
			})
			return nil
		}
		age := in.Now - sim.Time(fi.Atime)
		if age < 0 {
			age = 0
		}
		if age < minAge {
			in.HL.Audit.Record(attr.Decision{
				T: in.Now, Actor: actor, Subject: "file:" + path,
				Seg: -1, Verdict: attr.VerdictSkipped, Reason: "younger than min age",
				Inputs: []attr.Input{attr.In("age_s", age.Seconds()), attr.In("size", float64(fi.Size))},
			})
			return nil
		}
		cands = append(cands, migrate.Candidate{
			Inum: fi.Inum, Path: path, Size: fi.Size, Atime: fi.Atime,
			Score: score(age, fi.Size),
		})
		return nil
	})
	return cands, err
}

// rankAndTake sorts candidates best-first, keeps enough to reach the byte
// target, and audits one verdict per candidate.
func rankAndTake(in PolicyInputs, actor string, cands []migrate.Candidate) ([]migrate.Candidate, error) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Inum < cands[b].Inum
	})
	taken := len(cands)
	if in.TargetBytes > 0 {
		var total int64
		taken = 0
		for _, c := range cands {
			total += int64(c.Size)
			taken++
			if total >= in.TargetBytes {
				break
			}
		}
	}
	for i, c := range cands {
		d := attr.Decision{
			T: in.Now, Actor: actor, Subject: "file:" + c.Path,
			Seg: -1, Verdict: attr.VerdictSelected,
			Inputs: []attr.Input{
				attr.In("rank", float64(i)),
				attr.In("score", c.Score),
				attr.In("age_s", (in.Now - sim.Time(c.Atime)).Seconds()),
				attr.In("size", float64(c.Size)),
			},
		}
		if i >= taken {
			d.Verdict = attr.VerdictSkipped
			d.Reason = "ranked past byte target"
		}
		in.HL.Audit.Record(d)
	}
	return cands[:taken], nil
}

// adapted turns an hsm.Policy into a migrate.Policy so the existing
// Migrator (daemon, throttle, pipelined RunOnce) can drive it unchanged.
type adapted struct {
	pol Policy
	svc *Service // nil: no quota state, pins come straight from core
}

// AsMigratePolicy wraps pol for the Migrator. svc may be nil when no HSM
// service is attached; pin state then comes from the core registries
// (which the service keeps in sync anyway).
func AsMigratePolicy(pol Policy, svc *Service) migrate.Policy {
	return &adapted{pol: pol, svc: svc}
}

// Name implements migrate.Policy.
func (a *adapted) Name() string { return a.pol.Name() }

// Select implements migrate.Policy.
func (a *adapted) Select(p *sim.Proc, hl *core.HighLight, targetBytes int64) ([]migrate.Candidate, error) {
	in := PolicyInputs{
		HL: hl, Heat: hl.Heat, Now: p.Now(), TargetBytes: targetBytes,
		Pinned: hl.InodePinned,
	}
	if a.svc != nil {
		in.QuotaPressure = a.svc.quotaPressure()
	}
	return a.pol.Rank(p, in)
}

// quotaPressure is the fraction of quota-bearing principals over their
// soft staged limit.
func (s *Service) quotaPressure() float64 {
	var n, over int
	for pr, q := range s.quotas {
		if q.StagedSoft <= 0 {
			continue
		}
		n++
		if staged, _ := s.UsageOf(pr); staged > q.StagedSoft {
			over++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(over) / float64(n)
}
