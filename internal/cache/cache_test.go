package cache

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

func pool(n int) []addr.SegNo {
	out := make([]addr.SegNo, n)
	for i := range out {
		out[i] = addr.SegNo(100 + i)
	}
	return out
}

func TestLookupMissAndInsert(t *testing.T) {
	c := New(LRU, pool(4), 1)
	if _, ok := c.Lookup(7, 0); ok {
		t.Fatal("hit on empty cache")
	}
	seg, ok := c.TakeFree()
	if !ok {
		t.Fatal("no free line in fresh cache")
	}
	c.Insert(7, seg, false, 10)
	l, ok := c.Lookup(7, 20)
	if !ok || l.DiskSeg != seg {
		t.Fatalf("lookup after insert: %v %v", l, ok)
	}
	if l.LastUse != 20 {
		t.Fatal("lookup did not update recency")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDuplicateInsertError(t *testing.T) {
	c := New(LRU, pool(2), 1)
	s1, _ := c.TakeFree()
	s2, _ := c.TakeFree()
	if _, err := c.Insert(1, s1, false, 0); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	_, err := c.Insert(1, s2, false, 0)
	if !errors.Is(err, ErrDuplicateLine) {
		t.Fatalf("duplicate insert error = %v, want ErrDuplicateLine", err)
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(LRU, pool(3), 1)
	for i := 0; i < 3; i++ {
		s, _ := c.TakeFree()
		c.Insert(i, s, false, sim.Time(i)*time.Second)
	}
	// Touch 0 so 1 becomes least recent.
	c.Lookup(0, 10*time.Second)
	v := c.Victim()
	if v == nil || v.Tag != 1 {
		t.Fatalf("LRU victim = %v, want tag 1", v)
	}
}

func TestFIFOVictim(t *testing.T) {
	c := New(FIFO, pool(3), 1)
	for i := 0; i < 3; i++ {
		s, _ := c.TakeFree()
		c.Insert(i, s, false, sim.Time(i)*time.Second)
	}
	c.Lookup(0, 10*time.Second) // recency must NOT matter for FIFO
	v := c.Victim()
	if v == nil || v.Tag != 0 {
		t.Fatalf("FIFO victim = %v, want tag 0 (oldest fetch)", v)
	}
}

func TestRandomVictimIsClean(t *testing.T) {
	c := New(Random, pool(4), 7)
	for i := 0; i < 4; i++ {
		s, _ := c.TakeFree()
		l, _ := c.Insert(i, s, false, 0)
		if i == 2 {
			l.Pins = 1
		}
		if i == 3 {
			l.Staging = true
		}
	}
	for i := 0; i < 50; i++ {
		v := c.Victim()
		if v == nil {
			t.Fatal("no victim")
		}
		if v.Tag == 2 || v.Tag == 3 {
			t.Fatalf("random victim picked pinned/staging line %d", v.Tag)
		}
	}
}

func TestStagingAndPinnedNeverEvicted(t *testing.T) {
	c := New(LRU, pool(2), 1)
	s1, _ := c.TakeFree()
	l1, _ := c.Insert(1, s1, true, 0) // staging
	s2, _ := c.TakeFree()
	l2, _ := c.Insert(2, s2, false, 0)
	l2.Pins = 1
	if v := c.Victim(); v != nil {
		t.Fatalf("victim %d despite all lines protected", v.Tag)
	}
	l1.Staging = false
	l2.Pins = 0
	if v := c.Victim(); v == nil {
		t.Fatal("no victim after unprotecting")
	}
}

func TestEvictReturnsSegmentForReuse(t *testing.T) {
	c := New(LRU, pool(1), 1)
	s, _ := c.TakeFree()
	l, _ := c.Insert(5, s, false, 0)
	got, err := c.Evict(l)
	if err != nil {
		t.Fatalf("evict: %v", err)
	}
	if got != s {
		t.Fatalf("evict returned %d, want %d", got, s)
	}
	if _, ok := c.Peek(5); ok {
		t.Fatal("line still present after evict")
	}
	c.Release(got)
	if _, ok := c.TakeFree(); !ok {
		t.Fatal("released segment not reusable")
	}
}

func TestBypassFirstRefPrefersUnworthy(t *testing.T) {
	c := New(LRU, pool(3), 1)
	c.BypassFirstRef = true
	for i := 0; i < 3; i++ {
		s, _ := c.TakeFree()
		c.Insert(i, s, false, sim.Time(i)*time.Second)
	}
	// Re-reference 0 and 1; 2 stays unworthy and must be the victim even
	// though it is the most recently fetched.
	c.Lookup(0, 5*time.Second)
	c.Lookup(1, 6*time.Second)
	v := c.Victim()
	if v == nil || v.Tag != 2 {
		t.Fatalf("victim = %v, want unworthy tag 2", v)
	}
}

func TestEvictTypedErrors(t *testing.T) {
	c := New(LRU, pool(2), 1)
	s, _ := c.TakeFree()
	l, _ := c.Insert(1, s, true, 0)
	if _, err := c.Evict(l); !errors.Is(err, ErrEvictStaging) {
		t.Fatalf("evict staging error = %v, want ErrEvictStaging", err)
	}
	l.Staging = false
	l.Pins = 1
	if _, err := c.Evict(l); !errors.Is(err, ErrEvictPinned) {
		t.Fatalf("evict pinned error = %v, want ErrEvictPinned", err)
	}
	l.Pins = 0
	if _, err := c.Evict(l); err != nil {
		t.Fatalf("evict clean line: %v", err)
	}
	if _, err := c.Evict(l); !errors.Is(err, ErrEvictUnknown) {
		t.Fatalf("double evict error = %v, want ErrEvictUnknown", err)
	}
}

// TestPropertyCacheInvariants drives the cache with random operations and
// checks structural invariants after each: occupied + free == capacity,
// no tag appears twice, and victims are never staging or pinned.
func TestPropertyCacheInvariants(t *testing.T) {
	rng := sim.NewRNG(12345)
	c := New(LRU, pool(6), 99)
	type held struct {
		line *Line
	}
	lines := map[int]*held{}
	now := sim.Time(0)
	for op := 0; op < 2000; op++ {
		now += sim.Time(rng.Intn(1000)) * time.Millisecond
		switch rng.Intn(5) {
		case 0: // insert
			if seg, ok := c.TakeFree(); ok {
				tag := rng.Intn(50)
				if _, dup := lines[tag]; dup {
					c.Release(seg)
					continue
				}
				l, err := c.Insert(tag, seg, rng.Intn(4) == 0, now)
				if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				lines[tag] = &held{l}
			}
		case 1: // lookup
			if len(lines) > 0 {
				for tag := range lines {
					c.Lookup(tag, now)
					break
				}
			}
		case 2: // evict victim
			if v := c.Victim(); v != nil {
				if v.Staging || v.Pins > 0 {
					t.Fatalf("op %d: victim %d is staging/pinned", op, v.Tag)
				}
				seg, err := c.Evict(v)
				if err != nil {
					t.Fatalf("op %d: evict: %v", op, err)
				}
				c.Release(seg)
				delete(lines, v.Tag)
			}
		case 3: // toggle pins
			for tag, h := range lines {
				if rng.Intn(2) == 0 {
					h.line.Pins = rng.Intn(2)
				}
				_ = tag
				break
			}
		case 4: // clear staging
			for _, h := range lines {
				h.line.Staging = false
				break
			}
		}
		if c.Len()+c.FreeLines() != c.Capacity() {
			t.Fatalf("op %d: %d occupied + %d free != %d capacity", op, c.Len(), c.FreeLines(), c.Capacity())
		}
		seen := map[addr.SegNo]bool{}
		for _, l := range c.Lines() {
			if seen[l.DiskSeg] {
				t.Fatalf("op %d: disk segment %d bound to two lines", op, l.DiskSeg)
			}
			seen[l.DiskSeg] = true
		}
	}
}
