// Package cache implements HighLight's disk-resident segment cache (§4,
// §5.4): whole tertiary segments staged on disk segments, managed by a
// cache directory keyed by tertiary segment index. Cached lines are almost
// always read-only copies of the tertiary-resident version and may be
// discarded at any time; the exception is staging segments being assembled
// before transfer, which stay pinned until copied out.
package cache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Typed sentinel errors, errors.Is-matchable so that directory
// inconsistencies found while rebuilding state from media (mount after a
// crash, fsck) surface as mount/check failures instead of crashing the
// process.
var (
	// ErrDuplicateLine marks an Insert for a tertiary segment that already
	// has a line — two disk segments claiming the same tertiary segment.
	ErrDuplicateLine = errors.New("cache: duplicate line for tertiary segment")
	// ErrEvictStaging marks an Evict of a staging line, which would lose
	// the sole copy of migrated data.
	ErrEvictStaging = errors.New("cache: evicting a staging line would lose the sole copy")
	// ErrEvictPinned marks an Evict of a line with active readers or an
	// in-flight copyout.
	ErrEvictPinned = errors.New("cache: evicting a pinned line")
	// ErrEvictLocked marks an Evict of a line whose tertiary segment is
	// HSM-pinned: the hierarchical storage manager promised the data stays
	// staged, so the evictor must route around it.
	ErrEvictLocked = errors.New("cache: evicting an HSM-pinned line")
	// ErrEvictUnknown marks an Evict of a line not in the directory.
	ErrEvictUnknown = errors.New("cache: evicting unknown line")
)

// Policy selects eviction victims.
type Policy int

const (
	// LRU evicts the least-recently-used clean line.
	LRU Policy = iota
	// FIFO evicts the oldest-fetched clean line.
	FIFO
	// Random evicts a uniformly random clean line.
	Random
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return "unknown"
}

// Line is one cache line: a disk segment holding a copy of one tertiary
// segment.
type Line struct {
	Tag     int        // tertiary segment index
	DiskSeg addr.SegNo // the disk segment holding the copy
	Staging bool       // freshly assembled, not yet on tertiary storage
	Pins    int        // active readers / in-flight copyout

	FetchTime sim.Time // when the line was filled (FIFO)
	LastUse   sim.Time // last access (LRU)
	Worthy    bool     // false until re-referenced (§10 bypass variant)
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses    int64
	Inserts, Evicts int64
	StagingLines    int64
}

// Cache is the segment cache directory. It owns a fixed pool of disk
// segments claimed from the file system at mount time (the static cache
// split of §6.4) and is safe to use from any sim process: all operations
// complete without blocking.
type Cache struct {
	policy   Policy
	lines    map[int]*Line
	free     []addr.SegNo
	capacity int
	rng      *sim.RNG
	stats    Stats
	obs      *obs.Obs // nil = not instrumented
	occupied *obs.Gauge
	heat     *attr.Table // nil = no attribution

	// BypassFirstRef, when set, marks newly fetched lines "least worthy":
	// they are preferred eviction victims until referenced again (the
	// §10 future-work variant approximating cache-bypassing reads).
	BypassFirstRef bool

	// Locked, when set, reports whether a tertiary segment is HSM-pinned:
	// Victim never selects a locked line and Evict refuses one with
	// ErrEvictLocked. Installed by the core layer so the directory itself
	// stays free of HSM state.
	Locked func(tag int) bool
}

// New returns a cache over the given pre-claimed disk segments.
func New(policy Policy, pool []addr.SegNo, seed uint64) *Cache {
	c := &Cache{
		policy:   policy,
		lines:    make(map[int]*Line),
		capacity: len(pool),
		rng:      sim.NewRNG(seed),
	}
	c.free = append(c.free, pool...)
	return c
}

// Capacity reports the total line count (free + used).
func (c *Cache) Capacity() int { return c.capacity }

// Len reports the number of occupied lines.
func (c *Cache) Len() int { return len(c.lines) }

// FreeLines reports the number of unoccupied pool segments.
func (c *Cache) FreeLines() int { return len(c.free) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetObs attaches an observability domain: lookups, inserts, and
// evictions emit instant events on the "cache" track, hit/miss
// counters, and an occupied-lines gauge.
func (c *Cache) SetObs(o *obs.Obs) {
	c.obs = o
	c.occupied = o.Gauge("cache.lines")
}

// SetAttr attaches a heat-attribution table: every hit, miss, and
// eviction is attributed to the tertiary segment it touched.
func (c *Cache) SetAttr(t *attr.Table) { c.heat = t }

// Lookup finds the line caching tertiary segment tag, updating recency.
func (c *Cache) Lookup(tag int, now sim.Time) (*Line, bool) {
	l, ok := c.lines[tag]
	if !ok {
		c.stats.Misses++
		c.obs.Instant("cache", "cache.miss", "miss", obs.Arg{Key: "tag", Val: int64(tag)})
		c.obs.Counter("cache.misses").Add(1)
		c.heat.Touch(tag, attr.Miss, now)
		return nil, false
	}
	l.LastUse = now
	l.Worthy = true
	c.stats.Hits++
	c.obs.Instant("cache", "cache.hit", "hit", obs.Arg{Key: "tag", Val: int64(tag)})
	c.obs.Counter("cache.hits").Add(1)
	c.heat.Touch(tag, attr.Hit, now)
	return l, true
}

// Peek finds a line without touching recency or statistics.
func (c *Cache) Peek(tag int) (*Line, bool) {
	l, ok := c.lines[tag]
	return l, ok
}

// Insert binds a pool segment to tag and returns the new line. The caller
// must have obtained seg from TakeFree or a prior Evict. It returns
// ErrDuplicateLine if tag already has a line (e.g. a corrupt cache
// directory reconstructed from media).
func (c *Cache) Insert(tag int, seg addr.SegNo, staging bool, now sim.Time) (*Line, error) {
	if _, dup := c.lines[tag]; dup {
		return nil, fmt.Errorf("%w: tag %d (disk segment %d)", ErrDuplicateLine, tag, seg)
	}
	l := &Line{
		Tag:       tag,
		DiskSeg:   seg,
		Staging:   staging,
		FetchTime: now,
		LastUse:   now,
		Worthy:    !c.BypassFirstRef,
	}
	c.lines[tag] = l
	c.stats.Inserts++
	if staging {
		c.stats.StagingLines++
	}
	c.obs.Instant("cache", "cache.insert", "insert",
		obs.Arg{Key: "tag", Val: int64(tag)}, obs.Arg{Key: "seg", Val: int64(seg)})
	c.occupied.Set(int64(len(c.lines)))
	return l, nil
}

// TakeFree claims an unoccupied pool segment, if any.
func (c *Cache) TakeFree() (addr.SegNo, bool) {
	if len(c.free) == 0 {
		return 0, false
	}
	s := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return s, true
}

// Victim selects an evictable line per the policy: never staging (the sole
// copy of migrated data) and never pinned. Returns nil if none qualifies.
func (c *Cache) Victim() *Line {
	var cands []*Line
	for _, l := range c.lines {
		if l.Staging || l.Pins > 0 {
			continue
		}
		if c.Locked != nil && c.Locked(l.Tag) {
			continue
		}
		cands = append(cands, l)
	}
	if len(cands) == 0 {
		return nil
	}
	// Unworthy (never re-referenced) lines go first regardless of policy.
	var pick *Line
	better := func(a, b *Line) bool {
		if a.Worthy != b.Worthy {
			return !a.Worthy
		}
		switch c.policy {
		case LRU:
			if a.LastUse != b.LastUse {
				return a.LastUse < b.LastUse
			}
		case FIFO:
			if a.FetchTime != b.FetchTime {
				return a.FetchTime < b.FetchTime
			}
		case Random:
			// Handled below.
		}
		return a.Tag < b.Tag // deterministic tiebreak
	}
	if c.policy == Random {
		// Still prefer unworthy lines; choose randomly among the rest.
		var unworthy []*Line
		for _, l := range cands {
			if !l.Worthy {
				unworthy = append(unworthy, l)
			}
		}
		if len(unworthy) > 0 {
			cands = unworthy
		}
		// cands was built from map iteration; order it before the draw or
		// the seeded RNG still yields run-dependent victims.
		sort.Slice(cands, func(i, j int) bool { return cands[i].Tag < cands[j].Tag })
		return cands[c.rng.Intn(len(cands))]
	}
	for _, l := range cands {
		if pick == nil || better(l, pick) {
			pick = l
		}
	}
	return pick
}

// Evict removes the line and returns its disk segment for reuse. It
// refuses — with a typed error — to evict staging, pinned, or unknown
// lines, so a bad eviction target found while rebuilding after a crash is
// reported instead of crashing the process.
func (c *Cache) Evict(l *Line) (addr.SegNo, error) {
	if l.Staging {
		return 0, fmt.Errorf("%w: tag %d (disk segment %d)", ErrEvictStaging, l.Tag, l.DiskSeg)
	}
	if l.Pins > 0 {
		return 0, fmt.Errorf("%w: tag %d (%d pins)", ErrEvictPinned, l.Tag, l.Pins)
	}
	if c.Locked != nil && c.Locked(l.Tag) {
		return 0, fmt.Errorf("%w: tag %d", ErrEvictLocked, l.Tag)
	}
	if c.lines[l.Tag] != l {
		return 0, fmt.Errorf("%w: tag %d", ErrEvictUnknown, l.Tag)
	}
	delete(c.lines, l.Tag)
	c.stats.Evicts++
	c.obs.Instant("cache", "cache.evict", "evict",
		obs.Arg{Key: "tag", Val: int64(l.Tag)}, obs.Arg{Key: "seg", Val: int64(l.DiskSeg)})
	c.occupied.Set(int64(len(c.lines)))
	c.heat.Touch(l.Tag, attr.Evict, c.obs.Now())
	return l.DiskSeg, nil
}

// Release returns a disk segment to the free pool (used when a line is
// dropped without immediate reuse).
func (c *Cache) Release(seg addr.SegNo) { c.free = append(c.free, seg) }

// Lines returns all occupied lines in tag order. The order is part of
// the contract: callers eject or restage in iteration order, and that
// order is observable (free-list reuse order, trace events), so it must
// not vary with map iteration.
func (c *Cache) Lines() []*Line {
	out := make([]*Line, 0, len(c.lines))
	for _, l := range c.lines {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}
