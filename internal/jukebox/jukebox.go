// Package jukebox models robotic tertiary storage devices: a magneto-optic
// autochanger (the paper's HP 6300) and a robotic tape library (the
// Sequoia Metrum unit), exposed through the Footprint abstract robotic
// device interface of §2/§6.5.
//
// A jukebox has a set of drives, a robot picker, and an array of media
// volumes, each holding a fixed array of segments. Loading a volume costs a
// swap (13.5 s for the MO changer, Table 5) during which the picker — and,
// matching the paper's non-disconnecting device driver — the whole SCSI bus
// is held.
package jukebox

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dev"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// ErrEndOfMedium is returned by WriteSegment when the volume cannot hold
// the segment (e.g. device-level compression fell short of expectations,
// §6.3). HighLight responds by marking the volume full and re-writing the
// segment to the next volume.
var ErrEndOfMedium = errors.New("jukebox: end of medium")

// Typed sentinel errors, errors.Is-matchable so the recovery layer can
// tell programmer bugs (bad arguments, WORM violations: never retried)
// from media and mechanism faults (retried or failed over).
var (
	// ErrWriteOnce is returned when a written segment of a write-once
	// medium is overwritten. It marks a software bug in the caller, not a
	// media fault, and must never be retried.
	ErrWriteOnce = errors.New("jukebox: write-once violation")
	// ErrOutOfRange is returned for a volume, segment, or buffer size
	// outside the device geometry — likewise a programmer bug.
	ErrOutOfRange = errors.New("jukebox: argument out of range")
	// ErrDriveOffline is returned when no healthy drive can serve a
	// request (all drives offline/stuck). It is treated as transient:
	// the drive may come back, so callers retry with backoff.
	ErrDriveOffline = errors.New("jukebox: no healthy drive available")
)

// Footprint is Sequoia's abstract robotic storage interface: HighLight sees
// volumes of segments and never the device details (§6.5). The library is
// linked into the I/O server; an RPC transport could implement the same
// interface for a remote jukebox.
type Footprint interface {
	// ReadSegment reads segment seg of volume vol into buf (whole
	// segments only; len(buf) must be SegmentBytes).
	ReadSegment(p *sim.Proc, vol, seg int, buf []byte) error
	// WriteSegment writes segment seg of volume vol from buf. It returns
	// ErrEndOfMedium if the volume is full.
	WriteSegment(p *sim.Proc, vol, seg int, buf []byte) error
	// Volumes reports the number of media volumes.
	Volumes() int
	// SegmentsPerVolume reports the nominal segment capacity per volume.
	SegmentsPerVolume() int
	// SegmentBytes reports the transfer unit size in bytes.
	SegmentBytes() int
}

// MediaProfile is the timing model of a tertiary device family.
type MediaProfile struct {
	Name       string
	MediaRead  int64    // bytes/second off the medium
	MediaWrite int64    // bytes/second onto the medium
	Rotation   sim.Time // per-request rotational latency (0 for tape)
	SeekBase   sim.Time // minimum positioning time for a non-sequential access
	SeekPerSeg sim.Time // additional positioning time per segment of distance
	SwapTime   sim.Time // eject + robot move + load + ready
	Tape       bool     // sequential medium: long spooling seeks
}

// Calibrated profiles. Effective rates (with the shared 3.9 MB/s SCSI bus
// and per-request rotation) match Table 5: MO read 451 KB/s, MO write
// 204 KB/s, volume change 13.5 s.
var (
	// MO6300 models the HP 6300 magneto-optic changer used in §7.
	MO6300 = MediaProfile{
		Name:       "HP6300-MO",
		MediaRead:  513 * 1024,
		MediaWrite: 215 * 1024,
		Rotation:   12 * time.Millisecond,
		SeekBase:   40 * time.Millisecond,
		SeekPerSeg: 300 * time.Microsecond,
		SwapTime:   13400 * time.Millisecond,
	}
	// Metrum models the 600-cartridge Metrum robotic tape unit (14.5 GB
	// per cartridge) that provides Sequoia's bulk storage (§2).
	Metrum = MediaProfile{
		Name:       "Metrum-VHS",
		MediaRead:  1200 * 1024,
		MediaWrite: 1200 * 1024,
		SeekBase:   12 * time.Second,
		SeekPerSeg: 20 * time.Millisecond,
		SwapTime:   50 * time.Second,
		Tape:       true,
	}
	// SonyWORM approximates the Sony write-once optical jukebox (§2).
	// Writes to a written segment fail (write-once).
	SonyWORM = MediaProfile{
		Name:       "Sony-WORM",
		MediaRead:  600 * 1024,
		MediaWrite: 300 * 1024,
		Rotation:   12 * time.Millisecond,
		SeekBase:   60 * time.Millisecond,
		SeekPerSeg: 350 * time.Microsecond,
		SwapTime:   9 * time.Second,
	}
)

// Stats accumulates jukebox counters, used for the Table 4 breakdown and
// the fault-visibility report (hldump -faults).
type Stats struct {
	Swaps                   int64
	SwapTime                sim.Time
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	ReadTime, WriteTime     sim.Time // includes positioning and swaps

	ReadFaults  int64 // reads aborted by the Fault hook
	WriteFaults int64 // writes aborted by the Fault hook
	LoadFaults  int64 // volume loads aborted by the Fault hook
	Failovers   int64 // requests redirected off an offline drive
}

type volume struct {
	nominalSegs int
	actualSegs  int // may be < nominal when compression falls short
	full        bool
	store       map[int][]byte
	writes      int64 // write-once bookkeeping
}

type drive struct {
	id      int
	arm     *sim.Resource
	loaded  int // volume index, -1 if empty
	pos     int // head position in segments
	lastUse sim.Time
	offline bool // stuck or failed: not eligible for new requests
}

// Jukebox is a simulated robotic storage device implementing Footprint.
type Jukebox struct {
	k          *sim.Kernel
	prof       MediaProfile
	segBytes   int
	segsPerVol int
	drives     []*drive
	vols       []*volume
	picker     *sim.Resource
	bus        *dev.Bus
	stats      Stats

	obs   *obs.Obs // nil = not instrumented
	track string

	// WriteDrive is the drive reserved for the currently-active writing
	// volume (§7: "one drive was allocated for the currently-active
	// writing segment, and the other for reading other platters"). Reads
	// prefer other drives but are served by the write drive when their
	// volume is already loaded there. -1 disables the reservation.
	WriteDrive int

	// WriteOnce rejects overwrites of a written segment (Sony WORM).
	WriteOnce bool

	// Fault, if non-nil, may inject media errors per (op, vol, seg).
	// op is "read" or "write" (checked before the transfer), or "load"
	// with seg == -1 (checked before a media swap loads vol into a
	// drive). Injected errors should wrap dev.ErrTransientMedia or
	// dev.ErrPermanentMedia so the recovery layer can classify them.
	Fault func(op string, vol, seg int) error

	// OnMediaWrite, if non-nil, observes segment writes becoming durable.
	// It fires twice per WriteSegment — once with only the first half of
	// the segment applied (the torn-write point a power cut exposes) and
	// once when the whole segment is on the medium — and once per
	// EraseVolume with seg == -1. It runs synchronously with no
	// virtual-time cost.
	OnMediaWrite func(vol, seg int)
}

// ErrBadGeometry is returned by New for a configuration without at least
// one drive, one volume, and one segment per volume.
var ErrBadGeometry = errors.New("jukebox: need at least one drive, volume, and segment")

// New returns a jukebox with ndrives drives and nvols volumes of
// segsPerVol segments of segBytes bytes. bus may be nil.
func New(k *sim.Kernel, prof MediaProfile, ndrives, nvols, segsPerVol, segBytes int, bus *dev.Bus) (*Jukebox, error) {
	if ndrives < 1 || nvols < 1 || segsPerVol < 1 {
		return nil, fmt.Errorf("%w: %d drives, %d volumes, %d segments/volume", ErrBadGeometry, ndrives, nvols, segsPerVol)
	}
	j := &Jukebox{
		k:          k,
		prof:       prof,
		segBytes:   segBytes,
		segsPerVol: segsPerVol,
		picker:     k.NewResource(prof.Name + ".picker"),
		bus:        bus,
		WriteDrive: 0,
		WriteOnce:  false,
	}
	if ndrives == 1 {
		j.WriteDrive = -1 // no spare drive to reserve
	}
	for i := 0; i < ndrives; i++ {
		j.drives = append(j.drives, &drive{
			id:     i,
			arm:    k.NewResource(fmt.Sprintf("%s.drive%d", prof.Name, i)),
			loaded: -1,
		})
	}
	for i := 0; i < nvols; i++ {
		j.vols = append(j.vols, &volume{
			nominalSegs: segsPerVol,
			actualSegs:  segsPerVol,
			store:       make(map[int][]byte),
		})
	}
	return j, nil
}

// MustNew is New panicking on a bad configuration — for tests and
// examples with static geometry.
func MustNew(k *sim.Kernel, prof MediaProfile, ndrives, nvols, segsPerVol, segBytes int, bus *dev.Bus) *Jukebox {
	j, err := New(k, prof, ndrives, nvols, segsPerVol, segBytes, bus)
	if err != nil {
		panic(err)
	}
	return j
}

// Volumes implements Footprint.
func (j *Jukebox) Volumes() int { return len(j.vols) }

// SegmentsPerVolume implements Footprint. The nominal geometry is kept in
// the jukebox itself, not derived from vols[0], so an emptied or retired
// library (zero volumes) can still be introspected without panicking.
func (j *Jukebox) SegmentsPerVolume() int {
	if len(j.vols) == 0 {
		return 0
	}
	return j.segsPerVol
}

// SegmentBytes implements Footprint.
func (j *Jukebox) SegmentBytes() int { return j.segBytes }

// SetObs attaches an observability domain: segment reads/writes and
// media swaps emit spans on the given track (default: the profile
// name). Instrumentation charges no virtual time.
func (j *Jukebox) SetObs(o *obs.Obs, track string) {
	if track == "" {
		track = j.prof.Name
	}
	j.obs, j.track = o, track
}

// Stats returns a snapshot of the counters.
func (j *Jukebox) Stats() Stats { return j.stats }

// Profile reports the media timing profile.
func (j *Jukebox) Profile() MediaProfile { return j.prof }

// SetActualSegments declares that volume vol can really hold only n
// segments (modelling worse-than-expected compression, §6.3).
func (j *Jukebox) SetActualSegments(vol, n int) {
	j.vols[vol].actualSegs = n
}

// VolumeFull reports whether vol has returned end-of-medium.
func (j *Jukebox) VolumeFull(vol int) bool { return j.vols[vol].full }

// EraseVolume discards all data on vol and clears its full mark (media
// reclamation by the tertiary cleaner).
func (j *Jukebox) EraseVolume(vol int) {
	v := j.vols[vol]
	v.store = make(map[int][]byte)
	v.full = false
	v.writes = 0
	if j.OnMediaWrite != nil {
		j.OnMediaWrite(vol, -1)
	}
}

// VolumeImage is a deep copy of one volume's durable state, taken by
// SnapshotVolumes for the crash harness.
type VolumeImage struct {
	ActualSegs int
	Full       bool
	Writes     int64
	Segs       map[int][]byte
}

// SnapshotVolumes returns deep copies of every volume's media state: what
// a power cut at this instant would preserve. (Tertiary media have no
// volatile write cache; a segment write is durable as its bytes land,
// which the two-phase OnMediaWrite hook exposes mid-write.)
func (j *Jukebox) SnapshotVolumes() []VolumeImage {
	out := make([]VolumeImage, len(j.vols))
	for i, v := range j.vols {
		img := VolumeImage{
			ActualSegs: v.actualSegs,
			Full:       v.full,
			Writes:     v.writes,
			Segs:       make(map[int][]byte, len(v.store)),
		}
		for seg, data := range v.store {
			cp := make([]byte, len(data))
			copy(cp, data)
			img.Segs[seg] = cp
		}
		out[i] = img
	}
	return out
}

// RestoreVolumes replaces the media state of every volume with deep
// copies from imgs (the jukebox after a power cut: drives unload, media
// survive). Drive positions reset to empty.
func (j *Jukebox) RestoreVolumes(imgs []VolumeImage) {
	for i, img := range imgs {
		if i >= len(j.vols) {
			break
		}
		v := j.vols[i]
		v.actualSegs = img.ActualSegs
		v.full = img.Full
		v.writes = img.Writes
		v.store = make(map[int][]byte, len(img.Segs))
		for seg, data := range img.Segs {
			cp := make([]byte, len(data))
			copy(cp, data)
			v.store[seg] = cp
		}
	}
	for _, d := range j.drives {
		d.loaded = -1
		d.pos = 0
	}
}

// LoadedVolume reports which volume drive d holds (-1 if empty).
func (j *Jukebox) LoadedVolume(d int) int { return j.drives[d].loaded }

// VolumeLoaded reports whether vol currently sits in a healthy drive (no
// swap needed to access it) — the "closest copy" test of §5.4. A volume
// stuck in an offline drive does not count: serving it requires a swap.
func (j *Jukebox) VolumeLoaded(vol int) bool {
	for _, d := range j.drives {
		if d.loaded == vol && !d.offline {
			return true
		}
	}
	return false
}

func (j *Jukebox) checkArgs(vol, seg int, buf []byte) error {
	if vol < 0 || vol >= len(j.vols) {
		return fmt.Errorf("%w: volume %d not in [0,%d)", ErrOutOfRange, vol, len(j.vols))
	}
	if seg < 0 || seg >= j.vols[vol].nominalSegs {
		return fmt.Errorf("%w: segment %d not in [0,%d)", ErrOutOfRange, seg, j.vols[vol].nominalSegs)
	}
	if len(buf) != j.segBytes {
		return fmt.Errorf("%w: buffer %d bytes, want %d", ErrOutOfRange, len(buf), j.segBytes)
	}
	return nil
}

// NumDrives reports how many drives the jukebox has.
func (j *Jukebox) NumDrives() int { return len(j.drives) }

// SetDriveOffline marks drive d unhealthy (stuck robot arm, failed drive)
// or returns it to service. An offline drive finishes its in-flight
// operation but accepts no new requests; other drives take over (failover)
// until every drive is offline, at which point operations fail with
// ErrDriveOffline.
func (j *Jukebox) SetDriveOffline(d int, offline bool) {
	j.drives[d].offline = offline
}

// DriveOffline reports whether drive d is out of service.
func (j *Jukebox) DriveOffline(d int) bool { return j.drives[d].offline }

// IdleHealthyDrives reports how many healthy drives are not currently
// serving a request (their arms are free). The library-aware fetch
// router prefers a copy in a library that can start a read without
// queueing behind in-flight transfers.
func (j *Jukebox) IdleHealthyDrives() int {
	n := 0
	for _, d := range j.drives {
		if !d.offline && !d.arm.Busy() {
			n++
		}
	}
	return n
}

// healthyDrives reports how many drives accept new requests.
func (j *Jukebox) healthyDrives() int {
	n := 0
	for _, d := range j.drives {
		if !d.offline {
			n++
		}
	}
	return n
}

// driveFor selects and loads a drive for volume vol, paying swap costs as
// needed, and returns it with its arm held. Offline drives are skipped
// (failover to the remaining drives); with every drive offline it fails
// with ErrDriveOffline, which the recovery layer retries with backoff.
func (j *Jukebox) driveFor(p *sim.Proc, vol int, forWrite bool) (*drive, error) {
	for attempt := 0; attempt <= len(j.drives); attempt++ {
		if j.healthyDrives() == 0 {
			return nil, fmt.Errorf("%w: %s: %d drives, all offline", ErrDriveOffline, j.prof.Name, len(j.drives))
		}
		// A volume already in a healthy drive is always served there
		// (the writing drive also fulfils read requests for its
		// platter, §7).
		for _, d := range j.drives {
			if d.loaded != vol {
				continue
			}
			if d.offline {
				// The natural drive is stuck: fail over to another
				// drive (which pays a swap to re-load the volume).
				j.stats.Failovers++
				break
			}
			d.arm.Acquire(p)
			if d.loaded == vol && !d.offline { // still there after waiting
				d.lastUse = p.Now()
				return d, nil
			}
			d.arm.Release(p)
			break
		}
		// Choose a drive to (re)load: the reserved write drive for
		// writes, otherwise the least-recently-used non-reserved drive —
		// offline drives excluded in both cases. Idle arms are preferred
		// over busy ones: with several I/O streams in flight, the LRU
		// drive is often the one a concurrent request just started
		// loading, and picking it would swap that volume straight back
		// out. With a single stream every arm is idle at pick time, so
		// the historical LRU choice is unchanged.
		var pick *drive
		pickBusy := false
		if forWrite && j.WriteDrive >= 0 && !j.drives[j.WriteDrive].offline {
			pick = j.drives[j.WriteDrive]
		} else {
			if forWrite && j.WriteDrive >= 0 {
				j.stats.Failovers++ // reserved write drive is down
			}
			for _, d := range j.drives {
				if d.offline {
					continue
				}
				if j.WriteDrive >= 0 && d.id == j.WriteDrive && !forWrite &&
					j.healthyDrives() > 1 && !j.drives[j.WriteDrive].offline {
					continue
				}
				busy := d.arm.Busy()
				switch {
				case pick == nil || (pickBusy && !busy):
					pick, pickBusy = d, busy
				case busy == pickBusy && d.lastUse < pick.lastUse:
					pick = d
				}
			}
		}
		if pick == nil {
			continue // raced with drives going offline: re-evaluate
		}
		pick.arm.Acquire(p)
		if pick.offline { // went offline while we waited for the arm
			pick.arm.Release(p)
			j.stats.Failovers++
			continue
		}
		if pick.loaded != vol {
			if j.Fault != nil {
				if err := j.Fault("load", vol, -1); err != nil {
					j.stats.LoadFaults++
					pick.arm.Release(p)
					return nil, err
				}
			}
			// Swap: the picker works while the simple (non-disconnecting)
			// driver hogs the SCSI bus for the entire media change (§7).
			// The drive↔volume binding is recorded up front, while the arm
			// is held: a concurrent request for the same volume must queue
			// on this drive rather than conclude the volume is unloaded and
			// start a second swap of the same cartridge elsewhere.
			t0 := p.Now()
			pick.loaded = vol
			pick.pos = 0
			tr := reqtrace.From(p)
			var note string
			if tr != nil {
				note = fmt.Sprintf("vol %d drive %d", vol, pick.id)
			}
			st := tr.StageStart(reqtrace.KindDriveSwap, t0, note)
			j.picker.Acquire(p)
			if j.bus != nil {
				j.bus.Hold(p, j.prof.SwapTime)
			} else {
				p.Sleep(j.prof.SwapTime)
			}
			j.picker.Release(p)
			tr.StageEnd(st, p.Now())
			j.stats.Swaps++
			j.stats.SwapTime += j.prof.SwapTime
			j.obs.Span(j.track, "jb.swap", "swap", t0,
				obs.Arg{Key: "vol", Val: int64(vol)}, obs.Arg{Key: "drive", Val: int64(pick.id)})
		}
		pick.lastUse = p.Now()
		return pick, nil
	}
	return nil, fmt.Errorf("%w: %s: no drive settled for volume %d", ErrDriveOffline, j.prof.Name, vol)
}

// position pays the within-volume positioning cost to reach seg.
func (j *Jukebox) position(p *sim.Proc, d *drive, seg int) {
	dist := seg - d.pos
	if dist < 0 {
		dist = -dist
	}
	var t sim.Time
	if dist > 0 {
		t = j.prof.SeekBase + sim.Time(dist)*j.prof.SeekPerSeg
	}
	t += j.prof.Rotation
	if t > 0 {
		p.Sleep(t)
	}
}

// ReadSegment implements Footprint.
func (j *Jukebox) ReadSegment(p *sim.Proc, vol, seg int, buf []byte) error {
	if err := p.CtxErr(); err != nil {
		return err // canceled/expired request: refuse before touching a drive
	}
	if err := j.checkArgs(vol, seg, buf); err != nil {
		return err
	}
	if j.Fault != nil {
		if err := j.Fault("read", vol, seg); err != nil {
			j.stats.ReadFaults++
			j.obs.Instant(j.track, "jb.fault", "read",
				obs.Arg{Key: "vol", Val: int64(vol)}, obs.Arg{Key: "seg", Val: int64(seg)})
			return err
		}
	}
	start := p.Now()
	// The media-transfer stage spans drive acquisition through the bus
	// transfer; a swap performed inside driveFor nests as its own stage
	// and wins the critical-path attribution for its interval.
	tr := reqtrace.From(p)
	var note string
	if tr != nil {
		note = fmt.Sprintf("read vol %d seg %d", vol, seg)
	}
	st := tr.StageStart(reqtrace.KindMediaTransfer, start, note)
	d, err := j.driveFor(p, vol, false)
	if err != nil {
		tr.StageEnd(st, p.Now())
		return err
	}
	j.position(p, d, seg)
	p.Sleep(xfer(j.segBytes, j.prof.MediaRead))
	d.pos = seg + 1
	src, ok := j.vols[vol].store[seg]
	if ok {
		copy(buf, src)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	d.arm.Release(p)
	if j.bus != nil {
		j.bus.Transfer(p, j.segBytes)
	}
	tr.StageEnd(st, p.Now())
	j.stats.Reads++
	j.stats.BytesRead += int64(j.segBytes)
	j.stats.ReadTime += p.Now() - start
	j.obs.Span(j.track, "jb.read", "ReadSegment", start,
		obs.Arg{Key: "vol", Val: int64(vol)}, obs.Arg{Key: "seg", Val: int64(seg)})
	return nil
}

// WriteSegment implements Footprint.
func (j *Jukebox) WriteSegment(p *sim.Proc, vol, seg int, buf []byte) error {
	if err := p.CtxErr(); err != nil {
		return err // canceled/expired request: refuse before touching a drive
	}
	if err := j.checkArgs(vol, seg, buf); err != nil {
		return err
	}
	if j.Fault != nil {
		if err := j.Fault("write", vol, seg); err != nil {
			j.stats.WriteFaults++
			j.obs.Instant(j.track, "jb.fault", "write",
				obs.Arg{Key: "vol", Val: int64(vol)}, obs.Arg{Key: "seg", Val: int64(seg)})
			return err
		}
	}
	v := j.vols[vol]
	if v.full || seg >= v.actualSegs {
		v.full = true
		return ErrEndOfMedium
	}
	if j.WriteOnce {
		if _, written := v.store[seg]; written {
			return fmt.Errorf("%w: %s: segment %d/%d already written", ErrWriteOnce, j.prof.Name, vol, seg)
		}
	}
	start := p.Now()
	tr := reqtrace.From(p)
	var note string
	if tr != nil {
		note = fmt.Sprintf("write vol %d seg %d", vol, seg)
	}
	st := tr.StageStart(reqtrace.KindMediaTransfer, start, note)
	if j.bus != nil {
		j.bus.Transfer(p, j.segBytes)
	}
	d, err := j.driveFor(p, vol, true)
	if err != nil {
		tr.StageEnd(st, p.Now())
		return err
	}
	j.position(p, d, seg)
	p.Sleep(xfer(j.segBytes, j.prof.MediaWrite))
	d.pos = seg + 1
	dst, ok := v.store[seg]
	if !ok {
		dst = make([]byte, j.segBytes)
		v.store[seg] = dst
	}
	// Apply in two halves with an observation point between them: a power
	// cut at the first point sees a torn segment (new head, stale tail) —
	// the case the per-pseg checksums must catch at recovery.
	half := j.segBytes / 2
	copy(dst[:half], buf[:half])
	if j.OnMediaWrite != nil {
		j.OnMediaWrite(vol, seg)
	}
	copy(dst[half:], buf[half:])
	if j.OnMediaWrite != nil {
		j.OnMediaWrite(vol, seg)
	}
	v.writes++
	d.arm.Release(p)
	tr.StageEnd(st, p.Now())
	j.stats.Writes++
	j.stats.BytesWritten += int64(j.segBytes)
	j.stats.WriteTime += p.Now() - start
	j.obs.Span(j.track, "jb.write", "WriteSegment", start,
		obs.Arg{Key: "vol", Val: int64(vol)}, obs.Arg{Key: "seg", Val: int64(seg)})
	return nil
}

func xfer(n int, rate int64) sim.Time {
	if rate <= 0 {
		return 0
	}
	return sim.Time(float64(n) / float64(rate) * float64(time.Second))
}
