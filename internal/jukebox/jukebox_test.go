package jukebox

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/sim"
)

const segBytes = 1024 * 1024

func newMO(k *sim.Kernel, drives, vols, segs int) *Jukebox {
	return MustNew(k, MO6300, drives, vols, segs, segBytes, nil)
}

func TestWriteReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 2, 4, 8)
	k.RunProc(func(p *sim.Proc) {
		w := make([]byte, segBytes)
		for i := range w {
			w[i] = byte(i)
		}
		if err := j.WriteSegment(p, 1, 3, w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, segBytes)
		if err := j.ReadSegment(p, 1, 3, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("round trip mismatch")
		}
	})
}

func TestUnwrittenSegmentReadsZero(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 1, 4)
	k.RunProc(func(p *sim.Proc) {
		buf := bytes.Repeat([]byte{9}, segBytes)
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("expected zeroes")
			}
		}
	})
}

func TestVolumeChangeCostMatchesTable5(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 4)
	var swapCost sim.Time
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		// Load volume 0 (first swap) and read once.
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		// Time from "eject" (i.e. request targeting the other volume)
		// to a completed read of volume 1 — the Table 5 definition —
		// minus the pure read time measured on a loaded volume.
		t0 := p.Now()
		if err := j.ReadSegment(p, 1, 0, buf); err != nil {
			t.Fatal(err)
		}
		withSwap := p.Now() - t0
		t0 = p.Now()
		if err := j.ReadSegment(p, 1, 1, buf); err != nil {
			t.Fatal(err)
		}
		plainRead := p.Now() - t0
		swapCost = withSwap - plainRead
	})
	got := swapCost.Seconds()
	if got < 13.0 || got > 14.0 {
		t.Fatalf("volume change = %.2fs, want ~13.5s (Table 5)", got)
	}
}

func TestMOReadWriteRatesMatchTable5(t *testing.T) {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	j := MustNew(k, MO6300, 2, 2, 64, segBytes, bus)
	var readRate, writeRate float64
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		// Prime: load the volume so swap cost is excluded (Table 5
		// measures raw throughput with sequential 1 MB transfers).
		if err := j.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		for s := 1; s <= 16; s++ {
			if err := j.WriteSegment(p, 0, s, buf); err != nil {
				t.Fatal(err)
			}
		}
		writeRate = 16 * 1024 / (p.Now() - t0).Seconds()
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		t0 = p.Now()
		for s := 1; s <= 16; s++ {
			if err := j.ReadSegment(p, 0, s, buf); err != nil {
				t.Fatal(err)
			}
		}
		readRate = 16 * 1024 / (p.Now() - t0).Seconds()
	})
	if readRate < 451*0.95 || readRate > 451*1.05 {
		t.Errorf("MO read rate = %.0f KB/s, want ~451", readRate)
	}
	if writeRate < 204*0.95 || writeRate > 204*1.05 {
		t.Errorf("MO write rate = %.0f KB/s, want ~204", writeRate)
	}
}

func TestEndOfMedium(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 8)
	j.SetActualSegments(0, 3) // compression fell short
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		for s := 0; s < 3; s++ {
			if err := j.WriteSegment(p, 0, s, buf); err != nil {
				t.Fatalf("seg %d: %v", s, err)
			}
		}
		if err := j.WriteSegment(p, 0, 3, buf); !errors.Is(err, ErrEndOfMedium) {
			t.Fatalf("want ErrEndOfMedium, got %v", err)
		}
		if !j.VolumeFull(0) {
			t.Fatal("volume not marked full")
		}
		// Once full, even earlier segments reject writes.
		if err := j.WriteSegment(p, 0, 1, buf); !errors.Is(err, ErrEndOfMedium) {
			t.Fatalf("full volume accepted write: %v", err)
		}
		// The next volume still works.
		if err := j.WriteSegment(p, 1, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWriteOnce(t *testing.T) {
	k := sim.NewKernel()
	j := MustNew(k, SonyWORM, 1, 1, 4, segBytes, nil)
	j.WriteOnce = true
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := j.WriteSegment(p, 0, 0, buf); err == nil {
			t.Fatal("overwrite of WORM segment accepted")
		}
	})
}

func TestWriteDriveReservation(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 2, 3, 8)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		// A write loads the write drive (0).
		if err := j.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if j.LoadedVolume(0) != 0 {
			t.Fatalf("write went to drive holding %d, want volume 0 in drive 0", j.LoadedVolume(0))
		}
		// A read of another volume must use the other drive.
		if err := j.ReadSegment(p, 1, 0, buf); err != nil {
			t.Fatal(err)
		}
		if j.LoadedVolume(1) != 1 {
			t.Fatalf("read loaded drive1 with %d, want 1", j.LoadedVolume(1))
		}
		if j.LoadedVolume(0) != 0 {
			t.Fatal("read evicted the writing volume")
		}
		// A read of the writing volume is served by the write drive
		// without a swap.
		swaps := j.Stats().Swaps
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if j.Stats().Swaps != swaps {
			t.Fatal("read of loaded writing volume caused a swap")
		}
	})
}

func TestSwapHoldsSharedBus(t *testing.T) {
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	j := MustNew(k, MO6300, 1, 2, 4, segBytes, bus)
	d := dev.NewDisk(k, dev.RZ57, 1024, bus)
	var diskDone sim.Time
	k.Go("mo", func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 0, 0, buf); err != nil { // swap hogs bus
			t.Error(err)
		}
	})
	k.Go("disk", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		buf := make([]byte, dev.BlockSize)
		if err := d.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
		diskDone = p.Now()
	})
	k.Run()
	if diskDone < MO6300.SwapTime {
		t.Fatalf("disk I/O finished at %v, should have stalled behind the %v media swap", diskDone, MO6300.SwapTime)
	}
}

func TestTapeSeekCostGrowsWithDistance(t *testing.T) {
	k := sim.NewKernel()
	j := MustNew(k, Metrum, 1, 1, 1000, segBytes, nil)
	var near, far sim.Time
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 0, 0, buf); err != nil { // load, pos=1
			t.Fatal(err)
		}
		t0 := p.Now()
		if err := j.ReadSegment(p, 0, 2, buf); err != nil {
			t.Fatal(err)
		}
		near = p.Now() - t0
		t0 = p.Now()
		if err := j.ReadSegment(p, 0, 900, buf); err != nil {
			t.Fatal(err)
		}
		far = p.Now() - t0
	})
	if far <= near {
		t.Fatalf("far seek (%v) not slower than near seek (%v)", far, near)
	}
}

func TestEraseVolumeReclaims(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 1, 4)
	j.SetActualSegments(0, 1)
	k.RunProc(func(p *sim.Proc) {
		buf := bytes.Repeat([]byte{5}, segBytes)
		if err := j.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := j.WriteSegment(p, 0, 1, buf); !errors.Is(err, ErrEndOfMedium) {
			t.Fatal("expected EOM")
		}
		j.EraseVolume(0)
		if j.VolumeFull(0) {
			t.Fatal("erase did not clear full mark")
		}
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("erase did not clear data")
			}
		}
	})
}

func TestArgValidation(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 4)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 2, 0, buf); err == nil {
			t.Error("bad volume accepted")
		}
		if err := j.ReadSegment(p, 0, 4, buf); err == nil {
			t.Error("bad segment accepted")
		}
		if err := j.ReadSegment(p, 0, 0, buf[:100]); err == nil {
			t.Error("short buffer accepted")
		}
	})
}

func TestFaultInjection(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 1, 4)
	mediaErr := errors.New("bad spot")
	j.Fault = func(op string, vol, seg int) error {
		if op == "read" && seg == 2 {
			return mediaErr
		}
		return nil
	}
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 0, 2, buf); !errors.Is(err, mediaErr) {
			t.Fatalf("fault not injected: %v", err)
		}
		if err := j.ReadSegment(p, 0, 1, buf); err != nil {
			t.Fatalf("unexpected fault: %v", err)
		}
	})
}

func TestTypedSentinelErrors(t *testing.T) {
	k := sim.NewKernel()
	j := MustNew(k, SonyWORM, 1, 2, 4, segBytes, nil)
	j.WriteOnce = true
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := j.WriteSegment(p, 0, 0, buf); !errors.Is(err, ErrWriteOnce) {
			t.Fatalf("WORM violation = %v, want errors.Is ErrWriteOnce", err)
		}
		if err := j.ReadSegment(p, 5, 0, buf); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("bad volume = %v, want errors.Is ErrOutOfRange", err)
		}
		if err := j.ReadSegment(p, 0, 9, buf); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("bad segment = %v, want errors.Is ErrOutOfRange", err)
		}
		if err := j.WriteSegment(p, 0, 1, buf[:10]); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("short buffer = %v, want errors.Is ErrOutOfRange", err)
		}
	})
}

func TestDriveOfflineFailover(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 2, 3, 8)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		// Reads use the non-reserved drive (1). Load volume 0 there, then
		// take drive 1 down: the next read of volume 0 must fail over to
		// drive 0, re-loading the volume with a swap.
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if j.LoadedVolume(1) != 0 {
			t.Fatalf("drive 1 holds volume %d, want 0", j.LoadedVolume(1))
		}
		j.SetDriveOffline(1, true)
		if err := j.ReadSegment(p, 0, 1, buf); err != nil {
			t.Fatalf("failover read: %v", err)
		}
		if j.LoadedVolume(0) != 0 {
			t.Fatalf("drive 0 holds volume %d, want 0 after failover", j.LoadedVolume(0))
		}
		if j.Stats().Failovers == 0 {
			t.Fatal("failover not counted")
		}
		// Writes reserve drive 0; with it offline and drive 1 healthy,
		// they must fail over to drive 1.
		j.SetDriveOffline(1, false)
		j.SetDriveOffline(0, true)
		fo := j.Stats().Failovers
		if err := j.WriteSegment(p, 1, 0, buf); err != nil {
			t.Fatalf("failover write: %v", err)
		}
		if j.LoadedVolume(1) != 1 {
			t.Fatalf("drive 1 holds volume %d, want 1 after write failover", j.LoadedVolume(1))
		}
		if j.Stats().Failovers <= fo {
			t.Fatal("write failover not counted")
		}
		// All drives down: typed, matchable error.
		j.SetDriveOffline(1, true)
		if err := j.ReadSegment(p, 0, 2, buf); !errors.Is(err, ErrDriveOffline) {
			t.Fatalf("all-offline read = %v, want errors.Is ErrDriveOffline", err)
		}
		// Recovery: back online, requests succeed again.
		j.SetDriveOffline(0, false)
		if err := j.ReadSegment(p, 0, 2, buf); err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
	})
}

func TestLoadFaultHookBlocksSwap(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 4)
	loadErr := errors.New("robot jam")
	loads := 0
	j.Fault = func(op string, vol, seg int) error {
		if op == "load" {
			loads++
			if vol == 1 {
				return loadErr
			}
		}
		return nil
	}
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatalf("volume 0 load should pass the hook: %v", err)
		}
		if err := j.ReadSegment(p, 1, 0, buf); !errors.Is(err, loadErr) {
			t.Fatalf("volume 1 load fault not propagated: %v", err)
		}
		if loads < 2 {
			t.Fatalf("load hook fired %d times, want one per swap attempt", loads)
		}
		if j.Stats().LoadFaults != 1 {
			t.Fatalf("LoadFaults = %d, want 1", j.Stats().LoadFaults)
		}
		// The drive must not be wedged: volume 0 still readable.
		if err := j.ReadSegment(p, 0, 1, buf); err != nil {
			t.Fatalf("drive wedged after load fault: %v", err)
		}
	})
}

func TestFaultCountersPerOp(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 1, 4)
	bad := errors.New("scratch")
	j.Fault = func(op string, vol, seg int) error {
		if seg == 3 {
			return bad
		}
		return nil
	}
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, segBytes)
		if err := j.ReadSegment(p, 0, 3, buf); !errors.Is(err, bad) {
			t.Fatal("read fault not injected")
		}
		if err := j.WriteSegment(p, 0, 3, buf); !errors.Is(err, bad) {
			t.Fatal("write fault not injected")
		}
		s := j.Stats()
		if s.ReadFaults != 1 || s.WriteFaults != 1 {
			t.Fatalf("fault counters = %d/%d, want 1/1", s.ReadFaults, s.WriteFaults)
		}
	})
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 2, 3, 8)
	j.SetActualSegments(1, 4)
	var want []byte
	k.RunProc(func(p *sim.Proc) {
		want = bytes.Repeat([]byte{0x5A}, segBytes)
		if err := j.WriteSegment(p, 2, 5, want); err != nil {
			t.Fatal(err)
		}
		// Fill volume 1 to its reduced capacity so the full flag
		// round-trips too.
		buf := make([]byte, segBytes)
		for s := 0; s < 4; s++ {
			if err := j.WriteSegment(p, 1, s, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.WriteSegment(p, 1, 4, buf); !errors.Is(err, ErrEndOfMedium) {
			t.Fatal("expected EOM")
		}
	})
	var img bytes.Buffer
	if err := j.SaveStore(&img); err != nil {
		t.Fatal(err)
	}
	k2 := sim.NewKernel()
	j2 := MustNew(k2, MO6300, 2, 3, 8, segBytes, nil)
	if err := j2.LoadStore(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	k2.RunProc(func(p *sim.Proc) {
		got := make([]byte, segBytes)
		if err := j2.ReadSegment(p, 2, 5, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("image round trip lost data")
		}
		if !j2.VolumeFull(1) {
			t.Fatal("full flag lost in image")
		}
	})
	// Geometry mismatch must be rejected.
	k3 := sim.NewKernel()
	j3 := MustNew(k3, MO6300, 2, 4, 8, segBytes, nil)
	if err := j3.LoadStore(bytes.NewReader(img.Bytes())); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
