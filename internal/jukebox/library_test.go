package jukebox

import (
	"errors"
	"testing"

	"repro/internal/lfs"
	"repro/internal/sim"
)

func TestSegmentsPerVolumeZeroVolumes(t *testing.T) {
	// A zero-volume jukebox has no geometry to report; SegmentsPerVolume
	// must return 0 instead of panicking on an empty volume slice.
	j := &Jukebox{}
	if got := j.SegmentsPerVolume(); got != 0 {
		t.Fatalf("SegmentsPerVolume on empty jukebox = %d, want 0", got)
	}
}

func TestLibraryOfflineGating(t *testing.T) {
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		j := MustNew(k, MO6300, 1, 2, 8, 4*lfs.BlockSize, nil)
		l := NewLibrary(0, "", j)
		if l.Down() {
			t.Fatal("new library reports down")
		}

		buf := make([]byte, 4*lfs.BlockSize)
		if err := l.WriteSegment(p, 0, 0, buf); err != nil {
			t.Fatalf("write through healthy library: %v", err)
		}
		if err := l.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatalf("read through healthy library: %v", err)
		}
		if l.IdleHealthyDrives() == 0 {
			t.Fatal("healthy idle library reports no idle drives")
		}

		l.SetDown(true)
		if !l.Down() {
			t.Fatal("SetDown(true) did not mark the library down")
		}
		if err := l.ReadSegment(p, 0, 0, buf); !errors.Is(err, ErrLibraryOffline) {
			t.Fatalf("read from down library: got %v, want ErrLibraryOffline", err)
		}
		if err := l.WriteSegment(p, 0, 1, buf); !errors.Is(err, ErrLibraryOffline) {
			t.Fatalf("write to down library: got %v, want ErrLibraryOffline", err)
		}
		if l.IdleHealthyDrives() != 0 {
			t.Fatal("down library reports idle drives")
		}
		if l.VolumeLoaded(0) {
			t.Fatal("down library reports a loaded volume")
		}

		// Geometry keeps delegating even while down — the address map and
		// repair planner still need it.
		if l.Volumes() != j.Volumes() || l.SegmentsPerVolume() != j.SegmentsPerVolume() {
			t.Fatal("down library stopped delegating geometry")
		}

		l.SetDown(false)
		if err := l.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatalf("read after revival: %v", err)
		}
	})
	k.Stop()
}

func TestAsLibrariesPreservesIdentity(t *testing.T) {
	k := sim.NewKernel()
	j0 := MustNew(k, MO6300, 1, 1, 4, 4*lfs.BlockSize, nil)
	j1 := MustNew(k, MO6300, 1, 1, 4, 4*lfs.BlockSize, nil)
	pre := NewLibrary(7, "vault", j1)

	libs := AsLibraries([]Footprint{j0, pre})
	if len(libs) != 2 {
		t.Fatalf("AsLibraries returned %d entries, want 2", len(libs))
	}
	if libs[0].Inner() != Footprint(j0) {
		t.Fatal("plain footprint was not wrapped around the original jukebox")
	}
	if libs[0].ID() != 0 {
		t.Fatalf("wrapped library got ID %d, want positional 0", libs[0].ID())
	}
	if libs[1] != pre {
		t.Fatal("already-wrapped *Library was re-wrapped instead of passed through")
	}
	if libs[1].Name() != "vault" || libs[1].ID() != 7 {
		t.Fatal("pass-through library lost its name or ID")
	}
	k.Stop()
}
