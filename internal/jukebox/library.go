package jukebox

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrLibraryOffline is returned by a down Library for every read and
// write. It is deliberately NOT classified as transient: a whole-changer
// outage (power, robotics, network partition to a remote library) does
// not clear within a retry budget, so the I/O process should fail over
// to a copy in another library immediately instead of burning retries.
var ErrLibraryOffline = errors.New("jukebox: library offline")

// Library wraps one robotic changer (any Footprint) as a failure domain
// in a multi-library tertiary tier. It adds a health bit — a down
// library refuses all I/O with ErrLibraryOffline — and delegates the
// introspection interfaces the routing, cleaning, and fault-report
// layers rely on (VolumeLoaded, IdleHealthyDrives, Stats, Profile,
// EraseVolume). Wrapping a device in an always-up Library is free: no
// virtual time is charged and every delegated answer is identical.
type Library struct {
	fp   Footprint
	id   int
	name string
	down bool
}

// NewLibrary wraps fp as library id. An empty name defaults to the
// device profile name (or "lib<id>" for non-jukebox footprints).
func NewLibrary(id int, name string, fp Footprint) *Library {
	if name == "" {
		if j, ok := fp.(*Jukebox); ok {
			name = fmt.Sprintf("%s[%d]", j.Profile().Name, id)
		} else {
			name = fmt.Sprintf("lib%d", id)
		}
	}
	return &Library{fp: fp, id: id, name: name}
}

// AsLibraries wraps a device list into libraries, preserving devices
// that already are *Library (so callers keep their handle for fault
// injection) and numbering the rest by position.
func AsLibraries(fps []Footprint) []*Library {
	out := make([]*Library, len(fps))
	for i, fp := range fps {
		if l, ok := fp.(*Library); ok {
			out[i] = l
			continue
		}
		out[i] = NewLibrary(i, "", fp)
	}
	return out
}

// ID reports the library's index in the tertiary device list.
func (l *Library) ID() int { return l.id }

// Name reports the library's display name.
func (l *Library) Name() string { return l.name }

// Inner returns the wrapped device.
func (l *Library) Inner() Footprint { return l.fp }

// Jukebox returns the wrapped *Jukebox, or nil for other footprints.
func (l *Library) Jukebox() *Jukebox {
	j, _ := l.fp.(*Jukebox)
	return j
}

// Down reports whether the whole library is out of service.
func (l *Library) Down() bool { return l.down }

// SetDown fails (true) or revives (false) the entire library. In-flight
// operations complete; new ones fail with ErrLibraryOffline.
func (l *Library) SetDown(down bool) { l.down = down }

// ReadSegment implements Footprint, gating on library health.
func (l *Library) ReadSegment(p *sim.Proc, vol, seg int, buf []byte) error {
	if l.down {
		return fmt.Errorf("%w: %s", ErrLibraryOffline, l.name)
	}
	return l.fp.ReadSegment(p, vol, seg, buf)
}

// WriteSegment implements Footprint, gating on library health.
func (l *Library) WriteSegment(p *sim.Proc, vol, seg int, buf []byte) error {
	if l.down {
		return fmt.Errorf("%w: %s", ErrLibraryOffline, l.name)
	}
	return l.fp.WriteSegment(p, vol, seg, buf)
}

// Volumes implements Footprint.
func (l *Library) Volumes() int { return l.fp.Volumes() }

// SegmentsPerVolume implements Footprint.
func (l *Library) SegmentsPerVolume() int { return l.fp.SegmentsPerVolume() }

// SegmentBytes implements Footprint.
func (l *Library) SegmentBytes() int { return l.fp.SegmentBytes() }

// VolumeLoaded reports whether vol sits in a healthy drive. A down
// library never counts as loaded: nothing can be served from it.
func (l *Library) VolumeLoaded(vol int) bool {
	if l.down {
		return false
	}
	if vc, ok := l.fp.(interface{ VolumeLoaded(int) bool }); ok {
		return vc.VolumeLoaded(vol)
	}
	return false
}

// IdleHealthyDrives reports drives that could start a request now; zero
// for a down library.
func (l *Library) IdleHealthyDrives() int {
	if l.down {
		return 0
	}
	if c, ok := l.fp.(interface{ IdleHealthyDrives() int }); ok {
		return c.IdleHealthyDrives()
	}
	return 0
}

// Stats delegates to the wrapped device (zero for footprints without
// counters).
func (l *Library) Stats() Stats {
	if s, ok := l.fp.(interface{ Stats() Stats }); ok {
		return s.Stats()
	}
	return Stats{}
}

// Profile delegates to the wrapped device; other footprints get a
// profile carrying only the library name.
func (l *Library) Profile() MediaProfile {
	if pr, ok := l.fp.(interface{ Profile() MediaProfile }); ok {
		return pr.Profile()
	}
	return MediaProfile{Name: l.name}
}

// EraseVolume delegates media reclamation to the wrapped device when it
// supports erasure; a no-op otherwise (WORM media are never erased).
func (l *Library) EraseVolume(vol int) {
	if ev, ok := l.fp.(interface{ EraseVolume(int) }); ok {
		ev.EraseVolume(vol)
	}
}
