package jukebox

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// A cancel that lands mid-swap must not interrupt the cartridge swap: the
// jukebox honors the request scope only at operation entry, because the
// robot's media change is an atomic hardware motion. The in-flight
// operation completes, the drive↔volume binding stays consistent, and the
// next operation under the dead scope is refused up front.
func TestCancelDuringSwapCompletesOperation(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 4)
	buf := make([]byte, segBytes)
	k.RunProc(func(p *sim.Proc) {
		// Load volume 0 so the next read (volume 1) must swap cartridges.
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		ctx := k.NewCtx(0)
		k.Go("mid-swap-cancel", func(q *sim.Proc) {
			q.Sleep(j.prof.SwapTime / 2) // squarely inside the swap window
			ctx.Cancel(nil)
		})
		restore := p.PushCtx(ctx)
		if err := j.ReadSegment(p, 1, 0, buf); err != nil {
			t.Fatalf("read canceled mid-swap should still complete: %v", err)
		}
		if err := ctx.Err(); !errors.Is(err, sim.ErrCanceled) {
			t.Fatalf("cancel never fired: %v", err)
		}
		// The scope is dead now: the next operation is refused at entry,
		// before touching a drive.
		if err := j.ReadSegment(p, 1, 1, buf); !errors.Is(err, sim.ErrCanceled) {
			t.Fatalf("op under a dead scope = %v, want ErrCanceled", err)
		}
		if err := j.WriteSegment(p, 1, 1, buf); !errors.Is(err, sim.ErrCanceled) {
			t.Fatalf("write under a dead scope = %v, want ErrCanceled", err)
		}
		restore()
		// Drive state stayed consistent: volume 1 finished loading, so a
		// fresh-scope read is served with no second swap.
		swaps := j.Stats().Swaps
		if err := j.ReadSegment(p, 1, 1, buf); err != nil {
			t.Fatal(err)
		}
		if got := j.Stats().Swaps; got != swaps {
			t.Fatalf("read after mid-swap cancel paid %d extra swaps", got-swaps)
		}
	})
}

// Same edge with a deadline instead of an explicit cancel: the scope
// expires inside the swap the request itself triggered, the operation
// still completes, and only subsequent operations observe the expiry.
func TestDeadlineExpiryMidSwapCompletesOperation(t *testing.T) {
	k := sim.NewKernel()
	j := newMO(k, 1, 2, 4)
	buf := make([]byte, segBytes)
	k.RunProc(func(p *sim.Proc) {
		if err := j.ReadSegment(p, 0, 0, buf); err != nil {
			t.Fatal(err)
		}
		// The 13.4 s swap blows well past a 2 s deadline.
		ctx := k.NewCtx(p.Now() + sim.Time(2*time.Second))
		restore := p.PushCtx(ctx)
		defer restore()
		if err := j.ReadSegment(p, 1, 0, buf); err != nil {
			t.Fatalf("read expiring mid-swap should still complete: %v", err)
		}
		if err := j.ReadSegment(p, 1, 1, buf); !errors.Is(err, sim.ErrDeadlineExceeded) {
			t.Fatalf("op under an expired scope = %v, want ErrDeadlineExceeded", err)
		}
	})
}
