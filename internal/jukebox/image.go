package jukebox

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const imageMagic = 0x484a424b // "HJBK"

// SaveStore writes every volume's contents (sparse) to a stream so the
// cmd/hlfs tool can persist a jukebox across runs.
func (j *Jukebox) SaveStore(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(j.vols)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(j.segBytes))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, v := range j.vols {
		var vh [16]byte
		binary.LittleEndian.PutUint32(vh[0:], uint32(v.actualSegs))
		flags := uint32(0)
		if v.full {
			flags = 1
		}
		binary.LittleEndian.PutUint32(vh[4:], flags)
		binary.LittleEndian.PutUint64(vh[8:], uint64(len(v.store)))
		if _, err := bw.Write(vh[:]); err != nil {
			return err
		}
		for seg, data := range v.store {
			var rec [4]byte
			binary.LittleEndian.PutUint32(rec[:], uint32(seg))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
			if _, err := bw.Write(data); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadStore replaces the jukebox's media contents from a SaveStore stream.
func (j *Jukebox) LoadStore(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != imageMagic {
		return fmt.Errorf("jukebox: bad image magic")
	}
	if n := int(binary.LittleEndian.Uint32(hdr[4:])); n != len(j.vols) {
		return fmt.Errorf("jukebox: image has %d volumes, device has %d", n, len(j.vols))
	}
	if sb := int(binary.LittleEndian.Uint32(hdr[8:])); sb != j.segBytes {
		return fmt.Errorf("jukebox: image segment size %d, device %d", sb, j.segBytes)
	}
	for _, v := range j.vols {
		var vh [16]byte
		if _, err := io.ReadFull(br, vh[:]); err != nil {
			return err
		}
		v.actualSegs = int(binary.LittleEndian.Uint32(vh[0:]))
		v.full = binary.LittleEndian.Uint32(vh[4:]) == 1
		count := binary.LittleEndian.Uint64(vh[8:])
		v.store = make(map[int][]byte, count)
		for i := uint64(0); i < count; i++ {
			var rec [4]byte
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return err
			}
			seg := int(binary.LittleEndian.Uint32(rec[:]))
			data := make([]byte, j.segBytes)
			if _, err := io.ReadFull(br, data); err != nil {
				return err
			}
			v.store[seg] = data
		}
	}
	return nil
}
