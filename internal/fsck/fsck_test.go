package fsck

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func newHL(t *testing.T) (*sim.Kernel, *core.HighLight) {
	t.Helper()
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 128*16, nil)
	juke := jukebox.New(k, jukebox.MO6300, 2, 4, 16, 16*lfs.BlockSize, nil)
	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks: 16,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 12,
			MaxInodes: 256,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	return k, hl
}

func TestCleanFileSystemPasses(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		if err := hl.FS.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			f, err := hl.FS.Create(p, "/d/f"+string(rune('0'+i)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, (i+1)*3*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("clean FS reported problems:\n%s", b.String())
		}
		if rep.Files != 5 || rep.Dirs != 2 {
			t.Fatalf("counted %d files / %d dirs, want 5 / 2", rep.Files, rep.Dirs)
		}
		if rep.DiskBlocks == 0 || rep.SegsParsed == 0 {
			t.Fatalf("check did not traverse media: %+v", rep)
		}
	})
	k.Stop()
}

func TestMigratedFileSystemPasses(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/archive")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 30*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, true); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("migrated FS reported problems:\n%s", b.String())
		}
		if rep.TertBlocks == 0 {
			t.Fatal("check saw no tertiary blocks despite migration")
		}
	})
	k.Stop()
}

func TestDetectsUndercountedSegmentUsage(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 8*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Sabotage: zero the live-byte count of the tertiary segment
		// that holds the file.
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegOf(refs[0].Addr))
		hl.FS.ResetTseg(idx)
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("fsck missed sabotaged tertiary accounting")
		}
		found := false
		for _, pr := range rep.Problems {
			if strings.Contains(pr.What, "reachable bytes") || strings.Contains(pr.What, "not marked written") {
				found = true
			}
		}
		if !found {
			t.Fatalf("unexpected problem set: %v", rep.Problems)
		}
	})
	k.Stop()
}

func TestSummaryRendering(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rep.Summary(), "0 problems") {
			t.Fatalf("summary: %s", rep.Summary())
		}
	})
	k.Stop()
}
