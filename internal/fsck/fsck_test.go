package fsck

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func newHL(t *testing.T) (*sim.Kernel, *core.HighLight) {
	t.Helper()
	k, hl, _ := newHLJuke(t)
	return k, hl
}

func newHLJuke(t *testing.T) (*sim.Kernel, *core.HighLight, *jukebox.Jukebox) {
	t.Helper()
	k := sim.NewKernel()
	disk := dev.NewDisk(k, dev.RZ57, 128*16, nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 16, 16*lfs.BlockSize, nil)
	var hl *core.HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = core.New(p, core.Config{
			SegBlocks: 16,
			Disks:     []dev.BlockDev{disk},
			Jukeboxes: []jukebox.Footprint{juke},
			CacheSegs: 12,
			MaxInodes: 256,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
	})
	return k, hl, juke
}

func TestCleanFileSystemPasses(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		if err := hl.FS.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			f, err := hl.FS.Create(p, "/d/f"+string(rune('0'+i)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, (i+1)*3*lfs.BlockSize), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("clean FS reported problems:\n%s", b.String())
		}
		if rep.Files != 5 || rep.Dirs != 2 {
			t.Fatalf("counted %d files / %d dirs, want 5 / 2", rep.Files, rep.Dirs)
		}
		if rep.DiskBlocks == 0 || rep.SegsParsed == 0 {
			t.Fatalf("check did not traverse media: %+v", rep)
		}
	})
	k.Stop()
}

func TestMigratedFileSystemPasses(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/archive")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 30*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, true); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("migrated FS reported problems:\n%s", b.String())
		}
		if rep.TertBlocks == 0 {
			t.Fatal("check saw no tertiary blocks despite migration")
		}
	})
	k.Stop()
}

func TestDetectsUndercountedSegmentUsage(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 8*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		// Sabotage: zero the live-byte count of the tertiary segment
		// that holds the file.
		refs, _ := hl.FS.FileBlockRefs(p, f.Inum())
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegOf(refs[0].Addr))
		hl.FS.ResetTseg(idx)
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatal("fsck missed sabotaged tertiary accounting")
		}
		found := false
		for _, pr := range rep.Problems {
			if strings.Contains(pr.What, "reachable bytes") || strings.Contains(pr.What, "not marked written") {
				found = true
			}
		}
		if !found {
			t.Fatalf("unexpected problem set: %v", rep.Problems)
		}
	})
	k.Stop()
}

// TestDetectsTornTertiarySegment corrupts a migrated segment on the
// medium — the state a power cut mid copy-out leaves behind — and checks
// the pass-5 scrub catches it by checksum even though an intact cache
// line still covers the reads. The damage is then routed through the
// retirement/restage path: the live blocks restage from the cached copy
// onto a fresh segment, the torn one is retired, and a re-check is clean.
func TestDetectsTornTertiarySegment(t *testing.T) {
	k, hl, juke := newHLJuke(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/archive")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, bytes.Repeat([]byte{0xA5}, 20*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		refs, err := hl.FS.FileBlockRefs(p, f.Inum())
		if err != nil {
			t.Fatal(err)
		}
		seg := hl.Amap.SegOf(refs[0].Addr)
		idx, _ := hl.Amap.TertIndex(seg)
		if _, ok := hl.Cache.Peek(idx); !ok {
			t.Fatal("migrated segment not cached (test premise)")
		}
		// Tear the segment on the medium: wreck its second half, the way
		// a power cut halfway through WriteSegment does.
		_, vol, vseg, ok := hl.Amap.Loc(seg)
		if !ok {
			t.Fatalf("segment %d has no media location", seg)
		}
		imgs := juke.SnapshotVolumes()
		img := imgs[vol].Segs[vseg]
		for i := len(img) / 2; i < len(img); i++ {
			img[i] ^= 0xFF
		}
		juke.RestoreVolumes(imgs)

		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, pr := range rep.Problems {
			if strings.Contains(pr.What, "checksum-valid") {
				found = true
			}
		}
		if !found {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("scrub missed the torn tertiary segment:\n%s", b.String())
		}

		// Retirement/restage: move the live blocks off the suspect
		// segment (the intact cache line feeds the restage), make the
		// move durable, then retire the torn segment so the allocator
		// never reuses it.
		if _, err := hl.RestageTertSegment(p, idx); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if l, ok := hl.Cache.Peek(idx); ok && !l.Staging && l.Pins == 0 {
			dseg, err := hl.Cache.Evict(l)
			if err != nil {
				t.Fatal(err)
			}
			hl.FS.SetCacheBinding(dseg, lfs.NilCacheTag, false)
			hl.Cache.Release(dseg)
		}
		hl.FS.ResetTseg(idx)
		hl.FS.MarkTsegNoStore(idx)

		rep, err = Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("restage + retirement did not heal the FS:\n%s", b.String())
		}
	})
	k.Stop()
}

// TestDetectsCacheDirectoryDisagreement sabotages the cache binding of a
// fetched line in both directions and checks pass 3 reports each.
func TestDetectsCacheDirectoryDisagreement(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		f, err := hl.FS.Create(p, "/archive")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(p, make([]byte, 12*lfs.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		lines := hl.Cache.Lines()
		if len(lines) == 0 {
			t.Fatal("no cache lines after migration")
		}
		l := lines[0]
		// Sabotage: the usage table now claims the disk segment caches a
		// different tertiary segment than the directory does.
		hl.FS.SetCacheBinding(l.DiskSeg, uint32(l.Tag+1), false)
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		var dirSide, tableSide bool
		for _, pr := range rep.Problems {
			if strings.Contains(pr.What, "in the usage table") {
				dirSide = true
			}
			if strings.Contains(pr.What, "directory says") {
				tableSide = true
			}
		}
		if !dirSide || !tableSide {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("pass 3 missed the binding disagreement (dir=%v table=%v):\n%s", dirSide, tableSide, b.String())
		}
		// Heal and re-check.
		hl.FS.SetCacheBinding(l.DiskSeg, uint32(l.Tag), false)
		rep, err = Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var b bytes.Buffer
			rep.Write(&b)
			t.Fatalf("healed FS still reports problems:\n%s", b.String())
		}
	})
	k.Stop()
}

func TestSummaryRendering(t *testing.T) {
	k, hl := newHL(t)
	k.RunProc(func(p *sim.Proc) {
		rep, err := Check(p, hl)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rep.Summary(), "0 problems") {
			t.Fatalf("summary: %s", rep.Summary())
		}
	})
	k.Stop()
}
