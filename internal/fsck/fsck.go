// Package fsck verifies the consistency of a HighLight file system:
// namespace reachability, block-pointer validity, log-structure integrity
// (summary checksums), segment-usage accounting, cache-directory
// agreement, and tertiary bookkeeping. The paper leans on the log's
// checksummed structure for recovery (§3) and worries about metadata
// stranded across media (§8.2); Check makes those invariants observable.
package fsck

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// Problem is one detected inconsistency.
type Problem struct {
	Where string
	What  string
}

func (p Problem) String() string { return p.Where + ": " + p.What }

// Report summarizes a check.
type Report struct {
	Files         int
	Dirs          int
	BlockPtrs     int
	DiskBlocks    int
	TertBlocks    int
	SegsParsed    int
	TsegsScrubbed int
	TsegsPinned   int
	Problems      []Problem
	VolumesCross  map[uint32][]int // inum -> volumes its blocks span (when >1)
}

func (r *Report) addf(where, format string, args ...interface{}) {
	r.Problems = append(r.Problems, Problem{Where: where, What: fmt.Sprintf(format, args...)})
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Summary renders a one-line result.
func (r *Report) Summary() string {
	return fmt.Sprintf("fsck: %d files, %d dirs, %d block pointers (%d disk, %d tertiary), %d segments parsed, %d problems",
		r.Files, r.Dirs, r.BlockPtrs, r.DiskBlocks, r.TertBlocks, r.SegsParsed, len(r.Problems))
}

// Check runs all consistency passes. It takes the file system lock
// repeatedly (via public FS methods) and may demand-fetch tertiary
// segments when verifying migrated metadata.
func Check(p *sim.Proc, hl *core.HighLight) (*Report, error) {
	r := &Report{VolumesCross: make(map[uint32][]int)}

	// Pass 1: namespace walk — every reachable file's pointers must be
	// valid addresses, and per-file volume spread is recorded (§8.2's
	// self-containment guidance).
	type entry struct {
		path string
		inum uint32
		dir  bool
	}
	var files []entry
	err := hl.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		files = append(files, entry{path, fi.Inum, fi.Type == lfs.TypeDir})
		return nil
	})
	if err != nil {
		return r, err
	}
	liveByDiskSeg := map[addr.SegNo]uint32{}
	liveByTseg := map[int]uint32{}
	tertAddrs := map[int][]addr.BlockNo{} // reachable blocks per tseg, for the pass-5 scrub
	seen := map[uint32]string{}
	for _, e := range files {
		if prev, dup := seen[e.inum]; dup {
			r.addf(e.path, "inode %d also reachable as %s (hard links are unsupported)", e.inum, prev)
			continue
		}
		seen[e.inum] = e.path
		if e.dir {
			r.Dirs++
		} else {
			r.Files++
		}
		refs, err := hl.FS.FileBlockRefs(p, e.inum)
		if err != nil {
			r.addf(e.path, "listing blocks: %v", err)
			continue
		}
		vols := map[int]bool{}
		for _, ref := range refs {
			r.BlockPtrs++
			if !hl.Amap.Valid(ref.Addr) {
				r.addf(e.path, "lbn %d points at invalid address %d", ref.Lbn, ref.Addr)
				continue
			}
			seg := hl.Amap.SegOf(ref.Addr)
			if hl.Amap.IsDiskSeg(seg) {
				r.DiskBlocks++
				liveByDiskSeg[seg] += lfs.BlockSize
			} else {
				r.TertBlocks++
				idx, _ := hl.Amap.TertIndex(seg)
				liveByTseg[idx] += lfs.BlockSize
				tertAddrs[idx] = append(tertAddrs[idx], ref.Addr)
				_, v, _, _ := hl.Amap.Loc(seg)
				vols[v] = true
			}
		}
		// Inode location counts toward the volume spread too.
		ie := hl.FS.Imap(e.inum)
		if iseg := hl.Amap.SegOf(ie.Addr); hl.Amap.IsTertiarySeg(iseg) {
			if idx, ok := hl.Amap.TertIndex(iseg); ok {
				liveByTseg[idx] += lfs.InodeSize
				tertAddrs[idx] = append(tertAddrs[idx], ie.Addr)
			}
			_, v, _, _ := hl.Amap.Loc(iseg)
			vols[v] = true
		} else if hl.Amap.IsDiskSeg(iseg) {
			liveByDiskSeg[iseg] += lfs.InodeSize
		}
		if len(vols) > 1 {
			var vv []int
			for v := range vols {
				vv = append(vv, v)
			}
			sort.Ints(vv)
			r.VolumesCross[e.inum] = vv
		}
	}

	// Pass 2: log structure — every dirty, non-cached disk segment must
	// parse with valid checksums, and the usage table must not
	// under-count the live bytes found by the walk (over-counting is
	// normal: dead blocks and metadata age out via the cleaner).
	for s := hl.FS.ReservedSegs(); s < hl.Amap.DiskSegs(); s++ {
		su := hl.FS.SegUsage(addr.SegNo(s))
		if su.Flags&lfs.SegDirty == 0 || su.Flags&lfs.SegCached != 0 {
			continue
		}
		sc, err := hl.FS.ReadSegment(p, addr.SegNo(s))
		if err != nil {
			r.addf(fmt.Sprintf("segment %d", s), "unreadable: %v", err)
			continue
		}
		r.SegsParsed += len(sc.Psegs)
		if live := liveByDiskSeg[addr.SegNo(s)]; su.LiveBytes < live {
			r.addf(fmt.Sprintf("segment %d", s),
				"usage table says %d live bytes but %d reachable bytes reside here", su.LiveBytes, live)
		}
	}

	// Pass 3: cache directory agreement — every cache line's disk
	// segment must be flagged SegCached with the matching tag, and vice
	// versa for bound cache segments.
	lineFor := map[addr.SegNo]int{}
	for _, l := range hl.Cache.Lines() {
		lineFor[l.DiskSeg] = l.Tag
		su := hl.FS.SegUsage(l.DiskSeg)
		if su.Flags&lfs.SegCached == 0 {
			r.addf(fmt.Sprintf("cache line %d", l.Tag), "disk segment %d not flagged cached", l.DiskSeg)
		} else if su.CacheTag != uint32(l.Tag) {
			r.addf(fmt.Sprintf("cache line %d", l.Tag), "segment %d tagged %d in the usage table", l.DiskSeg, su.CacheTag)
		}
	}
	for s := 0; s < hl.Amap.DiskSegs(); s++ {
		su := hl.FS.SegUsage(addr.SegNo(s))
		if su.Flags&lfs.SegCached == 0 || su.CacheTag == lfs.NilCacheTag {
			continue
		}
		if tag, ok := lineFor[addr.SegNo(s)]; !ok {
			r.addf(fmt.Sprintf("segment %d", s), "tagged as cache of tertiary segment %d but no directory line exists", su.CacheTag)
		} else if tag != int(su.CacheTag) {
			r.addf(fmt.Sprintf("segment %d", s), "directory says tag %d, usage table says %d", tag, su.CacheTag)
		}
	}

	// Pass 4: tertiary bookkeeping — reachable tertiary bytes must be
	// covered by the tsegfile's live counts.
	for idx, live := range liveByTseg {
		su := hl.FS.TsegUsage(idx)
		if su.Flags&lfs.SegDirty == 0 {
			r.addf(fmt.Sprintf("tseg %d", idx), "holds %d reachable bytes but is not marked written", live)
		}
		if su.LiveBytes < live {
			r.addf(fmt.Sprintf("tseg %d", idx),
				"tsegfile says %d live bytes but %d reachable bytes reside here", su.LiveBytes, live)
		}
	}

	// Pass 5: tertiary scrub — every reachable tertiary block must sit
	// inside a checksum-valid partial segment of its segment's image.
	// A segment bound to a staging cache line exists only on that line
	// (copy-out pending), so the line is scrubbed; every other segment
	// is read straight from the medium — deliberately bypassing the
	// cache, because a torn media copy (power cut mid WriteSegment)
	// under an intact cache line is exactly the latent fault a scrub
	// must find before the cache line ages out.
	var idxs []int
	for idx := range tertAddrs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	segBytes := hl.Amap.SegBlocks() * lfs.BlockSize
	for _, idx := range idxs {
		seg := hl.Amap.SegForIndex(idx)
		raw := make([]byte, segBytes)
		var src string
		if l, ok := hl.Cache.Peek(idx); ok && l.Staging {
			src = "staging line"
			if err := hl.FS.ReadRawBlocks(p, hl.Amap.BlockOf(l.DiskSeg, 0), raw); err != nil {
				r.addf(fmt.Sprintf("tseg %d", idx), "reading staging image: %v", err)
				continue
			}
		} else {
			src = "medium"
			d, v, s, ok := hl.Amap.Loc(seg)
			if !ok {
				r.addf(fmt.Sprintf("tseg %d", idx), "no media location")
				continue
			}
			if err := hl.Jukeboxes()[d].ReadSegment(p, v, s, raw); err != nil {
				r.addf(fmt.Sprintf("tseg %d", idx), "reading medium: %v", err)
				continue
			}
		}
		r.TsegsScrubbed++
		valid := validPsegBlocks(raw, hl.Amap.SegBlocks())
		for _, a := range tertAddrs[idx] {
			if off := hl.Amap.OffOf(a); !valid[off] {
				r.addf(fmt.Sprintf("tseg %d", idx),
					"reachable block at offset %d lies outside the checksum-valid psegs of the %s (torn or corrupt segment)", off, src)
			}
		}
	}

	// Pass 6: pin scrub — an HSM pin promises its segment stays staged, so
	// every tseg carrying the persisted pin flag must be written media with
	// a bound cache line (pins on never-written or evicted segments are
	// stale flags the HSM layer failed to clear).
	for idx := 0; idx < hl.FS.TsegCount(); idx++ {
		if !hl.FS.TsegPinned(idx) {
			continue
		}
		r.TsegsPinned++
		su := hl.FS.TsegUsage(idx)
		if su.Flags&lfs.SegDirty == 0 {
			r.addf(fmt.Sprintf("tseg %d", idx), "pinned but never written (stale pin flag)")
		}
		if _, cached := hl.Cache.Peek(idx); !cached {
			r.addf(fmt.Sprintf("tseg %d", idx), "pinned but not resident in the segment cache")
		}
	}
	return r, nil
}

// validPsegBlocks walks a segment image's contiguous pseg chain, checksum
// verifying each, and marks which block offsets hold validated content.
func validPsegBlocks(raw []byte, segBlocks int) []bool {
	valid := make([]bool, segBlocks)
	off := 0
	for off+1 <= segBlocks {
		sum, err := lfs.DecodeSummary(raw[off*lfs.BlockSize : (off+1)*lfs.BlockSize])
		if err != nil {
			break
		}
		n := int(sum.NBlocks)
		if n < 1 || off+n > segBlocks {
			break
		}
		if lfs.Checksum(raw[(off+1)*lfs.BlockSize:(off+n)*lfs.BlockSize]) != sum.DataSum {
			break
		}
		for b := off + 1; b < off+n; b++ {
			valid[b] = true
		}
		off += n
	}
	return valid
}

// Write renders the report including every problem.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintln(w, r.Summary())
	for _, p := range r.Problems {
		fmt.Fprintf(w, "  %s\n", p)
	}
	if len(r.VolumesCross) > 0 {
		fmt.Fprintf(w, "  note: %d files span multiple tertiary volumes (see §8.2 on metadata self-containment)\n",
			len(r.VolumesCross))
	}
}
