// Package stripe implements the disk-farm pseudo-device drivers of §6.6:
// several independent disks presented as a single logical block address
// space. Concat reproduces the paper's simple concatenation; Interleave
// (interleave.go) adds true striping with an optional rotating parity.
// Both split spanning requests into per-component sub-requests and issue
// them on their own simulated processes, so independent disk arms overlap
// in virtual time.
package stripe

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dev"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// ioNote labels a stripe-io trace stage with direction and size.
func ioNote(write bool, buf []byte) string {
	dir := "read"
	if write {
		dir = "write"
	}
	return fmt.Sprintf("%s %d blk", dir, len(buf)/dev.BlockSize)
}

// Farm is the interface a disk-farm pseudo-device presents to the file
// system: block I/O, a whole-farm write-cache flush, and component
// introspection. Concat and Interleave implement it.
type Farm interface {
	dev.BlockDev
	Flush(p *sim.Proc) error
	Components() int
}

// Concat is a concatenation of block devices: component 0 owns blocks
// [0, n0), component 1 owns [n0, n0+n1), and so on.
type Concat struct {
	devs   []dev.BlockDev
	starts []int64 // starts[i] = first block of component i
	total  int64
}

var _ Farm = (*Concat)(nil)

// ErrNoDevices is returned by New for an empty component list.
var ErrNoDevices = errors.New("stripe: no component devices")

// New returns the concatenation of devs, or ErrNoDevices if devs is empty.
func New(devs ...dev.BlockDev) (*Concat, error) {
	if len(devs) == 0 {
		return nil, ErrNoDevices
	}
	c := &Concat{devs: devs}
	for _, d := range devs {
		c.starts = append(c.starts, c.total)
		c.total += d.NumBlocks()
	}
	return c, nil
}

// MustNew is New panicking on an empty component list — for tests and
// examples with static configurations.
func MustNew(devs ...dev.BlockDev) *Concat {
	c, err := New(devs...)
	if err != nil {
		panic(err)
	}
	return c
}

// NumBlocks implements dev.BlockDev.
func (c *Concat) NumBlocks() int64 { return c.total }

// Append adds a device to the end of the concatenation (on-line disk
// addition, §6.4) and returns its starting block.
func (c *Concat) Append(d dev.BlockDev) int64 {
	start := c.total
	c.devs = append(c.devs, d)
	c.starts = append(c.starts, start)
	c.total += d.NumBlocks()
	return start
}

// Components reports the number of underlying devices.
func (c *Concat) Components() int { return len(c.devs) }

// Component returns underlying device i and its starting block.
func (c *Concat) Component(i int) (dev.BlockDev, int64) {
	return c.devs[i], c.starts[i]
}

// locate finds the component holding blk by binary search over the
// component start table (it sits on every block I/O of the file system).
func (c *Concat) locate(blk int64) (int, int64) {
	if blk < 0 || blk >= c.total {
		return -1, 0
	}
	// The first component starting beyond blk; its predecessor holds blk.
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > blk }) - 1
	return i, blk - c.starts[i]
}

func (c *Concat) do(p *sim.Proc, blk int64, buf []byte, write bool) error {
	if len(buf)%dev.BlockSize != 0 {
		return fmt.Errorf("stripe: buffer %d bytes not block-aligned", len(buf))
	}
	nb := int64(len(buf) / dev.BlockSize)
	if blk < 0 || blk+nb > c.total {
		return fmt.Errorf("stripe: blocks [%d,%d) out of range [0,%d)", blk, blk+nb, c.total)
	}
	tr := reqtrace.From(p)
	var note string
	if tr != nil {
		note = ioNote(write, buf)
	}
	groups := make([][]op, len(c.devs))
	for nb > 0 {
		i, off := c.locate(blk)
		if i < 0 {
			return fmt.Errorf("stripe: no component for block %d", blk)
		}
		span := c.devs[i].NumBlocks() - off
		if span > nb {
			span = nb
		}
		groups[i] = append(groups[i], op{d: c.devs[i], blk: off, buf: buf[:span*dev.BlockSize]})
		buf = buf[span*dev.BlockSize:]
		blk += span
		nb -= span
	}
	st := tr.StageStart(reqtrace.KindStripeIO, p.Now(), note)
	err := dispatch(p, "stripe.concat", groups, write)
	tr.StageEnd(st, p.Now())
	return err
}

// ReadBlocks implements dev.BlockDev.
func (c *Concat) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	return c.do(p, blk, buf, false)
}

// WriteBlocks implements dev.BlockDev.
func (c *Concat) WriteBlocks(p *sim.Proc, blk int64, buf []byte) error {
	return c.do(p, blk, buf, true)
}

// Flush implements dev.Flusher by draining the write cache of every
// component that has one, all components in parallel.
func (c *Concat) Flush(p *sim.Proc) error {
	return flushAll(p, "stripe.concat", c.devs)
}

// op is one contiguous transfer against a single component device. When a
// striped request maps several stripe units to physically adjacent blocks
// of one spindle, coalesce merges them into a single transfer through a
// bounce buffer; scatter then lists the request slices the bounce buffer
// is copied back to after a read (scatter-gather, as an HBA would do it).
type op struct {
	d       dev.BlockDev
	blk     int64
	buf     []byte
	scatter [][]byte
}

// coalesce merges physically adjacent transfers of one component into
// single larger ops, so a request striped across N spindles costs each
// arm one rotation instead of one per stripe unit. The ops must be sorted
// by physical block, which Interleave's row-order split and Concat's
// span-order split both produce for a contiguous request.
func coalesce(g []op, write bool) []op {
	out := g[:0]
	for _, o := range g {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if o.blk == prev.blk+int64(len(prev.buf)/dev.BlockSize) {
				if prev.scatter == nil {
					prev.scatter = [][]byte{prev.buf}
				}
				prev.scatter = append(prev.scatter, o.buf)
				continue
			}
		}
		out = append(out, o)
	}
	for i := range out {
		o := &out[i]
		if o.scatter == nil {
			continue
		}
		total := 0
		for _, part := range o.scatter {
			total += len(part)
		}
		bounce := make([]byte, 0, total)
		for _, part := range o.scatter {
			bounce = append(bounce, part...)
		}
		o.buf = bounce
		if write {
			o.scatter = nil // the gather copy above is all a write needs
		}
	}
	return out
}

// runOps issues a component's transfers in order from process p.
func runOps(p *sim.Proc, ops []op, write bool) error {
	for _, o := range ops {
		var err error
		if write {
			err = o.d.WriteBlocks(p, o.blk, o.buf)
		} else {
			err = o.d.ReadBlocks(p, o.blk, o.buf)
		}
		if err != nil {
			return err
		}
		if o.scatter != nil {
			off := 0
			for _, part := range o.scatter {
				off += copy(part, o.buf[off:])
			}
		}
	}
	return nil
}

// fanout runs the non-nil tasks, one per component index. A single task
// runs inline in the caller's process — byte-identical in virtual time to
// the historical serial path, which keeps single-spindle baselines
// bit-for-bit unchanged. Several tasks each get their own simulated
// process, spawned in component-index order so kernel event sequence
// numbers (and thus every FIFO tie-break) are deterministic, and joined on
// a condition variable. The join is first-error-wins with the lowest
// component index winning — a rule independent of completion order.
func fanout(p *sim.Proc, name string, tasks []func(*sim.Proc) error) error {
	for _, err := range fanoutAll(p, name, tasks) {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanoutAll is fanout returning every component's error by index instead
// of just the first — the degraded-read path needs to know *which* spindle
// refused so it can reconstruct exactly those extents from the survivors.
// The execution schedule (inline single task, spawn order, join) is
// identical to fanout's.
func fanoutAll(p *sim.Proc, name string, tasks []func(*sim.Proc) error) []error {
	errs := make([]error, len(tasks))
	busy, last := 0, -1
	for i, t := range tasks {
		if t != nil {
			busy++
			last = i
		}
	}
	switch busy {
	case 0:
		return errs
	case 1:
		errs[last] = tasks[last](p)
		return errs
	}
	k := p.Kernel()
	done := 0
	join := k.NewCond(name + ".join")
	for i, t := range tasks {
		if t == nil {
			continue
		}
		i, t := i, t
		k.Go(fmt.Sprintf("%s[%d]", name, i), func(cp *sim.Proc) {
			errs[i] = t(cp)
			done++
			join.Broadcast()
		})
	}
	for done < busy {
		join.Wait(p)
	}
	return errs
}

// dispatch executes per-component op lists through fanout, coalescing
// each component's adjacent transfers first.
func dispatch(p *sim.Proc, name string, groups [][]op, write bool) error {
	tasks := make([]func(*sim.Proc) error, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		g := coalesce(g, write)
		tasks[i] = func(cp *sim.Proc) error { return runOps(cp, g, write) }
	}
	return dispatchTasks(p, name, tasks, write)
}

// dispatchAll is dispatch returning per-component errors (fanoutAll).
func dispatchAll(p *sim.Proc, name string, groups [][]op, write bool) []error {
	tasks := make([]func(*sim.Proc) error, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		g := coalesce(g, write)
		tasks[i] = func(cp *sim.Proc) error { return runOps(cp, g, write) }
	}
	kind := ".read"
	if write {
		kind = ".write"
	}
	return fanoutAll(p, name+kind, tasks)
}

func dispatchTasks(p *sim.Proc, name string, tasks []func(*sim.Proc) error, write bool) error {
	kind := ".read"
	if write {
		kind = ".write"
	}
	return fanout(p, name+kind, tasks)
}

// flushAll drains every component's write cache in parallel.
func flushAll(p *sim.Proc, name string, devs []dev.BlockDev) error {
	tasks := make([]func(*sim.Proc) error, len(devs))
	for i, d := range devs {
		f, ok := d.(dev.Flusher)
		if !ok {
			continue
		}
		tasks[i] = func(cp *sim.Proc) error { return f.Flush(cp) }
	}
	return fanout(p, name+".flush", tasks)
}
