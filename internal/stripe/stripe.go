// Package stripe implements the concatenating pseudo-device driver of §6.6:
// several independent disks presented as a single logical block address
// space. Requests that span component boundaries are split and directed to
// each underlying device in order.
package stripe

import (
	"errors"
	"fmt"

	"repro/internal/dev"
	"repro/internal/sim"
)

// Concat is a concatenation of block devices: component 0 owns blocks
// [0, n0), component 1 owns [n0, n0+n1), and so on.
type Concat struct {
	devs   []dev.BlockDev
	starts []int64 // starts[i] = first block of component i
	total  int64
}

// ErrNoDevices is returned by New for an empty component list.
var ErrNoDevices = errors.New("stripe: no component devices")

// New returns the concatenation of devs, or ErrNoDevices if devs is empty.
func New(devs ...dev.BlockDev) (*Concat, error) {
	if len(devs) == 0 {
		return nil, ErrNoDevices
	}
	c := &Concat{devs: devs}
	for _, d := range devs {
		c.starts = append(c.starts, c.total)
		c.total += d.NumBlocks()
	}
	return c, nil
}

// MustNew is New panicking on an empty component list — for tests and
// examples with static configurations.
func MustNew(devs ...dev.BlockDev) *Concat {
	c, err := New(devs...)
	if err != nil {
		panic(err)
	}
	return c
}

// NumBlocks implements dev.BlockDev.
func (c *Concat) NumBlocks() int64 { return c.total }

// Append adds a device to the end of the concatenation (on-line disk
// addition, §6.4) and returns its starting block.
func (c *Concat) Append(d dev.BlockDev) int64 {
	start := c.total
	c.devs = append(c.devs, d)
	c.starts = append(c.starts, start)
	c.total += d.NumBlocks()
	return start
}

// Components reports the number of underlying devices.
func (c *Concat) Components() int { return len(c.devs) }

// Component returns underlying device i and its starting block.
func (c *Concat) Component(i int) (dev.BlockDev, int64) {
	return c.devs[i], c.starts[i]
}

// locate finds the component holding blk.
func (c *Concat) locate(blk int64) (int, int64) {
	// Linear scan: disk farms are a handful of spindles.
	for i := len(c.starts) - 1; i >= 0; i-- {
		if blk >= c.starts[i] {
			return i, blk - c.starts[i]
		}
	}
	return -1, 0
}

func (c *Concat) do(p *sim.Proc, blk int64, buf []byte, write bool) error {
	if len(buf)%dev.BlockSize != 0 {
		return fmt.Errorf("stripe: buffer %d bytes not block-aligned", len(buf))
	}
	nb := int64(len(buf) / dev.BlockSize)
	if blk < 0 || blk+nb > c.total {
		return fmt.Errorf("stripe: blocks [%d,%d) out of range [0,%d)", blk, blk+nb, c.total)
	}
	for nb > 0 {
		i, off := c.locate(blk)
		if i < 0 {
			return fmt.Errorf("stripe: no component for block %d", blk)
		}
		span := c.devs[i].NumBlocks() - off
		if span > nb {
			span = nb
		}
		chunk := buf[:span*dev.BlockSize]
		var err error
		if write {
			err = c.devs[i].WriteBlocks(p, off, chunk)
		} else {
			err = c.devs[i].ReadBlocks(p, off, chunk)
		}
		if err != nil {
			return err
		}
		buf = buf[span*dev.BlockSize:]
		blk += span
		nb -= span
	}
	return nil
}

// ReadBlocks implements dev.BlockDev.
func (c *Concat) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	return c.do(p, blk, buf, false)
}

// WriteBlocks implements dev.BlockDev.
func (c *Concat) WriteBlocks(p *sim.Proc, blk int64, buf []byte) error {
	return c.do(p, blk, buf, true)
}

// Flush implements dev.Flusher by draining the write cache of every
// component that has one.
func (c *Concat) Flush(p *sim.Proc) error {
	for _, d := range c.devs {
		if f, ok := d.(dev.Flusher); ok {
			if err := f.Flush(p); err != nil {
				return err
			}
		}
	}
	return nil
}
