package stripe

import (
	"bytes"
	"testing"

	"repro/internal/dev"
	"repro/internal/sim"
)

func newConcat(k *sim.Kernel, sizes ...int64) (*Concat, []*dev.Disk) {
	var devs []dev.BlockDev
	var disks []*dev.Disk
	for _, n := range sizes {
		d := dev.NewDisk(k, dev.RZ57, n, nil)
		devs = append(devs, d)
		disks = append(disks, d)
	}
	return MustNew(devs...), disks
}

func TestCapacityIsSum(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 100, 200, 50)
	if c.NumBlocks() != 350 {
		t.Fatalf("NumBlocks = %d, want 350", c.NumBlocks())
	}
	if c.Components() != 3 {
		t.Fatalf("Components = %d, want 3", c.Components())
	}
}

func TestRoundTripWithinOneComponent(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 100, 100)
	k.RunProc(func(p *sim.Proc) {
		w := bytes.Repeat([]byte{7}, 4*dev.BlockSize)
		if err := c.WriteBlocks(p, 120, w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, 4*dev.BlockSize)
		if err := c.ReadBlocks(p, 120, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("mismatch")
		}
	})
}

func TestSpanningRequestSplits(t *testing.T) {
	k := sim.NewKernel()
	c, disks := newConcat(k, 10, 10)
	k.RunProc(func(p *sim.Proc) {
		w := make([]byte, 6*dev.BlockSize)
		for i := range w {
			w[i] = byte(i % 127)
		}
		if err := c.WriteBlocks(p, 7, w); err != nil { // blocks 7..12: 3 on disk0, 3 on disk1
			t.Fatal(err)
		}
		r := make([]byte, 6*dev.BlockSize)
		if err := c.ReadBlocks(p, 7, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("spanning round trip mismatch")
		}
	})
	if disks[0].Stats().Writes == 0 || disks[1].Stats().Writes == 0 {
		t.Fatal("write did not split across both components")
	}
	// Verify placement: component 1 block 0 holds logical block 10.
	k2 := sim.NewKernel()
	_ = k2
	if disks[1].Stats().BytesWritten != 3*dev.BlockSize {
		t.Fatalf("component 1 got %d bytes, want %d", disks[1].Stats().BytesWritten, 3*dev.BlockSize)
	}
}

func TestRequestSpanningThreeComponents(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 4, 4, 4)
	k.RunProc(func(p *sim.Proc) {
		w := make([]byte, 10*dev.BlockSize)
		for i := range w {
			w[i] = byte(i % 31)
		}
		if err := c.WriteBlocks(p, 1, w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, 10*dev.BlockSize)
		if err := c.ReadBlocks(p, 1, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("mismatch across three components")
		}
	})
}

func TestOutOfRange(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 10, 10)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, dev.BlockSize)
		if err := c.ReadBlocks(p, 20, buf); err == nil {
			t.Error("past-end read accepted")
		}
		if err := c.WriteBlocks(p, -1, buf); err == nil {
			t.Error("negative write accepted")
		}
		if err := c.WriteBlocks(p, 19, make([]byte, 2*dev.BlockSize)); err == nil {
			t.Error("spilling write accepted")
		}
		if err := c.ReadBlocks(p, 0, make([]byte, 5)); err == nil {
			t.Error("unaligned buffer accepted")
		}
	})
}

func TestIndependentArmsAllowParallelism(t *testing.T) {
	// Two 1 MB reads on different spindles should overlap in time; on one
	// spindle they serialize. This is why Table 6 improves with a second
	// staging disk.
	elapsed := func(two bool) sim.Time {
		k := sim.NewKernel()
		var c *Concat
		if two {
			c, _ = newConcat(k, 512, 512)
		} else {
			c, _ = newConcat(k, 1024)
		}
		k.Go("a", func(p *sim.Proc) {
			buf := make([]byte, 256*dev.BlockSize)
			if err := c.ReadBlocks(p, 0, buf); err != nil {
				t.Error(err)
			}
		})
		k.Go("b", func(p *sim.Proc) {
			buf := make([]byte, 256*dev.BlockSize)
			if err := c.ReadBlocks(p, 512, buf); err != nil {
				t.Error(err)
			}
		})
		k.Run()
		return k.Now()
	}
	one, two := elapsed(false), elapsed(true)
	if two >= one {
		t.Fatalf("two spindles (%v) not faster than one (%v)", two, one)
	}
}

func TestAppendExtendsAddressSpace(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 50)
	d2 := dev.NewDisk(k, dev.RZ58, 30, nil)
	start := c.Append(d2)
	if start != 50 || c.NumBlocks() != 80 || c.Components() != 2 {
		t.Fatalf("append: start=%d total=%d comps=%d", start, c.NumBlocks(), c.Components())
	}
	k.RunProc(func(p *sim.Proc) {
		w := bytes.Repeat([]byte{9}, 2*dev.BlockSize)
		if err := c.WriteBlocks(p, 60, w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, 2*dev.BlockSize)
		if err := c.ReadBlocks(p, 60, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("appended device round trip failed")
		}
		// The appended device actually holds the data.
		r2 := make([]byte, 2*dev.BlockSize)
		if err := d2.ReadBlocks(p, 10, r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r2) {
			t.Fatal("data not on appended device")
		}
	})
}
