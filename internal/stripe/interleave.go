package stripe

import (
	"errors"
	"fmt"

	"repro/internal/dev"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// Interleave is a striped disk farm: the logical block space is cut into
// stripe units of unit blocks and dealt round-robin over N spindles, so a
// request spanning several units is served by several independent disk
// arms at once. With parity enabled the farm keeps one rotating
// RAID-5-style parity unit per stripe row (giving up one spindle's worth
// of capacity) and survives a single failed component: reads reconstruct
// the missing unit by XOR of the survivors, writes maintain parity with
// read-modify cycles.
//
// Geometry without parity: data stripe unit su lives on disk su % N at
// physical unit su / N. With parity, row r = su/(N-1) holds data units on
// the N-1 disks other than the parity disk r % N, in disk-index order.
type Interleave struct {
	devs   []dev.BlockDev
	unit   int64 // stripe unit in blocks
	parity bool
	failed []bool
	rows   int64 // complete stripe rows
	total  int64 // logical data blocks presented
}

var _ Farm = (*Interleave)(nil)

// ErrComponentFailed is returned when a request needs a component marked
// failed and no parity is available to reconstruct around it.
var ErrComponentFailed = errors.New("stripe: component failed")

// NewInterleave stripes devs with the given stripe unit (in 4 KB blocks).
// With parity set, one unit per row is rotating parity; at least three
// spindles are required then (two without). Capacity is the largest whole
// number of stripe rows that fits the smallest component.
func NewInterleave(unitBlocks int, parity bool, devs ...dev.BlockDev) (*Interleave, error) {
	if len(devs) == 0 {
		return nil, ErrNoDevices
	}
	if unitBlocks <= 0 {
		return nil, fmt.Errorf("stripe: stripe unit must be positive, got %d", unitBlocks)
	}
	if len(devs) < 2 {
		return nil, fmt.Errorf("stripe: interleaving needs at least 2 spindles, got %d", len(devs))
	}
	if parity && len(devs) < 3 {
		return nil, fmt.Errorf("stripe: rotating parity needs at least 3 spindles, got %d", len(devs))
	}
	min := devs[0].NumBlocks()
	for _, d := range devs[1:] {
		if d.NumBlocks() < min {
			min = d.NumBlocks()
		}
	}
	rows := min / int64(unitBlocks)
	if rows == 0 {
		return nil, fmt.Errorf("stripe: components hold %d blocks, smaller than one %d-block stripe unit", min, unitBlocks)
	}
	dataDisks := int64(len(devs))
	if parity {
		dataDisks--
	}
	return &Interleave{
		devs:   devs,
		unit:   int64(unitBlocks),
		parity: parity,
		failed: make([]bool, len(devs)),
		rows:   rows,
		total:  rows * dataDisks * int64(unitBlocks),
	}, nil
}

// MustNewInterleave is NewInterleave panicking on error, for tests and
// static configurations.
func MustNewInterleave(unitBlocks int, parity bool, devs ...dev.BlockDev) *Interleave {
	il, err := NewInterleave(unitBlocks, parity, devs...)
	if err != nil {
		panic(err)
	}
	return il
}

// NumBlocks implements dev.BlockDev (data capacity; parity is not
// addressable).
func (il *Interleave) NumBlocks() int64 { return il.total }

// Components reports the number of spindles.
func (il *Interleave) Components() int { return len(il.devs) }

// Component returns spindle i.
func (il *Interleave) Component(i int) dev.BlockDev { return il.devs[i] }

// StripeUnit reports the stripe unit in blocks.
func (il *Interleave) StripeUnit() int { return int(il.unit) }

// Parity reports whether the farm keeps rotating parity.
func (il *Interleave) Parity() bool { return il.parity }

// SetFailed marks component i failed (or repaired). With parity the farm
// keeps serving reads in degraded mode; without parity requests touching
// the component return ErrComponentFailed.
func (il *Interleave) SetFailed(i int, down bool) { il.failed[i] = down }

// dataDisks is the number of data units per stripe row.
func (il *Interleave) dataDisks() int64 {
	if il.parity {
		return int64(len(il.devs) - 1)
	}
	return int64(len(il.devs))
}

// parityDisk returns row r's parity spindle (-1 without parity).
func (il *Interleave) parityDisk(row int64) int {
	if !il.parity {
		return -1
	}
	return int(row % int64(len(il.devs)))
}

// lane maps data-unit index j of a row to its spindle: the j-th disk
// skipping the row's parity disk.
func (il *Interleave) lane(row int64, j int64) int {
	if !il.parity {
		return int(j)
	}
	pd := int64(il.parityDisk(row))
	if j >= pd {
		return int(j + 1)
	}
	return int(j)
}

// extent is a unit-bounded slice of a request: logical blocks
// [blk, blk+n) fall entirely inside data unit j of row row, at physical
// block phys of spindle disk.
type extent struct {
	row  int64
	j    int64 // data-unit index within the row
	disk int
	phys int64 // physical start block on the spindle
	buf  []byte
}

// split cuts a validated request into unit-bounded extents.
func (il *Interleave) split(blk int64, buf []byte) []extent {
	nd := il.dataDisks()
	var out []extent
	for len(buf) > 0 {
		su := blk / il.unit
		off := blk % il.unit
		row := su / nd
		j := su % nd
		n := il.unit - off
		if avail := int64(len(buf) / dev.BlockSize); n > avail {
			n = avail
		}
		out = append(out, extent{
			row:  row,
			j:    j,
			disk: il.lane(row, j),
			phys: row*il.unit + off,
			buf:  buf[:n*dev.BlockSize],
		})
		buf = buf[n*dev.BlockSize:]
		blk += n
	}
	return out
}

func (il *Interleave) validate(blk int64, buf []byte) (int64, error) {
	if len(buf)%dev.BlockSize != 0 {
		return 0, fmt.Errorf("stripe: buffer %d bytes not block-aligned", len(buf))
	}
	nb := int64(len(buf) / dev.BlockSize)
	if blk < 0 || blk+nb > il.total {
		return 0, fmt.Errorf("stripe: blocks [%d,%d) out of range [0,%d)", blk, blk+nb, il.total)
	}
	return nb, nil
}

// ReadBlocks implements dev.BlockDev.
func (il *Interleave) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	if _, err := il.validate(blk, buf); err != nil {
		return err
	}
	tr := reqtrace.From(p)
	var note string
	if tr != nil {
		note = ioNote(false, buf)
	}
	st := tr.StageStart(reqtrace.KindStripeIO, p.Now(), note)
	err := il.readBlocks(p, blk, buf)
	tr.StageEnd(st, p.Now())
	return err
}

func (il *Interleave) readBlocks(p *sim.Proc, blk int64, buf []byte) error {
	exts := il.split(blk, buf)
	groups := make([][]op, len(il.devs))
	var degraded []extent
	for _, e := range exts {
		if il.failed[e.disk] {
			if !il.parity {
				return fmt.Errorf("stripe: read of blocks on spindle %d: %w", e.disk, ErrComponentFailed)
			}
			degraded = append(degraded, e)
			continue
		}
		groups[e.disk] = append(groups[e.disk], op{d: il.devs[e.disk], blk: e.phys, buf: e.buf})
	}
	errs := dispatchAll(p, "stripe.ileave", groups, false)
	for d, err := range errs {
		if err == nil {
			continue
		}
		// A spindle refused the read (injected media fault, dying arm)
		// without being marked failed. With parity, serve its extents in
		// degraded mode — reconstruct from the survivors — instead of
		// failing the request; without parity the error stands.
		if !il.parity {
			return err
		}
		for _, e := range exts {
			if e.disk == d {
				degraded = append(degraded, e)
			}
		}
	}
	if len(degraded) == 0 {
		return nil
	}
	return il.reconstruct(p, degraded)
}

// reconstruct serves degraded-mode reads: each missing extent is the XOR
// of the same physical extent on every surviving spindle (the other data
// units plus the row's parity). All survivor reads across all degraded
// extents are issued as one parallel phase.
func (il *Interleave) reconstruct(p *sim.Proc, degraded []extent) error {
	groups := make([][]op, len(il.devs))
	scratch := make([][][]byte, len(degraded)) // per extent, per survivor
	for i, e := range degraded {
		for d := range il.devs {
			if d == e.disk {
				continue
			}
			if il.failed[d] {
				return fmt.Errorf("stripe: reconstructing spindle %d with spindle %d also failed: %w",
					e.disk, d, ErrComponentFailed)
			}
			sb := make([]byte, len(e.buf))
			scratch[i] = append(scratch[i], sb)
			groups[d] = append(groups[d], op{d: il.devs[d], blk: e.phys, buf: sb})
		}
	}
	if err := dispatch(p, "stripe.rebuild", groups, false); err != nil {
		return err
	}
	for i, e := range degraded {
		for j := range e.buf {
			e.buf[j] = 0
		}
		for _, sb := range scratch[i] {
			xorInto(e.buf, sb)
		}
	}
	return nil
}

// WriteBlocks implements dev.BlockDev.
func (il *Interleave) WriteBlocks(p *sim.Proc, blk int64, buf []byte) error {
	nb, err := il.validate(blk, buf)
	if err != nil {
		return err
	}
	tr := reqtrace.From(p)
	var note string
	if tr != nil {
		note = ioNote(true, buf)
	}
	st := tr.StageStart(reqtrace.KindStripeIO, p.Now(), note)
	err = il.writeBlocks(p, blk, nb, buf)
	tr.StageEnd(st, p.Now())
	return err
}

func (il *Interleave) writeBlocks(p *sim.Proc, blk, nb int64, buf []byte) error {
	if !il.parity {
		groups := make([][]op, len(il.devs))
		for _, e := range il.split(blk, buf) {
			if il.failed[e.disk] {
				return fmt.Errorf("stripe: write to blocks on spindle %d: %w", e.disk, ErrComponentFailed)
			}
			groups[e.disk] = append(groups[e.disk], op{d: il.devs[e.disk], blk: e.phys, buf: e.buf})
		}
		return dispatch(p, "stripe.ileave", groups, true)
	}
	return il.writeParity(p, blk, nb, buf)
}

// writeParity maintains rotating parity row by row. A fully covered row is
// the cheap case — parity is the XOR of the new data, no reads ("full
// stripe write"). A partially covered row pays the classic small-write
// penalty: the old row is read back (reconstructing a failed lane from
// parity if needed), overlaid with the new data, and the parity unit
// rewritten whole. Reads for every partial row form one parallel phase;
// all data and parity writes form a second.
func (il *Interleave) writeParity(p *sim.Proc, blk, nb int64, buf []byte) error {
	nd := il.dataDisks()
	unitB := il.unit * int64(dev.BlockSize)
	rowBlocks := nd * il.unit
	firstRow := blk / rowBlocks
	lastRow := (blk + nb - 1) / rowBlocks

	type rowPlan struct {
		row     int64
		full    bool
		old     [][]byte // nd lane buffers (partial rows only)
		oldPar  []byte   // old parity (only when a lane must be reconstructed)
		badLane int64    // lane on a failed spindle, -1 if none
		parity  []byte
	}
	plans := make([]*rowPlan, 0, lastRow-firstRow+1)
	readGroups := make([][]op, len(il.devs))
	for r := firstRow; r <= lastRow; r++ {
		pd := il.parityDisk(r)
		rp := &rowPlan{row: r, badLane: -1}
		covStart := r * rowBlocks // logical row bounds
		covEnd := covStart + rowBlocks
		rp.full = blk <= covStart && blk+nb >= covEnd
		for j := int64(0); j < nd; j++ {
			if il.failed[il.lane(r, j)] {
				rp.badLane = j
			}
		}
		if il.failed[pd] && rp.badLane >= 0 {
			return fmt.Errorf("stripe: write to row %d with two failed spindles: %w", r, ErrComponentFailed)
		}
		if !rp.full {
			// Read back the whole old row (healthy lanes), plus the old
			// parity when a failed lane must be reconstructed from it.
			rp.old = make([][]byte, nd)
			phys := r * il.unit
			for j := int64(0); j < nd; j++ {
				rp.old[j] = make([]byte, unitB)
				d := il.lane(r, j)
				if il.failed[d] {
					continue
				}
				readGroups[d] = append(readGroups[d], op{d: il.devs[d], blk: phys, buf: rp.old[j]})
			}
			if rp.badLane >= 0 {
				rp.oldPar = make([]byte, unitB)
				readGroups[pd] = append(readGroups[pd], op{d: il.devs[pd], blk: phys, buf: rp.oldPar})
			}
		}
		plans = append(plans, rp)
	}
	if err := dispatch(p, "stripe.ileave", readGroups, false); err != nil {
		return err
	}

	writeGroups := make([][]op, len(il.devs))
	for _, rp := range plans {
		pd := il.parityDisk(rp.row)
		rp.parity = make([]byte, unitB)
		if !rp.full && rp.badLane >= 0 {
			// Rebuild the failed lane's old contents: XOR of the old
			// parity and every surviving lane.
			bad := rp.old[rp.badLane]
			copy(bad, rp.oldPar)
			for j := int64(0); j < nd; j++ {
				if j != rp.badLane {
					xorInto(bad, rp.old[j])
				}
			}
		}
		// Overlay the new data onto the row image and collect data writes.
		rowStart := rp.row * rowBlocks
		for j := int64(0); j < nd; j++ {
			laneStart := rowStart + j*il.unit
			laneEnd := laneStart + il.unit
			s, e := blk, blk+nb
			if s < laneStart {
				s = laneStart
			}
			if e > laneEnd {
				e = laneEnd
			}
			var lane []byte // the lane's complete new contents
			if rp.full {
				lane = buf[(laneStart-blk)*int64(dev.BlockSize) : (laneEnd-blk)*int64(dev.BlockSize)]
			} else {
				lane = rp.old[j]
				if s < e {
					copy(lane[(s-laneStart)*int64(dev.BlockSize):], buf[(s-blk)*int64(dev.BlockSize):(e-blk)*int64(dev.BlockSize)])
				}
			}
			xorInto(rp.parity, lane)
			if s < e {
				d := il.lane(rp.row, j)
				if il.failed[d] {
					continue // the write survives in parity alone
				}
				writeGroups[d] = append(writeGroups[d], op{
					d:   il.devs[d],
					blk: rp.row*il.unit + (s - laneStart),
					buf: lane[(s-laneStart)*int64(dev.BlockSize) : (e-laneStart)*int64(dev.BlockSize)],
				})
			}
		}
		if !il.failed[pd] {
			writeGroups[pd] = append(writeGroups[pd], op{d: il.devs[pd], blk: rp.row * il.unit, buf: rp.parity})
		}
	}
	return dispatch(p, "stripe.ileave", writeGroups, true)
}

// Flush implements dev.Flusher across all spindles in parallel.
func (il *Interleave) Flush(p *sim.Proc) error {
	return flushAll(p, "stripe.ileave", il.devs)
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
