package stripe

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dev"
	"repro/internal/sim"
)

func newInterleave(k *sim.Kernel, unit int, parity bool, n int, size int64) (*Interleave, []*dev.Disk) {
	var devs []dev.BlockDev
	var disks []*dev.Disk
	for i := 0; i < n; i++ {
		d := dev.NewDisk(k, dev.RZ57, size, nil)
		devs = append(devs, d)
		disks = append(disks, d)
	}
	return MustNewInterleave(unit, parity, devs...), disks
}

// TestInterleaveMatchesConcatReference is the stripe-geometry property
// test: across stripe units, component counts, and parity, a random
// workload of boundary-spanning writes and reads through Interleave must
// be byte-equivalent to the same workload through a plain Concat of equal
// capacity — striping may only change placement, never contents.
func TestInterleaveMatchesConcatReference(t *testing.T) {
	for _, tc := range []struct {
		unit, n int
		parity  bool
	}{
		{1, 2, false}, {3, 2, false}, {8, 2, false},
		{2, 3, true}, {1, 3, true}, {5, 4, true},
		{4, 4, false}, {2, 8, false}, {3, 8, true},
	} {
		t.Run(fmt.Sprintf("u%d_n%d_parity%v", tc.unit, tc.n, tc.parity), func(t *testing.T) {
			k := sim.NewKernel()
			const perDisk = 64
			il, _ := newInterleave(k, tc.unit, tc.parity, tc.n, perDisk)
			total := il.NumBlocks()
			ref := MustNew(dev.NewDisk(k, dev.RZ57, total, nil))
			if want := (perDisk / int64(tc.unit)) * il.dataDisks() * int64(tc.unit); total != want {
				t.Fatalf("NumBlocks = %d, want %d", total, want)
			}
			rng := sim.NewRNG(uint64(tc.unit*100 + tc.n))
			k.RunProc(func(p *sim.Proc) {
				for op := 0; op < 60; op++ {
					blk := int64(rng.Intn(int(total)))
					max := total - blk
					if max > 3*int64(tc.unit)*int64(tc.n) {
						max = 3 * int64(tc.unit) * int64(tc.n) // span several rows
					}
					nb := int64(rng.Intn(int(max))) + 1
					buf := make([]byte, nb*dev.BlockSize)
					if rng.Intn(3) > 0 {
						for i := range buf {
							buf[i] = byte(rng.Intn(256))
						}
						if err := il.WriteBlocks(p, blk, buf); err != nil {
							t.Fatalf("interleave write [%d,%d): %v", blk, blk+nb, err)
						}
						if err := ref.WriteBlocks(p, blk, bytes.Clone(buf)); err != nil {
							t.Fatalf("reference write: %v", err)
						}
					} else {
						got := make([]byte, len(buf))
						want := make([]byte, len(buf))
						if err := il.ReadBlocks(p, blk, got); err != nil {
							t.Fatalf("interleave read [%d,%d): %v", blk, blk+nb, err)
						}
						if err := ref.ReadBlocks(p, blk, want); err != nil {
							t.Fatalf("reference read: %v", err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("read [%d,%d) differs from reference", blk, blk+nb)
						}
					}
				}
			})
		})
	}
}

// TestInterleaveDegradedRead exercises the parity path: with one spindle
// failed, every read must still return the data, reconstructed by XOR of
// the survivors; writes must keep parity consistent so repairing another
// spindle later still reads clean.
func TestInterleaveDegradedRead(t *testing.T) {
	k := sim.NewKernel()
	const unit, n, perDisk = 2, 4, 32
	il, _ := newInterleave(k, unit, true, n, perDisk)
	total := il.NumBlocks()
	k.RunProc(func(p *sim.Proc) {
		w := make([]byte, total*dev.BlockSize)
		for i := range w {
			w[i] = byte(i * 7)
		}
		if err := il.WriteBlocks(p, 0, w); err != nil {
			t.Fatal(err)
		}
		for fail := 0; fail < n; fail++ {
			il.SetFailed(fail, true)
			r := make([]byte, total*dev.BlockSize)
			if err := il.ReadBlocks(p, 0, r); err != nil {
				t.Fatalf("degraded read with spindle %d failed: %v", fail, err)
			}
			if !bytes.Equal(w, r) {
				t.Fatalf("degraded read with spindle %d down returned wrong data", fail)
			}
			// Partial reads too (they take the reconstruct path only when
			// they touch the failed lane).
			r2 := make([]byte, 3*dev.BlockSize)
			if err := il.ReadBlocks(p, 5, r2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w[5*dev.BlockSize:8*dev.BlockSize], r2) {
				t.Fatalf("degraded partial read wrong with spindle %d down", fail)
			}
			il.SetFailed(fail, false)
		}

		// Writes in degraded mode maintain parity: new data written while
		// spindle 1 is down must be readable after it comes back (its lane
		// is stale, so reads of that lane must come from reconstruction —
		// fail it again to check parity really covers the write).
		il.SetFailed(1, true)
		w2 := make([]byte, 5*dev.BlockSize)
		for i := range w2 {
			w2[i] = byte(200 - i)
		}
		if err := il.WriteBlocks(p, 7, w2); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		r := make([]byte, 5*dev.BlockSize)
		if err := il.ReadBlocks(p, 7, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w2, r) {
			t.Fatal("degraded write not readable while spindle down")
		}
	})
}

// TestInterleaveFailureModes pins the error behavior: without parity a
// failed component is fatal for requests touching it; with parity a
// second failure is fatal.
func TestInterleaveFailureModes(t *testing.T) {
	k := sim.NewKernel()
	plain, _ := newInterleave(k, 2, false, 2, 32)
	par, _ := newInterleave(k, 2, true, 3, 32)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, 8*dev.BlockSize)
		plain.SetFailed(1, true)
		if err := plain.ReadBlocks(p, 0, buf); err == nil {
			t.Error("no-parity read through failed spindle succeeded")
		}
		if err := plain.WriteBlocks(p, 0, buf); err == nil {
			t.Error("no-parity write through failed spindle succeeded")
		}

		if err := par.WriteBlocks(p, 0, buf); err != nil {
			t.Fatal(err)
		}
		par.SetFailed(0, true)
		par.SetFailed(1, true)
		if err := par.ReadBlocks(p, 0, buf); err == nil {
			t.Error("double-failure read succeeded")
		}
		if err := par.WriteBlocks(p, 0, buf); err == nil {
			t.Error("double-failure write succeeded")
		}
	})
}

// TestParityFullStripeWriteAvoidsReads checks the full-stripe fast path: a
// row-aligned, row-covering write computes parity from the new data alone
// and must not read any spindle.
func TestParityFullStripeWriteAvoidsReads(t *testing.T) {
	k := sim.NewKernel()
	const unit, n = 4, 5
	il, disks := newInterleave(k, unit, true, n, 64)
	rowBlocks := int64(unit * (n - 1))
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, 2*rowBlocks*dev.BlockSize)
		if err := il.WriteBlocks(p, rowBlocks, buf); err != nil {
			t.Fatal(err)
		}
	})
	for i, d := range disks {
		if r := d.Stats().Reads; r != 0 {
			t.Fatalf("full-stripe write issued %d reads on spindle %d", r, i)
		}
	}
	// A sub-row write is the read-modify case and must read.
	k2 := sim.NewKernel()
	il2, disks2 := newInterleave(k2, unit, true, n, 64)
	k2.RunProc(func(p *sim.Proc) {
		if err := il2.WriteBlocks(p, 1, make([]byte, dev.BlockSize)); err != nil {
			t.Fatal(err)
		}
	})
	reads := int64(0)
	for _, d := range disks2 {
		reads += d.Stats().Reads
	}
	if reads == 0 {
		t.Fatal("small write performed no read-modify reads")
	}
}

// TestInterleaveArmsOverlap is the point of striping: one large request
// over N spindles finishes faster than on one spindle of the same total
// capacity, because the per-unit transfers overlap in virtual time.
func TestInterleaveArmsOverlap(t *testing.T) {
	elapsed := func(n int) sim.Time {
		k := sim.NewKernel()
		var farm Farm
		if n == 1 {
			farm = MustNew(dev.NewDisk(k, dev.RZ57, 1024, nil))
		} else {
			farm, _ = newInterleave(k, 8, false, n, 1024/int64(n))
		}
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, 512*dev.BlockSize)
			if err := farm.ReadBlocks(p, 0, buf); err != nil {
				t.Error(err)
			}
		})
		return k.Now()
	}
	one, four := elapsed(1), elapsed(4)
	if four*2 >= one {
		t.Fatalf("4-spindle stripe read (%v) not at least 2x faster than one spindle (%v)", four, one)
	}
}

// TestParallelDispatchDeterminism double-runs an identical mixed workload
// (several procs hammering an interleaved farm) and requires identical
// final virtual time and identical per-spindle transfer counts — the
// fanout join must not depend on host scheduling.
func TestParallelDispatchDeterminism(t *testing.T) {
	run := func() (sim.Time, string) {
		k := sim.NewKernel()
		il, disks := newInterleave(k, 2, true, 4, 128)
		total := il.NumBlocks()
		for g := 0; g < 3; g++ {
			g := g
			k.Go(fmt.Sprintf("load-%d", g), func(p *sim.Proc) {
				rng := sim.NewRNG(uint64(g) + 1)
				for i := 0; i < 30; i++ {
					blk := int64(rng.Intn(int(total) - 12))
					buf := make([]byte, (int64(rng.Intn(12))+1)*dev.BlockSize)
					if rng.Intn(2) == 0 {
						if err := il.WriteBlocks(p, blk, buf); err != nil {
							t.Error(err)
						}
					} else if err := il.ReadBlocks(p, blk, buf); err != nil {
						t.Error(err)
					}
				}
			})
		}
		k.Run()
		digest := ""
		for i, d := range disks {
			st := d.Stats()
			digest += fmt.Sprintf("disk%d r%d w%d br%d bw%d;", i, st.Reads, st.Writes, st.BytesRead, st.BytesWritten)
		}
		return k.Now(), digest
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 {
		t.Fatalf("double run diverged in virtual time: %v vs %v", t1, t2)
	}
	if d1 != d2 {
		t.Fatalf("double run diverged in device stats:\n%s\n%s", d1, d2)
	}
}

// linearLocate is the historical reverse linear scan kept as the
// benchmark reference for the sort.Search replacement.
func (c *Concat) linearLocate(blk int64) (int, int64) {
	if blk < 0 || blk >= c.total {
		return -1, 0
	}
	for i := len(c.starts) - 1; i >= 0; i-- {
		if blk >= c.starts[i] {
			return i, blk - c.starts[i]
		}
	}
	return -1, 0
}

func TestLocateMatchesLinearScan(t *testing.T) {
	k := sim.NewKernel()
	c, _ := newConcat(k, 7, 13, 1, 64, 32, 5, 100, 9)
	for blk := int64(-1); blk <= c.NumBlocks(); blk++ {
		gi, go_ := c.locate(blk)
		wi, wo := c.linearLocate(blk)
		if gi != wi || go_ != wo {
			t.Fatalf("locate(%d) = (%d,%d), linear scan says (%d,%d)", blk, gi, go_, wi, wo)
		}
	}
}

// BenchmarkConcatLocate shows the binary-search win at farm sizes of 8+
// components (locate sits on every block I/O of the file system).
func BenchmarkConcatLocate(b *testing.B) {
	for _, n := range []int{2, 8, 16} {
		k := sim.NewKernel()
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = 1024
		}
		c, _ := newConcat(k, sizes...)
		total := c.NumBlocks()
		rng := sim.NewRNG(3)
		blks := make([]int64, 1024)
		for i := range blks {
			blks[i] = int64(rng.Intn(int(total)))
		}
		b.Run(fmt.Sprintf("binary/%d-comp", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.locate(blks[i%len(blks)])
			}
		})
		b.Run(fmt.Sprintf("linear/%d-comp", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.linearLocate(blks[i%len(blks)])
			}
		})
	}
}
