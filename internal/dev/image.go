package dev

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Image persistence: a disk's sparse backing store can be saved to and
// loaded from a stream, so the cmd/hlfs tool can operate on file system
// images across process runs (the simulation state is genuinely on "media").

const imageMagic = 0x48494d47 // "HIMG"

// SaveStore writes the disk's contents (sparse: only written blocks).
func (d *Disk) SaveStore(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(d.nblocks))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(d.store)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for blk, data := range d.store {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(blk))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadStore replaces the disk's contents from a stream written by
// SaveStore. The image's block count must match the disk's.
func (d *Disk) LoadStore(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != imageMagic {
		return fmt.Errorf("dev: bad image magic")
	}
	if n := int64(binary.LittleEndian.Uint64(hdr[4:])); n != d.nblocks {
		return fmt.Errorf("dev: image has %d blocks, disk has %d", n, d.nblocks)
	}
	count := binary.LittleEndian.Uint64(hdr[12:])
	d.store = make(map[int64][]byte, count)
	for i := uint64(0); i < count; i++ {
		var rec [8]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return err
		}
		blk := int64(binary.LittleEndian.Uint64(rec[:]))
		data := make([]byte, BlockSize)
		if _, err := io.ReadFull(br, data); err != nil {
			return err
		}
		d.store[blk] = data
	}
	return nil
}
