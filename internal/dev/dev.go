// Package dev models timed block devices: magnetic disks with a seek /
// rotation / media-transfer cost model, and the shared SCSI bus.
//
// Timing profiles are calibrated so that the raw sequential 1 MB transfer
// rates match Table 5 of the HighLight paper (RZ57, RZ58, magneto-optic
// drive; the HP7958A is inferred from Table 6). Disk-arm contention — the
// central effect in the paper's migration benchmarks — emerges naturally:
// each disk's arm is a FIFO sim.Resource, and interleaved request streams to
// distant regions pay long seeks.
package dev

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// BlockSize is the file system block size in bytes (§6.2 of the paper:
// 4-kilobyte units addressed by 32-bit block pointers).
const BlockSize = 4096

// Fault classes. Injected device errors (Disk.Fault, jukebox Fault hooks)
// wrap one of these sentinels so the recovery layer in internal/tertiary
// can classify a failure without knowing which injector produced it:
// transient errors are retried with backoff, permanent errors retire the
// affected segment.
var (
	// ErrTransientMedia is a recoverable media error (dust, vibration,
	// marginal signal): the same operation may succeed when retried.
	ErrTransientMedia = errors.New("dev: transient media error")
	// ErrPermanentMedia is an unrecoverable media defect: every retry of
	// an operation on the affected region fails.
	ErrPermanentMedia = errors.New("dev: permanent media error")
)

// BlockDev is a random-access array of fixed-size blocks with timed I/O.
// Reads of never-written blocks return zeroes.
type BlockDev interface {
	// ReadBlocks reads len(buf) bytes (a multiple of BlockSize) starting
	// at block blk.
	ReadBlocks(p *sim.Proc, blk int64, buf []byte) error
	// WriteBlocks writes len(buf) bytes (a multiple of BlockSize)
	// starting at block blk.
	WriteBlocks(p *sim.Proc, blk int64, buf []byte) error
	// NumBlocks reports the device capacity in blocks.
	NumBlocks() int64
}

// Bus is a shared I/O bus (e.g. one SCSI chain). Devices hold the bus for
// the host-transfer portion of each request; the robotic autochanger in
// package jukebox holds it for entire media swaps, reproducing the
// non-disconnecting driver described in §7 of the paper.
type Bus struct {
	res  *sim.Resource
	rate int64 // bytes per second
}

// NewBus returns a bus transferring at rate bytes/second.
func NewBus(k *sim.Kernel, name string, rate int64) *Bus {
	return &Bus{res: k.NewResource(name), rate: rate}
}

// Transfer holds the bus for the time needed to move n bytes.
func (b *Bus) Transfer(p *sim.Proc, n int) {
	if b == nil || n <= 0 {
		return
	}
	b.res.Acquire(p)
	p.Sleep(xfer(n, b.rate))
	b.res.Release(p)
}

// Hold occupies the bus for d of virtual time (used by media swaps).
func (b *Bus) Hold(p *sim.Proc, d sim.Time) {
	if b == nil {
		return
	}
	b.res.Acquire(p)
	p.Sleep(d)
	b.res.Release(p)
}

// BusyTotal reports cumulative bus occupancy.
func (b *Bus) BusyTotal() sim.Time { return b.res.BusyTotal() }

// WaitTotal reports cumulative time spent waiting for the bus.
func (b *Bus) WaitTotal() sim.Time { return b.res.WaitTotal() }

// xfer converts a byte count and a byte/second rate into a duration.
func xfer(n int, rate int64) sim.Time {
	if rate <= 0 {
		return 0
	}
	return sim.Time(float64(n) / float64(rate) * float64(time.Second))
}

// DiskProfile is the timing model of one disk model.
//
// A request for n bytes at block blk costs:
//
//	seek(|blk-headPos|) + Rotation + n/MediaRead(Write)   (arm held)
//	n/bus rate                                            (bus held)
//
// seek(0) = 0; seek(d) scales linearly from SeekMin (1 block) to SeekMax
// (full stroke). Rotation is charged on every discrete request — even a
// logically sequential one — because by the time the host issues the next
// request the platter has rotated past (the paper's FFS/LFS numbers for
// single-block reads show exactly this). A single large request pays it
// only once, which is why clustering wins.
type DiskProfile struct {
	Name       string
	SeekMin    sim.Time
	SeekMax    sim.Time
	Rotation   sim.Time
	MediaRead  int64 // bytes/second off the platter
	MediaWrite int64 // bytes/second onto the platter
}

// MaxTransfer is the largest single media transfer (the 4.4BSD MAXPHYS
// limit on raw-device I/O: 64 KB). Larger requests split into chunks, and
// the arm is re-arbitrated between chunks — which is how competing request
// streams interleave and seek-thrash against each other (the disk-arm
// contention of Table 6).
const MaxTransfer = 64 * 1024

// Calibrated profiles. Media rates are solved from Table 5's effective
// sequential 1 MB transfer rates R via
//
//	1 MB/R = 16*Rotation + 1 MB/Media + 1 MB/BusRate     (BusRate 3.9 MB/s)
//
// (a 1 MB raw transfer issues 16 MAXPHYS chunks, each paying a rotational
// delay) so that the Table 5 bench reproduces the paper's numbers.
var (
	// RZ57: Table 5 measures 1417 KB/s read, 993 KB/s write.
	RZ57 = DiskProfile{
		Name:       "RZ57",
		SeekMin:    4 * time.Millisecond,
		SeekMax:    35 * time.Millisecond,
		Rotation:   8300 * time.Microsecond,
		MediaRead:  3129 * 1024,
		MediaWrite: 1610 * 1024,
	}
	// RZ58: Table 5 measures 1491 KB/s read, 1261 KB/s write (read
	// likely SCSI-I bus limited, per the paper's note).
	RZ58 = DiskProfile{
		Name:       "RZ58",
		SeekMin:    3 * time.Millisecond,
		SeekMax:    30 * time.Millisecond,
		Rotation:   8300 * time.Microsecond,
		MediaRead:  3514 * 1024,
		MediaWrite: 2458 * 1024,
	}
	// HP7958A: a slower HP-IB connected disk; the paper reports no raw
	// numbers, only that staging on it degrades migration significantly
	// (Table 6). Effective rates are chosen to land the Table 6 row.
	HP7958A = DiskProfile{
		Name:       "HP7958A",
		SeekMin:    6 * time.Millisecond,
		SeekMax:    55 * time.Millisecond,
		Rotation:   16700 * time.Microsecond,
		MediaRead:  577 * 1024,
		MediaWrite: 300 * 1024,
	}
)

// SCSIBusRate is the modelled SCSI-I host transfer rate.
const SCSIBusRate = 3900 * 1024

// DiskStats accumulates per-device counters.
type DiskStats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	SeekTime, RotTime       sim.Time
	MediaTime               sim.Time
	ReadFaults, WriteFaults int64 // operations aborted by the Fault hook
	Destages                int64 // dirty blocks moved from write cache to media
}

// Flusher is a device with a volatile write cache that must be drained
// explicitly before its contents are durable. File-system sync and
// checkpoint points call Flush as a write barrier.
type Flusher interface {
	Flush(p *sim.Proc) error
}

// Disk is a timed magnetic disk with a sparse in-memory backing store.
//
// With EnableWriteCache, the disk models a bounded volatile write-back
// cache: acknowledged writes sit in the cache (readable back) until they
// are destaged — by FIFO overflow or an explicit Flush. A simulated power
// cut (SnapshotStore) sees only destaged blocks, so sync-ordering bugs in
// the file system above become visible. The cache changes *durability*
// semantics only; request timing is identical with or without it, keeping
// the calibrated Table 5/6 numbers intact.
type Disk struct {
	k       *sim.Kernel
	prof    DiskProfile
	nblocks int64
	arm     *sim.Resource
	bus     *Bus
	head    int64 // current arm position, in blocks
	store   map[int64][]byte
	stats   DiskStats

	wcap   int              // write-cache capacity in blocks; 0 = write-through
	wdirty map[int64][]byte // cached-but-not-durable blocks
	worder []int64          // FIFO destage order of wdirty keys

	obs        *obs.Obs // nil = not instrumented
	track      string
	rlat, wlat *obs.Histogram

	// Fault, if non-nil, is consulted before each operation; a non-nil
	// return aborts the request with that error (fault injection).
	Fault func(op string, blk int64) error

	// OnMediaWrite, if non-nil, observes every block becoming durable on
	// the platter (a direct write, or a destage from the write cache). It
	// runs synchronously with no virtual-time cost — the crash harness
	// uses it to count media writes and snapshot mid-operation.
	OnMediaWrite func(blk int64)
}

// NewDisk returns a disk of nblocks blocks attached to bus (which may be
// nil for a private channel, e.g. HP-IB).
func NewDisk(k *sim.Kernel, prof DiskProfile, nblocks int64, bus *Bus) *Disk {
	return &Disk{
		k:       k,
		prof:    prof,
		nblocks: nblocks,
		arm:     k.NewResource(prof.Name + ".arm"),
		bus:     bus,
		store:   make(map[int64][]byte),
	}
}

// NumBlocks reports the disk capacity in blocks.
func (d *Disk) NumBlocks() int64 { return d.nblocks }

// EnableWriteCache turns on the volatile write-back cache, bounded at
// nblocks dirty blocks. Writes beyond the bound destage the oldest dirty
// block first (FIFO), so media-apply order equals write-acknowledge order —
// the property the LFS checkpoint barrier protocol relies on.
func (d *Disk) EnableWriteCache(nblocks int) {
	if nblocks <= 0 {
		d.wcap = 0
		d.flushCacheNow()
		return
	}
	d.wcap = nblocks
	if d.wdirty == nil {
		d.wdirty = make(map[int64][]byte)
	}
}

// WriteCacheDirty reports the number of blocks sitting in the volatile
// write cache (0 in write-through mode).
func (d *Disk) WriteCacheDirty() int { return len(d.worder) }

// applyMedia makes one block durable on the platter and notifies the
// media-write observer.
func (d *Disk) applyMedia(blk int64, data []byte) {
	blkbuf, ok := d.store[blk]
	if !ok {
		blkbuf = make([]byte, BlockSize)
		d.store[blk] = blkbuf
	}
	copy(blkbuf, data)
	if d.OnMediaWrite != nil {
		d.OnMediaWrite(blk)
	}
}

// destageOldest moves the FIFO-oldest dirty block to the platter.
func (d *Disk) destageOldest() {
	blk := d.worder[0]
	d.worder = d.worder[1:]
	data := d.wdirty[blk]
	delete(d.wdirty, blk)
	d.applyMedia(blk, data)
	d.stats.Destages++
}

// cacheWrite absorbs one block into the write cache, destaging on
// overflow. A rewrite of a cached block updates it in place, keeping its
// original FIFO position (it must not become durable later than a block
// written before it).
func (d *Disk) cacheWrite(blk int64, data []byte) {
	if old, ok := d.wdirty[blk]; ok {
		copy(old, data)
		return
	}
	buf := make([]byte, BlockSize)
	copy(buf, data)
	d.wdirty[blk] = buf
	d.worder = append(d.worder, blk)
	for len(d.worder) > d.wcap {
		d.destageOldest()
	}
}

// flushCacheNow destages every dirty block (no virtual-time cost: the
// media time was charged when the write was accepted).
func (d *Disk) flushCacheNow() {
	for len(d.worder) > 0 {
		d.destageOldest()
	}
}

// Flush drains the volatile write cache; on return every acknowledged
// write is durable. It implements Flusher. No virtual time is charged —
// the timing model charges full media cost at write time, so the cache
// alters durability only.
func (d *Disk) Flush(p *sim.Proc) error {
	d.flushCacheNow()
	return nil
}

// SnapshotStore returns a deep copy of the *durable* media image: what a
// power cut at this instant would preserve. Blocks still in the volatile
// write cache are deliberately excluded.
func (d *Disk) SnapshotStore() map[int64][]byte {
	out := make(map[int64][]byte, len(d.store))
	for blk, data := range d.store {
		cp := make([]byte, len(data))
		copy(cp, data)
		out[blk] = cp
	}
	return out
}

// RestoreStore replaces the media image with a deep copy of m and empties
// the write cache — the disk as it comes back after a power cut.
func (d *Disk) RestoreStore(m map[int64][]byte) {
	d.store = make(map[int64][]byte, len(m))
	for blk, data := range m {
		cp := make([]byte, len(data))
		copy(cp, data)
		d.store[blk] = cp
	}
	d.wdirty = make(map[int64][]byte)
	d.worder = nil
	d.head = 0
}

// SetObs attaches an observability domain: every read/write emits a
// span (covering arm wait + seek + rotation + media + bus) on the given
// track, plus a request-latency histogram. track defaults to the
// profile name. Instrumentation charges no virtual time.
func (d *Disk) SetObs(o *obs.Obs, track string) {
	if track == "" {
		track = d.prof.Name
	}
	d.obs, d.track = o, track
	d.rlat = o.Histogram("disk."+track+".read_latency", obs.LatencyBounds)
	d.wlat = o.Histogram("disk."+track+".write_latency", obs.LatencyBounds)
}

// Profile reports the timing profile.
func (d *Disk) Profile() DiskProfile { return d.prof }

// Stats returns a snapshot of the per-device counters.
func (d *Disk) Stats() DiskStats { return d.stats }

// ArmWaitTotal reports cumulative virtual time spent waiting for the arm —
// the direct measure of disk-arm contention.
func (d *Disk) ArmWaitTotal() sim.Time { return d.arm.WaitTotal() }

// ArmBusyTotal reports cumulative virtual time the arm was held.
func (d *Disk) ArmBusyTotal() sim.Time { return d.arm.BusyTotal() }

func (d *Disk) checkRange(op string, blk int64, n int) error {
	if n%BlockSize != 0 {
		return fmt.Errorf("dev: %s %s: buffer %d bytes not a multiple of %d", d.prof.Name, op, n, BlockSize)
	}
	nb := int64(n / BlockSize)
	if blk < 0 || blk+nb > d.nblocks {
		return fmt.Errorf("dev: %s %s: blocks [%d,%d) out of range [0,%d)", d.prof.Name, op, blk, blk+nb, d.nblocks)
	}
	return nil
}

// seekTime is the arm movement cost for a request starting at blk. The
// curve is concave (square root of the fractional distance), as on real
// disks: short seeks pay most of the fixed settle cost, and the cost
// saturates toward SeekMax at full stroke.
func (d *Disk) seekTime(blk int64) sim.Time {
	dist := blk - d.head
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	span := d.nblocks - 1
	if span < 1 {
		span = 1
	}
	frac := math.Sqrt(float64(dist) / float64(span))
	return d.prof.SeekMin + sim.Time(float64(d.prof.SeekMax-d.prof.SeekMin)*frac)
}

// ReadBlocks implements BlockDev. Requests larger than MaxTransfer are
// split into MAXPHYS-sized chunks with the arm re-arbitrated in between,
// so concurrent streams interleave (and pay seeks against each other).
func (d *Disk) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	if err := d.checkRange("read", blk, len(buf)); err != nil {
		return err
	}
	if d.Fault != nil {
		if err := d.Fault("read", blk); err != nil {
			d.stats.ReadFaults++
			d.obs.Instant(d.track, "disk.fault", "read", obs.Arg{Key: "blk", Val: blk})
			return err
		}
	}
	t0, blk0, n0 := p.Now(), blk, len(buf)
	for len(buf) > 0 {
		n := len(buf)
		if n > MaxTransfer {
			n = MaxTransfer
		}
		chunk := buf[:n]
		d.arm.Acquire(p)
		st := d.seekTime(blk)
		d.stats.SeekTime += st
		d.stats.RotTime += d.prof.Rotation
		media := xfer(n, d.prof.MediaRead)
		d.stats.MediaTime += media
		p.Sleep(st + d.prof.Rotation + media)
		nb := int64(n / BlockSize)
		for i := int64(0); i < nb; i++ {
			// Read-your-writes: the volatile cache holds the newest copy.
			src, ok := d.wdirty[blk+i]
			if !ok {
				src, ok = d.store[blk+i]
			}
			dst := chunk[i*BlockSize : (i+1)*BlockSize]
			if ok {
				copy(dst, src)
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
		d.head = blk + nb
		d.arm.Release(p)
		d.bus.Transfer(p, n)
		d.stats.BytesRead += int64(n)
		blk += nb
		buf = buf[n:]
	}
	d.stats.Reads++
	if d.obs != nil {
		d.obs.Span(d.track, "disk.read", "read", t0,
			obs.Arg{Key: "blk", Val: blk0}, obs.Arg{Key: "bytes", Val: int64(n0)})
		d.rlat.Observe(p.Now() - t0)
	}
	return nil
}

// WriteBlocks implements BlockDev, with the same MAXPHYS chunking as
// ReadBlocks.
func (d *Disk) WriteBlocks(p *sim.Proc, blk int64, buf []byte) error {
	if err := d.checkRange("write", blk, len(buf)); err != nil {
		return err
	}
	if d.Fault != nil {
		if err := d.Fault("write", blk); err != nil {
			d.stats.WriteFaults++
			d.obs.Instant(d.track, "disk.fault", "write", obs.Arg{Key: "blk", Val: blk})
			return err
		}
	}
	t0, blk0, n0 := p.Now(), blk, len(buf)
	for len(buf) > 0 {
		n := len(buf)
		if n > MaxTransfer {
			n = MaxTransfer
		}
		chunk := buf[:n]
		d.bus.Transfer(p, n)
		d.arm.Acquire(p)
		st := d.seekTime(blk)
		d.stats.SeekTime += st
		d.stats.RotTime += d.prof.Rotation
		media := xfer(n, d.prof.MediaWrite)
		d.stats.MediaTime += media
		p.Sleep(st + d.prof.Rotation + media)
		nb := int64(n / BlockSize)
		for i := int64(0); i < nb; i++ {
			data := chunk[i*BlockSize : (i+1)*BlockSize]
			if d.wcap > 0 {
				d.cacheWrite(blk+i, data)
			} else {
				d.applyMedia(blk+i, data)
			}
		}
		d.head = blk + nb
		d.arm.Release(p)
		d.stats.BytesWritten += int64(n)
		blk += nb
		buf = buf[n:]
	}
	d.stats.Writes++
	if d.obs != nil {
		d.obs.Span(d.track, "disk.write", "write", t0,
			obs.Arg{Key: "blk", Val: blk0}, obs.Arg{Key: "bytes", Val: int64(n0)})
		d.wlat.Observe(p.Now() - t0)
	}
	return nil
}
