package dev

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestReadUnwrittenReturnsZeroes(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	k.RunProc(func(p *sim.Proc) {
		buf := bytes.Repeat([]byte{0xff}, BlockSize)
		if err := d.ReadBlocks(p, 100, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("unwritten block not zero")
			}
		}
	})
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	k.RunProc(func(p *sim.Proc) {
		w := make([]byte, 3*BlockSize)
		for i := range w {
			w[i] = byte(i % 251)
		}
		if err := d.WriteBlocks(p, 7, w); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, 3*BlockSize)
		if err := d.ReadBlocks(p, 7, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, r) {
			t.Fatal("read back differs from write")
		}
	})
}

func TestPartialOverlapWrite(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	k.RunProc(func(p *sim.Proc) {
		a := bytes.Repeat([]byte{1}, 2*BlockSize)
		b := bytes.Repeat([]byte{2}, 2*BlockSize)
		if err := d.WriteBlocks(p, 10, a); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteBlocks(p, 11, b); err != nil {
			t.Fatal(err)
		}
		r := make([]byte, 3*BlockSize)
		if err := d.ReadBlocks(p, 10, r); err != nil {
			t.Fatal(err)
		}
		if r[0] != 1 || r[BlockSize] != 2 || r[2*BlockSize] != 2 {
			t.Fatalf("overlap wrong: %d %d %d", r[0], r[BlockSize], r[2*BlockSize])
		}
	})
}

func TestRangeChecks(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 16, nil)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, BlockSize)
		if err := d.ReadBlocks(p, -1, buf); err == nil {
			t.Error("negative block accepted")
		}
		if err := d.ReadBlocks(p, 16, buf); err == nil {
			t.Error("past-end block accepted")
		}
		if err := d.WriteBlocks(p, 15, make([]byte, 2*BlockSize)); err == nil {
			t.Error("write spilling past end accepted")
		}
		if err := d.ReadBlocks(p, 0, make([]byte, 100)); err == nil {
			t.Error("non-multiple buffer accepted")
		}
	})
}

// TestRZ57SequentialRatesMatchTable5 checks the calibration: sequential 1 MB
// transfers should land within 3% of Table 5 (read 1417 KB/s, write 993 KB/s).
func TestRZ57SequentialRatesMatchTable5(t *testing.T) {
	checkRate := func(write bool, wantKBs float64) {
		k := sim.NewKernel()
		bus := NewBus(k, "scsi", SCSIBusRate)
		d := NewDisk(k, RZ57, 256*64, bus) // 64 MB
		var elapsed sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, 1024*1024)
			start := p.Now()
			for i := int64(0); i < 16; i++ {
				var err error
				if write {
					err = d.WriteBlocks(p, i*256, buf)
				} else {
					err = d.ReadBlocks(p, i*256, buf)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			elapsed = p.Now() - start
		})
		got := 16 * 1024 / elapsed.Seconds()
		if got < wantKBs*0.97 || got > wantKBs*1.03 {
			t.Errorf("sequential rate (write=%v) = %.0f KB/s, want ~%.0f", write, got, wantKBs)
		}
	}
	checkRate(false, 1417)
	checkRate(true, 993)
}

func TestRandomSlowerThanSequential(t *testing.T) {
	run := func(random bool) sim.Time {
		k := sim.NewKernel()
		d := NewDisk(k, RZ57, 256*256, nil) // 256 MB
		rng := sim.NewRNG(42)
		var elapsed sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, BlockSize)
			start := p.Now()
			for i := 0; i < 100; i++ {
				blk := int64(i)
				if random {
					blk = rng.Int63n(d.NumBlocks())
				}
				if err := d.ReadBlocks(p, blk, buf); err != nil {
					t.Fatal(err)
				}
			}
			elapsed = p.Now() - start
		})
		return elapsed
	}
	seq, rnd := run(false), run(true)
	if rnd < 2*seq {
		t.Fatalf("random (%v) should be much slower than sequential (%v)", rnd, seq)
	}
}

func TestArmContentionSerializes(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 256*64, nil)
	var aDone, bDone sim.Time
	k.Go("a", func(p *sim.Proc) {
		buf := make([]byte, 1024*1024)
		if err := d.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
		aDone = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		buf := make([]byte, 1024*1024)
		if err := d.ReadBlocks(p, 256*32, buf); err != nil {
			t.Error(err)
		}
		bDone = p.Now()
	})
	k.Run()
	if bDone <= aDone {
		t.Fatalf("second request (%v) should complete after first (%v)", bDone, aDone)
	}
	if d.ArmWaitTotal() == 0 {
		t.Fatal("expected arm wait time under contention")
	}
}

func TestBusSharedAcrossDevices(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "scsi", SCSIBusRate)
	d1 := NewDisk(k, RZ57, 1024, bus)
	d2 := NewDisk(k, RZ58, 1024, bus)
	k.Go("a", func(p *sim.Proc) {
		buf := make([]byte, 256*BlockSize)
		if err := d1.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
	})
	k.Go("b", func(p *sim.Proc) {
		buf := make([]byte, 256*BlockSize)
		if err := d2.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if bus.BusyTotal() == 0 {
		t.Fatal("bus never used")
	}
}

func TestBusHoldBlocksTransfers(t *testing.T) {
	k := sim.NewKernel()
	bus := NewBus(k, "scsi", SCSIBusRate)
	d := NewDisk(k, RZ57, 1024, bus)
	var readDone sim.Time
	k.Go("swap", func(p *sim.Proc) {
		bus.Hold(p, 13*time.Second) // robot hogging the bus
	})
	k.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		buf := make([]byte, BlockSize)
		if err := d.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
		readDone = p.Now()
	})
	k.Run()
	if readDone < 13*time.Second {
		t.Fatalf("read finished at %v, should have waited for 13s bus hold", readDone)
	}
}

func TestFaultInjection(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	wantErr := errors.New("media failure")
	d.Fault = func(op string, blk int64) error {
		if op == "read" && blk == 5 {
			return wantErr
		}
		return nil
	}
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, BlockSize)
		if err := d.ReadBlocks(p, 5, buf); !errors.Is(err, wantErr) {
			t.Errorf("fault not injected: %v", err)
		}
		if err := d.ReadBlocks(p, 6, buf); err != nil {
			t.Errorf("unexpected fault: %v", err)
		}
		if err := d.WriteBlocks(p, 5, buf); err != nil {
			t.Errorf("write should not fault: %v", err)
		}
	})
}

func TestFaultCountersAndSentinels(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	d.Fault = func(op string, blk int64) error {
		switch op {
		case "read":
			return ErrTransientMedia
		case "write":
			return ErrPermanentMedia
		}
		return nil
	}
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, BlockSize)
		if err := d.ReadBlocks(p, 0, buf); !errors.Is(err, ErrTransientMedia) {
			t.Errorf("read fault = %v, want errors.Is ErrTransientMedia", err)
		}
		if err := d.WriteBlocks(p, 0, buf); !errors.Is(err, ErrPermanentMedia) {
			t.Errorf("write fault = %v, want errors.Is ErrPermanentMedia", err)
		}
	})
	s := d.Stats()
	if s.ReadFaults != 1 || s.WriteFaults != 1 {
		t.Fatalf("fault counters = %d/%d, want 1/1", s.ReadFaults, s.WriteFaults)
	}
	// Faulted operations must not be counted as completed transfers.
	if s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("faulted ops counted as transfers: reads=%d writes=%d", s.Reads, s.Writes)
	}
}

func TestStatsAccumulate(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 1024, nil)
	k.RunProc(func(p *sim.Proc) {
		buf := make([]byte, 2*BlockSize)
		if err := d.WriteBlocks(p, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadBlocks(p, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("ops = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if s.BytesRead != 2*BlockSize || s.BytesWritten != 2*BlockSize {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.MediaTime == 0 {
		t.Fatal("media time not accumulated")
	}
}

// TestMaxTransferChunksInterleave verifies that two concurrent large
// transfers share the arm at MAXPHYS granularity: neither completes
// strictly before the other starts (the contention mechanism of Table 6).
func TestMaxTransferChunksInterleave(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 256*64, nil)
	var aDone, bDone, bStart sim.Time
	k.Go("a", func(p *sim.Proc) {
		buf := make([]byte, 1024*1024)
		if err := d.ReadBlocks(p, 0, buf); err != nil {
			t.Error(err)
		}
		aDone = p.Now()
	})
	k.Go("b", func(p *sim.Proc) {
		bStart = p.Now()
		buf := make([]byte, 1024*1024)
		if err := d.ReadBlocks(p, 256*32, buf); err != nil {
			t.Error(err)
		}
		bDone = p.Now()
	})
	k.Run()
	// With whole-request atomicity, b would finish a full request-time
	// after a; with chunked interleaving they finish within a chunk or
	// two of each other.
	if bDone-aDone > aDone/4 {
		t.Fatalf("streams did not interleave: a done %v, b done %v", aDone, bDone)
	}
	if bStart != 0 {
		t.Fatalf("b started late: %v", bStart)
	}
	// Interleaving pays seeks: total time exceeds two back-to-back reads.
	if bDone < 2*733*time.Millisecond {
		t.Fatalf("interleaved total %v suspiciously fast", bDone)
	}
}

// TestSeekCurveConcave checks the square-root seek model: a half-stroke
// seek costs more than half of a full-stroke seek.
func TestSeekCurveConcave(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, RZ57, 100000, nil)
	measure := func(from, to int64) sim.Time {
		var dt sim.Time
		k.RunProc(func(p *sim.Proc) {
			buf := make([]byte, BlockSize)
			if err := d.ReadBlocks(p, from, buf); err != nil {
				t.Fatal(err)
			}
			t0 := p.Now()
			if err := d.ReadBlocks(p, to, buf); err != nil {
				t.Fatal(err)
			}
			dt = p.Now() - t0
		})
		return dt
	}
	half := measure(0, 50000)
	full := measure(0, 99999)
	if half*2 <= full {
		t.Fatalf("seek curve not concave: half %v, full %v", half, full)
	}
	if half >= full {
		t.Fatalf("half-stroke seek (%v) not cheaper than full (%v)", half, full)
	}
}
