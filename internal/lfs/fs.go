package lfs

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
)

// Device is the block-address-space device the file system runs on: a
// plain disk farm for base LFS, or HighLight's block-map driver (which
// dispatches disk, cached, and tertiary addresses).
type Device interface {
	ReadBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error
	WriteBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error
}

// Flusher is implemented by devices with a volatile write cache. The file
// system issues Flush as a write barrier at its durability points: after
// the log writes of a sync, and twice during a checkpoint (before and
// after the checkpoint header) so the header never lands before the state
// it names.
type Flusher interface {
	Flush(p *sim.Proc) error
}

// flushDevice drains the device's volatile write cache, if it has one.
func (fs *FS) flushDevice(p *sim.Proc) error {
	if f, ok := fs.dev.(Flusher); ok {
		return f.Flush(p)
	}
	return nil
}

// Checksum exposes the log checksum (CRC-32C) used for partial-segment
// bodies, so recovery audits (fsck's tertiary scrub, the crash harness)
// can validate segment images the same way roll-forward does.
func Checksum(b []byte) uint32 { return crc32Sum(b) }

// Errors returned by the file system.
var (
	ErrNoSpace    = errors.New("lfs: no clean segments")
	ErrNotFound   = errors.New("lfs: no such file or directory")
	ErrExists     = errors.New("lfs: file exists")
	ErrNotDir     = errors.New("lfs: not a directory")
	ErrIsDir      = errors.New("lfs: is a directory")
	ErrNotEmpty   = errors.New("lfs: directory not empty")
	ErrNoInodes   = errors.New("lfs: out of inodes")
	ErrFileTooBig = errors.New("lfs: file too large")
)

// Options configures a file system at format (and mount) time.
type Options struct {
	// MaxInodes bounds the inode map. Default 4096.
	MaxInodes int
	// BufferBytes is the buffer cache capacity. Default 3.2 MB (the
	// paper's test machine).
	BufferBytes int
	// CacheSegs is the maximum number of disk segments usable to cache
	// tertiary segments (0 for base LFS). A static limit selected at
	// file system creation time (§6.4).
	CacheSegs int
	// CacheSegLo/CacheSegHi restrict cache-line allocation to the disk
	// segment range [CacheSegLo, CacheSegHi) — e.g. to place the staging
	// area on a separate spindle (the Table 6 RZ58/HP7958A configs).
	// Both zero means the whole disk.
	CacheSegLo, CacheSegHi int
	// WriteThreshold is the dirty-byte level that triggers a segment
	// write. Default: one segment's worth.
	WriteThreshold int
	// AssemblyCopyRate models the CPU cost (bytes/second) of copying
	// block buffers into the partial-segment staging area before a log
	// write — the paper's explanation for base LFS's slower sequential
	// writes versus FFS (§7.1). Zero disables the charge.
	AssemblyCopyRate int64
	// UserCopyRate models the CPU cost (bytes/second) of moving read
	// data from the buffer cache to user space. Zero disables it.
	UserCopyRate int64
	// GatherChunkBlocks caps how many blocks the migrator reads per raw
	// device request while gathering blocks for staging. The paper's
	// migrator locates blocks with lfs_bmapv and reads them from the
	// character device individually; 1 reproduces that (and its
	// disk-arm contention). Zero = unlimited contiguous runs.
	GatherChunkBlocks int
	// MaxDiskSegs sizes the checkpoint table region so the file system
	// can later grow to this many disk segments on-line (§6.4). Default:
	// twice the initial disk size.
	MaxDiskSegs int
}

func (o *Options) fill(segBytes int) {
	if o.MaxInodes <= 0 {
		o.MaxInodes = 4096
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = 3200 * 1024
	}
	if min := 4 * readCluster * BlockSize; o.BufferBytes < min {
		o.BufferBytes = min // room for clustered reads plus dirty data
	}
	if o.WriteThreshold <= 0 {
		o.WriteThreshold = segBytes
	}
}

// RecoveryInfo records what Mount did to bring the file system back: the
// checkpoint it started from, how far roll-forward got and why it
// stopped, and any namespace repair. hldump -recovery prints it.
type RecoveryInfo struct {
	CheckpointSerial uint64     // serial of the checkpoint recovered from
	CheckpointTime   int64      // virtual time the checkpoint was taken
	CheckpointSeg    addr.SegNo // log position named by the checkpoint
	CheckpointOff    int
	Region           uint32 // table region the checkpoint used

	PsegsReplayed   int // intact partial segments rolled forward
	BlocksReplayed  int // blocks covered by replayed partial segments
	InodesRecovered int // inode-map entries advanced by replay

	StopSeg    addr.SegNo // where replay stopped
	StopOff    int
	StopReason string // why replay stopped (torn write, stale serial, ...)

	DanglingDropped int // directory entries dropped by namespace repair
}

// Recovery reports how the last Mount recovered (zero value after Format).
func (fs *FS) Recovery() RecoveryInfo { return fs.recovery }

// Stats counts file system activity.
type Stats struct {
	DevReads, DevWrites     int64
	BytesRead, BytesWritten int64
	PartialSegs             int64
	Flushes, Checkpoints    int64
	SegsCleaned             int64
	BlocksRelocated         int64
	CacheHits, CacheMisses  int64 // buffer cache
}

// FS is a mounted log-structured file system.
type FS struct {
	k    *sim.Kernel
	dev  Device
	amap *addr.Map
	sb   Superblock
	opts Options
	lock *sim.Resource

	seguse []Seguse    // per disk segment
	tseg   []Seguse    // per tertiary segment (dense TertIndex order)
	imap   []ImapEntry // per inode number
	nclean int         // clean, allocatable disk segments
	serial uint64      // checkpoint epoch

	curSeg addr.SegNo
	curOff int

	nextInum  uint32
	freeInums []uint32

	bufs       map[bufKey]*buf
	lastLbn    map[uint32]int32 // per-file last-read lbn (sequential detection)
	lruHead    *buf             // most recent
	lruTail    *buf
	bufBytes   int
	dirtyBytes int
	inodes     map[uint32]*Inode
	dirtyIno   map[uint32]bool

	cacheInUse  int  // disk segments currently holding cached tertiary lines
	inFlush     bool // guards against recursive segment writes
	inEmergency bool // guards against recursive emergency cleaning

	// Segments cleaned since the last checkpoint. They stay flagged dirty
	// (unallocatable) until a checkpoint makes the relocation of their
	// live data durable: reusing one earlier would let a crash resurrect a
	// checkpoint whose tables still point into the overwritten segment.
	pendingClean    []addr.SegNo
	pendingCleanSet map[addr.SegNo]bool

	// Segments whose block references a migrator has gathered but not yet
	// finished copying out. The cleaner skips them so it cannot relocate
	// blocks out from under an in-flight migration stream; see
	// ReserveSegments.
	migrateBusy map[addr.SegNo]bool

	recovery RecoveryInfo // filled by Mount

	// EmergencyClean, if set, is invoked (lock held) when the allocator
	// runs out of clean segments; it should clean at least one segment
	// and return true on success.
	EmergencyClean func(p *sim.Proc) bool

	// OnAccess, if set, observes file data accesses: the in-kernel
	// sequential block-range recording that the finer-grained migration
	// policies of §5.2 require. It must not block.
	OnAccess func(inum uint32, lbnStart, lbnEnd int32, write bool)

	stats Stats
}

// Format initializes an empty file system on device with the given address
// map and options, and returns it mounted.
func Format(p *sim.Proc, device Device, amap *addr.Map, opts Options) (*FS, error) {
	opts.fill(amap.SegBlocks() * BlockSize)
	fs := &FS{
		k:        p.Kernel(),
		dev:      device,
		amap:     amap,
		opts:     opts,
		lock:     p.Kernel().NewResource("lfs.lock"),
		bufs:     make(map[bufKey]*buf),
		lastLbn:  make(map[uint32]int32),
		inodes:   make(map[uint32]*Inode),
		dirtyIno: make(map[uint32]bool),
	}
	tb := fs.tableBlocks(opts.MaxInodes)
	reservedBlocks := 3 + 2*tb
	reservedSegs := (reservedBlocks + amap.SegBlocks() - 1) / amap.SegBlocks()
	if reservedSegs+2 > amap.DiskSegs() {
		return nil, fmt.Errorf("lfs: disk too small: %d segments, %d reserved", amap.DiskSegs(), reservedSegs)
	}
	fs.sb = Superblock{
		Magic:        superMagic,
		SegBlocks:    uint32(amap.SegBlocks()),
		DiskSegs:     uint32(amap.DiskSegs()),
		ReservedSegs: uint32(reservedSegs),
		MaxInodes:    uint32(opts.MaxInodes),
		CacheSegs:    uint32(opts.CacheSegs),
		TableBlocks:  uint32(tb),
		TertDevs:     amap.Devices(),
	}
	fs.seguse = make([]Seguse, amap.DiskSegs())
	for i := 0; i < reservedSegs; i++ {
		fs.seguse[i].Flags = SegNoStore
	}
	fs.nclean = amap.DiskSegs() - reservedSegs
	fs.tseg = make([]Seguse, amap.TertSegs())
	fs.imap = make([]ImapEntry, opts.MaxInodes)
	for i := range fs.imap {
		fs.imap[i].Addr = addr.NilBlock
	}
	// Reserve the special inode numbers. The ifile and tsegfile tables
	// are checkpointed into the reserved area; their inums stay claimed
	// for fidelity with the paper's layout.
	fs.imap[IfileInum].Version = 1
	fs.imap[TsegInum].Version = 1
	fs.nextInum = FirstInum
	fs.serial = 1
	fs.curSeg = addr.SegNo(reservedSegs)
	fs.curOff = 0
	fs.seguse[fs.curSeg].Flags = SegActive
	fs.nclean--

	// Superblock.
	blk := make([]byte, BlockSize)
	fs.sb.encode(blk)
	if err := device.WriteBlocks(p, fs.amap.BlockOf(0, 0), blk); err != nil {
		return nil, err
	}
	// Root directory.
	root := &Inode{Inum: RootInum, Version: 1, Type: TypeDir, Nlink: 2, Mtime: fs.now(), Ctime: fs.now()}
	fs.inodes[RootInum] = root
	fs.imap[RootInum].Version = 1
	fs.dirtyIno[RootInum] = true
	if err := fs.writeDirLocked(p, root, nil); err != nil {
		return nil, err
	}
	if err := fs.checkpointLocked(p); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount loads an existing file system from device, rolling the log forward
// from the most recent checkpoint.
func Mount(p *sim.Proc, device Device, amap *addr.Map, opts Options) (*FS, error) {
	blk := make([]byte, BlockSize)
	if err := device.ReadBlocks(p, amap.BlockOf(0, 0), blk); err != nil {
		return nil, err
	}
	var sb Superblock
	if err := sb.decode(blk); err != nil {
		return nil, err
	}
	if int(sb.SegBlocks) != amap.SegBlocks() || int(sb.DiskSegs) != amap.DiskSegs() {
		return nil, fmt.Errorf("lfs: geometry mismatch: media %dx%d, map %dx%d",
			sb.DiskSegs, sb.SegBlocks, amap.DiskSegs(), amap.SegBlocks())
	}
	opts.fill(amap.SegBlocks() * BlockSize)
	opts.MaxInodes = int(sb.MaxInodes)
	opts.CacheSegs = int(sb.CacheSegs)
	fs := &FS{
		k:        p.Kernel(),
		dev:      device,
		amap:     amap,
		sb:       sb,
		opts:     opts,
		lock:     p.Kernel().NewResource("lfs.lock"),
		bufs:     make(map[bufKey]*buf),
		lastLbn:  make(map[uint32]int32),
		inodes:   make(map[uint32]*Inode),
		dirtyIno: make(map[uint32]bool),
	}
	// Pick the newer valid checkpoint.
	var best checkpoint
	found := false
	for i := 1; i <= 2; i++ {
		if err := device.ReadBlocks(p, amap.BlockOf(0, i), blk); err != nil {
			return nil, err
		}
		var c checkpoint
		if c.decode(blk) && (!found || c.Serial > best.Serial) {
			best, found = c, true
		}
	}
	if !found {
		return nil, errors.New("lfs: no valid checkpoint")
	}
	if err := fs.loadTables(p, best); err != nil {
		return nil, err
	}
	fs.serial = best.Serial
	fs.nextInum = best.NextInum
	fs.curSeg = best.CurSeg
	fs.curOff = int(best.CurOff)
	fs.recovery = RecoveryInfo{
		CheckpointSerial: best.Serial,
		CheckpointTime:   best.Time,
		CheckpointSeg:    best.CurSeg,
		CheckpointOff:    int(best.CurOff),
		Region:           best.Region,
	}
	if err := fs.rollForward(p, best); err != nil {
		return nil, err
	}
	// Recount clean segments, cache claims, and the free-inum list.
	fs.nclean = 0
	for i := range fs.seguse {
		if fs.seguse[i].Flags == 0 {
			fs.nclean++
		}
		if fs.seguse[i].Flags&SegCached != 0 {
			fs.cacheInUse++
		}
	}
	for i := FirstInum; i < len(fs.imap); i++ {
		if fs.imap[i].Addr == addr.NilBlock && fs.imap[i].Version > 0 && uint32(i) < fs.nextInum {
			fs.freeInums = append(fs.freeInums, uint32(i))
		}
	}
	fs.serial++ // new write epoch
	return fs, nil
}

// RepairDangling walks the namespace and drops directory entries naming
// inodes the recovered map has never seen. A crash between a
// directory-data partial segment and the trailing one carrying the new
// file's inode leaves such a durable dangling dirent (4.4BSD would leave
// this to a foreground fsck; the file had no durable content, so nothing
// synced is lost). The caller invokes it once the block address space is
// fully serviceable — after the segment-cache directory is rebuilt, since
// the walk may read directories resident on tertiary storage.
func (fs *FS) RepairDangling(p *sim.Proc) (int, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dropped, err := fs.repairDanglingLocked(p)
	fs.recovery.DanglingDropped += dropped
	return dropped, err
}

// repairDanglingLocked walks the namespace and removes directory entries
// whose inode the recovered map does not contain.
func (fs *FS) repairDanglingLocked(p *sim.Proc) (int, error) {
	dropped := 0
	queue := []uint32{RootInum}
	seen := map[uint32]bool{RootInum: true}
	for len(queue) > 0 {
		inum := queue[0]
		queue = queue[1:]
		ino, err := fs.iget(p, inum)
		if err != nil {
			return dropped, fmt.Errorf("lfs: namespace repair: inode %d: %w", inum, err)
		}
		if ino.Type != TypeDir {
			continue
		}
		ents, err := fs.readDirLocked(p, ino)
		if err != nil {
			return dropped, fmt.Errorf("lfs: namespace repair: directory %d: %w", inum, err)
		}
		keep := make([]Dirent, 0, len(ents))
		for _, e := range ents {
			if int(e.Inum) >= len(fs.imap) || fs.imap[e.Inum].Addr == addr.NilBlock {
				dropped++
				continue
			}
			keep = append(keep, e)
			if !seen[e.Inum] {
				seen[e.Inum] = true
				queue = append(queue, e.Inum)
			}
		}
		if len(keep) != len(ents) {
			if err := fs.writeDirLocked(p, ino, keep); err != nil {
				return dropped, err
			}
		}
	}
	return dropped, nil
}

// now returns the current virtual time in nanoseconds.
func (fs *FS) now() int64 { return int64(fs.k.Now()) }

// chargeCopy advances virtual time for a modelled CPU memory copy.
func (fs *FS) chargeCopy(p *sim.Proc, n int, rate int64) {
	if rate <= 0 || n <= 0 {
		return
	}
	p.Sleep(sim.Time(float64(n) / float64(rate) * 1e9))
}

// Map exposes the address map (read-only use).
func (fs *FS) Map() *addr.Map { return fs.amap }

// Superblock returns a copy of the on-media superblock.
func (fs *FS) Superblock() Superblock { return fs.sb }

// Stats returns a snapshot of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// CleanSegs reports the number of clean, allocatable disk segments.
func (fs *FS) CleanSegs() int { return fs.nclean }

// tableBlocks computes the size of one checkpoint table region, with
// headroom for on-line disk growth up to MaxDiskSegs.
func (fs *FS) tableBlocks(maxInodes int) int {
	maxSegs := fs.opts.MaxDiskSegs
	if maxSegs < fs.amap.DiskSegs() {
		maxSegs = 2 * fs.amap.DiskSegs()
	}
	segBlks := blocksFor(maxSegs * SeguseSize)
	tsegBlks := blocksFor(fs.amap.TertSegs() * SeguseSize)
	imapBlks := blocksFor(maxInodes * ImapSize)
	return 1 + segBlks + tsegBlks + imapBlks // 1 header/cleanerinfo block
}

func blocksFor(bytes int) int { return (bytes + BlockSize - 1) / BlockSize }

// tableRegionBlock returns the device block address of block i of table
// region r.
func (fs *FS) tableRegionBlock(r uint32, i int) addr.BlockNo {
	base := 3 + int(r)*int(fs.sb.TableBlocks) + i
	return fs.amap.BlockOf(addr.SegNo(base/fs.amap.SegBlocks()), base%fs.amap.SegBlocks())
}

// serializeTables renders the ifile + tsegfile tables into one buffer.
func (fs *FS) serializeTables() []byte {
	out := make([]byte, int(fs.sb.TableBlocks)*BlockSize)
	// Block 0: cleaner info.
	// (clean/dirty counts are recomputed at mount; block reserved for
	// layout fidelity and the dump tool.)
	off := BlockSize
	for i := range fs.seguse {
		fs.seguse[i].encode(out[off+i*SeguseSize:])
	}
	off += blocksFor(len(fs.seguse)*SeguseSize) * BlockSize
	for i := range fs.tseg {
		fs.tseg[i].encode(out[off+i*SeguseSize:])
	}
	off += blocksFor(len(fs.tseg)*SeguseSize) * BlockSize
	for i := range fs.imap {
		fs.imap[i].encode(out[off+i*ImapSize:])
	}
	return out
}

// loadTables reads the table region named by checkpoint c.
func (fs *FS) loadTables(p *sim.Proc, c checkpoint) error {
	buf := make([]byte, int(fs.sb.TableBlocks)*BlockSize)
	if err := fs.dev.ReadBlocks(p, fs.tableRegionBlock(c.Region, 0), buf); err != nil {
		return err
	}
	fs.seguse = make([]Seguse, fs.sb.DiskSegs)
	fs.tseg = make([]Seguse, fs.amap.TertSegs())
	fs.imap = make([]ImapEntry, fs.sb.MaxInodes)
	off := BlockSize
	for i := range fs.seguse {
		fs.seguse[i].decode(buf[off+i*SeguseSize:])
	}
	off += blocksFor(len(fs.seguse)*SeguseSize) * BlockSize
	for i := range fs.tseg {
		fs.tseg[i].decode(buf[off+i*SeguseSize:])
	}
	off += blocksFor(len(fs.tseg)*SeguseSize) * BlockSize
	for i := range fs.imap {
		fs.imap[i].decode(buf[off+i*ImapSize:])
	}
	return nil
}

// commitCleanedLocked makes the segments cleaned since the last
// checkpoint allocatable again. Called only from writeCheckpointLocked,
// so the transition becomes durable with the tables about to be written —
// and no log write can land in a committed segment before the checkpoint
// header does.
func (fs *FS) commitCleanedLocked() {
	for _, seg := range fs.pendingClean {
		su := &fs.seguse[seg]
		su.Flags = 0
		su.LiveBytes = 0
		su.CacheTag = 0
		fs.nclean++
	}
	fs.pendingClean = fs.pendingClean[:0]
	fs.pendingCleanSet = nil
}

// checkpointLocked flushes all dirty state and writes a checkpoint: tables
// to the ping-pong region, then the checkpoint header. Requires the lock.
func (fs *FS) checkpointLocked(p *sim.Proc) error {
	if err := fs.flushLocked(p, true); err != nil {
		return err
	}
	return fs.writeCheckpointLocked(p)
}

// writeCheckpointLocked writes the tables and checkpoint header for the
// current in-memory state, with write barriers so that (1) everything the
// tables describe is durable before the header names them and (2) the
// header itself is durable on return. The caller must have flushed any
// dirty file data first (or be at a point where the tables are consistent
// with the media, as after a cleaner pass).
func (fs *FS) writeCheckpointLocked(p *sim.Proc) error {
	fs.commitCleanedLocked()
	region := uint32(fs.serial % 2)
	tables := fs.serializeTables()
	// The table region is contiguous; write it in segment-sized chunks.
	chunk := fs.amap.SegBlocks() * BlockSize
	for off := 0; off < len(tables); off += chunk {
		end := off + chunk
		if end > len(tables) {
			end = len(tables)
		}
		if err := fs.dev.WriteBlocks(p, fs.tableRegionBlock(region, off/BlockSize), tables[off:end]); err != nil {
			return err
		}
	}
	// Barrier: the log writes and tables must be durable before the
	// checkpoint header can name them.
	if err := fs.flushDevice(p); err != nil {
		return err
	}
	c := checkpoint{
		Serial:   fs.serial,
		Time:     fs.now(),
		CurSeg:   fs.curSeg,
		CurOff:   uint32(fs.curOff),
		NextInum: fs.nextInum,
		Region:   region,
	}
	blk := make([]byte, BlockSize)
	c.encode(blk)
	slot := 1 + int(fs.serial%2)
	if err := fs.dev.WriteBlocks(p, fs.amap.BlockOf(0, slot), blk); err != nil {
		return err
	}
	// Barrier: a checkpoint is not complete until its header is on media.
	if err := fs.flushDevice(p); err != nil {
		return err
	}
	fs.serial++
	fs.stats.Checkpoints++
	return nil
}

// Checkpoint flushes all dirty state and writes a recovery checkpoint.
func (fs *FS) Checkpoint(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	return fs.checkpointLocked(p)
}

// CheckpointTables writes the in-memory tables and a checkpoint header
// WITHOUT flushing dirty buffers first. The tables always reflect every
// partial segment already in the log (imap and segment usage are updated
// at log-write time), so the result is a consistent recovery point; what
// it does not capture is metadata dirtied but not yet written. The
// migrator uses it to make a staging-line binding durable without
// relocating the dirty flipped metadata of an in-flight migration batch
// (a full checkpoint's flush would invalidate the batch's captured block
// refs). Live-byte accounting applied at operation time (unlinks,
// migration pointer flips) may be slightly ahead of the durable pointers
// in the written tables; recovery heals that by recomputing the counts
// from a namespace walk (RecomputeLiveBytes).
func (fs *FS) CheckpointTables(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	return fs.writeCheckpointLocked(p)
}

// RecomputeLiveBytes rebuilds the live-byte accounting of the disk and
// tertiary segment usage tables from a namespace walk. After a crash the
// checkpointed counts can disagree with the durable pointers in either
// direction: roll-forward re-adds bytes for replayed partial segments but
// never subtracts the copies they superseded (over-count), and a
// table-only checkpoint (CheckpointTables, the cleaner's commit) can
// capture operation-time decrements whose pointer updates never reached
// the log (under-count — the dangerous direction, since the verifier and
// the cleaner both trust the counts). The walk restores exact agreement
// with the reachable state. The caller invokes it once the block address
// space is fully serviceable (after the segment-cache directory is
// rebuilt), since the walk may demand-fetch migrated metadata.
func (fs *FS) RecomputeLiveBytes(p *sim.Proc) error {
	var inums []uint32
	if err := fs.Walk(p, "/", func(path string, fi FileInfo) error {
		inums = append(inums, fi.Inum)
		return nil
	}); err != nil {
		return err
	}
	liveDisk := make([]uint32, fs.amap.DiskSegs())
	liveTseg := make([]uint32, len(fs.tseg))
	account := func(a addr.BlockNo, n uint32) {
		seg := fs.amap.SegOf(a)
		if fs.amap.IsDiskSeg(seg) {
			liveDisk[seg] += n
		} else if idx, ok := fs.amap.TertIndex(seg); ok {
			liveTseg[idx] += n
		}
	}
	for _, inum := range inums {
		refs, err := fs.FileBlockRefs(p, inum)
		if err != nil {
			return fmt.Errorf("lfs: recomputing live bytes: inode %d: %w", inum, err)
		}
		for _, ref := range refs {
			account(ref.Addr, BlockSize)
		}
		if e := fs.Imap(inum); e.Addr != addr.NilBlock {
			account(e.Addr, InodeSize)
		}
	}
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	for s := range fs.seguse {
		su := &fs.seguse[s]
		if s < int(fs.sb.ReservedSegs) || su.Flags&SegCached != 0 {
			continue
		}
		su.LiveBytes = liveDisk[s]
	}
	for i := range fs.tseg {
		su := &fs.tseg[i]
		su.LiveBytes = liveTseg[i]
		if liveTseg[i] > 0 {
			su.Flags |= SegDirty
		}
	}
	return nil
}

// Sync writes all dirty data to the log without checkpointing the tables,
// then drains the device write cache: synced data must survive a crash
// (roll-forward replays it from the log).
func (fs *FS) Sync(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if err := fs.flushLocked(p, true); err != nil {
		return err
	}
	return fs.flushDevice(p)
}

// rollForward scans the threaded log from the checkpoint position and
// re-applies inode updates from intact partial segments (§3: "during
// recovery the system will roll-forward from the last checkpoint").
func (fs *FS) rollForward(p *sim.Proc, c checkpoint) error {
	seg, off := c.CurSeg, int(c.CurOff)
	segBuf := make([]byte, BlockSize)
	stop := ""
	for stop == "" {
		if off+2 > fs.amap.SegBlocks() {
			// Segment exhausted at checkpoint time; recovery state
			// already points at its end — nothing was written after.
			stop = "segment exhausted at checkpoint"
			break
		}
		base := fs.amap.BlockOf(seg, off)
		if err := fs.dev.ReadBlocks(p, base, segBuf); err != nil {
			return err
		}
		sum, err := DecodeSummary(segBuf)
		// Partial segments written after checkpoint N carry serial N+1
		// (the epoch advances as the checkpoint completes); anything
		// else is stale data from an earlier life of the segment.
		switch {
		case err != nil:
			stop = "no valid summary (end of log or torn summary block)"
		case sum.Serial != c.Serial+1:
			stop = fmt.Sprintf("stale summary (serial %d, wanted %d)", sum.Serial, c.Serial+1)
		case sum.NBlocks < 1 || off+int(sum.NBlocks) > fs.amap.SegBlocks():
			stop = fmt.Sprintf("bad partial-segment length %d", sum.NBlocks)
		}
		if stop != "" {
			break
		}
		// Verify the data checksum before applying.
		body := make([]byte, (int(sum.NBlocks)-1)*BlockSize)
		if len(body) > 0 {
			if err := fs.dev.ReadBlocks(p, base+1, body); err != nil {
				return err
			}
			if crc32Sum(body) != sum.DataSum {
				stop = "data checksum mismatch (torn write)"
				break
			}
		}
		fs.recovery.PsegsReplayed++
		fs.recovery.BlocksReplayed += int(sum.NBlocks)
		fs.applyPsegment(seg, off, sum, body)
		off += int(sum.NBlocks)
		if sum.Next != seg {
			seg, off = sum.Next, 0
		}
	}
	fs.curSeg, fs.curOff = seg, off
	fs.seguse[seg].Flags |= SegActive
	fs.recovery.StopSeg = seg
	fs.recovery.StopOff = off
	fs.recovery.StopReason = stop
	return nil
}

// applyPsegment updates the inode map and segment usage from one recovered
// partial segment.
func (fs *FS) applyPsegment(seg addr.SegNo, off int, sum *Summary, body []byte) {
	su := &fs.seguse[seg]
	su.Flags |= SegDirty
	su.Flags &^= SegActive
	su.LiveBytes += uint32(int(sum.NBlocks) * BlockSize)
	su.LastMod = sum.Create
	base := fs.amap.BlockOf(seg, off)
	for _, ia := range sum.InoAddrs {
		idx := int(ia-base) - 1 // block index within body
		if idx < 0 || (idx+1)*BlockSize > len(body) {
			continue
		}
		blk := body[idx*BlockSize : (idx+1)*BlockSize]
		for slot := 0; slot < InodesPerBlock; slot++ {
			var ino Inode
			ino.decode(blk[slot*InodeSize:])
			if ino.Inum == 0 || int(ino.Inum) >= len(fs.imap) {
				continue
			}
			e := &fs.imap[ino.Inum]
			// Accept the same or a newer version: files created or
			// reallocated after the checkpoint carry versions the
			// checkpointed map has not seen.
			if ino.Version >= e.Version {
				e.Addr = ia
				e.Slot = uint32(slot)
				e.Version = ino.Version
				if ino.Inum >= fs.nextInum {
					fs.nextInum = ino.Inum + 1
				}
				fs.recovery.InodesRecovered++
			}
		}
	}
}

// allocSegmentLocked picks the next clean segment for the log, triggering
// an emergency clean if none is available.
func (fs *FS) allocSegmentLocked(p *sim.Proc) (addr.SegNo, error) {
	for attempt := 0; attempt < 2; attempt++ {
		n := addr.SegNo(fs.amap.DiskSegs())
		for i := addr.SegNo(1); i <= n; i++ {
			s := (fs.curSeg + i) % n
			if fs.seguse[s].Flags == 0 {
				return s, nil
			}
		}
		if attempt == 0 && fs.EmergencyClean != nil && fs.EmergencyClean(p) {
			continue
		}
		break
	}
	return 0, ErrNoSpace
}

// AllocCacheSegmentLocked-style API for HighLight's segment cache: claim a
// clean disk segment as a cache line for tertiary segment index tag.
func (fs *FS) AllocCacheSegment(p *sim.Proc, tag uint32, staging bool) (addr.SegNo, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if fs.cacheInUse >= int(fs.sb.CacheSegs) {
		return 0, ErrNoSpace
	}
	lo, hi := addr.SegNo(fs.opts.CacheSegLo), addr.SegNo(fs.opts.CacheSegHi)
	if hi == 0 {
		hi = addr.SegNo(fs.amap.DiskSegs())
	}
	// Allocate cache lines from the top of the eligible range downwards:
	// the cache split occupies the far end of the disk, away from the
	// log's fresh segments (so staging traffic pays real seeks against
	// the migrator's gather reads — the disk-arm contention of Table 6).
	for s := hi - 1; s+1 > lo; s-- {
		if fs.seguse[s].Flags == 0 {
			su := &fs.seguse[s]
			su.Flags = SegCached
			if staging {
				su.Flags |= SegStaging
			}
			su.CacheTag = tag
			su.LastMod = fs.now()
			fs.nclean--
			fs.cacheInUse++
			return s, nil
		}
	}
	return 0, ErrNoSpace
}

// ReleaseCacheSegment returns a cache line to the clean pool.
func (fs *FS) ReleaseCacheSegment(p *sim.Proc, s addr.SegNo) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	su := &fs.seguse[s]
	if su.Flags&SegCached == 0 {
		panic("lfs: releasing non-cache segment")
	}
	su.Flags = 0
	su.CacheTag = 0
	su.LiveBytes = 0
	fs.nclean++
	fs.cacheInUse--
}

// NilCacheTag marks a cache-reserved segment not currently bound to any
// tertiary segment.
const NilCacheTag = ^uint32(0)

// SetCacheBinding records which tertiary segment a cache-line disk segment
// holds (NilCacheTag for an unbound pool line). It is called by the
// service process, which must never take the file system lock (a demand
// fetch runs while the faulting reader holds it); the update is a single
// non-blocking store, so the cooperative scheduler makes it atomic.
func (fs *FS) SetCacheBinding(s addr.SegNo, tag uint32, staging bool) {
	su := &fs.seguse[s]
	if su.Flags&SegCached == 0 {
		panic("lfs: cache binding on non-cache segment")
	}
	su.CacheTag = tag
	if staging {
		su.Flags |= SegStaging
	} else {
		su.Flags &^= SegStaging
	}
	su.LastMod = fs.now()
}

// CacheSegsInUse reports how many disk segments hold cached tertiary lines.
func (fs *FS) CacheSegsInUse() int { return fs.cacheInUse }

// MaxCacheSegs reports the static cache limit chosen at format time.
func (fs *FS) MaxCacheSegs() int { return int(fs.sb.CacheSegs) }

// SegUsage returns a copy of a disk segment's usage entry.
func (fs *FS) SegUsage(s addr.SegNo) Seguse { return fs.seguse[s] }

// TsegUsage returns a copy of a tertiary segment's usage entry (by dense
// tertiary index).
func (fs *FS) TsegUsage(idx int) Seguse { return fs.tseg[idx] }

// SetTsegAvail records the bytes of storage available in a tertiary
// segment (compression bookkeeping, §6.4).
func (fs *FS) SetTsegAvail(idx int, avail uint32) { fs.tseg[idx].Avail = avail }

// MarkTsegWritten marks a tertiary segment as holding data (called when a
// staging segment has been copied out).
func (fs *FS) MarkTsegWritten(idx int) {
	fs.tseg[idx].Flags |= SegDirty
	fs.tseg[idx].LastMod = fs.now()
}

// MarkTsegNoStore marks a tertiary segment as having no storage behind it
// (the tail of a volume that returned end-of-medium, §6.3).
func (fs *FS) MarkTsegNoStore(idx int) {
	fs.tseg[idx].Flags |= SegNoStore
	fs.tseg[idx].Avail = 0
}

// ResetTseg returns a tertiary segment to the never-used state (the
// tertiary cleaner erased its medium).
func (fs *FS) ResetTseg(idx int) {
	fs.tseg[idx] = Seguse{}
}

// MarkTsegPinned flags a tertiary segment as HSM-pinned. The flag lives
// in the checkpointed tsegfile, so pins ride the same durability path as
// every other segment state and survive crash recovery.
func (fs *FS) MarkTsegPinned(idx int) {
	fs.tseg[idx].Flags |= SegPinned
}

// ClearTsegPinned drops the HSM pin flag from a tertiary segment.
func (fs *FS) ClearTsegPinned(idx int) {
	fs.tseg[idx].Flags &^= SegPinned
}

// TsegPinned reports whether a tertiary segment carries the HSM pin flag.
func (fs *FS) TsegPinned(idx int) bool {
	return fs.tseg[idx].Flags&SegPinned != 0
}

// RestoreTsegUsage reconstructs a tertiary segment's usage entry during
// crash recovery from the checksum-valid prefix of its recovered staging
// image: the in-memory accounting done by Migratev (live bytes plus
// dirty flag) is durable only at the next checkpoint, so after a
// mid-migration crash the checkpointed entry may undercount data that
// roll-forward made reachable. liveBytes is an upper bound (whole valid
// psegs), which only ever over-counts — the safe direction for both the
// verifier and the cleaner.
func (fs *FS) RestoreTsegUsage(idx int, liveBytes uint32) {
	su := &fs.tseg[idx]
	su.Flags |= SegDirty
	if su.LiveBytes < liveBytes {
		su.LiveBytes = liveBytes
	}
	su.LastMod = fs.now()
}

// TsegCount reports the tertiary segment table size.
func (fs *FS) TsegCount() int { return len(fs.tseg) }

// ReservedSegs reports the number of boot-area segments.
func (fs *FS) ReservedSegs() int { return int(fs.sb.ReservedSegs) }

// Imap returns a copy of an inode-map entry.
func (fs *FS) Imap(inum uint32) ImapEntry { return fs.imap[inum] }

// MaxInodes reports the inode map capacity.
func (fs *FS) MaxInodes() int { return len(fs.imap) }

// Usage summarizes storage occupancy for df-style reporting.
type Usage struct {
	DiskSegs     int // total disk segments
	ReservedSegs int // boot area (superblock + checkpoint tables)
	CleanSegs    int // allocatable
	DirtySegs    int // hold log data
	CacheSegs    int // reserved as tertiary cache lines
	NoStoreSegs  int // retired / no storage behind them
	LiveBytes    int64
	TertSegsUsed int
	TertLive     int64
	InodesUsed   int
	InodesMax    int
}

// Usage reports current occupancy (no I/O; reads the in-memory tables).
func (fs *FS) Usage() Usage {
	u := Usage{
		DiskSegs:     fs.amap.DiskSegs(),
		ReservedSegs: int(fs.sb.ReservedSegs),
		InodesMax:    len(fs.imap),
	}
	for i := range fs.seguse {
		su := &fs.seguse[i]
		switch {
		case su.Flags&SegCached != 0:
			u.CacheSegs++
		case su.Flags&SegNoStore != 0:
			u.NoStoreSegs++
		case su.Flags&(SegDirty|SegActive) != 0:
			u.DirtySegs++
			u.LiveBytes += int64(su.LiveBytes)
		default:
			u.CleanSegs++
		}
	}
	// The boot area is flagged no-store; report it separately.
	u.NoStoreSegs -= u.ReservedSegs
	for i := range fs.tseg {
		if fs.tseg[i].Flags&SegDirty != 0 {
			u.TertSegsUsed++
			u.TertLive += int64(fs.tseg[i].LiveBytes)
		}
	}
	for i := FirstInum; i < len(fs.imap); i++ {
		if fs.imap[i].Addr != addr.NilBlock {
			u.InodesUsed++
		}
	}
	return u
}

// FlushCaches drops the clean contents of the buffer and inode caches
// after writing out dirty state. Benchmarks use it to force cold reads.
func (fs *FS) FlushCaches(p *sim.Proc) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if err := fs.flushLocked(p, true); err != nil {
		return err
	}
	if err := fs.flushDevice(p); err != nil {
		return err
	}
	fs.bufs = make(map[bufKey]*buf)
	fs.lruHead, fs.lruTail = nil, nil
	fs.bufBytes = 0
	fs.inodes = make(map[uint32]*Inode)
	fs.lastLbn = make(map[uint32]int32)
	return nil
}
