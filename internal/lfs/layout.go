// Package lfs implements a user-level 4.4BSD-style log-structured file
// system (§3 of the HighLight paper) over a timed block device.
//
// All data live in a segmented log: the device is divided into large
// segments written sequentially; each segment holds one or more partial
// segments, each an atomic log append headed by a summary block (Table 1).
// Two auxiliary structures — the inode map and the segment usage table —
// track the current location of every inode and the state of every segment.
// A user-level cleaner reclaims space by copying live data from dirty
// segments to the tail of the log.
//
// Deviations from 4.4BSD LFS (documented in DESIGN.md): the ifile tables
// are checkpointed into a reserved area at the head of the disk rather than
// written through the log (this removes the self-reference between the
// segment usage table and its own log writes), and directory blocks use a
// simple packed record format rather than BSD dirents. Like HighLight, the
// partial-segment summary occupies a full 4 KB block and block pointers
// address 4 KB units.
package lfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/addr"
	"repro/internal/dev"
)

// BlockSize is the file system block size in bytes.
const BlockSize = dev.BlockSize

// Fundamental layout constants.
const (
	superMagic   = 0x4c465321 // "LFS!"
	summaryMagic = 0x50534547 // "PSEG"

	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = BlockSize / 4

	// InodeSize is the on-media inode size; InodesPerBlock inodes pack
	// into one block.
	InodeSize      = 128
	InodesPerBlock = BlockSize / InodeSize

	// Reserved inode numbers.
	IfileInum = 1 // the ifile (segment usage + inode map tables)
	TsegInum  = 2 // the tertiary segment summary file (HighLight)
	RootInum  = 3 // the root directory
	FirstInum = 4 // first allocatable inode

	// SeguseSize is the on-media size of one segment-usage entry;
	// ImapSize of one inode-map entry.
	SeguseSize = 32
	ImapSize   = 32
)

// Meta logical block numbers (negative lbns name a file's indirect blocks,
// in the 4.4BSD style).
const (
	// LbnSingle is the single indirect block, covering lbns
	// [NDirect, NDirect+PtrsPerBlock).
	LbnSingle int32 = -1
	// LbnDoubleRoot is the double-indirect root block.
	LbnDoubleRoot int32 = -2
	// Double-indirect children use LbnDoubleChild(i) = -(3+i).
)

// LbnDoubleChild returns the meta lbn of child i of the double-indirect
// root, covering lbns [NDirect+PtrsPerBlock+i*PtrsPerBlock, ...+PtrsPerBlock).
func LbnDoubleChild(i int) int32 { return -(3 + int32(i)) }

// MaxFileBlocks is the largest file size in blocks (direct + single +
// double indirect).
const MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

// FileType distinguishes regular files and directories.
type FileType uint8

const (
	TypeFree FileType = iota
	TypeFile
	TypeDir
)

// Segment usage flags (the ifile's per-segment state, extended by
// HighLight per §6.4).
const (
	SegDirty   uint32 = 1 << 0 // contains live data
	SegActive  uint32 = 1 << 1 // current tail of the log
	SegCached  uint32 = 1 << 2 // holds a cached copy of a tertiary segment
	SegStaging uint32 = 1 << 3 // cached line being assembled / not yet copied out
	SegNoStore uint32 = 1 << 4 // removed from service (no storage behind it)
	SegPinned  uint32 = 1 << 5 // HSM pin: evictor/cleaner/migrator must not touch it
)

// Seguse is one segment-usage entry. For disk segments it describes log
// state; HighLight keeps tertiary segment summaries "in the same format as
// the secondary segment summaries found in the ifile" (§6.4) in the
// companion tsegfile.
type Seguse struct {
	Flags     uint32
	LiveBytes uint32
	LastMod   int64  // virtual time of last write, ns
	CacheTag  uint32 // tertiary segment index cached here (SegCached)
	Avail     uint32 // bytes of storage available (compression bookkeeping)
}

func (s *Seguse) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], s.Flags)
	binary.LittleEndian.PutUint32(b[4:], s.LiveBytes)
	binary.LittleEndian.PutUint64(b[8:], uint64(s.LastMod))
	binary.LittleEndian.PutUint32(b[16:], s.CacheTag)
	binary.LittleEndian.PutUint32(b[20:], s.Avail)
}

func (s *Seguse) decode(b []byte) {
	s.Flags = binary.LittleEndian.Uint32(b[0:])
	s.LiveBytes = binary.LittleEndian.Uint32(b[4:])
	s.LastMod = int64(binary.LittleEndian.Uint64(b[8:]))
	s.CacheTag = binary.LittleEndian.Uint32(b[16:])
	s.Avail = binary.LittleEndian.Uint32(b[20:])
}

// ImapEntry is one inode-map entry: the current address of the inode plus
// bookkeeping the migrator reads without touching the file (access time
// lives here so reads do not dirty inodes, as in 4.4BSD LFS).
type ImapEntry struct {
	Addr    addr.BlockNo // block holding the inode (NilBlock if free)
	Slot    uint32       // index within the inode block
	Version uint32       // incremented when the inum is reused
	Atime   int64        // last access, virtual ns
}

func (e *ImapEntry) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], uint32(e.Addr))
	binary.LittleEndian.PutUint32(b[4:], e.Slot)
	binary.LittleEndian.PutUint32(b[8:], e.Version)
	binary.LittleEndian.PutUint64(b[12:], uint64(e.Atime))
}

func (e *ImapEntry) decode(b []byte) {
	e.Addr = addr.BlockNo(binary.LittleEndian.Uint32(b[0:]))
	e.Slot = binary.LittleEndian.Uint32(b[4:])
	e.Version = binary.LittleEndian.Uint32(b[8:])
	e.Atime = int64(binary.LittleEndian.Uint64(b[12:]))
}

// Inode is the in-memory and (via encode/decode) on-media inode.
type Inode struct {
	Inum    uint32
	Version uint32
	Type    FileType
	Nlink   uint32
	Size    uint64
	Mtime   int64
	Ctime   int64
	Direct  [NDirect]addr.BlockNo
	Single  addr.BlockNo // single indirect
	Double  addr.BlockNo // double indirect root
}

func (ino *Inode) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], ino.Inum)
	binary.LittleEndian.PutUint32(b[4:], ino.Version)
	b[8] = byte(ino.Type)
	binary.LittleEndian.PutUint32(b[12:], ino.Nlink)
	binary.LittleEndian.PutUint64(b[16:], ino.Size)
	binary.LittleEndian.PutUint64(b[24:], uint64(ino.Mtime))
	binary.LittleEndian.PutUint64(b[32:], uint64(ino.Ctime))
	off := 40
	for i := 0; i < NDirect; i++ {
		binary.LittleEndian.PutUint32(b[off:], uint32(ino.Direct[i]))
		off += 4
	}
	binary.LittleEndian.PutUint32(b[off:], uint32(ino.Single))
	binary.LittleEndian.PutUint32(b[off+4:], uint32(ino.Double))
}

// DecodeInode parses an on-media inode image (exported for the dump tool
// and the end-of-medium re-staging path).
func DecodeInode(ino *Inode, b []byte) { ino.decode(b) }

// EncodeInode serializes an inode to its on-media form.
func EncodeInode(ino *Inode, b []byte) { ino.encode(b) }

func (ino *Inode) decode(b []byte) {
	ino.Inum = binary.LittleEndian.Uint32(b[0:])
	ino.Version = binary.LittleEndian.Uint32(b[4:])
	ino.Type = FileType(b[8])
	ino.Nlink = binary.LittleEndian.Uint32(b[12:])
	ino.Size = binary.LittleEndian.Uint64(b[16:])
	ino.Mtime = int64(binary.LittleEndian.Uint64(b[24:]))
	ino.Ctime = int64(binary.LittleEndian.Uint64(b[32:]))
	off := 40
	for i := 0; i < NDirect; i++ {
		ino.Direct[i] = addr.BlockNo(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	ino.Single = addr.BlockNo(binary.LittleEndian.Uint32(b[off:]))
	ino.Double = addr.BlockNo(binary.LittleEndian.Uint32(b[off+4:]))
}

// Finfo describes the blocks of one file within a partial segment
// (Table 1: "file block description information").
type Finfo struct {
	Inum    uint32
	Version uint32
	Lbns    []int32 // logical block numbers, negative for indirect blocks
}

// Summary is a partial-segment summary block (Table 1). It heads every
// partial segment, cataloguing its contents so the cleaner and roll-forward
// recovery can interpret the log.
type Summary struct {
	SumSum   uint32 // checksum of the summary block
	DataSum  uint32 // checksum of the partial segment's data
	Next     addr.SegNo
	Create   int64  // creation time stamp (virtual ns)
	Serial   uint64 // checkpoint epoch that wrote this partial segment
	Flags    uint16
	NBlocks  uint16 // total blocks in this partial segment incl. summary
	Finfos   []Finfo
	InoAddrs []addr.BlockNo // disk addresses of inode blocks
}

// Summary flags.
const (
	// SumCheckpoint marks the partial segment written by a checkpoint.
	SumCheckpoint uint16 = 1 << 0
	// SumStaging marks a staging (to-be-migrated) segment image.
	SumStaging uint16 = 1 << 1
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// crc32Sum is the checksum used for summary and data verification.
func crc32Sum(b []byte) uint32 { return crc32.Checksum(b, crcTab) }

// EncodeSummary serializes s into a BlockSize buffer, computing SumSum.
// DataSum must already be set.
func EncodeSummary(s *Summary, b []byte) error {
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[0:], summaryMagic)
	// b[4:8] SumSum filled last; b[8:12] DataSum.
	binary.LittleEndian.PutUint32(b[8:], s.DataSum)
	binary.LittleEndian.PutUint32(b[12:], uint32(s.Next))
	binary.LittleEndian.PutUint64(b[16:], uint64(s.Create))
	binary.LittleEndian.PutUint16(b[24:], uint16(len(s.Finfos)))
	binary.LittleEndian.PutUint16(b[26:], uint16(len(s.InoAddrs)))
	binary.LittleEndian.PutUint16(b[28:], s.Flags)
	binary.LittleEndian.PutUint16(b[30:], s.NBlocks)
	binary.LittleEndian.PutUint64(b[32:], s.Serial)
	off := 40
	need := func(n int) error {
		if off+n > len(b) {
			return fmt.Errorf("lfs: summary overflow (%d finfos, %d inode blocks)", len(s.Finfos), len(s.InoAddrs))
		}
		return nil
	}
	for _, ia := range s.InoAddrs {
		if err := need(4); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(b[off:], uint32(ia))
		off += 4
	}
	for i := range s.Finfos {
		f := &s.Finfos[i]
		if err := need(12 + 4*len(f.Lbns)); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(b[off:], f.Inum)
		binary.LittleEndian.PutUint32(b[off+4:], f.Version)
		binary.LittleEndian.PutUint32(b[off+8:], uint32(len(f.Lbns)))
		off += 12
		for _, l := range f.Lbns {
			binary.LittleEndian.PutUint32(b[off:], uint32(l))
			off += 4
		}
	}
	binary.LittleEndian.PutUint32(b[4:], 0)
	s.SumSum = crc32.Checksum(b, crcTab)
	binary.LittleEndian.PutUint32(b[4:], s.SumSum)
	return nil
}

// DecodeSummary parses a summary block, verifying magic and checksum.
func DecodeSummary(b []byte) (*Summary, error) {
	if binary.LittleEndian.Uint32(b[0:]) != summaryMagic {
		return nil, fmt.Errorf("lfs: bad summary magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	s := &Summary{}
	s.SumSum = binary.LittleEndian.Uint32(b[4:])
	tmp := make([]byte, len(b))
	copy(tmp, b)
	binary.LittleEndian.PutUint32(tmp[4:], 0)
	if got := crc32.Checksum(tmp, crcTab); got != s.SumSum {
		return nil, fmt.Errorf("lfs: summary checksum mismatch (got %#x, want %#x)", got, s.SumSum)
	}
	s.DataSum = binary.LittleEndian.Uint32(b[8:])
	s.Next = addr.SegNo(binary.LittleEndian.Uint32(b[12:]))
	s.Create = int64(binary.LittleEndian.Uint64(b[16:]))
	nfinfo := int(binary.LittleEndian.Uint16(b[24:]))
	ninos := int(binary.LittleEndian.Uint16(b[26:]))
	s.Flags = binary.LittleEndian.Uint16(b[28:])
	s.NBlocks = binary.LittleEndian.Uint16(b[30:])
	s.Serial = binary.LittleEndian.Uint64(b[32:])
	off := 40
	for i := 0; i < ninos; i++ {
		s.InoAddrs = append(s.InoAddrs, addr.BlockNo(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	for i := 0; i < nfinfo; i++ {
		var f Finfo
		f.Inum = binary.LittleEndian.Uint32(b[off:])
		f.Version = binary.LittleEndian.Uint32(b[off+4:])
		n := int(binary.LittleEndian.Uint32(b[off+8:]))
		off += 12
		for j := 0; j < n; j++ {
			f.Lbns = append(f.Lbns, int32(binary.LittleEndian.Uint32(b[off:])))
			off += 4
		}
		s.Finfos = append(s.Finfos, f)
	}
	return s, nil
}

// Superblock describes the file system geometry; it lives in block 0 and is
// written once at format time.
type Superblock struct {
	Magic        uint32
	SegBlocks    uint32
	DiskSegs     uint32
	ReservedSegs uint32 // boot area: superblock, checkpoints, table regions
	MaxInodes    uint32
	CacheSegs    uint32 // max segments usable as tertiary cache
	TableBlocks  uint32 // size of one checkpoint table region, in blocks
	TertDevs     []addr.Geom
}

func (sb *Superblock) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], superMagic)
	binary.LittleEndian.PutUint32(b[4:], sb.SegBlocks)
	binary.LittleEndian.PutUint32(b[8:], sb.DiskSegs)
	binary.LittleEndian.PutUint32(b[12:], sb.ReservedSegs)
	binary.LittleEndian.PutUint32(b[16:], sb.MaxInodes)
	binary.LittleEndian.PutUint32(b[20:], sb.CacheSegs)
	binary.LittleEndian.PutUint32(b[24:], sb.TableBlocks)
	binary.LittleEndian.PutUint32(b[28:], uint32(len(sb.TertDevs)))
	off := 32
	for _, g := range sb.TertDevs {
		binary.LittleEndian.PutUint32(b[off:], uint32(g.Vols))
		binary.LittleEndian.PutUint32(b[off+4:], uint32(g.SegsPerVol))
		off += 8
	}
}

func (sb *Superblock) decode(b []byte) error {
	if binary.LittleEndian.Uint32(b[0:]) != superMagic {
		return fmt.Errorf("lfs: bad superblock magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	sb.Magic = superMagic
	sb.SegBlocks = binary.LittleEndian.Uint32(b[4:])
	sb.DiskSegs = binary.LittleEndian.Uint32(b[8:])
	sb.ReservedSegs = binary.LittleEndian.Uint32(b[12:])
	sb.MaxInodes = binary.LittleEndian.Uint32(b[16:])
	sb.CacheSegs = binary.LittleEndian.Uint32(b[20:])
	sb.TableBlocks = binary.LittleEndian.Uint32(b[24:])
	n := int(binary.LittleEndian.Uint32(b[28:]))
	off := 32
	sb.TertDevs = nil
	for i := 0; i < n; i++ {
		sb.TertDevs = append(sb.TertDevs, addr.Geom{
			Vols:       int(binary.LittleEndian.Uint32(b[off:])),
			SegsPerVol: int(binary.LittleEndian.Uint32(b[off+4:])),
		})
		off += 8
	}
	return nil
}

// checkpoint is a checkpoint header. Two alternate (blocks 1 and 2); the
// one with the higher serial and valid checksum wins at mount time.
type checkpoint struct {
	Serial   uint64
	Time     int64
	CurSeg   addr.SegNo // log tail segment at checkpoint time
	CurOff   uint32     // next free block offset within CurSeg
	NextInum uint32     // next never-used inode number
	Region   uint32     // which table region (0 or 1) holds the tables
}

func (c *checkpoint) encode(b []byte) {
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[0:], c.Serial)
	binary.LittleEndian.PutUint64(b[8:], uint64(c.Time))
	binary.LittleEndian.PutUint32(b[16:], uint32(c.CurSeg))
	binary.LittleEndian.PutUint32(b[20:], c.CurOff)
	binary.LittleEndian.PutUint32(b[24:], c.NextInum)
	binary.LittleEndian.PutUint32(b[28:], c.Region)
	binary.LittleEndian.PutUint32(b[36:], 0)
	sum := crc32.Checksum(b[:32], crcTab)
	binary.LittleEndian.PutUint32(b[36:], sum)
}

func (c *checkpoint) decode(b []byte) bool {
	sum := binary.LittleEndian.Uint32(b[36:])
	if crc32.Checksum(b[:32], crcTab) != sum || sum == 0 {
		return false
	}
	c.Serial = binary.LittleEndian.Uint64(b[0:])
	c.Time = int64(binary.LittleEndian.Uint64(b[8:]))
	c.CurSeg = addr.SegNo(binary.LittleEndian.Uint32(b[16:]))
	c.CurOff = binary.LittleEndian.Uint32(b[20:])
	c.NextInum = binary.LittleEndian.Uint32(b[24:])
	c.Region = binary.LittleEndian.Uint32(b[28:])
	return true
}

// Directory entry record format: [inum u32][type u8][nameLen u8][name]...
// A zero inum terminates a block's records. Entries do not span blocks.
type Dirent struct {
	Inum uint32
	Type FileType
	Name string
}

const direntFixed = 6

// encodeDirents packs entries into whole blocks, returning the buffer
// (a multiple of BlockSize).
func encodeDirents(ents []Dirent) []byte {
	var out []byte
	blk := make([]byte, 0, BlockSize)
	flush := func() {
		b := make([]byte, BlockSize)
		copy(b, blk)
		out = append(out, b...)
		blk = blk[:0]
	}
	for _, e := range ents {
		rec := direntFixed + len(e.Name)
		if rec > BlockSize {
			panic("lfs: directory name too long")
		}
		// +direntFixed: leave room for the zero-inum terminator unless exactly full.
		if len(blk)+rec > BlockSize {
			flush()
		}
		var hdr [direntFixed]byte
		binary.LittleEndian.PutUint32(hdr[0:], e.Inum)
		hdr[4] = byte(e.Type)
		hdr[5] = byte(len(e.Name))
		blk = append(blk, hdr[:]...)
		blk = append(blk, e.Name...)
	}
	if len(blk) > 0 || len(out) == 0 {
		flush()
	}
	return out
}

// decodeDirents parses the packed record format.
func decodeDirents(data []byte) []Dirent {
	var ents []Dirent
	for blk := 0; blk*BlockSize < len(data); blk++ {
		b := data[blk*BlockSize:]
		if len(b) > BlockSize {
			b = b[:BlockSize]
		}
		off := 0
		for off+direntFixed <= len(b) {
			inum := binary.LittleEndian.Uint32(b[off:])
			if inum == 0 {
				break
			}
			typ := FileType(b[off+4])
			nl := int(b[off+5])
			if off+direntFixed+nl > len(b) {
				break
			}
			ents = append(ents, Dirent{
				Inum: inum,
				Type: typ,
				Name: string(b[off+direntFixed : off+direntFixed+nl]),
			})
			off += direntFixed + nl
		}
	}
	return ents
}
