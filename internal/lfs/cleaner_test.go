package lfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

func TestCleanerReclaimsDeadSegments(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		f := writeFile(t, p, fs, "/churn", pattern(1, 20*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Overwrite repeatedly to create dead segments.
		for i := 0; i < 8; i++ {
			if _, err := f.WriteAt(p, pattern(byte(i+2), 20*BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			if err := fs.Sync(p); err != nil {
				t.Fatal(err)
			}
		}
		before := fs.CleanSegs()
		segs := fs.SelectCleanable(6)
		if len(segs) == 0 {
			t.Fatal("no cleanable segments after churn")
		}
		if _, err := fs.CleanSegments(p, segs); err != nil {
			t.Fatal(err)
		}
		if fs.CleanSegs() <= before {
			t.Fatalf("cleaning did not increase clean segments: %d -> %d", before, fs.CleanSegs())
		}
		// Data intact after cleaning.
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, pattern(9, 20*BlockSize)) {
			t.Fatal("cleaning corrupted live data")
		}
	})
}

func TestCleanerPreservesMultipleFiles(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		files := map[string][]byte{}
		for i := 0; i < 10; i++ {
			name := "/f" + itoa(i)
			data := pattern(byte(i), 3*BlockSize+i*17)
			writeFile(t, p, fs, name, data)
			files[name] = data
		}
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Delete every other file, clean everything cleanable.
		for i := 0; i < 10; i += 2 {
			if err := fs.Remove(p, "/f"+itoa(i)); err != nil {
				t.Fatal(err)
			}
			delete(files, "/f"+itoa(i))
		}
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.CleanSegments(p, fs.SelectCleanable(0)); err != nil {
			t.Fatal(err)
		}
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		for name, want := range files {
			f, err := fs.Open(p, name)
			if err != nil {
				t.Fatalf("open %s after clean: %v", name, err)
			}
			if got := readAll(t, p, f); !bytes.Equal(got, want) {
				t.Fatalf("%s corrupted by cleaner", name)
			}
		}
	})
}

func TestEmergencyCleanAvoidsNoSpace(t *testing.T) {
	// Tiny FS: keep overwriting a file larger than half the disk; without
	// cleaning this runs out of segments.
	e := newEnv(t, 32, 24, Options{MaxInodes: 64})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		fs.AttachCleaner(2, 4) // wires EmergencyClean
		f := writeFile(t, p, fs, "/f", pattern(1, 60*BlockSize))
		for i := 0; i < 10; i++ {
			if _, err := f.WriteAt(p, pattern(byte(i), 60*BlockSize), 0); err != nil {
				t.Fatalf("overwrite %d: %v", i, err)
			}
			if err := fs.Sync(p); err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
		}
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, pattern(9, 60*BlockSize)) {
			t.Fatal("data corrupted under space pressure")
		}
		if fs.Stats().SegsCleaned == 0 {
			t.Fatal("emergency cleaner never ran")
		}
	})
}

func TestNoSpaceWithoutCleaner(t *testing.T) {
	e := newEnv(t, 32, 8, Options{MaxInodes: 64})
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		var lastErr error
		for i := 0; i < 40 && lastErr == nil; i++ {
			_, lastErr = f.WriteAt(p, pattern(byte(i), 32*BlockSize), int64(i)*32*BlockSize)
			if lastErr == nil {
				lastErr = e.fs.Sync(p)
			}
		}
		if !errors.Is(lastErr, ErrNoSpace) {
			t.Fatalf("want ErrNoSpace, got %v", lastErr)
		}
	})
}

func TestCleanerDaemonKeepsCleanPool(t *testing.T) {
	e := newEnv(t, 32, 32, Options{MaxInodes: 64})
	daemon := e.fs.AttachCleaner(24, 28)
	e.k.GoDaemon("cleaner", daemon)
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/f", pattern(1, 40*BlockSize))
		for i := 0; i < 12; i++ {
			if _, err := f.WriteAt(p, pattern(byte(i), 40*BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			if err := e.fs.Sync(p); err != nil {
				t.Fatal(err)
			}
			p.Sleep(3e9) // give the daemon a chance
		}
	})
	if e.fs.Stats().SegsCleaned == 0 {
		t.Fatal("daemon never cleaned")
	}
	e.k.Stop()
}

func TestBmapvLiveness(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		f := writeFile(t, p, fs, "/f", pattern(1, 5*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		refs, err := fs.FileBlockRefs(p, f.Inum())
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 5 {
			t.Fatalf("got %d refs, want 5", len(refs))
		}
		live, err := fs.Bmapv(p, refs)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range live {
			if !l {
				t.Fatalf("fresh ref %d not live", i)
			}
		}
		// Overwrite block 2: its old ref dies.
		if _, err := f.WriteAt(p, pattern(9, BlockSize), 2*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		live, err = fs.Bmapv(p, refs)
		if err != nil {
			t.Fatal(err)
		}
		if live[2] {
			t.Fatal("overwritten block still reported live")
		}
		if !live[0] || !live[4] {
			t.Fatal("untouched blocks reported dead")
		}
		// Remove the file: everything dies.
		if err := fs.Remove(p, "/f"); err != nil {
			t.Fatal(err)
		}
		live, err = fs.Bmapv(p, refs)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range live {
			if l {
				t.Fatalf("ref %d live after unlink", i)
			}
		}
	})
}

func TestReadSegmentParsesLog(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		writeFile(t, p, fs, "/f", pattern(1, 6*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		seg := addr.SegNo(fs.ReservedSegs())
		sc, err := fs.ReadSegment(p, seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Psegs) == 0 {
			t.Fatal("no partial segments parsed")
		}
		foundData, foundIno := false, false
		for _, r := range sc.Blocks {
			if r.Lbn >= 0 {
				foundData = true
			}
		}
		if len(sc.Inodes) > 0 {
			foundIno = true
		}
		if !foundData || !foundIno {
			t.Fatalf("segment parse incomplete: data=%v inodes=%v", foundData, foundIno)
		}
	})
}

func TestCleanActiveSegmentRejected(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		writeFile(t, p, e.fs, "/f", pattern(1, BlockSize))
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Find the active segment.
		var active addr.SegNo
		for s := e.fs.ReservedSegs(); s < e.fs.Map().DiskSegs(); s++ {
			if e.fs.SegUsage(addr.SegNo(s)).Flags&SegActive != 0 {
				active = addr.SegNo(s)
			}
		}
		if _, err := e.fs.CleanSegments(p, []addr.SegNo{active}); err == nil {
			t.Fatal("cleaning the active segment should fail")
		}
	})
}

// TestRandomizedModelCheck drives the FS with random operations mirrored
// against an in-memory model, then verifies every file byte-for-byte —
// through cache flushes, cleaning, and a remount.
func TestRandomizedModelCheck(t *testing.T) {
	e := newEnv(t, 32, 96, Options{MaxInodes: 256, BufferBytes: 1 << 20})
	rng := sim.NewRNG(2024)
	model := map[string][]byte{}
	names := []string{}
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		fs.AttachCleaner(4, 8)
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(100); {
			case r < 35 || len(names) == 0: // create
				if len(names) >= 40 {
					continue
				}
				name := "/m" + itoa(op)
				sz := rng.Intn(6*BlockSize) + 1
				data := make([]byte, sz)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				if _, err := fs.Create(p, name); err != nil {
					t.Fatal(err)
				}
				f, _ := fs.Open(p, name)
				if _, err := f.WriteAt(p, data, 0); err != nil {
					t.Fatal(err)
				}
				model[name] = data
				names = append(names, name)
			case r < 65: // overwrite a range
				name := names[rng.Intn(len(names))]
				cur := model[name]
				off := rng.Intn(len(cur) + BlockSize)
				n := rng.Intn(2*BlockSize) + 1
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				f, err := fs.Open(p, name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(p, data, int64(off)); err != nil {
					t.Fatal(err)
				}
				if off+n > len(cur) {
					grown := make([]byte, off+n)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], data)
				model[name] = cur
			case r < 80: // read + verify one file
				name := names[rng.Intn(len(names))]
				f, err := fs.Open(p, name)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]byte, len(model[name]))
				if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if !bytes.Equal(got, model[name]) {
					t.Fatalf("op %d: %s diverged from model", op, name)
				}
			case r < 90: // delete
				i := rng.Intn(len(names))
				name := names[i]
				if err := fs.Remove(p, name); err != nil {
					t.Fatal(err)
				}
				delete(model, name)
				names = append(names[:i], names[i+1:]...)
			case r < 95: // sync or flush caches
				if err := fs.FlushCaches(p); err != nil {
					t.Fatal(err)
				}
			default: // clean
				segs := fs.SelectCleanable(2)
				if len(segs) > 0 {
					if _, err := fs.CleanSegments(p, segs); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	// Remount and verify everything.
	e.run(t, func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{e.disk}, e.amap, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range model {
			f, err := fs2.Open(p, name)
			if err != nil {
				t.Fatalf("open %s after remount: %v", name, err)
			}
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s diverged after remount", name)
			}
		}
	})
}

// TestSelectCleanablePrefersEmptyAndOld verifies the cost-benefit ordering:
// an (almost) empty old segment ranks above a mostly-live young one.
func TestSelectCleanablePrefersEmptyAndOld(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		// Old, now-dead data.
		dead := writeFile(t, p, fs, "/dead", pattern(1, 30*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		_ = dead
		p.Sleep(time.Hour)
		// Fresh, live data in later segments.
		writeFile(t, p, fs, "/live", pattern(2, 30*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Kill the old data.
		if err := fs.Remove(p, "/dead"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		order := fs.SelectCleanable(0)
		if len(order) < 2 {
			t.Fatalf("expected several cleanable segments, got %d", len(order))
		}
		first := fs.SegUsage(order[0])
		last := fs.SegUsage(order[len(order)-1])
		if first.LiveBytes > last.LiveBytes {
			t.Fatalf("cost-benefit ordering wrong: first has %d live, last %d", first.LiveBytes, last.LiveBytes)
		}
	})
}
