package lfs

import (
	"io"

	"repro/internal/addr"
	"repro/internal/sim"
)

// readCluster is the maximum blocks coalesced into one device read (the
// paper's FFS/LFS read-clustering of 16 contiguous 4 KB blocks = 64 KB).
const readCluster = 16

// File is an open file handle.
type File struct {
	fs   *FS
	inum uint32
}

// FileInfo describes a file for Stat and ReadDir callers.
type FileInfo struct {
	Inum  uint32
	Type  FileType
	Size  uint64
	Mtime int64
	Atime int64
}

// Inum reports the file's inode number.
func (f *File) Inum() uint32 { return f.inum }

// Size reports the current file size in bytes.
func (f *File) Size(p *sim.Proc) (uint64, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	ino, err := f.fs.iget(p, f.inum)
	if err != nil {
		return 0, err
	}
	return ino.Size, nil
}

// ReadAt reads len(b) bytes at offset off, returning io.EOF at end of
// file. Reads of tertiary-resident blocks block while their segment is
// demand-fetched into the cache (transparently, via the device).
func (f *File) ReadAt(p *sim.Proc, b []byte, off int64) (int, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	return f.fs.readAtLocked(p, f.inum, b, off)
}

func (fs *FS) readAtLocked(p *sim.Proc, inum uint32, b []byte, off int64) (int, error) {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return 0, err
	}
	if off < 0 || uint64(off) >= ino.Size {
		return 0, io.EOF
	}
	n := len(b)
	eof := false
	if uint64(off)+uint64(n) > ino.Size {
		n = int(ino.Size - uint64(off))
		eof = true
	}
	if ino.Type != TypeDir {
		// BSD file systems do not update directory access times on
		// normal directory accesses (§5.3), which lets the migrator
		// walk the tree without perturbing its own policy inputs.
		fs.imap[inum].Atime = fs.now()
		if fs.OnAccess != nil {
			fs.OnAccess(inum, int32(off/BlockSize), int32((off+int64(n)-1)/BlockSize)+1, false)
		}
	}
	firstLbn := int32(off / BlockSize)
	reqEnd := int32((off+int64(n)-1)/BlockSize) + 1
	// Sequential detection, as in the BSD cluster-read code: read-ahead
	// beyond the requested range only when this request continues where
	// the previous one on this file left off (or starts the file).
	last, okLast := fs.lastLbn[inum]
	seq := firstLbn == 0 || (okLast && last == firstLbn-1)
	read := 0
	for read < n {
		lbn := int32((off + int64(read)) / BlockSize)
		blkOff := int((off + int64(read)) % BlockSize)
		want := BlockSize - blkOff
		if want > n-read {
			want = n - read
		}
		bf := fs.lookupBuf(inum, lbn)
		if bf == nil {
			if err := fs.fillBlocks(p, ino, lbn, reqEnd, seq); err != nil {
				return read, err
			}
			bf = fs.lookupBuf(inum, lbn)
			if bf == nil {
				panic("lfs: fillBlocks did not populate requested block")
			}
		}
		copy(b[read:read+want], bf.data[blkOff:blkOff+want])
		read += want
	}
	fs.lastLbn[inum] = reqEnd - 1
	fs.chargeCopy(p, read, fs.opts.UserCopyRate)
	if eof {
		return read, io.EOF
	}
	return read, nil
}

// fillBlocks reads block lbn into the cache, clustering up to readCluster
// blocks whose media addresses are contiguous (read clustering, §7).
// Extension covers the remaining requested range, plus read-ahead to a
// full cluster on sequentially accessed files; it consults only cached
// metadata, so a cluster never stalls on (or demand-fetches) an indirect
// block that later blocks would need.
func (fs *FS) fillBlocks(p *sim.Proc, ino *Inode, lbn, reqEnd int32, seq bool) error {
	start, err := fs.blockPtr(p, ino, lbn)
	if err != nil {
		return err
	}
	if start == addr.NilBlock {
		// A hole: materialize a zero block without device I/O.
		fs.insertBuf(ino.Inum, lbn, make([]byte, BlockSize), addr.NilBlock, false)
		return nil
	}
	fileEnd := int32(blocksFor(int(ino.Size)))
	limit := reqEnd - lbn
	if seq && limit < readCluster {
		limit = readCluster
	}
	if limit > readCluster {
		limit = readCluster
	}
	if lbn+limit > fileEnd {
		limit = fileEnd - lbn
	}
	count := int32(1)
	for count < limit {
		next := lbn + count
		if fs.lookupBuf(ino.Inum, next) != nil {
			break
		}
		a, ok := fs.blockPtrCached(ino, next)
		if !ok || a == addr.NilBlock || a != start+addr.BlockNo(count) {
			break
		}
		count++
	}
	data := make([]byte, int(count)*BlockSize)
	if err := fs.dev.ReadBlocks(p, start, data); err != nil {
		return err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += int64(len(data))
	for i := int32(0); i < count; i++ {
		blk := make([]byte, BlockSize)
		copy(blk, data[int(i)*BlockSize:])
		fs.insertBuf(ino.Inum, lbn+i, blk, start+addr.BlockNo(i), false)
	}
	return nil
}

// WriteAt writes len(b) bytes at offset off, extending the file as needed.
// Data are gathered in the buffer cache and appended to the log when a
// segment's worth accumulates (or at Sync/Checkpoint).
func (f *File) WriteAt(p *sim.Proc, b []byte, off int64) (int, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	return f.fs.writeAtLocked(p, f.inum, b, off)
}

func (fs *FS) writeAtLocked(p *sim.Proc, inum uint32, b []byte, off int64) (int, error) {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, ErrNotFound
	}
	if (uint64(off)+uint64(len(b))+BlockSize-1)/BlockSize > MaxFileBlocks {
		return 0, ErrFileTooBig
	}
	written := 0
	for written < len(b) {
		lbn := int32((off + int64(written)) / BlockSize)
		blkOff := int((off + int64(written)) % BlockSize)
		want := BlockSize - blkOff
		if want > len(b)-written {
			want = len(b) - written
		}
		var bf *buf
		if blkOff == 0 && want == BlockSize {
			// Full-block overwrite: no read needed.
			bf = fs.lookupBuf(inum, lbn)
			if bf == nil {
				a, err := fs.blockPtr(p, ino, lbn)
				if err != nil {
					return written, err
				}
				bf = fs.insertBuf(inum, lbn, make([]byte, BlockSize), a, false)
			}
		} else {
			bf = fs.lookupBuf(inum, lbn)
			if bf == nil {
				a, err := fs.blockPtr(p, ino, lbn)
				if err != nil {
					return written, err
				}
				if a == addr.NilBlock || uint64(lbn)*BlockSize >= ino.Size {
					bf = fs.insertBuf(inum, lbn, make([]byte, BlockSize), a, false)
				} else {
					bf, err = fs.getBlock(p, inum, lbn, a)
					if err != nil {
						return written, err
					}
				}
			}
		}
		copy(bf.data[blkOff:blkOff+want], b[written:written+want])
		fs.markDirty(bf)
		written += want
	}
	if uint64(off)+uint64(written) > ino.Size {
		ino.Size = uint64(off) + uint64(written)
	}
	ino.Mtime = fs.now()
	fs.markInodeDirty(ino)
	if fs.OnAccess != nil && ino.Type != TypeDir && written > 0 {
		fs.OnAccess(inum, int32(off/BlockSize), int32((off+int64(written)-1)/BlockSize)+1, true)
	}
	if fs.dirtyBytes >= fs.opts.WriteThreshold {
		if err := fs.flushLocked(p, false); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Truncate sets the file size, freeing blocks beyond it.
func (f *File) Truncate(p *sim.Proc, size uint64) error {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	ino, err := f.fs.iget(p, f.inum)
	if err != nil {
		return err
	}
	return f.fs.truncateLocked(p, ino, size)
}

// Stat describes the file.
func (f *File) Stat(p *sim.Proc) (FileInfo, error) {
	f.fs.lock.Acquire(p)
	defer f.fs.lock.Release(p)
	return f.fs.statLocked(p, f.inum)
}

func (fs *FS) statLocked(p *sim.Proc, inum uint32) (FileInfo, error) {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Inum:  inum,
		Type:  ino.Type,
		Size:  ino.Size,
		Mtime: ino.Mtime,
		Atime: fs.imap[inum].Atime,
	}, nil
}
