package lfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/sim"
)

// testEnv bundles a kernel, disk and mounted FS for tests.
type testEnv struct {
	k    *sim.Kernel
	disk *dev.Disk
	amap *addr.Map
	fs   *FS
}

// newEnv formats a small LFS: segBlocks-block segments, diskSegs segments.
func newEnv(t *testing.T, segBlocks, diskSegs int, opts Options) *testEnv {
	t.Helper()
	k := sim.NewKernel()
	amap := addr.New(segBlocks, diskSegs)
	disk := dev.NewDisk(k, dev.RZ57, int64(diskSegs*segBlocks), nil)
	env := &testEnv{k: k, disk: disk, amap: amap}
	k.RunProc(func(p *sim.Proc) {
		fs, err := Format(p, DiskDevice{disk}, amap, opts)
		if err != nil {
			t.Fatalf("Format: %v", err)
		}
		env.fs = fs
	})
	return env
}

func (e *testEnv) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e.k.RunProc(fn)
}

// pattern fills a buffer with a deterministic byte pattern seeded by tag.
func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(tag)*31+i) ^ byte(i>>8)
	}
	return b
}

func writeFile(t *testing.T, p *sim.Proc, fs *FS, path string, data []byte) *File {
	t.Helper()
	f, err := fs.Create(p, path)
	if err != nil {
		t.Fatalf("Create %s: %v", path, err)
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		t.Fatalf("WriteAt %s: %v", path, err)
	}
	return f
}

func readAll(t *testing.T, p *sim.Proc, f *File) []byte {
	t.Helper()
	sz, err := f.Size(p)
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	buf := make([]byte, sz)
	n, err := f.ReadAt(p, buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	if uint64(n) != sz {
		t.Fatalf("short read: %d of %d", n, sz)
	}
	return buf
}

func TestCreateWriteRead(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		data := pattern(1, 10000)
		f := writeFile(t, p, e.fs, "/hello", data)
		got := readAll(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("read back differs")
		}
	})
}

func TestReadAfterFlushCaches(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		data := pattern(2, 5*BlockSize+123)
		f := writeFile(t, p, e.fs, "/f", data)
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("read after cache flush differs")
		}
	})
}

func TestLargeFileSingleIndirect(t *testing.T) {
	e := newEnv(t, 32, 128, Options{MaxInodes: 128, BufferBytes: 1 << 20})
	e.run(t, func(p *sim.Proc) {
		// 40 blocks: exercises direct + single indirect.
		data := pattern(3, 40*BlockSize)
		f := writeFile(t, p, e.fs, "/big", data)
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("single-indirect file corrupted")
		}
	})
}

func TestLargeFileDoubleIndirect(t *testing.T) {
	// Needs > 12 + 1024 blocks => > 4.05 MB. Use 1100 blocks (4.3 MB).
	e := newEnv(t, 256, 64, Options{MaxInodes: 128, BufferBytes: 8 << 20})
	e.run(t, func(p *sim.Proc) {
		data := pattern(4, 1100*BlockSize)
		f := writeFile(t, p, e.fs, "/huge", data)
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("double-indirect file corrupted")
		}
	})
}

func TestSparseFileReadsZero(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/sparse")
		if err != nil {
			t.Fatal(err)
		}
		tail := pattern(5, 100)
		if _, err := f.WriteAt(p, tail, 20*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, BlockSize)
		if _, err := f.ReadAt(p, buf, 5*BlockSize); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("hole not zero")
			}
		}
		got := make([]byte, 100)
		if _, err := f.ReadAt(p, got, 20*BlockSize); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tail) {
			t.Fatal("tail data wrong")
		}
	})
}

func TestOverwriteInPlaceSemantics(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/f", pattern(6, 10*BlockSize))
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		repl := pattern(7, BlockSize)
		if _, err := f.WriteAt(p, repl, 3*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, BlockSize)
		if _, err := f.ReadAt(p, got, 3*BlockSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, repl) {
			t.Fatal("overwrite lost")
		}
		// Neighbours intact.
		want := pattern(6, 10*BlockSize)
		if _, err := f.ReadAt(p, got, 2*BlockSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[2*BlockSize:3*BlockSize]) {
			t.Fatal("neighbour block damaged")
		}
	})
}

func TestPartialBlockWrites(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/f", pattern(8, 2*BlockSize))
		if _, err := f.WriteAt(p, []byte("XYZ"), 100); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		want := pattern(8, 2*BlockSize)
		copy(want[100:], "XYZ")
		if got := readAll(t, p, f); !bytes.Equal(got, want) {
			t.Fatal("partial write merged wrong")
		}
	})
}

func TestUnalignedCrossBlockWrite(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		data := pattern(9, 3*BlockSize)
		if _, err := f.WriteAt(p, data, 1000); err != nil {
			t.Fatal(err)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 1000); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("cross-block unaligned write wrong")
		}
		head := make([]byte, 1000)
		if _, err := f.ReadAt(p, head, 0); err != nil {
			t.Fatal(err)
		}
		for _, b := range head {
			if b != 0 {
				t.Fatal("leading hole not zero")
			}
		}
	})
}

func TestDirectoryOps(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		if err := fs.Mkdir(p, "/a"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir(p, "/a/b"); err != nil {
			t.Fatal(err)
		}
		writeFile(t, p, fs, "/a/b/file1", pattern(1, 100))
		writeFile(t, p, fs, "/a/file2", pattern(2, 100))
		ents, err := fs.ReadDir(p, "/a")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 2 {
			t.Fatalf("got %d entries, want 2", len(ents))
		}
		if _, err := fs.Open(p, "/a/b/file1"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/a/missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		if _, err := fs.Create(p, "/a/file2"); !errors.Is(err, ErrExists) {
			t.Fatalf("want ErrExists, got %v", err)
		}
		if err := fs.Mkdir(p, "/a"); !errors.Is(err, ErrExists) {
			t.Fatalf("mkdir existing: want ErrExists, got %v", err)
		}
		if _, err := fs.Open(p, "/a"); !errors.Is(err, ErrIsDir) {
			t.Fatalf("open dir: want ErrIsDir, got %v", err)
		}
		if _, err := fs.ReadDir(p, "/a/file2"); !errors.Is(err, ErrNotDir) {
			t.Fatalf("readdir file: want ErrNotDir, got %v", err)
		}
	})
}

func TestRemove(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		writeFile(t, p, fs, "/f", pattern(1, 5*BlockSize))
		if err := fs.Remove(p, "/f"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/f"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("removed file still opens: %v", err)
		}
		// Directory removal.
		if err := fs.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		writeFile(t, p, fs, "/d/x", pattern(2, 10))
		if err := fs.Remove(p, "/d"); !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("non-empty rmdir: want ErrNotEmpty, got %v", err)
		}
		if err := fs.Remove(p, "/d/x"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(p, "/d"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInumReuseBumpsVersion(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		f1 := writeFile(t, p, fs, "/f", pattern(1, 10))
		v1 := fs.Imap(f1.Inum()).Version
		if err := fs.Remove(p, "/f"); err != nil {
			t.Fatal(err)
		}
		f2 := writeFile(t, p, fs, "/g", pattern(2, 10))
		if f2.Inum() != f1.Inum() {
			t.Skipf("inum not reused (%d vs %d)", f2.Inum(), f1.Inum())
		}
		if v2 := fs.Imap(f2.Inum()).Version; v2 <= v1 {
			t.Fatalf("version not bumped on reuse: %d <= %d", v2, v1)
		}
	})
}

func TestRename(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		data := pattern(3, 1000)
		writeFile(t, p, fs, "/old", data)
		if err := fs.Mkdir(p, "/dir"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(p, "/old", "/dir/new"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/old"); !errors.Is(err, ErrNotFound) {
			t.Fatal("old name still resolves")
		}
		f, err := fs.Open(p, "/dir/new")
		if err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("content lost in rename")
		}
		// Same-dir rename.
		if err := fs.Rename(p, "/dir/new", "/dir/newer"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open(p, "/dir/newer"); err != nil {
			t.Fatal(err)
		}
		// Destination exists.
		writeFile(t, p, fs, "/other", pattern(4, 10))
		if err := fs.Rename(p, "/other", "/dir/newer"); !errors.Is(err, ErrExists) {
			t.Fatalf("rename onto existing: want ErrExists, got %v", err)
		}
	})
}

func TestTruncate(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		data := pattern(5, 20*BlockSize)
		f := writeFile(t, p, e.fs, "/f", data)
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(p, 5*BlockSize+100); err != nil {
			t.Fatal(err)
		}
		sz, _ := f.Size(p)
		if sz != 5*BlockSize+100 {
			t.Fatalf("size = %d", sz)
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p, f)
		if !bytes.Equal(got, data[:5*BlockSize+100]) {
			t.Fatal("truncated content wrong")
		}
		// Extending writes after truncate read zeroes in the gap.
		if _, err := f.WriteAt(p, []byte{1}, 8*BlockSize); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		if _, err := f.ReadAt(p, buf, 6*BlockSize); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("stale data after truncate+extend")
			}
		}
	})
}

func TestPersistenceAcrossRemount(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	data := pattern(6, 17*BlockSize+55)
	e.run(t, func(p *sim.Proc) {
		writeFile(t, p, e.fs, "/keep", data)
		if err := e.fs.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		writeFile(t, p, e.fs, "/d/nested", pattern(7, 300))
		if err := e.fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
	// Remount from the same media.
	e.run(t, func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{e.disk}, e.amap, Options{})
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		f, err := fs2.Open(p, "/keep")
		if err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("data lost across remount")
		}
		ents, err := fs2.ReadDir(p, "/d")
		if err != nil || len(ents) != 1 || ents[0].Name != "nested" {
			t.Fatalf("directory lost: %v %v", ents, err)
		}
	})
}

func TestRollForwardRecoversPostCheckpointWrites(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	data := pattern(8, 9*BlockSize)
	e.run(t, func(p *sim.Proc) {
		writeFile(t, p, e.fs, "/before", pattern(1, 100))
		if err := e.fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		// Post-checkpoint work, flushed to the log but NOT checkpointed.
		writeFile(t, p, e.fs, "/after", data)
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Crash: abandon the FS without checkpointing.
	})
	e.run(t, func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{e.disk}, e.amap, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs2.Open(p, "/after")
		if err != nil {
			t.Fatalf("roll-forward lost /after: %v", err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("rolled-forward data wrong")
		}
		fOld, err := fs2.Open(p, "/before")
		if err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, p, fOld); !bytes.Equal(got, pattern(1, 100)) {
			t.Fatal("pre-checkpoint data wrong")
		}
	})
}

func TestRecoveryIgnoresUnsyncedData(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		writeFile(t, p, e.fs, "/durable", pattern(1, 100))
		if err := e.fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		// Written only to the buffer cache: lost by the crash.
		f, err := e.fs.Create(p, "/volatile")
		if err != nil {
			t.Fatal(err)
		}
		small := []byte("tiny") // too small to trigger a segment write
		if _, err := f.WriteAt(p, small, 0); err != nil {
			t.Fatal(err)
		}
	})
	e.run(t, func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{e.disk}, e.amap, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Open(p, "/durable"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs2.Open(p, "/volatile"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("unsynced file survived crash: %v", err)
		}
	})
}

func TestWriteIsSequentialLog(t *testing.T) {
	// LFS's defining property: random-frame replacement writes go to the
	// log sequentially and are therefore much faster than random reads
	// (Table 2: 1 MB random write 749 KB/s vs random read 154 KB/s).
	e := newEnv(t, 256, 64, Options{MaxInodes: 128, BufferBytes: 8 << 20})
	var readTime, writeTime sim.Time
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/obj", pattern(1, 1000*BlockSize))
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(99)
		buf := make([]byte, BlockSize)
		t0 := p.Now()
		for i := 0; i < 100; i++ {
			if _, err := f.ReadAt(p, buf, int64(rng.Intn(1000))*BlockSize); err != nil {
				t.Fatal(err)
			}
			if err := e.fs.FlushCaches(p); err != nil {
				t.Fatal(err)
			}
		}
		readTime = p.Now() - t0
		t0 = p.Now()
		for i := 0; i < 100; i++ {
			if _, err := f.WriteAt(p, buf, int64(rng.Intn(1000))*BlockSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		writeTime = p.Now() - t0
	})
	if writeTime*2 >= readTime {
		t.Fatalf("random writes (%v) should be far faster than random cold reads (%v)", writeTime, readTime)
	}
}

func TestSeguseAccounting(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/f", pattern(1, 10*BlockSize))
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		var live uint32
		for s := e.fs.ReservedSegs(); s < e.fs.Map().DiskSegs(); s++ {
			live += e.fs.SegUsage(addr.SegNo(s)).LiveBytes
		}
		// At least the file's 10 blocks plus metadata must be live.
		if live < 10*BlockSize {
			t.Fatalf("live bytes %d < file size", live)
		}
		// Overwriting the file should not grow live bytes unboundedly.
		for i := 0; i < 5; i++ {
			if _, err := f.WriteAt(p, pattern(byte(i), 10*BlockSize), 0); err != nil {
				t.Fatal(err)
			}
			if err := e.fs.Sync(p); err != nil {
				t.Fatal(err)
			}
		}
		var live2 uint32
		for s := e.fs.ReservedSegs(); s < e.fs.Map().DiskSegs(); s++ {
			live2 += e.fs.SegUsage(addr.SegNo(s)).LiveBytes
		}
		if live2 > live+6*BlockSize+2*uint32(e.fs.Stats().PartialSegs)*BlockSize {
			t.Fatalf("live bytes grew from %d to %d after overwrites", live, live2)
		}
	})
}

func TestStatAndTimes(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f := writeFile(t, p, e.fs, "/f", pattern(1, 100))
		fi, err := e.fs.Stat(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size != 100 || fi.Type != TypeFile {
			t.Fatalf("stat = %+v", fi)
		}
		mt := fi.Mtime
		p.Sleep(1e9)
		buf := make([]byte, 10)
		if _, err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		fi2, _ := e.fs.Stat(p, "/f")
		if fi2.Atime <= fi.Atime {
			t.Fatal("atime not advanced by read")
		}
		if fi2.Mtime != mt {
			t.Fatal("mtime changed by read")
		}
	})
}

func TestWalkDoesNotTouchAtimes(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		writeFile(t, p, e.fs, "/f", pattern(1, 100))
		before, _ := e.fs.Stat(p, "/f")
		p.Sleep(1e9)
		n := 0
		if err := e.fs.Walk(p, "/", func(path string, fi FileInfo) error {
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != 2 { // root + file
			t.Fatalf("walked %d nodes, want 2", n)
		}
		after, _ := e.fs.Stat(p, "/f")
		if after.Atime != before.Atime {
			t.Fatal("walk perturbed file atime")
		}
	})
}

func TestOutOfInodes(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 8})
	e.run(t, func(p *sim.Proc) {
		var lastErr error
		for i := 0; i < 10; i++ {
			_, lastErr = e.fs.Create(p, "/f"+string(rune('a'+i)))
			if lastErr != nil {
				break
			}
		}
		if !errors.Is(lastErr, ErrNoInodes) {
			t.Fatalf("want ErrNoInodes, got %v", lastErr)
		}
	})
}

func TestFileTooBig(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		f, err := e.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		huge := int64(MaxFileBlocks) * BlockSize
		if _, err := f.WriteAt(p, []byte{1}, huge); !errors.Is(err, ErrFileTooBig) {
			t.Fatalf("want ErrFileTooBig, got %v", err)
		}
	})
}

func TestManySmallFiles(t *testing.T) {
	e := newEnv(t, 32, 128, Options{MaxInodes: 600})
	e.run(t, func(p *sim.Proc) {
		const n = 500
		for i := 0; i < n; i++ {
			name := "/small" + itoa(i)
			writeFile(t, p, e.fs, name, pattern(byte(i), 100+i%300))
		}
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 37 {
			f, err := e.fs.Open(p, "/small"+itoa(i))
			if err != nil {
				t.Fatalf("open %d: %v", i, err)
			}
			if got := readAll(t, p, f); !bytes.Equal(got, pattern(byte(i), 100+i%300)) {
				t.Fatalf("file %d corrupted", i)
			}
		}
	})
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestLargeWriteUnderCachePressure regresses two subtle buffer-cache bugs:
// eviction of a just-inserted (still clean) buffer before its creator could
// dirty it, and the dirty-parents fixpoint missing grandparents when a
// parent is created already-dirty. A single write much larger than the
// buffer cache, reaching into the double-indirect range, exercises both.
func TestLargeWriteUnderCachePressure(t *testing.T) {
	e := newEnv(t, 256, 64, Options{MaxInodes: 256, BufferBytes: 3200 * 1024})
	e.run(t, func(p *sim.Proc) {
		data := pattern(42, 5<<20) // 1280 blocks > 12+1024: double indirect
		f := writeFile(t, p, e.fs, "/pressure", data)
		if err := e.fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p, f)
		if !bytes.Equal(got, data) {
			t.Fatal("large file corrupted under buffer-cache pressure")
		}
	})
}

func TestUsageAccounting(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	e.run(t, func(p *sim.Proc) {
		u0 := e.fs.Usage()
		if u0.DiskSegs != 64 || u0.InodesMax != 128 {
			t.Fatalf("geometry wrong: %+v", u0)
		}
		if u0.CleanSegs+u0.DirtySegs+u0.CacheSegs+u0.NoStoreSegs+u0.ReservedSegs != 64 {
			t.Fatalf("segment classes do not partition the disk: %+v", u0)
		}
		writeFile(t, p, e.fs, "/f", pattern(1, 40*BlockSize))
		if err := e.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		u1 := e.fs.Usage()
		if u1.LiveBytes <= u0.LiveBytes {
			t.Fatal("live bytes did not grow after write")
		}
		if u1.InodesUsed != u0.InodesUsed+1 {
			t.Fatalf("inode count wrong: %d -> %d", u0.InodesUsed, u1.InodesUsed)
		}
		if u1.CleanSegs >= u0.CleanSegs {
			t.Fatal("clean segments did not shrink")
		}
	})
}

func TestDeepDirectoryTree(t *testing.T) {
	e := newEnv(t, 32, 96, Options{MaxInodes: 256})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		path := ""
		for d := 0; d < 12; d++ {
			path = path + "/d" + itoa(d)
			if err := fs.Mkdir(p, path); err != nil {
				t.Fatalf("mkdir %s: %v", path, err)
			}
		}
		leaf := path + "/leaf"
		data := pattern(7, 3*BlockSize)
		writeFile(t, p, fs, leaf, data)
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(p, leaf)
		if err != nil {
			t.Fatalf("open deep leaf: %v", err)
		}
		if got := readAll(t, p, f); !bytes.Equal(got, data) {
			t.Fatal("deep leaf corrupted")
		}
		// Rename a middle directory and re-resolve.
		if err := fs.Rename(p, "/d0/d1", "/d0/renamed"); err != nil {
			t.Fatal(err)
		}
		moved := "/d0/renamed" + path[len("/d0/d1"):] + "/leaf"
		if _, err := fs.Open(p, moved); err != nil {
			t.Fatalf("open via renamed path %s: %v", moved, err)
		}
		if _, err := fs.Open(p, leaf); !errors.Is(err, ErrNotFound) {
			t.Fatal("old path still resolves after rename")
		}
	})
}

func TestLargeDirectorySpansBlocks(t *testing.T) {
	e := newEnv(t, 32, 128, Options{MaxInodes: 1024})
	e.run(t, func(p *sim.Proc) {
		fs := e.fs
		if err := fs.Mkdir(p, "/big"); err != nil {
			t.Fatal(err)
		}
		const n = 600 // with ~20-byte names: several directory blocks
		for i := 0; i < n; i++ {
			name := "/big/entry-number-" + itoa(i)
			if _, err := fs.Create(p, name); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		ents, err := fs.ReadDir(p, "/big")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != n {
			t.Fatalf("directory lists %d entries, want %d", len(ents), n)
		}
		// Spot-check resolution and deletion from a multi-block dir.
		if _, err := fs.Open(p, "/big/entry-number-599"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(p, "/big/entry-number-0"); err != nil {
			t.Fatal(err)
		}
		ents, _ = fs.ReadDir(p, "/big")
		if len(ents) != n-1 {
			t.Fatalf("after delete: %d entries", len(ents))
		}
	})
}
