package lfs

import (
	"io"
	"testing"

	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/sim"
)

// Micro-benchmarks for the file system hot paths. ns/op measures HOST
// cpu cost (simulation overhead); the virtual-seconds metrics report the
// modelled I/O time — both matter: the first bounds simulation speed, the
// second tracks the file system's I/O efficiency.

func benchFS(b *testing.B) (*sim.Kernel, *FS) {
	k := sim.NewKernel()
	amap := addr.New(256, 256)
	disk := dev.NewDisk(k, dev.RZ57, int64(256*256), nil)
	var fs *FS
	k.RunProc(func(p *sim.Proc) {
		var err error
		fs, err = Format(p, DiskDevice{disk}, amap, Options{MaxInodes: 4096, BufferBytes: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		// Long benchmark runs churn far more data than the disk holds;
		// the emergency cleaner keeps the log supplied with segments.
		fs.AttachCleaner(8, 16)
	})
	return k, fs
}

func BenchmarkLFSSequentialWrite1MB(b *testing.B) {
	k, fs := benchFS(b)
	var virt sim.Time
	k.RunProc(func(p *sim.Proc) {
		f, err := fs.Create(p, "/bench")
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		b.ResetTimer()
		t0 := p.Now()
		for i := 0; i < b.N; i++ {
			if _, err := f.WriteAt(p, buf, 0); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(p); err != nil {
				b.Fatal(err)
			}
			if i%32 == 31 {
				// Reclaim the dead overwrites outside the timed region.
				b.StopTimer()
				t1 := p.Now()
				if _, err := fs.CleanSegments(p, fs.SelectCleanable(0)); err != nil {
					b.Fatal(err)
				}
				t0 += p.Now() - t1 // exclude cleaning from virtual metric
				b.StartTimer()
			}
		}
		virt = p.Now() - t0
	})
	b.ReportMetric(virt.Seconds()/float64(b.N), "virtual-s/op")
}

func BenchmarkLFSSequentialRead1MB(b *testing.B) {
	k, fs := benchFS(b)
	var virt sim.Time
	k.RunProc(func(p *sim.Proc) {
		f, err := fs.Create(p, "/bench")
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		if _, err := f.WriteAt(p, buf, 0); err != nil {
			b.Fatal(err)
		}
		if err := fs.Sync(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		t0 := p.Now()
		for i := 0; i < b.N; i++ {
			if err := fs.FlushCaches(p); err != nil {
				b.Fatal(err)
			}
			if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
		virt = p.Now() - t0
	})
	b.ReportMetric(virt.Seconds()/float64(b.N), "virtual-s/op")
}

func BenchmarkLFSRandomRead4KB(b *testing.B) {
	k, fs := benchFS(b)
	var virt sim.Time
	k.RunProc(func(p *sim.Proc) {
		f, err := fs.Create(p, "/bench")
		if err != nil {
			b.Fatal(err)
		}
		const blocks = 4096 // 16 MB
		if _, err := f.WriteAt(p, make([]byte, blocks*BlockSize), 0); err != nil {
			b.Fatal(err)
		}
		if err := fs.FlushCaches(p); err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(1)
		buf := make([]byte, BlockSize)
		b.ResetTimer()
		t0 := p.Now()
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(p, buf, int64(rng.Intn(blocks))*BlockSize); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
		virt = p.Now() - t0
	})
	b.ReportMetric(virt.Seconds()/float64(b.N)*1000, "virtual-ms/op")
}

func BenchmarkLFSCreateSmallFile(b *testing.B) {
	k, fs := benchFS(b)
	k.RunProc(func(p *sim.Proc) {
		data := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := fs.Create(p, "/f"+itoa(i%3000))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				b.Fatal(err)
			}
			if i%3000 == 2999 {
				// Recycle the namespace to stay within MaxInodes.
				b.StopTimer()
				for j := 0; j < 3000; j++ {
					if err := fs.Remove(p, "/f"+itoa(j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := fs.Sync(p); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
}

func BenchmarkLFSCleanSegment(b *testing.B) {
	k, fs := benchFS(b)
	k.RunProc(func(p *sim.Proc) {
		f, err := fs.Create(p, "/churn")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Create one mostly-dead segment per iteration.
			if _, err := f.WriteAt(p, make([]byte, 1<<20), 0); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(p); err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteAt(p, make([]byte, 1<<20), 0); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(p); err != nil {
				b.Fatal(err)
			}
			segs := fs.SelectLeastLive(1)
			if len(segs) == 0 {
				b.Fatal("nothing cleanable")
			}
			b.StartTimer()
			if _, err := fs.CleanSegments(p, segs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
