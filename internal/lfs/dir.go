package lfs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Directory and pathname operations. Directory files hold packed Dirent
// records; every namespace mutation rewrites the directory's blocks
// through the log like any other file data (directories migrate to
// tertiary storage exactly like file contents, §4).

// splitPath normalizes a slash-separated absolute or relative path.
func splitPath(path string) []string {
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		default:
			parts = append(parts, c)
		}
	}
	return parts
}

// resolveLocked walks path from the root, returning the final inum.
func (fs *FS) resolveLocked(p *sim.Proc, path string) (uint32, error) {
	cur := uint32(RootInum)
	for _, name := range splitPath(path) {
		ino, err := fs.iget(p, cur)
		if err != nil {
			return 0, err
		}
		if ino.Type != TypeDir {
			return 0, ErrNotDir
		}
		ents, err := fs.readDirLocked(p, ino)
		if err != nil {
			return 0, err
		}
		next, ok := findEnt(ents, name)
		if !ok {
			return 0, fmt.Errorf("%q: %w", path, ErrNotFound)
		}
		cur = next.Inum
	}
	return cur, nil
}

// resolveParentLocked resolves the directory containing the last path
// component, returning its inode and the leaf name.
func (fs *FS) resolveParentLocked(p *sim.Proc, path string) (*Inode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%q: %w", path, ErrExists)
	}
	dirInum := uint32(RootInum)
	if len(parts) > 1 {
		var err error
		dirInum, err = fs.resolveLocked(p, strings.Join(parts[:len(parts)-1], "/"))
		if err != nil {
			return nil, "", err
		}
	}
	ino, err := fs.iget(p, dirInum)
	if err != nil {
		return nil, "", err
	}
	if ino.Type != TypeDir {
		return nil, "", ErrNotDir
	}
	return ino, parts[len(parts)-1], nil
}

func findEnt(ents []Dirent, name string) (Dirent, bool) {
	for _, e := range ents {
		if e.Name == name {
			return e, true
		}
	}
	return Dirent{}, false
}

// readDirLocked loads and decodes a directory's entries.
func (fs *FS) readDirLocked(p *sim.Proc, ino *Inode) ([]Dirent, error) {
	if ino.Size == 0 {
		return nil, nil
	}
	data := make([]byte, ino.Size)
	// A whole-file read always ends at EOF; that is not an error here.
	if _, err := fs.readAtLocked(p, ino.Inum, data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return decodeDirents(data), nil
}

// writeDirLocked replaces a directory's contents.
func (fs *FS) writeDirLocked(p *sim.Proc, ino *Inode, ents []Dirent) error {
	data := encodeDirents(ents)
	if uint64(len(data)) < ino.Size {
		if err := fs.truncateLocked(p, ino, uint64(len(data))); err != nil {
			return err
		}
	}
	if _, err := fs.writeAtLocked(p, ino.Inum, data, 0); err != nil {
		return err
	}
	if ino.Size != uint64(len(data)) {
		ino.Size = uint64(len(data))
		fs.markInodeDirty(ino)
	}
	return nil
}

// Create makes a new empty regular file.
func (fs *FS) Create(p *sim.Proc, path string) (*File, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParentLocked(p, path)
	if err != nil {
		return nil, err
	}
	ents, err := fs.readDirLocked(p, dir)
	if err != nil {
		return nil, err
	}
	if _, ok := findEnt(ents, name); ok {
		return nil, fmt.Errorf("%q: %w", path, ErrExists)
	}
	ino, err := fs.iallocLocked(TypeFile)
	if err != nil {
		return nil, err
	}
	ents = append(ents, Dirent{Inum: ino.Inum, Type: TypeFile, Name: name})
	if err := fs.writeDirLocked(p, dir, ents); err != nil {
		return nil, err
	}
	return &File{fs: fs, inum: ino.Inum}, nil
}

// Open opens an existing regular file.
func (fs *FS) Open(p *sim.Proc, path string) (*File, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolveLocked(p, path)
	if err != nil {
		return nil, err
	}
	ino, err := fs.iget(p, inum)
	if err != nil {
		return nil, err
	}
	if ino.Type == TypeDir {
		return nil, ErrIsDir
	}
	return &File{fs: fs, inum: inum}, nil
}

// OpenInum opens a file by inode number (used by the migrator, which
// enumerates the inode map rather than the namespace).
func (fs *FS) OpenInum(p *sim.Proc, inum uint32) (*File, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if _, err := fs.iget(p, inum); err != nil {
		return nil, err
	}
	return &File{fs: fs, inum: inum}, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParentLocked(p, path)
	if err != nil {
		return err
	}
	ents, err := fs.readDirLocked(p, dir)
	if err != nil {
		return err
	}
	if _, ok := findEnt(ents, name); ok {
		return fmt.Errorf("%q: %w", path, ErrExists)
	}
	ino, err := fs.iallocLocked(TypeDir)
	if err != nil {
		return err
	}
	ino.Nlink = 2
	if err := fs.writeDirLocked(p, ino, nil); err != nil {
		return err
	}
	ents = append(ents, Dirent{Inum: ino.Inum, Type: TypeDir, Name: name})
	return fs.writeDirLocked(p, dir, ents)
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(p *sim.Proc, path string) ([]Dirent, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolveLocked(p, path)
	if err != nil {
		return nil, err
	}
	ino, err := fs.iget(p, inum)
	if err != nil {
		return nil, err
	}
	if ino.Type != TypeDir {
		return nil, ErrNotDir
	}
	return fs.readDirLocked(p, ino)
}

// Remove deletes a file or an empty directory.
func (fs *FS) Remove(p *sim.Proc, path string) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	dir, name, err := fs.resolveParentLocked(p, path)
	if err != nil {
		return err
	}
	ents, err := fs.readDirLocked(p, dir)
	if err != nil {
		return err
	}
	ent, ok := findEnt(ents, name)
	if !ok {
		return fmt.Errorf("%q: %w", path, ErrNotFound)
	}
	ino, err := fs.iget(p, ent.Inum)
	if err != nil {
		return err
	}
	if ino.Type == TypeDir {
		sub, err := fs.readDirLocked(p, ino)
		if err != nil {
			return err
		}
		if len(sub) > 0 {
			return fmt.Errorf("%q: %w", path, ErrNotEmpty)
		}
	}
	out := ents[:0]
	for _, e := range ents {
		if e.Name != name {
			out = append(out, e)
		}
	}
	if err := fs.writeDirLocked(p, dir, out); err != nil {
		return err
	}
	return fs.ifreeLocked(p, ino)
}

// Rename moves a file or directory; the destination must not exist.
func (fs *FS) Rename(p *sim.Proc, oldPath, newPath string) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	oldDir, oldName, err := fs.resolveParentLocked(p, oldPath)
	if err != nil {
		return err
	}
	oldEnts, err := fs.readDirLocked(p, oldDir)
	if err != nil {
		return err
	}
	ent, ok := findEnt(oldEnts, oldName)
	if !ok {
		return fmt.Errorf("%q: %w", oldPath, ErrNotFound)
	}
	newDir, newName, err := fs.resolveParentLocked(p, newPath)
	if err != nil {
		return err
	}
	newEnts, err := fs.readDirLocked(p, newDir)
	if err != nil {
		return err
	}
	if _, exists := findEnt(newEnts, newName); exists {
		return fmt.Errorf("%q: %w", newPath, ErrExists)
	}
	if oldDir.Inum == newDir.Inum {
		out := oldEnts[:0]
		for _, e := range oldEnts {
			if e.Name != oldName {
				out = append(out, e)
			}
		}
		out = append(out, Dirent{Inum: ent.Inum, Type: ent.Type, Name: newName})
		return fs.writeDirLocked(p, oldDir, out)
	}
	out := oldEnts[:0]
	for _, e := range oldEnts {
		if e.Name != oldName {
			out = append(out, e)
		}
	}
	if err := fs.writeDirLocked(p, oldDir, out); err != nil {
		return err
	}
	newEnts = append(newEnts, Dirent{Inum: ent.Inum, Type: ent.Type, Name: newName})
	return fs.writeDirLocked(p, newDir, newEnts)
}

// Stat describes the file or directory at path.
func (fs *FS) Stat(p *sim.Proc, path string) (FileInfo, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolveLocked(p, path)
	if err != nil {
		return FileInfo{}, err
	}
	return fs.statLocked(p, inum)
}

// Walk visits every (path, FileInfo) under root in depth-first order,
// without updating access times — the property namespace-locality
// migration policies rely on (§5.3).
func (fs *FS) Walk(p *sim.Proc, root string, fn func(path string, fi FileInfo) error) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	inum, err := fs.resolveLocked(p, root)
	if err != nil {
		return err
	}
	return fs.walkLocked(p, root, inum, fn)
}

func (fs *FS) walkLocked(p *sim.Proc, path string, inum uint32, fn func(string, FileInfo) error) error {
	ino, err := fs.iget(p, inum)
	if err != nil {
		return err
	}
	// Preserve atime: statLocked does not touch it; only data reads do.
	fi := FileInfo{Inum: inum, Type: ino.Type, Size: ino.Size, Mtime: ino.Mtime, Atime: fs.imap[inum].Atime}
	if err := fn(path, fi); err != nil {
		return err
	}
	if ino.Type != TypeDir {
		return nil
	}
	ents, err := fs.readDirLocked(p, ino)
	if err != nil {
		return err
	}
	for _, e := range ents {
		child := path + "/" + e.Name
		if path == "/" || path == "" {
			child = "/" + e.Name
		}
		if err := fs.walkLocked(p, child, e.Inum, fn); err != nil {
			return err
		}
	}
	return nil
}
