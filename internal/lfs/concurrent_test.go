package lfs

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestConcurrentWritersAndCleaner runs several simulated processes doing
// file I/O concurrently with a cleaner daemon: the file system lock must
// serialize operations without deadlock, and every file must verify.
func TestConcurrentWritersAndCleaner(t *testing.T) {
	e := newEnv(t, 32, 128, Options{MaxInodes: 256, BufferBytes: 1 << 20})
	fs := e.fs
	e.k.GoDaemon("cleaner", fs.AttachCleaner(100, 110))

	const writers = 6
	const rounds = 8
	finals := make([][]byte, writers)
	for w := 0; w < writers; w++ {
		w := w
		e.k.Go("writer", func(p *sim.Proc) {
			name := "/w" + itoa(w)
			f, err := fs.Create(p, name)
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			for r := 0; r < rounds; r++ {
				data := pattern(byte(w*16+r), (3+w)*BlockSize)
				if _, err := f.WriteAt(p, data, 0); err != nil {
					t.Errorf("writer %d round %d: %v", w, r, err)
					return
				}
				finals[w] = data
				p.Sleep(time.Duration(w+1) * 200 * time.Millisecond)
				// Interleave reads of our own file.
				got := make([]byte, len(data))
				if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
					t.Errorf("writer %d read: %v", w, err)
					return
				}
				if !bytes.Equal(got, data) {
					t.Errorf("writer %d: interleaved read diverged", w)
					return
				}
			}
		})
	}
	// A walker process exercises the namespace concurrently.
	e.k.Go("walker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(500 * time.Millisecond)
			if err := fs.Walk(p, "/", func(string, FileInfo) error { return nil }); err != nil {
				t.Errorf("walker: %v", err)
				return
			}
		}
	})
	e.k.Run()
	// Final verification after a full cache flush.
	e.run(t, func(p *sim.Proc) {
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < writers; w++ {
			f, err := fs.Open(p, "/w"+itoa(w))
			if err != nil {
				t.Fatalf("open writer %d file: %v", w, err)
			}
			got := readAll(t, p, f)
			if !bytes.Equal(got, finals[w]) {
				t.Fatalf("writer %d final content diverged", w)
			}
		}
	})
	e.k.Stop()
}

// TestConcurrentReadersShareClusters verifies that multiple readers of the
// same file proceed correctly under the coarse file system lock.
func TestConcurrentReaders(t *testing.T) {
	e := newEnv(t, 32, 64, Options{MaxInodes: 128})
	fs := e.fs
	var data []byte
	e.run(t, func(p *sim.Proc) {
		data = pattern(9, 30*BlockSize)
		writeFile(t, p, fs, "/shared", data)
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
	})
	for r := 0; r < 5; r++ {
		r := r
		e.k.Go("reader", func(p *sim.Proc) {
			f, err := fs.Open(p, "/shared")
			if err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			buf := make([]byte, 2*BlockSize)
			for off := int64(r) * BlockSize; off+int64(len(buf)) <= int64(len(data)); off += 5 * BlockSize {
				if _, err := f.ReadAt(p, buf, off); err != nil && err != io.EOF {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
					t.Errorf("reader %d: data mismatch at %d", r, off)
					return
				}
			}
		})
	}
	e.k.Run()
}
