package lfs

import (
	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/sim"
)

// DiskDevice adapts a plain block device (a disk or a concatenation of
// disks) to the Device interface for base-LFS use: every block address
// must fall in the disk region of the address map.
type DiskDevice struct {
	BD dev.BlockDev
}

var _ Device = DiskDevice{}

// ReadBlocks implements Device.
func (d DiskDevice) ReadBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error {
	return d.BD.ReadBlocks(p, int64(b), buf)
}

// WriteBlocks implements Device.
func (d DiskDevice) WriteBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error {
	return d.BD.WriteBlocks(p, int64(b), buf)
}
