package lfs

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/sim"
)

// Migration support: the lfs_migratev analogue (§6.7). The migrator
// selects file blocks by policy, locates them with lfs_bmapv, and calls
// lfs_migratev to gather and rewrite those blocks into the staging segment
// on disk. The staging segment is a valid LFS segment image addressed with
// the block numbers it will use on the tertiary volume; when it fills, the
// service process copies it out as a unit (§6.2).
//
// Migratev runs under the file system lock: it captures block contents,
// re-points metadata at the tertiary addresses, and writes the staged
// image into the cache-line disk segment in one atomic step, so no reader
// ever observes a tertiary pointer before the staged copy is readable.

// FileBlockRefs lists every block of a file — data blocks first, then
// indirect blocks — with current addresses. Dirty state must be flushed
// first so that every block has a media address; call Sync beforehand.
func (fs *FS) FileBlockRefs(p *sim.Proc, inum uint32) ([]BlockRef, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	ino, err := fs.iget(p, inum)
	if err != nil {
		return nil, err
	}
	ver := fs.imap[inum].Version
	var refs []BlockRef
	nblocks := int32(blocksFor(int(ino.Size)))
	for lbn := int32(0); lbn < nblocks; lbn++ {
		a, err := fs.blockPtr(p, ino, lbn)
		if err != nil {
			return nil, err
		}
		if a != addr.NilBlock {
			refs = append(refs, BlockRef{Inum: inum, Version: ver, Lbn: lbn, Addr: a})
		}
	}
	// Indirect blocks last, so that a staged indirect block lands after
	// the data it describes and reflects the data's new addresses.
	appendMeta := func(lbn int32) error {
		a, err := fs.metaAddr(p, ino, lbn)
		if err != nil {
			return err
		}
		if a != addr.NilBlock {
			refs = append(refs, BlockRef{Inum: inum, Version: ver, Lbn: lbn, Addr: a})
		}
		return nil
	}
	if nblocks > NDirect {
		if err := appendMeta(LbnSingle); err != nil {
			return nil, err
		}
	}
	if int(nblocks) > NDirect+PtrsPerBlock {
		nChildren := (int(nblocks) - NDirect - PtrsPerBlock + PtrsPerBlock - 1) / PtrsPerBlock
		for i := 0; i < nChildren; i++ {
			if err := appendMeta(LbnDoubleChild(i)); err != nil {
				return nil, err
			}
		}
		if err := appendMeta(LbnDoubleRoot); err != nil {
			return nil, err
		}
	}
	return refs, nil
}

// MigrateResult reports what one Migratev call staged.
type MigrateResult struct {
	Applied     []bool // per ref: block was live and has been migrated
	Blocks      int    // content blocks staged (excluding summary/inodes)
	InodesMoved int
	NextOff     int  // next free block offset in the staging segment
	Full        bool // the staging segment could not take everything
	// Consumed is the count of leading refs fully processed (staged or
	// permanently dead); on Full, the caller resubmits refs[Consumed:]
	// against a fresh staging segment.
	Consumed int
}

// Migratev stages the live blocks named by refs into the staging segment:
// it appends one partial segment to the tertiary segment image, addressed
// at tertSeg starting at block offset off, mirrors the image into the
// cache-line disk segment cacheSeg at the same offset, and re-points all
// file system metadata at the new tertiary addresses.
//
// If inodeInums is non-empty those inodes are serialized into trailing
// inode blocks and the inode map is re-pointed at them (metadata
// migration, §4). Refs whose blocks died or are dirty in the buffer cache
// are skipped. If the remaining space cannot hold every live block the
// call stages what fits and sets Full; the caller continues in a fresh
// segment.
func (fs *FS) Migratev(p *sim.Proc, refs []BlockRef, inodeInums []uint32, tertSeg, cacheSeg addr.SegNo, off int) (*MigrateResult, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	res := &MigrateResult{Applied: make([]bool, len(refs)), NextOff: off, Consumed: len(refs)}

	// Filter to live, stable blocks.
	type item struct {
		refIdx int
		ref    BlockRef
	}
	var live []item
	for i, r := range refs {
		ok, err := fs.refLiveLocked(p, r)
		if err != nil {
			return res, err
		}
		if !ok {
			continue
		}
		// A dirty data block is unstable: newer content awaits the disk
		// log, so migrating the media copy would stage stale bytes.
		// Dirty META blocks are different: pointer flips from earlier
		// Migratev calls dirty them, and staging captures their content
		// from the buffer cache (authoritative), so they stay eligible.
		if r.Lbn >= 0 {
			if b, cached := fs.bufs[bufKey{r.Inum, r.Lbn}]; cached && b.dirty {
				continue
			}
		}
		live = append(live, item{i, r})
	}
	inoBlocks := (len(inodeInums) + InodesPerBlock - 1) / InodesPerBlock
	avail := fs.amap.SegBlocks() - off - 1 // room after the summary
	if avail < 1 {
		res.Full = true
		res.Consumed = 0 // nothing processed; resubmit everything
		return res, nil
	}
	if len(live)+inoBlocks > avail {
		res.Full = true
		cut := avail - inoBlocks
		if cut < 0 {
			cut = 0
		}
		if cut > len(live) {
			cut = len(live)
		}
		live = live[:cut]
		if cut == 0 {
			res.Consumed = 0
			if inoBlocks > avail {
				return res, nil
			}
		} else {
			res.Consumed = live[cut-1].refIdx + 1
		}
	}
	if len(live) == 0 && len(inodeInums) == 0 {
		return res, nil
	}

	// Capture data content before any pointer moves. Batch contiguous
	// source addresses into single device transfers (the migrator reads
	// from the raw disk, §6.7 — these reads contend for the disk arm,
	// Table 6).
	contents := make([][]byte, len(live))
	maxRun := fs.opts.GatherChunkBlocks
	if maxRun <= 0 {
		maxRun = 1 << 20
	}
	for i := 0; i < len(live); {
		if live[i].ref.Lbn < 0 {
			i++ // meta blocks are captured after data pointer flips
			continue
		}
		j := i + 1
		for j < len(live) && j-i < maxRun && live[j].ref.Lbn >= 0 &&
			live[j].ref.Addr == live[i].ref.Addr+addr.BlockNo(j-i) {
			j++
		}
		run := make([]byte, (j-i)*BlockSize)
		if err := fs.readRunLocked(p, live[i].ref, run); err != nil {
			return res, err
		}
		for k := i; k < j; k++ {
			contents[k] = run[(k-i)*BlockSize : (k-i+1)*BlockSize]
		}
		i = j
	}

	// Flip data pointers to the staged addresses.
	base := fs.amap.BlockOf(tertSeg, off)
	for i, it := range live {
		if it.ref.Lbn < 0 {
			continue
		}
		na := base + addr.BlockNo(1+i)
		ino, err := fs.iget(p, it.ref.Inum)
		if err != nil {
			return res, err
		}
		if _, err := fs.setBlockPtr(p, ino, it.ref.Lbn, na); err != nil {
			return res, err
		}
		fs.accountOld(it.ref.Addr, BlockSize)
		fs.accountNew(na, BlockSize)
		if b, ok := fs.bufs[bufKey{it.ref.Inum, it.ref.Lbn}]; ok {
			b.addr = na
		}
		res.Applied[it.refIdx] = true
	}
	// Capture meta content (now reflecting the new data addresses) and
	// flip meta pointers.
	for i, it := range live {
		if it.ref.Lbn >= 0 {
			continue
		}
		na := base + addr.BlockNo(1+i)
		ino, err := fs.iget(p, it.ref.Inum)
		if err != nil {
			return res, err
		}
		mb, err := fs.getMeta(p, ino, it.ref.Lbn, false)
		if err != nil {
			return res, err
		}
		if mb == nil {
			continue // vanished; leave Applied false
		}
		data := make([]byte, BlockSize)
		copy(data, mb.data)
		contents[i] = data
		fs.setMetaPtr(p, ino, it.ref.Lbn, na)
		fs.accountOld(it.ref.Addr, BlockSize)
		fs.accountNew(na, BlockSize)
		mb.addr = na
		if mb.dirty {
			// The staged copy includes every update; the disk log
			// need not rewrite it.
			mb.dirty = false
			fs.dirtyBytes -= BlockSize
		}
		res.Applied[it.refIdx] = true
	}

	// Serialize inodes (after all pointer flips) and re-point the map.
	sum := &Summary{
		Next:   tertSeg,
		Create: fs.now(),
		Serial: fs.serial,
		Flags:  SumStaging,
	}
	content := make([]byte, (len(live)+inoBlocks)*BlockSize)
	for i, it := range live {
		copy(content[i*BlockSize:], contents[i])
		if n := len(sum.Finfos); n > 0 && sum.Finfos[n-1].Inum == it.ref.Inum {
			sum.Finfos[n-1].Lbns = append(sum.Finfos[n-1].Lbns, it.ref.Lbn)
		} else {
			sum.Finfos = append(sum.Finfos, Finfo{Inum: it.ref.Inum, Version: it.ref.Version, Lbns: []int32{it.ref.Lbn}})
		}
	}
	sorted := append([]uint32{}, inodeInums...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for bi := 0; bi < inoBlocks; bi++ {
		na := base + addr.BlockNo(1+len(live)+bi)
		sum.InoAddrs = append(sum.InoAddrs, na)
		blkOff := (len(live) + bi) * BlockSize
		for s := 0; s < InodesPerBlock; s++ {
			idx := bi*InodesPerBlock + s
			if idx >= len(sorted) {
				break
			}
			inum := sorted[idx]
			ino, err := fs.iget(p, inum)
			if err != nil {
				continue
			}
			ino.encode(content[blkOff+s*InodeSize:])
			e := &fs.imap[inum]
			fs.accountOld(e.Addr, InodeSize)
			e.Addr = na
			e.Slot = uint32(s)
			fs.accountNew(na, InodeSize)
			delete(fs.dirtyIno, inum) // staged copy is authoritative
			res.InodesMoved++
		}
	}
	sum.NBlocks = uint16(1 + len(live) + inoBlocks)
	sum.DataSum = crc32Sum(content)
	image := make([]byte, BlockSize+len(content))
	if err := EncodeSummary(sum, image[:BlockSize]); err != nil {
		return res, err
	}
	copy(image[BlockSize:], content)

	// Mirror the staged partial segment into the cache-line disk segment
	// (assembled "on-disk in a dirty cache line", §6.2).
	fs.chargeCopy(p, len(image), fs.opts.AssemblyCopyRate)
	if err := fs.dev.WriteBlocks(p, fs.amap.BlockOf(cacheSeg, off), image); err != nil {
		return res, err
	}
	fs.stats.DevWrites++
	fs.stats.BytesWritten += int64(len(image))
	if su := fs.seguseFor(base); su != nil {
		su.LiveBytes += BlockSize // the staged summary block
		su.Flags |= SegDirty
		su.LastMod = fs.now()
	}
	res.Blocks = len(live)
	res.NextOff = off + 1 + len(live) + inoBlocks
	return res, nil
}

// setMetaPtr updates the parent pointer of a meta block to a migrated
// address (unlike setParentPtr this may dirty the parent itself).
func (fs *FS) setMetaPtr(p *sim.Proc, ino *Inode, metaLbn int32, a addr.BlockNo) {
	switch metaLbn {
	case LbnSingle:
		ino.Single = a
		fs.markInodeDirty(ino)
	case LbnDoubleRoot:
		ino.Double = a
		fs.markInodeDirty(ino)
	default:
		root, err := fs.getMeta(p, ino, LbnDoubleRoot, true)
		if err != nil {
			panic(fmt.Sprintf("lfs: meta migration lost double root: %v", err))
		}
		putPtr(root, slotInParent(metaLbn), a)
		fs.markDirty(root)
	}
}

// readRunLocked reads a run of blocks starting at ref's address, from the
// buffer cache when the first block is resident, else from the device.
func (fs *FS) readRunLocked(p *sim.Proc, ref BlockRef, run []byte) error {
	if len(run) == BlockSize {
		if b, ok := fs.bufs[bufKey{ref.Inum, ref.Lbn}]; ok {
			copy(run, b.data)
			return nil
		}
	}
	if err := fs.dev.ReadBlocks(p, ref.Addr, run); err != nil {
		return err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += int64(len(run))
	return nil
}

// ReadRawBlocks reads blocks by address, bypassing the buffer cache (the
// migrator "has direct access to the raw disk device", §6.7).
func (fs *FS) ReadRawBlocks(p *sim.Proc, a addr.BlockNo, buf []byte) error {
	if err := fs.dev.ReadBlocks(p, a, buf); err != nil {
		return err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += int64(len(buf))
	return nil
}

// DropFileBuffers removes a file's clean blocks from the buffer cache
// (used after migration so reads exercise the demand-fetch path, and by
// benchmarks forcing cold caches).
func (fs *FS) DropFileBuffers(p *sim.Proc, inum uint32) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	var victims []*buf
	for _, b := range fs.bufs {
		if b.key.inum == inum && !b.dirty {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		fs.dropBuf(b)
	}
	if !fs.dirtyIno[inum] {
		delete(fs.inodes, inum)
	}
}
