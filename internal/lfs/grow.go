package lfs

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
)

// On-line storage reconfiguration (§6.4): "If a need arises for more disk
// storage, it is possible to initialize a new disk with empty segments and
// adjust the file system superblock parameters and ifile to incorporate
// the added disk capacity. If it is necessary to remove a disk from
// service, its segments can all be cleaned (so that the data are copied to
// another disk) and marked as having no storage." The paper lists the tool
// for this as future work (§10); here it is.

// CanGrow reports whether the checkpoint table region has room for n more
// disk segments' usage entries (headroom is reserved at format time via
// Options.MaxDiskSegs).
func (fs *FS) CanGrow(n int) error {
	grown := len(fs.seguse) + n
	need := 1 + blocksFor(grown*SeguseSize) + blocksFor(len(fs.tseg)*SeguseSize) + blocksFor(len(fs.imap)*ImapSize)
	if need > int(fs.sb.TableBlocks) {
		return fmt.Errorf("lfs: growing to %d segments needs %d table blocks, region holds %d (raise MaxDiskSegs at format time)",
			grown, need, fs.sb.TableBlocks)
	}
	return nil
}

// GrowDisk extends the file system by n freshly initialized segments. The
// caller must already have extended the device and the address map so that
// the new segments are readable and classified as disk segments.
func (fs *FS) GrowDisk(p *sim.Proc, n int) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if err := fs.CanGrow(n); err != nil {
		return err
	}
	if fs.amap.DiskSegs() != len(fs.seguse)+n {
		return fmt.Errorf("lfs: address map has %d disk segments, expected %d after growth",
			fs.amap.DiskSegs(), len(fs.seguse)+n)
	}
	fs.seguse = append(fs.seguse, make([]Seguse, n)...)
	fs.nclean += n
	fs.sb.DiskSegs = uint32(len(fs.seguse))
	blk := make([]byte, BlockSize)
	fs.sb.encode(blk)
	if err := fs.dev.WriteBlocks(p, fs.amap.BlockOf(0, 0), blk); err != nil {
		return err
	}
	return fs.checkpointLocked(p)
}

// RetireSegments takes the disk segments [lo, hi) out of service: live
// data are cleaned forward onto other segments and the range is marked as
// having no storage. Cached tertiary lines in the range must be ejected by
// the caller first; staging lines make the call fail.
func (fs *FS) RetireSegments(p *sim.Proc, lo, hi addr.SegNo) error {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	if int(lo) < int(fs.sb.ReservedSegs) || int64(hi) > int64(len(fs.seguse)) || lo >= hi {
		return fmt.Errorf("lfs: retire range [%d,%d) invalid", lo, hi)
	}
	for s := lo; s < hi; s++ {
		if fs.seguse[s].Flags&SegCached != 0 {
			return fmt.Errorf("lfs: segment %d still caches tertiary segment %d; eject it first", s, fs.seguse[s].CacheTag)
		}
	}
	// Freeze the clean segments first so neither the log nor the cache
	// allocates into the doomed range while we clean.
	for s := lo; s < hi; s++ {
		if fs.seguse[s].Flags == 0 {
			fs.seguse[s].Flags = SegNoStore
			fs.nclean--
		}
	}
	// Move the log tail out of the range.
	if fs.curSeg >= lo && fs.curSeg < hi {
		next, err := fs.allocSegmentLocked(p)
		if err != nil {
			return err
		}
		fs.seguse[fs.curSeg].Flags &^= SegActive
		fs.seguse[fs.curSeg].Flags |= SegDirty
		fs.seguse[next].Flags = SegActive
		fs.nclean--
		fs.curSeg = next
		fs.curOff = 0
	}
	// Clean the dirty segments (copies live data to segments outside the
	// range, since everything inside is frozen).
	for s := lo; s < hi; s++ {
		if fs.seguse[s].Flags&SegDirty == 0 {
			continue
		}
		if _, err := fs.cleanSegmentLocked(p, s); err != nil {
			return err
		}
	}
	if err := fs.flushLocked(p, false); err != nil {
		return err
	}
	for s := lo; s < hi; s++ {
		fs.seguse[s].Flags = SegNoStore
		fs.seguse[s].LiveBytes = 0
		fs.seguse[s].CacheTag = 0
	}
	return fs.checkpointLocked(p)
}
