package lfs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// TestSummaryLayout verifies the Table 1 partial-segment summary block:
// encode/decode round trip over randomized contents.
func TestSummaryLayout(t *testing.T) {
	f := func(next uint32, create int64, serial uint64, flags uint16, nf uint8, lbnSeed int64) bool {
		s := &Summary{
			Next:   addr.SegNo(next),
			Create: create,
			Serial: serial,
			Flags:  flags,
		}
		rng := rand.New(rand.NewSource(lbnSeed))
		nfiles := int(nf%8) + 1
		blocks := 0
		for i := 0; i < nfiles; i++ {
			fi := Finfo{Inum: rng.Uint32()%1000 + 1, Version: rng.Uint32() % 100}
			n := rng.Intn(12) + 1
			for j := 0; j < n; j++ {
				fi.Lbns = append(fi.Lbns, int32(rng.Intn(4000)-10))
				blocks++
			}
			s.Finfos = append(s.Finfos, fi)
		}
		nino := rng.Intn(3)
		for i := 0; i < nino; i++ {
			s.InoAddrs = append(s.InoAddrs, addr.BlockNo(rng.Uint32()))
			blocks++
		}
		s.NBlocks = uint16(1 + blocks)
		buf := make([]byte, BlockSize)
		if err := EncodeSummary(s, buf); err != nil {
			return false
		}
		got, err := DecodeSummary(buf)
		if err != nil {
			return false
		}
		return got.Next == s.Next && got.Create == s.Create && got.Serial == s.Serial &&
			got.Flags == s.Flags && got.NBlocks == s.NBlocks &&
			reflect.DeepEqual(got.Finfos, s.Finfos) &&
			reflect.DeepEqual(got.InoAddrs, s.InoAddrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryRejectsCorruption(t *testing.T) {
	s := &Summary{Next: 7, Create: 123, Serial: 9, NBlocks: 3,
		Finfos: []Finfo{{Inum: 5, Version: 1, Lbns: []int32{0, 1}}}}
	buf := make([]byte, BlockSize)
	if err := EncodeSummary(s, buf); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 4, 12, 20, 40} {
		c := make([]byte, BlockSize)
		copy(c, buf)
		c[off] ^= 0xFF
		if _, err := DecodeSummary(c); err == nil {
			t.Errorf("corruption at byte %d accepted", off)
		}
	}
}

func TestSummaryOverflowDetected(t *testing.T) {
	s := &Summary{}
	// More FINFO entries than a 4 KB block can hold.
	for i := 0; i < 400; i++ {
		s.Finfos = append(s.Finfos, Finfo{Inum: uint32(i + 1), Lbns: []int32{0, 1, 2}})
	}
	buf := make([]byte, BlockSize)
	if err := EncodeSummary(s, buf); err == nil {
		t.Fatal("overflowing summary encoded without error")
	}
}

// TestInodeLayout round-trips randomized inodes through the 128-byte
// on-media format.
func TestInodeLayout(t *testing.T) {
	f := func(inum, version, nlink uint32, size uint64, mtime, ctime int64, typ uint8, ptrSeed int64) bool {
		ino := &Inode{
			Inum:    inum,
			Version: version,
			Type:    FileType(typ % 3),
			Nlink:   nlink,
			Size:    size,
			Mtime:   mtime,
			Ctime:   ctime,
		}
		rng := rand.New(rand.NewSource(ptrSeed))
		for i := range ino.Direct {
			ino.Direct[i] = addr.BlockNo(rng.Uint32())
		}
		ino.Single = addr.BlockNo(rng.Uint32())
		ino.Double = addr.BlockNo(rng.Uint32())
		buf := make([]byte, InodeSize)
		ino.encode(buf)
		var got Inode
		got.decode(buf)
		return reflect.DeepEqual(*ino, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSeguseAndImapLayout round-trips the ifile entry formats.
func TestSeguseAndImapLayout(t *testing.T) {
	fSeg := func(flags, live, tag, avail uint32, mod int64) bool {
		s := Seguse{Flags: flags, LiveBytes: live, LastMod: mod, CacheTag: tag, Avail: avail}
		buf := make([]byte, SeguseSize)
		s.encode(buf)
		var got Seguse
		got.decode(buf)
		return got == s
	}
	if err := quick.Check(fSeg, nil); err != nil {
		t.Fatal(err)
	}
	fImap := func(a, slot, version uint32, atime int64) bool {
		e := ImapEntry{Addr: addr.BlockNo(a), Slot: slot, Version: version, Atime: atime}
		buf := make([]byte, ImapSize)
		e.encode(buf)
		var got ImapEntry
		got.decode(buf)
		return got == e
	}
	if err := quick.Check(fImap, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDirentLayout round-trips randomized directory entry lists.
func TestDirentLayout(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var ents []Dirent
		for i := 0; i < int(n%40); i++ {
			nameLen := rng.Intn(60) + 1
			name := make([]byte, nameLen)
			for j := range name {
				name[j] = byte('a' + rng.Intn(26))
			}
			ents = append(ents, Dirent{
				Inum: rng.Uint32()%100000 + 1,
				Type: FileType(rng.Intn(2) + 1),
				Name: string(name),
			})
		}
		data := encodeDirents(ents)
		if len(data)%BlockSize != 0 {
			return false
		}
		got := decodeDirents(data)
		if len(ents) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(ents, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperblockLayout(t *testing.T) {
	sb := Superblock{
		Magic:        superMagic,
		SegBlocks:    256,
		DiskSegs:     848,
		ReservedSegs: 2,
		MaxInodes:    4096,
		CacheSegs:    96,
		TableBlocks:  77,
		TertDevs:     []addr.Geom{{Vols: 32, SegsPerVol: 40}, {Vols: 2, SegsPerVol: 10}},
	}
	buf := make([]byte, BlockSize)
	sb.encode(buf)
	var got Superblock
	if err := got.decode(buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sb, got) {
		t.Fatalf("superblock round trip: %+v != %+v", got, sb)
	}
	// Corrupt magic.
	buf[0] ^= 1
	if err := got.decode(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCheckpointLayout(t *testing.T) {
	c := checkpoint{Serial: 42, Time: 1e12, CurSeg: 17, CurOff: 300, NextInum: 99, Region: 1}
	buf := make([]byte, BlockSize)
	c.encode(buf)
	var got checkpoint
	if !got.decode(buf) {
		t.Fatal("valid checkpoint rejected")
	}
	if got != c {
		t.Fatalf("round trip: %+v != %+v", got, c)
	}
	buf[3] ^= 0x80
	if got.decode(buf) {
		t.Fatal("corrupted checkpoint accepted")
	}
	// All-zero block (never written) must be invalid.
	zero := make([]byte, BlockSize)
	if got.decode(zero) {
		t.Fatal("zero checkpoint accepted")
	}
}

func TestDirentsDoNotSpanBlocks(t *testing.T) {
	// Entries with names sized to land near block boundaries never split
	// across blocks.
	var ents []Dirent
	for i := 0; i < 200; i++ {
		ents = append(ents, Dirent{Inum: uint32(i + 1), Type: TypeFile, Name: string(bytes.Repeat([]byte{'x'}, 60))})
	}
	data := encodeDirents(ents)
	got := decodeDirents(data)
	if !reflect.DeepEqual(ents, got) {
		t.Fatal("boundary-heavy dirent round trip failed")
	}
}
