package lfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/sim"
)

// TestTornLogWriteRecovery simulates a crash that tears the tail of the
// log: the last partial segment's data are corrupted on the media.
// Roll-forward must stop at the checksum mismatch, recovering everything
// up to the torn write and nothing after (§3: "when an incomplete partial
// segment is found, recovery is complete").
func TestTornLogWriteRecovery(t *testing.T) {
	k := sim.NewKernel()
	amap := addr.New(32, 64)
	disk := dev.NewDisk(k, dev.RZ57, int64(64*32), nil)
	durable := pattern(1, 6*BlockSize)
	k.RunProc(func(p *sim.Proc) {
		fs, err := Format(p, DiskDevice{disk}, amap, Options{MaxInodes: 128})
		if err != nil {
			t.Fatal(err)
		}
		writeFile(t, p, fs, "/durable", durable)
		if err := fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		// Post-checkpoint write, synced — then torn.
		writeFile(t, p, fs, "/torn", pattern(2, 8*BlockSize))
		if err := fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Tear the log: find the active segment and corrupt its most
		// recent partial segment's data blocks.
		var active addr.SegNo
		for s := fs.ReservedSegs(); s < amap.DiskSegs(); s++ {
			if fs.SegUsage(addr.SegNo(s)).Flags&SegActive != 0 {
				active = addr.SegNo(s)
			}
		}
		sc, err := fs.ReadSegment(p, active)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Offsets) == 0 {
			t.Fatal("no partial segments in active segment")
		}
		lastOff := sc.Offsets[len(sc.Offsets)-1]
		garbage := bytes.Repeat([]byte{0xDE}, BlockSize)
		if err := disk.WriteBlocks(p, int64(amap.BlockOf(active, lastOff+1)), garbage); err != nil {
			t.Fatal(err)
		}
	})
	// "Reboot" and mount: recovery must succeed and keep /durable.
	k.RunProc(func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{disk}, amap, Options{})
		if err != nil {
			t.Fatalf("mount after torn write: %v", err)
		}
		f, err := fs2.Open(p, "/durable")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(durable))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, durable) {
			t.Fatal("checkpointed data corrupted by torn-write recovery")
		}
		// The torn file may or may not have been recovered depending on
		// which psegment was torn — but the file system must stay
		// consistent: new writes work.
		writeFile(t, p, fs2, "/fresh", pattern(3, 4*BlockSize))
		if err := fs2.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCorruptedCheckpointFallsBack corrupts the newest checkpoint header;
// mount must fall back to the older one.
func TestCorruptedCheckpointFallsBack(t *testing.T) {
	k := sim.NewKernel()
	amap := addr.New(32, 64)
	disk := dev.NewDisk(k, dev.RZ57, int64(64*32), nil)
	data := pattern(4, 5*BlockSize)
	k.RunProc(func(p *sim.Proc) {
		fs, err := Format(p, DiskDevice{disk}, amap, Options{MaxInodes: 128})
		if err != nil {
			t.Fatal(err)
		}
		writeFile(t, p, fs, "/f", data)
		if err := fs.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Checkpoint(p); err != nil { // second checkpoint: both slots valid
			t.Fatal(err)
		}
		// Corrupt whichever checkpoint slot is newer (serial parity:
		// corrupt both candidate headers one at a time is overkill —
		// corrupt slot of the LAST checkpoint, serial fs.serial-1).
		// Both slots hold valid checkpoints; smash slot 1.
		garbage := bytes.Repeat([]byte{0xAA}, BlockSize)
		if err := disk.WriteBlocks(p, int64(amap.BlockOf(0, 1)), garbage); err != nil {
			t.Fatal(err)
		}
	})
	k.RunProc(func(p *sim.Proc) {
		fs2, err := Mount(p, DiskDevice{disk}, amap, Options{})
		if err != nil {
			t.Fatalf("mount with one corrupted checkpoint: %v", err)
		}
		f, err := fs2.Open(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data lost after checkpoint corruption")
		}
	})
}

// TestBothCheckpointsCorruptedFailsCleanly verifies mount reports an error
// (not a panic) when no valid checkpoint exists.
func TestBothCheckpointsCorruptedFailsCleanly(t *testing.T) {
	k := sim.NewKernel()
	amap := addr.New(32, 64)
	disk := dev.NewDisk(k, dev.RZ57, int64(64*32), nil)
	k.RunProc(func(p *sim.Proc) {
		if _, err := Format(p, DiskDevice{disk}, amap, Options{MaxInodes: 64}); err != nil {
			t.Fatal(err)
		}
		garbage := bytes.Repeat([]byte{0x55}, BlockSize)
		for slot := 1; slot <= 2; slot++ {
			if err := disk.WriteBlocks(p, int64(amap.BlockOf(0, slot)), garbage); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Mount(p, DiskDevice{disk}, amap, Options{}); err == nil {
			t.Fatal("mount succeeded without any valid checkpoint")
		}
	})
}

// TestDiskReadFailurePropagates injects a media error on the read path and
// verifies the error reaches the caller instead of corrupting state.
func TestDiskReadFailurePropagates(t *testing.T) {
	k := sim.NewKernel()
	amap := addr.New(32, 64)
	disk := dev.NewDisk(k, dev.RZ57, int64(64*32), nil)
	mediaErr := errors.New("bad sector")
	k.RunProc(func(p *sim.Proc) {
		fs, err := Format(p, DiskDevice{disk}, amap, Options{MaxInodes: 128})
		if err != nil {
			t.Fatal(err)
		}
		f := writeFile(t, p, fs, "/f", pattern(5, 8*BlockSize))
		if err := fs.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		disk.Fault = func(op string, blk int64) error {
			if op == "read" {
				return mediaErr
			}
			return nil
		}
		buf := make([]byte, BlockSize)
		if _, err := f.ReadAt(p, buf, 0); !errors.Is(err, mediaErr) {
			t.Fatalf("media error not propagated: %v", err)
		}
		disk.Fault = nil
		if _, err := f.ReadAt(p, buf, 0); err != nil && err != io.EOF {
			t.Fatalf("read after fault cleared: %v", err)
		}
	})
}
