package lfs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
)

// lbnInode is the sentinel "parent" of blocks whose pointer lives directly
// in the inode.
const lbnInode int32 = -1 << 30

// iget returns the in-memory inode, loading it from the log if needed.
// Loading may touch tertiary storage when the inode itself has migrated.
func (fs *FS) iget(p *sim.Proc, inum uint32) (*Inode, error) {
	if ino, ok := fs.inodes[inum]; ok {
		return ino, nil
	}
	if int(inum) >= len(fs.imap) {
		return nil, fmt.Errorf("lfs: inode %d out of range", inum)
	}
	e := fs.imap[inum]
	if e.Addr == addr.NilBlock {
		return nil, fmt.Errorf("lfs: inode %d is free: %w", inum, ErrNotFound)
	}
	data, err := fs.readBlockAt(p, e.Addr)
	if err != nil {
		return nil, err
	}
	ino := &Inode{}
	ino.decode(data[int(e.Slot)*InodeSize:])
	if ino.Inum != inum {
		return nil, fmt.Errorf("lfs: inode block at %d slot %d holds inum %d, want %d", e.Addr, e.Slot, ino.Inum, inum)
	}
	fs.inodes[inum] = ino
	return ino, nil
}

// markInodeDirty queues the inode for the next segment write.
func (fs *FS) markInodeDirty(ino *Inode) { fs.dirtyIno[ino.Inum] = true }

// iallocLocked allocates a fresh inode of the given type.
func (fs *FS) iallocLocked(typ FileType) (*Inode, error) {
	var inum uint32
	if n := len(fs.freeInums); n > 0 {
		inum = fs.freeInums[n-1]
		fs.freeInums = fs.freeInums[:n-1]
	} else if int(fs.nextInum) < len(fs.imap) {
		inum = fs.nextInum
		fs.nextInum++
	} else {
		return nil, ErrNoInodes
	}
	e := &fs.imap[inum]
	e.Version++
	e.Atime = fs.now()
	now := fs.now()
	ino := &Inode{
		Inum:    inum,
		Version: e.Version,
		Type:    typ,
		Nlink:   1,
		Mtime:   now,
		Ctime:   now,
		Single:  addr.NilBlock,
		Double:  addr.NilBlock,
	}
	for i := range ino.Direct {
		ino.Direct[i] = addr.NilBlock
	}
	fs.inodes[inum] = ino
	fs.markInodeDirty(ino)
	return ino, nil
}

// ifreeLocked releases an inode and all its blocks.
func (fs *FS) ifreeLocked(p *sim.Proc, ino *Inode) error {
	if err := fs.truncateLocked(p, ino, 0); err != nil {
		return err
	}
	e := &fs.imap[ino.Inum]
	if e.Addr != addr.NilBlock {
		fs.accountOld(e.Addr, InodeSize)
	}
	e.Addr = addr.NilBlock
	e.Version++
	delete(fs.inodes, ino.Inum)
	delete(fs.dirtyIno, ino.Inum)
	fs.freeInums = append(fs.freeInums, ino.Inum)
	return nil
}

// accounting: live-byte bookkeeping in the segment usage tables.

func (fs *FS) accountOld(a addr.BlockNo, n uint32) {
	if a == addr.NilBlock {
		return
	}
	if su := fs.seguseFor(a); su != nil {
		if su.LiveBytes >= n {
			su.LiveBytes -= n
		} else {
			su.LiveBytes = 0
		}
	}
}

func (fs *FS) accountNew(a addr.BlockNo, n uint32) {
	if a == addr.NilBlock {
		return
	}
	if su := fs.seguseFor(a); su != nil {
		su.LiveBytes += n
		su.LastMod = fs.now()
	}
}

// seguseFor resolves a block address to its usage entry (disk segment
// table or tertiary segment table).
func (fs *FS) seguseFor(a addr.BlockNo) *Seguse {
	seg := fs.amap.SegOf(a)
	if fs.amap.IsDiskSeg(seg) {
		return &fs.seguse[seg]
	}
	if idx, ok := fs.amap.TertIndex(seg); ok {
		return &fs.tseg[idx]
	}
	return nil
}

// Meta-block geometry helpers.

// parentLbn names the block holding the pointer to lbn: a meta lbn or
// lbnInode when the pointer lives in the inode itself.
func parentLbn(lbn int32) int32 {
	switch {
	case lbn >= 0 && lbn < NDirect:
		return lbnInode
	case lbn >= NDirect && int(lbn) < NDirect+PtrsPerBlock:
		return LbnSingle
	case lbn >= 0:
		i := (int(lbn) - NDirect - PtrsPerBlock) / PtrsPerBlock
		return LbnDoubleChild(i)
	case lbn == LbnSingle || lbn == LbnDoubleRoot:
		return lbnInode
	default: // double-indirect child
		return LbnDoubleRoot
	}
}

// slotInParent is the pointer index of lbn within its parent meta block.
func slotInParent(lbn int32) int {
	switch {
	case lbn >= NDirect && int(lbn) < NDirect+PtrsPerBlock:
		return int(lbn) - NDirect
	case lbn >= 0:
		return (int(lbn) - NDirect - PtrsPerBlock) % PtrsPerBlock
	default: // double child i at root slot i
		return int(-lbn - 3)
	}
}

func getPtr(b *buf, slot int) addr.BlockNo {
	return addr.BlockNo(binary.LittleEndian.Uint32(b.data[slot*4:]))
}

func putPtr(b *buf, slot int, a addr.BlockNo) {
	binary.LittleEndian.PutUint32(b.data[slot*4:], uint32(a))
}

// metaAddr reports the current media address of a meta block, without
// loading it. Returns NilBlock when the chain is unallocated.
func (fs *FS) metaAddr(p *sim.Proc, ino *Inode, metaLbn int32) (addr.BlockNo, error) {
	switch metaLbn {
	case LbnSingle:
		return ino.Single, nil
	case LbnDoubleRoot:
		return ino.Double, nil
	}
	// Double child: pointer lives in the root block.
	root, err := fs.getMeta(p, ino, LbnDoubleRoot, false)
	if err != nil {
		return addr.NilBlock, err
	}
	if root == nil {
		return addr.NilBlock, nil
	}
	return getPtr(root, slotInParent(metaLbn)), nil
}

// getMeta returns the buffer of a meta block. With create=false it returns
// (nil, nil) when the block does not exist; with create=true a zero block
// is created (callers dirty it when they store a pointer).
func (fs *FS) getMeta(p *sim.Proc, ino *Inode, metaLbn int32, create bool) (*buf, error) {
	if b := fs.lookupBuf(ino.Inum, metaLbn); b != nil {
		return b, nil
	}
	at, err := fs.metaAddr(p, ino, metaLbn)
	if err != nil {
		return nil, err
	}
	if at == addr.NilBlock {
		if !create {
			return nil, nil
		}
		// A freshly created meta block is born dirty: every creator is
		// about to store a pointer into it, and a clean zero block must
		// never be evicted before that happens.
		b := fs.insertBuf(ino.Inum, metaLbn, make([]byte, BlockSize), addr.NilBlock, true)
		return b, nil
	}
	return fs.getBlock(p, ino.Inum, metaLbn, at)
}

// blockPtr reports the current media address of data block lbn (NilBlock
// for holes and never-written blocks).
func (fs *FS) blockPtr(p *sim.Proc, ino *Inode, lbn int32) (addr.BlockNo, error) {
	if lbn < 0 || int64(lbn) >= MaxFileBlocks {
		return addr.NilBlock, ErrFileTooBig
	}
	if lbn < NDirect {
		return ino.Direct[lbn], nil
	}
	pl := parentLbn(lbn)
	parent, err := fs.getMeta(p, ino, pl, false)
	if err != nil {
		return addr.NilBlock, err
	}
	if parent == nil {
		return addr.NilBlock, nil
	}
	return getPtr(parent, slotInParent(lbn)), nil
}

// blockPtrCached resolves a data block pointer using only cached metadata
// (no device I/O). ok is false when an uncached indirect block would be
// needed — the read-clustering path stops extending there rather than
// stall the cluster on a metadata fetch.
func (fs *FS) blockPtrCached(ino *Inode, lbn int32) (addr.BlockNo, bool) {
	if lbn < 0 || int64(lbn) >= MaxFileBlocks {
		return addr.NilBlock, false
	}
	if lbn < NDirect {
		return ino.Direct[lbn], true
	}
	parent, ok := fs.bufs[bufKey{ino.Inum, parentLbn(lbn)}]
	if !ok {
		return addr.NilBlock, false
	}
	return getPtr(parent, slotInParent(lbn)), true
}

// setBlockPtr updates the pointer to data block lbn, creating the meta
// chain on demand, and returns the previous address.
func (fs *FS) setBlockPtr(p *sim.Proc, ino *Inode, lbn int32, a addr.BlockNo) (addr.BlockNo, error) {
	if lbn < 0 || int64(lbn) >= MaxFileBlocks {
		return addr.NilBlock, ErrFileTooBig
	}
	if lbn < NDirect {
		old := ino.Direct[lbn]
		ino.Direct[lbn] = a
		fs.markInodeDirty(ino)
		return old, nil
	}
	parent, err := fs.getMeta(p, ino, parentLbn(lbn), true)
	if err != nil {
		return addr.NilBlock, err
	}
	slot := slotInParent(lbn)
	old := getPtr(parent, slot)
	putPtr(parent, slot, a)
	fs.markDirty(parent)
	return old, nil
}

// setParentPtr records a meta or data block's new address in its parent.
// The parent must already be dirty (the segment writer guarantees this via
// its pre-pass), except when the parent is the inode itself.
func (fs *FS) setParentPtr(ino *Inode, lbn int32, a addr.BlockNo) {
	pl := parentLbn(lbn)
	if pl == lbnInode {
		switch {
		case lbn >= 0:
			ino.Direct[lbn] = a
		case lbn == LbnSingle:
			ino.Single = a
		case lbn == LbnDoubleRoot:
			ino.Double = a
		}
		fs.markInodeDirty(ino)
		return
	}
	parent := fs.bufs[bufKey{ino.Inum, pl}]
	if parent == nil || !parent.dirty {
		state := "missing"
		if parent != nil {
			state = fmt.Sprintf("present dirty=%v addr=%d", parent.dirty, parent.addr)
		}
		panic(fmt.Sprintf("lfs: parent %d of block (%d,%d) not dirty at relocation: %s", pl, ino.Inum, lbn, state))
	}
	putPtr(parent, slotInParent(lbn), a)
}

// truncateLocked frees blocks beyond size (in bytes) and sets the file
// size. It handles data blocks and any meta blocks that become empty.
func (fs *FS) truncateLocked(p *sim.Proc, ino *Inode, size uint64) error {
	oldBlocks := int32(blocksFor(int(ino.Size)))
	newBlocks := int32(blocksFor(int(size)))
	for lbn := newBlocks; lbn < oldBlocks; lbn++ {
		old, err := fs.blockPtr(p, ino, lbn)
		if err != nil {
			return err
		}
		if old != addr.NilBlock {
			fs.accountOld(old, BlockSize)
			if _, err := fs.setBlockPtr(p, ino, lbn, addr.NilBlock); err != nil {
				return err
			}
		}
		if b, ok := fs.bufs[bufKey{ino.Inum, lbn}]; ok {
			if b.dirty {
				b.dirty = false
				fs.dirtyBytes -= BlockSize
			}
			fs.dropBuf(b)
		}
	}
	// Free meta blocks that no longer cover any data block.
	if newBlocks <= NDirect {
		fs.freeMeta(p, ino, LbnSingle)
	}
	firstDouble := int32(NDirect + PtrsPerBlock)
	if newBlocks <= firstDouble {
		// All double children and the root go.
		maxChild := (int(oldBlocks) - NDirect - PtrsPerBlock + PtrsPerBlock - 1) / PtrsPerBlock
		for i := 0; i < maxChild; i++ {
			fs.freeMeta(p, ino, LbnDoubleChild(i))
		}
		fs.freeMeta(p, ino, LbnDoubleRoot)
	} else {
		liveChildren := (int(newBlocks) - NDirect - PtrsPerBlock + PtrsPerBlock - 1) / PtrsPerBlock
		maxChild := (int(oldBlocks) - NDirect - PtrsPerBlock + PtrsPerBlock - 1) / PtrsPerBlock
		for i := liveChildren; i < maxChild; i++ {
			fs.freeMeta(p, ino, LbnDoubleChild(i))
		}
	}
	ino.Size = size
	ino.Mtime = fs.now()
	fs.markInodeDirty(ino)
	return nil
}

// freeMeta releases one meta block if present.
func (fs *FS) freeMeta(p *sim.Proc, ino *Inode, metaLbn int32) {
	at, err := fs.metaAddr(p, ino, metaLbn)
	if err != nil {
		return
	}
	if at != addr.NilBlock {
		fs.accountOld(at, BlockSize)
	}
	if b, ok := fs.bufs[bufKey{ino.Inum, metaLbn}]; ok {
		if b.dirty {
			b.dirty = false
			fs.dirtyBytes -= BlockSize
		}
		fs.dropBuf(b)
	}
	// Clear the parent pointer.
	switch metaLbn {
	case LbnSingle:
		if ino.Single != addr.NilBlock {
			ino.Single = addr.NilBlock
			fs.markInodeDirty(ino)
		}
	case LbnDoubleRoot:
		if ino.Double != addr.NilBlock {
			ino.Double = addr.NilBlock
			fs.markInodeDirty(ino)
		}
	default:
		if root, _ := fs.getMeta(p, ino, LbnDoubleRoot, false); root != nil {
			slot := slotInParent(metaLbn)
			if getPtr(root, slot) != addr.NilBlock {
				putPtr(root, slot, addr.NilBlock)
				fs.markDirty(root)
			}
		}
	}
}
