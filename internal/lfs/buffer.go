package lfs

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
)

// The buffer cache holds file blocks keyed by (inode, logical block
// number); negative lbns name a file's indirect blocks. Keying by identity
// rather than device address is essential in a log-structured file system:
// a dirty block has no address yet (it gets one when its partial segment is
// assembled), and relocation by the cleaner changes addresses without
// changing identity.

type bufKey struct {
	inum uint32
	lbn  int32
}

type buf struct {
	key   bufKey
	data  []byte
	dirty bool
	// addr is the media address the block was read from or last written
	// to; NilBlock for newly created blocks.
	addr addr.BlockNo

	prev, next *buf // LRU list; head = most recently used
}

// lruRemove unlinks b from the LRU list.
func (fs *FS) lruRemove(b *buf) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if fs.lruHead == b {
		fs.lruHead = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if fs.lruTail == b {
		fs.lruTail = b.prev
	}
	b.prev, b.next = nil, nil
}

// lruFront moves b to the most-recently-used position.
func (fs *FS) lruFront(b *buf) {
	if fs.lruHead == b {
		return
	}
	fs.lruRemove(b)
	b.next = fs.lruHead
	if fs.lruHead != nil {
		fs.lruHead.prev = b
	}
	fs.lruHead = b
	if fs.lruTail == nil {
		fs.lruTail = b
	}
}

// evictLocked discards clean buffers from the LRU tail until the cache
// fits its memory budget. Dirty buffers are pinned, and so is the MRU
// head: it is the buffer a caller just inserted and may still be about to
// mutate — evicting it would orphan the caller's pointer and lose the
// update.
func (fs *FS) evictLocked() {
	for fs.bufBytes > fs.opts.BufferBytes {
		v := fs.lruTail
		for v != nil && (v.dirty || v == fs.lruHead) {
			v = v.prev
		}
		if v == nil {
			return // everything dirty; flush will drain
		}
		fs.dropBuf(v)
	}
}

func (fs *FS) dropBuf(b *buf) {
	fs.lruRemove(b)
	delete(fs.bufs, b.key)
	fs.bufBytes -= BlockSize
}

// lookupBuf finds a cached block without touching the device.
func (fs *FS) lookupBuf(inum uint32, lbn int32) *buf {
	b, ok := fs.bufs[bufKey{inum, lbn}]
	if ok {
		fs.lruFront(b)
		fs.stats.CacheHits++
		return b
	}
	fs.stats.CacheMisses++
	return nil
}

// insertBuf adds a block to the cache. data must be BlockSize long and is
// owned by the cache afterwards.
func (fs *FS) insertBuf(inum uint32, lbn int32, data []byte, at addr.BlockNo, dirty bool) *buf {
	key := bufKey{inum, lbn}
	if old, ok := fs.bufs[key]; ok {
		fs.dropBuf(old)
		if old.dirty {
			fs.dirtyBytes -= BlockSize
		}
	}
	b := &buf{key: key, data: data, addr: at, dirty: dirty}
	fs.bufs[key] = b
	fs.bufBytes += BlockSize
	if dirty {
		fs.dirtyBytes += BlockSize
	}
	fs.lruFront(b)
	fs.evictLocked()
	return b
}

// markDirty flags a buffer for the next segment write.
func (fs *FS) markDirty(b *buf) {
	if !b.dirty {
		b.dirty = true
		fs.dirtyBytes += BlockSize
	}
}

// readBlockAt performs a timed device read of a single block.
func (fs *FS) readBlockAt(p *sim.Proc, at addr.BlockNo) ([]byte, error) {
	data := make([]byte, BlockSize)
	if err := fs.dev.ReadBlocks(p, at, data); err != nil {
		return nil, err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += BlockSize
	return data, nil
}

// getBlock returns the buffer for (inum, lbn), reading it from the device
// at address at when not cached. If at is NilBlock a zero block is
// created (not yet dirty — callers mark it).
func (fs *FS) getBlock(p *sim.Proc, inum uint32, lbn int32, at addr.BlockNo) (*buf, error) {
	if b := fs.lookupBuf(inum, lbn); b != nil {
		return b, nil
	}
	var data []byte
	if at == addr.NilBlock {
		data = make([]byte, BlockSize)
	} else {
		var err error
		data, err = fs.readBlockAt(p, at)
		if err != nil {
			return nil, err
		}
	}
	return fs.insertBuf(inum, lbn, data, at, false), nil
}

// dirtyList returns the dirty buffers partitioned into data (lbn >= 0) and
// meta (lbn < 0) sets, each sorted for deterministic layout.
func (fs *FS) dirtyList() (data, meta []*buf) {
	for _, b := range fs.bufs {
		if !b.dirty {
			continue
		}
		if b.key.lbn >= 0 {
			data = append(data, b)
		} else {
			meta = append(meta, b)
		}
	}
	sortBufs(data)
	sortBufs(meta)
	return data, meta
}

func sortBufs(bs []*buf) {
	// Insertion-friendly ordering: by inum, then lbn ascending (meta
	// lbns are negative; more deeply nested blocks have lower lbns and
	// sort first, which is harmless since addresses are pre-assigned).
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && less(bs[j].key, bs[j-1].key); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

func less(a, b bufKey) bool {
	if a.inum != b.inum {
		return a.inum < b.inum
	}
	return a.lbn < b.lbn
}

// DirtyBytes reports bytes of dirty data awaiting a segment write.
func (fs *FS) DirtyBytes() int { return fs.dirtyBytes }

// String renders cache occupancy for debugging.
func (fs *FS) cacheString() string {
	return fmt.Sprintf("bufcache: %d/%d bytes, %d dirty", fs.bufBytes, fs.opts.BufferBytes, fs.dirtyBytes)
}
