package lfs

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/sim"
)

// The cleaner garbage-collects free space: it selects dirty segments,
// copies their still-live blocks to the tail of the log, and marks the
// emptied segments clean (§3). In 4.4BSD LFS the cleaner is a user-level
// process speaking to the kernel through lfs_bmapv/lfs_markv; here the
// same operations are methods, and the cleaner daemon is a sim process.

// BlockRef names one block instance in the log: the file it belonged to,
// the file's inode version, its logical position, and the address it was
// found at. Bmapv declares a ref live iff the file still maps that lbn to
// that address.
type BlockRef struct {
	Inum    uint32
	Version uint32
	Lbn     int32
	Addr    addr.BlockNo
}

// InodeRef names one inode instance found in an inode block.
type InodeRef struct {
	Inum    uint32
	Version uint32
	Addr    addr.BlockNo
	Slot    uint32
}

// Bmapv reports, for each ref, whether it is the live instance of its
// block (the lfs_bmapv system call of §6.7).
func (fs *FS) Bmapv(p *sim.Proc, refs []BlockRef) ([]bool, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	out := make([]bool, len(refs))
	for i, r := range refs {
		live, err := fs.refLiveLocked(p, r)
		if err != nil {
			return nil, err
		}
		out[i] = live
	}
	return out, nil
}

func (fs *FS) refLiveLocked(p *sim.Proc, r BlockRef) (bool, error) {
	if int(r.Inum) >= len(fs.imap) {
		return false, nil
	}
	e := fs.imap[r.Inum]
	if e.Addr == addr.NilBlock || e.Version != r.Version {
		return false, nil
	}
	ino, err := fs.iget(p, r.Inum)
	if err != nil {
		return false, nil // inode vanished: not live
	}
	var cur addr.BlockNo
	if r.Lbn >= 0 {
		cur, err = fs.blockPtr(p, ino, r.Lbn)
		if err != nil {
			return false, nil
		}
	} else {
		cur, err = fs.metaAddr(p, ino, r.Lbn)
		if err != nil {
			return false, nil
		}
	}
	return cur == r.Addr, nil
}

// SegmentContents describes a parsed on-media segment.
type SegmentContents struct {
	Seg     addr.SegNo
	Psegs   []*Summary
	Blocks  []BlockRef // every data/meta block instance with its address
	Inodes  []InodeRef // every inode instance
	Raw     []byte     // the whole segment image
	Offsets []int      // block offset of each pseg's summary
}

// ReadSegment reads and parses a whole segment (one large timed transfer —
// exactly what the cleaner and migrator do).
func (fs *FS) ReadSegment(p *sim.Proc, seg addr.SegNo) (*SegmentContents, error) {
	segBytes := fs.amap.SegBlocks() * BlockSize
	raw := make([]byte, segBytes)
	if err := fs.dev.ReadBlocks(p, fs.amap.BlockOf(seg, 0), raw); err != nil {
		return nil, err
	}
	fs.stats.DevReads++
	fs.stats.BytesRead += int64(segBytes)
	sc := &SegmentContents{Seg: seg, Raw: raw}
	off := 0
	for off+1 <= fs.amap.SegBlocks() {
		sum, err := DecodeSummary(raw[off*BlockSize : (off+1)*BlockSize])
		if err != nil {
			break // end of valid psegs in this segment
		}
		n := int(sum.NBlocks)
		if n < 1 || off+n > fs.amap.SegBlocks() {
			break
		}
		if crc32Sum(raw[(off+1)*BlockSize:(off+n)*BlockSize]) != sum.DataSum {
			break
		}
		sc.Psegs = append(sc.Psegs, sum)
		sc.Offsets = append(sc.Offsets, off)
		base := fs.amap.BlockOf(seg, off)
		bi := 1 // block index within pseg (0 is the summary)
		for _, fi := range sum.Finfos {
			for _, lbn := range fi.Lbns {
				sc.Blocks = append(sc.Blocks, BlockRef{
					Inum:    fi.Inum,
					Version: fi.Version,
					Lbn:     lbn,
					Addr:    base + addr.BlockNo(bi),
				})
				bi++
			}
		}
		for _, ia := range sum.InoAddrs {
			idx := fs.amap.OffOf(ia)
			if fs.amap.SegOf(ia) != seg || idx >= fs.amap.SegBlocks() {
				continue
			}
			blk := raw[idx*BlockSize : (idx+1)*BlockSize]
			for slot := 0; slot < InodesPerBlock; slot++ {
				var ino Inode
				ino.decode(blk[slot*InodeSize:])
				if ino.Inum != 0 {
					sc.Inodes = append(sc.Inodes, InodeRef{
						Inum:    ino.Inum,
						Version: ino.Version,
						Addr:    ia,
						Slot:    uint32(slot),
					})
				}
			}
		}
		off += n
	}
	return sc, nil
}

// BlockData returns the content of a block instance within a parsed
// segment.
func (sc *SegmentContents) BlockData(amap *addr.Map, a addr.BlockNo) []byte {
	off := amap.OffOf(a)
	return sc.Raw[off*BlockSize : (off+1)*BlockSize]
}

// CleanSegment reclaims one dirty segment: live blocks are re-dirtied in
// the cache (relocating them at the next segment write, the lfs_markv
// mechanism) and live inodes re-marked. The caller must flush before the
// segment is reusable; CleanSegments does both.
func (fs *FS) cleanSegmentLocked(p *sim.Proc, seg addr.SegNo) (relocated int, err error) {
	su := &fs.seguse[seg]
	if su.Flags&SegDirty == 0 || su.Flags&(SegActive|SegCached|SegNoStore) != 0 {
		return 0, fmt.Errorf("lfs: segment %d not cleanable (flags %#x)", seg, su.Flags)
	}
	sc, err := fs.ReadSegment(p, seg)
	if err != nil {
		return 0, err
	}
	for _, r := range sc.Blocks {
		live, err := fs.refLiveLocked(p, r)
		if err != nil {
			return relocated, err
		}
		if !live {
			continue
		}
		// Skip if a dirty (newer) copy is already in the cache.
		if b, ok := fs.bufs[bufKey{r.Inum, r.Lbn}]; ok {
			fs.markDirty(b)
		} else {
			data := make([]byte, BlockSize)
			copy(data, sc.BlockData(fs.amap, r.Addr))
			nb := fs.insertBuf(r.Inum, r.Lbn, data, r.Addr, false)
			fs.markDirty(nb)
		}
		relocated++
	}
	for _, ir := range sc.Inodes {
		if int(ir.Inum) >= len(fs.imap) {
			continue
		}
		e := fs.imap[ir.Inum]
		if e.Addr == ir.Addr && e.Slot == ir.Slot && e.Version == ir.Version {
			ino, err := fs.iget(p, ir.Inum)
			if err != nil {
				continue
			}
			fs.markInodeDirty(ino)
			relocated++
		}
	}
	fs.stats.BlocksRelocated += int64(relocated)
	return relocated, nil
}

// markCleanLocked queues a reclaimed segment for return to the clean
// pool. The segment keeps its dirty flag — and stays unallocatable —
// until the next checkpoint commits it (commitCleanedLocked): the last
// durable checkpoint's tables still hold pointers into the segment, so
// reusing it before a new checkpoint lands would let a crash recover
// into overwritten data.
func (fs *FS) markCleanLocked(seg addr.SegNo) {
	if fs.pendingCleanSet == nil {
		fs.pendingCleanSet = make(map[addr.SegNo]bool)
	}
	if fs.pendingCleanSet[seg] {
		return
	}
	fs.pendingCleanSet[seg] = true
	fs.pendingClean = append(fs.pendingClean, seg)
	fs.stats.SegsCleaned++
}

// CleanSegments cleans the given segments: relocates live data, flushes,
// and marks them clean. It returns the number of blocks relocated.
func (fs *FS) CleanSegments(p *sim.Proc, segs []addr.SegNo) (int, error) {
	fs.lock.Acquire(p)
	defer fs.lock.Release(p)
	return fs.cleanSegmentsLocked(p, segs)
}

func (fs *FS) cleanSegmentsLocked(p *sim.Proc, segs []addr.SegNo) (int, error) {
	total := 0
	for _, seg := range segs {
		n, err := fs.cleanSegmentLocked(p, seg)
		if err != nil {
			return total, err
		}
		total += n
	}
	if err := fs.flushLocked(p, false); err != nil {
		return total, err
	}
	for _, seg := range segs {
		fs.markCleanLocked(seg)
	}
	// Commit the reclaimed segments with a table checkpoint (no further
	// flush needed: the relocation was just flushed, and table updates
	// happen at write time, so the in-memory tables describe the media).
	// This is what makes the cleaned segments allocatable again — see
	// markCleanLocked.
	if len(fs.pendingClean) > 0 {
		if err := fs.writeCheckpointLocked(p); err != nil {
			return total, err
		}
	}
	return total, nil
}

// SelectCleanable ranks dirty segments for cleaning. Following Sprite/BSD
// LFS, segments are ordered by a cost-benefit ratio — free space gained
// times age over cost — with a pure least-live fallback for young file
// systems.
func (fs *FS) SelectCleanable(max int) []addr.SegNo {
	type cand struct {
		seg   addr.SegNo
		score float64
	}
	segBytes := uint32(fs.amap.SegBlocks() * BlockSize)
	now := fs.now()
	var cands []cand
	for i := range fs.seguse {
		su := &fs.seguse[i]
		if su.Flags&SegDirty == 0 || su.Flags&(SegActive|SegCached|SegNoStore) != 0 {
			continue
		}
		if fs.pendingCleanSet[addr.SegNo(i)] {
			continue // already cleaned, awaiting checkpoint commit
		}
		if fs.migrateBusy[addr.SegNo(i)] {
			continue // a migration stream is copying out of this segment
		}
		live := su.LiveBytes
		if live > segBytes {
			live = segBytes
		}
		u := float64(live) / float64(segBytes)
		age := float64(now-su.LastMod) + 1
		score := (1 - u) * age / (1 + u)
		cands = append(cands, cand{addr.SegNo(i), score})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	if max > 0 && len(cands) > max {
		cands = cands[:max]
	}
	out := make([]addr.SegNo, len(cands))
	for i, c := range cands {
		out[i] = c.seg
	}
	return out
}

// ReserveSegments marks segments as owned by an in-flight migration
// stream: SelectCleanable and SelectLeastLive skip them until
// ReleaseSegments, so a concurrently running cleaner and migrator operate
// on disjoint segment sets. Reservations are advisory (they only steer
// the cleaner's choice) and need no lock beyond the caller already
// running inside the simulation kernel.
func (fs *FS) ReserveSegments(segs []addr.SegNo) {
	if fs.migrateBusy == nil {
		fs.migrateBusy = make(map[addr.SegNo]bool)
	}
	for _, s := range segs {
		fs.migrateBusy[s] = true
	}
}

// ReleaseSegments drops reservations made by ReserveSegments.
func (fs *FS) ReleaseSegments(segs []addr.SegNo) {
	for _, s := range segs {
		delete(fs.migrateBusy, s)
	}
}

// cleanerReserve is the number of clean segments normal writes may not
// consume: the cleaner needs headroom to copy live data forward. Without a
// reserve a full disk deadlocks (cleaning itself requires free segments).
const cleanerReserve = 3

// SelectLeastLive ranks dirty segments purely by live bytes, fewest first
// — the emergency choice, minimizing the data the cleaner must relocate.
func (fs *FS) SelectLeastLive(max int) []addr.SegNo {
	type cand struct {
		seg  addr.SegNo
		live uint32
	}
	var cands []cand
	for i := range fs.seguse {
		su := &fs.seguse[i]
		if su.Flags&SegDirty == 0 || su.Flags&(SegActive|SegCached|SegNoStore) != 0 {
			continue
		}
		if fs.pendingCleanSet[addr.SegNo(i)] {
			continue // already cleaned, awaiting checkpoint commit
		}
		if fs.migrateBusy[addr.SegNo(i)] {
			continue // a migration stream is copying out of this segment
		}
		cands = append(cands, cand{addr.SegNo(i), su.LiveBytes})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].live < cands[b].live })
	if max > 0 && len(cands) > max {
		cands = cands[:max]
	}
	out := make([]addr.SegNo, len(cands))
	for i, c := range cands {
		out[i] = c.seg
	}
	return out
}

// AttachCleaner wires a synchronous emergency cleaner into the allocator
// and returns a function suitable for running as a cleaner daemon: it
// keeps the number of clean segments between low and high water marks.
func (fs *FS) AttachCleaner(low, high int) func(p *sim.Proc) {
	fs.EmergencyClean = func(p *sim.Proc) bool {
		// Lock already held by the allocator's caller. Clean one
		// segment at a time, least live data first, so relocation
		// pressure on the (scarce) clean pool stays minimal.
		segs := fs.SelectLeastLive(1)
		if len(segs) == 0 {
			return false
		}
		// Success means one more segment was reclaimed (and, as a side
		// effect, the inner flush drained all dirty data); each failure
		// or exhaustion of cleanable segments stops the retry loop.
		_, err := fs.cleanSegmentsLocked(p, segs)
		return err == nil
	}
	return func(p *sim.Proc) {
		for {
			p.Sleep(cleanerPollInterval)
			if fs.CleanSegs() >= low {
				continue
			}
			for fs.CleanSegs() < high {
				segs := fs.SelectCleanable(4)
				if len(segs) == 0 {
					break
				}
				if _, err := fs.CleanSegments(p, segs); err != nil {
					break
				}
			}
		}
	}
}

const cleanerPollInterval = 1e9 // 1 virtual second
