package lfs

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/sim"
)

// The segment writer gathers all dirty blocks and inodes and appends them
// to the log as one or more partial segments, each written with a single
// large device transfer — the mechanism that gives LFS its sequential
// write performance (§3).

// psegPlan is one planned partial segment.
type psegPlan struct {
	seg       addr.SegNo
	off       int    // block offset of the summary within seg
	bufs      []*buf // content blocks, in order
	inoBlocks int    // inode blocks appended after the content blocks
	inums     []uint32
}

// flushLocked writes all dirty state to the log. checkpointFlag marks the
// resulting partial segments as checkpoint-generated.
func (fs *FS) flushLocked(p *sim.Proc, checkpointFlag bool) error {
	if fs.inFlush {
		panic("lfs: recursive flush")
	}
	for {
		// Transitively dirty the parents of every dirty block, so that
		// relocation can update pointers wholly within the dirty set.
		if err := fs.dirtyParents(p); err != nil {
			return err
		}
		data, meta := fs.dirtyList()
		inums := fs.dirtyInums(data, meta)
		if len(data)+len(meta)+len(inums) == 0 {
			return nil
		}
		blocks := append(append([]*buf{}, data...), meta...)
		inoBlocks := (len(inums) + InodesPerBlock - 1) / InodesPerBlock
		units := len(blocks) + inoBlocks
		perSeg := fs.amap.SegBlocks() - 1
		needSegs := (units+perSeg-1)/perSeg + 1
		if !fs.inEmergency {
			// Normal writes may not dip into the cleaner's reserve:
			// cleaning needs free segments to copy live data into.
			needSegs += cleanerReserve
		}
		if fs.nclean < needSegs {
			if fs.EmergencyClean == nil || fs.inEmergency {
				return ErrNoSpace
			}
			fs.inEmergency = true
			ok := fs.EmergencyClean(p)
			fs.inEmergency = false
			if !ok {
				return ErrNoSpace
			}
			continue // the cleaner flushed and freed space; recompute
		}
		return fs.writePsegs(p, blocks, inums, inoBlocks, checkpointFlag)
	}
}

// dirtyParents loads and dirties the ancestors of every dirty block, so
// relocation can update pointers wholly within the dirty set. The loop
// iterates until no unprocessed dirty block remains (dirtying a parent can
// surface a grandparent).
func (fs *FS) dirtyParents(p *sim.Proc) error {
	seen := make(map[bufKey]bool)
	for {
		var todo []bufKey
		for k, b := range fs.bufs {
			if b.dirty && !seen[k] {
				todo = append(todo, k)
			}
		}
		if len(todo) == 0 {
			return nil
		}
		for _, k := range todo {
			seen[k] = true
			pl := parentLbn(k.lbn)
			if pl == lbnInode {
				continue
			}
			ino, err := fs.iget(p, k.inum)
			if err != nil {
				return fmt.Errorf("lfs: dirty block for unloadable inode %d: %w", k.inum, err)
			}
			parent, err := fs.getMeta(p, ino, pl, true)
			if err != nil {
				return err
			}
			fs.markDirty(parent)
		}
	}
}

// dirtyInums is the sorted set of inodes to write: explicitly dirty ones
// plus the owner of every dirty block.
func (fs *FS) dirtyInums(data, meta []*buf) []uint32 {
	set := make(map[uint32]bool, len(fs.dirtyIno))
	for i := range fs.dirtyIno {
		set[i] = true
	}
	for _, b := range data {
		set[b.key.inum] = true
	}
	for _, b := range meta {
		set[b.key.inum] = true
	}
	out := make([]uint32, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// writePsegs plans, relocates, serializes and writes the partial segments.
func (fs *FS) writePsegs(p *sim.Proc, blocks []*buf, inums []uint32, inoBlocks int, checkpointFlag bool) error {
	fs.inFlush = true
	defer func() { fs.inFlush = false }()

	// Plan: fill segments greedily; inode blocks come last.
	var plans []psegPlan
	seg, off := fs.curSeg, fs.curOff
	chosen := map[addr.SegNo]bool{}
	bi := 0
	inosLeft := inoBlocks
	for bi < len(blocks) || inosLeft > 0 {
		avail := fs.amap.SegBlocks() - off - 1
		if avail < 1 {
			next, err := fs.pickSegment(chosen)
			if err != nil {
				return err
			}
			chosen[next] = true
			seg, off = next, 0
			avail = fs.amap.SegBlocks() - 1
		}
		pl := psegPlan{seg: seg, off: off}
		take := len(blocks) - bi
		if take > avail {
			take = avail
		}
		pl.bufs = blocks[bi : bi+take]
		bi += take
		avail -= take
		if bi == len(blocks) && inosLeft > 0 && avail > 0 {
			n := inosLeft
			if n > avail {
				n = avail
			}
			pl.inoBlocks = n
			inosLeft -= n
		}
		off += 1 + len(pl.bufs) + pl.inoBlocks
		if len(pl.bufs)+pl.inoBlocks > 0 {
			plans = append(plans, pl)
		}
	}
	if len(plans) == 0 {
		return nil
	}
	// If the flush exhausts its final segment, the next pseg must open a
	// fresh segment — pick it now so the last summary can thread to it.
	// Roll-forward follows the log through Next pointers only; a
	// self-pointing Next in a full segment would end the chain and
	// silently drop everything synced after the boundary.
	var nextSeg addr.SegNo
	haveNext := false
	if fs.amap.SegBlocks()-off-1 < 1 {
		if next, err := fs.pickSegment(chosen); err == nil {
			chosen[next] = true
			nextSeg, haveNext = next, true
		}
	}
	// The inodes land in the trailing partial segments; attach the inum
	// list to the plans that carry inode blocks.
	{
		rest := inums
		for i := range plans {
			if plans[i].inoBlocks == 0 {
				continue
			}
			n := plans[i].inoBlocks * InodesPerBlock
			if n > len(rest) {
				n = len(rest)
			}
			plans[i].inums = rest[:n]
			rest = rest[n:]
		}
	}

	now := fs.now()
	for pi := range plans {
		pl := &plans[pi]
		base := fs.amap.BlockOf(pl.seg, pl.off)
		// Commit segment-state transitions.
		if pl.seg != fs.curSeg {
			cur := &fs.seguse[fs.curSeg]
			cur.Flags &^= SegActive
			cur.Flags |= SegDirty
			nu := &fs.seguse[pl.seg]
			if nu.Flags != 0 {
				panic(fmt.Sprintf("lfs: planned segment %d not clean (flags %#x)", pl.seg, nu.Flags))
			}
			nu.Flags = SegActive
			fs.nclean--
			fs.curSeg = pl.seg
		}
		fs.curOff = pl.off + 1 + len(pl.bufs) + pl.inoBlocks

		// Relocate content blocks: assign addresses, update parents,
		// adjust live-byte accounting.
		sum := &Summary{
			Next:    pl.seg,
			Create:  now,
			Serial:  fs.serial,
			NBlocks: uint16(1 + len(pl.bufs) + pl.inoBlocks),
		}
		if checkpointFlag {
			sum.Flags |= SumCheckpoint
		}
		if pi+1 < len(plans) {
			sum.Next = plans[pi+1].seg
		} else if haveNext {
			sum.Next = nextSeg
		}
		content := make([]byte, (len(pl.bufs)+pl.inoBlocks)*BlockSize)
		for i, b := range pl.bufs {
			na := base + addr.BlockNo(1+i)
			ino := fs.inodes[b.key.inum]
			if ino == nil {
				panic(fmt.Sprintf("lfs: dirty block (%d,%d) without in-memory inode", b.key.inum, b.key.lbn))
			}
			fs.setParentPtr(ino, b.key.lbn, na)
			fs.accountOld(b.addr, BlockSize)
			fs.accountNew(na, BlockSize)
			b.addr = na
			copy(content[i*BlockSize:], b.data)
			// Group into FINFOs by file.
			if n := len(sum.Finfos); n > 0 && sum.Finfos[n-1].Inum == b.key.inum {
				sum.Finfos[n-1].Lbns = append(sum.Finfos[n-1].Lbns, b.key.lbn)
			} else {
				sum.Finfos = append(sum.Finfos, Finfo{
					Inum:    b.key.inum,
					Version: fs.imap[b.key.inum].Version,
					Lbns:    []int32{b.key.lbn},
				})
			}
		}
		// Serialize inodes into the trailing inode blocks.
		for ib := 0; ib < pl.inoBlocks; ib++ {
			na := base + addr.BlockNo(1+len(pl.bufs)+ib)
			sum.InoAddrs = append(sum.InoAddrs, na)
			blkOff := (len(pl.bufs) + ib) * BlockSize
			for s := 0; s < InodesPerBlock; s++ {
				idx := ib*InodesPerBlock + s
				if idx >= len(pl.inums) {
					break
				}
				inum := pl.inums[idx]
				ino := fs.inodes[inum]
				if ino == nil {
					panic(fmt.Sprintf("lfs: dirty inode %d not in memory", inum))
				}
				ino.encode(content[blkOff+s*InodeSize:])
				e := &fs.imap[inum]
				if e.Addr != addr.NilBlock {
					fs.accountOld(e.Addr, InodeSize)
				}
				e.Addr = na
				e.Slot = uint32(s)
				fs.accountNew(na, InodeSize)
			}
		}
		sum.DataSum = crc32Sum(content)
		out := make([]byte, BlockSize+len(content))
		if err := EncodeSummary(sum, out[:BlockSize]); err != nil {
			return err
		}
		copy(out[BlockSize:], content)
		fs.chargeCopy(p, len(out), fs.opts.AssemblyCopyRate)
		if err := fs.dev.WriteBlocks(p, base, out); err != nil {
			return err
		}
		fs.stats.DevWrites++
		fs.stats.BytesWritten += int64(len(out))
		fs.stats.PartialSegs++
		su := &fs.seguse[pl.seg]
		su.Flags |= SegDirty
		su.LastMod = now
		su.LiveBytes += BlockSize // the summary block itself
		// Mark written blocks clean.
		for _, b := range pl.bufs {
			if b.dirty {
				b.dirty = false
				fs.dirtyBytes -= BlockSize
			}
		}
	}
	if haveNext {
		// Commit the pre-picked segment as the new log head; the last
		// written summary already threads to it.
		cur := &fs.seguse[fs.curSeg]
		cur.Flags &^= SegActive
		cur.Flags |= SegDirty
		nu := &fs.seguse[nextSeg]
		if nu.Flags != 0 {
			panic(fmt.Sprintf("lfs: pre-picked segment %d not clean (flags %#x)", nextSeg, nu.Flags))
		}
		nu.Flags = SegActive
		fs.nclean--
		fs.curSeg = nextSeg
		fs.curOff = 0
	}
	for _, inum := range inums {
		delete(fs.dirtyIno, inum)
	}
	fs.stats.Flushes++
	fs.evictLocked()
	return nil
}

// pickSegment chooses the next clean segment for the log, excluding
// segments already chosen in this flush.
func (fs *FS) pickSegment(chosen map[addr.SegNo]bool) (addr.SegNo, error) {
	n := addr.SegNo(fs.amap.DiskSegs())
	for i := addr.SegNo(1); i <= n; i++ {
		s := (fs.curSeg + i) % n
		if fs.seguse[s].Flags == 0 && !chosen[s] {
			return s, nil
		}
	}
	return 0, ErrNoSpace
}
