package sim

import (
	"testing"
	"time"
)

// profileWorkload runs a small deterministic mix of sleeps and wake-ups
// and returns the final virtual time.
func profileWorkload(k *Kernel) Time {
	var end Time
	k.RunProc(func(p *Proc) {
		cond := k.NewCond("tick")
		done := 0
		for i := 0; i < 4; i++ {
			k.Go("worker", func(wp *Proc) {
				for j := 0; j < 50; j++ {
					wp.Sleep(Time(j+1) * time.Millisecond)
				}
				done++
				cond.Broadcast()
			})
		}
		for done < 4 {
			cond.Wait(p)
		}
		end = p.Now()
	})
	return end
}

func TestProfileCountsAndRate(t *testing.T) {
	k := NewKernel()
	k.EnableProfile()
	profileWorkload(k)
	pr := k.ProfileSnapshot()
	if !pr.Enabled {
		t.Fatal("profile not enabled")
	}
	if pr.Events <= 0 || pr.TotalEvents < pr.Events {
		t.Fatalf("events: got %d (total %d), want > 0", pr.Events, pr.TotalEvents)
	}
	if pr.WallNs <= 0 || pr.EventsPerSec <= 0 {
		t.Fatalf("wall %dns events/sec %g, want both > 0", pr.WallNs, pr.EventsPerSec)
	}
	if pr.HeapHighWater < 4 {
		t.Fatalf("heap high water %d, want >= 4 (four concurrent sleepers)", pr.HeapHighWater)
	}
	if pr.Procs != 5 {
		t.Fatalf("procs %d, want 5 (main + 4 workers)", pr.Procs)
	}
	if pr.TotalSwitches != pr.TotalEvents {
		t.Fatalf("switches %d != dispatched events %d", pr.TotalSwitches, pr.TotalEvents)
	}
	if len(pr.TopProcs) == 0 || pr.TopProcs[0].Switches <= 0 {
		t.Fatalf("top procs empty: %+v", pr.TopProcs)
	}
	for i := 1; i < len(pr.TopProcs); i++ {
		if pr.TopProcs[i].Switches > pr.TopProcs[i-1].Switches {
			t.Fatalf("top procs not sorted: %+v", pr.TopProcs)
		}
	}
}

func TestUnprofiledKernelKeepsStructuralCounters(t *testing.T) {
	k := NewKernel()
	profileWorkload(k)
	pr := k.ProfileSnapshot()
	if pr.Enabled {
		t.Fatal("profile unexpectedly enabled")
	}
	if pr.TotalEvents <= 0 || pr.HeapHighWater <= 0 || pr.TotalSwitches <= 0 {
		t.Fatalf("structural counters missing: %+v", pr)
	}
	if pr.WallNs != 0 || pr.DispatchNs != 0 || pr.ProcNs != 0 {
		t.Fatalf("wall timers ran without EnableProfile: %+v", pr)
	}
}

// TestProfileDoesNotPerturbVirtualTime pins that profiling is pure
// observation: the profiled run ends at the identical virtual time and
// dispatches the identical number of events as the unprofiled one.
func TestProfileDoesNotPerturbVirtualTime(t *testing.T) {
	k1 := NewKernel()
	end1 := profileWorkload(k1)
	k2 := NewKernel()
	k2.EnableProfile()
	end2 := profileWorkload(k2)
	if end1 != end2 {
		t.Fatalf("virtual end time differs: unprofiled %v, profiled %v", end1, end2)
	}
	if e1, e2 := k1.ProfileSnapshot().TotalEvents, k2.ProfileSnapshot().TotalEvents; e1 != e2 {
		t.Fatalf("event count differs: unprofiled %d, profiled %d", e1, e2)
	}
}

// TestEnableProfileWindowsTheRate pins that the events/sec window starts
// at EnableProfile, not at kernel creation: setup events before the
// enable are excluded from Events.
func TestEnableProfileWindowsTheRate(t *testing.T) {
	k := NewKernel()
	profileWorkload(k) // unprofiled setup phase
	setup := k.ProfileSnapshot().TotalEvents
	k.EnableProfile()
	profileWorkload(k)
	pr := k.ProfileSnapshot()
	if pr.Events >= pr.TotalEvents {
		t.Fatalf("window not applied: events %d, total %d", pr.Events, pr.TotalEvents)
	}
	if want := pr.TotalEvents - setup; pr.Events != want {
		t.Fatalf("windowed events %d, want %d", pr.Events, want)
	}
}
