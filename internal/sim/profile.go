package sim

import "sort"

// Kernel self-profiling: how fast does the simulator itself run on the
// wall clock? The virtual-time model is exact by construction; what the
// profiler measures is the cost of computing it — events dispatched per
// wall-clock second, scheduler bookkeeping overhead per event, how deep
// the pending-event heap gets, and which procs the dispatcher touches
// most. These numbers are the measurement harness for any kernel
// optimization work: a change that claims to speed up the dispatch path
// must move EventsPerSec, and one that claims to shrink scheduling state
// must move HeapHighWater.
//
// Profiling never feeds back into the simulation: no virtual time is
// consumed, no RNG is drawn, and the counters are invisible to every
// deterministic export — a profiled run produces the identical
// virtual-time trace as an unprofiled one (pinned by
// TestProfileDoesNotPerturbVirtualTime).

// ProcProfile is one process's dispatch count.
type ProcProfile struct {
	Name     string
	Switches int64
}

// Profile is a snapshot of the kernel's self-measurements.
type Profile struct {
	// Enabled reports whether wall-clock timing was on. The structural
	// counters (TotalEvents, HeapHighWater, switches) are maintained
	// unconditionally; the Ns fields are zero unless EnableProfile ran
	// before the measured Run calls.
	Enabled bool

	// Events counts events dispatched to a proc since EnableProfile;
	// TotalEvents counts them over the kernel's whole life.
	Events      int64
	TotalEvents int64
	// SkippedEvents counts popped events whose proc had already been
	// unwound (Stop with wake-ups still pending).
	SkippedEvents int64

	// WallNs is wall-clock time spent inside profiled Run loops;
	// DispatchNs is the slice of it in scheduler bookkeeping (heap pop,
	// clock advance) and ProcNs the slice handed to procs (including the
	// channel handoff). EventsPerSec and AvgDispatchNs are derived.
	WallNs        int64
	DispatchNs    int64
	ProcNs        int64
	EventsPerSec  float64
	AvgDispatchNs float64

	// HeapHighWater is the deepest the pending-event heap has ever been;
	// Procs counts processes ever spawned; TotalSwitches sums every
	// proc's dispatch count; TopProcs lists the most-dispatched procs.
	HeapHighWater int
	Procs         int
	TotalSwitches int64
	TopProcs      []ProcProfile
}

// topProcsReported caps how many procs ProfileSnapshot lists by name.
const topProcsReported = 8

// EnableProfile turns on wall-clock timing of the dispatch loop. Call it
// before the Run (or RunProc) calls to be measured; enabling mid-run
// takes effect at the next Run. The events/sec window starts here, so a
// rig can be built unprofiled and only the workload measured.
func (k *Kernel) EnableProfile() {
	k.profEnabled = true
	k.profEventsMark = k.profEvents
}

// ProfileSnapshot reports the kernel's self-measurements so far. Safe to
// call between Run calls, or from inside a running proc (the dispatcher
// is parked while a proc runs, so the counters are quiescent).
func (k *Kernel) ProfileSnapshot() Profile {
	pr := Profile{
		Enabled:       k.profEnabled,
		Events:        k.profEvents - k.profEventsMark,
		TotalEvents:   k.profEvents,
		SkippedEvents: k.profSkipped,
		WallNs:        k.profWallNs,
		DispatchNs:    k.profDispatchNs,
		ProcNs:        k.profProcNs,
		HeapHighWater: k.heapHighWater,
		Procs:         len(k.procs),
	}
	if pr.WallNs > 0 {
		pr.EventsPerSec = float64(pr.Events) / (float64(pr.WallNs) / 1e9)
	}
	if pr.Events > 0 {
		pr.AvgDispatchNs = float64(pr.DispatchNs) / float64(pr.Events)
	}
	top := make([]ProcProfile, 0, len(k.procs))
	for _, p := range k.procs {
		pr.TotalSwitches += p.switches
		if p.switches > 0 {
			top = append(top, ProcProfile{Name: p.name, Switches: p.switches})
		}
	}
	sort.Slice(top, func(a, b int) bool {
		if top[a].Switches != top[b].Switches {
			return top[a].Switches > top[b].Switches
		}
		return top[a].Name < top[b].Name
	})
	if len(top) > topProcsReported {
		top = top[:topProcsReported]
	}
	pr.TopProcs = top
	return pr
}
