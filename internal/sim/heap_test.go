package sim

import (
	"container/heap"
	"testing"
)

// refHeap is the historical container/heap implementation of the event
// queue, kept here as the reference the concrete heap must match.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventHeapMatchesContainerHeap pins the concrete sift-up/sift-down
// implementation to container/heap: for an adversarial mix of pushes and
// pops (including equal timestamps, where only seq breaks the tie) the
// pop sequence must be identical element for element. Identical pop order
// is what keeps every virtual-time trace bit-identical across the
// container/heap removal.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	rng := NewRNG(7)
	var got eventHeap
	var want refHeap
	seq := uint64(0)
	for round := 0; round < 2000; round++ {
		// Biased toward pushes so the heaps grow, with bursts of pops.
		if rng.Intn(3) != 0 || len(got) == 0 {
			seq++
			e := event{t: Time(rng.Intn(50)), seq: seq} // heavy tie density
			got.push(e)
			heap.Push(&want, e)
		} else {
			n := rng.Intn(len(got)) + 1
			for i := 0; i < n; i++ {
				g := got.pop()
				w := heap.Pop(&want).(event)
				if g.t != w.t || g.seq != w.seq {
					t.Fatalf("round %d pop %d: concrete heap popped (t=%v seq=%d), container/heap popped (t=%v seq=%d)",
						round, i, g.t, g.seq, w.t, w.seq)
				}
			}
		}
	}
	for len(got) > 0 {
		g := got.pop()
		w := heap.Pop(&want).(event)
		if g.t != w.t || g.seq != w.seq {
			t.Fatalf("drain: concrete heap popped (t=%v seq=%d), container/heap popped (t=%v seq=%d)",
				g.t, g.seq, w.t, w.seq)
		}
	}
	if want.Len() != 0 {
		t.Fatalf("reference heap still holds %d events", want.Len())
	}
}

// BenchmarkEventHeap measures the concrete heap against the container/heap
// reference on the kernel's push/pop pattern (the wall-clock nibble the
// concrete implementation exists for).
func BenchmarkEventHeap(b *testing.B) {
	const window = 512
	b.Run("concrete", func(b *testing.B) {
		h := make(eventHeap, 0, window)
		rng := NewRNG(11)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.push(event{t: Time(rng.Intn(1 << 20)), seq: uint64(i)})
			if len(h) >= window {
				for len(h) > window/2 {
					h.pop()
				}
			}
		}
	})
	b.Run("container-heap", func(b *testing.B) {
		h := make(refHeap, 0, window)
		rng := NewRNG(11)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heap.Push(&h, event{t: Time(rng.Intn(1 << 20)), seq: uint64(i)})
			if len(h) >= window {
				for len(h) > window/2 {
					heap.Pop(&h)
				}
			}
		}
	})
}
