// Package sim provides a deterministic discrete-event simulation kernel.
//
// All HighLight components (file system, cleaner, migrator, device drivers)
// execute as cooperating processes (Proc) inside a Kernel. Exactly one
// process runs at a time; a process yields control whenever it blocks on
// virtual time (Sleep) or on a synchronization primitive (Resource, Cond,
// Chan). The kernel dispatches the earliest pending event, so runs are fully
// deterministic: the same program produces the same virtual-time trace on
// every host.
//
// Virtual time is a time.Duration measured from the start of the run.
package sim

import (
	"fmt"
	"runtime/debug"
	"sort"
	"time"
)

// Time is a point in virtual time, measured from the start of the run.
type Time = time.Duration

// procState describes what a Proc is currently doing, for deadlock reports.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateSleeping
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// Proc is a simulated process. A Proc handle is passed to every blocking
// operation; it must only be used from the goroutine running that process.
type Proc struct {
	k      *Kernel
	name   string
	daemon bool
	state  procState
	block  string // description of what the proc is blocked on
	ctx    *Ctx   // cancellation scope of the request being executed, if any

	resume chan struct{}

	switches int64 // times the dispatcher handed this proc the CPU
}

// Name returns the process name given to Go or GoDaemon.
func (p *Proc) Name() string { return p.name }

// Kernel reports the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// event is a scheduled wake-up of a process.
type event struct {
	t   Time
	seq uint64 // tiebreaker: FIFO among events at the same time
	p   *Proc
}

// eventHeap is a binary min-heap ordered by (time, seq). It is a concrete
// implementation rather than container/heap: push and pop sit on the
// kernel's dispatch path for every blocking operation in the simulation,
// and the interface{} boxing of heap.Push/heap.Pop costs an allocation per
// event. The sift-up/sift-down order matches container/heap exactly, so
// event dispatch order — and therefore every virtual-time trace — is
// unchanged (pinned by TestEventHeapMatchesContainerHeap).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	j := len(s) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if !s.less(j, parent) {
			break
		}
		s[j], s[parent] = s[parent], s[j]
		j = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	j := 0
	for {
		left := 2*j + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && s.less(right, left) {
			small = right
		}
		if !s.less(small, j) {
			break
		}
		s[j], s[small] = s[small], s[j]
		j = small
	}
	e := s[n]
	s[n] = event{} // drop the Proc reference so the backing array does not pin it
	*h = s[:n]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	procs   []*Proc
	live    int // non-daemon procs not yet done
	stopped bool
	failure interface{} // panic value captured from a proc
	stack   []byte      // stack trace of the captured panic

	// Self-profiling (profile.go). Event and heap counters are always
	// maintained — they are single integer ops on the dispatch path —
	// while the wall-clock timers run only when profEnabled is set, so an
	// unprofiled run pays no time.Now() calls.
	profEnabled    bool
	profEvents     int64 // events dispatched to a proc
	profEventsMark int64 // profEvents at EnableProfile, for the window rate
	profSkipped    int64 // popped events whose proc was already done
	profWallNs     int64 // wall time spent inside Run while profiling
	profDispatchNs int64 // wall time in scheduler bookkeeping (heap pop, clock)
	profProcNs     int64 // wall time procs held the CPU (incl. channel handoff)
	heapHighWater  int   // deepest the event heap has ever been
}

// NewKernel returns a kernel with virtual time zero and no processes.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		// Preallocate the event queue: steady-state simulations keep a
		// few hundred pending wake-ups, and growing the array on the
		// dispatch path is pure overhead.
		events: make(eventHeap, 0, 256),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// AdvanceTo moves an idle kernel's clock forward (used when resuming a
// persisted simulation at its saved epoch). It panics if events are
// pending or t is in the past.
func (k *Kernel) AdvanceTo(t Time) {
	if len(k.events) > 0 {
		panic("sim: AdvanceTo with pending events")
	}
	if t < k.now {
		panic("sim: AdvanceTo into the past")
	}
	k.now = t
}

// Go starts fn as a new process named name. The process first runs when the
// kernel dispatches it (at the current virtual time, after already-runnable
// processes). Run returns only after every non-daemon process has finished.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, false, fn)
}

// GoDaemon starts a background process that does not keep Run alive: Run
// returns once all non-daemon processes have finished, even if daemons are
// still sleeping or blocked.
func (k *Kernel) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, true, fn)
}

func (k *Kernel) spawn(name string, daemon bool, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, daemon: daemon, state: stateNew, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	if !daemon {
		k.live++
	}
	k.schedule(k.now, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopProc); !ok {
					k.failure = fmt.Sprintf("proc %q panicked: %v", p.name, r)
					k.stack = debug.Stack()
				}
			}
			p.state = stateDone
			if !p.daemon {
				k.live--
			}
			k.yield <- struct{}{}
		}()
		p.state = stateRunning
		fn(p)
	}()
	return p
}

// stopProc is panicked inside daemon goroutines to unwind them when the
// kernel shuts down.
type stopProc struct{}

func (k *Kernel) schedule(t Time, p *Proc) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(event{t: t, seq: k.seq, p: p})
	if len(k.events) > k.heapHighWater {
		k.heapHighWater = len(k.events)
	}
	if p.state != stateNew {
		p.state = stateRunnable
	}
}

// wake moves a blocked process back to the run queue at the current time.
// It is used by synchronization primitives.
func (k *Kernel) wake(p *Proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: waking proc %q in state %v", p.name, p.state))
	}
	k.schedule(k.now, p)
}

// Sleep suspends the process for d of virtual time. A non-positive d yields
// the processor but stays at the current time (other runnable processes get
// to execute first).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.schedule(k.now+d, p)
	p.state = stateSleeping
	p.yieldToKernel()
}

// Yield gives other runnable processes a chance to run at the current
// virtual time.
func (p *Proc) Yield() { p.Sleep(0) }

// suspend blocks the process until another process wakes it via k.wake.
// why describes the wait for deadlock diagnostics.
func (p *Proc) suspend(why string) {
	p.state = stateBlocked
	p.block = why
	p.yieldToKernel()
	p.block = ""
}

// yieldToKernel hands control back to the scheduler and waits to be resumed.
func (p *Proc) yieldToKernel() {
	k := p.k
	k.yield <- struct{}{}
	<-p.resume
	if k.stopped {
		panic(stopProc{})
	}
	p.state = stateRunning
}

// Run dispatches events until every non-daemon process has finished. It
// panics if a process panicked, or if non-daemon processes remain but no
// event can ever wake them (deadlock).
func (k *Kernel) Run() {
	// profiled is latched at entry: enabling mid-run takes effect at the
	// next Run call, so the timer arithmetic inside one loop is uniform.
	profiled := k.profEnabled
	var runStart, t0, t1 time.Time
	if profiled {
		runStart = time.Now()
	}
	for k.live > 0 {
		if len(k.events) == 0 {
			panic("sim: deadlock — " + k.describeBlocked())
		}
		if profiled {
			t0 = time.Now()
		}
		e := k.events.pop()
		if e.p.state == stateDone {
			k.profSkipped++
			continue // proc was unwound by Stop while an event was pending
		}
		k.now = e.t
		k.profEvents++
		e.p.switches++
		if profiled {
			t1 = time.Now()
			k.profDispatchNs += t1.Sub(t0).Nanoseconds()
		}
		e.p.resume <- struct{}{}
		<-k.yield
		if profiled {
			k.profProcNs += time.Since(t1).Nanoseconds()
		}
		if k.failure != nil {
			f, st := k.failure, k.stack
			k.failure, k.stack = nil, nil
			panic(fmt.Sprintf("%v\n%s", f, st))
		}
	}
	if profiled {
		k.profWallNs += time.Since(runStart).Nanoseconds()
	}
}

// RunProc spawns fn as a process and runs the kernel until all non-daemon
// processes (including fn) finish. It is the standard way for tests and
// examples to execute code in virtual time.
func (k *Kernel) RunProc(fn func(p *Proc)) {
	k.Go("main", fn)
	k.Run()
}

// Stop unwinds all still-live processes. After Stop the kernel must not be
// reused. It is intended for tearing down daemons after Run returns.
func (k *Kernel) Stop() {
	k.stopped = true
	for _, p := range k.procs {
		if p.state == stateDone || p.state == stateNew {
			continue
		}
		// Resume the proc; yieldToKernel panics with stopProc, and the
		// spawn wrapper reports back on k.yield.
		p.resume <- struct{}{}
		<-k.yield
	}
}

// describeBlocked summarizes what every live process is waiting on.
func (k *Kernel) describeBlocked() string {
	var lines []string
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		d := ""
		if p.daemon {
			d = " (daemon)"
		}
		why := p.block
		if why == "" {
			why = p.state.String()
		}
		lines = append(lines, fmt.Sprintf("%s%s: %s", p.name, d, why))
	}
	sort.Strings(lines)
	return fmt.Sprintf("no pending events, %d procs stuck: %v", len(lines), lines)
}
