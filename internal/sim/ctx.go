package sim

import "errors"

// Cancellation / deadline errors. They are package-level sentinels so
// every layer (cache, stage, tertiary, jukebox) can classify an abandoned
// request with errors.Is without importing the front end.
var (
	// ErrDeadlineExceeded marks a request whose virtual-time deadline
	// passed before it completed.
	ErrDeadlineExceeded = errors.New("sim: deadline exceeded")
	// ErrCanceled marks a request canceled by its submitter.
	ErrCanceled = errors.New("sim: request canceled")
)

// Ctx is a per-request cancellation scope in virtual time, the simulator's
// analogue of context.Context. It travels with the Proc executing the
// request (Proc.PushCtx/PopCtx) so deep layers — the block map, the
// staging mechanism, the tertiary service, the jukebox drivers — can honor
// deadlines and cancellation without threading a new parameter through
// every call signature.
//
// The kernel is single-threaded, so no locking: Cancel, Err, and OnCancel
// all run inside the dispatch loop. A nil *Ctx is valid everywhere and
// never expires.
type Ctx struct {
	k        *Kernel
	deadline Time // 0 = none
	err      error
	wakers   []func()
	trace    any // opaque per-request trace (internal/obs/reqtrace)
}

// NewCtx creates a cancellation scope. deadline is an absolute virtual
// time; 0 means no deadline (cancel-only).
func (k *Kernel) NewCtx(deadline Time) *Ctx {
	return &Ctx{k: k, deadline: deadline}
}

// Deadline reports the absolute deadline (0 = none). Nil-safe.
func (c *Ctx) Deadline() Time {
	if c == nil {
		return 0
	}
	return c.deadline
}

// Err reports why the scope is dead: ErrCanceled / ErrDeadlineExceeded,
// or nil while the request may still proceed. The deadline is checked
// passively against the kernel clock, so blocking layers that poll Err in
// their wait loops observe expiry as soon as they are woken. Nil-safe.
func (c *Ctx) Err() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.deadline > 0 && c.k.Now() > c.deadline {
		c.err = ErrDeadlineExceeded
		return c.err
	}
	return nil
}

// Cancel kills the scope with the given cause (ErrCanceled when nil) and
// runs the registered wakers so procs blocked on condition variables
// re-check their predicates. Idempotent; the first cause wins. Nil-safe.
func (c *Ctx) Cancel(cause error) {
	if c == nil || c.err != nil {
		return
	}
	if cause == nil {
		cause = ErrCanceled
	}
	c.err = cause
	ws := c.wakers
	c.wakers = nil
	for _, w := range ws {
		w()
	}
}

// OnCancel registers a waker — typically a Cond.Broadcast closure — run
// when the scope is canceled. If the scope is already dead the waker runs
// immediately. Nil-safe (no-op on a nil scope).
func (c *Ctx) OnCancel(w func()) {
	if c == nil {
		return
	}
	if c.err != nil {
		w()
		return
	}
	c.wakers = append(c.wakers, w)
}

// SetTrace attaches an opaque per-request trace to the scope. The kernel
// never looks inside it — it exists so the request tracer
// (internal/obs/reqtrace) can ride the scope through every layer that
// already propagates Ctx, without sim importing the tracer. Nil-safe.
func (c *Ctx) SetTrace(v any) {
	if c == nil {
		return
	}
	c.trace = v
}

// Trace returns the opaque trace attached with SetTrace (nil when none,
// or on a nil scope).
func (c *Ctx) Trace() any {
	if c == nil {
		return nil
	}
	return c.trace
}

// Ctx returns the cancellation scope attached to the process (nil when
// none is attached).
func (p *Proc) Ctx() *Ctx { return p.ctx }

// CtxErr is shorthand for p.Ctx().Err().
func (p *Proc) CtxErr() error { return p.ctx.Err() }

// PushCtx attaches a cancellation scope to the process for the duration
// of a request, returning a restore function for the previous scope.
// Layers below read it with p.Ctx(); the worker running requests
// back-to-back pushes a fresh scope per request.
func (p *Proc) PushCtx(c *Ctx) (restore func()) {
	prev := p.ctx
	p.ctx = c
	return func() { p.ctx = prev }
}
