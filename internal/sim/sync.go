package sim

// Synchronization primitives operating in virtual time. All of them must be
// used only from inside processes of the kernel they were created for.

// Resource is a single server with a FIFO wait queue: disk arms, the SCSI
// bus, robot pickers. Acquire blocks (in virtual time) while another process
// holds the resource.
type Resource struct {
	k       *Kernel
	name    string
	owner   *Proc
	waiters []*Proc

	// Stats.
	acquires  int64
	waitTotal Time
	busySince Time
	busyTotal Time
}

// NewResource returns an idle resource. The name appears in deadlock
// diagnostics and statistics.
func (k *Kernel) NewResource(name string) *Resource {
	return &Resource{k: k, name: name}
}

// Acquire takes the resource, waiting in FIFO order if it is busy.
func (r *Resource) Acquire(p *Proc) {
	r.acquires++
	if r.owner == nil {
		r.owner = p
		r.busySince = r.k.now
		return
	}
	start := r.k.now
	r.waiters = append(r.waiters, p)
	p.suspend("acquire " + r.name)
	r.waitTotal += r.k.now - start
}

// Release hands the resource to the longest-waiting process, if any.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic("sim: Release of " + r.name + " by non-owner " + p.name)
	}
	r.busyTotal += r.k.now - r.busySince
	if len(r.waiters) == 0 {
		r.owner = nil
		return
	}
	next := r.waiters[0]
	r.waiters = r.waiters[1:]
	r.owner = next
	r.busySince = r.k.now
	r.k.wake(next)
}

// With runs fn while holding the resource.
func (r *Resource) With(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release(p)
	fn()
}

// Busy reports whether some process currently holds the resource.
func (r *Resource) Busy() bool { return r.owner != nil }

// QueueLen reports how many processes are waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// WaitTotal reports the cumulative virtual time processes spent waiting to
// acquire the resource.
func (r *Resource) WaitTotal() Time { return r.waitTotal }

// BusyTotal reports the cumulative virtual time the resource was held.
func (r *Resource) BusyTotal() Time {
	t := r.busyTotal
	if r.owner != nil {
		t += r.k.now - r.busySince
	}
	return t
}

// Acquires reports how many times the resource has been acquired.
func (r *Resource) Acquires() int64 { return r.acquires }

// Cond is a condition variable in virtual time. Unlike sync.Cond there is no
// separate lock: only one process runs at a time, so checking the condition
// and calling Wait is atomic by construction.
type Cond struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewCond returns a condition variable.
func (k *Kernel) NewCond(name string) *Cond {
	return &Cond{k: k, name: name}
}

// Wait blocks until another process calls Signal or Broadcast. As with
// sync.Cond, callers must re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.suspend("wait " + c.name)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.wake(p)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.k.wake(p)
	}
}

// Chan is a bounded FIFO channel in virtual time, used as the request queue
// between the file system, the service process, and the I/O process.
type Chan struct {
	k        *Kernel
	name     string
	capacity int
	buf      []interface{}
	notEmpty *Cond
	notFull  *Cond
	closed   bool
}

// NewChan returns a channel with the given capacity. A capacity of 0 is
// rounded up to 1 (true rendezvous semantics are not needed by HighLight).
func (k *Kernel) NewChan(name string, capacity int) *Chan {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan{
		k:        k,
		name:     name,
		capacity: capacity,
		notEmpty: k.NewCond(name + ".notEmpty"),
		notFull:  k.NewCond(name + ".notFull"),
	}
}

// Send enqueues v, blocking while the channel is full. Sending on a closed
// channel panics.
func (c *Chan) Send(p *Proc, v interface{}) {
	for len(c.buf) >= c.capacity {
		if c.closed {
			panic("sim: send on closed chan " + c.name)
		}
		c.notFull.Wait(p)
	}
	if c.closed {
		panic("sim: send on closed chan " + c.name)
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal()
}

// Recv dequeues the oldest value, blocking while the channel is empty. The
// second result is false if the channel is closed and drained.
func (c *Chan) Recv(p *Proc) (interface{}, bool) {
	for len(c.buf) == 0 {
		if c.closed {
			return nil, false
		}
		c.notEmpty.Wait(p)
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.notFull.Signal()
	return v, true
}

// TryRecv dequeues a value without blocking.
func (c *Chan) TryRecv() (interface{}, bool) {
	if len(c.buf) == 0 {
		return nil, false
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.notFull.Signal()
	return v, true
}

// Close marks the channel closed and wakes all blocked receivers.
func (c *Chan) Close() {
	c.closed = true
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}

// Len reports the number of queued values.
func (c *Chan) Len() int { return len(c.buf) }
