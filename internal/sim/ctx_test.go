package sim

import (
	"errors"
	"testing"
	"time"
)

// Double-cancel is idempotent: the first cause sticks, later causes are
// dropped, and each registered waker runs exactly once.
func TestCtxDoubleCancelFirstCauseWins(t *testing.T) {
	k := NewKernel()
	c := k.NewCtx(0)
	woken := 0
	c.OnCancel(func() { woken++ })
	first := errors.New("first cause")
	c.Cancel(first)
	c.Cancel(errors.New("second cause"))
	c.Cancel(nil)
	if !errors.Is(c.Err(), first) {
		t.Fatalf("Err() = %v, want the first cause", c.Err())
	}
	if woken != 1 {
		t.Fatalf("waker ran %d times, want exactly once", woken)
	}
	// A waker registered after death runs immediately — and still only once
	// even if the scope is "canceled" again.
	late := 0
	c.OnCancel(func() { late++ })
	c.Cancel(errors.New("third cause"))
	if late != 1 {
		t.Fatalf("late waker ran %d times, want exactly once", late)
	}
}

func TestCtxCancelNilCauseDefaultsToCanceled(t *testing.T) {
	k := NewKernel()
	c := k.NewCtx(0)
	c.Cancel(nil)
	if !errors.Is(c.Err(), ErrCanceled) {
		t.Fatalf("Err() = %v, want ErrCanceled", c.Err())
	}
}

// A deadline that has already expired is the scope's cause of death; a
// cancel arriving afterwards must not replace it.
func TestCtxDeadlineBeatsLateCancel(t *testing.T) {
	k := NewKernel()
	c := k.NewCtx(Time(5 * time.Second))
	k.RunProc(func(p *Proc) {
		if err := c.Err(); err != nil {
			t.Fatalf("Err() before the deadline = %v", err)
		}
		p.Sleep(Time(6 * time.Second))
		if !errors.Is(c.Err(), ErrDeadlineExceeded) {
			t.Fatalf("Err() past the deadline = %v, want ErrDeadlineExceeded", c.Err())
		}
		c.Cancel(errors.New("too late"))
		if !errors.Is(c.Err(), ErrDeadlineExceeded) {
			t.Fatalf("late cancel replaced the deadline cause: %v", c.Err())
		}
	})
}

// A nil *Ctx is documented as valid everywhere: it never expires, Cancel
// is a no-op, and OnCancel never fires.
func TestCtxNilSafe(t *testing.T) {
	var c *Ctx
	if c.Err() != nil {
		t.Fatalf("nil ctx Err() = %v", c.Err())
	}
	if c.Deadline() != 0 {
		t.Fatalf("nil ctx Deadline() = %v", c.Deadline())
	}
	c.Cancel(errors.New("ignored"))
	ran := false
	c.OnCancel(func() { ran = true })
	if ran {
		t.Fatal("waker ran on a nil ctx")
	}
}

// PushCtx scopes nest: the restore function reinstates the previous scope,
// so a worker running requests back-to-back never leaks one request's
// cancellation into the next.
func TestPushCtxRestoresPreviousScope(t *testing.T) {
	k := NewKernel()
	outer, inner := k.NewCtx(0), k.NewCtx(0)
	k.RunProc(func(p *Proc) {
		popOuter := p.PushCtx(outer)
		popInner := p.PushCtx(inner)
		inner.Cancel(nil)
		if !errors.Is(p.CtxErr(), ErrCanceled) {
			t.Fatalf("inner scope not visible: %v", p.CtxErr())
		}
		popInner()
		if err := p.CtxErr(); err != nil {
			t.Fatalf("outer scope tainted by inner cancel: %v", err)
		}
		popOuter()
		if p.Ctx() != nil {
			t.Fatal("base scope not restored")
		}
	})
}
