package sim

import (
	"testing"
	"time"
)

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := k.NewResource("arm")
	var active, maxActive int
	worker := func(p *Proc) {
		r.Acquire(p)
		active++
		if active > maxActive {
			maxActive = active
		}
		p.Sleep(time.Second)
		active--
		r.Release(p)
	}
	for i := 0; i < 5; i++ {
		k.Go("w", worker)
	}
	k.Run()
	if maxActive != 1 {
		t.Fatalf("maxActive = %d, want 1", maxActive)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("5 serialized 1s holds took %v, want 5s", k.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := k.NewResource("arm")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release(p)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want FIFO", i, v)
		}
	}
}

func TestResourceStats(t *testing.T) {
	k := NewKernel()
	r := k.NewResource("bus")
	k.Go("a", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(2 * time.Second)
		r.Release(p)
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		r.Acquire(p)
		p.Sleep(time.Second)
		r.Release(p)
	})
	k.Run()
	if got := r.BusyTotal(); got != 3*time.Second {
		t.Fatalf("BusyTotal = %v, want 3s", got)
	}
	if got := r.WaitTotal(); got != time.Second {
		t.Fatalf("WaitTotal = %v, want 1s (b waited 1s)", got)
	}
	if r.Acquires() != 2 {
		t.Fatalf("Acquires = %d, want 2", r.Acquires())
	}
}

func TestReleaseByNonOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on release by non-owner")
		}
	}()
	k := NewKernel()
	r := k.NewResource("arm")
	k.RunProc(func(p *Proc) {
		r.Release(p)
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("c")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Go("signaler", func(p *Proc) {
		p.Sleep(time.Second)
		c.Signal()
		p.Sleep(time.Second)
		c.Broadcast()
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestChanFIFO(t *testing.T) {
	k := NewKernel()
	ch := k.NewChan("q", 16)
	var got []int
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			ch.Send(p, i)
			p.Sleep(time.Millisecond)
		}
		ch.Close()
	})
	k.Go("consumer", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	k.Run()
	if len(got) != 10 {
		t.Fatalf("received %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	k := NewKernel()
	ch := k.NewChan("q", 2)
	var sendDone Time
	k.Go("producer", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Send(p, 3) // must block until consumer drains one
		sendDone = p.Now()
	})
	k.Go("consumer", func(p *Proc) {
		p.Sleep(time.Second)
		if _, ok := ch.Recv(p); !ok {
			t.Error("recv failed")
		}
	})
	k.Run()
	if sendDone != time.Second {
		t.Fatalf("third send completed at %v, want 1s (after consumer drained)", sendDone)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel()
	ch := k.NewChan("q", 4)
	k.RunProc(func(p *Proc) {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		ch.Send(p, 42)
		v, ok := ch.TryRecv()
		if !ok || v.(int) != 42 {
			t.Errorf("TryRecv = %v,%v want 42,true", v, ok)
		}
	})
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}
