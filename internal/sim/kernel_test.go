package sim

import (
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var at Time
	k.RunProc(func(p *Proc) {
		p.Sleep(5 * time.Second)
		at = p.Now()
	})
	if at != 5*time.Second {
		t.Fatalf("Now after Sleep(5s) = %v, want 5s", at)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("kernel Now = %v, want 5s", k.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "late")
	})
	k.Go("early", func(p *Proc) {
		p.Sleep(1 * time.Millisecond)
		order = append(order, "early")
	})
	k.Go("mid", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		order = append(order, "mid")
	})
	k.Run()
	got := strings.Join(order, ",")
	if got != "early,mid,late" {
		t.Fatalf("order = %s, want early,mid,late", got)
	}
}

func TestSameTimeEventsAreFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Go("p", func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	got := strings.Join(order, ",")
	if got != "a1,b1,a2" {
		t.Fatalf("order = %s, want a1,b1,a2", got)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced on zero sleep: %v", k.Now())
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	k := NewKernel()
	k.RunProc(func(p *Proc) {
		p.Sleep(-time.Second)
	})
	if k.Now() != 0 {
		t.Fatalf("negative sleep moved time to %v", k.Now())
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.GoDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	k.RunProc(func(p *Proc) {
		p.Sleep(3500 * time.Millisecond)
	})
	if ticks != 3 {
		t.Fatalf("daemon ticked %d times in 3.5s, want 3", ticks)
	}
	k.Stop()
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("panic = %v, want deadlock description", r)
		}
	}()
	k := NewKernel()
	c := k.NewCond("never")
	k.RunProc(func(p *Proc) {
		c.Wait(p) // nobody will ever signal
	})
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic = %q, want to contain 'boom'", r)
		}
	}()
	k := NewKernel()
	k.RunProc(func(p *Proc) {
		panic("boom")
	})
}

func TestSpawnDuringRun(t *testing.T) {
	k := NewKernel()
	var childRan bool
	k.RunProc(func(p *Proc) {
		k.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(time.Second)
	})
	if !childRan {
		t.Fatal("child spawned during run never ran")
	}
}

func TestStopUnwindsDaemons(t *testing.T) {
	k := NewKernel()
	cleaned := false
	c := k.NewCond("forever")
	k.GoDaemon("d", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	k.RunProc(func(p *Proc) { p.Sleep(time.Second) })
	k.Stop()
	if !cleaned {
		t.Fatal("daemon deferred cleanup did not run on Stop")
	}
}

func TestManyProcsScale(t *testing.T) {
	k := NewKernel()
	const n = 1000
	done := 0
	for i := 0; i < n; i++ {
		d := time.Duration(i) * time.Microsecond
		k.Go("w", func(p *Proc) {
			p.Sleep(d)
			done++
		})
	}
	k.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if k.Now() != time.Duration(n-1)*time.Microsecond {
		t.Fatalf("final time = %v", k.Now())
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel()
	k.AdvanceTo(42 * time.Second)
	if k.Now() != 42*time.Second {
		t.Fatalf("Now = %v after AdvanceTo", k.Now())
	}
	var woke Time
	k.RunProc(func(p *Proc) {
		p.Sleep(time.Second)
		woke = p.Now()
	})
	if woke != 43*time.Second {
		t.Fatalf("proc woke at %v, want 43s", woke)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past should panic")
		}
	}()
	k.AdvanceTo(time.Second)
}
