package attr

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

const second = sim.Time(time.Second)

func TestNilTableAndAuditAreInert(t *testing.T) {
	var tb *Table
	tb.Touch(3, Hit, second)
	tb.TouchFile(7, 4096, second)
	if h := tb.Heat(3, 2*second); h != 0 {
		t.Fatalf("nil table heat = %v", h)
	}
	if _, ok := tb.Seg(3); ok {
		t.Fatal("nil table has a record")
	}
	if s := tb.Snapshot(second); len(s.Segments) != 0 || len(s.Files) != 0 {
		t.Fatal("nil table snapshot not empty")
	}

	var a *Audit
	a.Record(Decision{Actor: "x", Seg: 1})
	if a.Total() != 0 || a.Len() != 0 || a.All() != nil || a.ForSegment(1) != nil {
		t.Fatal("nil audit recorded something")
	}
}

func TestTouchCountsAndLastTouch(t *testing.T) {
	tb := NewTable(0)
	tb.Touch(5, Hit, 1*second)
	tb.Touch(5, Hit, 2*second)
	tb.Touch(5, Miss, 3*second)
	tb.Touch(5, Fetch, 4*second)
	tb.Touch(5, Stage, 5*second)
	tb.Touch(5, Copyout, 6*second)
	tb.Touch(5, Evict, 7*second)
	tb.Touch(5, Clean, 8*second)

	r, ok := tb.Seg(5)
	if !ok {
		t.Fatal("no record for touched segment")
	}
	if r.Hits != 2 || r.Misses != 1 || r.Fetches != 1 || r.Stages != 1 ||
		r.Copyouts != 1 || r.Evicts != 1 || r.Cleans != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.LastTouch != 8*second {
		t.Fatalf("LastTouch = %v, want 8s", r.LastTouch)
	}
}

func TestHeatDecaysByHalfLife(t *testing.T) {
	tb := NewTable(10 * second)
	tb.Touch(1, Fetch, 0) // weight 4
	if h := tb.Heat(1, 0); h != 4 {
		t.Fatalf("heat at touch = %v, want 4", h)
	}
	// One half-life later: half the heat.
	if h := tb.Heat(1, 10*second); math.Abs(h-2) > 1e-9 {
		t.Fatalf("heat after one half-life = %v, want 2", h)
	}
	// Two half-lives: a quarter.
	if h := tb.Heat(1, 20*second); math.Abs(h-1) > 1e-9 {
		t.Fatalf("heat after two half-lives = %v, want 1", h)
	}
	// A new touch decays the old heat first, then adds its weight.
	tb.Touch(1, Hit, 10*second) // 4/2 + 1 = 3
	if h := tb.Heat(1, 10*second); math.Abs(h-3) > 1e-9 {
		t.Fatalf("heat after decayed re-touch = %v, want 3", h)
	}
	// Heat queries never mutate: asking at a later time twice is stable.
	h1 := tb.Heat(1, 40*second)
	h2 := tb.Heat(1, 40*second)
	if h1 != h2 {
		t.Fatalf("Heat mutated the record: %v vs %v", h1, h2)
	}
}

func TestBookkeepingEventsAddNoHeat(t *testing.T) {
	tb := NewTable(0)
	tb.Touch(2, Evict, second)
	tb.Touch(2, Clean, second)
	tb.Touch(2, Copyout, second)
	tb.Touch(2, Miss, second)
	if h := tb.Heat(2, second); h != 0 {
		t.Fatalf("bookkeeping events added heat %v", h)
	}
}

func TestSnapshotOrderAndDeterminism(t *testing.T) {
	build := func() *Table {
		tb := NewTable(0)
		tb.Touch(9, Hit, 1*second)
		tb.Touch(2, Fetch, 2*second)
		tb.Touch(5, Stage, 3*second)
		tb.TouchFile(40, 8192, 3*second)
		tb.TouchFile(7, 4096, 4*second)
		return tb
	}
	s := build().Snapshot(5 * second)
	if len(s.Segments) != 3 || s.Segments[0].Tag != 2 || s.Segments[1].Tag != 5 || s.Segments[2].Tag != 9 {
		t.Fatalf("segments not in tag order: %+v", s.Segments)
	}
	if len(s.Files) != 2 || s.Files[0].Inum != 7 || s.Files[1].Inum != 40 {
		t.Fatalf("files not in inum order: %+v", s.Files)
	}
	j1, err := json.Marshal(build().Snapshot(5 * second))
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(build().Snapshot(5 * second))
	if string(j1) != string(j2) {
		t.Fatal("snapshot JSON not deterministic")
	}
}

func TestAuditRingEvictsOldest(t *testing.T) {
	a := NewAudit(3)
	for i := 0; i < 5; i++ {
		a.Record(Decision{T: sim.Time(i) * second, Actor: "m", Subject: "s", Seg: i})
	}
	if a.Total() != 5 || a.Len() != 3 {
		t.Fatalf("total=%d len=%d, want 5/3", a.Total(), a.Len())
	}
	all := a.All()
	for i, want := range []int{2, 3, 4} {
		if all[i].Seg != want {
			t.Fatalf("ring order wrong: %+v", all)
		}
	}
	recent := a.Recent(2)
	if len(recent) != 2 || recent[0].Seg != 3 || recent[1].Seg != 4 {
		t.Fatalf("Recent(2) = %+v", recent)
	}
}

func TestAuditForSegment(t *testing.T) {
	a := NewAudit(0)
	a.Record(Decision{T: second, Actor: "migrator", Subject: "file:/a", Seg: -1, Verdict: VerdictSelected})
	a.Record(Decision{T: 2 * second, Actor: "stage", Subject: "seg:4", Seg: 4, Verdict: VerdictStaged})
	a.Record(Decision{T: 3 * second, Actor: "tcleaner", Subject: "seg:4", Seg: 4, Verdict: VerdictCleaned,
		Inputs: []Input{In("heat", 1.5)}})
	a.Record(Decision{T: 4 * second, Actor: "tcleaner", Subject: "seg:5", Seg: 5, Verdict: VerdictSkipped})

	chain := a.ForSegment(4)
	if len(chain) != 2 || chain[0].Verdict != VerdictStaged || chain[1].Verdict != VerdictCleaned {
		t.Fatalf("ForSegment(4) = %+v", chain)
	}
	if got := chain[1].String(); got == "" || chain[1].Inputs[0].Key != "heat" {
		t.Fatalf("decision rendering lost inputs: %q", got)
	}
	if len(a.ForSegment(99)) != 0 {
		t.Fatal("ForSegment invented decisions")
	}
}
