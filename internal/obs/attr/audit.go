package attr

import (
	"fmt"

	"repro/internal/sim"
)

// Verdicts recorded by the migrator, the staging mechanism, and the
// tertiary cleaner. Kept as constants so `hldump -why` and the
// /decisions export never drift from the recorders.
const (
	VerdictSelected  = "selected"   // candidate chosen by a policy
	VerdictSkipped   = "skipped"    // candidate examined and passed over
	VerdictStaged    = "staged"     // blocks assembled into a staging segment
	VerdictCopiedOut = "copied-out" // staging segment reached tertiary media
	VerdictCleaned   = "cleaned"    // live blocks re-staged off the segment
	VerdictRestaged  = "restaged"   // contents moved after a failed copy-out
	VerdictRetired   = "retired"    // segment/volume tail marked no-store
	VerdictRun       = "run"        // one migrator/cleaner invocation summary
	VerdictPlaced    = "placed"     // replica assigned a tertiary location
	VerdictRouted    = "routed"     // fetch redirected to a non-primary copy
	VerdictRepaired  = "repaired"   // replication restored by the repair pass
	VerdictDeferred  = "deferred"   // repair postponed (no space / all down)
	VerdictLost      = "lost"       // no surviving copy remains

	// Front-end (admission control / overload protection) verdicts.
	VerdictAdmitted = "admitted" // request accepted into an admission queue
	VerdictShed     = "shed"     // request refused (queue full, retry budget, expired deadline)
	VerdictTripped  = "tripped"  // circuit breaker opened on consecutive failures
	VerdictProbed   = "probed"   // half-open breaker let one probe request through
	VerdictRestored = "restored" // breaker closed again after a successful probe
	VerdictBrownout = "brownout" // graceful-degradation mode entered or left

	// HSM service-surface verdicts (pin lifecycle, quota enforcement,
	// request-queue transitions).
	VerdictPinned    = "pinned"     // a file/segment entered the pinned set
	VerdictUnpinned  = "unpinned"   // a pin was released
	VerdictPinGuard  = "pin-guard"  // evictor/cleaner/migrator refused a pinned subject
	VerdictQuotaShed = "quota-shed" // request refused at admission: principal over quota
	VerdictReclaimed = "reclaimed"  // quota GC evicted staged data of an over-soft-limit principal
	VerdictQueued    = "queued"     // HSM request entered the persistent queue
	VerdictDone      = "done"       // HSM request completed
	VerdictFailed    = "failed"     // HSM request reached the failed state
)

// Input is one named policy input (heat, age, utilization, pressure)
// recorded with a decision.
type Input struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
}

// In is shorthand for building an Input.
func In(key string, val float64) Input { return Input{Key: key, Val: val} }

// Decision is one audited policy decision: who decided what about
// which subject, why, and from which inputs.
type Decision struct {
	T       sim.Time `json:"-"`
	Seconds float64  `json:"t_s"` // T in seconds, for exports
	Actor   string   `json:"actor"`
	Subject string   `json:"subject"`
	// Seg is the tertiary segment index the decision is attributed to
	// (-1 when the decision is not segment-specific, e.g. a policy
	// ranking a file that was never migrated).
	Seg     int     `json:"seg"`
	Verdict string  `json:"verdict"`
	Reason  string  `json:"reason,omitempty"`
	Inputs  []Input `json:"inputs,omitempty"`
}

// String renders a decision as one audit-log line.
func (d Decision) String() string {
	s := fmt.Sprintf("[%9.3fs] %-10s %-18s %-10s", d.T.Seconds(), d.Actor, d.Subject, d.Verdict)
	if d.Reason != "" {
		s += " (" + d.Reason + ")"
	}
	for _, in := range d.Inputs {
		s += fmt.Sprintf(" %s=%.6g", in.Key, in.Val)
	}
	return s
}

// Audit is a bounded ring of decisions: cheap enough to leave on for
// soak-length runs, while `hldump -why` and /decisions still see the
// recent history. The zero value is not usable; call NewAudit. A nil
// *Audit is valid everywhere and inert.
type Audit struct {
	cap   int
	buf   []Decision
	start int   // index of the oldest entry
	total int64 // decisions ever recorded (including overwritten ones)
}

// DefaultAuditCap bounds the ring: enough for several full migration
// passes on the paper-scale rig.
const DefaultAuditCap = 8192

// NewAudit creates a decision log keeping the last max entries
// (DefaultAuditCap if max <= 0).
func NewAudit(max int) *Audit {
	if max <= 0 {
		max = DefaultAuditCap
	}
	return &Audit{cap: max}
}

// Record appends a decision, evicting the oldest entry when full.
func (a *Audit) Record(d Decision) {
	if a == nil {
		return
	}
	d.Seconds = d.T.Seconds()
	a.total++
	if len(a.buf) < a.cap {
		a.buf = append(a.buf, d)
		return
	}
	a.buf[a.start] = d
	a.start = (a.start + 1) % a.cap
}

// Total reports how many decisions were ever recorded.
func (a *Audit) Total() int64 {
	if a == nil {
		return 0
	}
	return a.total
}

// Len reports how many decisions are retained.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.buf)
}

// All returns the retained decisions, oldest first.
func (a *Audit) All() []Decision {
	if a == nil {
		return nil
	}
	out := make([]Decision, 0, len(a.buf))
	for i := 0; i < len(a.buf); i++ {
		out = append(out, a.buf[(a.start+i)%len(a.buf)])
	}
	return out
}

// Recent returns the newest n retained decisions, oldest first.
func (a *Audit) Recent(n int) []Decision {
	all := a.All()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// ForSegment returns the retained decisions attributed to tertiary
// segment tag, oldest first — the `hldump -why` chain.
func (a *Audit) ForSegment(tag int) []Decision {
	var out []Decision
	for _, d := range a.All() {
		if d.Seg == tag {
			out = append(out, d)
		}
	}
	return out
}
