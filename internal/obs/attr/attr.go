// Package attr is the policy-attribution layer above internal/obs: it
// answers *which data* the storage hierarchy worked for, where obs
// answers *where the time went*.
//
// Two instruments:
//
//   - Table: per-tertiary-segment (and per-file) temperature records.
//     Every cache hit, demand fetch, staging migration, copy-out,
//     ejection, and clean is attributed to the segment it touched,
//     maintaining access counts, the last-touch virtual time, and an
//     exponentially-decayed heat score. Aggregated Snapshot() views are
//     what hlbench -serve exports as /heatmap.
//
//   - Audit (audit.go): the migration decision log — for every
//     candidate the migrator or the tertiary cleaner selects or skips,
//     the policy inputs and the verdict, queryable as `hldump -why`.
//
// Like obs, everything is keyed to the simulation's virtual clock and
// all methods are safe on a nil receiver, so components can attribute
// unconditionally. Heat decay uses math.Exp2 on virtual-time ratios:
// a pure function of recorded events, so a deterministic run produces
// a bit-identical table (pinned by the telemetry determinism tests).
package attr

import (
	"math"
	"sort"
	"time"

	"repro/internal/sim"
)

// Kind classifies one attributed event.
type Kind int

const (
	// Hit is a segment-cache hit.
	Hit Kind = iota
	// Miss is a segment-cache miss (the demand fetch it triggers is
	// attributed separately when it completes).
	Miss
	// Fetch is a completed demand fetch from tertiary storage.
	Fetch
	// Stage marks blocks staged into the segment by the migrator.
	Stage
	// Copyout marks the segment's arrival on tertiary media.
	Copyout
	// Evict is a cache-line ejection.
	Evict
	// Clean marks the tertiary cleaner re-staging the segment's live
	// blocks elsewhere.
	Clean
)

// String names the event kind (stable; used in exports).
func (k Kind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Fetch:
		return "fetch"
	case Stage:
		return "stage"
	case Copyout:
		return "copyout"
	case Evict:
		return "evict"
	case Clean:
		return "clean"
	}
	return "unknown"
}

// heatWeight is the per-event heat contribution. Reads dominate: a
// demand fetch is the expensive event the policies exist to avoid, so
// it outweighs an in-cache hit; bookkeeping events (copy-out, evict,
// clean) count but add no heat.
func heatWeight(k Kind) float64 {
	switch k {
	case Hit:
		return 1
	case Fetch:
		return 4
	case Stage:
		return 2
	default:
		return 0
	}
}

// DefaultHalfLife is the heat decay half-life: 30 virtual seconds, a
// few migrator poll intervals.
const DefaultHalfLife = 30 * sim.Time(time.Second)

// SegRecord is the temperature record of one tertiary segment.
type SegRecord struct {
	Tag int

	Hits, Misses, Fetches int64
	Stages, Copyouts      int64
	Evicts, Cleans        int64

	LastTouch sim.Time

	// heat is the decayed score as of heatAt; Heat() rolls it forward.
	heat   float64
	heatAt sim.Time
}

// Heat returns the record's exponentially-decayed heat as of now.
func (r *SegRecord) Heat(halfLife sim.Time, now sim.Time) float64 {
	if r == nil {
		return 0
	}
	return decay(r.heat, r.heatAt, now, halfLife)
}

func decay(heat float64, from, to sim.Time, halfLife sim.Time) float64 {
	if to <= from || heat == 0 {
		return heat
	}
	return heat * math.Exp2(-float64(to-from)/float64(halfLife))
}

// FileRecord attributes migration activity to one file.
type FileRecord struct {
	Inum        uint32
	Migrations  int64
	BytesStaged int64
	LastStaged  sim.Time
}

// Table is the heat-attribution table. The zero value is not usable;
// call NewTable. A nil *Table is valid everywhere and inert.
type Table struct {
	// HalfLife is the heat decay half-life (DefaultHalfLife if NewTable
	// was given 0).
	HalfLife sim.Time

	segs     map[int]*SegRecord
	segOrder []int

	files     map[uint32]*FileRecord
	fileOrder []uint32
}

// NewTable creates a heat table. halfLife 0 selects DefaultHalfLife.
func NewTable(halfLife sim.Time) *Table {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Table{
		HalfLife: halfLife,
		segs:     map[int]*SegRecord{},
		files:    map[uint32]*FileRecord{},
	}
}

func (t *Table) seg(tag int) *SegRecord {
	r := t.segs[tag]
	if r == nil {
		r = &SegRecord{Tag: tag}
		t.segs[tag] = r
		t.segOrder = append(t.segOrder, tag)
	}
	return r
}

// Touch attributes one event to tertiary segment tag at virtual time
// now: the matching count increments, LastTouch advances, and the heat
// decays to now before the event's weight is added.
func (t *Table) Touch(tag int, k Kind, now sim.Time) {
	if t == nil {
		return
	}
	r := t.seg(tag)
	switch k {
	case Hit:
		r.Hits++
	case Miss:
		r.Misses++
	case Fetch:
		r.Fetches++
	case Stage:
		r.Stages++
	case Copyout:
		r.Copyouts++
	case Evict:
		r.Evicts++
	case Clean:
		r.Cleans++
	}
	if now > r.LastTouch {
		r.LastTouch = now
	}
	r.heat = decay(r.heat, r.heatAt, now, t.HalfLife) + heatWeight(k)
	r.heatAt = now
}

// TouchFile attributes a staging migration of bytes from file inum.
func (t *Table) TouchFile(inum uint32, bytes int64, now sim.Time) {
	if t == nil {
		return
	}
	f := t.files[inum]
	if f == nil {
		f = &FileRecord{Inum: inum}
		t.files[inum] = f
		t.fileOrder = append(t.fileOrder, inum)
	}
	f.Migrations++
	f.BytesStaged += bytes
	if now > f.LastStaged {
		f.LastStaged = now
	}
}

// Heat returns segment tag's decayed heat as of now (0 if untouched).
func (t *Table) Heat(tag int, now sim.Time) float64 {
	if t == nil {
		return 0
	}
	return t.segs[tag].Heat(t.HalfLife, now)
}

// Seg returns a copy of tag's record (ok=false if never touched).
func (t *Table) Seg(tag int) (SegRecord, bool) {
	if t == nil {
		return SegRecord{}, false
	}
	r, ok := t.segs[tag]
	if !ok {
		return SegRecord{}, false
	}
	return *r, true
}

// SegEntry is one row of a heat-map snapshot.
type SegEntry struct {
	Tag       int     `json:"tag"`
	Heat      float64 `json:"heat"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Fetches   int64   `json:"fetches"`
	Stages    int64   `json:"stages"`
	Copyouts  int64   `json:"copyouts"`
	Evicts    int64   `json:"evicts"`
	Cleans    int64   `json:"cleans"`
	LastTouch float64 `json:"last_touch_s"`
}

// FileEntry is one per-file attribution row of a snapshot.
type FileEntry struct {
	Inum        uint32  `json:"inum"`
	Migrations  int64   `json:"migrations"`
	BytesStaged int64   `json:"bytes_staged"`
	LastStaged  float64 `json:"last_staged_s"`
}

// Snapshot aggregates the table into an exportable heat map: per-
// segment entries in tag order with heat decayed to now, plus the
// per-file migration attribution.
type Snapshot struct {
	NowSeconds float64     `json:"now_s"`
	Segments   []SegEntry  `json:"segments"`
	Files      []FileEntry `json:"files"`
}

// Snapshot renders the table as of now. Nil-safe (returns an empty
// snapshot).
func (t *Table) Snapshot(now sim.Time) *Snapshot {
	s := &Snapshot{NowSeconds: now.Seconds()}
	if t == nil {
		return s
	}
	tags := append([]int(nil), t.segOrder...)
	sort.Ints(tags)
	for _, tag := range tags {
		r := t.segs[tag]
		s.Segments = append(s.Segments, SegEntry{
			Tag:       r.Tag,
			Heat:      r.Heat(t.HalfLife, now),
			Hits:      r.Hits,
			Misses:    r.Misses,
			Fetches:   r.Fetches,
			Stages:    r.Stages,
			Copyouts:  r.Copyouts,
			Evicts:    r.Evicts,
			Cleans:    r.Cleans,
			LastTouch: r.LastTouch.Seconds(),
		})
	}
	inums := append([]uint32(nil), t.fileOrder...)
	sort.Slice(inums, func(a, b int) bool { return inums[a] < inums[b] })
	for _, in := range inums {
		f := t.files[in]
		s.Files = append(s.Files, FileEntry{
			Inum:        f.Inum,
			Migrations:  f.Migrations,
			BytesStaged: f.BytesStaged,
			LastStaged:  f.LastStaged.Seconds(),
		})
	}
	return s
}
