// Package obs is the virtual-time observability subsystem: spans,
// counters, gauges, and histograms keyed to the simulation kernel's
// clock.
//
// Every timestamp comes from sim.Kernel.Now() — never the wall clock —
// so a trace of a deterministic run is itself deterministic:
// byte-identical across repeated runs and across hosts. That makes
// trace diffs meaningful (any change is a behavior change, not jitter)
// and lets the crash-injection matrix run fully instrumented without
// perturbing the durability model.
//
// Two retention modes:
//
//   - Metrics-only (the default): spans are folded into per-(track,
//     category) aggregates (count + total duration) in O(1) space.
//     This is what the benchmark tables consume via CatTotal, and it is
//     cheap enough to leave on everywhere, including soak tests.
//   - Full trace (EnableTrace): every span and instant event is
//     retained for export as Chrome trace-event JSON (WriteChromeTrace)
//     or a plain-text timeline/summary (WriteTimeline, WriteSummary).
//
// All methods are safe on a nil *Obs (they do nothing and return zero
// values), so components can be instrumented unconditionally. Mutation
// is not locked: in the simulation all activity happens inside kernel
// procs, which run one at a time with channel handoffs establishing
// happens-before, matching the existing stats-field style.
package obs

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Arg is one integer key/value annotation on a span or instant event.
// Values are int64 only — enough for block numbers, byte counts, tags —
// which keeps export formatting trivially deterministic.
type Arg struct {
	Key string
	Val int64
}

// A Span is one closed interval of virtual time on a named track.
// Track is the emitting component ("RZ57-main", "tertiary.io");
// Cat is the operation class ("disk.read", "fp.write") that aggregation
// and the benchmark tables key on; Name is the human-readable label.
// Instant marks a zero-duration point event (cache hit, power cut).
type Span struct {
	Track, Cat, Name string
	Start, Dur       sim.Time
	Instant          bool
	Args             []Arg
}

// SpanAgg is the metrics-only rollup of one (track, category) pair.
type SpanAgg struct {
	Track, Cat string
	Count      int64
	Total      sim.Time
}

// Counter is a monotonically increasing int64.
type Counter struct {
	Name string
	v    int64
}

// Add increases the counter. Safe on a nil receiver.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a sampled instantaneous value (queue depth, lines in use).
// When the owning Obs retains a full trace, every Set records a
// timestamped sample so exporters can draw the timeline.
type Gauge struct {
	Name     string
	v, max   int64
	o        *Obs
	samples  []gaugeSample
	sampled  bool
	everySet bool
}

type gaugeSample struct {
	T sim.Time
	V int64
}

// Set records the gauge's current value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
	if g.o != nil && g.o.retain {
		g.samples = append(g.samples, gaugeSample{T: g.o.Now(), V: v})
	}
}

// Value returns the last value set (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the largest value ever set (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram buckets virtual-time durations. Bounds are the inclusive
// upper edges of the first len(Bounds) buckets; the last bucket is
// unbounded.
type Histogram struct {
	Name   string
	Bounds []sim.Time
	Counts []int64
	N      int64
	Sum    sim.Time
}

// LatencyBounds is the default bucket layout for request latencies:
// 1ms / 10ms / 100ms / 1s / 10s / 100s / +inf.
var LatencyBounds = []sim.Time{
	sim.Time(1e6), sim.Time(1e7), sim.Time(1e8),
	sim.Time(1e9), sim.Time(1e10), sim.Time(1e11),
}

// Observe adds one duration. Safe on a nil receiver, and on a
// hand-built histogram whose Counts slice was never sized (one bucket
// per bound plus the unbounded overflow bucket).
func (h *Histogram) Observe(d sim.Time) {
	if h == nil {
		return
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		nc := make([]int64, len(h.Bounds)+1)
		copy(nc, h.Counts)
		h.Counts = nc
	}
	i := sort.Search(len(h.Bounds), func(i int) bool { return d <= h.Bounds[i] })
	h.Counts[i]++
	h.N++
	h.Sum += d
}

// Mean returns the average observed duration (0 if empty or nil).
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.N == 0 {
		return 0
	}
	return h.Sum / sim.Time(h.N)
}

// Quantile estimates the p-quantile (0 < p <= 1) of the observed
// durations from the bucket counts, interpolating linearly within the
// bucket that holds the target rank (bucket lower edge .. upper edge).
// The unbounded last bucket is clamped to its lower edge, so a p99 of
// an overflowing histogram reports "at least the largest bound".
// Returns 0 for an empty or nil histogram. Out-of-range p clamps to
// [0, 1]; NaN clamps to 0 (the smallest retained rank) rather than
// poisoning the interpolation.
func (h *Histogram) Quantile(p float64) sim.Time {
	if h == nil || h.N == 0 {
		return 0
	}
	if len(h.Bounds) == 0 {
		return h.Mean() // degenerate single-bucket histogram
	}
	if p <= 0 || math.IsNaN(p) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// rank is the 1-based index of the target observation.
	rank := p * float64(h.N)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		var lo, hi sim.Time
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if i < len(h.Bounds) {
			hi = h.Bounds[i]
		} else {
			// Overflow bucket: no upper edge to interpolate toward.
			return h.Bounds[len(h.Bounds)-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + sim.Time(frac*float64(hi-lo))
	}
	return h.Bounds[len(h.Bounds)-1] // unreachable for consistent counts
}

// P50 is the median observed duration.
func (h *Histogram) P50() sim.Time { return h.Quantile(0.50) }

// P99 is the 99th-percentile observed duration.
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }

// Obs is one observability domain: a registry of spans, counters,
// gauges, and histograms sharing a kernel clock. The zero value is not
// usable; call New. A nil *Obs is valid everywhere and inert.
type Obs struct {
	k      *sim.Kernel
	retain bool

	spans []Span

	aggOrder []string
	aggs     map[string]*SpanAgg

	counterOrder []string
	counters     map[string]*Counter

	gaugeOrder []string
	gauges     map[string]*Gauge

	histOrder []string
	hists     map[string]*Histogram
}

// New creates an observability domain on the given kernel's clock.
func New(k *sim.Kernel) *Obs {
	return &Obs{
		k:        k,
		aggs:     map[string]*SpanAgg{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// EnableTrace switches from metrics-only aggregation to full span
// retention (required for WriteChromeTrace / WriteTimeline). Spans
// emitted before the call are not retroactively retained.
func (o *Obs) EnableTrace() {
	if o != nil {
		o.retain = true
	}
}

// TraceEnabled reports whether full spans are being retained.
func (o *Obs) TraceEnabled() bool { return o != nil && o.retain }

// Now returns the kernel's virtual clock (0 for nil).
func (o *Obs) Now() sim.Time {
	if o == nil {
		return 0
	}
	return o.k.Now()
}

// Span records an interval from start to the current virtual time on
// track, classified under cat. Call it at the *end* of the operation.
func (o *Obs) Span(track, cat, name string, start sim.Time, args ...Arg) {
	if o == nil {
		return
	}
	o.record(Span{Track: track, Cat: cat, Name: name, Start: start, Dur: o.k.Now() - start, Args: args})
}

// Instant records a zero-duration point event at the current virtual
// time. Instants count toward CatCount but contribute no duration.
func (o *Obs) Instant(track, cat, name string, args ...Arg) {
	if o == nil {
		return
	}
	o.record(Span{Track: track, Cat: cat, Name: name, Start: o.k.Now(), Instant: true, Args: args})
}

func (o *Obs) record(s Span) {
	key := s.Track + "\x00" + s.Cat
	a := o.aggs[key]
	if a == nil {
		a = &SpanAgg{Track: s.Track, Cat: s.Cat}
		o.aggs[key] = a
		o.aggOrder = append(o.aggOrder, key)
	}
	a.Count++
	a.Total += s.Dur
	if o.retain {
		o.spans = append(o.spans, s)
	}
}

// Counter returns (creating on first use) the named counter. Returns
// nil — itself safe to use — when o is nil.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	c := o.counters[name]
	if c == nil {
		c = &Counter{Name: name}
		o.counters[name] = c
		o.counterOrder = append(o.counterOrder, name)
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	g := o.gauges[name]
	if g == nil {
		g = &Gauge{Name: name, o: o}
		o.gauges[name] = g
		o.gaugeOrder = append(o.gaugeOrder, name)
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with
// the given bucket bounds; bounds are ignored if it already exists.
func (o *Obs) Histogram(name string, bounds []sim.Time) *Histogram {
	if o == nil {
		return nil
	}
	h := o.hists[name]
	if h == nil {
		h = &Histogram{Name: name, Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
		o.hists[name] = h
		o.histOrder = append(o.histOrder, name)
	}
	return h
}

// CatTotal sums the recorded span durations of one category across all
// tracks. This is what the benchmark tables are derived from.
func (o *Obs) CatTotal(cat string) sim.Time {
	if o == nil {
		return 0
	}
	var t sim.Time
	for _, key := range o.aggOrder {
		if a := o.aggs[key]; a.Cat == cat {
			t += a.Total
		}
	}
	return t
}

// CatCount sums the recorded span/instant counts of one category.
func (o *Obs) CatCount(cat string) int64 {
	if o == nil {
		return 0
	}
	var n int64
	for _, key := range o.aggOrder {
		if a := o.aggs[key]; a.Cat == cat {
			n += a.Count
		}
	}
	return n
}

// TrackTotal sums all span durations on one track (its busy time).
func (o *Obs) TrackTotal(track string) sim.Time {
	if o == nil {
		return 0
	}
	var t sim.Time
	for _, key := range o.aggOrder {
		if a := o.aggs[key]; a.Track == track {
			t += a.Total
		}
	}
	return t
}

// Aggregates returns the per-(track, category) rollups in first-
// appearance order.
func (o *Obs) Aggregates() []*SpanAgg {
	if o == nil {
		return nil
	}
	out := make([]*SpanAgg, 0, len(o.aggOrder))
	for _, key := range o.aggOrder {
		out = append(out, o.aggs[key])
	}
	return out
}

// Spans returns the retained spans in emission order (nil unless
// EnableTrace was called before they were emitted).
func (o *Obs) Spans() []Span {
	if o == nil {
		return nil
	}
	return o.spans
}

// Counters returns every counter in first-appearance order.
func (o *Obs) Counters() []*Counter {
	if o == nil {
		return nil
	}
	out := make([]*Counter, 0, len(o.counterOrder))
	for _, name := range o.counterOrder {
		out = append(out, o.counters[name])
	}
	return out
}

// Gauges returns every gauge in first-appearance order.
func (o *Obs) Gauges() []*Gauge {
	if o == nil {
		return nil
	}
	out := make([]*Gauge, 0, len(o.gaugeOrder))
	for _, name := range o.gaugeOrder {
		out = append(out, o.gauges[name])
	}
	return out
}

// Histograms returns every histogram in first-appearance order.
func (o *Obs) Histograms() []*Histogram {
	if o == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(o.histOrder))
	for _, name := range o.histOrder {
		out = append(out, o.hists[name])
	}
	return out
}
