package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// run executes fn inside a proc on a fresh kernel and returns the obs
// domain that was live during it.
func run(t *testing.T, retain bool, fn func(p *sim.Proc, o *Obs)) *Obs {
	t.Helper()
	k := sim.NewKernel()
	o := New(k)
	if retain {
		o.EnableTrace()
	}
	k.RunProc(func(p *sim.Proc) { fn(p, o) })
	k.Stop()
	return o
}

func TestNilObsIsInert(t *testing.T) {
	var o *Obs
	o.Span("t", "c", "n", 0)
	o.Instant("t", "c", "n")
	o.EnableTrace()
	o.Counter("x").Add(5)
	o.Gauge("g").Set(7)
	o.Histogram("h", LatencyBounds).Observe(sim.Time(1e6))
	if o.CatTotal("c") != 0 || o.CatCount("c") != 0 || o.TrackTotal("t") != 0 {
		t.Fatal("nil Obs recorded something")
	}
	if o.Counter("x").Value() != 0 || o.Gauge("g").Value() != 0 || o.Gauge("g").Max() != 0 {
		t.Fatal("nil-backed instruments returned nonzero values")
	}
	if o.Histogram("h", LatencyBounds).Mean() != 0 {
		t.Fatal("nil histogram has a mean")
	}
	if o.Spans() != nil || o.Aggregates() != nil || o.TraceEnabled() {
		t.Fatal("nil Obs exposes state")
	}
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil Obs exported a trace")
	}
}

func TestAggregation(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(2e9))
		o.Span("disk", "disk.read", "read", t0)
		t1 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("disk", "disk.write", "write", t1)
		o.Instant("disk", "disk.fault", "boom")
	})
	if got := o.CatTotal("disk.read"); got != sim.Time(2e9) {
		t.Fatalf("CatTotal(disk.read) = %v, want 2s", got)
	}
	if got := o.TrackTotal("disk"); got != sim.Time(3e9) {
		t.Fatalf("TrackTotal(disk) = %v, want 3s", got)
	}
	if got := o.CatCount("disk.fault"); got != 1 {
		t.Fatalf("CatCount(disk.fault) = %d, want 1", got)
	}
	if len(o.Spans()) != 0 {
		t.Fatal("metrics-only mode retained spans")
	}
	aggs := o.Aggregates()
	if len(aggs) != 3 || aggs[0].Cat != "disk.read" || aggs[2].Cat != "disk.fault" {
		t.Fatalf("aggregates not in first-appearance order: %+v", aggs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		h := o.Histogram("lat", LatencyBounds)
		h.Observe(sim.Time(5e5))  // 0.5ms → bucket 0 (≤1ms)
		h.Observe(sim.Time(1e6))  // exactly 1ms → bucket 0 (inclusive edge)
		h.Observe(sim.Time(5e9))  // 5s → bucket 4 (≤10s)
		h.Observe(sim.Time(1e12)) // 1000s → overflow bucket
	})
	h := o.Histogram("lat", nil) // existing: bounds ignored
	want := []int64{2, 0, 0, 0, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
}

func TestGaugeSamplesOnlyWhenRetaining(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		g := o.Gauge("depth")
		g.Set(3)
		g.Set(9)
		g.Set(4)
	})
	g := o.Gauge("depth")
	if g.Value() != 4 || g.Max() != 9 {
		t.Fatalf("gauge last/max = %d/%d, want 4/9", g.Value(), g.Max())
	}
	if len(g.samples) != 0 {
		t.Fatal("metrics-only gauge retained samples")
	}
	o2 := run(t, true, func(p *sim.Proc, o *Obs) {
		o.Gauge("depth").Set(3)
	})
	if len(o2.Gauge("depth").samples) != 1 {
		t.Fatal("retaining gauge dropped its sample")
	}
}

func TestChromeTraceShapeAndDeterminism(t *testing.T) {
	workload := func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(1500)) // 1.5µs: exercises fractional usec output
		o.Span("io", "io.read", "read", t0, Arg{Key: "blk", Val: 7})
		o.Instant("svc", "svc.fault", "transient")
		o.Gauge("q").Set(2)
	}
	var outs []string
	for i := 0; i < 2; i++ {
		o := run(t, true, workload)
		var buf bytes.Buffer
		if err := o.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("two identical runs produced different trace bytes")
	}
	got := outs[0]
	for _, want := range []string{
		`"ph":"M"`, `"name":"io"`, // thread metadata
		`"ph":"X"`, `"dur":1.500`, `"blk":7`, // complete span, fractional µs
		`"ph":"i"`, `"s":"t"`, // instant
		`"ph":"C"`, `"value":2`, // gauge counter sample
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("trace missing %s:\n%s", want, got)
		}
	}
	if !strings.HasPrefix(got, `{"traceEvents":[`) {
		t.Fatalf("trace is not a traceEvents object:\n%s", got)
	}
}

func TestChromeTraceRequiresRetention(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		o.Instant("t", "c", "n")
	})
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("export without EnableTrace should fail")
	}
}

func TestTimelineFilterAndOrder(t *testing.T) {
	o := run(t, true, func(p *sim.Proc, o *Obs) {
		// Span A starts first but is recorded after B (recorded at end).
		a0 := p.Now()
		p.Sleep(sim.Time(1e9))
		b0 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("x", "keep", "B", b0)
		o.Span("x", "keep", "A", a0)
		o.Instant("x", "drop", "C")
	})
	var buf bytes.Buffer
	o.WriteTimeline(&buf, "keep")
	out := buf.String()
	if strings.Contains(out, "C") {
		t.Fatalf("filtered category leaked into timeline:\n%s", out)
	}
	ia, ib := strings.Index(out, "A"), strings.Index(out, "B")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("timeline not sorted by start time:\n%s", out)
	}
	if !strings.Contains(out, "Timeline (2 events)") {
		t.Fatalf("unexpected event count:\n%s", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	bounds := []sim.Time{100, 200, 300}
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		h := o.Histogram("q", bounds)
		for i := 0; i < 3; i++ {
			h.Observe(sim.Time(50)) // bucket 0 (≤100)
		}
		h.Observe(sim.Time(250)) // bucket 2 (≤300)
	})
	h := o.Histogram("q", nil)
	// p50: rank 2 of 4 lands in bucket 0 → interpolate 2/3 of [0,100).
	if got, want := h.P50(), sim.Time(66); got < want || got > want+1 {
		t.Fatalf("P50 = %v, want ~%v", got, want)
	}
	// p99: rank 3.96 lands in bucket 2 → 0.96 of [200,300).
	if got := h.P99(); got != sim.Time(296) {
		t.Fatalf("P99 = %v, want 296", got)
	}
	// p=1 fills the last occupied bucket exactly.
	if got := h.Quantile(1); got != sim.Time(300) {
		t.Fatalf("Quantile(1) = %v, want 300", got)
	}
	// Out-of-range p clamps rather than panicking.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range p not clamped")
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	bounds := []sim.Time{100, 200}
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		h := o.Histogram("ovf", bounds)
		h.Observe(sim.Time(50))
		h.Observe(sim.Time(5000)) // overflow bucket
		h.Observe(sim.Time(5000))
	})
	h := o.Histogram("ovf", nil)
	// p99 lands in the unbounded overflow bucket: clamp to the largest
	// finite bound instead of inventing a value.
	if got := h.P99(); got != sim.Time(200) {
		t.Fatalf("overflow P99 = %v, want clamp to 200", got)
	}
}

func TestHistogramQuantileEmptyAndNil(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 || h.P50() != 0 || h.P99() != 0 {
		t.Fatal("nil histogram produced a quantile")
	}
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		o.Histogram("empty", LatencyBounds)
	})
	if got := o.Histogram("empty", nil).Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestInstrumentAccessors(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		o.Counter("b").Add(1)
		o.Counter("a").Add(2)
		o.Gauge("g1").Set(3)
		o.Histogram("h1", LatencyBounds).Observe(sim.Time(1e6))
	})
	cs := o.Counters()
	if len(cs) != 2 || cs[0].Name != "b" || cs[1].Name != "a" {
		t.Fatalf("counters not in first-appearance order: %+v", cs)
	}
	if gs := o.Gauges(); len(gs) != 1 || gs[0].Name != "g1" {
		t.Fatalf("gauges wrong: %+v", gs)
	}
	if hs := o.Histograms(); len(hs) != 1 || hs[0].Name != "h1" {
		t.Fatalf("histograms wrong: %+v", hs)
	}
	var nilObs *Obs
	if nilObs.Counters() != nil || nilObs.Gauges() != nil || nilObs.Histograms() != nil {
		t.Fatal("nil Obs returned instruments")
	}
}

func TestTimelineTrackFilter(t *testing.T) {
	o := run(t, true, func(p *sim.Proc, o *Obs) {
		o.Instant("disk0", "io", "A")
		o.Instant("disk1", "io", "B")
		o.Instant("disk0", "meta", "C")
	})
	var buf bytes.Buffer
	o.WriteTimelineFiltered(&buf, []string{"disk0"}, nil)
	out := buf.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "C") || strings.Contains(out, "B") {
		t.Fatalf("track filter wrong:\n%s", out)
	}
	// Both dimensions compose with AND.
	buf.Reset()
	o.WriteTimelineFiltered(&buf, []string{"disk0"}, []string{"io"})
	out = buf.String()
	if !strings.Contains(out, "Timeline (1 events)") || !strings.Contains(out, "A") {
		t.Fatalf("track+cat filter wrong:\n%s", out)
	}
}

func TestSummaryListsInstruments(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("disk", "disk.read", "read", t0)
		o.Counter("bytes").Add(42)
		o.Gauge("depth").Set(3)
		o.Histogram("lat", LatencyBounds).Observe(sim.Time(2e6))
	})
	var buf bytes.Buffer
	o.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"disk.read", "bytes", "42", "depth", "lat", "≤10ms:1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
