package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// run executes fn inside a proc on a fresh kernel and returns the obs
// domain that was live during it.
func run(t *testing.T, retain bool, fn func(p *sim.Proc, o *Obs)) *Obs {
	t.Helper()
	k := sim.NewKernel()
	o := New(k)
	if retain {
		o.EnableTrace()
	}
	k.RunProc(func(p *sim.Proc) { fn(p, o) })
	k.Stop()
	return o
}

func TestNilObsIsInert(t *testing.T) {
	var o *Obs
	o.Span("t", "c", "n", 0)
	o.Instant("t", "c", "n")
	o.EnableTrace()
	o.Counter("x").Add(5)
	o.Gauge("g").Set(7)
	o.Histogram("h", LatencyBounds).Observe(sim.Time(1e6))
	if o.CatTotal("c") != 0 || o.CatCount("c") != 0 || o.TrackTotal("t") != 0 {
		t.Fatal("nil Obs recorded something")
	}
	if o.Counter("x").Value() != 0 || o.Gauge("g").Value() != 0 || o.Gauge("g").Max() != 0 {
		t.Fatal("nil-backed instruments returned nonzero values")
	}
	if o.Histogram("h", LatencyBounds).Mean() != 0 {
		t.Fatal("nil histogram has a mean")
	}
	if o.Spans() != nil || o.Aggregates() != nil || o.TraceEnabled() {
		t.Fatal("nil Obs exposes state")
	}
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil Obs exported a trace")
	}
}

func TestAggregation(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(2e9))
		o.Span("disk", "disk.read", "read", t0)
		t1 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("disk", "disk.write", "write", t1)
		o.Instant("disk", "disk.fault", "boom")
	})
	if got := o.CatTotal("disk.read"); got != sim.Time(2e9) {
		t.Fatalf("CatTotal(disk.read) = %v, want 2s", got)
	}
	if got := o.TrackTotal("disk"); got != sim.Time(3e9) {
		t.Fatalf("TrackTotal(disk) = %v, want 3s", got)
	}
	if got := o.CatCount("disk.fault"); got != 1 {
		t.Fatalf("CatCount(disk.fault) = %d, want 1", got)
	}
	if len(o.Spans()) != 0 {
		t.Fatal("metrics-only mode retained spans")
	}
	aggs := o.Aggregates()
	if len(aggs) != 3 || aggs[0].Cat != "disk.read" || aggs[2].Cat != "disk.fault" {
		t.Fatalf("aggregates not in first-appearance order: %+v", aggs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		h := o.Histogram("lat", LatencyBounds)
		h.Observe(sim.Time(5e5))  // 0.5ms → bucket 0 (≤1ms)
		h.Observe(sim.Time(1e6))  // exactly 1ms → bucket 0 (inclusive edge)
		h.Observe(sim.Time(5e9))  // 5s → bucket 4 (≤10s)
		h.Observe(sim.Time(1e12)) // 1000s → overflow bucket
	})
	h := o.Histogram("lat", nil) // existing: bounds ignored
	want := []int64{2, 0, 0, 0, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
}

func TestGaugeSamplesOnlyWhenRetaining(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		g := o.Gauge("depth")
		g.Set(3)
		g.Set(9)
		g.Set(4)
	})
	g := o.Gauge("depth")
	if g.Value() != 4 || g.Max() != 9 {
		t.Fatalf("gauge last/max = %d/%d, want 4/9", g.Value(), g.Max())
	}
	if len(g.samples) != 0 {
		t.Fatal("metrics-only gauge retained samples")
	}
	o2 := run(t, true, func(p *sim.Proc, o *Obs) {
		o.Gauge("depth").Set(3)
	})
	if len(o2.Gauge("depth").samples) != 1 {
		t.Fatal("retaining gauge dropped its sample")
	}
}

func TestChromeTraceShapeAndDeterminism(t *testing.T) {
	workload := func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(1500)) // 1.5µs: exercises fractional usec output
		o.Span("io", "io.read", "read", t0, Arg{Key: "blk", Val: 7})
		o.Instant("svc", "svc.fault", "transient")
		o.Gauge("q").Set(2)
	}
	var outs []string
	for i := 0; i < 2; i++ {
		o := run(t, true, workload)
		var buf bytes.Buffer
		if err := o.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("two identical runs produced different trace bytes")
	}
	got := outs[0]
	for _, want := range []string{
		`"ph":"M"`, `"name":"io"`, // thread metadata
		`"ph":"X"`, `"dur":1.500`, `"blk":7`, // complete span, fractional µs
		`"ph":"i"`, `"s":"t"`, // instant
		`"ph":"C"`, `"value":2`, // gauge counter sample
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("trace missing %s:\n%s", want, got)
		}
	}
	if !strings.HasPrefix(got, `{"traceEvents":[`) {
		t.Fatalf("trace is not a traceEvents object:\n%s", got)
	}
}

func TestChromeTraceRequiresRetention(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		o.Instant("t", "c", "n")
	})
	if err := o.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("export without EnableTrace should fail")
	}
}

func TestTimelineFilterAndOrder(t *testing.T) {
	o := run(t, true, func(p *sim.Proc, o *Obs) {
		// Span A starts first but is recorded after B (recorded at end).
		a0 := p.Now()
		p.Sleep(sim.Time(1e9))
		b0 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("x", "keep", "B", b0)
		o.Span("x", "keep", "A", a0)
		o.Instant("x", "drop", "C")
	})
	var buf bytes.Buffer
	o.WriteTimeline(&buf, "keep")
	out := buf.String()
	if strings.Contains(out, "C") {
		t.Fatalf("filtered category leaked into timeline:\n%s", out)
	}
	ia, ib := strings.Index(out, "A"), strings.Index(out, "B")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("timeline not sorted by start time:\n%s", out)
	}
	if !strings.Contains(out, "Timeline (2 events)") {
		t.Fatalf("unexpected event count:\n%s", out)
	}
}

func TestSummaryListsInstruments(t *testing.T) {
	o := run(t, false, func(p *sim.Proc, o *Obs) {
		t0 := p.Now()
		p.Sleep(sim.Time(1e9))
		o.Span("disk", "disk.read", "read", t0)
		o.Counter("bytes").Add(42)
		o.Gauge("depth").Set(3)
		o.Histogram("lat", LatencyBounds).Observe(sim.Time(2e6))
	})
	var buf bytes.Buffer
	o.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"disk.read", "bytes", "42", "depth", "lat", "≤10ms:1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
