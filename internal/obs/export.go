// Exporters: Chrome trace-event JSON, plain-text summary, and a
// chronological timeline. All output is a pure function of the
// recorded data — iteration is over insertion-ordered slices (never
// bare map ranges) and numbers are formatted with fixed rules — so a
// deterministic run exports byte-identical files every time.
package obs

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// WriteChromeTrace emits the retained spans as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// chrome://tracing and Perfetto. Each track becomes a thread (tid in
// first-appearance order) under one process; spans are "X" complete
// events, instants are "i" events, and gauge samples are "C" counter
// events. Timestamps are virtual microseconds.
func (o *Obs) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: nil domain")
	}
	if !o.retain {
		return fmt.Errorf("obs: trace retention not enabled (call EnableTrace before the workload)")
	}
	tids := map[string]int{}
	var order []string
	tid := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
			order = append(order, track)
		}
		return id
	}
	for _, s := range o.spans {
		tid(s.Track)
	}

	ew := &errWriter{w: w}
	ew.printf("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			ew.printf(",\n")
		}
		first = false
		ew.printf("%s", line)
	}
	for _, track := range order {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tids[track], strconv.Quote(track)))
	}
	for _, s := range o.spans {
		args := ""
		for i, a := range s.Args {
			if i > 0 {
				args += ","
			}
			args += fmt.Sprintf("%s:%d", strconv.Quote(a.Key), a.Val)
		}
		if s.Instant {
			emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"cat":%s,"args":{%s}}`,
				tids[s.Track], usec(s.Start), strconv.Quote(s.Name), strconv.Quote(s.Cat), args))
			continue
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s,"args":{%s}}`,
			tids[s.Track], usec(s.Start), usec(s.Dur), strconv.Quote(s.Name), strconv.Quote(s.Cat), args))
	}
	for _, name := range o.gaugeOrder {
		g := o.gauges[name]
		for _, smp := range g.samples {
			emit(fmt.Sprintf(`{"ph":"C","pid":1,"tid":0,"ts":%s,"name":%s,"args":{"value":%d}}`,
				usec(smp.T), strconv.Quote(g.Name), smp.V))
		}
	}
	ew.printf("\n]}\n")
	return ew.err
}

// usec renders a virtual time as decimal microseconds (Chrome's unit)
// with nanosecond precision preserved.
func usec(t sim.Time) string {
	ns := int64(t)
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// WriteSummary renders the metrics-only view: per-(track, category)
// span rollups with utilization against the elapsed virtual time, then
// counters, gauges, and histograms, all in first-appearance order.
// Works in both retention modes.
func (o *Obs) WriteSummary(w io.Writer) {
	if o == nil {
		return
	}
	now := o.k.Now()
	fmt.Fprintf(w, "Observability summary (virtual time %.3fs)\n", now.Seconds())
	if len(o.aggOrder) > 0 {
		fmt.Fprintf(w, "  %-18s %-16s %8s %12s %12s %6s\n", "track", "category", "count", "total", "mean", "util")
		for _, key := range o.aggOrder {
			a := o.aggs[key]
			mean := sim.Time(0)
			if a.Count > 0 {
				mean = a.Total / sim.Time(a.Count)
			}
			util := 0.0
			if now > 0 {
				util = 100 * float64(a.Total) / float64(now)
			}
			fmt.Fprintf(w, "  %-18s %-16s %8d %11.3fs %11.6fs %5.1f%%\n",
				a.Track, a.Cat, a.Count, a.Total.Seconds(), mean.Seconds(), util)
		}
	}
	if len(o.counterOrder) > 0 {
		fmt.Fprintf(w, "  counters:\n")
		for _, name := range o.counterOrder {
			fmt.Fprintf(w, "    %-38s %12d\n", name, o.counters[name].v)
		}
	}
	if len(o.gaugeOrder) > 0 {
		fmt.Fprintf(w, "  gauges (last / max):\n")
		for _, name := range o.gaugeOrder {
			g := o.gauges[name]
			fmt.Fprintf(w, "    %-38s %6d / %6d\n", name, g.v, g.max)
		}
	}
	if len(o.histOrder) > 0 {
		fmt.Fprintf(w, "  histograms:\n")
		for _, name := range o.histOrder {
			h := o.hists[name]
			fmt.Fprintf(w, "    %-38s n=%-6d mean=%.6fs buckets:", name, h.N, h.Mean().Seconds())
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(w, " ≤%s:%d", shortDur(h.Bounds[i]), c)
				} else {
					fmt.Fprintf(w, " >%s:%d", shortDur(h.Bounds[len(h.Bounds)-1]), c)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

func shortDur(t sim.Time) string {
	switch {
	case t >= sim.Time(1e9) && int64(t)%1e9 == 0:
		return fmt.Sprintf("%ds", int64(t)/1e9)
	case t >= sim.Time(1e6) && int64(t)%1e6 == 0:
		return fmt.Sprintf("%dms", int64(t)/1e6)
	default:
		return fmt.Sprintf("%dus", int64(t)/1e3)
	}
}

// WriteTimeline renders the retained spans chronologically (by start
// time, emission order breaking ties). With cats, only spans whose
// category is listed are shown — e.g. just the top-level core.* and
// migration operations.
func (o *Obs) WriteTimeline(w io.Writer, cats ...string) {
	o.WriteTimelineFiltered(w, nil, cats)
}

// WriteTimelineFiltered is WriteTimeline with both filter dimensions:
// a span is shown when its track is in tracks AND its category is in
// cats; an empty slice leaves that dimension unfiltered.
func (o *Obs) WriteTimelineFiltered(w io.Writer, tracks, cats []string) {
	if o == nil {
		return
	}
	wantCat := map[string]bool{}
	for _, c := range cats {
		wantCat[c] = true
	}
	wantTrack := map[string]bool{}
	for _, t := range tracks {
		wantTrack[t] = true
	}
	idx := make([]int, 0, len(o.spans))
	for i, s := range o.spans {
		if len(wantCat) > 0 && !wantCat[s.Cat] {
			continue
		}
		if len(wantTrack) > 0 && !wantTrack[s.Track] {
			continue
		}
		idx = append(idx, i)
	}
	// Spans are recorded at completion; sort by start for the timeline.
	// Stable insertion sort keeps emission order on equal starts.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && o.spans[idx[j]].Start < o.spans[idx[j-1]].Start; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	fmt.Fprintf(w, "Timeline (%d events)\n", len(idx))
	for _, i := range idx {
		s := o.spans[i]
		if s.Instant {
			fmt.Fprintf(w, "  [%9.3fs          ] %-18s %-16s %s", s.Start.Seconds(), s.Track, s.Cat, s.Name)
		} else {
			fmt.Fprintf(w, "  [%9.3fs +%7.3fs] %-18s %-16s %s", s.Start.Seconds(), s.Dur.Seconds(), s.Track, s.Cat, s.Name)
		}
		for _, a := range s.Args {
			fmt.Fprintf(w, " %s=%d", a.Key, a.Val)
		}
		fmt.Fprintln(w)
	}
}
