package obs

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func msec(n int) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(msec(5)) // must not panic
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
	h := &Histogram{Bounds: LatencyBounds, Counts: make([]int64, len(LatencyBounds)+1)}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", p, got)
		}
	}
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean nonzero")
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := &Histogram{Bounds: LatencyBounds, Counts: make([]int64, len(LatencyBounds)+1)}
	h.Observe(msec(5))
	p50, p99 := h.P50(), h.P99()
	if p50 != p99 {
		t.Fatalf("single observation: p50 %v != p99 %v", p50, p99)
	}
	// The single 5 ms observation lives in the (1 ms, 10 ms] bucket; any
	// quantile must interpolate inside it.
	if p50 <= msec(1) || p50 > msec(10) {
		t.Fatalf("p50 %v outside the observation's bucket", p50)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := &Histogram{Bounds: LatencyBounds, Counts: make([]int64, len(LatencyBounds)+1)}
	for i := 0; i < 100; i++ {
		h.Observe(msec(i))
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if got := h.Quantile(-3); got != lo {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, hi)
	}
	if got := h.Quantile(math.NaN()); got != lo {
		t.Fatalf("Quantile(NaN) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if lo > h.P50() || h.P50() > h.P99() || h.P99() > hi {
		t.Fatalf("quantiles not monotone: %v %v %v %v", lo, h.P50(), h.P99(), hi)
	}
}

func TestHistogramOverflowBucketClamps(t *testing.T) {
	h := &Histogram{Bounds: LatencyBounds, Counts: make([]int64, len(LatencyBounds)+1)}
	h.Observe(sim.Time(1000 * time.Second)) // beyond the last bound
	want := LatencyBounds[len(LatencyBounds)-1]
	if got := h.P99(); got != want {
		t.Fatalf("overflow p99 = %v, want last bound %v", got, want)
	}
}

func TestHistogramHandBuiltCountsResize(t *testing.T) {
	// A hand-built histogram without a sized Counts slice must not panic
	// and must count into the right bucket.
	h := &Histogram{Bounds: LatencyBounds}
	h.Observe(msec(5))
	if h.N != 1 || len(h.Counts) != len(LatencyBounds)+1 {
		t.Fatalf("resize failed: N %d, %d counts", h.N, len(h.Counts))
	}
	if h.Counts[1] != 1 {
		t.Fatalf("observation landed in wrong bucket: %v", h.Counts)
	}
}
