// Package reqtrace is the per-request causal trace: where did this one
// request's latency come from? The aggregate observability layers
// (internal/obs, internal/obs/attr) can say "p99 stall is X"; reqtrace
// answers "request N spent 80% of its deadline waiting on a drive swap".
//
// A Trace rides the request's sim.Ctx (Ctx.SetTrace / Ctx.Trace) from
// front-end admission down through the cache directory, the striped disk
// farm, the tertiary service, and the jukebox drivers. Each layer records
// typed stages — queue-wait, cache-lookup, fetch-wait, stripe-io,
// drive-swap, media-transfer, retry-backoff, breaker-wait — against the
// virtual clock. Stages may nest and overlap (a fetch-wait encloses the
// drive-swap and media-transfer the I/O daemon performs on the waiter's
// behalf); the critical-path sweep attributes every instant of the
// request's life to the innermost stage open at that instant, so the
// per-stage exclusive durations always sum exactly to the end-to-end
// latency — the invariant the waterfall report and the soak property
// checks pin.
//
// Recording is pure observation: no virtual time is consumed, no RNG is
// drawn, and every structure is bounded, so tracing on leaves a
// deterministic run's externally visible schedule and metrics
// bit-identical (proved by the ablation_reqtrace bench row).
package reqtrace

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind types a stage of a request's life.
type Kind uint8

const (
	// KindQueueWait is time in the front end's admission queue.
	KindQueueWait Kind = iota
	// KindAdmission marks the admission decision (zero duration).
	KindAdmission
	// KindCacheLookup is the segment-cache directory consultation.
	KindCacheLookup
	// KindFetchWait is time blocked on a tertiary demand fetch.
	KindFetchWait
	// KindStripeIO is disk-farm I/O (reads of cache lines and the disk
	// region, the fetch's staging write) through the stripe layer.
	KindStripeIO
	// KindDriveSwap is a jukebox cartridge swap (picker + bus hold).
	KindDriveSwap
	// KindMediaTransfer is positioning + media transfer in a drive.
	KindMediaTransfer
	// KindRetryBackoff is virtual-time backoff between I/O retries.
	KindRetryBackoff
	// KindBreakerWait marks a fetch routed around an open circuit
	// breaker (zero duration — the detour's cost lands in the stages the
	// longer route pays).
	KindBreakerWait
	// KindExec is the residual: request time no recorded stage covers
	// (computation, buffer copies, unattributed waits).
	KindExec

	numKinds
)

var kindNames = [numKinds]string{
	"queue-wait", "admission", "cache-lookup", "fetch-wait", "stripe-io",
	"drive-swap", "media-transfer", "retry-backoff", "breaker-wait", "exec",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Kinds lists every stage kind in declaration order (for exporters).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// maxStages bounds one trace's stage list; a pathological request (a
// huge read touching hundreds of cache lines) stops recording detail
// rather than growing without bound. The critical-path invariant holds
// regardless: unrecorded time lands in the KindExec residual.
const maxStages = 512

// Stage is one recorded interval of a trace.
type Stage struct {
	Kind  Kind
	Note  string
	Start sim.Time
	End   sim.Time
	Open  bool // still running (forced closed when the trace completes)
}

// Trace is one request's record. All methods are nil-safe, so call
// sites can record unconditionally and pay nothing when untraced.
type Trace struct {
	ID       int64
	Class    string
	Submit   sim.Time
	Start    sim.Time // execution start (0 = never started)
	End      sim.Time
	Deadline sim.Time // absolute; 0 = none
	Err      string   // terminal error ("" = success)
	Done     bool
	Stages   []Stage
	Dropped  int // stages not recorded because maxStages was reached
}

// StageStart opens a stage at now and returns its index for StageEnd
// (-1 when not recorded: nil trace, completed trace, or stage cap).
func (tr *Trace) StageStart(kind Kind, now sim.Time, note string) int {
	if tr == nil || tr.Done {
		return -1
	}
	if len(tr.Stages) >= maxStages {
		tr.Dropped++
		return -1
	}
	tr.Stages = append(tr.Stages, Stage{Kind: kind, Note: note, Start: now, End: now, Open: true})
	return len(tr.Stages) - 1
}

// StageEnd closes the stage opened at index i. Closing an already-closed
// stage (the trace completed while a background I/O daemon still held
// the index) is a no-op, so the trace's invariants survive late writers.
func (tr *Trace) StageEnd(i int, now sim.Time) {
	if tr == nil || i < 0 || i >= len(tr.Stages) {
		return
	}
	if s := &tr.Stages[i]; s.Open {
		s.End = now
		s.Open = false
	}
}

// Mark records a zero-duration stage at now.
func (tr *Trace) Mark(kind Kind, now sim.Time, note string) {
	tr.StageEnd(tr.StageStart(kind, now, note), now)
}

// Latency is the end-to-end virtual-time latency (0 until Done).
func (tr *Trace) Latency() sim.Time {
	if tr == nil || !tr.Done {
		return 0
	}
	return tr.End - tr.Submit
}

// complete seals the trace: records the terminal state and force-closes
// every still-open stage at the completion instant, so a canceled or
// deadline-expired request whose layers never reached their StageEnd
// still satisfies the stages-within-[Submit,End] invariant.
func (tr *Trace) complete(now sim.Time, err error) {
	if tr == nil || tr.Done {
		return
	}
	tr.End = now
	if err != nil {
		tr.Err = err.Error()
	}
	for i := range tr.Stages {
		if tr.Stages[i].Open {
			tr.Stages[i].End = now
			tr.Stages[i].Open = false
		}
	}
	tr.Done = true
}

// PathSeg is one interval of the critical path: the innermost stage
// covering [Start, End), or the KindExec residual (StageIdx -1).
type PathSeg struct {
	Kind     Kind
	Note     string
	Start    sim.Time
	End      sim.Time
	StageIdx int
}

// CriticalPath partitions [Submit, End] into segments, each attributed
// to the innermost (latest-started; ties to the latest-recorded) stage
// open over it. Time no stage covers becomes a KindExec segment. The
// segments are contiguous and exactly cover the request's life, so
// their durations sum to Latency() by construction.
func (tr *Trace) CriticalPath() []PathSeg {
	if tr == nil || !tr.Done || tr.End <= tr.Submit {
		return nil
	}
	lo, hi := tr.Submit, tr.End
	clamp := func(t sim.Time) sim.Time {
		if t < lo {
			return lo
		}
		if t > hi {
			return hi
		}
		return t
	}
	points := make([]sim.Time, 0, 2*len(tr.Stages)+2)
	points = append(points, lo, hi)
	for i := range tr.Stages {
		points = append(points, clamp(tr.Stages[i].Start), clamp(tr.Stages[i].End))
	}
	sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
	var segs []PathSeg
	for i := 0; i+1 < len(points); i++ {
		a, b := points[i], points[i+1]
		if b <= a {
			continue
		}
		// Innermost open stage over [a, b): max clamped Start, ties to
		// the latest-recorded stage (append order is causal order).
		best := -1
		var bestStart sim.Time
		for j := range tr.Stages {
			s := &tr.Stages[j]
			cs, ce := clamp(s.Start), clamp(s.End)
			if cs <= a && ce >= b {
				if best == -1 || cs >= bestStart {
					best, bestStart = j, cs
				}
			}
		}
		kind, note := KindExec, ""
		if best >= 0 {
			kind, note = tr.Stages[best].Kind, tr.Stages[best].Note
		}
		if n := len(segs); n > 0 && segs[n-1].StageIdx == best && segs[n-1].End == a {
			segs[n-1].End = b
			continue
		}
		segs = append(segs, PathSeg{Kind: kind, Note: note, Start: a, End: b, StageIdx: best})
	}
	return segs
}

// Breakdown sums the critical path per kind. The values cover every
// instant of the request exactly once: their sum equals Latency().
func (tr *Trace) Breakdown() [numKinds]sim.Time {
	var out [numKinds]sim.Time
	for _, s := range tr.CriticalPath() {
		out[s.Kind] += s.End - s.Start
	}
	return out
}

// Validate checks the trace invariants: sealed, stages closed and inside
// [Submit, End], and the critical-path breakdown summing exactly to the
// end-to-end latency. The soak tests property-check every exemplar.
func (tr *Trace) Validate() error {
	if tr == nil {
		return fmt.Errorf("reqtrace: nil trace")
	}
	if !tr.Done {
		return fmt.Errorf("reqtrace: request %d not sealed", tr.ID)
	}
	if tr.End < tr.Submit {
		return fmt.Errorf("reqtrace: request %d ends %v before submit %v", tr.ID, tr.End, tr.Submit)
	}
	for i, s := range tr.Stages {
		if s.Open {
			return fmt.Errorf("reqtrace: request %d stage %d (%s) still open", tr.ID, i, s.Kind)
		}
		if s.End < s.Start {
			return fmt.Errorf("reqtrace: request %d stage %d (%s) negative", tr.ID, i, s.Kind)
		}
	}
	var sum sim.Time
	for _, d := range tr.Breakdown() {
		sum += d
	}
	if sum != tr.Latency() {
		return fmt.Errorf("reqtrace: request %d stage sum %v != latency %v", tr.ID, sum, tr.Latency())
	}
	return nil
}

// FromCtx returns the trace riding a cancellation scope (nil when none).
func FromCtx(c *sim.Ctx) *Trace {
	tr, _ := c.Trace().(*Trace)
	return tr
}

// From returns the trace riding p's current request scope (nil when the
// proc is not executing a traced request). Deep layers use this — one
// pointer load on the untraced path.
func From(p *sim.Proc) *Trace { return FromCtx(p.Ctx()) }

// Attach puts tr on the scope (no-op for a nil trace or scope).
func Attach(c *sim.Ctx, tr *Trace) {
	if tr != nil {
		c.SetTrace(tr)
	}
}

// Tracer owns the bounded per-request retention: a ring of the most
// recent completed traces plus, per class, the K slowest exemplars. It
// also feeds per-stage critical-path histograms into an obs domain.
// All methods are nil-safe.
type Tracer struct {
	recentCap int
	slowCap   int

	recent  []*Trace // ring, next is the write cursor
	next    int
	byClass map[string][]*Trace // slowest-first exemplars
	classes []string            // first-appearance order

	started int64
	sealed  int64
	stages  int64

	stageH [numKinds]*obs.Histogram
}

// New builds a tracer retaining recentCap recent traces and slowCap
// slowest exemplars per class (defaults 256 and 16).
func New(recentCap, slowCap int) *Tracer {
	if recentCap <= 0 {
		recentCap = 256
	}
	if slowCap <= 0 {
		slowCap = 16
	}
	return &Tracer{
		recentCap: recentCap,
		slowCap:   slowCap,
		byClass:   make(map[string][]*Trace),
	}
}

// SetObs registers per-stage critical-path histograms
// ("reqtrace.stage.<kind>") in o, fed at each Seal.
func (t *Tracer) SetObs(o *obs.Obs) {
	if t == nil || o == nil {
		return
	}
	for k := Kind(0); k < numKinds; k++ {
		t.stageH[k] = o.Histogram("reqtrace.stage."+k.String(), obs.LatencyBounds)
	}
}

// Start opens a trace for one request.
func (t *Tracer) Start(id int64, class string, submit, deadline sim.Time) *Trace {
	if t == nil {
		return nil
	}
	t.started++
	return &Trace{ID: id, Class: class, Submit: submit, Deadline: deadline}
}

// Seal completes tr at now with its terminal error and retains it in
// the recent ring and, if it qualifies, the per-class slowest exemplars.
// Per-stage histograms observe the critical-path breakdown (nonzero
// kinds only, so untouched stages do not flood the zero bucket).
func (t *Tracer) Seal(tr *Trace, now sim.Time, err error) {
	if t == nil || tr == nil || tr.Done {
		return
	}
	tr.complete(now, err)
	t.sealed++
	t.stages += int64(len(tr.Stages))
	for k, d := range tr.Breakdown() {
		if d > 0 {
			t.stageH[k].Observe(d)
		}
	}
	// Recent ring.
	if len(t.recent) < t.recentCap {
		t.recent = append(t.recent, tr)
	} else {
		t.recent[t.next] = tr
	}
	t.next = (t.next + 1) % t.recentCap
	// Slowest exemplars, per class: kept sorted slowest-first, ties to
	// the earlier request, truncated to slowCap.
	if _, ok := t.byClass[tr.Class]; !ok {
		t.classes = append(t.classes, tr.Class)
	}
	ex := append(t.byClass[tr.Class], tr)
	sort.SliceStable(ex, func(a, b int) bool {
		if la, lb := ex[a].Latency(), ex[b].Latency(); la != lb {
			return la > lb
		}
		return ex[a].ID < ex[b].ID
	})
	if len(ex) > t.slowCap {
		ex = ex[:t.slowCap]
	}
	t.byClass[tr.Class] = ex
}

// Counts reports how many traces were started and sealed and how many
// stages were recorded in total.
func (t *Tracer) Counts() (started, sealed, stages int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.started, t.sealed, t.stages
}

// Recent returns the retained recent traces, oldest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil || len(t.recent) == 0 {
		return nil
	}
	out := make([]*Trace, 0, len(t.recent))
	if len(t.recent) < t.recentCap {
		return append(out, t.recent...)
	}
	for i := 0; i < t.recentCap; i++ {
		out = append(out, t.recent[(t.next+i)%t.recentCap])
	}
	return out
}

// Classes lists the classes seen, sorted.
func (t *Tracer) Classes() []string {
	if t == nil {
		return nil
	}
	out := append([]string(nil), t.classes...)
	sort.Strings(out)
	return out
}

// Slowest returns up to k slowest exemplars of class, slowest first.
// class "" merges all classes.
func (t *Tracer) Slowest(class string, k int) []*Trace {
	if t == nil || k <= 0 {
		return nil
	}
	var pool []*Trace
	if class != "" {
		pool = append(pool, t.byClass[class]...)
	} else {
		for _, c := range t.Classes() {
			pool = append(pool, t.byClass[c]...)
		}
		sort.SliceStable(pool, func(a, b int) bool {
			if la, lb := pool[a].Latency(), pool[b].Latency(); la != lb {
				return la > lb
			}
			return pool[a].ID < pool[b].ID
		})
	}
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

// Request finds a retained trace by ID (recent ring first, then the
// exemplars); nil when it aged out or never completed.
func (t *Tracer) Request(id int64) *Trace {
	if t == nil {
		return nil
	}
	for _, tr := range t.recent {
		if tr != nil && tr.ID == id {
			return tr
		}
	}
	for _, c := range t.classes {
		for _, tr := range t.byClass[c] {
			if tr.ID == id {
				return tr
			}
		}
	}
	return nil
}
