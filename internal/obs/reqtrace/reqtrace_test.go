package reqtrace

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

func TestCriticalPathAttributesInnermostStage(t *testing.T) {
	tr := &Trace{ID: 1, Class: "interactive", Submit: 0}
	// fetch-wait 10..100 enclosing a drive-swap 20..60 enclosing a
	// media-transfer 30..50; queue-wait 0..10.
	q := tr.StageStart(KindQueueWait, 0, "")
	tr.StageEnd(q, ms(10))
	fw := tr.StageStart(KindFetchWait, ms(10), "")
	sw := tr.StageStart(KindDriveSwap, ms(20), "")
	mt := tr.StageStart(KindMediaTransfer, ms(30), "")
	tr.StageEnd(mt, ms(50))
	tr.StageEnd(sw, ms(60))
	tr.StageEnd(fw, ms(100))
	tr.complete(ms(120), nil)

	b := tr.Breakdown()
	want := map[Kind]sim.Time{
		KindQueueWait:     ms(10),
		KindFetchWait:     ms(50), // 10..20 and 60..100
		KindDriveSwap:     ms(20), // 20..30 and 50..60
		KindMediaTransfer: ms(20), // 30..50
		KindExec:          ms(20), // 100..120
	}
	var sum sim.Time
	for k, d := range b {
		sum += d
		if want[Kind(k)] != d {
			t.Errorf("%s: got %v, want %v", Kind(k), d, want[Kind(k)])
		}
	}
	if sum != tr.Latency() {
		t.Fatalf("stage sum %v != latency %v", sum, tr.Latency())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteForceClosesOpenStages(t *testing.T) {
	tr := &Trace{ID: 2, Class: "interactive", Submit: ms(5)}
	i := tr.StageStart(KindFetchWait, ms(10), "")
	tr.complete(ms(40), errors.New("deadline exceeded"))
	if tr.Stages[0].Open || tr.Stages[0].End != ms(40) {
		t.Fatalf("open stage not sealed: %+v", tr.Stages[0])
	}
	// A late StageEnd from a background daemon must not reopen or move it.
	tr.StageEnd(i, ms(90))
	if tr.Stages[0].End != ms(40) {
		t.Fatalf("late StageEnd moved a sealed stage: %+v", tr.Stages[0])
	}
	// Late StageStart after completion records nothing.
	if j := tr.StageStart(KindDriveSwap, ms(95), ""); j != -1 {
		t.Fatalf("StageStart on a completed trace returned %d", j)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Err == "" {
		t.Fatal("terminal error not recorded")
	}
}

func TestStageCapDropsButKeepsInvariant(t *testing.T) {
	tr := &Trace{ID: 3, Class: "background"}
	for i := 0; i < maxStages+25; i++ {
		j := tr.StageStart(KindStripeIO, ms(i), "")
		tr.StageEnd(j, ms(i+1))
	}
	if len(tr.Stages) != maxStages || tr.Dropped != 25 {
		t.Fatalf("stages %d dropped %d, want %d and 25", len(tr.Stages), tr.Dropped, maxStages)
	}
	tr.complete(ms(maxStages+100), nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if i := tr.StageStart(KindQueueWait, 0, ""); i != -1 {
		t.Fatal("nil trace recorded a stage")
	}
	tr.StageEnd(0, 0)
	tr.Mark(KindAdmission, 0, "")
	tr.complete(0, nil)
	if tr.Latency() != 0 || tr.CriticalPath() != nil {
		t.Fatal("nil trace not inert")
	}
	var tc *Tracer
	if tc.Start(1, "x", 0, 0) != nil {
		t.Fatal("nil tracer started a trace")
	}
	tc.Seal(nil, 0, nil)
	if tc.Recent() != nil || tc.Slowest("", 5) != nil || tc.Request(1) != nil {
		t.Fatal("nil tracer not inert")
	}
	k := sim.NewKernel()
	k.RunProc(func(p *sim.Proc) {
		if From(p) != nil {
			t.Error("From on ctx-less proc not nil")
		}
	})
}

func TestTracerRingsAndExemplars(t *testing.T) {
	tc := New(4, 2)
	o := obs.New(sim.NewKernel())
	tc.SetObs(o)
	for i := 1; i <= 6; i++ {
		tr := tc.Start(int64(i), "interactive", 0, 0)
		j := tr.StageStart(KindFetchWait, 0, "")
		tr.StageEnd(j, ms(10*i))
		tc.Seal(tr, ms(10*i), nil)
	}
	rec := tc.Recent()
	if len(rec) != 4 || rec[0].ID != 3 || rec[3].ID != 6 {
		t.Fatalf("recent ring wrong: %+v", ids(rec))
	}
	slow := tc.Slowest("interactive", 10)
	if len(slow) != 2 || slow[0].ID != 6 || slow[1].ID != 5 {
		t.Fatalf("exemplars wrong: %+v", ids(slow))
	}
	// ID 5 aged out of the ring but survives as an exemplar.
	if tc.Request(5) == nil {
		t.Fatal("exemplar not findable by ID")
	}
	if tc.Request(1) != nil {
		t.Fatal("aged-out trace still findable")
	}
	started, sealed, stages := tc.Counts()
	if started != 6 || sealed != 6 || stages != 6 {
		t.Fatalf("counts %d/%d/%d", started, sealed, stages)
	}
	if h := o.Histogram("reqtrace.stage.fetch-wait", obs.LatencyBounds); h.N != 6 {
		t.Fatalf("stage histogram observed %d, want 6", h.N)
	}
}

func ids(trs []*Trace) []int64 {
	out := make([]int64, len(trs))
	for i, tr := range trs {
		out[i] = tr.ID
	}
	return out
}

func TestZeroLatencyRequest(t *testing.T) {
	tr := &Trace{ID: 9, Class: "interactive", Submit: ms(7)}
	tr.complete(ms(7), nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.CriticalPath()) != 0 {
		t.Fatal("zero-latency request has path segments")
	}
}
