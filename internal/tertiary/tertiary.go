// Package tertiary implements HighLight's user-level tertiary storage
// machinery (§6.7): the service process, which fields kernel requests
// (demand fetches of non-resident segments, ejections, copy-outs of
// freshly assembled tertiary segments), and the I/O process, which moves
// whole segments between the disk cache and the robotic devices through
// the Footprint interface.
//
// The data path deliberately preserves the paper's double copy (§7.2):
// a demand-fetched segment travels tertiary → I/O process memory → raw
// disk, and is then re-read through the file system — the measured
// inefficiency of Table 3.
package tertiary

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
)

// ErrSegmentUnavailable marks a demand fetch that failed after all
// recovery options (retries, drive failover, replica fallback) were
// exhausted. Callers match it with errors.Is and degrade — an EIO to the
// faulting process — instead of wedging the service loop.
var ErrSegmentUnavailable = errors.New("tertiary: segment unavailable")

// RetryPolicy bounds the I/O process's recovery from transient faults
// (media dust, drive-offline windows, volume-load failures). Backoff is
// virtual time: retries double the delay up to MaxBackoff.
type RetryPolicy struct {
	Max        int      // retries after the first attempt
	Backoff    sim.Time // delay before the first retry
	MaxBackoff sim.Time // cap on the doubled backoff
}

// DefaultRetryPolicy survives error bursts a few failures deep while
// keeping a wedged device from stalling the I/O process for more than a
// few virtual seconds per request.
var DefaultRetryPolicy = RetryPolicy{
	Max:        6,
	Backoff:    50 * sim.Time(time.Millisecond),
	MaxBackoff: 5 * sim.Time(time.Second),
}

// Stats counts migration and fetch path events. Where virtual time went
// — Footprint transfers, I/O-process disk transfers, queueing — is no
// longer counted here: it is recorded as obs spans ("fp.read",
// "fp.write", "io.read", "io.write", "svc.queue", "fetch.wait") on the
// service's observability domain, which the Table 4 breakdown and
// hldump -datapath consume via Obs().CatTotal.
type Stats struct {
	Fetches    int64
	Copyouts   int64
	EOMRetries int64

	TransientRetries int64 // transient faults retried by the I/O process
	RetriesExhausted int64 // operations abandoned after the retry budget
	ReplicaRedirects int64 // fetches served from a replica instead of the primary
	FetchFaults      int64 // demand fetches that failed past recovery
	CopyoutFaults    int64 // copyouts that failed for reasons other than end-of-medium
}

// DeviceFaults is the per-device fault-visibility report: how many
// operations the injected Fault hooks refused and how often requests were
// redirected off an offline drive.
type DeviceFaults struct {
	Name        string
	ReadFaults  int64
	WriteFaults int64
	LoadFaults  int64
	Failovers   int64
}

// Hooks let the owning file system keep its segment bookkeeping current
// without the service process taking the file system lock (all hooks must
// complete without blocking).
type Hooks struct {
	// LineBound is called when a cache line is (re)bound to a tertiary
	// segment index.
	LineBound func(tag int, seg addr.SegNo, staging bool)
	// LineEvicted is called when a cached line is discarded.
	LineEvicted func(tag int, seg addr.SegNo)
	// CopyoutDone is called when a staging segment has reached tertiary
	// storage.
	CopyoutDone func(tag int, seg addr.SegNo)
}

type reqKind int

const (
	reqFetch reqKind = iota
	reqCopyout
	reqFetchDone
	reqCopyoutDone
)

func (k reqKind) String() string {
	switch k {
	case reqFetch:
		return "fetch"
	case reqCopyout:
		return "copyout"
	case reqFetchDone:
		return "fetch-done"
	case reqCopyoutDone:
		return "copyout-done"
	}
	return "unknown"
}

type request struct {
	kind     reqKind
	tag      int
	seg      addr.SegNo // cache line (copyout / fetch completion)
	pinTag   int        // cache line pinned for the duration (copyouts)
	enqueued sim.Time
	err      error
	// tr is the first waiter's request trace, carried along so the I/O
	// daemon's work on this fetch (drive swaps, media transfers, staging
	// writes) is recorded against the request that caused it.
	tr *reqtrace.Trace
}

type fetchWait struct {
	done *sim.Cond
	line *cache.Line
	err  error
	over bool
}

// Service owns the cache directory bindings and runs the service and I/O
// processes as daemons.
type Service struct {
	k     *sim.Kernel
	amap  *addr.Map
	fps   []jukebox.Footprint
	disk  dev.BlockDev
	cache *cache.Cache
	hooks Hooks

	reqs     *sim.Chan
	ioreqs   *sim.Chan
	pending  map[int]*fetchWait
	deferred []request // fetches waiting for an evictable line

	outCopy   int // copyouts in flight or queued
	copyCond  *sim.Cond
	failed    []int // tags whose copyout hit end-of-medium
	badWrites []int // tags whose copyout hit an unrecoverable media error
	prefetchQ []int

	stats Stats

	obs        *obs.Obs    // nil = not instrumented
	heat       *attr.Table // nil = no attribution
	audit      *attr.Audit // nil = routing decisions not audited
	fetchWaitH *obs.Histogram
	qdepth     *obs.Gauge
	outCopyG   *obs.Gauge

	// Retry governs transient-fault recovery in the I/O process.
	Retry RetryPolicy

	// Prefetch, if set, returns tertiary segment indices to prefetch
	// after tag was demand-fetched (§6.2: the service process "may
	// choose unilaterally to insert new segments into the cache").
	Prefetch func(tag int) []int

	// AltCopies, if set, returns replica locations (tertiary segment
	// indices) holding the same bytes as tag; the I/O process reads the
	// "closest" copy — one whose volume is already in a drive (§5.4).
	AltCopies func(tag int) []int

	// Notify, if set, is told when a process is about to stall on a
	// tertiary fetch and when the data arrives — the §10 "hold on"
	// message to the user ("it would be nice if the user could be
	// notified about a file access which is delayed waiting for a
	// tertiary storage access"). It must not block.
	Notify func(tag int, waited sim.Time, done bool)

	// OnFetched, if set, is told whenever a demand fetch completes — the
	// input to §5.4's rewrite-on-fetch rearrangement policy ("rewrite
	// segments to tertiary storage as they are read into the cache.
	// This is more likely to reflect true access locality"). It must
	// not block.
	OnFetched func(tag int)

	// Breaker, if set, is the per-library circuit-breaker gate consulted
	// by the fetch router: copies on a library whose breaker is open rank
	// just above down libraries (routed around, last-resort only), and
	// the I/O process reports every per-library attempt outcome so the
	// gate can trip on consecutive failures and half-open probe later.
	Breaker BreakerGate
}

// BreakerGate is the circuit-breaker interface the front end plugs into
// the fetch router. Allow reports whether library lib should be offered
// traffic right now (a half-open breaker says yes exactly once per probe
// window); OnResult feeds back the outcome of one attempt against lib.
type BreakerGate interface {
	Allow(lib int) bool
	OnResult(lib int, err error)
}

// New creates the service over the given devices and cache and starts the
// service and I/O daemon processes. o is the observability domain the
// service and I/O processes trace into (nil disables instrumentation).
func New(k *sim.Kernel, o *obs.Obs, amap *addr.Map, fps []jukebox.Footprint, disk dev.BlockDev, c *cache.Cache, hooks Hooks) *Service {
	s := &Service{
		k:       k,
		amap:    amap,
		fps:     fps,
		disk:    disk,
		cache:   c,
		hooks:   hooks,
		reqs:    k.NewChan("tertiary.svc", 256),
		ioreqs:  k.NewChan("tertiary.io", 256),
		pending: make(map[int]*fetchWait),
		Retry:   DefaultRetryPolicy,
		obs:     o,
	}
	s.fetchWaitH = o.Histogram("tertiary.fetch_wait", obs.LatencyBounds)
	s.qdepth = o.Gauge("tertiary.queue_depth")
	s.outCopyG = o.Gauge("tertiary.copyouts_outstanding")
	s.copyCond = k.NewCond("tertiary.copyouts")
	k.GoDaemon("hl-service", s.serviceLoop)
	k.GoDaemon("hl-io", s.ioLoop)
	return s
}

// AddIOStreams starts n additional I/O daemons draining the same request
// channel, so several whole-segment transfers (staging fills, copy-out
// drains) proceed concurrently in virtual time. Each daemon owns its own
// transfer buffer; the shared channel keeps dispatch order deterministic
// (FIFO handoff, daemons spawned in a fixed order).
func (s *Service) AddIOStreams(n int) {
	for i := 0; i < n; i++ {
		s.k.GoDaemon(fmt.Sprintf("hl-io-%d", i+1), s.ioLoop)
	}
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats { return s.stats }

// Obs returns the service's observability domain (may be nil).
func (s *Service) Obs() *obs.Obs { return s.obs }

// SetAttr attaches a heat-attribution table: completed demand fetches
// and copyouts are attributed to the tertiary segment they moved.
// (Evictions — including ejections — are attributed by the cache
// itself, so they are counted exactly once.)
func (s *Service) SetAttr(t *attr.Table) { s.heat = t }

// SetAudit attaches a decision audit: whenever the fetch router serves a
// copy other than the primary, the redirect and its reason are recorded
// so `hldump -why` can explain which library answered and why.
func (s *Service) SetAudit(a *attr.Audit) { s.audit = a }

// OutstandingCopyouts reports copyouts queued or in flight.
func (s *Service) OutstandingCopyouts() int { return s.outCopy }

// FailedCopyouts returns and clears the tags whose copyout hit
// end-of-medium; the migrator re-stages them on the next volume (§6.3).
func (s *Service) FailedCopyouts() []int {
	f := s.failed
	s.failed = nil
	return f
}

// FailedWrites returns and clears the tags whose copyout failed with an
// unrecoverable media error (not end-of-medium). The migrator retires the
// bad tertiary segment and restages the cache line onto a fresh one.
func (s *Service) FailedWrites() []int {
	f := s.badWrites
	s.badWrites = nil
	return f
}

// DeviceFaults reports the per-device injected-fault and failover
// counters accumulated by the Fault hooks.
func (s *Service) DeviceFaults() []DeviceFaults {
	var out []DeviceFaults
	for i, fp := range s.fps {
		j, ok := fp.(interface {
			Stats() jukebox.Stats
			Profile() jukebox.MediaProfile
		})
		if !ok {
			continue
		}
		js := j.Stats()
		out = append(out, DeviceFaults{
			Name:        fmt.Sprintf("%s[%d]", j.Profile().Name, i),
			ReadFaults:  js.ReadFaults,
			WriteFaults: js.WriteFaults,
			LoadFaults:  js.LoadFaults,
			Failovers:   js.Failovers,
		})
	}
	if d, ok := s.disk.(*dev.Disk); ok {
		ds := d.Stats()
		out = append(out, DeviceFaults{
			Name:        "cache-disk",
			ReadFaults:  ds.ReadFaults,
			WriteFaults: ds.WriteFaults,
		})
	}
	return out
}

// segBytes is the tertiary transfer unit size.
func (s *Service) segBytes() int { return s.amap.SegBlocks() * dev.BlockSize }

// DemandFetch blocks until tertiary segment tag is disk-resident and
// returns its cache line. Callers may hold the file system lock: the
// service path never acquires it.
func (s *Service) DemandFetch(p *sim.Proc, tag int) (*cache.Line, error) {
	if err := p.CtxErr(); err != nil {
		return nil, fmt.Errorf("tertiary: fetch of segment %d abandoned: %w", tag, err)
	}
	if l, ok := s.cache.Lookup(tag, p.Now()); ok && !l.Staging {
		return l, nil
	} else if ok {
		return l, nil // staging lines are disk-resident by construction
	}
	tr := reqtrace.From(p)
	w, ok := s.pending[tag]
	if !ok {
		w = &fetchWait{done: s.k.NewCond(fmt.Sprintf("fetch-%d", tag))}
		s.pending[tag] = w
		// The first waiter's trace rides the fetch into the I/O daemon;
		// later waiters for the same tag only record their own fetch-wait.
		s.reqs.Send(p, request{kind: reqFetch, tag: tag, enqueued: p.Now(), tr: tr})
	}
	if s.Notify != nil {
		s.Notify(tag, 0, false)
	}
	// A canceled or expired request abandons the wait (the fetch itself
	// completes in the background and lands in the cache — no work is
	// lost, only this waiter's interest). The cancel waker broadcasts the
	// fetch cond so the abandonment is observed immediately, not at the
	// next completion.
	ctx := p.Ctx()
	ctx.OnCancel(w.done.Broadcast)
	start := p.Now()
	var note string
	if tr != nil {
		note = fmt.Sprintf("seg %d", tag)
	}
	st := tr.StageStart(reqtrace.KindFetchWait, start, note)
	for !w.over {
		if err := ctx.Err(); err != nil {
			tr.StageEnd(st, p.Now())
			return nil, fmt.Errorf("tertiary: fetch of segment %d abandoned: %w", tag, err)
		}
		w.done.Wait(p)
	}
	tr.StageEnd(st, p.Now())
	if s.Notify != nil {
		s.Notify(tag, p.Now()-start, true)
	}
	s.obs.Span("tertiary.svc", "fetch.wait", "demand-fetch", start, obs.Arg{Key: "tag", Val: int64(tag)})
	s.fetchWaitH.Observe(p.Now() - start)
	return w.line, w.err
}

// ScheduleCopyout queues the staging cache line holding tertiary segment
// tag for transfer to the robotic device. The write "is serviced
// asynchronously, so that the migration control policies may choose to
// move multiple segments in a single logical operation" (§6.2).
func (s *Service) ScheduleCopyout(p *sim.Proc, tag int, seg addr.SegNo) {
	s.ScheduleCopyoutAs(p, tag, seg, tag)
}

// ScheduleCopyoutAs writes the cache-line disk segment seg to tertiary
// segment destTag while pinning the cache line registered under pinTag —
// used to lay down segment replicas (§5.4), where the same staged bytes
// are written to several tertiary locations.
func (s *Service) ScheduleCopyoutAs(p *sim.Proc, destTag int, seg addr.SegNo, pinTag int) {
	if l, ok := s.cache.Peek(pinTag); ok {
		l.Pins++
	}
	s.outCopy++
	s.outCopyG.Set(int64(s.outCopy))
	s.reqs.Send(p, request{kind: reqCopyout, tag: destTag, seg: seg, pinTag: pinTag, enqueued: p.Now()})
}

// DrainCopyouts blocks until every scheduled copyout has completed.
func (s *Service) DrainCopyouts(p *sim.Proc) {
	for s.outCopy > 0 {
		s.copyCond.Wait(p)
	}
}

// WaitCopyoutProgress blocks until one in-flight copyout completes,
// returning immediately when none is outstanding. The migrator uses it to
// wait for a cache line to become evictable.
func (s *Service) WaitCopyoutProgress(p *sim.Proc) {
	if s.outCopy > 0 {
		s.copyCond.Wait(p)
	}
}

// RequestPrefetch enqueues background fetches (no waiter).
func (s *Service) RequestPrefetch(p *sim.Proc, tags []int) {
	for _, tag := range tags {
		if _, ok := s.cache.Peek(tag); ok {
			continue
		}
		if _, ok := s.pending[tag]; ok {
			continue
		}
		s.pending[tag] = &fetchWait{done: s.k.NewCond(fmt.Sprintf("prefetch-%d", tag))}
		s.reqs.Send(p, request{kind: reqFetch, tag: tag, enqueued: p.Now()})
	}
}

// Eject discards a clean cached line (the kernel "may request ... the
// ejection of some cached line in order to reclaim its space").
func (s *Service) Eject(tag int) error {
	l, ok := s.cache.Peek(tag)
	if !ok {
		return fmt.Errorf("tertiary: eject: segment %d not cached", tag)
	}
	if l.Staging || l.Pins > 0 {
		return fmt.Errorf("tertiary: eject: segment %d busy", tag)
	}
	seg, err := s.cache.Evict(l)
	if err != nil {
		return err
	}
	if s.hooks.LineEvicted != nil {
		s.hooks.LineEvicted(tag, seg)
	}
	s.cache.Release(seg)
	return nil
}

// serviceLoop is the service process: it fields requests from the kernel
// and completion messages from the I/O process.
func (s *Service) serviceLoop(p *sim.Proc) {
	for {
		v, ok := s.reqs.Recv(p)
		if !ok {
			return
		}
		r := v.(request)
		s.obs.Span("tertiary.svc", "svc.queue", r.kind.String(), r.enqueued,
			obs.Arg{Key: "tag", Val: int64(r.tag)})
		s.qdepth.Set(int64(s.reqs.Len()))
		switch r.kind {
		case reqFetch:
			s.startFetch(p, r)
		case reqCopyout:
			s.ioreqs.Send(p, r)
		case reqFetchDone:
			s.finishFetch(p, r)
		case reqCopyoutDone:
			s.finishCopyout(p, r)
		}
	}
}

// startFetch binds a cache line (evicting if needed) and hands the
// transfer to the I/O process; with no line available the request is
// deferred until a copyout completes.
func (s *Service) startFetch(p *sim.Proc, r request) {
	if _, ok := s.cache.Peek(r.tag); ok {
		s.resolveFetch(r.tag, nil)
		return
	}
	seg, ok := s.cache.TakeFree()
	if !ok {
		v := s.cache.Victim()
		if v == nil {
			s.deferred = append(s.deferred, r)
			return
		}
		var err error
		seg, err = s.cache.Evict(v)
		if err != nil {
			// The victim became staging or pinned between selection and
			// eviction; defer the fetch like the no-victim case.
			s.deferred = append(s.deferred, r)
			return
		}
		if s.hooks.LineEvicted != nil {
			s.hooks.LineEvicted(v.Tag, seg)
		}
	}
	s.ioreqs.Send(p, request{kind: reqFetch, tag: r.tag, seg: seg, enqueued: r.enqueued, tr: r.tr})
}

func (s *Service) finishFetch(p *sim.Proc, r request) {
	if r.err != nil {
		s.stats.FetchFaults++
		s.cache.Release(r.seg)
		s.resolveFetch(r.tag, fmt.Errorf("tertiary: segment %d: %w: %w", r.tag, ErrSegmentUnavailable, r.err))
		// The freed line may unblock fetches deferred for lack of space.
		s.retryDeferred(p)
		return
	}
	if _, err := s.cache.Insert(r.tag, r.seg, false, p.Now()); err != nil {
		s.cache.Release(r.seg)
		s.resolveFetch(r.tag, err)
		s.retryDeferred(p)
		return
	}
	if s.hooks.LineBound != nil {
		s.hooks.LineBound(r.tag, r.seg, false)
	}
	s.stats.Fetches++
	s.obs.Counter("tertiary.fetches").Add(1)
	s.obs.Counter("tertiary.bytes_in").Add(int64(s.segBytes()))
	s.heat.Touch(r.tag, attr.Fetch, p.Now())
	s.resolveFetch(r.tag, nil)
	if s.OnFetched != nil {
		s.OnFetched(r.tag)
	}
	if s.Prefetch != nil {
		s.RequestPrefetch(p, s.Prefetch(r.tag))
	}
	s.retryDeferred(p)
}

func (s *Service) resolveFetch(tag int, err error) {
	w, ok := s.pending[tag]
	if !ok {
		return
	}
	delete(s.pending, tag)
	if err == nil {
		if l, present := s.cache.Peek(tag); present {
			w.line = l
		} else {
			err = fmt.Errorf("tertiary: fetch of segment %d resolved without a line", tag)
		}
	}
	w.err = err
	w.over = true
	w.done.Broadcast()
}

func (s *Service) finishCopyout(p *sim.Proc, r request) {
	if l, ok := s.cache.Peek(r.pinTag); ok {
		if l.Pins > 0 {
			l.Pins--
		}
		if r.err == nil && r.tag == r.pinTag {
			l.Staging = false
		}
	}
	if r.err == nil {
		s.stats.Copyouts++
		s.obs.Counter("tertiary.copyouts").Add(1)
		s.obs.Counter("tertiary.bytes_out").Add(int64(s.segBytes()))
		s.heat.Touch(r.tag, attr.Copyout, p.Now())
		if s.hooks.CopyoutDone != nil {
			s.hooks.CopyoutDone(r.tag, r.seg)
		}
	} else if errors.Is(r.err, jukebox.ErrEndOfMedium) {
		s.stats.EOMRetries++
		s.failed = append(s.failed, r.tag)
	} else {
		// Unrecoverable write: the staging line keeps the sole copy
		// (Staging stays set, so it cannot be evicted); the migrator
		// retires the bad tertiary segment and restages elsewhere.
		s.stats.CopyoutFaults++
		s.badWrites = append(s.badWrites, r.tag)
	}
	s.outCopy--
	s.outCopyG.Set(int64(s.outCopy))
	s.copyCond.Broadcast()
	s.retryDeferred(p)
}

func (s *Service) retryDeferred(p *sim.Proc) {
	if len(s.deferred) == 0 {
		return
	}
	ds := s.deferred
	s.deferred = nil
	for _, d := range ds {
		s.startFetch(p, d)
	}
}

// transientFault reports whether err is worth retrying: injected
// transient media errors and all-drives-offline windows clear on their
// own; anything else (permanent media damage, programmer bugs like
// write-once violations, end-of-medium) does not.
func transientFault(err error) bool {
	return errors.Is(err, dev.ErrTransientMedia) || errors.Is(err, jukebox.ErrDriveOffline)
}

// withRetry runs op under the service retry policy, sleeping the
// (virtual-time, doubling) backoff between attempts. Non-transient errors
// return immediately.
func (s *Service) withRetry(p *sim.Proc, op func() error) error {
	backoff := s.Retry.Backoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !transientFault(err) {
			return err
		}
		if attempt >= s.Retry.Max {
			s.stats.RetriesExhausted++
			s.obs.Instant("tertiary.io", "io.retries_exhausted", "exhausted")
			return err
		}
		s.stats.TransientRetries++
		s.obs.Instant("tertiary.io", "io.retry", "retry")
		if backoff > 0 {
			tr := reqtrace.From(p)
			st := tr.StageStart(reqtrace.KindRetryBackoff, p.Now(), "")
			p.Sleep(backoff)
			tr.StageEnd(st, p.Now())
		}
		backoff *= 2
		if backoff > s.Retry.MaxBackoff {
			backoff = s.Retry.MaxBackoff
		}
	}
}

// Routing ranks, closest copy first. The router never rejects a copy
// outright — even a copy in a down library stays in the order as the
// last-resort failover source — it only sorts by how cheaply a read can
// start right now.
const (
	routeLoaded   = iota // healthy library, volume already in a drive
	routeIdleLib         // healthy library with an idle drive (swap, no queue)
	routeBusyLib         // healthy library, all drives busy (queue)
	routeTripped         // circuit breaker open for the library
	routeDownLib         // library out of service
	routeUnmapped        // copy index does not resolve to a location
)

func routeRankName(rank int) string {
	switch rank {
	case routeLoaded:
		return "volume-loaded"
	case routeIdleLib:
		return "idle-drive"
	case routeBusyLib:
		return "busy-library"
	case routeTripped:
		return "breaker-open"
	case routeDownLib:
		return "library-down"
	}
	return "unmapped"
}

// readOrder lists the physical copies of tag to try, closest first:
// loaded volume beats an idle drive in another library, which beats a
// busy library, which beats a down one (§5.4 "closest copy",
// generalized across failure domains). The sort is stable, so with a
// single library and no rank differences the historical order — primary
// first, replicas in catalog order — is preserved bit-for-bit. Replica
// redirects are recorded in the decision audit.
func (s *Service) readOrder(tag int, tr *reqtrace.Trace) []int {
	cands := []int{tag}
	if s.AltCopies != nil {
		cands = append(cands, s.AltCopies(tag)...)
	}
	if len(cands) == 1 {
		return cands
	}
	ranks := make([]int, len(cands))
	idle := make([]int, len(cands))
	for i, c := range cands {
		ranks[i] = routeUnmapped
		d, vol, _, err := s.locate(c)
		if err != nil {
			continue
		}
		switch {
		case s.libDown(d):
			ranks[i] = routeDownLib
		case s.Breaker != nil && !s.Breaker.Allow(d):
			ranks[i] = routeTripped
		case s.volumeLoaded(d, vol):
			ranks[i] = routeLoaded
		default:
			idle[i] = s.idleDrives(d)
			if idle[i] > 0 {
				ranks[i] = routeIdleLib
			} else {
				ranks[i] = routeBusyLib
			}
		}
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if ranks[order[a]] != ranks[order[b]] {
			return ranks[order[a]] < ranks[order[b]]
		}
		// Among idle libraries prefer the one with more free drives —
		// crude load balancing across changers.
		if ranks[order[a]] == routeIdleLib {
			return idle[order[a]] > idle[order[b]]
		}
		return false
	})
	out := make([]int, len(cands))
	for i, oi := range order {
		out[i] = cands[oi]
	}
	// Record breaker influence on the trace without touching the breaker
	// itself (Allow above consumes half-open probe tokens — never re-ask):
	// a tripped primary means the read detours, a tripped winner means
	// every copy sits behind an open breaker.
	if tr != nil && ranks[order[0]] == routeTripped {
		tr.Mark(reqtrace.KindBreakerWait, s.k.Now(), "best copy breaker-open")
	} else if tr != nil && ranks[0] == routeTripped {
		tr.Mark(reqtrace.KindBreakerWait, s.k.Now(), "primary breaker open")
	}
	if out[0] != tag {
		s.audit.Record(attr.Decision{
			T: s.k.Now(), Actor: "tert.route", Subject: fmt.Sprintf("copy %d", out[0]),
			Seg: tag, Verdict: attr.VerdictRouted, Reason: routeRankName(ranks[order[0]]),
			Inputs: []attr.Input{attr.In("copy", float64(out[0])), attr.In("rank", float64(ranks[order[0]]))},
		})
	}
	return out
}

// libDown reports whether the device is a library that is out of
// service; bare devices are always in service.
func (s *Service) libDown(d int) bool {
	if l, ok := s.fps[d].(interface{ Down() bool }); ok {
		return l.Down()
	}
	return false
}

// idleDrives reports how many of the device's drives could start a
// request without queueing (0 for devices that cannot say).
func (s *Service) idleDrives(d int) int {
	if c, ok := s.fps[d].(interface{ IdleHealthyDrives() int }); ok {
		return c.IdleHealthyDrives()
	}
	return 0
}

// volumeLoaded reports whether the device already holds vol in a drive.
func (s *Service) volumeLoaded(d, vol int) bool {
	vc, ok := s.fps[d].(VolumeLoadedChecker)
	return ok && vc.VolumeLoaded(vol)
}

// ioLoop is the I/O process: it executes whole-segment transfers between
// the disk cache and the Footprint devices, recovering from transient
// faults with bounded retries and falling back across replicas on reads.
func (s *Service) ioLoop(p *sim.Proc) {
	buf := make([]byte, s.segBytes())
	for {
		v, ok := s.ioreqs.Recv(p)
		if !ok {
			return
		}
		r := v.(request)
		switch r.kind {
		case reqFetch:
			// Run the transfer under a carrier scope holding the waiter's
			// trace, so the layers below (jukebox swap and transfer, the
			// staging write through the stripe farm, retry backoffs) record
			// against the request that demanded the fetch. The scope never
			// cancels — the fetch completes regardless of the waiter's fate.
			restore := func() {}
			if r.tr != nil {
				cc := s.k.NewCtx(0)
				cc.SetTrace(r.tr)
				restore = p.PushCtx(cc)
			}
			var err error
			for _, c := range s.readOrder(r.tag, r.tr) {
				d, vol, volseg, lerr := s.locate(c)
				if lerr != nil {
					err = lerr
					continue
				}
				t0 := p.Now()
				err = s.withRetry(p, func() error { return s.fps[d].ReadSegment(p, vol, volseg, buf) })
				s.obs.Span("tertiary.io", "fp.read", "ReadSegment", t0,
					obs.Arg{Key: "tag", Val: int64(r.tag)}, obs.Arg{Key: "copy", Val: int64(c)})
				if s.Breaker != nil {
					s.Breaker.OnResult(d, err)
				}
				if err == nil {
					if c != r.tag {
						s.stats.ReplicaRedirects++
					}
					break
				}
			}
			if err == nil {
				t0 := p.Now()
				err = s.withRetry(p, func() error {
					return s.disk.WriteBlocks(p, int64(s.amap.BlockOf(r.seg, 0)), buf)
				})
				s.obs.Span("tertiary.io", "io.write", "WriteBlocks", t0,
					obs.Arg{Key: "tag", Val: int64(r.tag)}, obs.Arg{Key: "seg", Val: int64(r.seg)})
			}
			restore()
			s.reqs.Send(p, request{kind: reqFetchDone, tag: r.tag, seg: r.seg, err: err, enqueued: p.Now()})
		case reqCopyout:
			d, vol, volseg, err := s.locate(r.tag)
			if err == nil {
				t0 := p.Now()
				err = s.withRetry(p, func() error {
					return s.disk.ReadBlocks(p, int64(s.amap.BlockOf(r.seg, 0)), buf)
				})
				s.obs.Span("tertiary.io", "io.read", "ReadBlocks", t0,
					obs.Arg{Key: "tag", Val: int64(r.tag)}, obs.Arg{Key: "seg", Val: int64(r.seg)})
			}
			if err == nil {
				t0 := p.Now()
				err = s.withRetry(p, func() error { return s.fps[d].WriteSegment(p, vol, volseg, buf) })
				s.obs.Span("tertiary.io", "fp.write", "WriteSegment", t0,
					obs.Arg{Key: "tag", Val: int64(r.tag)})
				if s.Breaker != nil {
					s.Breaker.OnResult(d, err)
				}
			}
			s.reqs.Send(p, request{kind: reqCopyoutDone, tag: r.tag, seg: r.seg, pinTag: r.pinTag, err: err, enqueued: p.Now()})
		}
	}
}

// VolumeLoadedChecker is implemented by jukeboxes that can report whether
// a volume is already in a drive.
type VolumeLoadedChecker interface {
	VolumeLoaded(vol int) bool
}

// locate resolves a tertiary segment index to (device, volume, volseg).
// An unmappable index — a corrupted tag — is a returned error, not a
// panic: the request path surfaces it and the simulation degrades.
func (s *Service) locate(tag int) (devIdx, vol, volseg int, err error) {
	if tag < 0 || tag >= s.amap.TertSegs() {
		return 0, 0, 0, fmt.Errorf("tertiary: index %d out of range [0,%d)", tag, s.amap.TertSegs())
	}
	seg := s.amap.SegForIndex(tag)
	d, v, vs, ok := s.amap.Loc(seg)
	if !ok {
		return 0, 0, 0, fmt.Errorf("tertiary: index %d does not map to a tertiary segment", tag)
	}
	return d, v, vs, nil
}
