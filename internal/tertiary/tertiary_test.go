package tertiary

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/obs"
	"repro/internal/sim"
)

const segBlocks = 16

type env struct {
	k    *sim.Kernel
	amap *addr.Map
	disk *dev.Disk
	juke *jukebox.Jukebox
	c    *cache.Cache
	svc  *Service

	bound, evicted, done int
}

func newEnv(t *testing.T, cacheLines int) *env {
	t.Helper()
	k := sim.NewKernel()
	amap := addr.New(segBlocks, 64, addr.Geom{Vols: 4, SegsPerVol: 16})
	disk := dev.NewDisk(k, dev.RZ57, int64(64*segBlocks), nil)
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 4, 16, segBlocks*dev.BlockSize, nil)
	pool := make([]addr.SegNo, cacheLines)
	for i := range pool {
		pool[i] = addr.SegNo(40 + i)
	}
	e := &env{k: k, amap: amap, disk: disk, juke: juke}
	e.c = cache.New(cache.LRU, pool, 1)
	e.svc = New(k, obs.New(k), amap, []jukebox.Footprint{juke}, disk, e.c, Hooks{
		LineBound:   func(tag int, seg addr.SegNo, staging bool) { e.bound++ },
		LineEvicted: func(tag int, seg addr.SegNo) { e.evicted++ },
		CopyoutDone: func(tag int, seg addr.SegNo) { e.done++ },
	})
	return e
}

// seed writes recognizable data for tag directly onto the jukebox.
func (e *env) seed(t *testing.T, p *sim.Proc, tag int, fill byte) {
	t.Helper()
	seg := e.amap.SegForIndex(tag)
	d, v, s, ok := e.amap.Loc(seg)
	if !ok || d != 0 {
		t.Fatalf("bad loc for tag %d", tag)
	}
	buf := bytes.Repeat([]byte{fill}, segBlocks*dev.BlockSize)
	if err := e.juke.WriteSegment(p, v, s, buf); err != nil {
		t.Fatal(err)
	}
}

func TestDemandFetchPopulatesCache(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		e.seed(t, p, 3, 0xAB)
		line, err := e.svc.DemandFetch(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		// The fetched copy must be on the cache-line disk segment.
		buf := make([]byte, dev.BlockSize)
		if err := e.disk.ReadBlocks(p, int64(e.amap.BlockOf(line.DiskSeg, 0)), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xAB {
			t.Fatalf("cache line holds %#x, want 0xAB", buf[0])
		}
		if e.bound != 1 {
			t.Fatalf("LineBound hook fired %d times", e.bound)
		}
		if e.svc.Stats().Fetches != 1 {
			t.Fatal("fetch not counted")
		}
	})
	e.k.Stop()
}

func TestConcurrentFetchesOfSameSegmentMerge(t *testing.T) {
	e := newEnv(t, 4)
	e.k.Go("seed", func(p *sim.Proc) {
		e.seed(t, p, 1, 0x11)
	})
	results := 0
	for i := 0; i < 3; i++ {
		e.k.Go("reader", func(p *sim.Proc) {
			p.Sleep(20 * time.Second) // after seeding
			if _, err := e.svc.DemandFetch(p, 1); err != nil {
				t.Error(err)
			}
			results++
		})
	}
	e.k.Run()
	if results != 3 {
		t.Fatalf("%d fetch waiters resolved, want 3", results)
	}
	if e.svc.Stats().Fetches != 1 {
		t.Fatalf("%d physical fetches, want 1 (merged)", e.svc.Stats().Fetches)
	}
	e.k.Stop()
}

func TestFetchEvictsLRUWhenFull(t *testing.T) {
	e := newEnv(t, 2)
	e.k.RunProc(func(p *sim.Proc) {
		for tag := 0; tag < 3; tag++ {
			e.seed(t, p, tag, byte(tag+1))
			if _, err := e.svc.DemandFetch(p, tag); err != nil {
				t.Fatal(err)
			}
		}
		if e.c.Len() != 2 {
			t.Fatalf("cache holds %d lines, want 2", e.c.Len())
		}
		if _, ok := e.c.Peek(0); ok {
			t.Fatal("LRU line 0 should have been evicted")
		}
		if e.evicted != 1 {
			t.Fatalf("LineEvicted fired %d times, want 1", e.evicted)
		}
	})
	e.k.Stop()
}

func TestCopyoutWritesTertiary(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		// Stage data on a cache line by hand.
		seg, _ := e.c.TakeFree()
		e.c.Insert(5, seg, true, p.Now())
		img := bytes.Repeat([]byte{0x77}, segBlocks*dev.BlockSize)
		if err := e.disk.WriteBlocks(p, int64(e.amap.BlockOf(seg, 0)), img); err != nil {
			t.Fatal(err)
		}
		e.svc.ScheduleCopyout(p, 5, seg)
		e.svc.DrainCopyouts(p)
		if e.done != 1 {
			t.Fatalf("CopyoutDone fired %d times", e.done)
		}
		l, _ := e.c.Peek(5)
		if l.Staging {
			t.Fatal("line still staging after copyout")
		}
		// Verify the bits landed on the volume.
		tseg := e.amap.SegForIndex(5)
		_, v, s, _ := e.amap.Loc(tseg)
		got := make([]byte, segBlocks*dev.BlockSize)
		if err := e.juke.ReadSegment(p, v, s, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, img) {
			t.Fatal("copyout content mismatch")
		}
	})
	e.k.Stop()
}

func TestEOMRecordedAsFailure(t *testing.T) {
	e := newEnv(t, 4)
	e.juke.SetActualSegments(0, 0) // volume 0 cannot take anything
	e.k.RunProc(func(p *sim.Proc) {
		seg, _ := e.c.TakeFree()
		e.c.Insert(0, seg, true, p.Now()) // tag 0 = vol 0 seg 0
		e.svc.ScheduleCopyout(p, 0, seg)
		e.svc.DrainCopyouts(p)
		failed := e.svc.FailedCopyouts()
		if len(failed) != 1 || failed[0] != 0 {
			t.Fatalf("failed = %v, want [0]", failed)
		}
		if e.svc.Stats().EOMRetries != 1 {
			t.Fatal("EOM not counted")
		}
		// The line survives (it holds the sole copy).
		if _, ok := e.c.Peek(0); !ok {
			t.Fatal("staging line lost after EOM")
		}
	})
	e.k.Stop()
}

func TestEjectRejectsBusyLines(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		seg, _ := e.c.TakeFree()
		l, _ := e.c.Insert(7, seg, true, p.Now())
		if err := e.svc.Eject(7); err == nil {
			t.Fatal("ejected a staging line")
		}
		l.Staging = false
		l.Pins = 1
		if err := e.svc.Eject(7); err == nil {
			t.Fatal("ejected a pinned line")
		}
		l.Pins = 0
		if err := e.svc.Eject(7); err != nil {
			t.Fatal(err)
		}
		if err := e.svc.Eject(7); err == nil {
			t.Fatal("double eject succeeded")
		}
	})
	e.k.Stop()
}

func TestPrefetchRunsInBackground(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		for tag := 0; tag < 3; tag++ {
			e.seed(t, p, tag, byte(tag+1))
		}
		e.svc.Prefetch = func(tag int) []int {
			if tag == 0 {
				return []int{1, 2}
			}
			return nil
		}
		if _, err := e.svc.DemandFetch(p, 0); err != nil {
			t.Fatal(err)
		}
		p.Sleep(120 * time.Second)
		if e.c.Len() != 3 {
			t.Fatalf("prefetch left %d lines cached, want 3", e.c.Len())
		}
	})
	e.k.Stop()
}

func TestQueueTimeAccounted(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		// Two back-to-back copyouts: the second queues behind the first.
		for tag := 0; tag < 2; tag++ {
			seg, _ := e.c.TakeFree()
			e.c.Insert(tag, seg, true, p.Now())
			e.svc.ScheduleCopyout(p, tag, seg)
		}
		e.svc.DrainCopyouts(p)
		if e.svc.Stats().Copyouts != 2 {
			t.Fatalf("copyouts = %d", e.svc.Stats().Copyouts)
		}
		if e.svc.Obs().CatTotal("fp.write") == 0 || e.svc.Obs().CatTotal("io.read") == 0 {
			t.Fatal("transfer times not accounted")
		}
	})
	e.k.Stop()
}

func TestStallNotification(t *testing.T) {
	e := newEnv(t, 4)
	type note struct {
		tag    int
		waited sim.Time
		done   bool
	}
	var notes []note
	e.svc.Notify = func(tag int, waited sim.Time, done bool) {
		notes = append(notes, note{tag, waited, done})
	}
	e.k.RunProc(func(p *sim.Proc) {
		e.seed(t, p, 2, 0x22)
		if _, err := e.svc.DemandFetch(p, 2); err != nil {
			t.Fatal(err)
		}
	})
	if len(notes) != 2 {
		t.Fatalf("got %d notifications, want hold-on + done", len(notes))
	}
	if notes[0].done || notes[0].tag != 2 {
		t.Fatalf("first note should be the hold-on message: %+v", notes[0])
	}
	if !notes[1].done || notes[1].waited <= 0 {
		t.Fatalf("second note should report the wait: %+v", notes[1])
	}
	e.k.Stop()
}

func TestTransientFaultRetriedAndRecovered(t *testing.T) {
	e := newEnv(t, 4)
	attempts := 0
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "read" {
			attempts++
			if attempts <= 2 {
				return dev.ErrTransientMedia
			}
		}
		return nil
	}
	e.k.RunProc(func(p *sim.Proc) {
		e.seed(t, p, 3, 0x5C)
		line, err := e.svc.DemandFetch(p, 3)
		if err != nil {
			t.Fatalf("transient fault not recovered: %v", err)
		}
		buf := make([]byte, dev.BlockSize)
		if err := e.disk.ReadBlocks(p, int64(e.amap.BlockOf(line.DiskSeg, 0)), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x5C {
			t.Fatal("recovered fetch delivered wrong bytes")
		}
	})
	s := e.svc.Stats()
	if s.TransientRetries != 2 {
		t.Fatalf("TransientRetries = %d, want 2", s.TransientRetries)
	}
	if s.RetriesExhausted != 0 || s.FetchFaults != 0 {
		t.Fatalf("recovered fault recorded as failure: %+v", s)
	}
	e.k.Stop()
}

func TestRetryBudgetExhausted(t *testing.T) {
	e := newEnv(t, 4)
	e.svc.Retry = RetryPolicy{Max: 2, Backoff: sim.Time(time.Millisecond), MaxBackoff: sim.Time(time.Second)}
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "read" {
			return dev.ErrTransientMedia
		}
		return nil
	}
	e.k.RunProc(func(p *sim.Proc) {
		_, err := e.svc.DemandFetch(p, 2)
		if !errors.Is(err, ErrSegmentUnavailable) {
			t.Fatalf("exhausted retries = %v, want errors.Is ErrSegmentUnavailable", err)
		}
		if !errors.Is(err, dev.ErrTransientMedia) {
			t.Fatalf("cause not preserved in %v", err)
		}
		if e.c.FreeLines() != 4 {
			t.Fatalf("failed fetch leaked a cache line: %d free, want 4", e.c.FreeLines())
		}
	})
	s := e.svc.Stats()
	if s.RetriesExhausted != 1 {
		t.Fatalf("RetriesExhausted = %d, want 1", s.RetriesExhausted)
	}
	if s.TransientRetries != 2 {
		t.Fatalf("TransientRetries = %d, want 2 (the budget)", s.TransientRetries)
	}
	if s.FetchFaults != 1 {
		t.Fatalf("FetchFaults = %d, want 1", s.FetchFaults)
	}
	e.k.Stop()
}

func TestPermanentWriteErrorBecomesFailedWrite(t *testing.T) {
	e := newEnv(t, 4)
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "write" {
			return dev.ErrPermanentMedia
		}
		return nil
	}
	e.k.RunProc(func(p *sim.Proc) {
		seg, _ := e.c.TakeFree()
		e.c.Insert(6, seg, true, p.Now())
		e.svc.ScheduleCopyout(p, 6, seg)
		e.svc.DrainCopyouts(p)
		if bad := e.svc.FailedWrites(); len(bad) != 1 || bad[0] != 6 {
			t.Fatalf("FailedWrites = %v, want [6]", bad)
		}
		if e.svc.FailedWrites() != nil {
			t.Fatal("FailedWrites did not clear")
		}
		// The staging line survives: it holds the sole copy.
		l, ok := e.c.Peek(6)
		if !ok || !l.Staging {
			t.Fatal("staging line lost after permanent write error")
		}
	})
	s := e.svc.Stats()
	if s.CopyoutFaults != 1 {
		t.Fatalf("CopyoutFaults = %d, want 1", s.CopyoutFaults)
	}
	if s.TransientRetries != 0 {
		t.Fatal("permanent error must not be retried")
	}
	if s.EOMRetries != 0 {
		t.Fatal("permanent error misfiled as end-of-medium")
	}
	e.k.Stop()
}

func TestUnmappableIndexReturnsError(t *testing.T) {
	e := newEnv(t, 4)
	e.k.RunProc(func(p *sim.Proc) {
		_, err := e.svc.DemandFetch(p, 9999)
		if !errors.Is(err, ErrSegmentUnavailable) {
			t.Fatalf("unmappable index = %v, want errors.Is ErrSegmentUnavailable (not a panic)", err)
		}
		if e.c.FreeLines() != 4 {
			t.Fatalf("cache pool leaked: %d free lines, want 4", e.c.FreeLines())
		}
		// The service loop is not wedged.
		e.seed(t, p, 1, 0x44)
		if _, err := e.svc.DemandFetch(p, 1); err != nil {
			t.Fatalf("service wedged after bad index: %v", err)
		}
	})
	e.k.Stop()
}

func TestReadFailsOverToReplica(t *testing.T) {
	e := newEnv(t, 4)
	// Tag 1 lives at vol 0 seg 1 (Geom{4,16}); tag 17 is its replica at
	// vol 1 seg 1. The primary's media is permanently bad.
	e.svc.AltCopies = func(tag int) []int {
		if tag == 1 {
			return []int{17}
		}
		return nil
	}
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "read" && vol == 0 && seg == 1 {
			return dev.ErrPermanentMedia
		}
		return nil
	}
	e.k.RunProc(func(p *sim.Proc) {
		e.seed(t, p, 17, 0x9D)
		line, err := e.svc.DemandFetch(p, 1)
		if err != nil {
			t.Fatalf("replica failover failed: %v", err)
		}
		buf := make([]byte, dev.BlockSize)
		if err := e.disk.ReadBlocks(p, int64(e.amap.BlockOf(line.DiskSeg, 0)), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x9D {
			t.Fatalf("failover delivered %#x, want the replica's 0x9D", buf[0])
		}
	})
	if e.svc.Stats().ReplicaRedirects != 1 {
		t.Fatalf("ReplicaRedirects = %d, want 1", e.svc.Stats().ReplicaRedirects)
	}
	e.k.Stop()
}

func TestFetchMediaFailurePropagates(t *testing.T) {
	e := newEnv(t, 4)
	mediaErr := errors.New("unreadable platter")
	e.juke.Fault = func(op string, vol, seg int) error {
		if op == "read" {
			return mediaErr
		}
		return nil
	}
	e.k.RunProc(func(p *sim.Proc) {
		_, err := e.svc.DemandFetch(p, 1)
		if err == nil {
			t.Fatal("media failure not propagated to the faulting reader")
		}
		// The failed fetch must not leak the cache line.
		if e.c.FreeLines() != 4 {
			t.Fatalf("cache pool leaked: %d free lines, want 4", e.c.FreeLines())
		}
		// A later fetch (fault cleared) succeeds.
		e.juke.Fault = nil
		e.seed(t, p, 1, 0x33)
		if _, err := e.svc.DemandFetch(p, 1); err != nil {
			t.Fatalf("fetch after fault cleared: %v", err)
		}
	})
	e.k.Stop()
}
