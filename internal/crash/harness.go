// Package crash is a deterministic whole-stack crash-injection harness.
// It runs a scripted workload that exercises every pipeline phase (normal
// writes, disk cleaning, migration staging, copy-out, tertiary volume
// swap/cleaning), counts every media write across the disk farm and the
// jukebox, and can "cut the power" at an arbitrary media-write event:
// the durable device state at that instant is captured (volatile disk
// write cache dropped, in-flight jukebox segment torn), a fresh kernel
// remounts it, and the recovered file system is audited against a
// durability model of what had been synced before the cut.
//
// Everything runs on the simulator's virtual clock with a seeded RNG, so
// a (seed, cut-event) pair replays bit-identically — the property the
// crash matrix relies on to compare post-recovery digests across runs.
package crash

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Phase names, in workload order.
const (
	PhaseNormalWrite = "normal-write"
	PhaseCleaner     = "cleaner"
	PhaseStaging     = "staging"
	PhaseCopyOut     = "copy-out"
	PhaseVolumeSwap  = "volume-swap"
)

// Phases lists the workload phases in execution order.
func Phases() []string {
	return []string{PhaseNormalWrite, PhaseCleaner, PhaseStaging, PhaseCopyOut, PhaseVolumeSwap}
}

// Config sizes the crash rig. Small segments keep single runs cheap while
// still forcing indirect blocks, cleaning pressure and volume spill.
type Config struct {
	Seed             uint64
	SegBlocks        int
	DiskSegs         int
	CacheSegs        int
	MaxInodes        int
	Drives           int
	Vols             int
	SegsPerVol       int
	WriteCacheBlocks int // volatile disk write-back cache size
	EOMVol           int // volume given a reduced actual capacity ...
	EOMSegs          int // ... of this many segments, to force end-of-medium

	// Streams > 1 runs the copy-out pipeline with that many concurrent
	// tertiary I/O streams, and VolStripe > 1 stripes tertiary segment
	// allocation across volumes so those streams drive different
	// cartridges — the parallel pipeline of the K-stream migration work.
	// Cuts then land inside concurrent copy-outs, proving recovery with
	// several tertiary segments in flight at once, not just the serial
	// path. Zero keeps the historical single stream.
	Streams   int
	VolStripe int

	// Trace attaches a full-retention obs domain to every device and the
	// core during both the workload and recovery. Tracing reads only the
	// virtual clock and adds no virtual time, so a traced matrix must
	// produce the same digests as an untraced one (pinned by test).
	Trace bool

	// Telemetry, when non-nil, receives a published snapshot at every
	// phase boundary of each workload run. Publication only reads obs and
	// attribution state at points the sim side chose, so an attached
	// server must not change any digest (pinned by test, like Trace).
	Telemetry *telemetry.Server
}

// DefaultConfig is the pinned rig used by `make crash`.
func DefaultConfig() Config {
	return Config{
		Seed:             20260805,
		SegBlocks:        16,
		DiskSegs:         160,
		CacheSegs:        20,
		MaxInodes:        512,
		Drives:           2,
		Vols:             4,
		SegsPerVol:       6,
		WriteCacheBlocks: 8,
		EOMVol:           1,
		EOMSegs:          2,
	}
}

// PhaseSpan is the half-open media-write event interval (Start, End]
// during which a workload phase executed.
type PhaseSpan struct {
	Phase      string
	Start, End int
}

// Snapshot is the durable state of the whole stack at one media-write
// event — exactly what a power cut at that instant preserves — plus the
// durability model needed to audit a recovery from it.
type Snapshot struct {
	Event       int
	Phase       string
	Now         sim.Time
	WCacheDirty int // blocks lost from the volatile disk write cache

	DiskStore map[int64][]byte      // durable disk image (cache excluded)
	Volumes   []jukebox.VolumeImage // durable jukebox media (torn if mid-write)

	// Durability model: Durable maps each path to its content at the
	// last completed durability point (Sync/Checkpoint/CompleteMigration
	// return). Dirty/Created/Removed record changes since that point —
	// for those, recovery may surface any intermediate state.
	Durable map[string][]byte
	Dirty   map[string]bool
	Created map[string]bool
	Removed map[string]bool
}

// runResult is the outcome of one workload execution.
type runResult struct {
	TotalEvents int
	Phases      []PhaseSpan
	Snap        *Snapshot // nil unless a cut event was hit
	EOMHit      bool      // the reduced volume returned end-of-medium
	Swaps       int64     // jukebox volume swaps observed
	Obs         *obs.Obs  // non-nil when Config.Trace instrumented the run
}

// runner drives the scripted workload and maintains the durability model.
type runner struct {
	cfg    Config
	target int // media-write event to snapshot at; 0 = none
	events int
	snap   *Snapshot
	phases []PhaseSpan
	cur    string
	rng    *sim.RNG

	k            *sim.Kernel
	disk         *dev.Disk
	juke         *jukebox.Jukebox
	hl           *core.HighLight
	phaseStartEv int

	// Model of logical file contents. Slices are copy-on-write (never
	// mutated in place) so snapshots may alias them safely.
	current map[string][]byte
	durable map[string][]byte
	dirty   map[string]bool
	created map[string]bool
	removed map[string]bool
}

func (r *runner) tick() {
	r.events++
	if r.target > 0 && r.events == r.target && r.snap == nil {
		r.capture()
	}
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// capture records the power-cut state. It runs synchronously inside a
// device media-write callback, mid-operation: the disk image excludes the
// volatile write cache and the jukebox image may hold a half-written
// (torn) segment — both deliberate.
func (r *runner) capture() {
	durable := make(map[string][]byte, len(r.durable))
	for k, v := range r.durable {
		durable[k] = v
	}
	r.snap = &Snapshot{
		Event:       r.events,
		Phase:       r.cur,
		Now:         r.k.Now(),
		WCacheDirty: r.disk.WriteCacheDirty(),
		DiskStore:   r.disk.SnapshotStore(),
		Volumes:     r.juke.SnapshotVolumes(),
		Durable:     durable,
		Dirty:       copySet(r.dirty),
		Created:     copySet(r.created),
		Removed:     copySet(r.removed),
	}
}

func (r *runner) mark(phase string) {
	if r.cur != "" {
		r.phases = append(r.phases, PhaseSpan{Phase: r.cur, Start: r.phaseStartEv, End: r.events})
	}
	r.cur = phase
	r.phaseStartEv = r.events
	r.publish()
}

// publish pushes the rig's current state to the attached telemetry
// server, if any. Called at phase boundaries — deterministic points on
// the virtual clock — and purely read-only with respect to the sim.
func (r *runner) publish() {
	if r.cfg.Telemetry == nil || r.hl == nil {
		return
	}
	r.cfg.Telemetry.Publish(telemetry.Collect(r.hl.Obs, r.hl.Heat, r.hl.Audit, r.k.Now()))
}

func (r *runner) pattern(nblocks int) []byte {
	b := make([]byte, nblocks*lfs.BlockSize)
	for i := range b {
		b[i] = byte(r.rng.Intn(256))
	}
	return b
}

// writeFile creates or overwrites name at byte offset off and updates the
// model (copy-on-write, so aliased snapshot slices stay intact).
func (r *runner) writeFile(p *sim.Proc, name string, off int, data []byte) error {
	var f *lfs.File
	var err error
	if _, ok := r.current[name]; ok {
		f, err = r.hl.FS.Open(p, name)
	} else {
		f, err = r.hl.FS.Create(p, name)
		if err == nil {
			r.created[name] = true
			delete(r.removed, name)
		}
	}
	if err != nil {
		return fmt.Errorf("crash: %s: %w", name, err)
	}
	if _, err := f.WriteAt(p, data, int64(off)); err != nil {
		return fmt.Errorf("crash: writing %s: %w", name, err)
	}
	old := r.current[name]
	size := len(old)
	if off+len(data) > size {
		size = off + len(data)
	}
	cur := make([]byte, size)
	copy(cur, old)
	copy(cur[off:], data)
	r.current[name] = cur
	r.dirty[name] = true
	return nil
}

func (r *runner) removeFile(p *sim.Proc, name string) error {
	if err := r.hl.FS.Remove(p, name); err != nil {
		return fmt.Errorf("crash: removing %s: %w", name, err)
	}
	delete(r.current, name)
	delete(r.dirty, name)
	delete(r.created, name)
	r.removed[name] = true
	return nil
}

// commit advances the durability model: everything in the current state
// is now guaranteed to survive a crash.
func (r *runner) commit() {
	durable := make(map[string][]byte, len(r.current))
	for k, v := range r.current {
		durable[k] = v
	}
	r.durable = durable
	r.dirty = map[string]bool{}
	r.created = map[string]bool{}
	r.removed = map[string]bool{}
}

func (r *runner) sync(p *sim.Proc) error {
	if err := r.hl.FS.Sync(p); err != nil {
		return fmt.Errorf("crash: sync: %w", err)
	}
	r.commit()
	return nil
}

func (r *runner) checkpoint(p *sim.Proc) error {
	if err := r.hl.Checkpoint(p); err != nil {
		return fmt.Errorf("crash: checkpoint: %w", err)
	}
	r.commit()
	return nil
}

func (r *runner) inum(p *sim.Proc, name string) (uint32, error) {
	f, err := r.hl.FS.Open(p, name)
	if err != nil {
		return 0, fmt.Errorf("crash: %s: %w", name, err)
	}
	return f.Inum(), nil
}

// buildDevices assembles the rig's device set on a fresh kernel.
func buildDevices(k *sim.Kernel, cfg Config) (*dev.Disk, *jukebox.Jukebox, error) {
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(cfg.DiskSegs*cfg.SegBlocks), bus)
	disk.EnableWriteCache(cfg.WriteCacheBlocks)
	juke, err := jukebox.New(k, jukebox.MO6300, cfg.Drives, cfg.Vols, cfg.SegsPerVol,
		cfg.SegBlocks*lfs.BlockSize, bus)
	if err != nil {
		return nil, nil, fmt.Errorf("crash: %w", err)
	}
	if cfg.EOMVol >= 0 && cfg.EOMVol < cfg.Vols && cfg.EOMSegs > 0 {
		juke.SetActualSegments(cfg.EOMVol, cfg.EOMSegs)
	}
	return disk, juke, nil
}

// attachObs instruments the rig with a full-retention trace domain when
// cfg.Trace is set; otherwise the core builds its own metrics-only
// domain and the devices stay uninstrumented.
func attachObs(k *sim.Kernel, cfg Config, disk *dev.Disk, juke *jukebox.Jukebox) *obs.Obs {
	if !cfg.Trace {
		return nil
	}
	o := obs.New(k)
	o.EnableTrace()
	disk.SetObs(o, "")
	juke.SetObs(o, "")
	return o
}

func coreConfig(cfg Config, o *obs.Obs, disk *dev.Disk, juke *jukebox.Jukebox) core.Config {
	return core.Config{
		SegBlocks:   cfg.SegBlocks,
		Disks:       []dev.BlockDev{disk},
		Jukeboxes:   []jukebox.Footprint{juke},
		CacheSegs:   cfg.CacheSegs,
		MaxInodes:   cfg.MaxInodes,
		BufferBytes: 1 << 20,
		Streams:     cfg.Streams,
		VolStripe:   cfg.VolStripe,
		Obs:         o,
	}
}

// runWorkload executes the scripted five-phase workload on a fresh rig.
// If cutEvent > 0, the durable state at that media-write event is
// captured into the result's Snap; the run still continues to completion
// so the phase spans and totals are identical across cut choices.
func runWorkload(cfg Config, cutEvent int) (*runResult, error) {
	k := sim.NewKernel()
	disk, juke, err := buildDevices(k, cfg)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:     cfg,
		target:  cutEvent,
		rng:     sim.NewRNG(cfg.Seed),
		k:       k,
		disk:    disk,
		juke:    juke,
		current: map[string][]byte{},
		durable: map[string][]byte{},
		dirty:   map[string]bool{},
		created: map[string]bool{},
		removed: map[string]bool{},
	}
	disk.OnMediaWrite = func(int64) { r.tick() }
	juke.OnMediaWrite = func(int, int) { r.tick() }
	o := attachObs(k, cfg, disk, juke)

	var werr error
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, coreConfig(cfg, o, disk, juke), true)
		if err != nil {
			werr = fmt.Errorf("crash: formatting rig: %w", err)
			return
		}
		r.hl = hl
		hl.FS.AttachCleaner(6, 10)
		werr = r.workload(p)
	})
	if werr != nil {
		return nil, werr
	}
	r.mark("") // close the final span
	return &runResult{
		TotalEvents: r.events,
		Phases:      r.phases,
		Snap:        r.snap,
		EOMHit:      juke.VolumeFull(cfg.EOMVol),
		Swaps:       juke.Stats().Swaps,
		Obs:         o,
	}, nil
}

// workload is the scripted five-phase exercise. Every phase both starts
// and ends between durability points, so cuts inside it land on a mix of
// synced and unsynced state.
func (r *runner) workload(p *sim.Proc) error {
	hl := r.hl

	// Phase 1 — normal writes: a base population, two sync barriers, and
	// a dirty (never-synced) tail so mid-phase cuts exercise the volatile
	// write cache dropping unflushed data.
	r.mark(PhaseNormalWrite)
	for i := 0; i < 8; i++ {
		if err := r.writeFile(p, fmt.Sprintf("/f%d", i), 0, r.pattern(4+(i%5)*3)); err != nil {
			return err
		}
	}
	if err := r.sync(p); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := r.writeFile(p, fmt.Sprintf("/f%d", i), lfs.BlockSize, r.pattern(2)); err != nil {
			return err
		}
	}
	if err := r.sync(p); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := r.writeFile(p, fmt.Sprintf("/d%d", i), 0, r.pattern(3)); err != nil {
			return err
		}
	}

	// Phase 2 — disk cleaner: churn overwrites to kill segments, then a
	// cleaner pass (whose reuse commit is itself a checkpoint barrier).
	r.mark(PhaseCleaner)
	if err := r.removeFile(p, "/f5"); err != nil {
		return err
	}
	if err := r.writeFile(p, "/f6", 0, r.pattern(10)); err != nil {
		return err
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 4; i++ {
			if err := r.writeFile(p, fmt.Sprintf("/churn%d", i), 0, r.pattern(6)); err != nil {
				return err
			}
		}
		if err := r.sync(p); err != nil {
			return err
		}
	}
	if segs := hl.FS.SelectCleanable(4); len(segs) > 0 {
		if _, err := hl.FS.CleanSegments(p, segs); err != nil {
			return fmt.Errorf("crash: cleaning: %w", err)
		}
	}
	if err := r.checkpoint(p); err != nil {
		return err
	}

	// Phase 3 — staging: migrate the base files with copy-outs delayed,
	// so this phase is pure disk-side staging (image writes, binding
	// checkpoints) with no tertiary traffic yet.
	r.mark(PhaseStaging)
	hl.DelayCopyouts = true
	var inums []uint32
	for i := 0; i < 4; i++ {
		in, err := r.inum(p, fmt.Sprintf("/f%d", i))
		if err != nil {
			return err
		}
		inums = append(inums, in)
	}
	if _, err := hl.MigrateFiles(p, inums, true); err != nil {
		return fmt.Errorf("crash: staging migration: %w", err)
	}

	// Phase 4 — copy-out: release the delayed copyouts; every event here
	// is a jukebox media write (including the torn mid-segment points).
	r.mark(PhaseCopyOut)
	hl.DelayCopyouts = false
	hl.FlushCopyouts(p)
	hl.Svc.DrainCopyouts(p)
	if err := hl.CompleteMigration(p); err != nil {
		return fmt.Errorf("crash: completing migration: %w", err)
	}
	if err := r.checkpoint(p); err != nil {
		return err
	}

	// Phase 5 — volume swap: enough new migration to spill past volume 0
	// onto the capacity-reduced volume (forcing end-of-medium retirement
	// and restage), then a tertiary cleaner pass that erases a volume.
	r.mark(PhaseVolumeSwap)
	var bigs []uint32
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("/big%d", i)
		if err := r.writeFile(p, name, 0, r.pattern(16)); err != nil {
			return err
		}
	}
	if err := r.sync(p); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		in, err := r.inum(p, fmt.Sprintf("/big%d", i))
		if err != nil {
			return err
		}
		bigs = append(bigs, in)
	}
	if _, err := hl.MigrateFiles(p, bigs, true); err != nil {
		return fmt.Errorf("crash: spill migration: %w", err)
	}
	if err := hl.CompleteMigration(p); err != nil {
		return fmt.Errorf("crash: completing spill migration: %w", err)
	}
	if err := r.checkpoint(p); err != nil {
		return err
	}
	if _, err := hl.CleanVolume(p, 0, 0); err != nil {
		return fmt.Errorf("crash: cleaning volume 0: %w", err)
	}
	return r.checkpoint(p)
}
