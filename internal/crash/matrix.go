package crash

import "fmt"

// Cut is one planned power-cut point.
type Cut struct {
	Phase string
	Event int
}

// Report is the outcome of a full crash-matrix run.
type Report struct {
	Cfg         Config
	TotalEvents int
	Phases      []PhaseSpan
	Cuts        []Cut
	Outcomes    []*Outcome
}

// Failures returns the outcomes with at least one violation.
func (r *Report) Failures() []*Outcome {
	var out []*Outcome
	for _, o := range r.Outcomes {
		if len(o.Violations) > 0 {
			out = append(out, o)
		}
	}
	return out
}

// CacheDropCuts counts cut points at which the volatile disk write cache
// held unflushed blocks — the cases proving the durability model tolerates
// dropped cache contents.
func (r *Report) CacheDropCuts() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.WCacheDirty > 0 {
			n++
		}
	}
	return n
}

// PlanCuts spreads perPhase cut events evenly across each workload
// phase's media-write span. It refuses to plan a thinner matrix than
// asked for: a phase too short for perPhase distinct events is an error,
// not a silent reduction.
func PlanCuts(phases []PhaseSpan, perPhase int) ([]Cut, error) {
	if perPhase < 1 {
		return nil, fmt.Errorf("crash: perPhase %d < 1", perPhase)
	}
	var cuts []Cut
	for _, span := range phases {
		n := span.End - span.Start
		if n < perPhase {
			return nil, fmt.Errorf("crash: phase %q spans only %d media writes, need %d cut points",
				span.Phase, n, perPhase)
		}
		for k := 0; k < perPhase; k++ {
			ev := span.Start + 1
			if perPhase > 1 {
				ev += k * (n - 1) / (perPhase - 1)
			}
			cuts = append(cuts, Cut{Phase: span.Phase, Event: ev})
		}
	}
	return cuts, nil
}

// RunMatrix executes the crash matrix: one pristine workload run to
// discover the phase spans, then one power cut per planned event, each
// recovered on a fresh kernel and audited. Deterministic per Config.Seed:
// two runs yield identical outcomes (including digests).
func RunMatrix(cfg Config, perPhase int) (*Report, error) {
	pristine, err := runWorkload(cfg, 0)
	if err != nil {
		return nil, err
	}
	if !pristine.EOMHit {
		return nil, fmt.Errorf("crash: workload never hit end-of-medium on volume %d (rig too small?)", cfg.EOMVol)
	}
	if pristine.Swaps == 0 {
		return nil, fmt.Errorf("crash: workload performed no volume swaps")
	}
	cuts, err := PlanCuts(pristine.Phases, perPhase)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Cfg:         cfg,
		TotalEvents: pristine.TotalEvents,
		Phases:      pristine.Phases,
		Cuts:        cuts,
	}
	for _, c := range cuts {
		res, err := runWorkload(cfg, c.Event)
		if err != nil {
			return nil, fmt.Errorf("crash: replaying to event %d (%s): %w", c.Event, c.Phase, err)
		}
		if res.Snap == nil {
			return nil, fmt.Errorf("crash: replay never reached event %d (%s)", c.Event, c.Phase)
		}
		out, err := Recover(cfg, res.Snap)
		if err != nil {
			return nil, err
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep, nil
}
