package crash

import (
	"fmt"
	"testing"
)

const cutsPerPhase = 8 // 5 phases x 8 = 40 cut points

// TestWorkloadPhases sanity-checks the pristine run: every pipeline phase
// generates media writes wide enough for the matrix, and the tertiary
// pipeline really swapped volumes and hit end-of-medium.
func TestWorkloadPhases(t *testing.T) {
	res, err := runWorkload(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snap != nil {
		t.Fatal("pristine run captured a snapshot")
	}
	want := Phases()
	if len(res.Phases) != len(want) {
		t.Fatalf("got %d phase spans, want %d: %+v", len(res.Phases), len(want), res.Phases)
	}
	for i, span := range res.Phases {
		if span.Phase != want[i] {
			t.Errorf("phase %d = %q, want %q", i, span.Phase, want[i])
		}
		if n := span.End - span.Start; n < cutsPerPhase {
			t.Errorf("phase %q spans only %d media writes, need %d", span.Phase, n, cutsPerPhase)
		}
	}
	if !res.EOMHit {
		t.Error("end-of-medium volume never filled")
	}
	if res.Swaps == 0 {
		t.Error("no jukebox volume swaps")
	}
}

// TestCrashMatrix is the tentpole acceptance test: >= 40 power cuts
// bracketing every pipeline phase, each recovering with zero fsck
// problems and zero durability violations, with at least one cut dropping
// unflushed write-cache blocks. Run twice, the matrix must be
// bit-reproducible: every per-cut digest identical.
func TestCrashMatrix(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := RunMatrix(cfg, cutsPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) < 40 {
		t.Fatalf("matrix ran %d cuts, want >= 40", len(rep.Outcomes))
	}
	phases := map[string]int{}
	for _, o := range rep.Outcomes {
		phases[o.Phase]++
		for _, v := range o.Violations {
			t.Errorf("cut at event %d (%s): %s", o.Event, o.Phase, v)
		}
		if o.FsckProblems > 0 {
			t.Errorf("cut at event %d (%s): %d fsck problems", o.Event, o.Phase, o.FsckProblems)
		}
	}
	for _, ph := range Phases() {
		if phases[ph] < cutsPerPhase {
			t.Errorf("phase %q got %d cuts, want %d", ph, phases[ph], cutsPerPhase)
		}
	}
	if rep.CacheDropCuts() == 0 {
		t.Error("no cut point caught the volatile write cache holding unflushed blocks")
	}
	if t.Failed() {
		t.Logf("phase spans: %+v", rep.Phases)
		return
	}

	// Determinism: the entire matrix replayed from the same seed must
	// produce identical recovered states, digest for digest.
	rep2, err := RunMatrix(cfg, cutsPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Outcomes) != len(rep.Outcomes) {
		t.Fatalf("second run produced %d outcomes, first %d", len(rep2.Outcomes), len(rep.Outcomes))
	}
	for i, o := range rep.Outcomes {
		o2 := rep2.Outcomes[i]
		if o.Digest != o2.Digest || o.Event != o2.Event || o.Phase != o2.Phase {
			t.Errorf("cut %d not reproducible: event %d (%s) %s vs event %d (%s) %s",
				i, o.Event, o.Phase, o.Digest[:12], o2.Event, o2.Phase, o2.Digest[:12])
		}
	}
}

// TestRecoverySurvivesWriteCacheDrop pins the write-back cache scenario
// explicitly: cut mid-sync while the cache holds dirty blocks, and show
// the drop costs only unsynced data.
func TestRecoverySurvivesWriteCacheDrop(t *testing.T) {
	cfg := DefaultConfig()
	pristine, err := runWorkload(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := PlanCuts(pristine.Phases, cutsPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cuts {
		res, err := runWorkload(cfg, c.Event)
		if err != nil {
			t.Fatal(err)
		}
		if res.Snap == nil || res.Snap.WCacheDirty == 0 {
			continue
		}
		out, err := Recover(cfg, res.Snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Violations) > 0 {
			t.Fatalf("cut at event %d dropped %d cached blocks and violated durability: %v",
				c.Event, res.Snap.WCacheDirty, out.Violations)
		}
		t.Logf("event %d (%s): dropped %d unflushed blocks, recovery clean (%s)",
			c.Event, c.Phase, res.Snap.WCacheDirty, out.FsckSummary)
		return
	}
	t.Fatal("no planned cut found the write cache dirty")
}

func ExamplePlanCuts() {
	spans := []PhaseSpan{
		{Phase: "a", Start: 0, End: 10},
		{Phase: "b", Start: 10, End: 14},
	}
	cuts, _ := PlanCuts(spans, 4)
	for _, c := range cuts {
		fmt.Println(c.Phase, c.Event)
	}
	// Output:
	// a 1
	// a 4
	// a 7
	// a 10
	// b 11
	// b 12
	// b 13
	// b 14
}
