package crash

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryDoesNotPerturbRecovery is the crash-side half of the
// tentpole determinism pin: a full (reduced, two-cuts-per-phase) crash
// matrix run with a telemetry server attached and publishing at every
// phase boundary must produce exactly the digests of a plain run.
// Publication only reads obs/heat/audit state at sim-chosen points, so
// any digest drift means the telemetry path leaked into the simulation.
func TestTelemetryDoesNotPerturbRecovery(t *testing.T) {
	plain := DefaultConfig()

	served := DefaultConfig()
	srv := telemetry.NewServer()
	served.Telemetry = srv

	repPlain, err := RunMatrix(plain, 2)
	if err != nil {
		t.Fatal(err)
	}
	repServed, err := RunMatrix(served, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(repServed.Outcomes) != len(repPlain.Outcomes) {
		t.Fatalf("served matrix ran %d cuts, plain %d", len(repServed.Outcomes), len(repPlain.Outcomes))
	}
	for i, o := range repServed.Outcomes {
		if len(o.Violations) > 0 {
			t.Errorf("served cut at event %d (%s): %v", o.Event, o.Phase, o.Violations)
		}
		po := repPlain.Outcomes[i]
		if o.Digest != po.Digest {
			t.Errorf("cut %d: telemetry changed the recovery digest (event %d, %s): %s vs %s",
				i, o.Event, o.Phase, o.Digest[:12], po.Digest[:12])
		}
	}
	// The server actually saw the workload: the final published snapshot
	// carries migration decisions and segment heat from the crash rig.
	sn := srv.Current()
	if sn == nil {
		t.Fatal("crash matrix with telemetry attached never published")
	}
	m := string(sn.Metrics)
	for _, want := range []string{"hl_segment_heat{seg=", "hl_decisions_recorded_total"} {
		if !strings.Contains(m, want) {
			t.Fatalf("published metrics missing %q:\n%s", want, m)
		}
	}
	d := string(sn.Decisions)
	for _, want := range []string{`"verdict": "staged"`, `"actor": "tcleaner"`} {
		if !strings.Contains(d, want) {
			t.Fatalf("published decisions missing %q:\n%s", want, d)
		}
	}
}
