package crash

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fsck"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// Outcome is the audited result of recovering from one power cut.
type Outcome struct {
	Phase       string
	Event       int
	WCacheDirty int // unflushed blocks the cut dropped

	Recovery lfs.RecoveryInfo
	Mount    core.MountStats

	FsckProblems int
	FsckSummary  string

	// Violations are durability-model breaches: synced data missing or
	// corrupt, removed-and-synced files resurrected, unreadable state.
	// A correct implementation produces none, at any cut point.
	Violations []string

	// Digest hashes everything observable after recovery (file contents,
	// recovery counters, mount stats, fsck summary). Identical seeds and
	// cut events must produce identical digests.
	Digest string
}

// Recover "reboots" from a power-cut snapshot: fresh kernel, the same
// device geometry restored to the captured durable images, a normal
// mount (roll-forward, cache-directory rebuild, staging revalidation,
// live-byte recompute), completion of any interrupted migration — then a
// full fsck plus durability-model audit.
func Recover(cfg Config, snap *Snapshot) (*Outcome, error) {
	k := sim.NewKernel()
	k.AdvanceTo(snap.Now)
	disk, juke, err := buildDevices(k, cfg)
	if err != nil {
		return nil, err
	}
	disk.RestoreStore(snap.DiskStore)
	juke.RestoreVolumes(snap.Volumes)
	o := attachObs(k, cfg, disk, juke)

	out := &Outcome{
		Phase:       snap.Phase,
		Event:       snap.Event,
		WCacheDirty: snap.WCacheDirty,
	}
	var rerr error
	k.RunProc(func(p *sim.Proc) {
		hl, err := core.New(p, coreConfig(cfg, o, disk, juke), false)
		if err != nil {
			rerr = fmt.Errorf("crash: remounting after cut at event %d (%s): %w", snap.Event, snap.Phase, err)
			return
		}
		// Finish whatever migration the cut interrupted: rescheduled
		// staging copy-outs drain and the staging area closes.
		if err := hl.CompleteMigration(p); err != nil {
			rerr = fmt.Errorf("crash: rerunning interrupted migration: %w", err)
			return
		}
		rep, err := fsck.Check(p, hl)
		if err != nil {
			rerr = fmt.Errorf("crash: fsck after recovery: %w", err)
			return
		}
		out.Recovery = hl.FS.Recovery()
		out.Mount = hl.MountStats()
		out.FsckProblems = len(rep.Problems)
		out.FsckSummary = rep.Summary()
		for _, pr := range rep.Problems {
			out.Violations = append(out.Violations, "fsck: "+pr.String())
		}
		if err := auditDurability(p, hl, snap, out); err != nil {
			rerr = err
			return
		}
		digest, err := recoveryDigest(p, hl, out)
		if err != nil {
			rerr = err
			return
		}
		out.Digest = digest
	})
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// readAll reads a recovered file in full.
func readAll(p *sim.Proc, f *lfs.File) ([]byte, error) {
	size, err := f.Size(p)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	if _, err := f.ReadAt(p, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// auditDurability checks the recovered namespace against the snapshot's
// durability model:
//
//   - a file synced before the cut and untouched since must come back
//     byte-identical;
//   - a file with unsynced changes must still exist (its creation was
//     durable) and be fully readable, but its content is indeterminate —
//     roll-forward may surface any prefix of the unsynced writes;
//   - a file created after the last durability point may or may not have
//     survived; if present it must be readable;
//   - a file removed after the last sync may linger or be gone;
//   - anything else in the namespace is a resurrection — a violation.
func auditDurability(p *sim.Proc, hl *core.HighLight, snap *Snapshot, out *Outcome) error {
	names := make([]string, 0, len(snap.Durable))
	for name := range snap.Durable {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := snap.Durable[name]
		f, err := hl.FS.Open(p, name)
		if err != nil {
			if snap.Removed[name] {
				continue // the removal made it to the log before the cut
			}
			out.Violations = append(out.Violations,
				fmt.Sprintf("%s: synced file missing after recovery: %v", name, err))
			continue
		}
		got, err := readAll(p, f)
		if err != nil {
			out.Violations = append(out.Violations,
				fmt.Sprintf("%s: synced file unreadable after recovery: %v", name, err))
			continue
		}
		if snap.Dirty[name] || snap.Removed[name] {
			continue // content indeterminate; readability was the contract
		}
		if !bytes.Equal(got, want) {
			out.Violations = append(out.Violations,
				fmt.Sprintf("%s: synced content lost: %d bytes recovered, %d synced", name, len(got), len(want)))
		}
	}
	// Resurrection check: everything reachable must be accounted for.
	// (Walk holds the FS lock through the callback, so collect first and
	// open after it returns.)
	var reachable []string
	if err := hl.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		if fi.Type != lfs.TypeDir {
			reachable = append(reachable, path)
		}
		return nil
	}); err != nil {
		return err
	}
	for _, path := range reachable {
		if _, ok := snap.Durable[path]; ok {
			continue
		}
		if snap.Created[path] {
			f, err := hl.FS.Open(p, path)
			if err == nil {
				_, err = readAll(p, f)
			}
			if err != nil {
				out.Violations = append(out.Violations,
					fmt.Sprintf("%s: partially-created file unreadable: %v", path, err))
			}
			continue
		}
		out.Violations = append(out.Violations,
			fmt.Sprintf("%s: file resurrected by recovery (not durable, not recently created)", path))
	}
	return nil
}

// recoveryDigest hashes the complete observable post-recovery state.
func recoveryDigest(p *sim.Proc, hl *core.HighLight, out *Outcome) (string, error) {
	type ent struct {
		path string
		dir  bool
	}
	var ents []ent
	if err := hl.FS.Walk(p, "/", func(path string, fi lfs.FileInfo) error {
		ents = append(ents, ent{path, fi.Type == lfs.TypeDir})
		return nil
	}); err != nil {
		return "", err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].path < ents[j].path })
	h := sha256.New()
	for _, e := range ents {
		if e.dir {
			fmt.Fprintf(h, "dir %s\n", e.path)
			continue
		}
		f, err := hl.FS.Open(p, e.path)
		if err != nil {
			return "", fmt.Errorf("crash: digesting %s: %w", e.path, err)
		}
		data, err := readAll(p, f)
		if err != nil {
			return "", fmt.Errorf("crash: digesting %s: %w", e.path, err)
		}
		fmt.Fprintf(h, "file %s %d %x\n", e.path, len(data), sha256.Sum256(data))
	}
	fmt.Fprintf(h, "recovery %+v\n", out.Recovery)
	fmt.Fprintf(h, "mount %+v\n", out.Mount)
	fmt.Fprintf(h, "fsck %s\n", out.FsckSummary)
	fmt.Fprintf(h, "retired %d\n", hl.RetiredSegments())
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
