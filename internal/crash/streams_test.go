package crash

import "testing"

// streamsConfig is the pinned concurrent-pipeline rig: the same geometry
// as DefaultConfig but with the K-stream copy-out active — two tertiary
// I/O streams draining the copy-out queue at once, and volume-striped
// segment allocation so the concurrent streams really drive different
// cartridges on the two drives.
func streamsConfig() Config {
	cfg := DefaultConfig()
	cfg.Streams = 2
	cfg.VolStripe = 2
	return cfg
}

// TestCrashMatrixConcurrentStreams re-runs the crash matrix with the
// parallel migration pipeline active (Streams > 1), so cut points land
// while several tertiary segments are in flight concurrently — copy-outs
// interleaved across two drives and two volumes. Recovery from every cut
// must be as clean as on the serial path: zero durability violations,
// zero fsck problems, and the whole matrix bit-reproducible.
//
// The name shares the TestCrashMatrix prefix deliberately: `make crash`
// runs `-run TestCrashMatrix`, which covers the serial matrix and this
// concurrent one together.
func TestCrashMatrixConcurrentStreams(t *testing.T) {
	cfg := streamsConfig()
	rep, err := RunMatrix(cfg, cutsPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, o := range rep.Outcomes {
		phases[o.Phase]++
		for _, v := range o.Violations {
			t.Errorf("cut at event %d (%s): %s", o.Event, o.Phase, v)
		}
		if o.FsckProblems > 0 {
			t.Errorf("cut at event %d (%s): %d fsck problems", o.Event, o.Phase, o.FsckProblems)
		}
	}
	// The concurrent pipeline must still bracket every phase — in
	// particular the copy-out and volume-swap phases where the K streams
	// overlap in flight.
	for _, ph := range Phases() {
		if phases[ph] < cutsPerPhase {
			t.Errorf("phase %q got %d cuts, want %d", ph, phases[ph], cutsPerPhase)
		}
	}
	if t.Failed() {
		t.Logf("phase spans: %+v", rep.Phases)
		return
	}

	// Determinism with concurrency: the stream daemons race only on the
	// virtual clock, so the full matrix must replay digest-for-digest.
	rep2, err := RunMatrix(cfg, cutsPerPhase)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Outcomes) != len(rep.Outcomes) {
		t.Fatalf("second run produced %d outcomes, first %d", len(rep2.Outcomes), len(rep.Outcomes))
	}
	for i, o := range rep.Outcomes {
		o2 := rep2.Outcomes[i]
		if o.Digest != o2.Digest || o.Event != o2.Event || o.Phase != o2.Phase {
			t.Errorf("cut %d not reproducible: event %d (%s) %s vs event %d (%s) %s",
				i, o.Event, o.Phase, o.Digest[:12], o2.Event, o2.Phase, o2.Digest[:12])
		}
	}
}
