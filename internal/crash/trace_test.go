package crash

import "testing"

// TestTracingDoesNotPerturbRecovery runs a reduced crash matrix twice —
// once plain, once with full-retention tracing on every device and the
// core — and requires identical recovery digests with zero problems in
// both. Tracing reads the virtual clock but never advances it, so an
// instrumented run must be bit-for-bit the same simulation. Two cuts
// per phase keep this cheap next to TestCrashMatrix's eight.
func TestTracingDoesNotPerturbRecovery(t *testing.T) {
	plain := DefaultConfig()
	traced := DefaultConfig()
	traced.Trace = true

	repPlain, err := RunMatrix(plain, 2)
	if err != nil {
		t.Fatal(err)
	}
	repTraced, err := RunMatrix(traced, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(repTraced.Outcomes) != len(repPlain.Outcomes) {
		t.Fatalf("traced matrix ran %d cuts, plain %d", len(repTraced.Outcomes), len(repPlain.Outcomes))
	}
	for i, o := range repTraced.Outcomes {
		if len(o.Violations) > 0 {
			t.Errorf("traced cut at event %d (%s): %v", o.Event, o.Phase, o.Violations)
		}
		if o.FsckProblems > 0 {
			t.Errorf("traced cut at event %d (%s): %d fsck problems", o.Event, o.Phase, o.FsckProblems)
		}
		po := repPlain.Outcomes[i]
		if o.Digest != po.Digest {
			t.Errorf("cut %d: tracing changed the recovery digest (event %d, %s): %s vs %s",
				i, o.Event, o.Phase, o.Digest[:12], po.Digest[:12])
		}
	}
}

// TestTracedWorkloadCapturesSpans proves Config.Trace actually
// instruments the crash rig: the pristine traced run retains spans from
// the disk, the jukebox, and the core pipeline.
func TestTracedWorkloadCapturesSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	res, err := runWorkload(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || !res.Obs.TraceEnabled() {
		t.Fatal("traced run has no retaining obs domain")
	}
	if len(res.Obs.Spans()) == 0 {
		t.Fatal("traced run retained no spans")
	}
	for _, cat := range []string{"disk.write", "jb.write", "jb.swap", "core.migrate", "core.ckpt", "fp.write"} {
		if res.Obs.CatCount(cat) == 0 {
			t.Errorf("traced run has no %s events", cat)
		}
	}
	// The untraced run must not pay for retention.
	plain, err := runWorkload(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Obs != nil {
		t.Fatal("untraced run built a trace domain")
	}
}
