package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/sim"
)

// TestLongevityWeekOfOperation simulates a week of Sequoia-style usage on
// a small disk with all background machinery live — cleaner daemon,
// migrator-style nightly migrations, daytime reads with demand fetches,
// periodic volume cleaning — and checks the steady-state invariants: the
// disk never wedges, every retained dataset stays intact, and storage
// accounting stays consistent.
func TestLongevityWeekOfOperation(t *testing.T) {
	const segBlocks = 16
	k := sim.NewKernel()
	bus := dev.NewBus(k, "scsi", dev.SCSIBusRate)
	disk := dev.NewDisk(k, dev.RZ57, int64(96*segBlocks), bus) // ~6 MB disk
	juke := jukebox.MustNew(k, jukebox.MO6300, 2, 8, 32, segBlocks*lfs.BlockSize, bus)
	var hl *HighLight
	k.RunProc(func(p *sim.Proc) {
		var err error
		hl, err = New(p, Config{
			SegBlocks:   segBlocks,
			Disks:       []dev.BlockDev{disk},
			Jukeboxes:   []jukebox.Footprint{juke},
			CacheSegs:   12,
			MaxInodes:   512,
			BufferBytes: 1 << 20,
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Mkdir(p, "/data"); err != nil {
			t.Fatal(err)
		}
	})
	k.GoDaemon("cleaner", hl.FS.AttachCleaner(8, 14))

	model := map[string][]byte{}
	rng := sim.NewRNG(20260706)
	k.RunProc(func(p *sim.Proc) {
		day := 0
		for ; day < 7; day++ {
			// Daytime: ingest a new dataset (~1.5 MB) and re-read two
			// random old ones (possibly off the jukebox).
			name := "/data/day" + itoa(day)
			sz := (300 + rng.Intn(100)) * 1024
			data := make([]byte, sz)
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			f, err := hl.FS.Create(p, name)
			if err != nil {
				t.Fatalf("day %d ingest: %v", day, err)
			}
			if _, err := f.WriteAt(p, data, 0); err != nil {
				t.Fatalf("day %d write: %v", day, err)
			}
			model[name] = data
			if err := hl.FS.Sync(p); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 2 && day > 0; r++ {
				old := "/data/day" + itoa(rng.Intn(day))
				g, err := hl.FS.Open(p, old)
				if err != nil {
					t.Fatalf("day %d re-read %s: %v", day, old, err)
				}
				got := make([]byte, len(model[old]))
				if _, err := g.ReadAt(p, got, 0); err != nil && err != io.EOF {
					t.Fatal(err)
				}
				if !bytes.Equal(got, model[old]) {
					t.Fatalf("day %d: %s corrupted", day, old)
				}
			}
			p.Sleep(12 * time.Hour)

			// Night: migrate everything older than a day, clean a
			// tertiary volume every third night.
			var dormant []uint32
			err = hl.FS.Walk(p, "/data", func(path string, fi lfs.FileInfo) error {
				if fi.Type == lfs.TypeFile && p.Now()-sim.Time(fi.Atime) > 20*time.Hour {
					dormant = append(dormant, fi.Inum)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(dormant) > 0 {
				if _, err := hl.MigrateFiles(p, dormant, true); err != nil {
					t.Fatalf("night %d migrate: %v", day, err)
				}
				if err := hl.CompleteMigration(p); err != nil {
					t.Fatalf("night %d complete: %v", day, err)
				}
			}
			if day%3 == 2 {
				if u, ok := hl.SelectCleanableVolume(); ok && u.LiveBytes == 0 && u.UsedSegs > 0 {
					if _, err := hl.CleanVolume(p, u.Device, u.Volume); err != nil {
						t.Fatalf("night %d volume clean: %v", day, err)
					}
				}
			}
			p.Sleep(12 * time.Hour)

			// Steady-state invariants each day.
			st := hl.Stats()
			if st.CleanSegs < 2 {
				t.Fatalf("day %d: clean pool exhausted (%d)", day, st.CleanSegs)
			}
			u := hl.FS.Usage()
			if u.CleanSegs+u.DirtySegs+u.CacheSegs+u.NoStoreSegs+u.ReservedSegs != u.DiskSegs {
				t.Fatalf("day %d: segment accounting broken: %+v", day, u)
			}
		}
		// Week's end: verify every dataset byte-for-byte, cold.
		if err := hl.FS.FlushCaches(p); err != nil {
			t.Fatal(err)
		}
		for _, l := range hl.Cache.Lines() {
			if l.Staging || l.Pins > 0 {
				continue
			}
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		for name, want := range model {
			f, err := hl.FS.Open(p, name)
			if err != nil {
				t.Fatalf("week-end open %s: %v", name, err)
			}
			got := make([]byte, len(want))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("week-end: %s corrupted", name)
			}
		}
		if hl.Stats().Svc.Fetches == 0 {
			t.Fatal("week of operation never exercised demand fetch")
		}
	})
	k.Stop()
}
