package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dev"
	"repro/internal/sim"
	"repro/internal/stripe"
)

// On-line storage reconfiguration (§6.4 / §10): disks can join and leave
// the farm while the file system is mounted.

// AddDisk appends a disk to the farm: its blocks claim part of the dead
// zone, its segments are initialized clean, and the log can use them
// immediately. Returns the number of segments added.
func (hl *HighLight) AddDisk(p *sim.Proc, d dev.BlockDev) (int, error) {
	c, ok := hl.Disk.(*stripe.Concat)
	if !ok {
		// An interleaved farm spreads every stripe row over all spindles;
		// appending one cannot extend the address space in place.
		return 0, fmt.Errorf("core: on-line growth requires a concatenated farm, not %T", hl.Disk)
	}
	segs := int(d.NumBlocks()) / hl.Amap.SegBlocks()
	if segs < 1 {
		return 0, fmt.Errorf("core: disk too small for even one segment")
	}
	if err := hl.FS.CanGrow(segs); err != nil {
		return 0, err
	}
	hl.Amap.GrowDisk(segs) // panics only if regions collide; CanGrow ran first
	c.Append(d)
	if err := hl.FS.GrowDisk(p, segs); err != nil {
		return 0, err
	}
	return segs, nil
}

// RetireDiskRange takes the disk segments [lo, hi) out of service so the
// underlying spindle can be removed: cached tertiary lines in the range
// are ejected (their tertiary copies remain), live log data are cleaned
// forward, and the segments are marked as having no storage.
func (hl *HighLight) RetireDiskRange(p *sim.Proc, lo, hi addr.SegNo) error {
	// Evict cache lines living in the range. Staging lines hold the sole
	// copy of migrated data; drain copyouts so none remain.
	hl.finishStaging(p)
	hl.FlushCopyouts(p)
	hl.Svc.DrainCopyouts(p)
	for _, l := range hl.Cache.Lines() {
		if l.DiskSeg < lo || l.DiskSeg >= hi {
			continue
		}
		if l.Staging || l.Pins > 0 {
			return fmt.Errorf("core: cache line for tertiary segment %d in segment %d is busy", l.Tag, l.DiskSeg)
		}
		if err := hl.Svc.Eject(l.Tag); err != nil {
			return err
		}
	}
	// Pool segments (unbound cache lines) in the range leave the pool:
	// rebuild the free list without them and release their claim.
	var keep []addr.SegNo
	for {
		s, ok := hl.Cache.TakeFree()
		if !ok {
			break
		}
		if s >= lo && s < hi {
			hl.FS.ReleaseCacheSegment(p, s)
		} else {
			keep = append(keep, s)
		}
	}
	for _, s := range keep {
		hl.Cache.Release(s)
	}
	return hl.FS.RetireSegments(p, lo, hi)
}

// ComponentRange reports the disk-segment range [lo, hi) served by farm
// component i, for use with RetireDiskRange. Only a concatenated farm maps
// components to contiguous segment ranges; for an interleaved farm the
// range is empty.
func (hl *HighLight) ComponentRange(i int) (lo, hi addr.SegNo) {
	c, ok := hl.Disk.(*stripe.Concat)
	if !ok {
		return 0, 0
	}
	d, start := c.Component(i)
	lo = addr.SegNo(start / int64(hl.Amap.SegBlocks()))
	hi = lo + addr.SegNo(d.NumBlocks()/int64(hl.Amap.SegBlocks()))
	return lo, hi
}
