// Package core assembles HighLight: the 4.4BSD-LFS-derived file system
// (internal/lfs) extended with tertiary storage (§6 of the paper). It
// provides the block-map pseudo-device that dispatches the uniform block
// address space to the disk farm, the on-disk segment cache, or the
// tertiary devices; claims the static cache split; runs the service and
// I/O processes; and implements the staging-segment migration mechanism
// driven by the user-level migrator policies in internal/migrate.
package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dev"
	"repro/internal/jukebox"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/obs/reqtrace"
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/tertiary"
)

// Config describes a HighLight instance.
type Config struct {
	// SegBlocks is the segment size in 4 KB blocks (default 256 = 1 MB).
	SegBlocks int
	// Disks form the disk farm, concatenated by the striping driver.
	Disks []dev.BlockDev
	// StripeUnit, when positive and more than one disk is given, stripes
	// the farm (stripe.Interleave) with this stripe unit in 4 KB blocks
	// instead of concatenating. Zero keeps the paper's concatenation.
	StripeUnit int
	// Parity adds a rotating RAID-5-style parity unit per stripe row
	// (requires StripeUnit and at least three disks).
	Parity bool
	// Streams is the number of concurrent tertiary I/O streams (staging
	// fills and copy-out drains). Values below 2 keep the single
	// historical stream.
	Streams int
	// VolStripe stripes tertiary segment allocation across this many
	// volumes so concurrent Streams drive different cartridges (see
	// HighLight.VolStripe). Values below 2 keep sequential allocation.
	VolStripe int
	// Jukeboxes are the tertiary devices (device 0 is consumed first).
	Jukeboxes []jukebox.Footprint
	// CacheSegs is the static limit of disk segments used as the
	// tertiary segment cache (§6.4). Default: 1/4 of the disk segments.
	CacheSegs int
	// CacheSegLo/CacheSegHi restrict the cache (and thus the staging
	// area) to a disk-segment range, e.g. a dedicated staging spindle
	// appended to the disk farm (Table 6's RZ58 / HP7958A configs).
	CacheSegLo, CacheSegHi int
	// CachePolicy selects the cache eviction policy (default LRU).
	CachePolicy cache.Policy
	// MaxInodes and BufferBytes configure the file system.
	MaxInodes   int
	BufferBytes int
	// AssemblyCopyRate / UserCopyRate model host CPU copy costs (see
	// lfs.Options); zero disables them.
	AssemblyCopyRate int64
	UserCopyRate     int64
	// GatherChunkBlocks caps the migrator's raw-read granularity (see
	// lfs.Options). 1 matches the paper's block-at-a-time gathering.
	GatherChunkBlocks int
	// Replicas configures tertiary segment replication (§5.4); see
	// HighLight.Replicas. Values below 2 disable it.
	Replicas int
	// RepairEvery, when positive, starts the replica-repair daemon: a
	// periodic virtual-time pass that re-copies under-replicated
	// segments (after media retirement or a library outage) onto
	// healthy libraries. Zero leaves repair manual (RepairPass).
	RepairEvery sim.Time
	// Seed feeds the random eviction policy.
	Seed uint64
	// Obs is the observability domain the instance traces into. When
	// nil, New creates one on the instance's kernel — attach devices
	// (dev.Disk.SetObs, jukebox.SetObs) to the same domain to see the
	// whole stack on one timeline.
	Obs *obs.Obs
}

// HighLight is a mounted HighLight file system with its support processes.
type HighLight struct {
	K     *sim.Kernel
	Amap  *addr.Map
	Disk  stripe.Farm
	FS    *lfs.FS
	Cache *cache.Cache
	Svc   *tertiary.Service
	Obs   *obs.Obs

	// Heat is the per-segment/per-file temperature table every cache
	// hit, demand fetch, staging, copy-out, ejection, and clean is
	// attributed to; Audit is the migration decision log the migrator,
	// staging mechanism, and tertiary cleaner record into (queryable
	// as `hldump -why`). Both are always live: they are pure functions
	// of the deterministic event stream, cost O(1) per event, and are
	// read only by exporters.
	Heat  *attr.Table
	Audit *attr.Audit

	jukes []jukebox.Footprint

	// Migration state: the staging segment currently being filled.
	stageTag int        // tertiary segment index, -1 if none
	stageSeg addr.SegNo // cache-line disk segment holding the image
	stageOff int        // next free block in the staging segment
	nextTert int        // next never-used tertiary segment index

	// VolStripe, when > 1, stripes tertiary segment allocation round-robin
	// across that many volumes of the first library, so concurrent copy-out
	// streams (Config.Streams) write different cartridges and a multi-drive
	// changer can service them in parallel. The default sequential
	// allocation packs volumes in order — bit-identical to the historical
	// allocator — but serializes concurrent streams on one loaded volume.
	VolStripe int
	stripeVol int // next volume in the rotation

	// DelayCopyouts holds completed staging segments until FlushCopyouts
	// instead of scheduling them immediately ("delaying segment writes to
	// a later idle period when there will be no contention for the disk
	// drive arm", §5.4).
	DelayCopyouts bool
	delayed       []copyoutRec

	// RearrangeTertiary lets MigrateFiles re-stage blocks that already
	// live on tertiary storage — the §5.4 data-rearrangement policy that
	// re-clusters segments by observed access patterns. Off by default:
	// whole-file migration then only moves disk-resident blocks.
	RearrangeTertiary bool

	// Replicas is the number of tertiary copies written per staged
	// segment (§5.4's replication variant: "maintain several segment
	// replicas on tertiary storage, and have the staging code simply
	// read the closest copy"). Replicas land on different volumes, are
	// not counted as live data, and the catalog mapping primaries to
	// replicas is an in-memory performance hint (the paper's suggested
	// bookkeeping sidestep). 1 (or 0) disables replication.
	Replicas   int
	replicaOf  map[int][]int // primary tag -> replica tags
	replicaTag map[int]int   // replica tag -> primary tag

	// Repair bounds the replica-repair pass (concurrency, retries).
	Repair RepairPolicy

	// RepairThrottle, if set, is consulted by the repair daemon before
	// each pass; a true return skips the pass (graceful-degradation
	// "brownout": background repair yields to interactive traffic).
	RepairThrottle func() bool

	libs []*jukebox.Library // tertiary devices as failure domains

	// HSM pin registries (see pin.go): segment pin refcounts mirrored into
	// the persisted lfs.SegPinned flag, and inode pin refcounts consulted
	// by the migration policies.
	pinnedSegs   map[int]int
	pinnedInodes map[uint32]int

	retiredSegs int64 // tertiary segments retired after permanent write errors

	mountStats MountStats
}

// MountStats reports what crash recovery did while rebuilding the cache
// directory and tertiary state from the checkpointed tables.
type MountStats struct {
	// LinesRebound counts cache lines re-inserted from the checkpointed
	// segment-usage table.
	LinesRebound int
	// StagingRescheduled counts staging lines whose copy-out to tertiary
	// storage was interrupted by the crash and re-scheduled at mount.
	StagingRescheduled int
	// TornLinesDropped counts staging lines whose on-disk image held no
	// checksum-valid partial segment (the crash cut before any staged
	// write reached media); they are dropped and their tertiary segment
	// returned unused.
	TornLinesDropped int
	// PoolSelfHealed counts cache-pool segments re-claimed because the
	// checkpointed pool was short (e.g. a crash mid-claim).
	PoolSelfHealed int
}

// MountStats returns the recovery counters of the mount that created hl
// (all zero for a freshly formatted instance).
func (hl *HighLight) MountStats() MountStats { return hl.mountStats }

// RetiredSegments reports how many tertiary segments were retired (marked
// no-store) after permanent media write errors, each followed by a
// restage of its contents onto fresh media.
func (hl *HighLight) RetiredSegments() int64 { return hl.retiredSegs }

// Jukeboxes exposes the tertiary devices (for fault reports and dumps).
func (hl *HighLight) Jukeboxes() []jukebox.Footprint { return hl.jukes }

// Libraries exposes the tertiary devices as failure domains: one
// *jukebox.Library per configured device, in device order. Fault plans
// take a whole changer out of service through these handles.
func (hl *HighLight) Libraries() []*jukebox.Library { return hl.libs }

type copyoutRec struct {
	tag    int
	seg    addr.SegNo
	pinTag int
}

// New formats (format=true) or mounts a HighLight file system.
func New(p *sim.Proc, cfg Config, format bool) (*HighLight, error) {
	if cfg.SegBlocks <= 0 {
		cfg.SegBlocks = 256
	}
	if len(cfg.Disks) == 0 {
		return nil, fmt.Errorf("core: no disks")
	}
	// Concatenate by default, even a single disk: AddDisk appends
	// spindles to the farm on-line (§6.4). A stripe unit switches the
	// farm to the interleaved layout, trading on-line growth for
	// bandwidth.
	var disk stripe.Farm
	var err error
	if cfg.StripeUnit > 0 && len(cfg.Disks) > 1 {
		disk, err = stripe.NewInterleave(cfg.StripeUnit, cfg.Parity, cfg.Disks...)
	} else {
		disk, err = stripe.New(cfg.Disks...)
	}
	if err != nil {
		return nil, fmt.Errorf("core: assembling disk farm: %w", err)
	}
	diskSegs := int(disk.NumBlocks()) / cfg.SegBlocks
	var geoms []addr.Geom
	for _, j := range cfg.Jukeboxes {
		geoms = append(geoms, addr.Geom{Vols: j.Volumes(), SegsPerVol: j.SegmentsPerVolume()})
	}
	amap := addr.New(cfg.SegBlocks, diskSegs, geoms...)
	if cfg.CacheSegs <= 0 {
		cfg.CacheSegs = diskSegs / 4
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(p.Kernel())
	}
	hl := &HighLight{
		K:          p.Kernel(),
		Amap:       amap,
		Disk:       disk,
		Obs:        cfg.Obs,
		Heat:       attr.NewTable(0),
		Audit:      attr.NewAudit(0),
		jukes:      cfg.Jukeboxes,
		libs:       jukebox.AsLibraries(cfg.Jukeboxes),
		stageTag:   -1,
		replicaOf:  make(map[int][]int),
		replicaTag: make(map[int]int),
		Repair:     DefaultRepairPolicy,
	}
	bm := &blockMap{hl: hl}
	opts := lfs.Options{
		MaxInodes:         cfg.MaxInodes,
		BufferBytes:       cfg.BufferBytes,
		CacheSegs:         cfg.CacheSegs,
		CacheSegLo:        cfg.CacheSegLo,
		CacheSegHi:        cfg.CacheSegHi,
		AssemblyCopyRate:  cfg.AssemblyCopyRate,
		UserCopyRate:      cfg.UserCopyRate,
		GatherChunkBlocks: cfg.GatherChunkBlocks,
	}
	var fs *lfs.FS
	if format {
		fs, err = lfs.Format(p, bm, amap, opts)
	} else {
		fs, err = lfs.Mount(p, bm, amap, opts)
	}
	if err != nil {
		return nil, err
	}
	hl.FS = fs

	// Claim the static cache split: the pool of disk segments reserved
	// for caching tertiary segments.
	var pool []addr.SegNo
	if format {
		for i := 0; i < cfg.CacheSegs; i++ {
			s, err := fs.AllocCacheSegment(p, lfs.NilCacheTag, false)
			if err != nil {
				return nil, fmt.Errorf("core: claiming cache segment %d of %d: %w", i, cfg.CacheSegs, err)
			}
			pool = append(pool, s)
		}
		// Persist the claim: the pool is part of the static disk split
		// and must survive a remount.
		if err := fs.Checkpoint(p); err != nil {
			return nil, err
		}
	} else {
		// Rebuild the pool and directory from the checkpointed segment
		// usage table.
		claimed := 0
		for s := 0; s < amap.DiskSegs(); s++ {
			su := fs.SegUsage(addr.SegNo(s))
			if su.Flags&lfs.SegCached == 0 {
				continue
			}
			claimed++
			if su.CacheTag == lfs.NilCacheTag {
				pool = append(pool, addr.SegNo(s))
			}
		}
		// Self-heal a short pool (e.g. images created before claims
		// were checkpointed, or a crash mid-claim).
		for claimed < fs.MaxCacheSegs() {
			s, err := fs.AllocCacheSegment(p, lfs.NilCacheTag, false)
			if err != nil {
				break
			}
			pool = append(pool, s)
			claimed++
			hl.mountStats.PoolSelfHealed++
		}
	}
	hl.Cache = cache.New(cfg.CachePolicy, pool, cfg.Seed)
	hl.Cache.SetObs(hl.Obs)
	hl.Cache.SetAttr(hl.Heat)
	// HSM pins gate eviction from the moment the directory exists: after a
	// crash the persisted SegPinned flags keep pinned lines resident even
	// before the HSM layer re-derives its refcounts.
	hl.Cache.Locked = hl.SegmentPinned
	// The service routes through the Library wrappers so whole-changer
	// outages gate I/O; an always-up wrapper delegates byte-for-byte.
	fps := make([]jukebox.Footprint, len(hl.libs))
	for i, l := range hl.libs {
		fps[i] = l
	}
	hl.Svc = tertiary.New(p.Kernel(), hl.Obs, amap, fps, disk, hl.Cache, tertiary.Hooks{
		LineBound: func(tag int, seg addr.SegNo, staging bool) {
			fs.SetCacheBinding(seg, uint32(tag), staging)
		},
		LineEvicted: func(tag int, seg addr.SegNo) {
			fs.SetCacheBinding(seg, lfs.NilCacheTag, false)
		},
		CopyoutDone: func(tag int, seg addr.SegNo) {
			if _, isReplica := hl.replicaTag[tag]; isReplica {
				return // replicas stay uncounted (§5.4)
			}
			fs.SetCacheBinding(seg, uint32(tag), false)
			fs.MarkTsegWritten(tag)
			hl.Audit.Record(attr.Decision{
				T: hl.K.Now(), Actor: "tertiary", Subject: fmt.Sprintf("seg:%d", tag),
				Seg: tag, Verdict: attr.VerdictCopiedOut,
				Inputs: []attr.Input{attr.In("replicas", float64(len(hl.replicaOf[tag])))},
			})
		},
	})
	hl.Svc.SetAttr(hl.Heat)
	hl.Svc.SetAudit(hl.Audit)
	if cfg.Streams > 1 {
		// Extra tertiary I/O streams: staging fills and copy-out drains
		// overlap instead of strictly alternating on one daemon.
		hl.Svc.AddIOStreams(cfg.Streams - 1)
	}
	if cfg.VolStripe > 1 {
		hl.VolStripe = cfg.VolStripe
	}
	hl.Svc.AltCopies = func(tag int) []int { return hl.replicaOf[tag] }
	if cfg.Replicas > 1 {
		hl.Replicas = cfg.Replicas
	}
	if cfg.RepairEvery > 0 {
		hl.StartRepairDaemon(cfg.RepairEvery)
	}
	if !format {
		// Re-insert bound lines; re-schedule staging lines that never
		// reached tertiary storage before the crash.
		now := p.Now()
		for s := 0; s < amap.DiskSegs(); s++ {
			su := fs.SegUsage(addr.SegNo(s))
			if su.Flags&lfs.SegCached == 0 || su.CacheTag == lfs.NilCacheTag {
				continue
			}
			tag := int(su.CacheTag)
			if su.Flags&lfs.SegStaging != 0 {
				// A staging line is the sole copy of its migrated blocks,
				// and the crash may have cut its image mid-write. Only the
				// checksum-valid pseg prefix can be referenced by durable
				// metadata (the disk write cache applies writes in issue
				// order, and pointer psegs are issued after the image
				// blocks they name), so the tertiary usage entry is rebuilt
				// from that prefix — or, if nothing valid landed, the line
				// is dropped and its tertiary segment returned unused.
				valid, live, perr := hl.validStagePrefix(p, addr.SegNo(s))
				if perr != nil {
					return nil, perr
				}
				if valid == 0 {
					fs.SetCacheBinding(addr.SegNo(s), lfs.NilCacheTag, false)
					hl.Cache.Release(addr.SegNo(s))
					fs.ResetTseg(tag)
					hl.mountStats.TornLinesDropped++
					continue
				}
				fs.RestoreTsegUsage(tag, live)
				if _, ierr := hl.Cache.Insert(tag, addr.SegNo(s), true, now); ierr != nil {
					return nil, fmt.Errorf("core: rebuilding cache directory: %w", ierr)
				}
				hl.mountStats.LinesRebound++
				hl.Svc.ScheduleCopyout(p, tag, addr.SegNo(s))
				hl.mountStats.StagingRescheduled++
				continue
			}
			if _, ierr := hl.Cache.Insert(tag, addr.SegNo(s), false, now); ierr != nil {
				return nil, fmt.Errorf("core: rebuilding cache directory: %w", ierr)
			}
			hl.mountStats.LinesRebound++
		}
		hl.Svc.DrainCopyouts(p)
		// With the cache directory serviceable again, drop any dirents
		// left dangling by a crash between a directory write and the
		// inode that would have backed it, then rebuild the live-byte
		// accounting from the reachable state (the checkpointed counts
		// may disagree with the durable pointers after a crash).
		if _, err := fs.RepairDangling(p); err != nil {
			return nil, fmt.Errorf("core: namespace repair: %w", err)
		}
		if err := fs.RecomputeLiveBytes(p); err != nil {
			return nil, fmt.Errorf("core: recomputing live bytes: %w", err)
		}
	}
	hl.nextTert = hl.scanNextTert()
	if format {
		hl.Obs.Instant("core", "core.mount", "format")
	} else {
		hl.Obs.Instant("core", "core.mount", "mount",
			obs.Arg{Key: "rebound", Val: int64(hl.mountStats.LinesRebound)},
			obs.Arg{Key: "rescheduled", Val: int64(hl.mountStats.StagingRescheduled)})
	}
	return hl, nil
}

// validStagePrefix parses the checksum-valid partial-segment prefix of a
// staging line image, returning the number of valid psegs and the live
// bytes they hold. A torn trailing pseg (undecodable summary or data
// checksum mismatch) stops the walk; everything before it is intact by
// write ordering, and nothing after it can be referenced by durable
// metadata.
func (hl *HighLight) validStagePrefix(p *sim.Proc, lineSeg addr.SegNo) (int, uint32, error) {
	segBytes := hl.Amap.SegBlocks() * lfs.BlockSize
	raw := make([]byte, segBytes)
	if err := hl.FS.ReadRawBlocks(p, hl.Amap.BlockOf(lineSeg, 0), raw); err != nil {
		return 0, 0, err
	}
	valid, live := 0, uint32(0)
	off := 0
	for off+1 <= hl.Amap.SegBlocks() {
		sum, err := lfs.DecodeSummary(raw[off*lfs.BlockSize : (off+1)*lfs.BlockSize])
		if err != nil {
			break
		}
		n := int(sum.NBlocks)
		if n < 1 || off+n > hl.Amap.SegBlocks() {
			break
		}
		if lfs.Checksum(raw[(off+1)*lfs.BlockSize:(off+n)*lfs.BlockSize]) != sum.DataSum {
			break
		}
		valid++
		live += uint32(n * lfs.BlockSize)
		off += n
	}
	return valid, live, nil
}

// scanNextTert finds the first never-used tertiary segment index (media
// are consumed one at a time in index order, §6.5).
func (hl *HighLight) scanNextTert() int {
	for i := 0; i < hl.FS.TsegCount(); i++ {
		if hl.FS.TsegUsage(i).Flags == 0 && hl.FS.TsegUsage(i).LiveBytes == 0 {
			if _, cached := hl.Cache.Peek(i); !cached {
				return i
			}
		}
	}
	return hl.FS.TsegCount()
}

// Checkpoint checkpoints the file system.
func (hl *HighLight) Checkpoint(p *sim.Proc) error {
	t0 := p.Now()
	err := hl.FS.Checkpoint(p)
	hl.Obs.Span("core", "core.ckpt", "Checkpoint", t0)
	return err
}

// blockMap is the pseudo-device of §6.6: it compares each block address
// with the region table and dispatches to the striped disk driver, the
// segment cache, or (via a demand fetch through the service process) the
// tertiary driver.
type blockMap struct {
	hl *HighLight
}

var _ lfs.Device = (*blockMap)(nil)

// Flush drains the disk farm's write-back caches; the file system calls it
// as the ordering barrier inside Sync and Checkpoint.
func (bm *blockMap) Flush(p *sim.Proc) error { return bm.hl.Disk.Flush(p) }

func (bm *blockMap) ReadBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error {
	hl := bm.hl
	for len(buf) > 0 {
		seg := hl.Amap.SegOf(b)
		off := hl.Amap.OffOf(b)
		span := hl.Amap.SegBlocks() - off
		if span > len(buf)/lfs.BlockSize {
			span = len(buf) / lfs.BlockSize
		}
		chunk := buf[:span*lfs.BlockSize]
		switch {
		case hl.Amap.IsDiskSeg(seg):
			// Disk requests pass straight through; extend the span
			// across segment boundaries within the disk region.
			dspan := len(buf) / lfs.BlockSize
			last := hl.Amap.SegOf(b + addr.BlockNo(dspan-1))
			if !hl.Amap.IsDiskSeg(last) {
				return fmt.Errorf("core: read crosses out of disk region at block %d", b)
			}
			if err := hl.Disk.ReadBlocks(p, int64(b), buf); err != nil {
				return err
			}
			return nil
		case hl.Amap.IsTertiarySeg(seg):
			tag, _ := hl.Amap.TertIndex(seg)
			line, ok := hl.Cache.Lookup(tag, p.Now())
			if tr := reqtrace.From(p); tr != nil {
				note := "hit"
				if !ok {
					note = "miss"
				}
				tr.Mark(reqtrace.KindCacheLookup, p.Now(), note)
			}
			if !ok {
				// The cache-layer cancellation point: an expired or
				// canceled request is refused before a demand fetch is
				// even queued, so shedding leaves no side effects.
				if err := p.CtxErr(); err != nil {
					return err
				}
				var err error
				line, err = hl.Svc.DemandFetch(p, tag)
				if err != nil {
					return err
				}
			}
			if err := hl.Disk.ReadBlocks(p, int64(hl.Amap.BlockOf(line.DiskSeg, off)), chunk); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: read of dead-zone block %d", b)
		}
		buf = buf[len(chunk):]
		b += addr.BlockNo(span)
	}
	return nil
}

func (bm *blockMap) WriteBlocks(p *sim.Proc, b addr.BlockNo, buf []byte) error {
	hl := bm.hl
	n := len(buf) / lfs.BlockSize
	if !hl.Amap.IsDiskSeg(hl.Amap.SegOf(b)) || !hl.Amap.IsDiskSeg(hl.Amap.SegOf(b+addr.BlockNo(n-1))) {
		return fmt.Errorf("core: write to non-disk block %d (tertiary segments are written via the service process)", b)
	}
	return hl.Disk.WriteBlocks(p, int64(b), buf)
}

// Stats aggregates the observability counters of every layer.
type Stats struct {
	FS    lfs.Stats
	Svc   tertiary.Stats
	Cache cache.Stats

	CleanSegs    int
	CacheLines   int
	CacheLineCap int
	TertSegsUsed int
	RetiredSegs  int64
}

// Stats returns a snapshot across the file system, the tertiary service,
// and the segment cache.
func (hl *HighLight) Stats() Stats {
	s := Stats{
		FS:           hl.FS.Stats(),
		Svc:          hl.Svc.Stats(),
		Cache:        hl.Cache.Stats(),
		CleanSegs:    hl.FS.CleanSegs(),
		CacheLines:   hl.Cache.Len(),
		CacheLineCap: hl.Cache.Capacity(),
		RetiredSegs:  hl.retiredSegs,
	}
	for i := 0; i < hl.FS.TsegCount(); i++ {
		if hl.FS.TsegUsage(i).Flags&lfs.SegDirty != 0 {
			s.TertSegsUsed++
		}
	}
	return s
}
