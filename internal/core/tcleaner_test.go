package core

import (
	"bytes"
	"testing"

	"repro/internal/lfs"
	"repro/internal/sim"
)

func TestVolumeUsagesTracksLiveData(t *testing.T) {
	e := newHL(t, 64, 8, 3, 8)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		f := put(t, p, hl, "/a", pat(1, 20*lfs.BlockSize))
		if _, err := hl.MigrateFiles(p, []uint32{f.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		usages := hl.VolumeUsages()
		if len(usages) != 3 {
			t.Fatalf("got %d volume usages, want 3", len(usages))
		}
		if usages[0].UsedSegs == 0 || usages[0].LiveBytes == 0 {
			t.Fatalf("volume 0 shows no usage: %+v", usages[0])
		}
		if usages[2].UsedSegs != 0 {
			t.Fatalf("volume 2 should be empty: %+v", usages[2])
		}
	})
	e.k.Stop()
}

func TestCleanVolumeRelocatesLiveDataAndReclaimsMedium(t *testing.T) {
	e := newHL(t, 96, 10, 3, 8)
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		// Two files on volume 0; delete one so the volume is half dead.
		dataA := pat(1, 30*lfs.BlockSize)
		fa := put(t, p, hl, "/keep", dataA)
		fb := put(t, p, hl, "/dead", pat(2, 30*lfs.BlockSize))
		if _, err := hl.MigrateFiles(p, []uint32{fa.Inum(), fb.Inum()}, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Remove(p, "/dead"); err != nil {
			t.Fatal(err)
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Volume 0 now has dead space; clean it.
		u, ok := hl.SelectCleanableVolume()
		if !ok {
			t.Fatal("no cleanable volume found")
		}
		moved, err := hl.CleanVolume(p, u.Device, u.Volume)
		if err != nil {
			t.Fatalf("CleanVolume: %v", err)
		}
		if moved == 0 {
			t.Fatal("no blocks relocated off the cleaned volume")
		}
		// The cleaned volume's segments are reusable again.
		after := hl.VolumeUsages()
		if after[u.Volume].UsedSegs != 0 || after[u.Volume].LiveBytes != 0 {
			t.Fatalf("cleaned volume not reclaimed: %+v", after[u.Volume])
		}
		// The kept file survived, now on another volume.
		hl.FS.DropFileBuffers(p, fa.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		if got := get(t, p, fa); !bytes.Equal(got, dataA) {
			t.Fatal("live file corrupted by tertiary cleaning")
		}
		refs, _ := hl.FS.FileBlockRefs(p, fa.Inum())
		for _, r := range refs {
			d, v, _, ok := hl.Amap.Loc(hl.Amap.SegOf(r.Addr))
			if !ok {
				t.Fatalf("block %d not tertiary after clean", r.Lbn)
			}
			if d == u.Device && v == u.Volume {
				t.Fatalf("block %d still on the cleaned volume", r.Lbn)
			}
		}
	})
	e.k.Stop()
}

func TestCleanVolumeReusesReclaimedSegments(t *testing.T) {
	e := newHL(t, 96, 10, 2, 6) // tiny tertiary: 12 segments total
	e.run(t, func(p *sim.Proc) {
		hl := e.hl
		// Fill most of both volumes, delete everything, clean, and
		// verify new migrations can use the reclaimed media.
		var inums []uint32
		for i := 0; i < 4; i++ {
			f := put(t, p, hl, "/f"+string(rune('a'+i)), pat(byte(i), 20*lfs.BlockSize))
			inums = append(inums, f.Inum())
		}
		if _, err := hl.MigrateFiles(p, inums, false); err != nil {
			t.Fatal(err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := hl.FS.Remove(p, "/f"+string(rune('a'+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := hl.FS.Sync(p); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 2; v++ {
			if _, err := hl.CleanVolume(p, 0, v); err != nil {
				t.Fatalf("clean volume %d: %v", v, err)
			}
		}
		// New data must fit again (tertiary was exhausted before).
		g := put(t, p, hl, "/fresh", pat(9, 40*lfs.BlockSize))
		if _, err := hl.MigrateFiles(p, []uint32{g.Inum()}, false); err != nil {
			t.Fatalf("migration after volume cleaning: %v", err)
		}
		if err := hl.CompleteMigration(p); err != nil {
			t.Fatal(err)
		}
		hl.FS.DropFileBuffers(p, g.Inum())
		for _, l := range hl.Cache.Lines() {
			if err := hl.Svc.Eject(l.Tag); err != nil {
				t.Fatal(err)
			}
		}
		if got := get(t, p, g); !bytes.Equal(got, pat(9, 40*lfs.BlockSize)) {
			t.Fatal("data on reclaimed media corrupted")
		}
	})
	e.k.Stop()
}
