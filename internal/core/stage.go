package core

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/lfs"
	"repro/internal/obs"
	"repro/internal/obs/attr"
	"repro/internal/sim"
)

// Migration mechanism (§6.2): to-be-migrated blocks are assembled into a
// staging segment — a dirty cache line addressed with the block numbers
// the segment will use on the tertiary volume. When the staging segment
// fills, the service process copies the whole 1 MB segment to tertiary
// storage, either immediately or in a delayed batch (§5.4).

// ErrNoTertiarySpace is returned when every tertiary segment has been
// consumed (the paper's future-work tertiary cleaner reclaims media).
var ErrNoTertiarySpace = errors.New("core: tertiary storage exhausted")

// ensureStaging makes sure a staging segment is open, allocating the next
// tertiary segment and a cache line for its assembly.
func (hl *HighLight) ensureStaging(p *sim.Proc) error {
	if hl.stageTag >= 0 {
		return nil
	}
	tag, terr := hl.allocTertTag()
	if terr != nil {
		return terr
	}
	var seg addr.SegNo
	for {
		var ok bool
		seg, ok = hl.Cache.TakeFree()
		if ok {
			break
		}
		if v := hl.Cache.Victim(); v != nil {
			var err error
			seg, err = hl.Cache.Evict(v)
			if err != nil {
				return fmt.Errorf("core: evicting cache victim for staging: %w", err)
			}
			hl.FS.SetCacheBinding(seg, lfs.NilCacheTag, false)
			break
		}
		// Every line is pinned or still staging: wait for an in-flight
		// copyout to finish and retry.
		if hl.Svc.OutstandingCopyouts() == 0 {
			if len(hl.delayed) > 0 {
				// Delayed copyouts are holding every line; write them
				// out now (the "no idle period arises" fallback, §5.4).
				hl.FlushCopyouts(p)
				continue
			}
			return fmt.Errorf("core: no cache line available for staging (all pinned or staging)")
		}
		hl.Svc.WaitCopyoutProgress(p)
	}
	if _, err := hl.Cache.Insert(tag, seg, true, p.Now()); err != nil {
		return fmt.Errorf("core: opening staging segment: %w", err)
	}
	hl.FS.SetCacheBinding(seg, uint32(tag), true)
	// Make the staging binding durable before any migrated block lands in
	// the line: after a crash, recovery finds the sole copy of staged data
	// through the checkpointed cache directory, so the directory must
	// never lag behind the staged contents it names. Tables only — a full
	// checkpoint would flush the dirty flipped metadata of the batch in
	// progress, relocating blocks whose refs the migrator already captured.
	if err := hl.FS.CheckpointTables(p); err != nil {
		return err
	}
	hl.stageTag = tag
	hl.stageSeg = seg
	hl.stageOff = 0
	hl.nextTert = tag + 1
	hl.Obs.Instant("core", "stage.open", "open",
		obs.Arg{Key: "tag", Val: int64(tag)}, obs.Arg{Key: "seg", Val: int64(seg)})
	return nil
}

// finishStaging closes the current staging segment and schedules (or
// defers) its copy — and its replicas, if configured — to tertiary
// storage.
func (hl *HighLight) finishStaging(p *sim.Proc) error {
	if hl.stageTag < 0 {
		return nil
	}
	if hl.stageOff == 0 {
		// Nothing was staged (e.g. every candidate block turned out
		// dead): release the line and the tertiary segment instead of
		// copying out an empty image.
		if l, ok := hl.Cache.Peek(hl.stageTag); ok {
			l.Staging = false
			seg, err := hl.Cache.Evict(l)
			if err != nil {
				return fmt.Errorf("core: dropping empty staging line: %w", err)
			}
			hl.FS.SetCacheBinding(seg, lfs.NilCacheTag, false)
			hl.Cache.Release(seg)
		}
		hl.FS.ResetTseg(hl.stageTag)
		if hl.stageTag < hl.nextTert {
			hl.nextTert = hl.stageTag
		}
		hl.stageTag = -1
		return nil
	}
	recs := []copyoutRec{{hl.stageTag, hl.stageSeg, hl.stageTag}}
	for r := 1; r < hl.Replicas; r++ {
		rtag, ok := hl.allocReplicaTag(hl.stageTag)
		if !ok {
			break // no room on another volume: fewer replicas, not an error
		}
		hl.replicaOf[hl.stageTag] = append(hl.replicaOf[hl.stageTag], rtag)
		hl.replicaTag[rtag] = hl.stageTag
		recs = append(recs, copyoutRec{rtag, hl.stageSeg, hl.stageTag})
	}
	if hl.DelayCopyouts {
		hl.delayed = append(hl.delayed, recs...)
	} else {
		for _, rec := range recs {
			hl.Svc.ScheduleCopyoutAs(p, rec.tag, rec.seg, rec.pinTag)
		}
	}
	hl.Obs.Instant("core", "stage.close", "close",
		obs.Arg{Key: "tag", Val: int64(hl.stageTag)}, obs.Arg{Key: "blocks", Val: int64(hl.stageOff)})
	hl.Heat.Touch(hl.stageTag, attr.Stage, p.Now())
	hl.Audit.Record(attr.Decision{
		T: p.Now(), Actor: "stage", Subject: fmt.Sprintf("seg:%d", hl.stageTag),
		Seg: hl.stageTag, Verdict: attr.VerdictStaged,
		Inputs: []attr.Input{
			attr.In("blocks", float64(hl.stageOff)),
			attr.In("replicas", float64(len(recs)-1)),
		},
	})
	hl.stageTag = -1
	return nil
}

// tagFree reports whether tertiary segment tag can take a new staging
// image: never used, not reserved (no-store), not still cached, and its
// library in service.
func (hl *HighLight) tagFree(tag int) bool {
	su := hl.FS.TsegUsage(tag)
	if su.Flags != 0 || su.LiveBytes != 0 {
		return false
	}
	if _, cached := hl.Cache.Peek(tag); cached {
		return false
	}
	return !hl.tagLibDown(tag)
}

// allocTertTag picks the tertiary segment the next staging line copies
// out to.
//
// The default is the historical scan for the first free tag at or after
// nextTert. After a volume clean rewinds the cursor, in-use (dirty),
// reserved (no-store, e.g. replicas and retired volume tails) and
// still-cached indices must all be skipped, not just no-store ones.
//
// With VolStripe > 1 allocation instead rotates across that many volumes
// of the first library, one segment per volume per turn: consecutive
// staging segments land on different cartridges, so concurrent copy-out
// streams keep several changer drives busy instead of serializing on one
// loaded volume — striping the migration log across media, the tertiary
// analogue of the disk farm's block interleave.
func (hl *HighLight) allocTertTag() (int, error) {
	if hl.VolStripe > 1 {
		devs := hl.Amap.Devices()
		nv := hl.VolStripe
		if nv > devs[0].Vols {
			nv = devs[0].Vols
		}
		for i := 0; i < nv; i++ {
			v := (hl.stripeVol + i) % nv
			base, ok := hl.Amap.TertIndex(hl.Amap.SegForLoc(0, v, 0))
			if !ok {
				continue
			}
			for s := 0; s < devs[0].SegsPerVol; s++ {
				if tag := base + s; hl.tagFree(tag) {
					hl.stripeVol = (v + 1) % nv
					return tag, nil
				}
			}
		}
		// The striped volumes are full: take anything left anywhere.
		for tag := 0; tag < hl.FS.TsegCount(); tag++ {
			if hl.tagFree(tag) {
				return tag, nil
			}
		}
		return 0, ErrNoTertiarySpace
	}
	tag := hl.nextTert
	for tag < hl.FS.TsegCount() && !hl.tagFree(tag) {
		tag++
	}
	if tag >= hl.FS.TsegCount() {
		return 0, ErrNoTertiarySpace
	}
	return tag, nil
}

// allocReplicaTag finds a free tertiary segment for a replica of primary
// and reserves it (no-storage in the tsegfile, so the regular allocator
// skips it and it is never counted live — §5.4's bookkeeping sidestep).
// With several libraries the copy is spread across failure domains: it
// goes to the healthy library with the most free segments that holds
// neither the primary nor an existing replica. When no such library
// exists (single changer, or every other domain down/full) placement
// falls back to the original intra-library rule — any free segment on a
// different volume than the primary.
func (hl *HighLight) allocReplicaTag(primary int) (int, bool) {
	if len(hl.libs) > 1 {
		if idx, ok := hl.allocCrossLibrary(primary); ok {
			return idx, true
		}
	}
	// No copy of a segment may share a medium with another: exclude the
	// primary's volume and every existing replica's volume.
	type volKey struct{ d, v int }
	avoid := make(map[volKey]bool)
	pd, pv, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(primary))
	avoid[volKey{pd, pv}] = true
	for _, r := range hl.replicaOf[primary] {
		if rd, rv, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(r)); ok {
			avoid[volKey{rd, rv}] = true
		}
	}
	for idx := 0; idx < hl.FS.TsegCount(); idx++ {
		su := hl.FS.TsegUsage(idx)
		if su.Flags != 0 || su.LiveBytes != 0 {
			continue
		}
		if _, cached := hl.Cache.Peek(idx); cached {
			continue
		}
		d, v, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(idx))
		if !ok || avoid[volKey{d, v}] {
			continue
		}
		if hl.libs[d].Down() {
			continue
		}
		hl.FS.MarkTsegNoStore(idx)
		hl.Audit.Record(attr.Decision{
			T: hl.K.Now(), Actor: "placement", Subject: fmt.Sprintf("seg:%d", idx),
			Seg: primary, Verdict: attr.VerdictPlaced, Reason: "intra-library",
			Inputs: []attr.Input{attr.In("replica", float64(idx)), attr.In("dev", float64(d))},
		})
		return idx, true
	}
	return 0, false
}

// allocCrossLibrary places a replica of primary in a failure domain that
// holds no copy yet: the healthy library with the most free segments
// wins (ties to the lowest device index), and the replica takes that
// library's first free segment.
func (hl *HighLight) allocCrossLibrary(primary int) (int, bool) {
	used := make(map[int]bool)
	if pd, _, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(primary)); ok {
		used[pd] = true
	}
	for _, r := range hl.replicaOf[primary] {
		if d, _, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(r)); ok {
			used[d] = true
		}
	}
	bestDev, bestFree, bestIdx := -1, 0, -1
	for d := range hl.libs {
		if used[d] || hl.libs[d].Down() {
			continue
		}
		free, first := hl.freeTsegsOnDevice(d)
		if first >= 0 && free > bestFree {
			bestDev, bestFree, bestIdx = d, free, first
		}
	}
	if bestDev < 0 {
		return 0, false
	}
	hl.FS.MarkTsegNoStore(bestIdx)
	hl.Audit.Record(attr.Decision{
		T: hl.K.Now(), Actor: "placement", Subject: fmt.Sprintf("seg:%d", bestIdx),
		Seg: primary, Verdict: attr.VerdictPlaced, Reason: "cross-library",
		Inputs: []attr.Input{
			attr.In("replica", float64(bestIdx)),
			attr.In("dev", float64(bestDev)),
			attr.In("free", float64(bestFree)),
		},
	})
	return bestIdx, true
}

// tagLibDown reports whether tag's library is out of service.
func (hl *HighLight) tagLibDown(tag int) bool {
	d, _, _, ok := hl.Amap.Loc(hl.Amap.SegForIndex(tag))
	return ok && hl.libs[d].Down()
}

// deviceTsegRange returns the dense tertiary-index range [start, start+n)
// device d's segments occupy (devices are laid out in order).
func (hl *HighLight) deviceTsegRange(d int) (start, n int) {
	devs := hl.Amap.Devices()
	for i := 0; i < d; i++ {
		start += devs[i].Vols * devs[i].SegsPerVol
	}
	return start, devs[d].Vols * devs[d].SegsPerVol
}

// freeTsegsOnDevice counts device d's allocatable tertiary segments and
// returns the first one (-1 when the device is full).
func (hl *HighLight) freeTsegsOnDevice(d int) (free, first int) {
	start, n := hl.deviceTsegRange(d)
	first = -1
	end := start + n
	if end > hl.FS.TsegCount() {
		end = hl.FS.TsegCount()
	}
	for idx := start; idx < end; idx++ {
		su := hl.FS.TsegUsage(idx)
		if su.Flags != 0 || su.LiveBytes != 0 {
			continue
		}
		if _, cached := hl.Cache.Peek(idx); cached {
			continue
		}
		if first < 0 {
			first = idx
		}
		free++
	}
	return free, first
}

// FlushCopyouts schedules every delayed copyout (the "later idle period"
// write of §5.4).
func (hl *HighLight) FlushCopyouts(p *sim.Proc) {
	for _, rec := range hl.delayed {
		hl.Svc.ScheduleCopyoutAs(p, rec.tag, rec.seg, rec.pinTag)
	}
	hl.delayed = nil
}

// StagingOpen reports whether a staging segment is being filled.
func (hl *HighLight) StagingOpen() bool { return hl.stageTag >= 0 }

// MigrateRefs stages the given block refs (already located via
// FileBlockRefs/Bmapv) to tertiary storage, opening and closing staging
// segments as needed. It returns the bytes staged.
func (hl *HighLight) MigrateRefs(p *sim.Proc, refs []lfs.BlockRef) (int64, error) {
	var staged int64
	for len(refs) > 0 {
		// The stage-layer cancellation point: a canceled or expired
		// request stops between staging chunks, never mid-chunk, so the
		// open staging segment and every scheduled copyout stay
		// consistent (CompleteMigration later closes them normally).
		if err := p.CtxErr(); err != nil {
			return staged, err
		}
		if err := hl.ensureStaging(p); err != nil {
			return staged, err
		}
		res, err := hl.FS.Migratev(p, refs, nil, hl.Amap.SegForIndex(hl.stageTag), hl.stageSeg, hl.stageOff)
		if err != nil {
			return staged, err
		}
		staged += int64(res.Blocks) * lfs.BlockSize
		hl.stageOff = res.NextOff
		refs = refs[res.Consumed:]
		if res.Full {
			if err := hl.finishStaging(p); err != nil {
				return staged, err
			}
		} else if res.Consumed == 0 {
			return staged, fmt.Errorf("core: staging made no progress at segment %d", hl.stageTag)
		}
	}
	return staged, nil
}

// stageInodes stages a batch of inodes into the staging segment.
func (hl *HighLight) stageInodes(p *sim.Proc, inums []uint32) error {
	for len(inums) > 0 {
		if err := hl.ensureStaging(p); err != nil {
			return err
		}
		res, err := hl.FS.Migratev(p, nil, inums, hl.Amap.SegForIndex(hl.stageTag), hl.stageSeg, hl.stageOff)
		if err != nil {
			return err
		}
		hl.stageOff = res.NextOff
		if res.Full && res.InodesMoved == 0 {
			if err := hl.finishStaging(p); err != nil {
				return err
			}
			continue
		}
		inums = inums[res.InodesMoved:]
		if res.Full {
			if err := hl.finishStaging(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// MigrateFiles migrates whole files — every data and indirect block, and
// (when migrateInodes is set) the inodes themselves — to tertiary storage.
// The files' dirty state is synced first so every block is stable.
func (hl *HighLight) MigrateFiles(p *sim.Proc, inums []uint32, migrateInodes bool) (int64, error) {
	t0 := p.Now()
	var staged int64
	defer func() {
		hl.Obs.Span("core", "core.migrate", "MigrateFiles", t0,
			obs.Arg{Key: "files", Val: int64(len(inums))}, obs.Arg{Key: "staged", Val: staged})
	}()
	if err := hl.FS.Sync(p); err != nil {
		return 0, err
	}
	var inodeBatch []uint32
	for _, inum := range inums {
		if err := p.CtxErr(); err != nil {
			return staged, err // canceled between files; staged work stands
		}
		if hl.InodePinned(inum) {
			// Defense in depth: policies already skip pinned files, but a
			// direct MigrateFiles caller must not move one either.
			hl.Audit.Record(attr.Decision{
				T: p.Now(), Actor: "migrator", Subject: fmt.Sprintf("inode:%d", inum),
				Seg: -1, Verdict: attr.VerdictPinGuard, Reason: "inode is HSM-pinned",
			})
			continue
		}
		refs, err := hl.FS.FileBlockRefs(p, inum)
		if err != nil {
			return staged, err
		}
		if !hl.RearrangeTertiary {
			// Skip blocks already on tertiary storage; re-staging them
			// is the explicit rearrangement policy of §5.4, not the
			// default (it consumes tertiary space and fetch bandwidth).
			kept := refs[:0]
			for _, r := range refs {
				if hl.Amap.IsDiskSeg(hl.Amap.SegOf(r.Addr)) {
					kept = append(kept, r)
				}
			}
			refs = kept
			if len(refs) == 0 {
				continue
			}
		}
		n, err := hl.MigrateRefs(p, refs)
		staged += n
		if err != nil {
			return staged, err
		}
		hl.Heat.TouchFile(inum, n, p.Now())
		// Seg is the staging segment still open after this file's blocks
		// landed (-1 if the file exactly filled a segment); large files
		// span several segments, each audited by its own "staged" record.
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "migrator", Subject: fmt.Sprintf("inode:%d", inum),
			Seg: hl.stageTag, Verdict: attr.VerdictStaged,
			Inputs: []attr.Input{attr.In("bytes", float64(n))},
		})
		if migrateInodes {
			inodeBatch = append(inodeBatch, inum)
			if len(inodeBatch) >= lfs.InodesPerBlock {
				if err := hl.stageInodes(p, inodeBatch); err != nil {
					return staged, err
				}
				inodeBatch = nil
			}
		}
	}
	if len(inodeBatch) > 0 {
		if err := hl.stageInodes(p, inodeBatch); err != nil {
			return staged, err
		}
	}
	return staged, nil
}

// CompleteMigration closes the open staging segment, flushes delayed
// copyouts, waits for the tertiary writes, handles end-of-medium retries
// (re-staging partial segments onto the next volume, §6.3) and
// unrecoverable write errors (retiring the bad segment and re-staging its
// contents onto fresh media), and checkpoints so the new bindings are
// durable.
func (hl *HighLight) CompleteMigration(p *sim.Proc) error {
	t0 := p.Now()
	defer func() {
		hl.Obs.Span("core", "core.migrate", "CompleteMigration", t0)
	}()
	if err := hl.finishStaging(p); err != nil {
		return err
	}
	hl.FlushCopyouts(p)
	if err := hl.drainCopyoutFailures(p); err != nil {
		return err
	}
	return hl.FS.Checkpoint(p)
}

// drainCopyoutFailures waits out every scheduled copyout and resolves
// the failures — end-of-medium retries, replica drops, bad-media
// retirement and restaging — until a drain completes clean. Both
// CompleteMigration and the replica-repair pass end with this loop.
func (hl *HighLight) drainCopyoutFailures(p *sim.Proc) error {
	for {
		hl.Svc.DrainCopyouts(p)
		failed := hl.Svc.FailedCopyouts()
		bad := hl.Svc.FailedWrites()
		if len(failed) == 0 && len(bad) == 0 {
			break
		}
		for _, tag := range failed {
			if primary, isReplica := hl.replicaTag[tag]; isReplica {
				// A replica hit end-of-medium: drop it from the
				// catalog (the primary is intact) and retire the
				// volume's free segments.
				hl.dropReplica(primary, tag)
				hl.retireVolumeOf(tag)
				continue
			}
			if err := hl.restageSegment(p, tag, true); err != nil {
				return err
			}
		}
		for _, tag := range bad {
			if tag < 0 || tag >= hl.FS.TsegCount() {
				// A corrupted tag reached the copyout path; there is no
				// segment to retire and no line to restage.
				return fmt.Errorf("core: copyout of unmappable tertiary index %d failed", tag)
			}
			if primary, isReplica := hl.replicaTag[tag]; isReplica {
				// A replica landed on bad media: the primary is intact.
				// Drop the replica; its segment was reserved no-store at
				// allocation, so marking it retired keeps it out of use.
				hl.dropReplica(primary, tag)
				hl.retiredSegs++
				continue
			}
			if err := hl.restageSegment(p, tag, false); err != nil {
				return err
			}
		}
		if err := hl.finishStaging(p); err != nil {
			return err
		}
		hl.FlushCopyouts(p)
	}
	return nil
}

// dropReplica removes one replica binding from the catalog.
func (hl *HighLight) dropReplica(primary, replica int) {
	delete(hl.replicaTag, replica)
	alts := hl.replicaOf[primary]
	out := alts[:0]
	for _, a := range alts {
		if a != replica {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		delete(hl.replicaOf, primary)
	} else {
		hl.replicaOf[primary] = out
	}
}

// retireVolumeOf marks the unwritten segments of tag's volume no-storage.
func (hl *HighLight) retireVolumeOf(tag int) {
	d, v, _, _ := hl.Amap.Loc(hl.Amap.SegForIndex(tag))
	spv := hl.Amap.Devices()[d].SegsPerVol
	for s := 0; s < spv; s++ {
		idx, _ := hl.Amap.TertIndex(hl.Amap.SegForLoc(d, v, s))
		if hl.FS.TsegUsage(idx).Flags&lfs.SegDirty == 0 {
			hl.FS.MarkTsegNoStore(idx)
		}
	}
}

// restageSegment handles a copyout that could not reach tag's tertiary
// segment. With wholeVolume set (end-of-medium, §6.3) the volume is
// marked full — its unwritten segments get no storage; otherwise (a
// permanent media error) only the bad segment is retired. Either way the
// staged contents move to a fresh segment. Retirement happens before the
// restage so the allocator can never re-pick the bad segment.
func (hl *HighLight) restageSegment(p *sim.Proc, tag int, wholeVolume bool) error {
	line, ok := hl.Cache.Peek(tag)
	if !ok {
		return fmt.Errorf("core: failed copyout of segment %d has no cache line", tag)
	}
	if wholeVolume {
		hl.retireVolumeOf(tag)
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "stage", Subject: fmt.Sprintf("seg:%d", tag),
			Seg: tag, Verdict: attr.VerdictRetired, Reason: "end of medium: volume tail marked no-store",
		})
	} else {
		hl.FS.MarkTsegNoStore(tag)
		hl.retiredSegs++
		hl.Audit.Record(attr.Decision{
			T: p.Now(), Actor: "stage", Subject: fmt.Sprintf("seg:%d", tag),
			Seg: tag, Verdict: attr.VerdictRetired, Reason: "permanent media write error",
		})
	}
	seg := hl.Amap.SegForIndex(tag)
	// Parse the staged image off the cache line and rebuild refs with
	// their (failed) tertiary addresses.
	segBytes := hl.Amap.SegBlocks() * lfs.BlockSize
	raw := make([]byte, segBytes)
	if err := hl.FS.ReadRawBlocks(p, hl.Amap.BlockOf(line.DiskSeg, 0), raw); err != nil {
		return err
	}
	refs, inoRefs, err := hl.parseSegmentImage(raw, seg)
	if err != nil {
		return err
	}
	var inums []uint32
	for _, ir := range inoRefs {
		e := hl.FS.Imap(ir.Inum)
		if e.Addr == ir.Addr && e.Slot == ir.Slot && e.Version == ir.Version {
			inums = append(inums, ir.Inum)
		}
	}
	// Move the live contents to a fresh segment (reads come from the
	// still-bound cache line via the block map).
	if _, err := hl.MigrateRefs(p, refs); err != nil {
		return err
	}
	if len(inums) > 0 {
		if err := hl.stageInodes(p, inums); err != nil {
			return err
		}
	}
	// Retire the failed line: nothing references its addresses now.
	line.Staging = false
	freed, err := hl.Cache.Evict(line)
	if err != nil {
		return fmt.Errorf("core: retiring failed staging line: %w", err)
	}
	hl.FS.SetCacheBinding(freed, lfs.NilCacheTag, false)
	hl.Cache.Release(freed)
	hl.Audit.Record(attr.Decision{
		T: p.Now(), Actor: "stage", Subject: fmt.Sprintf("seg:%d", tag),
		Seg: tag, Verdict: attr.VerdictRestaged, Reason: "contents moved to fresh segment",
		Inputs: []attr.Input{
			attr.In("blocks", float64(len(refs))),
			attr.In("inodes", float64(len(inums))),
		},
	})
	return nil
}
